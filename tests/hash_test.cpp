// SHA-256 / HMAC / HKDF / ChaCha20 / DRBG tests against published vectors.
#include <gtest/gtest.h>

#include "crypto/chacha20.h"
#include "crypto/drbg.h"
#include "crypto/hmac.h"
#include "crypto/sha1.h"
#include "crypto/sha256.h"
#include "util/bytes.h"

namespace sgk {
namespace {

TEST(Sha256, EmptyString) {
  EXPECT_EQ(to_hex(Sha256::digest({})),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
}

TEST(Sha256, Abc) {
  EXPECT_EQ(to_hex(Sha256::digest(str_bytes("abc"))),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
}

TEST(Sha256, TwoBlockMessage) {
  EXPECT_EQ(to_hex(Sha256::digest(str_bytes(
                "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"))),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
}

TEST(Sha256, ExactBlockBoundary) {
  // 64 'a' characters: exactly one block before padding.
  Bytes msg(64, 'a');
  EXPECT_EQ(to_hex(Sha256::digest(msg)),
            "ffe054fe7ae0cb6dc65c3af9b61d5209f439851db43d0ba5997337df154668eb");
}

TEST(Sha256, MillionAs) {
  Sha256 h;
  Bytes chunk(1000, 'a');
  for (int i = 0; i < 1000; ++i) h.update(chunk);
  EXPECT_EQ(to_hex(h.finish()),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0");
}

TEST(Sha256, IncrementalMatchesOneShot) {
  Bytes msg = str_bytes("the quick brown fox jumps over the lazy dog");
  Sha256 h;
  for (std::size_t i = 0; i < msg.size(); ++i) h.update(&msg[i], 1);
  EXPECT_EQ(h.finish(), Sha256::digest(msg));
}

// FIPS 180-1 / RFC 3174 SHA-1 vectors.
TEST(Sha1, EmptyString) {
  EXPECT_EQ(to_hex(Sha1::digest({})),
            "da39a3ee5e6b4b0d3255bfef95601890afd80709");
}

TEST(Sha1, Abc) {
  EXPECT_EQ(to_hex(Sha1::digest(str_bytes("abc"))),
            "a9993e364706816aba3e25717850c26c9cd0d89d");
}

TEST(Sha1, TwoBlockMessage) {
  EXPECT_EQ(to_hex(Sha1::digest(str_bytes(
                "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"))),
            "84983e441c3bd26ebaae4aa1f95129e5e54670f1");
}

TEST(Sha1, MillionAs) {
  Sha1 h;
  Bytes chunk(1000, 'a');
  for (int i = 0; i < 1000; ++i) h.update(chunk);
  EXPECT_EQ(to_hex(h.finish()), "34aa973cd4c4daa4f61eeb2bdbad27316534016f");
}

TEST(Sha1, IncrementalMatchesOneShot) {
  Bytes msg = str_bytes("the quick brown fox jumps over the lazy dog");
  Sha1 h;
  for (std::size_t i = 0; i < msg.size(); ++i) h.update(&msg[i], 1);
  EXPECT_EQ(h.finish(), Sha1::digest(msg));
}

// RFC 4231 test case 1.
TEST(Hmac, Rfc4231Case1) {
  Bytes key(20, 0x0b);
  // gka-lint: allow(GKA002) -- public RFC 4231 test vector, not a real key
  EXPECT_EQ(to_hex(hmac_sha256(key, str_bytes("Hi There"))),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7");
}

// RFC 4231 test case 2 ("Jefe").
TEST(Hmac, Rfc4231Case2) {
  EXPECT_EQ(to_hex(hmac_sha256(str_bytes("Jefe"),
                               str_bytes("what do ya want for nothing?"))),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843");
}

// RFC 4231 test case 3: 20-byte 0xaa key, 50-byte 0xdd data.
TEST(Hmac, Rfc4231Case3) {
  Bytes key(20, 0xaa);
  Bytes data(50, 0xdd);
  // gka-lint: allow(GKA002) -- public RFC 4231 test vector, not a real key
  EXPECT_EQ(to_hex(hmac_sha256(key, data)),
            "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe");
}

// RFC 4231 test case 6: key longer than the block size.
TEST(Hmac, KeyLongerThanBlock) {
  Bytes key(131, 0xaa);
  EXPECT_EQ(to_hex(hmac_sha256(
                key, str_bytes("Test Using Larger Than Block-Size Key - "
                               "Hash Key First"))),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54");
}

// RFC 5869 test case 1.
TEST(Hkdf, Rfc5869Case1) {
  Bytes ikm(22, 0x0b);
  Bytes salt = from_hex("000102030405060708090a0b0c");
  Bytes info = from_hex("f0f1f2f3f4f5f6f7f8f9");
  Bytes okm = hkdf_sha256(ikm, salt, info, 42);
  EXPECT_EQ(to_hex(okm),
            "3cb25f25faacd57a90434f64d0362f2a2d2d0a90cf1a5a4c5db02d56ecc4c5bf"
            "34007208d5b887185865");
}

// RFC 5869 test case 3: empty salt and info.
TEST(Hkdf, Rfc5869Case3) {
  Bytes ikm(22, 0x0b);
  Bytes okm = hkdf_sha256(ikm, {}, {}, 42);
  EXPECT_EQ(to_hex(okm),
            "8da4e775a563c18f715f802a063c5a31b8a11f5c5ee1879ec3454e5f3c738d2d"
            "9d201395faa4b61a96c8");
}

TEST(Hkdf, RejectsOversizedOutput) {
  EXPECT_THROW(hkdf_sha256({1, 2, 3}, {}, {}, 255 * 32 + 1), std::invalid_argument);
}

// RFC 8439 section 2.4.2 test vector.
TEST(ChaCha20, Rfc8439Encryption) {
  Bytes key = from_hex(
      "000102030405060708090a0b0c0d0e0f101112131415161718191a1b1c1d1e1f");
  Bytes nonce = from_hex("000000000000004a00000000");
  Bytes plaintext = str_bytes(
      "Ladies and Gentlemen of the class of '99: If I could offer you only one "
      "tip for the future, sunscreen would be it.");
  ChaCha20 cipher(key, nonce, 1);
  Bytes ct = cipher.process(plaintext);
  EXPECT_EQ(to_hex(ct),
            "6e2e359a2568f98041ba0728dd0d6981e97e7aec1d4360c20a27afccfd9fae0b"
            "f91b65c5524733ab8f593dabcd62b3571639d624e65152ab8f530c359f0861d8"
            "07ca0dbf500d6a6156a38e088a22b65e52bc514d16ccf806818ce91ab7793736"
            "5af90bbf74a35be6b40b8eedf2785e42874d");
}

TEST(ChaCha20, DecryptIsInverse) {
  Bytes key(32, 0x42);
  Bytes nonce(12, 0x24);
  Bytes msg = str_bytes("round trip message");
  ChaCha20 enc(key, nonce);
  Bytes ct = enc.process(msg);
  ChaCha20 dec(key, nonce);
  EXPECT_EQ(dec.process(ct), msg);
  EXPECT_NE(ct, msg);
}

TEST(ChaCha20, RejectsBadSizes) {
  EXPECT_THROW(ChaCha20(Bytes(31, 0), Bytes(12, 0)), std::invalid_argument);
  EXPECT_THROW(ChaCha20(Bytes(32, 0), Bytes(11, 0)), std::invalid_argument);
}

TEST(Drbg, DeterministicForSameSeed) {
  Drbg a(1234, "label");
  Drbg b(1234, "label");
  std::uint8_t buf_a[64], buf_b[64];
  a.fill(buf_a, 64);
  b.fill(buf_b, 64);
  EXPECT_TRUE(std::equal(buf_a, buf_a + 64, buf_b));
}

TEST(Drbg, LabelSeparatesStreams) {
  Drbg a(1234, "label-one");
  Drbg b(1234, "label-two");
  std::uint8_t buf_a[32], buf_b[32];
  a.fill(buf_a, 32);
  b.fill(buf_b, 32);
  EXPECT_FALSE(std::equal(buf_a, buf_a + 32, buf_b));
}

TEST(Drbg, NextU64RespectsBound) {
  Drbg rng(99, "bound");
  for (int i = 0; i < 200; ++i) EXPECT_LT(rng.next_u64(17), 17u);
  EXPECT_EQ(rng.next_u64(1), 0u);
  EXPECT_EQ(rng.next_u64(0), 0u);
}

TEST(Drbg, NextDoubleInUnitInterval) {
  Drbg rng(100, "dbl");
  for (int i = 0; i < 100; ++i) {
    double v = rng.next_double();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(Drbg, ForkIndependentOfSiblingOrder) {
  Drbg parent1(55, "parent");
  Drbg parent2(55, "parent");
  Drbg c1 = parent1.fork("child");
  Drbg c2 = parent2.fork("child");
  std::uint8_t a[16], b[16];
  c1.fill(a, 16);
  c2.fill(b, 16);
  EXPECT_TRUE(std::equal(a, a + 16, b));
}

}  // namespace
}  // namespace sgk
