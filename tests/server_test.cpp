// src/server: the multi-group daemon. The headline contract under test is
// determinism — a GroupServer run must produce byte-identical output for any
// worker-thread count — plus the pieces that contract is built from: the
// shard executor's epoch barrier, disjoint per-group process-id blocks, and
// the directory's ordered snapshots.
#include "server/server.h"

#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <string>
#include <vector>

#include "obs/metrics.h"
#include "obs/run_report.h"
#include "server/group_directory.h"
#include "server/shard_executor.h"
#include "sim/topology.h"

namespace {

using namespace sgk;
using namespace sgk::server;

ServerConfig small_config(int threads) {
  ServerConfig cfg;
  cfg.groups = 6;       // spans all five protocols plus one repeat
  cfg.members_per_group = 3;
  cfg.churn_events = 2;
  cfg.threads = threads;
  cfg.seed = 42;
  return cfg;
}

/// Runs a small server and assembles the same deterministic RunReport a
/// bench would write (payload section + merged metrics; no wall clock).
std::string report_bytes(int threads) {
  obs::MetricsRegistry registry;
  obs::ScopedMetrics scoped(&registry);
  GroupServer server(small_config(threads));
  const ServerResult result = server.run();
  obs::RunReport report("server_test");
  report.add_section("multi_group", result.to_json(/*with_groups=*/true));
  report.add_metrics(registry);
  return report.json().dump(2);
}

// The determinism regression: one worker thread vs eight, byte-identical
// RunReport JSON (group rows, aggregate quantiles, every metric counter).
TEST(GroupServerDeterminism, ThreadCountDoesNotChangeReportBytes) {
  const std::string one = report_bytes(1);
  const std::string eight = report_bytes(8);
  ASSERT_FALSE(one.empty());
  EXPECT_EQ(one, eight);
}

// Re-running the same config must also be bit-stable (seeded schedules,
// no ambient entropy).
TEST(GroupServerDeterminism, RerunIsByteIdentical) {
  EXPECT_EQ(report_bytes(2), report_bytes(2));
}

TEST(GroupServer, SmallFleetConvergesAndAggregates) {
  GroupServer server(small_config(4));
  const ServerResult result = server.run();
  EXPECT_EQ(result.groups_hosted, 6u);
  EXPECT_EQ(result.groups_converged, 6u);
  ASSERT_EQ(result.groups.size(), 6u);
  for (const GroupReport& g : result.groups) {
    EXPECT_TRUE(g.converged) << "group " << g.id;
    EXPECT_GE(g.final_size, 2u);
    EXPECT_TRUE(g.violations.empty());
  }
  // Group ids come back ascending (the aggregation order that makes the
  // report thread-count independent).
  for (std::size_t i = 1; i < result.groups.size(); ++i)
    EXPECT_LT(result.groups[i - 1].id, result.groups[i].id);
  EXPECT_GT(result.key_installs, 0u);
  EXPECT_GT(result.virtual_makespan_ms, 0.0);
  EXPECT_GT(result.event_to_key_p99_ms, 0.0);
  // Every group's network was absorbed into the shared (locked) stats.
  EXPECT_EQ(server.shared_stats().networks_absorbed(), 6u);
  EXPECT_GT(server.shared_stats().stamped_total(), 0u);
  EXPECT_GE(server.shared_stats().processes_total(), 6u * 3u);
  // And the directory saw every group settle.
  EXPECT_EQ(server.directory().group_count(), 6u);
  EXPECT_EQ(server.directory().count(GroupState::kSettled), 6u);
}

// Disjoint per-group process-id blocks: no pid appears in two groups, and
// every pid sits inside its group's [gid * stride, (gid+1) * stride) block.
TEST(GroupServer, ProcessIdBlocksAreDisjoint) {
  SpreadParams params;
  params.first_process_id = 3 * GroupServer::kPidStride;
  Simulator sim;
  const Topology topo = lan_testbed(2);
  SpreadNetwork net(sim, topo, params);
  EXPECT_EQ(net.create_process(0), 3 * GroupServer::kPidStride);
  EXPECT_EQ(net.create_process(1), 3 * GroupServer::kPidStride + 1);
  EXPECT_EQ(net.first_process_id(), 3 * GroupServer::kPidStride);
}

TEST(ShardExecutor, EpochBarrierRunsEveryShardToCompletion) {
  constexpr int kThreads = 4;
  ShardExecutor exec(kThreads);
  EXPECT_EQ(exec.threads(), kThreads);
  std::vector<int> per_shard(kThreads, 0);  // slot per shard: no sharing
  for (int epoch = 0; epoch < 50; ++epoch) {
    exec.run_epoch([&](int shard) { ++per_shard[shard]; });
    // The barrier has passed: every shard's work for this epoch is visible.
    for (int shard = 0; shard < kThreads; ++shard)
      ASSERT_EQ(per_shard[shard], epoch + 1) << "shard " << shard;
  }
}

TEST(ShardExecutor, SingleThreadRunsInline) {
  ShardExecutor exec(1);
  std::thread::id caller = std::this_thread::get_id();
  std::thread::id seen;
  exec.run_epoch([&](int shard) {
    EXPECT_EQ(shard, 0);
    seen = std::this_thread::get_id();
  });
  EXPECT_EQ(seen, caller);
}

TEST(GroupDirectory, SnapshotIsAscendingById) {
  GroupDirectory dir;
  for (GroupId id : {7u, 1u, 4u}) {
    GroupSpec spec;
    spec.id = id;
    spec.name = "g" + std::to_string(id);
    dir.register_group(spec);
  }
  EXPECT_EQ(dir.group_count(), 3u);
  EXPECT_EQ(dir.count(GroupState::kPending), 3u);

  GroupStatus active;
  active.state = GroupState::kActive;
  active.epoch = 2;
  dir.update(4, active);
  EXPECT_EQ(dir.count(GroupState::kPending), 2u);
  EXPECT_EQ(dir.count(GroupState::kActive), 1u);

  const auto snap = dir.snapshot();
  ASSERT_EQ(snap.size(), 3u);
  EXPECT_EQ(snap[0].first.id, 1u);
  EXPECT_EQ(snap[1].first.id, 4u);
  EXPECT_EQ(snap[2].first.id, 7u);
  EXPECT_EQ(snap[1].second.state, GroupState::kActive);
  EXPECT_EQ(snap[1].second.epoch, 2u);
}

TEST(GroupDirectory, StateNamesRoundTrip) {
  EXPECT_STREQ(to_string(GroupState::kPending), "pending");
  EXPECT_STREQ(to_string(GroupState::kOnboarding), "onboarding");
  EXPECT_STREQ(to_string(GroupState::kActive), "active");
  EXPECT_STREQ(to_string(GroupState::kSettled), "settled");
  EXPECT_STREQ(to_string(GroupState::kFailed), "failed");
}

}  // namespace
