namespace sgk {

int next_round_id(Session& session) {
  // Immutable statics are fine; the mutable counter lives in the session.
  static constexpr int kFirstRound = 1;
  if (session.round == 0) session.round = kFirstRound;
  return session.round++;
}

}  // namespace sgk
