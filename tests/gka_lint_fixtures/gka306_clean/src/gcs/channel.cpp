#include <cstdint>

namespace sgk {

std::uint64_t channel_tag(const Endpoint& ep) {
  // Stable id assigned at construction: identical across runs.
  return ep.id();
}

}  // namespace sgk
