#include "util/secure_bytes.h"

namespace sgk {

void persist(const SecureBytes& session_key, Store& store) {
  SecureBytes held(session_key);
  store.put(aes128_cbc_encrypt(session_key.reveal(), iv_, payload_));
}

}  // namespace sgk
