// GKA009 clean fixture: the handler consumes wire bytes only through the
// validated-decode entrypoint, which maps every malformed input to a typed
// RejectReason instead of throwing.
#include "core/handler.h"

Decoded<Handler::Wire> Handler::validate_and_decode(const Bytes& body) {
  using D = Decoded<Wire>;
  Wire w;
  try {
    Reader r(body);
    w.type = r.u8();
    w.value = r.bignum();
    if (!r.done()) return D::rejected(RejectReason::kTrailingBytes);
  } catch (const DecodeError&) {
    return D::rejected(RejectReason::kTruncated);
  }
  return D::accepted(w);
}

void Handler::handle_message(ProcessId sender, const Bytes& body) {
  const auto decoded = validate_and_decode(body);
  if (decoded.rejected()) return;
  process(sender, decoded.value.type, decoded.value.value);
}
