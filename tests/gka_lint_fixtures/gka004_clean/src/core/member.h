#pragma once

#include "util/secure_bytes.h"

namespace sgk {

class Member {
 public:
  bool has_key() const { return !session_key_.empty(); }

 private:
  SecureBytes session_key_;
};

}  // namespace sgk
