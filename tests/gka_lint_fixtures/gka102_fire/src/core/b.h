#pragma once

#include "core/a.h"

namespace sgk {
struct B { int y; };
}  // namespace sgk
