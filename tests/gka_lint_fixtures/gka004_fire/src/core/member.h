#pragma once

#include "util/bytes.h"

namespace sgk {

class Member {
 public:
  bool has_key() const { return !session_key_.empty(); }

 private:
  Bytes session_key_;
};

}  // namespace sgk
