#include <iostream>

#include "util/secure_bytes.h"

namespace sgk {

void show(const SecureBytes& session_key) {
  auto view = session_key;
  std::cout << to_hex(view) << "\n";
}

}  // namespace sgk
