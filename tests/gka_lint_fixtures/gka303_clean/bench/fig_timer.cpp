#include "obs/wallclock.h"

namespace sgk {

// Benches are inside clock-rule scope but never read a clock themselves:
// host timing goes through the calibrated WallScope boundary.
void timed_iteration() {
  obs::WallScope wall("bench/iteration");
}

}  // namespace sgk
