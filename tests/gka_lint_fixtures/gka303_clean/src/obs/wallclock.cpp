#include "obs/wallclock.h"

#include <chrono>

namespace sgk {

// The .cpp half of the sanctioned boundary: exempt by exact path, so both
// clock families may appear here.
double wallclock_unix_ms_slow() {
  const auto now = std::chrono::system_clock::now();
  return std::chrono::duration<double, std::milli>(now.time_since_epoch())
      .count();
}

double wallclock_mono_ns() {
  const auto now = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::nano>(now.time_since_epoch())
      .count();
}

}  // namespace sgk
