// The one sanctioned host-time boundary: everything else takes timestamps
// from here (or from Simulator::now()), never from the clock directly.
#pragma once

#include <chrono>

namespace sgk {

inline double wallclock_unix_ms() {
  const auto now = std::chrono::system_clock::now();
  return std::chrono::duration<double, std::milli>(now.time_since_epoch())
      .count();
}

}  // namespace sgk
