#include "obs/wallclock.h"

namespace sgk {

// Protocol-layer code may hold a WallScope (core may include obs); what it
// may not do is read a chrono clock directly.
int timed_primitive(int x) {
  obs::WallScope wall("bignum/modexp_full");
  return x * x;
}

}  // namespace sgk
