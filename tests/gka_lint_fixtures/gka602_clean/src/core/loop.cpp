#include "util/secure_bytes.h"

namespace sgk {

// Ranged-for over the key visits every byte exactly once — the trip count
// is the (public) length, so the loop is data-independent.
int checksum(const SecureBytes& session_key) {
  int sum = 0;
  for (unsigned char b : session_key.reveal()) sum = (sum + b) & 0xff;
  return sum;
}

}  // namespace sgk
