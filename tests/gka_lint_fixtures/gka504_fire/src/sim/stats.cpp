namespace sgk {

// Mutable top-level structure in a simulation subsystem with neither
// SGK_GUARDED_BY members nor an SGK_CONFINED_TO_RUN marker: once runs go
// parallel nobody knows whether this may be shared. GKA504.
struct RunStats {
  int events_handled = 0;
  double virtual_ms = 0.0;
};

void bump(RunStats& s) { ++s.events_handled; }

}  // namespace sgk
