namespace sgk::server {

// Mutable top-level structure in the multi-group server with neither
// SGK_GUARDED_BY members nor an SGK_CONFINED_TO_RUN marker: the daemon's
// worker threads share exactly these records, so every one must be
// consciously classified. GKA504.
struct EpochLedger {
  int epochs_run = 0;
  double busy_ms = 0.0;
};

void bump(EpochLedger& l) { ++l.epochs_run; }

}  // namespace sgk::server
