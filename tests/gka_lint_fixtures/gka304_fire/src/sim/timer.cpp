#include <chrono>

namespace sgk {

double elapsed_ms(std::chrono::steady_clock::time_point start) {
  // Host monotonic time inside the simulator: replay diverges by host load.
  const auto now = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::milli>(now - start).count();
}

}  // namespace sgk
