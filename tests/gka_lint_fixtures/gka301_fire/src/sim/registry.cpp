#include <unordered_map>

namespace sgk {

// Iterating a hash map into the event queue replays differently per run.
class ProcessRegistry {
 public:
  void tick();

 private:
  std::unordered_map<std::uint64_t, double> next_wake_;
};

}  // namespace sgk
