#include <ctime>

namespace sgk {

std::uint64_t pick_seed() {
  // Ambient entropy: a different scenario every run, none reproducible.
  return static_cast<std::uint64_t>(time(nullptr));
}

}  // namespace sgk
