#include "util/thread_annotations.h"

namespace sgk::server {

// Classified the cross-thread way: workers publish into this ledger, so the
// field carries a real guard instead of a confinement marker.
class EpochLedger {
 public:
  void bump() SGK_EXCLUDES(ledger_mu_) {
    std::lock_guard<std::mutex> lock(ledger_mu_);
    ++epochs_run_;
  }

  int epochs_run() const SGK_EXCLUDES(ledger_mu_) {
    std::lock_guard<std::mutex> lock(ledger_mu_);
    return epochs_run_;
  }

 private:
  mutable std::mutex ledger_mu_;
  int epochs_run_ SGK_GUARDED_BY(ledger_mu_) = 0;
};

}  // namespace sgk::server
