#include "util/thread_annotations.h"

namespace sgk {

// Classified: this is one run's private tally, never shared across worker
// threads, so it needs no mutex.
struct RunStats {
  SGK_CONFINED_TO_RUN;
  int events_handled = 0;
  double virtual_ms = 0.0;
};

void bump(RunStats& s) { ++s.events_handled; }

}  // namespace sgk
