namespace sgk {

int next_round_id() {
  // Hidden shared state: round ids depend on every previous call in the
  // process, and the increment races once runs execute in parallel.
  static int counter = 0;
  return ++counter;
}

}  // namespace sgk
