#include "util/secure_bytes.h"

namespace sgk {

// Branching on revealed key bytes: the taken path (and so the execution
// time) depends on the secret. GKA601.
int bucket(const SecureBytes& session_key) {
  int b = 0;
  if (session_key.reveal().front() & 1)
    b = 1;
  return b;
}

}  // namespace sgk
