#include <mutex>

#include "util/thread_annotations.h"

namespace sgk {

class Pump {
 public:
  int drain(bool fast);

 private:
  std::mutex mu_;
  int backlog_ SGK_GUARDED_BY(mu_) = 0;
};

// RAII guard: every path out of the function releases the mutex.
int Pump::drain(bool fast) {
  std::lock_guard<std::mutex> lk(mu_);
  if (fast) return 0;
  const int n = backlog_;
  backlog_ = 0;
  return n;
}

}  // namespace sgk
