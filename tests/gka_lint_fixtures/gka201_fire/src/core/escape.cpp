#include "util/secure_bytes.h"

namespace sgk {

void persist(const SecureBytes& session_key, Store& store) {
  Bytes copy_bytes = session_key.reveal();
  store.put(copy_bytes);
}

}  // namespace sgk
