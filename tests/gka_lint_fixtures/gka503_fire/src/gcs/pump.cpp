#include <mutex>

namespace sgk {

class Pump {
 public:
  int drain(bool fast);

 private:
  std::mutex mu_;
  int backlog_ = 0;
};

// The early return leaves mu_ locked: GKA503 (use a lock_guard, or release
// before every exit).
int Pump::drain(bool fast) {
  mu_.lock();
  if (fast) return 0;
  const int n = backlog_;
  backlog_ = 0;
  mu_.unlock();
  return n;
}

}  // namespace sgk
