#include <mutex>

#include "util/thread_annotations.h"

namespace sgk {

class SessionTable {
 public:
  void put(int epoch);

 private:
  std::mutex mu_;
  int epoch_ SGK_GUARDED_BY(mu_) = 0;
};

// The guarded field is only touched under its mutex.
void SessionTable::put(int epoch) {
  std::lock_guard<std::mutex> lk(mu_);
  epoch_ = epoch;
}

}  // namespace sgk
