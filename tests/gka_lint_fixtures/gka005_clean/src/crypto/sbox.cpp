namespace sgk {

// Constant-time by construction: pure arithmetic, no table lookup.
int sbox(int x) { return x * 7 % 251; }

}  // namespace sgk
