#include <set>

namespace sgk {

int count_reachable(Node* root) {
  // Ordered by pointer value: the traversal order changes with ASLR.
  std::set<Node*> visited;
  visited.insert(root);
  return static_cast<int>(visited.size());
}

}  // namespace sgk
