#include <iostream>

namespace sgk {

void debug_dump(const Bytes& session_key) {
  std::cout << to_hex(session_key) << "\n";
}

}  // namespace sgk
