#include "util/secure_bytes.h"

namespace sgk {

// Indexing by a public counter (bounded by the public length) touches the
// same address sequence regardless of key value.
unsigned char rotate(const Bytes& table, const SecureBytes& session_key,
                     std::size_t i) {
  unsigned char out = table[i % session_key.size()];
  return out;
}

}  // namespace sgk
