#include <chrono>

namespace sgk {

double bench_stamp_ms() {
  // Benches are in scope too: raw host-clock timing dodges the calibrated
  // WallProfiler path.
  const auto now = std::chrono::system_clock::now();
  return std::chrono::duration<double, std::milli>(now.time_since_epoch())
      .count();
}

}  // namespace sgk
