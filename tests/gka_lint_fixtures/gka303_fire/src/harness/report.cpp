#include <chrono>

namespace sgk {

double stamp_ms() {
  // Host wall time read directly in harness logic.
  const auto now = std::chrono::system_clock::now();
  return std::chrono::duration<double, std::milli>(now.time_since_epoch())
      .count();
}

}  // namespace sgk
