#include <chrono>

namespace sgk {

double helper_stamp_ms() {
  // "wallclock" in the file name is not the boundary: only the exact paths
  // src/obs/wallclock.{h,cpp} are exempt.
  const auto now = std::chrono::system_clock::now();
  return std::chrono::duration<double, std::milli>(now.time_since_epoch())
      .count();
}

}  // namespace sgk
