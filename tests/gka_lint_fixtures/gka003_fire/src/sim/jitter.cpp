#include <random>

namespace sgk {

double jitter_ms() {
  static std::mt19937 gen(std::random_device{}());
  return static_cast<double>(gen() % 7);
}

}  // namespace sgk
