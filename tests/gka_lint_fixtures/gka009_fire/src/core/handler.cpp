// GKA009 fire fixture: a message handler that parses untrusted wire bytes
// with a bare Reader instead of going through a validate_and_decode
// entrypoint — a malformed frame would throw DecodeError past the handler.
#include "core/handler.h"

void Handler::handle_message(ProcessId sender, const Bytes& body) {
  Reader r(body);
  const auto type = r.u8();
  process(sender, type, r.bignum());
}
