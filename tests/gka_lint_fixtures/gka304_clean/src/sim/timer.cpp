#include "sim/simulator.h"

namespace sgk {

double elapsed_ms(Simulator& sim, double start_ms) {
  // Virtual time only: identical on every replay.
  return sim.now() - start_ms;
}

}  // namespace sgk
