#include "util/secure_bytes.h"

namespace sgk {

Bytes export_key(const SecureBytes& session_key) {
  return session_key.reveal();
}

}  // namespace sgk
