#include "bignum/secure_bigint.h"

namespace sgk {

// The trip count tracks the secret exponent's value: square-and-multiply
// style timing leak. GKA602.
int hamming_weight(const SecureBigInt& private_exponent) {
  int ones = 0;
  for (unsigned long w = private_exponent.reveal().limb(0); w != 0; w >>= 1)
    ones += static_cast<int>(w & 1);
  return ones;
}

}  // namespace sgk
