#pragma once

#include "bignum/bigint.h"
#include "util/bytes.h"

namespace sgk {

inline int kdf_rounds() { return 10; }

}  // namespace sgk
