#pragma once

#include "fault/hooks.h"

namespace sgk {

inline int gcs_may_consume_fault() { return 0; }

}  // namespace sgk
