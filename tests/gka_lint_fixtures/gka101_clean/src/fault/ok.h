#pragma once

#include "core/view.h"
#include "util/check.h"

namespace sgk::fault {

inline int ok_layer() { return 0; }

}  // namespace sgk::fault
