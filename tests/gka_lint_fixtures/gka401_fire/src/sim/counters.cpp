namespace sgk {

// Mutable global: two simulations in one process would share (and race on)
// this counter, and a run's result depends on what ran before it.
int g_event_count = 0;

void bump() { ++g_event_count; }

}  // namespace sgk
