namespace sgk::server {

// Mutable global in the multi-group server: every hosted group in the
// process shares (and races on) this counter, and one run's result depends
// on whatever ran before it. GKA401.
int g_groups_onboarded = 0;

void bump() { ++g_groups_onboarded; }

}  // namespace sgk::server
