namespace sgk {

// Namespace-scope constants are fine; mutable state lives in the Simulator.
constexpr int kMaxBackoffSteps = 12;
const double kDefaultJitterMs = 0.5;

struct Counters {
  SGK_CONFINED_TO_RUN;  // one run's tallies, never cross-thread
  int events = 0;
};

void bump(Counters& c) { ++c.events; }

}  // namespace sgk
