namespace sgk::server {

// Namespace-scope constants are fine; mutable tallies live in classified
// per-run (or mutex-guarded) structures.
constexpr int kMaxShards = 16;

struct OnboardTally {
  SGK_CONFINED_TO_RUN;  // one epoch's tally, owned by a single worker
  int groups = 0;
};

void bump(OnboardTally& t) { ++t.groups; }

}  // namespace sgk::server
