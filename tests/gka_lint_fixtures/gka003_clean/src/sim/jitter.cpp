#include "util/random_source.h"

namespace sgk {

double jitter_ms(RandomSource& rng) {
  return static_cast<double>(rng.below(7));
}

}  // namespace sgk
