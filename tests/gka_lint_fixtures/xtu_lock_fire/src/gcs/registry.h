#pragma once

#include <mutex>

#include "util/thread_annotations.h"

namespace sgk {

// The capability contract lives here: bump() must be called with mu_ held.
class EpochRegistry {
 public:
  void bump() SGK_REQUIRES(mu_);

  std::mutex mu_;

 private:
  int epoch_ SGK_GUARDED_BY(mu_) = 0;
};

}  // namespace sgk
