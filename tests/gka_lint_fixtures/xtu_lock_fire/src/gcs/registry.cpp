#include "gcs/registry.h"

namespace sgk {

// Fine on its own: the SGK_REQUIRES(mu_) declaration in the header puts mu_
// in this function's entry lock-set, so touching the guarded field is legal.
void EpochRegistry::bump() { ++epoch_; }

}  // namespace sgk
