#include "gcs/registry.h"

namespace sgk {

// Looks innocent in isolation: nothing in THIS file says bump() needs a
// lock. Only the whole-program pass — which merges the header's
// SGK_REQUIRES(mu_) annotation with this call site across TUs — can see
// the missing capability. GKA502.
void on_view_installed(EpochRegistry& reg) { reg.bump(); }

}  // namespace sgk
