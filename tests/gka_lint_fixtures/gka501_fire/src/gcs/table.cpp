#include <mutex>

#include "util/thread_annotations.h"

namespace sgk {

class SessionTable {
 public:
  void put(int epoch);

 private:
  std::mutex mu_;
  int epoch_ SGK_GUARDED_BY(mu_) = 0;
};

// Writes the guarded field with no lock held: GKA501.
void SessionTable::put(int epoch) { epoch_ = epoch; }

}  // namespace sgk
