#pragma once

#include "obs/trace.h"

namespace sgk {

inline double now_ms() { return 0.0; }

}  // namespace sgk
