#pragma once

#include "gcs/spread.h"

namespace sgk::fault {

inline int bad_layer() { return 1; }

}  // namespace sgk::fault
