#include <set>

namespace sgk {

int count_reachable(const Node& root) {
  // Keyed by the stable node id, not the allocation address.
  std::set<int> visited;
  visited.insert(root.id());
  return static_cast<int>(visited.size());
}

}  // namespace sgk
