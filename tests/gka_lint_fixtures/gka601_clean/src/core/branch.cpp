#include "util/secure_bytes.h"

namespace sgk {

// Branching on the key's *length* is fine: message and key sizes are public
// protocol metadata, and ct_equal is the approved comparison boundary.
bool usable(const SecureBytes& session_key, const Bytes& expected_tag,
            const Bytes& tag) {
  if (session_key.size() < 16) return false;
  return ct_equal(tag, expected_tag);
}

}  // namespace sgk
