#include <iostream>

namespace sgk {

void debug_dump(const Bytes& session_key) {
  // gka-lint: allow(GKA002)
  std::cout << to_hex(session_key) << "\n";
}

}  // namespace sgk
