#include <mutex>

#include "util/thread_annotations.h"

namespace sgk {

class EpochRegistry {
 public:
  void rekey_locked() SGK_REQUIRES(mu_);
  void rekey();

 private:
  std::mutex mu_;
  int epoch_ SGK_GUARDED_BY(mu_) = 0;
};

void EpochRegistry::rekey_locked() { ++epoch_; }

// Calls an SGK_REQUIRES(mu_) function without holding mu_: GKA502.
void EpochRegistry::rekey() { rekey_locked(); }

}  // namespace sgk
