#pragma once

#include <cstdint>

namespace sgk {

// The seed is an explicit input (CLI flag / scenario field): the run is
// reproducible by writing the seed down.
struct RunConfig {
  std::uint64_t seed = 1;
};

}  // namespace sgk
