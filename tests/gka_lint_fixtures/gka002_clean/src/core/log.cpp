#include <iostream>

namespace sgk {

void debug_dump(const Member& m) {
  std::cout << m.key_fingerprint() << "\n";
}

}  // namespace sgk
