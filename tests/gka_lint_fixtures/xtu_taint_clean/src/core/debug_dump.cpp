#include <iostream>

namespace sgk {

// The helper logs a fingerprint — an approved boundary absorbs the taint,
// so its summary records no parameter-to-sink flow.
void stash_for_debug(const Bytes& data) {
  std::cout << key_fingerprint(data) << "\n";
}

}  // namespace sgk
