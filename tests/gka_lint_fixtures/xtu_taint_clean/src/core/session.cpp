#include "util/secure_bytes.h"

namespace sgk {

void on_install(const SecureBytes& session_key) {
  stash_for_debug(session_key.reveal());
}

}  // namespace sgk
