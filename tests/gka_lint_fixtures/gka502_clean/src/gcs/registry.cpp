#include <mutex>

#include "util/thread_annotations.h"

namespace sgk {

class EpochRegistry {
 public:
  void rekey_locked() SGK_REQUIRES(mu_);
  void rekey();

 private:
  std::mutex mu_;
  int epoch_ SGK_GUARDED_BY(mu_) = 0;
};

void EpochRegistry::rekey_locked() { ++epoch_; }

// The capability is held across the call, satisfying SGK_REQUIRES(mu_).
void EpochRegistry::rekey() {
  std::lock_guard<std::mutex> lk(mu_);
  rekey_locked();
}

}  // namespace sgk
