namespace sgk {

// gka-lint: allow(GKA003) -- was needed before the DRBG migration
int next_id(Counter& c) { return c.next(); }

}  // namespace sgk
