#include "util/secure_bytes.h"

namespace sgk {

SecureBytes export_key(const SecureBytes& session_key) {
  return SecureBytes(session_key.reveal());
}

}  // namespace sgk
