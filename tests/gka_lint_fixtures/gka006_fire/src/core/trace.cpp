#include "obs/trace.h"

namespace sgk {

void annotate(obs::Tracer* tr, const obs::Span& span, const Bytes& session_key) {
  tr->attr(span, "k", obs::Json(session_key));
}

}  // namespace sgk
