#include <iostream>

namespace sgk {

// Looks innocent in isolation: `data` is not a secret-ish name and nothing
// in this file is tainted. The taint summary records that argument 0 flows
// into a logging sink.
void stash_for_debug(const Bytes& data) {
  std::cout << to_hex(data) << "\n";
}

}  // namespace sgk
