#include "util/secure_bytes.h"

namespace sgk {

// Also clean under a function-local pass: stash_for_debug is not a known
// sink name, and nothing here is declared, returned, or logged directly.
// Only the cross-TU summary connects reveal() -> stash_for_debug -> cout.
void on_install(const SecureBytes& session_key) {
  stash_for_debug(session_key.reveal());
}

}  // namespace sgk
