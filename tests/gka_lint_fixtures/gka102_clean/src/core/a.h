#pragma once

#include "core/b.h"

namespace sgk {
struct A { int x; };
}  // namespace sgk
