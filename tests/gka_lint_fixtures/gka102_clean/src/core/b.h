#pragma once

namespace sgk {
struct B { int y; };
}  // namespace sgk
