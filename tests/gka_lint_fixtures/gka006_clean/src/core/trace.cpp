#include "obs/trace.h"

namespace sgk {

void annotate(obs::Tracer* tr, const obs::Span& span, std::uint64_t key_epoch) {
  tr->attr(span, "epoch", obs::Json(key_epoch));
}

}  // namespace sgk
