#include <cstdint>

namespace sgk {

std::uint64_t channel_tag(const Endpoint* ep) {
  // The "tag" is the allocation address: differs per run under ASLR.
  return static_cast<std::uint64_t>(reinterpret_cast<std::uintptr_t>(ep));
}

}  // namespace sgk
