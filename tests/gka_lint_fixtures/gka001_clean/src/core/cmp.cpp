#include "util/bytes.h"

namespace sgk {

bool same_key(const Bytes& a, const Bytes& session_key) {
  return ct_equal(a, session_key);
}

}  // namespace sgk
