#include <mutex>

#include "gcs/registry.h"

namespace sgk {

// The capability is acquired before the cross-TU call, so the merged
// annotation is satisfied.
void on_view_installed(EpochRegistry& reg) {
  std::lock_guard<std::mutex> lk(reg.mu_);
  reg.bump();
}

}  // namespace sgk
