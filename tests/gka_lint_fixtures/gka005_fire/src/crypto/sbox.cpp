namespace sgk {

// TODO: replace with a constant-time table lookup
int sbox(int x) { return x * 7 % 251; }

}  // namespace sgk
