#include "util/secure_bytes.h"

namespace sgk {

// Table lookup indexed by a key byte: which cache line is touched depends
// on the secret (classic S-box timing channel). GKA603.
unsigned char sbox(const Bytes& table, const SecureBytes& session_key) {
  unsigned char out = table[session_key.reveal().front()];
  return out;
}

}  // namespace sgk
