#include <map>

namespace sgk {

// std::map iterates in key order: identical schedules on every run.
class ProcessRegistry {
  SGK_CONFINED_TO_RUN;  // per-run schedule state

 public:
  void tick();

 private:
  std::map<std::uint64_t, double> next_wake_;
};

}  // namespace sgk
