// End-to-end chaos harness tests: scripted cascaded-membership scenarios per
// protocol through run_chaos, plus the determinism guarantee that makes a
// failing seed reproducible. These are the scripted counterparts of the
// randomized sweeps bench/chaos_soak runs; each script is timed so the later
// op lands inside the agreement started by the earlier one.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "harness/chaos.h"
#include "protocol_harness.h"

namespace sgk {
namespace {

using fault::ChurnKind;
using fault::ChurnOp;

class Chaos : public ::testing::TestWithParam<ProtocolKind> {
 protected:
  ChaosConfig base_config() const {
    ChaosConfig cfg;
    cfg.protocol = GetParam();
    cfg.initial_size = 6;
    cfg.seed = 17;
    cfg.rates = fault::FaultRates::uniform(0.1);
    return cfg;
  }

  void expect_converged(const ChaosResult& r, const ChaosConfig& cfg) {
    EXPECT_TRUE(r.converged);
    EXPECT_TRUE(r.violations.empty())
        << "first violation: " << r.violations.front();
    EXPECT_EQ(r.churn_applied, cfg.script.size());
    EXPECT_GT(r.final_epoch, 0u);
    EXPECT_FALSE(r.fingerprint.empty());
    // Wire faults actually fired (rates are non-zero).
    EXPECT_GT(r.wire.daemon_copies, 0u);
  }
};

TEST_P(Chaos, JoinDuringJoinConverges) {
  ChaosConfig cfg = base_config();
  cfg.script = {ChurnOp{60.0, ChurnKind::kJoin, 0},
                ChurnOp{62.0, ChurnKind::kJoin, 0}};
  expect_converged(run_chaos(cfg), cfg);
}

TEST_P(Chaos, LeaveDuringMergeConverges) {
  ChaosConfig cfg = base_config();
  // Partition, heal (starting a merge agreement), then a leave landing
  // inside that merge.
  cfg.script = {ChurnOp{60.0, ChurnKind::kPartition, 2},
                ChurnOp{120.0, ChurnKind::kHeal, 0},
                ChurnOp{122.0, ChurnKind::kLeave, 1}};
  expect_converged(run_chaos(cfg), cfg);
}

TEST_P(Chaos, PartitionDuringAgreementConverges) {
  ChaosConfig cfg = base_config();
  // The partition interrupts the join's in-flight agreement; after the heal
  // every member must reconverge on one key.
  cfg.script = {ChurnOp{60.0, ChurnKind::kJoin, 0},
                ChurnOp{62.0, ChurnKind::kPartition, 3},
                ChurnOp{110.0, ChurnKind::kHeal, 0}};
  expect_converged(run_chaos(cfg), cfg);
}

TEST_P(Chaos, CrashDuringAgreementConverges) {
  ChaosConfig cfg = base_config();
  // Abrupt daemon-crash model: no leave message; the membership protocol
  // discovers the absence mid-agreement.
  cfg.script = {ChurnOp{60.0, ChurnKind::kJoin, 0},
                ChurnOp{62.0, ChurnKind::kCrash, 2}};
  expect_converged(run_chaos(cfg), cfg);
}

TEST_P(Chaos, RekeyDuringOnboardingThenLeaveConverges) {
  // Regression (found by the multi-group server's seed sweep): a rekey
  // lands inside the still-running initial agreement, and a leave lands
  // inside the restarted one. The first restart used to strand a GDH
  // member whose partial-key broadcast died with the interrupted instance
  // but whose local cache survived looking established; it then keyed
  // from stale peer exponents and the group silently forked onto two
  // divergent keys. The clean wire keeps the timing deterministic so the
  // ops hit exactly those windows.
  ChaosConfig cfg = base_config();
  cfg.initial_size = 3;
  cfg.rates = fault::FaultRates{};
  cfg.script = {ChurnOp{50.0, ChurnKind::kRekey, 1},
                ChurnOp{78.0, ChurnKind::kLeave, 1}};
  const ChaosResult r = run_chaos(cfg);
  EXPECT_TRUE(r.converged);
  EXPECT_TRUE(r.violations.empty())
      << "first violation: " << r.violations.front();
  EXPECT_EQ(r.churn_applied, cfg.script.size());
  EXPECT_EQ(r.final_size, 2u);
}

TEST_P(Chaos, RandomizedRunIsDeterministic) {
  ChaosConfig cfg = base_config();
  cfg.events = 4;
  const ChaosResult a = run_chaos(cfg);
  const ChaosResult b = run_chaos(cfg);
  EXPECT_TRUE(a.converged);
  EXPECT_TRUE(a.violations.empty())
      << "first violation: " << a.violations.front();
  // Bit-for-bit replay: same config, same run.
  EXPECT_EQ(a.fingerprint, b.fingerprint);
  EXPECT_EQ(a.end_ms, b.end_ms);
  EXPECT_EQ(a.convergence_ms, b.convergence_ms);
  EXPECT_EQ(a.final_epoch, b.final_epoch);
  EXPECT_EQ(a.final_size, b.final_size);
  EXPECT_EQ(a.restarts, b.restarts);
  EXPECT_EQ(a.stale_dropped, b.stale_dropped);
  EXPECT_EQ(a.wire.daemon_copies, b.wire.daemon_copies);
  EXPECT_EQ(a.wire.dropped, b.wire.dropped);
  EXPECT_EQ(a.wire.duplicated, b.wire.duplicated);
}

INSTANTIATE_TEST_SUITE_P(
    Protocols, Chaos, ::testing::ValuesIn(sgk::testing::all_protocols()),
    [](const ::testing::TestParamInfo<ProtocolKind>& info) {
      return std::string(to_string(info.param));
    });

}  // namespace
}  // namespace sgk
