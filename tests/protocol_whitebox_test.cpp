// White-box tests of protocol internals: controller/sponsor identities, key
// structure relations, and the math underlying BD.
#include <gtest/gtest.h>

#include "bignum/modmath.h"
#include "core/bd.h"
#include "core/ckd.h"
#include "core/gdh.h"
#include "core/str.h"
#include "core/tgdh.h"
#include "crypto/drbg.h"
#include "tests/protocol_harness.h"

namespace sgk {
namespace {

using testing::ProtocolFixture;

// ---------------------------------------------------------------------------
// GDH

TEST(GdhWhitebox, ControllerIsNewestMember) {
  ProtocolFixture f(ProtocolKind::kGdh);
  f.grow_to(4);
  for (SecureGroupMember* m : f.alive()) {
    auto& gdh = static_cast<GdhProtocol&>(m->protocol());
    // The controller is the most recently added member.
    EXPECT_EQ(gdh.controller(), f.members.back()->id());
  }
}

TEST(GdhWhitebox, JoinOrderConsistentAcrossMembers) {
  ProtocolFixture f(ProtocolKind::kGdh);
  f.grow_to(5);
  auto& first = static_cast<GdhProtocol&>(f.members[0]->protocol());
  for (SecureGroupMember* m : f.alive()) {
    auto& gdh = static_cast<GdhProtocol&>(m->protocol());
    EXPECT_EQ(gdh.join_order(), first.join_order());
  }
  EXPECT_EQ(first.join_order().size(), 5u);
}

TEST(GdhWhitebox, ControllerLeaveElectsPreviousNewest) {
  ProtocolFixture f(ProtocolKind::kGdh);
  f.grow_to(4);
  // The controller (last joiner) leaves; the next-most-recent survivor
  // becomes controller.
  ProcessId expected = f.members[2]->id();
  f.remove_member(3);
  f.expect_agreement();
  for (SecureGroupMember* m : f.alive()) {
    auto& gdh = static_cast<GdhProtocol&>(m->protocol());
    EXPECT_EQ(gdh.controller(), expected);
  }
}

// ---------------------------------------------------------------------------
// CKD

TEST(CkdWhitebox, ControllerIsOldestMember) {
  ProtocolFixture f(ProtocolKind::kCkd);
  f.grow_to(4);
  for (SecureGroupMember* m : f.alive()) {
    auto& ckd = static_cast<CkdProtocol&>(m->protocol());
    EXPECT_EQ(ckd.controller(), f.members.front()->id());
  }
}

TEST(CkdWhitebox, ControllerLeavePromotesNextOldest) {
  ProtocolFixture f(ProtocolKind::kCkd);
  f.grow_to(4);
  ProcessId expected = f.members[1]->id();
  f.remove_member(0);  // the controller
  f.expect_agreement();
  for (SecureGroupMember* m : f.alive()) {
    auto& ckd = static_cast<CkdProtocol&>(m->protocol());
    EXPECT_EQ(ckd.controller(), expected);
  }
}

TEST(CkdWhitebox, ControllerLeaveCostsMoreThanMemberLeave) {
  // The paper: "when the controller leaves the group, the new group
  // controller must establish secure channels with all group members."
  double controller_case, member_case;
  {
    ProtocolFixture f(ProtocolKind::kCkd);
    f.grow_to(6);
    SimTime t0 = f.sim.now();
    f.remove_member(0);  // controller
    controller_case = f.members[5]->key_time() - t0;
  }
  {
    ProtocolFixture f(ProtocolKind::kCkd);
    f.grow_to(6);
    SimTime t0 = f.sim.now();
    f.remove_member(3);  // ordinary member
    member_case = f.members[5]->key_time() - t0;
  }
  EXPECT_GT(controller_case, 1.5 * member_case);
}

// ---------------------------------------------------------------------------
// STR

TEST(StrWhitebox, ChainFollowsJoinOrder) {
  ProtocolFixture f(ProtocolKind::kStr);
  f.grow_to(5);
  for (SecureGroupMember* m : f.alive()) {
    auto& str = static_cast<StrProtocol&>(m->protocol());
    ASSERT_EQ(str.chain().size(), 5u);
    // Incremental joins stack on top: chain order == join order.
    for (std::size_t i = 0; i < 5; ++i)
      EXPECT_EQ(str.chain()[i], f.members[i]->id());
  }
}

TEST(StrWhitebox, ChainsIdenticalAcrossMembersAfterChurn) {
  ProtocolFixture f(ProtocolKind::kStr);
  f.grow_to(6);
  f.remove_member(2);
  f.add_member();
  auto live = f.alive();
  auto& first = static_cast<StrProtocol&>(live[0]->protocol());
  for (SecureGroupMember* m : live) {
    auto& str = static_cast<StrProtocol&>(m->protocol());
    EXPECT_EQ(str.chain(), first.chain());
  }
}

// ---------------------------------------------------------------------------
// TGDH

TEST(TgdhWhitebox, TreesStructurallyIdenticalAcrossMembers) {
  ProtocolFixture f(ProtocolKind::kTgdh);
  f.grow_to(7);
  auto live = f.alive();
  auto& first = static_cast<TgdhProtocol&>(live[0]->protocol());
  for (SecureGroupMember* m : live) {
    auto& tgdh = static_cast<TgdhProtocol&>(m->protocol());
    EXPECT_TRUE(tgdh.tree().same_structure(first.tree()));
  }
}

TEST(TgdhWhitebox, MemberKnowsOnlyItsPathKeys) {
  ProtocolFixture f(ProtocolKind::kTgdh);
  f.grow_to(6);
  for (SecureGroupMember* m : f.alive()) {
    auto& tgdh = static_cast<TgdhProtocol&>(m->protocol());
    const KeyTree& tree = tgdh.tree();
    int my_leaf = tree.find_leaf(m->id());
    ASSERT_NE(my_leaf, -1);
    // Keys on my path must be known; keys at other leaves must not be.
    EXPECT_TRUE(tree.node(my_leaf).has_key);
    for (ProcessId other : tree.members()) {
      if (other == m->id()) continue;
      EXPECT_FALSE(tree.node(tree.find_leaf(other)).has_key)
          << "member " << m->id() << " knows the secret of " << other;
    }
    // And the root key (the group key) is known.
    EXPECT_TRUE(tree.node(tree.root()).has_key);
  }
}

TEST(TgdhWhitebox, TreeHeightStaysLogarithmic) {
  ProtocolFixture f(ProtocolKind::kTgdh);
  f.grow_to(16);
  auto& tgdh = static_cast<TgdhProtocol&>(f.alive()[0]->protocol());
  const KeyTree& tree = tgdh.tree();
  EXPECT_LE(tree.height(tree.root()), 5);  // ceil(log2 16) + 1
}

// ---------------------------------------------------------------------------
// BD math: the implemented combination yields g^(r1r2 + r2r3 + ... + rn r1).

TEST(BdMath, KeyFormulaMatchesDefinition) {
  const DhGroup& grp = dh_group(DhBits::k512);
  Drbg rng(77, "bd-math");
  for (std::size_t n : {2u, 3u, 5u, 8u}) {
    std::vector<BigInt> r(n);
    std::vector<BigInt> z(n);
    for (std::size_t i = 0; i < n; ++i) {
      r[i] = grp.random_exponent(rng);
      z[i] = grp.exp_g(r[i]);
    }
    auto mod = [&](std::ptrdiff_t i) {
      return static_cast<std::size_t>(((i % static_cast<std::ptrdiff_t>(n)) +
                                       static_cast<std::ptrdiff_t>(n)) %
                                      static_cast<std::ptrdiff_t>(n));
    };
    std::vector<BigInt> x(n);
    for (std::size_t i = 0; i < n; ++i) {
      BigInt ratio =
          z[mod(static_cast<std::ptrdiff_t>(i) + 1)] *
          mod_inverse(z[mod(static_cast<std::ptrdiff_t>(i) - 1)], grp.p()) %
          grp.p();
      x[i] = grp.exp(ratio, r[i]);
    }
    // Every member's combination...
    std::vector<BigInt> keys(n);
    for (std::size_t i = 0; i < n; ++i) {
      BigInt k = grp.exp(z[mod(static_cast<std::ptrdiff_t>(i) - 1)],
                         BigInt(n) * r[i] % grp.q());
      for (std::size_t j = 0; j + 1 < n; ++j) {
        const BigInt& xj = x[mod(static_cast<std::ptrdiff_t>(i + j))];
        BigInt e(static_cast<std::uint64_t>(n - 1 - j));
        k = k * grp.exp(xj, e) % grp.p();
      }
      keys[i] = k;
    }
    // ...equals the closed form g^(sum of adjacent products).
    BigInt exponent;
    for (std::size_t i = 0; i < n; ++i)
      exponent = (exponent + r[i] * r[mod(static_cast<std::ptrdiff_t>(i) + 1)]) % grp.q();
    BigInt expected = grp.exp_g(exponent);
    for (std::size_t i = 0; i < n; ++i)
      EXPECT_TRUE(ct_equal(keys[i].to_bytes(), expected.to_bytes()))
          << "member " << i << " of " << n;
  }
}

// ---------------------------------------------------------------------------
// Cross-protocol: counters sanity against Table 1 shapes.

TEST(Counters, GdhLeaveIsOneBroadcastLinearExps) {
  ProtocolFixture f(ProtocolKind::kGdh);
  f.grow_to(8);
  OpCounters before;
  for (SecureGroupMember* m : f.alive()) before += m->counters();
  before = before - f.members[4]->counters();
  f.remove_member(4);
  OpCounters after;
  for (SecureGroupMember* m : f.alive()) after += m->counters();
  OpCounters delta = after - before;
  EXPECT_EQ(delta.multicasts, 1u);  // one controller broadcast
  EXPECT_EQ(delta.sign_ops, 1u);
  // Controller: n-l refresh exps + own key; members: one exp each.
  EXPECT_EQ(delta.exp_full, 7u + 6u);
}

TEST(Counters, BdJoinIsTwoBroadcastRounds) {
  ProtocolFixture f(ProtocolKind::kBd);
  f.grow_to(3);
  OpCounters before;
  for (SecureGroupMember* m : f.alive()) before += m->counters();
  f.add_member();
  OpCounters after;
  for (SecureGroupMember* m : f.alive()) after += m->counters();
  OpCounters delta = after - before;
  EXPECT_EQ(delta.multicasts, 8u);  // 2 rounds x 4 members
  EXPECT_EQ(delta.sign_ops, 8u);
  // Every member verifies everyone else's two broadcasts.
  EXPECT_EQ(delta.verify_ops, 4u * 2u * 3u);
}

TEST(Counters, StrJoinIsThreeMessages) {
  ProtocolFixture f(ProtocolKind::kStr);
  f.grow_to(5);
  OpCounters before;
  for (SecureGroupMember* m : f.alive()) before += m->counters();
  f.add_member();
  OpCounters after;
  for (SecureGroupMember* m : f.alive()) after += m->counters();
  OpCounters delta = after - before;
  EXPECT_EQ(delta.multicasts, 3u);  // two announcements + one update
  EXPECT_EQ(delta.sign_ops, 3u);
}

TEST(Counters, TgdhJoinIsThreeMessages) {
  ProtocolFixture f(ProtocolKind::kTgdh);
  f.grow_to(5);
  OpCounters before;
  for (SecureGroupMember* m : f.alive()) before += m->counters();
  f.add_member();
  OpCounters after;
  for (SecureGroupMember* m : f.alive()) after += m->counters();
  OpCounters delta = after - before;
  EXPECT_EQ(delta.multicasts, 3u);
  EXPECT_EQ(delta.sign_ops, 3u);
}

TEST(Counters, CkdJoinUsesUnicastResponse) {
  ProtocolFixture f(ProtocolKind::kCkd);
  f.grow_to(4);
  OpCounters before;
  for (SecureGroupMember* m : f.alive()) before += m->counters();
  f.add_member();
  OpCounters after;
  for (SecureGroupMember* m : f.alive()) after += m->counters();
  OpCounters delta = after - before;
  EXPECT_EQ(delta.multicasts, 2u);  // challenge + key broadcast
  EXPECT_EQ(delta.unicasts, 1u);    // new member's response
  EXPECT_EQ(delta.sign_ops, 3u);
}

TEST(Counters, NoneProtocolDoesNoCrypto) {
  ProtocolFixture f(ProtocolKind::kNone);
  f.grow_to(6);
  f.remove_member(3);
  for (SecureGroupMember* m : f.alive()) {
    EXPECT_EQ(m->counters().exp_total(), 0u);
    EXPECT_EQ(m->counters().sign_ops, 0u);
    EXPECT_EQ(m->counters().verify_ops, 0u);
    EXPECT_EQ(m->counters().messages(), 0u);
  }
}

}  // namespace
}  // namespace sgk
