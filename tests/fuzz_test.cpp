// Fuzz harness tests: the adversarial-wire runs are bit-for-bit
// deterministic in their config, survive the mutation menus in both
// verification regimes, and a mutation-free run stays an honest chaos run.
#include <gtest/gtest.h>

#include "harness/fuzz.h"

namespace sgk {
namespace {

FuzzConfig small_config(ProtocolKind protocol, std::uint64_t seed,
                        double rate, bool verify_signatures,
                        std::size_t group_size = 5, std::size_t events = 3) {
  FuzzConfig cfg;
  cfg.chaos.protocol = protocol;
  cfg.chaos.seed = seed;
  cfg.chaos.initial_size = group_size;
  cfg.chaos.events = events;
  cfg.chaos.mutation_rate = rate;
  cfg.chaos.verify_signatures = verify_signatures;
  return cfg;
}

TEST(FuzzHarness, DeterministicAcrossRuns) {
  const FuzzConfig cfg = small_config(ProtocolKind::kGdh, 7, 0.05, true);
  const FuzzResult a = run_fuzz(cfg);
  const FuzzResult b = run_fuzz(cfg);
  EXPECT_EQ(a.survived, b.survived);
  EXPECT_EQ(a.crashed, b.crashed);
  EXPECT_EQ(a.chaos.converged, b.chaos.converged);
  EXPECT_EQ(a.chaos.fingerprint, b.chaos.fingerprint);
  EXPECT_EQ(a.chaos.final_epoch, b.chaos.final_epoch);
  EXPECT_EQ(a.chaos.frames_mutated, b.chaos.frames_mutated);
  EXPECT_EQ(a.chaos.frames_rejected, b.chaos.frames_rejected);
  EXPECT_EQ(a.chaos.recoveries, b.chaos.recoveries);
  EXPECT_DOUBLE_EQ(a.chaos.convergence_ms, b.chaos.convergence_ms);
  EXPECT_EQ(a.chaos.violations, b.chaos.violations);
}

TEST(FuzzHarness, SurvivesSignedFullMenu) {
  const FuzzResult r =
      run_fuzz(small_config(ProtocolKind::kBd, 6, 0.1, true, 8, 6));
  EXPECT_FALSE(r.crashed);
  EXPECT_TRUE(r.survived) << (r.chaos.violations.empty()
                                  ? "not converged"
                                  : r.chaos.violations.front());
  EXPECT_GT(r.chaos.frames_mutated, 0u);
  EXPECT_GT(r.chaos.frames_rejected, 0u);
}

TEST(FuzzHarness, SurvivesUnsignedDetectableMenu) {
  const FuzzResult r =
      run_fuzz(small_config(ProtocolKind::kStr, 7, 0.1, false, 8, 6));
  EXPECT_FALSE(r.crashed);
  EXPECT_TRUE(r.survived) << (r.chaos.violations.empty()
                                  ? "not converged"
                                  : r.chaos.violations.front());
  EXPECT_GT(r.chaos.frames_mutated, 0u);
}

TEST(FuzzHarness, ZeroRateIsAnHonestChaosRun) {
  const FuzzResult r =
      run_fuzz(small_config(ProtocolKind::kTgdh, 11, 0.0, true));
  EXPECT_FALSE(r.crashed);
  EXPECT_TRUE(r.survived);
  EXPECT_EQ(r.chaos.frames_mutated, 0u);
}

TEST(FuzzHarness, WatchdogDefaultIsAppliedWithoutMutatingCallerConfig) {
  FuzzConfig cfg = small_config(ProtocolKind::kGdh, 2, 0.05, true);
  cfg.chaos.recovery_watchdog_ms = 0.0;
  const FuzzResult r = run_fuzz(cfg);
  EXPECT_EQ(cfg.chaos.recovery_watchdog_ms, 0.0);  // run_fuzz copies
  EXPECT_FALSE(r.crashed);
}

}  // namespace
}  // namespace sgk
