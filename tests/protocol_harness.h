// Shared fixture for protocol tests: a simulated LAN/WAN with
// SecureGroupMembers attached, plus helpers to drive membership events and
// assert group-wide key agreement.
#pragma once

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "gcs/secure_group.h"
#include "gcs/spread.h"

namespace sgk::testing {

struct ProtocolFixture {
  explicit ProtocolFixture(ProtocolKind protocol, Topology topo = lan_testbed(),
                           DhBits bits = DhBits::k512)
      : topology(std::move(topo)),
        net(sim, topology),
        pki(std::make_shared<Pki>()),
        protocol_kind(protocol),
        dh_bits(bits) {}

  /// Creates a member on machine (index % machine_count) and joins it.
  SecureGroupMember& add_member() {
    const MachineId machine =
        static_cast<MachineId>(members.size() % topology.machine_count());
    const ProcessId pid = net.create_process(machine);
    MemberConfig cfg;
    cfg.protocol = protocol_kind;
    cfg.dh_bits = dh_bits;
    cfg.seed = 42;
    members.push_back(std::make_unique<SecureGroupMember>(net, pid, pki, cfg));
    members.back()->join();
    sim.run();
    return *members.back();
  }

  /// Grows the group to `n` members.
  void grow_to(std::size_t n) {
    while (alive_count() < n) add_member();
  }

  std::size_t alive_count() const {
    std::size_t n = 0;
    for (const auto& m : members)
      if (m) ++n;
    return n;
  }

  /// Members currently alive.
  std::vector<SecureGroupMember*> alive() const {
    std::vector<SecureGroupMember*> out;
    for (const auto& m : members)
      if (m) out.push_back(m.get());
    return out;
  }

  /// Removes member at `index` from the group (leave event).
  void remove_member(std::size_t index) {
    ASSERT_TRUE(members.at(index));
    members[index]->leave();
    members[index].reset();
    sim.run();
  }

  /// Asserts every alive member holds an identical, non-empty key for the
  /// same epoch.
  void expect_agreement() {
    auto live = alive();
    ASSERT_FALSE(live.empty());
    ASSERT_TRUE(live[0]->has_key()) << "first member has no key";
    for (SecureGroupMember* m : live) {
      ASSERT_TRUE(m->has_key()) << "member " << m->id() << " has no key";
      EXPECT_EQ(m->key_epoch(), live[0]->key_epoch())
          << "member " << m->id() << " is at a different epoch";
      // Constant-time comparison; key material is never hex-dumped, even in
      // failure messages (gka_lint GKA002).
      EXPECT_TRUE(ct_equal(m->key(), live[0]->key()))
          << "member " << m->id() << " derived a different key";
    }
  }

  /// Raw copy of the agreed key block. Only for tests that must inspect key
  /// material (e.g. scanning wire traffic for leaks); prefer
  /// current_fingerprint() everywhere else.
  Bytes current_key() const {
    auto live = alive();
    // gka-lint: allow(GKA202) -- the documented test-only escape hatch above
    return live.empty() ? Bytes{} : live[0]->key().reveal();
  }

  /// Loggable fingerprint of the agreed key (see
  /// SecureGroupMember::key_fingerprint).
  std::string current_fingerprint() const {
    auto live = alive();
    return live.empty() ? std::string{} : live[0]->key_fingerprint();
  }

  Simulator sim;
  Topology topology;
  SpreadNetwork net;
  std::shared_ptr<Pki> pki;
  ProtocolKind protocol_kind;
  DhBits dh_bits;
  std::vector<std::unique_ptr<SecureGroupMember>> members;
};

inline std::vector<ProtocolKind> all_protocols() {
  return {ProtocolKind::kGdh, ProtocolKind::kCkd, ProtocolKind::kTgdh,
          ProtocolKind::kStr, ProtocolKind::kBd};
}

}  // namespace sgk::testing
