// Tests of the eagerly-balancing TGDH variant (TGDH-bal) and of
// KeyTree::rebuild_balanced.
#include <gtest/gtest.h>

#include <set>

#include "core/tgdh.h"
#include "tests/protocol_harness.h"

namespace sgk {
namespace {

using testing::ProtocolFixture;

TEST(RebuildBalanced, ProducesMinimalHeight) {
  KeyTree t = KeyTree::leaf(0);
  for (ProcessId p = 1; p < 11; ++p) {
    KeyTree leaf = KeyTree::leaf(p);
    t.merge(leaf);
  }
  // Force an unbalanced shape by removing a cluster of leaves.
  t.remove_members({1, 2, 3, 4, 5});
  t.rebuild_balanced();
  // 6 members -> minimal height 3.
  EXPECT_EQ(t.members().size(), 6u);
  EXPECT_LE(t.height(t.root()), 3);
}

TEST(RebuildBalanced, PreservesLeafStateOrderAndSecrets) {
  KeyTree t = KeyTree::leaf(5);
  KeyTree l7 = KeyTree::leaf(7);
  KeyTree l9 = KeyTree::leaf(9);
  t.merge(l7);
  t.merge(l9);
  int leaf7 = t.find_leaf(7);
  t.node(leaf7).has_key = true;
  t.node(leaf7).key = BigInt(12345);
  t.node(leaf7).has_bkey = true;
  t.node(leaf7).bkey = BigInt(777);
  t.node(leaf7).bkey_published = true;
  std::vector<ProcessId> before = t.members();

  t.rebuild_balanced();
  EXPECT_EQ(t.members(), before);  // order preserved
  int new_leaf7 = t.find_leaf(7);
  ASSERT_NE(new_leaf7, -1);
  EXPECT_TRUE(t.node(new_leaf7).has_key);
  EXPECT_EQ(t.node(new_leaf7).key.get(), BigInt(12345));
  EXPECT_TRUE(t.node(new_leaf7).bkey_published);
  // Internal nodes are fresh and invalid.
  EXPECT_FALSE(t.node(t.root()).has_key);
  EXPECT_FALSE(t.node(t.root()).has_bkey);
}

TEST(RebuildBalanced, SingleLeafIsNoop) {
  KeyTree t = KeyTree::leaf(3);
  t.rebuild_balanced();
  EXPECT_EQ(t.members(), std::vector<ProcessId>{3});
  EXPECT_EQ(t.height(t.root()), 0);
}

TEST(TgdhBalanced, AgreementAcrossChurn) {
  ProtocolFixture f(ProtocolKind::kTgdhBalanced);
  for (int i = 0; i < 8; ++i) {
    f.add_member();
    f.expect_agreement();
  }
  for (std::size_t idx : {1u, 2u, 3u}) {
    f.remove_member(idx);
    f.expect_agreement();
  }
  f.add_member();
  f.expect_agreement();
}

TEST(TgdhBalanced, TreeStaysMinimalAfterClusterLeave) {
  ProtocolFixture f(ProtocolKind::kTgdhBalanced);
  f.grow_to(12);
  // Remove five members; the plain variant would leave a ragged tree.
  for (std::size_t idx : {2u, 3u, 4u, 5u, 6u}) f.remove_member(idx);
  f.expect_agreement();
  auto& tgdh = static_cast<TgdhProtocol&>(f.alive()[0]->protocol());
  const KeyTree& tree = tgdh.tree();
  EXPECT_LE(tree.height(tree.root()), 3);  // 7 members -> minimal height 3
}

TEST(TgdhBalanced, LeaveUsesMoreMessagesThanPlainTgdh) {
  // The documented trade-off: rebalancing costs extra broadcast rounds.
  auto leave_messages = [](ProtocolKind kind) {
    ProtocolFixture f(kind);
    f.grow_to(12);
    for (std::size_t idx : {2u, 3u, 4u}) f.remove_member(idx);
    OpCounters total;
    for (SecureGroupMember* m : f.alive()) total += m->counters();
    return total.multicasts;
  };
  EXPECT_GE(leave_messages(ProtocolKind::kTgdhBalanced),
            leave_messages(ProtocolKind::kTgdh));
}

TEST(TgdhBalanced, PartitionAndMergeConverge) {
  ProtocolFixture f(ProtocolKind::kTgdhBalanced, lan_testbed(6));
  f.grow_to(6);
  f.net.partition({{0, 1, 2}, {3, 4, 5}});
  f.sim.run();
  f.net.heal();
  f.sim.run();
  f.expect_agreement();
}

TEST(TgdhBalanced, KeysFreshOnRebalancedLeave) {
  ProtocolFixture f(ProtocolKind::kTgdhBalanced);
  f.grow_to(10);
  std::set<std::string> keys;
  keys.insert(f.current_fingerprint());
  for (std::size_t idx : {1u, 2u, 3u, 4u}) {
    f.remove_member(idx);
    f.expect_agreement();
    EXPECT_TRUE(keys.insert(f.current_fingerprint()).second);
  }
}

}  // namespace
}  // namespace sgk
