// GCS edge cases: token parking/waking, view deduplication, forced
// refreshes, multi-group partitions, and component bookkeeping.
#include <gtest/gtest.h>

#include "util/check.h"
#include "gcs/spread.h"
#include "util/serde.h"

namespace sgk {
namespace {

class CountingClient : public GroupClient {
 public:
  void on_view(const std::string&, const View& v, const ViewDelta& d) override {
    ++views;
    last_view = v;
    last_delta = d;
  }
  void on_message(const std::string&, ProcessId, const Bytes&) override {
    ++messages;
  }
  int views = 0;
  int messages = 0;
  View last_view;
  ViewDelta last_delta;
};

struct Bed {
  explicit Bed(Topology t = lan_testbed(4)) : topo(std::move(t)), net(sim, topo) {}
  ProcessId spawn(MachineId m) {
    ProcessId p = net.create_process(m);
    clients.push_back(std::make_unique<CountingClient>());
    net.attach(p, clients.back().get());
    return p;
  }
  Simulator sim;
  Topology topo;
  SpreadNetwork net;
  std::vector<std::unique_ptr<CountingClient>> clients;
};

TEST(GcsEdge, SimulationQuiescesAfterActivity) {
  // The token must park; otherwise sim.run() would never return (this test
  // finishing at all is the assertion, plus a bounded event count).
  Bed b;
  ProcessId a = b.spawn(0);
  b.net.join_group("g", a);
  b.sim.run();
  std::uint64_t events_after_join = b.sim.executed();
  b.net.multicast("g", a, str_bytes("x"));
  b.sim.run();
  EXPECT_LT(b.sim.executed() - events_after_join, 200u);
}

TEST(GcsEdge, DuplicateViewRequestsCollapse) {
  Bed b;
  ProcessId a = b.spawn(0);
  ProcessId c = b.spawn(1);
  b.net.join_group("g", a);
  // Two processes join before the sim runs: their membership changes may
  // collapse into fewer views, but the final view must contain both.
  b.net.join_group("g", c);
  b.sim.run();
  EXPECT_EQ(b.clients[a]->last_view.members, (std::vector<ProcessId>{a, c}));
  EXPECT_EQ(b.clients[c]->last_view.members, (std::vector<ProcessId>{a, c}));
}

TEST(GcsEdge, RefreshForcesNewViewSameMembers) {
  Bed b;
  ProcessId a = b.spawn(0);
  ProcessId c = b.spawn(1);
  b.net.join_group("g", a);
  b.net.join_group("g", c);
  b.sim.run();
  int views_before = b.clients[a]->views;
  std::uint64_t id_before = b.clients[a]->last_view.view_id;
  b.net.refresh_group("g", a);
  b.sim.run();
  EXPECT_EQ(b.clients[a]->views, views_before + 1);
  EXPECT_GT(b.clients[a]->last_view.view_id, id_before);
  EXPECT_EQ(b.clients[a]->last_view.members, (std::vector<ProcessId>{a, c}));
  EXPECT_EQ(b.clients[a]->last_delta.classify(), GroupEvent::kRefresh);
}

TEST(GcsEdge, RefreshByNonMemberRejected) {
  Bed b;
  ProcessId a = b.spawn(0);
  ProcessId outsider = b.spawn(1);
  b.net.join_group("g", a);
  b.sim.run();
  EXPECT_THROW(b.net.refresh_group("g", outsider), CheckFailure);
}

TEST(GcsEdge, DoubleJoinRejected) {
  Bed b;
  ProcessId a = b.spawn(0);
  b.net.join_group("g", a);
  EXPECT_THROW(b.net.join_group("g", a), CheckFailure);
}

TEST(GcsEdge, LeaveWithoutJoinRejected) {
  Bed b;
  ProcessId a = b.spawn(0);
  EXPECT_THROW(b.net.leave_group("g", a), CheckFailure);
}

TEST(GcsEdge, PartitionValidatesCoverage) {
  Bed b;
  EXPECT_THROW(b.net.partition({{0, 1}}), CheckFailure);          // missing machines
  EXPECT_THROW(b.net.partition({{0, 1, 2, 3}, {3}}), CheckFailure);  // duplicate
  EXPECT_THROW(b.net.partition({{0, 1}, {}, {2, 3}}), CheckFailure); // empty part
}

TEST(GcsEdge, MultipleGroupsSurvivePartition) {
  Bed b;
  ProcessId a = b.spawn(0);
  ProcessId c = b.spawn(1);
  ProcessId d = b.spawn(2);
  b.net.join_group("g1", a);
  b.net.join_group("g1", c);
  b.net.join_group("g2", c);
  b.net.join_group("g2", d);
  b.sim.run();
  b.net.partition({{0, 3}, {1, 2}});
  b.sim.run();
  // g1 splits: a alone on one side, c alone on the other.
  EXPECT_EQ(b.clients[a]->last_view.members, std::vector<ProcessId>{a});
  // g2 stays whole: c (machine 1) and d (machine 2) are in one component.
  EXPECT_EQ(b.clients[d]->last_view.members, (std::vector<ProcessId>{c, d}));
}

TEST(GcsEdge, RepartitionWhileAlreadyPartitioned) {
  Bed b(lan_testbed(6));
  std::vector<ProcessId> ps;
  for (int i = 0; i < 6; ++i) ps.push_back(b.spawn(i));
  for (ProcessId p : ps) b.net.join_group("g", p);
  b.sim.run();
  b.net.partition({{0, 1, 2}, {3, 4, 5}});
  b.sim.run();
  // Split one side again without healing first.
  b.net.partition({{0, 1}, {2}, {3, 4, 5}});
  b.sim.run();
  EXPECT_EQ(b.clients[ps[0]]->last_view.members, (std::vector<ProcessId>{ps[0], ps[1]}));
  EXPECT_EQ(b.clients[ps[2]]->last_view.members, std::vector<ProcessId>{ps[2]});
  EXPECT_EQ(b.clients[ps[3]]->last_view.members.size(), 3u);
  b.net.heal();
  b.sim.run();
  EXPECT_EQ(b.clients[ps[0]]->last_view.members.size(), 6u);
}

TEST(GcsEdge, EmptyGroupViewNotDelivered) {
  Bed b;
  ProcessId a = b.spawn(0);
  b.net.join_group("g", a);
  b.sim.run();
  b.net.leave_group("g", a);
  b.sim.run();
  // The sole member left: nobody receives the empty view.
  EXPECT_EQ(b.clients[a]->last_view.members, std::vector<ProcessId>{a});
}

TEST(GcsEdge, RejoinAfterLeaveWorks) {
  Bed b;
  ProcessId a = b.spawn(0);
  ProcessId c = b.spawn(1);
  b.net.join_group("g", a);
  b.net.join_group("g", c);
  b.sim.run();
  b.net.leave_group("g", c);
  b.sim.run();
  b.net.join_group("g", c);
  b.sim.run();
  EXPECT_EQ(b.clients[c]->last_view.members, (std::vector<ProcessId>{a, c}));
  EXPECT_TRUE(b.clients[c]->last_delta.first_view);  // fresh membership
}

TEST(GcsEdge, MessagesStampedCounterAdvances) {
  Bed b;
  ProcessId a = b.spawn(0);
  b.net.join_group("g", a);
  b.sim.run();
  std::uint64_t before = b.net.messages_stamped();
  b.net.multicast("g", a, str_bytes("one"));
  b.net.multicast("g", a, str_bytes("two"));
  b.sim.run();
  EXPECT_EQ(b.net.messages_stamped(), before + 2);
}

TEST(GcsEdge, OrderedSendToDepartedMemberIsHarmless) {
  Bed b;
  ProcessId a = b.spawn(0);
  ProcessId c = b.spawn(1);
  b.net.join_group("g", a);
  b.net.join_group("g", c);
  b.sim.run();
  b.net.leave_group("g", c);
  b.sim.run();
  b.net.ordered_send("g", a, c, str_bytes("late"));
  b.sim.run();
  EXPECT_EQ(b.clients[c]->messages, 0);
}

}  // namespace
}  // namespace sgk
