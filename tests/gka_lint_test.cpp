// Unit tests for the gka_lint rule engine (tools/gka_lint). Fixtures are
// built from string literals; the real scanner strips literals before
// matching, so this file stays clean when linted itself.
#include "gka_lint/lint.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <sstream>

namespace {

using gka_lint::Finding;
using gka_lint::lint_project;
using gka_lint::lint_source;
using gka_lint::Severity;
using gka_lint::SourceFile;

bool has_rule(const std::vector<Finding>& fs, const std::string& rule) {
  return std::any_of(fs.begin(), fs.end(),
                     [&](const Finding& f) { return f.rule == rule; });
}

/// Loads one golden-fixture mini-project (tests/gka_lint_fixtures/<name>);
/// file paths relative to the fixture dir are the pretend repo paths.
std::vector<SourceFile> load_fixture(const std::string& name) {
  namespace fs = std::filesystem;
  const fs::path dir = fs::path(GKA_LINT_FIXTURE_DIR) / name;
  std::vector<SourceFile> files;
  for (const auto& e : fs::recursive_directory_iterator(dir)) {
    if (!e.is_regular_file()) continue;
    std::ifstream in(e.path(), std::ios::binary);
    std::ostringstream ss;
    ss << in.rdbuf();
    files.push_back({fs::relative(e.path(), dir).generic_string(), ss.str()});
  }
  std::sort(files.begin(), files.end(),
            [](const SourceFile& a, const SourceFile& b) { return a.path < b.path; });
  return files;
}

TEST(GkaLintRules, TableIsComplete) {
  const auto& rules = gka_lint::rules();
  ASSERT_EQ(rules.size(), 29u);
  EXPECT_STREQ(rules[0].id, "GKA001");
  EXPECT_STREQ(rules[5].id, "GKA006");
  EXPECT_STREQ(rules[8].id, "GKA009");
  EXPECT_STREQ(rules[9].id, "GKA101");
  EXPECT_STREQ(rules[13].id, "GKA203");
  EXPECT_STREQ(rules[14].id, "GKA301");
  EXPECT_STREQ(rules[19].id, "GKA306");
  EXPECT_STREQ(rules[20].id, "GKA401");
  EXPECT_STREQ(rules[21].id, "GKA402");
  EXPECT_STREQ(rules[22].id, "GKA501");
  EXPECT_STREQ(rules[25].id, "GKA504");
  EXPECT_STREQ(rules[26].id, "GKA601");
  EXPECT_STREQ(rules[28].id, "GKA603");
}

TEST(GkaLintRules, SeverityAssignments) {
  for (const gka_lint::Rule& r : gka_lint::rules()) {
    const std::string id = r.id;
    if (id == "GKA007" || id == "GKA008") {
      EXPECT_EQ(r.severity, Severity::kWarning) << id;
    }
    if (id[3] == '1' || id[3] == '2') {  // GKA1xx / GKA2xx
      EXPECT_EQ(r.severity, Severity::kError) << id;
    }
    // Determinism family: the heuristic pointer rules are warnings, the
    // rest (and the whole shared-state family) are errors.
    if (id[3] == '3') {
      if (id == "GKA302" || id == "GKA306") {
        EXPECT_EQ(r.severity, Severity::kWarning) << id;
      } else {
        EXPECT_EQ(r.severity, Severity::kError) << id;
      }
    }
    if (id[3] == '4') {
      EXPECT_EQ(r.severity, Severity::kError) << id;
    }
    // Lock discipline and constant-time discipline gate the parallel-runs
    // roadmap: all errors.
    if (id[3] == '5' || id[3] == '6') {
      EXPECT_EQ(r.severity, Severity::kError) << id;
    }
  }
}

TEST(GkaLintClassifier, SecretishNames) {
  EXPECT_TRUE(gka_lint::is_secretish("session_key"));
  EXPECT_TRUE(gka_lint::is_secretish("keys_"));
  EXPECT_TRUE(gka_lint::is_secretish("shared_secret"));
  EXPECT_TRUE(gka_lint::is_secretish("exponent"));
  EXPECT_TRUE(gka_lint::is_secretish("my_share"));
  EXPECT_TRUE(gka_lint::is_secretish("mac"));

  // Public / derived / metadata names must not count.
  EXPECT_FALSE(gka_lint::is_secretish("bkey"));
  EXPECT_FALSE(gka_lint::is_secretish("key_epoch"));
  EXPECT_FALSE(gka_lint::is_secretish("has_key"));
  EXPECT_FALSE(gka_lint::is_secretish("key_fingerprint"));
  EXPECT_FALSE(gka_lint::is_secretish("verify_key"));
  EXPECT_FALSE(gka_lint::is_secretish("public_key"));
  EXPECT_FALSE(gka_lint::is_secretish("counter"));
}

TEST(GkaLint, Gka001FiresOnRawEquality) {
  const std::string src =
      "void f(const Bytes& a, const Bytes& session_key) {\n"
      "  if (a == session_key) abort();\n"
      "}\n";
  const auto fs = lint_source("src/core/x.cpp", src);
  ASSERT_TRUE(has_rule(fs, "GKA001"));
  EXPECT_EQ(fs[0].line, 2);
  EXPECT_EQ(fs[0].severity, Severity::kError);
}

TEST(GkaLint, Gka001FiresOnMemcmpAndGtestMacros) {
  EXPECT_TRUE(has_rule(
      lint_source("src/core/x.cpp", "int r = memcmp(buf, group_secret, n);\n"),
      "GKA001"));
  EXPECT_TRUE(has_rule(
      lint_source("tests/x.cpp", "EXPECT_EQ(derived_key, expected);\n"),
      "GKA001"));
}

TEST(GkaLint, Gka001IgnoresIteratorAndPublicComparisons) {
  // `it == keys_.end()` is a map-membership test, not a comparison of key
  // material; blinded keys (bkey) are public by construction.
  const std::string src =
      "void f() {\n"
      "  auto it = keys_.find(p);\n"
      "  if (it == keys_.end()) return;\n"
      "  if (bkey == other_bkey) return;\n"
      "  if (epoch == key_epoch) return;\n"
      "}\n";
  EXPECT_TRUE(lint_source("src/core/x.cpp", src).empty());
}

TEST(GkaLint, Gka002FiresOnLoggingSinks) {
  EXPECT_TRUE(has_rule(
      lint_source("src/core/x.cpp", "std::cout << to_hex(group_key);\n"),
      "GKA002"));
  EXPECT_TRUE(has_rule(
      lint_source("src/core/x.cpp", "printf(\"%s\", session_key.data());\n"),
      "GKA002"));
  // Fingerprints are the sanctioned way to display keys.
  EXPECT_TRUE(lint_source("src/core/x.cpp",
                          "std::cout << key_fingerprint();\n")
                  .empty());
}

TEST(GkaLint, Gka003FiresOutsideSanctionedFiles) {
  const std::string src = "std::mt19937 gen(std::random_device{}());\n";
  EXPECT_TRUE(has_rule(lint_source("src/core/x.cpp", src), "GKA003"));
  EXPECT_TRUE(has_rule(lint_source("tests/x.cpp", "int x = rand();\n"),
                       "GKA003"));
  // The sanctioned randomness sources may use the primitives.
  EXPECT_TRUE(lint_source("src/util/random_source.h", src).empty());
  EXPECT_TRUE(lint_source("src/crypto/drbg.cpp", src).empty());
}

TEST(GkaLint, Gka004FiresOnPlainSecretFields) {
  const std::string src =
      "class C {\n"
      "  Bytes session_key_;\n"
      "};\n";
  const auto fs = lint_source("src/core/x.h", src);
  ASSERT_TRUE(has_rule(fs, "GKA004"));
  EXPECT_EQ(fs[0].severity, Severity::kWarning);
  // Secure wrappers and public-key types are fine.
  EXPECT_TRUE(lint_source("src/core/x.h",
                          "class C {\n  SecureBytes session_key_;\n};\n")
                  .empty());
  EXPECT_TRUE(lint_source("src/core/x.h",
                          "class C {\n  SecureBigInt exponent_;\n};\n")
                  .empty());
  EXPECT_TRUE(lint_source("src/core/x.h",
                          "class C {\n  std::map<ProcessId, VerifyKey> keys_;\n};\n")
                  .empty());
}

TEST(GkaLint, Gka005FiresOnlyInCryptoPaths) {
  const std::string src = "int x;  "
                          "// TODO"
                          ": harden\n";
  EXPECT_TRUE(has_rule(lint_source("src/crypto/x.cpp", src), "GKA005"));
  EXPECT_TRUE(has_rule(lint_source("src/bignum/x.cpp", src), "GKA005"));
  EXPECT_TRUE(has_rule(lint_source("src/core/x.cpp", src), "GKA005"));
  EXPECT_TRUE(lint_source("src/sim/x.cpp", src).empty());
  EXPECT_TRUE(lint_source("tests/x.cpp", src).empty());
}

TEST(GkaLint, Gka006FiresOnSecretsInObsSinks) {
  EXPECT_TRUE(has_rule(
      lint_source("src/core/x.cpp",
                  "tr->attr(span, \"k\", obs::Json(session_key));\n"),
      "GKA006"));
  EXPECT_TRUE(has_rule(
      lint_source("src/core/x.cpp",
                  "tr->event_attr(\"x\", obs::Json(group_secret.hex()));\n"),
      "GKA006"));
  EXPECT_TRUE(has_rule(
      lint_source("src/harness/x.cpp",
                  "mr->histogram(\"h\").observe(exponent.bits());\n"),
      "GKA006"));
  EXPECT_TRUE(has_rule(
      lint_source("src/core/x.cpp", "mark_point(my_share);\n"), "GKA006"));
}

TEST(GkaLint, Gka006IgnoresMetadataAndNonCalls) {
  // Public / metadata names in obs sinks are fine.
  EXPECT_TRUE(lint_source("src/core/x.cpp",
                          "tr->attr(span, \"epoch\", obs::Json(key_epoch));\n")
                  .empty());
  EXPECT_TRUE(lint_source("src/core/x.cpp",
                          "tr->instant(\"key_install\", key_time_, track);\n")
                  .empty());
  EXPECT_TRUE(lint_source("src/harness/x.cpp",
                          "mr->histogram(name).observe(r.elapsed_ms);\n")
                  .empty());
  // The obs API's own declarations stay clean (parameters are named `name`
  // / `v`, never after key material).
  EXPECT_TRUE(lint_source("src/obs/metrics.h", "void observe(double v);\n")
                  .empty());
  EXPECT_TRUE(
      lint_source("src/obs/trace.h",
                  "void phase(std::string_view name, double clock_now);\n")
          .empty());
}

TEST(GkaLint, StringAndCommentContentsAreIgnored) {
  EXPECT_TRUE(lint_source("src/core/x.cpp",
                          "const char* s = \"a == session_key\";\n")
                  .empty());
  EXPECT_TRUE(lint_source("src/core/x.cpp",
                          "// if (a == session_key) explain\n")
                  .empty());
  EXPECT_TRUE(lint_source("src/core/x.cpp",
                          "/* if (a == session_key) */ int x;\n")
                  .empty());
}

TEST(GkaLint, SameLineSuppressionWorks) {
  const std::string marker = std::string("gka-lint: ") + "allow(GKA001)";
  const std::string src =
      "if (a == session_key) abort();  // " + marker + " -- test\n";
  EXPECT_TRUE(lint_source("src/core/x.cpp", src).empty());
}

TEST(GkaLint, PreviousLineSuppressionWorks) {
  const std::string marker = std::string("gka-lint: ") + "allow(GKA001,GKA002)";
  const std::string src =
      "// " + marker + " -- test\n"
      "if (a == session_key) std::cout << to_hex(session_key);\n";
  EXPECT_TRUE(lint_source("src/core/x.cpp", src).empty());
}

TEST(GkaLint, SuppressionIsRuleSpecific) {
  const std::string marker = std::string("gka-lint: ") + "allow(GKA002)";
  const std::string src =
      "if (a == session_key) abort();  // " + marker + " -- test\n";
  EXPECT_TRUE(has_rule(lint_source("src/core/x.cpp", src), "GKA001"));
}

TEST(GkaLint, Gka007FlagsStaleSuppression) {
  const std::string marker = std::string("gka-lint: ") + "allow(GKA003)";
  const std::string src = "// " + marker + " -- obsolete\n"
                          "int x = 1;\n";
  const auto fs = lint_source("src/core/x.cpp", src);
  ASSERT_TRUE(has_rule(fs, "GKA007"));
  EXPECT_EQ(fs[0].severity, Severity::kWarning);
  EXPECT_EQ(fs[0].line, 1);
}

TEST(GkaLint, Gka008FlagsMissingReason) {
  const std::string marker = std::string("gka-lint: ") + "allow(GKA001)";
  const std::string with_reason =
      "if (a == session_key) abort();  // " + marker + " -- fixture key\n";
  EXPECT_TRUE(lint_source("src/core/x.cpp", with_reason).empty());
  const std::string without =
      "if (a == session_key) abort();  // " + marker + "\n";
  const auto fs = lint_source("src/core/x.cpp", without);
  EXPECT_TRUE(has_rule(fs, "GKA008"));
  EXPECT_FALSE(has_rule(fs, "GKA001"));  // still suppressed, just flagged
}

TEST(GkaLint, Gka009FiresOnBareReaderInHandlers) {
  const std::string src =
      "void Proto::handle_message(const Bytes& body) {\n"
      "  Reader r(body);\n"
      "  const auto tag = r.u8();\n"
      "}\n";
  const auto fs = lint_source("src/core/x.cpp", src);
  ASSERT_TRUE(has_rule(fs, "GKA009"));
  EXPECT_EQ(fs[0].line, 2);
  EXPECT_EQ(fs[0].severity, Severity::kError);
}

TEST(GkaLint, Gka009AllowsValidatedDecodeAndOtherLayers) {
  // The sanctioned entrypoints may construct Readers...
  const std::string entry =
      "Decoded<Wire> Proto::validate_and_decode(const Bytes& body) {\n"
      "  Reader r(body);\n"
      "  return D::accepted(Wire{r.u8()});\n"
      "}\n";
  EXPECT_TRUE(lint_source("src/core/x.cpp", entry).empty());
  EXPECT_TRUE(lint_source("src/gcs/x.cpp", entry).empty());
  // ...reference parameters are not constructions...
  EXPECT_TRUE(lint_source("src/core/x.cpp",
                          "void parse_node(Reader& r, KeyTree& t);\n")
                  .empty());
  // ...and the rule is scoped to the wire-handling layers.
  const std::string elsewhere =
      "void decode(const Bytes& body) {\n"
      "  Reader r(body);\n"
      "}\n";
  EXPECT_TRUE(lint_source("src/crypto/x.cpp", elsewhere).empty());
  EXPECT_TRUE(lint_source("tests/x.cpp", elsewhere).empty());
}

TEST(GkaLintTaint, Gka201FiresOnRevealIntoRawLocal) {
  const std::string src =
      "void f(const SecureBytes& session_key) {\n"
      "  Bytes copy_bytes = session_key.reveal();\n"
      "}\n";
  const auto fs = lint_source("src/core/x.cpp", src);
  ASSERT_TRUE(has_rule(fs, "GKA201"));
  EXPECT_EQ(fs[0].line, 2);
}

TEST(GkaLintTaint, Gka201AllowsBoundaryWrappedUse) {
  const std::string src =
      "void f(const SecureBytes& session_key) {\n"
      "  Bytes ct = aes128_cbc_encrypt(session_key.reveal(), iv, pt);\n"
      "  std::string fp = key_fingerprint(session_key);\n"
      "}\n";
  EXPECT_TRUE(lint_source("src/core/x.cpp", src).empty());
}

TEST(GkaLintTaint, Gka202FiresOnRawReturnOfSecret) {
  const std::string src =
      "Bytes f(const SecureBytes& session_key) {\n"
      "  return session_key.reveal();\n"
      "}\n";
  EXPECT_TRUE(has_rule(lint_source("src/core/x.cpp", src), "GKA202"));
  // Returning through the Secure* wrapper is the fix.
  const std::string ok =
      "SecureBytes f(const SecureBytes& session_key) {\n"
      "  return SecureBytes(session_key.reveal());\n"
      "}\n";
  EXPECT_TRUE(lint_source("src/core/x.cpp", ok).empty());
}

TEST(GkaLintTaint, Gka203TracksLaunderedNamesIntoSinks) {
  // `view` is not a secret-ish *name*; only the taint analysis sees the
  // flow from the SecureBytes parameter into the log sink.
  const std::string src =
      "void f(const SecureBytes& session_key) {\n"
      "  auto view = session_key;\n"
      "  std::cout << to_hex(view);\n"
      "}\n";
  const auto fs = lint_source("src/core/x.cpp", src);
  ASSERT_TRUE(has_rule(fs, "GKA203"));
  EXPECT_EQ(fs[0].line, 3);
  const std::string ok =
      "void f(const SecureBytes& session_key) {\n"
      "  auto view = session_key;\n"
      "  std::cout << key_fingerprint(view);\n"
      "}\n";
  EXPECT_TRUE(lint_source("src/core/x.cpp", ok).empty());
}

TEST(GkaLintArch, Gka101FlagsDagViolationAndGka102FlagsCycles) {
  // util must not reach up into obs; a.h <-> b.h is a cycle.
  const std::vector<SourceFile> bad = {
      {"src/util/clock.h", "#include \"obs/trace.h\"\n"},
      {"src/core/a.h", "#include \"core/b.h\"\n"},
      {"src/core/b.h", "#include \"core/a.h\"\n"},
  };
  const auto fs = lint_project(bad);
  EXPECT_TRUE(has_rule(fs, "GKA101"));
  EXPECT_TRUE(has_rule(fs, "GKA102"));

  const std::vector<SourceFile> good = {
      {"src/core/a.h", "#include \"crypto/sha256.h\"\n"},
      {"src/harness/h.cpp", "#include \"gcs/secure_group.h\"\n"},
  };
  EXPECT_TRUE(lint_project(good).empty());
}

TEST(GkaLintArch, Gka101KnowsTheFaultLayer) {
  // fault sits above core and below sim/gcs: consuming core is fine, and
  // sim/gcs/harness may consume fault — but fault must not reach up.
  const std::vector<SourceFile> good = {
      {"src/fault/plan.h", "#include \"core/view.h\"\n"},
      {"src/sim/fault_adapter.h", "#include \"fault/injector.h\"\n"},
      {"src/gcs/spread.h", "#include \"fault/hooks.h\"\n"},
      {"src/harness/chaos.h", "#include \"fault/plan.h\"\n"},
  };
  EXPECT_TRUE(lint_project(good).empty());

  const std::vector<SourceFile> bad = {
      {"src/fault/bad_sim.h", "#include \"sim/simulator.h\"\n"},
      {"src/fault/bad_gcs.h", "#include \"gcs/spread.h\"\n"},
      {"src/core/bad_core.h", "#include \"fault/plan.h\"\n"},
  };
  const auto fs = lint_project(bad);
  int gka101 = 0;
  for (const Finding& f : fs)
    if (f.rule == "GKA101") ++gka101;
  EXPECT_EQ(gka101, 3);
}

TEST(GkaLintProject, CrossFileTaintSeedsFollowIncludes) {
  // The SecureBytes field is declared in the header; the leak is in the
  // .cpp. Only project mode can connect the two.
  const std::vector<SourceFile> proj = {
      {"src/core/m.h", "class M {\n  SecureBytes session_key_;\n};\n"},
      {"src/core/m.cpp",
       "#include \"core/m.h\"\n"
       "Bytes M::dump() {\n"
       "  Bytes out_bytes = session_key_.reveal();\n"
       "  return out_bytes;\n"
       "}\n"},
  };
  const auto fs = lint_project(proj);
  EXPECT_TRUE(has_rule(fs, "GKA201"));
  EXPECT_TRUE(has_rule(fs, "GKA202"));
}

TEST(GkaLintInterproc, CrossFileSinkLaunderingNeedsTheCallGraph) {
  // The acceptance fixture for the v3 interprocedural pass: a secret
  // reveal()ed in one file, exfiltrated by a helper defined in another.
  const auto caller = load_fixture("xtu_taint_fire");
  ASSERT_EQ(caller.size(), 2u);

  // Each file in isolation is clean — this is exactly the flow the v2
  // function-local pass (and the name heuristics) provably miss.
  for (const SourceFile& f : caller)
    EXPECT_TRUE(lint_source(f.path, f.content).empty())
        << f.path << " should be clean in isolation";

  // Project mode links the call site to the helper's taint summary.
  const auto fs = lint_project(caller);
  ASSERT_TRUE(has_rule(fs, "GKA203"));

  // Same shape, but the helper fingerprints instead of logging: the
  // boundary absorbs the taint inside the summary and nothing fires.
  for (const Finding& f : lint_project(load_fixture("xtu_taint_clean")))
    ADD_FAILURE() << "xtu_taint_clean is not clean: " << gka_lint::format(f);
}

TEST(GkaLintInterproc, SummariesPropagateThroughCallChains) {
  // g leaks its parameter; f only forwards — two summary hops.
  const std::vector<SourceFile> proj = {
      {"src/core/leak.cpp",
       "void g(const Bytes& data) {\n"
       "  std::cout << to_hex(data);\n"
       "}\n"
       "void f(const Bytes& buf) {\n"
       "  g(buf);\n"
       "}\n"},
      {"src/core/use.cpp",
       "void use(const SecureBytes& session_key) {\n"
       "  f(session_key.reveal());\n"
       "}\n"},
  };
  EXPECT_TRUE(has_rule(lint_project(proj), "GKA203"));
}

TEST(GkaLintInterproc, SecretDerivedReturnValuesMintTaint) {
  // derive() returns bytes revealed from its file's own secret; the caller
  // stores them in a raw local (GKA201) and logs them (GKA203) without
  // ever touching a Secure* type or a secret-ish name itself.
  const std::vector<SourceFile> proj = {
      {"src/core/derive.h",
       "class Deriver {\n"
       " public:\n"
       "  Bytes derive() {\n"
       "    return session_key_.reveal();\n"
       "  }\n"
       " private:\n"
       "  SecureBytes session_key_;\n"
       "};\n"},
      {"src/core/consume.cpp",
       "#include \"core/derive.h\"\n"
       "void dump(Deriver& d) {\n"
       "  Bytes material = derive();\n"
       "  std::cout << to_hex(material);\n"
       "}\n"},
  };
  const auto fs = lint_project(proj);
  EXPECT_TRUE(has_rule(fs, "GKA201"));
  EXPECT_TRUE(has_rule(fs, "GKA203"));
}

TEST(GkaLintInterproc, MutuallyRecursiveSummariesConverge) {
  // alpha and beta call each other; alpha also logs. The fixpoint must
  // terminate and give beta a param-to-sink bit through the cycle.
  const std::string src =
      "void alpha(const Bytes& data, int n);\n"
      "void beta(const Bytes& data, int n) {\n"
      "  if (n > 0) alpha(data, n - 1);\n"
      "}\n"
      "void alpha(const Bytes& data, int n) {\n"
      "  if (n > 0) beta(data, n - 1);\n"
      "  std::cout << to_hex(data);\n"
      "}\n"
      "void f(const SecureBytes& session_key) {\n"
      "  beta(session_key.reveal(), 2);\n"
      "}\n";
  const auto fs = lint_source("src/core/x.cpp", src);
  ASSERT_TRUE(has_rule(fs, "GKA203"));
  EXPECT_EQ(fs[0].line, 10);
}

TEST(GkaLintInterproc, BoundariesBeatSummaries) {
  // A summarized leaky helper wrapped in an approved boundary call does not
  // fire: absorption has precedence over summary queries.
  const std::string src =
      "Bytes twiddle(const Bytes& data) {\n"
      "  return data;\n"
      "}\n"
      "void f(const SecureBytes& session_key) {\n"
      "  auto fp = key_fingerprint(twiddle(session_key.reveal()));\n"
      "}\n";
  EXPECT_TRUE(lint_source("src/core/x.cpp", src).empty());
}

TEST(GkaLintDeterminism, Gka301FlagsUnorderedContainers) {
  const std::string src =
      "class R {\n  std::unordered_map<int, double> m_;\n};\n";
  EXPECT_TRUE(has_rule(lint_source("src/sim/x.h", src), "GKA301"));
  EXPECT_TRUE(has_rule(lint_source("src/core/x.h", src), "GKA301"));
  EXPECT_TRUE(has_rule(lint_source("src/fault/x.h", src), "GKA301"));
  // Ordered containers, and unordered ones outside the deterministic
  // subsystems, are fine.
  EXPECT_TRUE(lint_source("src/sim/x.h",
                          "class R {\n  SGK_CONFINED_TO_RUN;\n"
                          "  std::map<int, double> m_;\n};\n")
                  .empty());
  EXPECT_TRUE(lint_source("src/obs/x.h", src).empty());
  EXPECT_TRUE(lint_source("tests/x.cpp", src).empty());
}

TEST(GkaLintDeterminism, Gka302FlagsPointerKeys) {
  EXPECT_TRUE(has_rule(
      lint_source("src/core/x.cpp",
                  "void f() {\n  std::set<Node*> visited;\n}\n"),
      "GKA302"));
  EXPECT_TRUE(has_rule(
      lint_source("src/core/x.cpp",
                  "void f() {\n  std::map<KeyTree*, int> rank;\n}\n"),
      "GKA302"));
  // Pointer *values* are fine — only ordering/hashing by pointer key is
  // address-dependent.
  EXPECT_TRUE(lint_source("src/core/x.cpp",
                          "void f() {\n  std::map<int, Node*> by_id;\n}\n")
                  .empty());
  EXPECT_TRUE(lint_source("src/core/x.cpp",
                          "void f() {\n  std::set<int> visited;\n}\n")
                  .empty());
}

TEST(GkaLintDeterminism, Gka303And304ScopeToTheWallclockBoundary) {
  const std::string wall = "auto t = std::chrono::system_clock::now();\n";
  const std::string mono = "auto t = std::chrono::steady_clock::now();\n";
  EXPECT_TRUE(has_rule(lint_source("src/harness/x.cpp", wall), "GKA303"));
  EXPECT_TRUE(has_rule(lint_source("src/sim/x.cpp", mono), "GKA304"));
  EXPECT_TRUE(has_rule(
      lint_source("src/core/x.cpp",
                  "auto t = std::chrono::high_resolution_clock::now();\n"),
      "GKA304"));
  // The wallclock boundary file may read the host clock; tests may too.
  EXPECT_TRUE(lint_source("src/obs/wallclock.h", wall).empty());
  EXPECT_TRUE(lint_source("src/obs/wallclock.h", mono).empty());
  EXPECT_TRUE(lint_source("tests/x.cpp", mono).empty());
}

TEST(GkaLintDeterminism, Gka305FlagsAmbientEntropyOnly) {
  EXPECT_TRUE(has_rule(
      lint_source("src/harness/x.cpp", "auto s = time(nullptr);\n"),
      "GKA305"));
  EXPECT_TRUE(has_rule(lint_source("tests/x.cpp", "auto s = time(0);\n"),
                       "GKA305"));
  EXPECT_TRUE(has_rule(
      lint_source("src/sim/x.cpp", "auto c = clock();\n"), "GKA305"));
  EXPECT_TRUE(has_rule(
      lint_source("src/harness/x.cpp", "const char* e = getenv(\"SEED\");\n"),
      "GKA305"));
  // `time`/`clock` are everyday simulator identifiers — only the C library
  // signatures fire. The sanctioned entropy files are exempt.
  EXPECT_TRUE(
      lint_source("src/sim/x.cpp", "schedule(time(t), ev);\n").empty());
  EXPECT_TRUE(lint_source("src/sim/x.cpp", "auto t = clock(machine);\n")
                  .empty());
  EXPECT_TRUE(lint_source("src/util/random_source.h",
                          "auto s = time(nullptr);\n")
                  .empty());
}

TEST(GkaLintDeterminism, Gka306FlagsPointerIntCasts) {
  EXPECT_TRUE(has_rule(
      lint_source("src/gcs/x.cpp",
                  "auto id = reinterpret_cast<std::uintptr_t>(p);\n"),
      "GKA306"));
  // Non-pointer reinterpret_casts and other subsystems are out of scope.
  EXPECT_TRUE(lint_source("src/gcs/x.cpp",
                          "auto b = reinterpret_cast<const char*>(p);\n")
                  .empty());
  EXPECT_TRUE(lint_source("src/obs/x.cpp",
                          "auto id = reinterpret_cast<std::uintptr_t>(p);\n")
                  .empty());
}

TEST(GkaLintSharedState, Gka401FlagsMutableGlobals) {
  const std::string src =
      "namespace sgk {\n"
      "int g_event_count = 0;\n"
      "}\n";
  const auto fs = lint_source("src/sim/x.cpp", src);
  ASSERT_TRUE(has_rule(fs, "GKA401"));
  EXPECT_EQ(fs[0].line, 2);
}

TEST(GkaLintSharedState, Gka401SkipsConstantsTypesAndMembers) {
  EXPECT_TRUE(lint_source("src/sim/x.cpp",
                          "namespace sgk {\n"
                          "constexpr int kMax = 4;\n"
                          "const double kJitter = 0.5;\n"
                          "using Clock = VirtualClock;\n"
                          "extern int g_declared_elsewhere;\n"
                          "struct S { SGK_CONFINED_TO_RUN; int mutable_member = 0; };\n"
                          "int pure_helper(int x) { int local = x; return local; }\n"
                          "}\n")
                  .empty());
  // Out of scope: harness/obs may keep process-wide state.
  EXPECT_TRUE(
      lint_source("src/harness/x.cpp", "int g_runs = 0;\n").empty());
}

TEST(GkaLintSharedState, Gka402FlagsMutableFunctionStatics) {
  const std::string src =
      "int next_id() {\n"
      "  static int counter = 0;\n"
      "  return ++counter;\n"
      "}\n";
  const auto fs = lint_source("src/core/x.cpp", src);
  ASSERT_TRUE(has_rule(fs, "GKA402"));
  EXPECT_EQ(fs[0].line, 2);
}

TEST(GkaLintSharedState, Gka402SkipsImmutableAndClassStatics) {
  // Immutable locals, and `static` member functions / class-scope statics
  // (type scope, not function scope), stay clean.
  EXPECT_TRUE(lint_source("src/core/x.cpp",
                          "int f() {\n"
                          "  static constexpr int kBase = 7;\n"
                          "  static const int kDerived = kBase + 1;\n"
                          "  return kDerived;\n"
                          "}\n")
                  .empty());
  EXPECT_TRUE(lint_source("src/core/x.h",
                          "struct CostModel {\n"
                          "  static CostModel paper2002() { return CostModel{}; }\n"
                          "  static CostModel free();\n"
                          "};\n")
                  .empty());
  EXPECT_TRUE(
      lint_source("src/harness/x.cpp", "int f() {\n  static int n = 0;\n  return ++n;\n}\n")
          .empty());
}

TEST(GkaLintDriver, ParallelModelBuildingIsByteIdentical) {
  // Findings and ordering must not depend on --jobs: the merge and rule
  // phases are serial, only model extraction fans out.
  std::vector<SourceFile> proj;
  for (int i = 0; i < 24; ++i) {
    const std::string tag = std::to_string(i);
    proj.push_back({"src/core/f" + tag + ".cpp",
                    "void f" + tag + "(const SecureBytes& session_key) {\n"
                    "  Bytes copy_bytes = session_key.reveal();\n"
                    "}\n"});
  }
  gka_lint::LintStats serial_stats, parallel_stats;
  const auto serial = lint_project(proj, 1, &serial_stats);
  const auto parallel = lint_project(proj, 8, &parallel_stats);
  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(gka_lint::format(serial[i]), gka_lint::format(parallel[i]));
  }
  EXPECT_EQ(serial.size(), 24u);
  EXPECT_EQ(serial_stats.files, 24u);
  EXPECT_EQ(parallel_stats.files, 24u);
}

TEST(GkaLintFixtures, EveryRuleFiresOnItsFixtureAndStaysQuietOnClean) {
  for (const gka_lint::Rule& r : gka_lint::rules()) {
    std::string base = r.id;  // "GKA001" -> "gka001"
    std::transform(base.begin(), base.end(), base.begin(),
                   [](unsigned char c) { return std::tolower(c); });

    const auto fire = lint_project(load_fixture(base + "_fire"));
    EXPECT_TRUE(has_rule(fire, r.id)) << base << "_fire did not fire " << r.id;

    const auto clean = lint_project(load_fixture(base + "_clean"));
    for (const Finding& f : clean)
      ADD_FAILURE() << base << "_clean is not clean: " << gka_lint::format(f);
  }
}

TEST(GkaLintOutput, JsonAndSarifContainFindings) {
  const auto fs =
      lint_source("src/core/x.cpp", "if (a == session_key) abort();\n");
  ASSERT_FALSE(fs.empty());
  const std::string json = gka_lint::to_json(fs, 1);
  EXPECT_NE(json.find("\"rule\": \"GKA001\""), std::string::npos);
  EXPECT_NE(json.find("\"files_scanned\": 1"), std::string::npos);
  const std::string sarif = gka_lint::to_sarif(fs);
  EXPECT_NE(sarif.find("\"ruleId\": \"GKA001\""), std::string::npos);
  EXPECT_NE(sarif.find("\"version\": \"2.1.0\""), std::string::npos);
  // The SARIF rule catalog carries every rule.
  for (const gka_lint::Rule& r : gka_lint::rules())
    EXPECT_NE(sarif.find(std::string("\"id\": \"") + r.id + "\""),
              std::string::npos);
}

TEST(GkaLint, SkipFileMarkerSkipsEverything) {
  const std::string marker = std::string("gka-lint: ") + "skip-file";
  const std::string src =
      "// " + marker + "\n"
      "if (a == session_key) std::cout << to_hex(session_key);\n"
      "int x = rand();\n";
  EXPECT_TRUE(lint_source("src/core/x.cpp", src).empty());
}

TEST(GkaLint, FormatIncludesLocationRuleAndSeverity) {
  const auto fs =
      lint_source("src/core/x.cpp", "if (a == session_key) abort();\n");
  ASSERT_FALSE(fs.empty());
  const std::string line = gka_lint::format(fs[0]);
  EXPECT_NE(line.find("src/core/x.cpp:1:"), std::string::npos);
  EXPECT_NE(line.find("[GKA001]"), std::string::npos);
  EXPECT_NE(line.find("error"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Lock-discipline rules (GKA5xx, v4).

TEST(GkaLintLock, Gka501GuardedFieldNeedsTheMutex) {
  const std::string decl =
      "class T {\n"
      "  std::mutex mu_;\n"
      "  int epoch_ SGK_GUARDED_BY(mu_) = 0;\n"
      "};\n";
  EXPECT_TRUE(has_rule(
      lint_source("src/gcs/t.cpp",
                  decl + "void T::put(int e) { epoch_ = e; }\n"),
      "GKA501"));
  // Held via RAII guard: clean.
  EXPECT_FALSE(has_rule(
      lint_source("src/gcs/t.cpp",
                  decl +
                      "void T::put(int e) {\n"
                      "  std::lock_guard<std::mutex> lk(mu_);\n"
                      "  epoch_ = e;\n"
                      "}\n"),
      "GKA501"));
  // Held via declared capability: clean.
  EXPECT_FALSE(has_rule(
      lint_source("src/gcs/t.cpp",
                  decl +
                      "void T::put_locked(int e) SGK_REQUIRES(mu_) {\n"
                      "  epoch_ = e;\n"
                      "}\n"),
      "GKA501"));
  // Constructors initialize before the object is shared: exempt.
  EXPECT_FALSE(has_rule(
      lint_source("src/gcs/t.cpp", decl + "T::T() { epoch_ = 1; }\n"),
      "GKA501"));
  // Trailing SGK_REQUIRES on a lambda (the cv.wait-predicate idiom): the
  // annotation attaches to the lambda's pseudo-function, so touching the
  // guarded field inside the predicate is clean.
  EXPECT_FALSE(has_rule(
      lint_source("src/server/t.cpp",
                  decl +
                      "void T::wait_ready() {\n"
                      "  std::unique_lock<std::mutex> lk(mu_);\n"
                      "  cv_.wait(lk, [this]() SGK_REQUIRES(mu_) {\n"
                      "    return epoch_ > 0;\n"
                      "  });\n"
                      "}\n"),
      "GKA501"));
}

TEST(GkaLintLock, Gka502RequiresAndExcludesAtCallSites) {
  const std::string decl =
      "class T {\n"
      "  std::mutex mu_;\n"
      "  void step() SGK_REQUIRES(mu_);\n"
      "  void sync() SGK_EXCLUDES(mu_);\n"
      "};\n";
  EXPECT_TRUE(has_rule(
      lint_source("src/gcs/t.cpp", decl + "void T::run() { step(); }\n"),
      "GKA502"));
  // Calling an SGK_EXCLUDES function with the mutex held: deadlock fence.
  EXPECT_TRUE(has_rule(
      lint_source("src/gcs/t.cpp",
                  decl +
                      "void T::run() {\n"
                      "  std::lock_guard<std::mutex> lk(mu_);\n"
                      "  sync();\n"
                      "}\n"),
      "GKA502"));
  EXPECT_FALSE(has_rule(
      lint_source("src/gcs/t.cpp",
                  decl +
                      "void T::run() {\n"
                      "  std::lock_guard<std::mutex> lk(mu_);\n"
                      "  step();\n"
                      "}\n"),
      "GKA502"));
}

TEST(GkaLintLock, Gka503BareLockMustReleaseOnEveryPath) {
  // Early return while bare-held.
  EXPECT_TRUE(has_rule(
      lint_source("src/gcs/t.cpp",
                  "int T::drain(bool fast) {\n"
                  "  mu_.lock();\n"
                  "  if (fast) return 0;\n"
                  "  mu_.unlock();\n"
                  "  return 1;\n"
                  "}\n"),
      "GKA503"));
  // Never released at all.
  EXPECT_TRUE(has_rule(
      lint_source("src/gcs/t.cpp",
                  "void T::grab() {\n"
                  "  mu_.lock();\n"
                  "}\n"),
      "GKA503"));
  // Balanced bare pair: clean.
  EXPECT_FALSE(has_rule(
      lint_source("src/gcs/t.cpp",
                  "void T::tick() {\n"
                  "  mu_.lock();\n"
                  "  ++n_;\n"
                  "  mu_.unlock();\n"
                  "}\n"),
      "GKA503"));
  // A declared lock wrapper is exempt: SGK_ACQUIRE is its contract.
  EXPECT_FALSE(has_rule(
      lint_source("src/gcs/t.cpp",
                  "void T::acquire() SGK_ACQUIRE(mu_) {\n"
                  "  mu_.lock();\n"
                  "}\n"),
      "GKA503"));
}

TEST(GkaLintLock, Gka504ClassifiesSimAndGcsStructures) {
  const std::string bare = "struct S {\n  int n = 0;\n};\n";
  EXPECT_TRUE(has_rule(lint_source("src/sim/s.h", bare), "GKA504"));
  EXPECT_TRUE(has_rule(lint_source("src/gcs/s.h", bare), "GKA504"));
  // Outside sim/gcs the rule does not apply.
  EXPECT_FALSE(has_rule(lint_source("src/core/s.h", bare), "GKA504"));
  // Classified either way: clean.
  EXPECT_FALSE(has_rule(
      lint_source("src/sim/s.h",
                  "struct S {\n  SGK_CONFINED_TO_RUN;\n  int n = 0;\n};\n"),
      "GKA504"));
  EXPECT_FALSE(has_rule(
      lint_source("src/sim/s.h",
                  "struct S {\n  std::mutex mu_;\n"
                  "  int n SGK_GUARDED_BY(mu_) = 0;\n};\n"),
      "GKA504"));
  // Const-only and mutex/atomic-only members are immutable/self-synchronized.
  EXPECT_FALSE(has_rule(
      lint_source("src/sim/s.h",
                  "struct S {\n  const int n = 0;\n  std::atomic<int> a_;\n};\n"),
      "GKA504"));
}

TEST(GkaLintLock, CrossTuCapabilityNeedsTheWholeProgram) {
  // The v4 acceptance fixture, mirroring xtu_taint: the SGK_REQUIRES
  // contract lives in a header, the lock-free call in another TU.
  const auto fire = load_fixture("xtu_lock_fire");
  ASSERT_EQ(fire.size(), 3u);
  for (const SourceFile& f : fire)
    EXPECT_FALSE(has_rule(lint_source(f.path, f.content), "GKA502"))
        << f.path << " must be quiet in isolation";
  const auto fs = lint_project(fire);
  ASSERT_TRUE(has_rule(fs, "GKA502"));
  for (const Finding& f : lint_project(load_fixture("xtu_lock_clean")))
    ADD_FAILURE() << "xtu_lock_clean is not clean: " << gka_lint::format(f);
}

// ---------------------------------------------------------------------------
// Constant-time rules (GKA6xx, v4).

TEST(GkaLintCt, Gka601FlagsSecretBranches) {
  EXPECT_TRUE(has_rule(
      lint_source("src/core/x.cpp",
                  "int f(const SecureBytes& session_key) {\n"
                  "  int b = 0;\n"
                  "  if (session_key.reveal().front() & 1)\n"
                  "    b = 1;\n"
                  "  return b;\n"
                  "}\n"),
      "GKA601"));
  // Ternary conditions count too.
  EXPECT_TRUE(has_rule(
      lint_source("src/core/x.cpp",
                  "int f(const SecureBytes& session_key) {\n"
                  "  int b = session_key.reveal().front() ? 1 : 0;\n"
                  "  return b;\n"
                  "}\n"),
      "GKA601"));
  // Branching on the public length is declassified.
  EXPECT_FALSE(has_rule(
      lint_source("src/core/x.cpp",
                  "int f(const SecureBytes& session_key) {\n"
                  "  int b = 0;\n"
                  "  if (session_key.size() > 16)\n"
                  "    b = 1;\n"
                  "  return b;\n"
                  "}\n"),
      "GKA601"));
  // Container-structure probes (which epochs exist) are public metadata.
  EXPECT_FALSE(has_rule(
      lint_source("src/core/x.cpp",
                  "bool f(int epoch) {\n"
                  "  if (keys_.count(epoch) == 0)\n"
                  "    return false;\n"
                  "  return true;\n"
                  "}\n"),
      "GKA601"));
}

TEST(GkaLintCt, Gka602FlagsSecretLoopBoundsAndEarlyExits) {
  EXPECT_TRUE(has_rule(
      lint_source(
          "src/core/x.cpp",
          "int f(const SecureBigInt& private_exponent) {\n"
          "  int ones = 0;\n"
          "  for (unsigned long w = private_exponent.reveal().limb(0); w != 0; w >>= 1)\n"
          "    ones += static_cast<int>(w & 1);\n"
          "  return ones;\n"
          "}\n"),
      "GKA602"));
  EXPECT_TRUE(has_rule(
      lint_source("src/core/x.cpp",
                  "bool f(const SecureBytes& session_key) {\n"
                  "  if (session_key.reveal().front() == 0) return false;\n"
                  "  return true;\n"
                  "}\n"),
      "GKA602"));
  // Ranged-for visits every element: trip count is the public length.
  EXPECT_FALSE(has_rule(
      lint_source("src/core/x.cpp",
                  "int f(const SecureBytes& session_key) {\n"
                  "  int sum = 0;\n"
                  "  for (unsigned char b : session_key.reveal()) sum += b;\n"
                  "  return sum;\n"
                  "}\n"),
      "GKA602"));
}

TEST(GkaLintCt, Gka603FlagsSecretSubscripts) {
  EXPECT_TRUE(has_rule(
      lint_source("src/core/x.cpp",
                  "int f(const Bytes& table, const SecureBytes& session_key) {\n"
                  "  int v = table[session_key.reveal().front()];\n"
                  "  return v;\n"
                  "}\n"),
      "GKA603"));
  // Public index, public modulus: clean.
  EXPECT_FALSE(has_rule(
      lint_source("src/core/x.cpp",
                  "int f(const Bytes& table, const SecureBytes& session_key,\n"
                  "      std::size_t i) {\n"
                  "  int v = table[i % session_key.size()];\n"
                  "  return v;\n"
                  "}\n"),
      "GKA603"));
}

TEST(GkaLintCt, ReportingIsScopedToSrcButSummariesAreNot) {
  // The same secret branch in a test body is not reported...
  EXPECT_FALSE(has_rule(
      lint_source("tests/x.cpp",
                  "int f(const SecureBytes& session_key) {\n"
                  "  int b = 0;\n"
                  "  if (session_key.reveal().front() & 1)\n"
                  "    b = 1;\n"
                  "  return b;\n"
                  "}\n"),
      "GKA601"));
  // ...but a src/ caller passing a secret into a branchy helper defined in
  // ANOTHER file is, via the param_to_branch summary bit.
  const std::vector<SourceFile> proj = {
      {"src/core/helper.cpp",
       "int classify(const Bytes& material) {\n"
       "  int b = 0;\n"
       "  if (material.front() & 1)\n"
       "    b = 1;\n"
       "  return b;\n"
       "}\n"},
      {"src/core/caller.cpp",
       "int g(const SecureBytes& session_key) {\n"
       "  return classify(session_key.reveal());\n"
       "}\n"},
  };
  for (const SourceFile& f : proj)
    EXPECT_FALSE(has_rule(lint_source(f.path, f.content), "GKA601"))
        << f.path << " must be quiet in isolation";
  EXPECT_TRUE(has_rule(lint_project(proj), "GKA601"));
}

TEST(GkaLintCt, AuditedAllowStopsSummaryPropagation) {
  // The allow() inside the helper marks the audited constant-time boundary:
  // no param_to_branch bit, so the cross-TU call site stays quiet too.
  const std::string marker = std::string("gka-lint: ") + "allow";
  const std::vector<SourceFile> proj = {
      {"src/core/helper.cpp",
       "int classify(const Bytes& material) {\n"
       "  int b = 0;\n"
       "  // " + marker + "(GKA601) -- audited: masked select below\n"
       "  if (material.front() & 1)\n"
       "    b = 1;\n"
       "  return b;\n"
       "}\n"},
      {"src/core/caller.cpp",
       "int g(const SecureBytes& session_key) {\n"
       "  return classify(session_key.reveal());\n"
       "}\n"},
  };
  EXPECT_FALSE(has_rule(lint_project(proj), "GKA601"));
}

// ---------------------------------------------------------------------------
// Rule catalog / output plumbing for the new families.

TEST(GkaLintOutput, EveryRuleHasAHelpUriIntoTheCatalog) {
  for (const gka_lint::Rule& r : gka_lint::rules()) {
    const std::string uri = gka_lint::rule_help_uri(r.id);
    EXPECT_EQ(uri.rfind("docs/static_analysis.md#", 0), 0u) << r.id;
  }
  EXPECT_EQ(gka_lint::rule_help_uri("GKA501"),
            "docs/static_analysis.md#lock-discipline-rules-gka5xx");
  EXPECT_EQ(gka_lint::rule_help_uri("GKA601"),
            "docs/static_analysis.md#constant-time-rules-gka6xx");
  EXPECT_EQ(gka_lint::rule_help_uri("GKA007"),
            "docs/static_analysis.md#suppression-hygiene-rules-gka0xx-meta");
}

TEST(GkaLintOutput, SarifResultsCarryHelpUriAndRuleIndex) {
  const auto fs =
      lint_source("src/core/x.cpp", "if (a == session_key) abort();\n");
  ASSERT_FALSE(fs.empty());
  const std::string sarif = gka_lint::to_sarif(fs);
  // The catalog entry and the result's property bag both link the docs.
  EXPECT_NE(sarif.find("\"helpUri\": "
                       "\"docs/static_analysis.md#key-handling-rules-gka0xx\""),
            std::string::npos);
  EXPECT_NE(sarif.find("\"ruleIndex\": 0"), std::string::npos);
  EXPECT_NE(sarif.find("\"properties\": {\"helpUri\": "), std::string::npos);
}

TEST(GkaLintOutput, RulesToJsonListsEveryRuleWithHelpUri) {
  const std::string json = gka_lint::rules_to_json();
  for (const gka_lint::Rule& r : gka_lint::rules()) {
    EXPECT_NE(json.find(std::string("\"id\": \"") + r.id + "\""),
              std::string::npos)
        << r.id;
  }
  EXPECT_NE(json.find("\"helpUri\": "
                      "\"docs/static_analysis.md#constant-time-rules-gka6xx\""),
            std::string::npos);
}

TEST(GkaLintFixtures, EveryRuleInTheJsonCatalogHasFireAndCleanFixtures) {
  // The coverage gate the --list-rules --format=json output feeds: adding a
  // rule without pinning it to golden fixtures fails here, not in review.
  namespace fs = std::filesystem;
  const fs::path base = fs::path(GKA_LINT_FIXTURE_DIR);
  const std::string json = gka_lint::rules_to_json();
  std::size_t pos = 0, count = 0;
  while ((pos = json.find("\"id\": \"", pos)) != std::string::npos) {
    pos += 7;
    std::string id = json.substr(pos, json.find('"', pos) - pos);
    std::transform(id.begin(), id.end(), id.begin(),
                   [](unsigned char c) { return std::tolower(c); });
    ++count;
    for (const char* suffix : {"_fire", "_clean"}) {
      const fs::path dir = base / (id + suffix);
      EXPECT_TRUE(fs::is_directory(dir)) << dir << " missing";
      bool any_file = false;
      if (fs::is_directory(dir))
        for (const auto& e : fs::recursive_directory_iterator(dir))
          any_file = any_file || e.is_regular_file();
      EXPECT_TRUE(any_file) << dir << " is empty";
    }
  }
  EXPECT_EQ(count, gka_lint::rules().size());
}

}  // namespace
