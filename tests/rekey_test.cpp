// Explicit re-key (refresh) tests: a fresh group key with unchanged
// membership, for every protocol.
#include <gtest/gtest.h>
#include <set>

#include "tests/protocol_harness.h"

namespace sgk {
namespace {

using testing::ProtocolFixture;

class Rekey : public ::testing::TestWithParam<ProtocolKind> {};

TEST_P(Rekey, RefreshProducesFreshKeySameMembership) {
  ProtocolFixture f(GetParam());
  f.grow_to(5);
  const std::string before = f.current_fingerprint();
  const auto members_before = f.alive()[0]->view()->members;
  const std::uint64_t epoch_before = f.alive()[0]->key_epoch();

  f.members[2]->request_rekey();
  f.sim.run();

  f.expect_agreement();
  EXPECT_NE(f.current_fingerprint(), before);
  EXPECT_GT(f.alive()[0]->key_epoch(), epoch_before);
  EXPECT_EQ(f.alive()[0]->view()->members, members_before);
}

TEST_P(Rekey, RefreshEventClassifiedAsRefresh) {
  ProtocolFixture f(GetParam());
  f.grow_to(3);
  // Observed through the members themselves; verify via epoch advance:
  std::uint64_t epoch = f.alive()[0]->key_epoch();
  f.members[0]->request_rekey();
  f.sim.run();
  EXPECT_GT(f.alive()[0]->key_epoch(), epoch);
}

TEST_P(Rekey, RepeatedRefreshesAllDistinct) {
  ProtocolFixture f(GetParam());
  f.grow_to(4);
  std::set<std::string> keys;
  keys.insert(f.current_fingerprint());
  for (int i = 0; i < 4; ++i) {
    f.members[static_cast<std::size_t>(i)]->request_rekey();
    f.sim.run();
    f.expect_agreement();
    EXPECT_TRUE(keys.insert(f.current_fingerprint()).second)
        << "re-key " << i << " reused a key";
  }
}

TEST_P(Rekey, RefreshThenChurnStillConverges) {
  ProtocolFixture f(GetParam());
  f.grow_to(4);
  f.members[1]->request_rekey();
  f.sim.run();
  f.expect_agreement();
  f.add_member();
  f.expect_agreement();
  f.remove_member(2);
  f.expect_agreement();
}

TEST_P(Rekey, SingletonRefreshWorks) {
  ProtocolFixture f(GetParam());
  f.grow_to(1);
  const std::string before = f.members[0]->key_fingerprint();
  f.members[0]->request_rekey();
  f.sim.run();
  EXPECT_NE(f.members[0]->key_fingerprint(), before);
}

INSTANTIATE_TEST_SUITE_P(
    Protocols, Rekey, ::testing::ValuesIn(sgk::testing::all_protocols()),
    [](const ::testing::TestParamInfo<ProtocolKind>& info) {
      return std::string(to_string(info.param));
    });

TEST(ViewClassify, RefreshEvent) {
  ViewDelta d;
  d.first_view = false;
  EXPECT_EQ(d.classify(), GroupEvent::kRefresh);
  d.first_view = true;
  EXPECT_EQ(d.classify(), GroupEvent::kInitial);
}

}  // namespace
}  // namespace sgk
