// Adversarial wire corpus: hand-crafted hostile frames through every
// protocol's validate_and_decode entrypoint, KeyTree decode edge cases, and
// secure-group-level injection tests asserting the tentpole invariant — a
// hostile frame dies as a typed rejection and the group still converges.
#include <gtest/gtest.h>

#include <cstdint>
#include <functional>

#include "core/bd.h"
#include "core/ckd.h"
#include "core/gdh.h"
#include "core/key_tree.h"
#include "core/str.h"
#include "core/tgdh.h"
#include "crypto/dh.h"
#include "obs/metrics.h"
#include "tests/protocol_harness.h"
#include "util/serde.h"

namespace sgk {
namespace {

using testing::ProtocolFixture;

const BigInt& P() { return dh_group(DhBits::k512).p(); }
const BigInt& G() { return dh_group(DhBits::k512).g(); }

Bytes bigint_body(std::uint8_t tag, const BigInt& v) {
  Writer w;
  w.u8(tag);
  put_bigint(w, v);
  return w.take();
}

Bytes truncate(Bytes b, std::size_t n = 1) {
  b.resize(b.size() - n);
  return b;
}

Bytes extend(Bytes b, std::uint8_t extra = 0x00) {
  b.push_back(extra);
  return b;
}

// ---------------------------------------------------------------------------
// GDH

TEST(GdhCorpus, EmptyAndUnknownTag) {
  EXPECT_EQ(GdhProtocol::validate_and_decode({}, P()).reason,
            RejectReason::kTruncated);
  EXPECT_EQ(GdhProtocol::validate_and_decode({9}, P()).reason,
            RejectReason::kBadTag);
}

TEST(GdhCorpus, AccumRoundTripAndMutations) {
  const Bytes ok = bigint_body(GdhProtocol::kAccum, G());
  EXPECT_TRUE(GdhProtocol::validate_and_decode(ok, P()).ok());
  EXPECT_EQ(GdhProtocol::validate_and_decode(truncate(ok), P()).reason,
            RejectReason::kTruncated);
  EXPECT_EQ(GdhProtocol::validate_and_decode(extend(ok), P()).reason,
            RejectReason::kTrailingBytes);
}

TEST(GdhCorpus, OutOfRangeBignums) {
  for (const BigInt& v :
       {BigInt(0), BigInt(1), P() - BigInt(1), P(), P() + BigInt(5)}) {
    EXPECT_EQ(
        GdhProtocol::validate_and_decode(bigint_body(GdhProtocol::kAccum, v), P())
            .reason,
        RejectReason::kBignumRange);
    EXPECT_EQ(GdhProtocol::validate_and_decode(
                  bigint_body(GdhProtocol::kFactorOut, v), P())
                  .reason,
              RejectReason::kBignumRange);
  }
}

TEST(GdhCorpus, TokenEmptyChainAndLyingListLength) {
  Writer empty_chain;
  empty_chain.u8(GdhProtocol::kToken);
  put_bigint(empty_chain, G());
  empty_chain.u32(0);  // done list
  empty_chain.u32(0);  // chain: a token must target at least one member
  EXPECT_EQ(GdhProtocol::validate_and_decode(empty_chain.take(), P()).reason,
            RejectReason::kBadLength);

  Writer lie;
  lie.u8(GdhProtocol::kToken);
  put_bigint(lie, G());
  lie.u32(0xffffffffu);  // done-list length far beyond the payload and cap
  EXPECT_EQ(GdhProtocol::validate_and_decode(lie.take(), P()).reason,
            RejectReason::kBadLength);
}

TEST(GdhCorpus, PartialsWithOutOfRangeEntry) {
  Writer w;
  w.u8(GdhProtocol::kPartials);
  w.u32(1);
  w.u32(7);  // order
  w.u32(1);
  w.u32(7);  // member
  put_bigint(w, BigInt(1));
  EXPECT_EQ(GdhProtocol::validate_and_decode(w.take(), P()).reason,
            RejectReason::kBignumRange);
}

// ---------------------------------------------------------------------------
// CKD

TEST(CkdCorpus, TagRangeTruncationAndLies) {
  EXPECT_EQ(CkdProtocol::validate_and_decode({0}, P()).reason,
            RejectReason::kBadTag);

  const Bytes ok = bigint_body(CkdProtocol::kResponse, G());
  EXPECT_TRUE(CkdProtocol::validate_and_decode(ok, P()).ok());
  EXPECT_EQ(CkdProtocol::validate_and_decode(
                bigint_body(CkdProtocol::kResponse, P()), P())
                .reason,
            RejectReason::kBignumRange);

  // A bignum length prefix claiming 64 bytes with none following: plain
  // truncation, not a length-prefix lie (the prefix is consistent with a
  // longer message that simply ended early).
  Writer cut;
  cut.u8(CkdProtocol::kChallenge);
  cut.u32(64);
  EXPECT_EQ(CkdProtocol::validate_and_decode(cut.take(), P()).reason,
            RejectReason::kTruncated);

  Writer lie;
  lie.u8(CkdProtocol::kKeyBcast);
  lie.u32(0xffffffffu);  // order-list length
  EXPECT_EQ(CkdProtocol::validate_and_decode(lie.take(), P()).reason,
            RejectReason::kBadLength);
}

TEST(CkdCorpus, KeyBcastWithOutOfRangeWrap) {
  Writer w;
  w.u8(CkdProtocol::kKeyBcast);
  w.u32(1);
  w.u32(3);  // order
  w.u32(1);
  w.u32(3);  // wrap target
  put_bigint(w, BigInt(0));
  EXPECT_EQ(CkdProtocol::validate_and_decode(w.take(), P()).reason,
            RejectReason::kBignumRange);
}

// ---------------------------------------------------------------------------
// TGDH (serialized KeyTree payloads)

Bytes tree_body(std::uint8_t tag, const KeyTree& t) {
  Writer w;
  w.u8(tag);
  t.serialize(w);
  return w.take();
}

TEST(TgdhCorpus, ValidLeafTreeRoundTrips) {
  const Bytes ok = tree_body(TgdhProtocol::kAnnounce, KeyTree::leaf(1));
  EXPECT_TRUE(TgdhProtocol::validate_and_decode(ok, P()).ok());
  EXPECT_EQ(TgdhProtocol::validate_and_decode(truncate(ok), P()).reason,
            RejectReason::kTruncated);
  EXPECT_EQ(TgdhProtocol::validate_and_decode(extend(ok), P()).reason,
            RejectReason::kTrailingBytes);
  EXPECT_EQ(TgdhProtocol::validate_and_decode({7}, P()).reason,
            RejectReason::kBadTag);
}

TEST(TgdhCorpus, HostileTreeShapes) {
  // Invalid node tag.
  EXPECT_EQ(TgdhProtocol::validate_and_decode({TgdhProtocol::kAnnounce, 7},
                                              P())
                .reason,
            RejectReason::kBadShape);

  // An unbounded run of internal-node tags recurses past the depth cap.
  Bytes deep(5001, 0x01);
  deep[0] = TgdhProtocol::kAnnounce;
  EXPECT_EQ(TgdhProtocol::validate_and_decode(deep, P()).reason,
            RejectReason::kBadShape);

  // Two leaves claiming the same member.
  Writer dup;
  dup.u8(TgdhProtocol::kAnnounce);
  dup.u8(1);  // internal
  for (int i = 0; i < 2; ++i) {
    dup.u8(0);  // leaf
    dup.u32(5);
    dup.u8(0);  // no bkey
  }
  dup.u8(0);  // internal node: no bkey
  EXPECT_EQ(TgdhProtocol::validate_and_decode(dup.take(), P()).reason,
            RejectReason::kBadShape);
}

TEST(TgdhCorpus, BlindedKeyOutOfRange) {
  Writer w;
  w.u8(TgdhProtocol::kUpdate);
  w.u8(0);  // leaf
  w.u32(1);
  w.u8(1);  // bkey present
  put_bigint(w, BigInt(1));
  EXPECT_EQ(TgdhProtocol::validate_and_decode(w.take(), P()).reason,
            RejectReason::kBignumRange);
}

// KeyTree::deserialize directly: the structural caps. (True cycles are not
// expressible in the recursive encoding — parent/child links are rebuilt —
// so the hostile-shape space is depth, node count, tags and duplicates.)
TEST(KeyTreeAdversarial, DepthCapKillsRecursiveBombs) {
  Bytes bomb(static_cast<std::size_t>(KeyTree::kMaxDepth) + 10, 0x01);
  Reader r(bomb);
  EXPECT_THROW(KeyTree::deserialize(r), TreeShapeError);
}

TEST(KeyTreeAdversarial, NodeCapKillsWideTrees) {
  // A balanced tree over more members than kMaxNodes can hold (n leaves =>
  // 2n-1 nodes) stays shallow, so only the node cap can stop it.
  Writer w;
  std::uint32_t next_member = 1;
  const std::function<void(std::uint32_t)> encode = [&](std::uint32_t leaves) {
    if (leaves == 1) {
      w.u8(0);
      w.u32(next_member++);
    } else {
      w.u8(1);
      encode(leaves / 2);
      encode(leaves - leaves / 2);
    }
    w.u8(0);  // no bkey
  };
  encode(static_cast<std::uint32_t>(KeyTree::kMaxNodes / 2 + 10));
  const Bytes body = w.take();
  Reader r(body);
  EXPECT_THROW(KeyTree::deserialize(r), TreeShapeError);
}

TEST(KeyTreeAdversarial, TruncationIsPlainDecodeError) {
  Writer w;
  KeyTree::leaf(3).serialize(w);
  const Bytes cut = truncate(w.take());
  Reader r(cut);
  EXPECT_THROW(KeyTree::deserialize(r), DecodeError);
}

// ---------------------------------------------------------------------------
// STR

TEST(StrCorpus, TagFlagsDuplicatesAndRange) {
  EXPECT_EQ(StrProtocol::validate_and_decode({0}, P()).reason,
            RejectReason::kBadTag);

  Writer ok;
  ok.u8(StrProtocol::kAnnounce);
  ok.u32(1);
  ok.u32(4);  // member
  ok.u8(1);   // br present
  put_bigint(ok, G());
  ok.u8(0);  // no bk
  const Bytes valid = ok.take();
  EXPECT_TRUE(StrProtocol::validate_and_decode(valid, P()).ok());
  EXPECT_EQ(StrProtocol::validate_and_decode(extend(valid), P()).reason,
            RejectReason::kTrailingBytes);

  Writer flag;
  flag.u8(StrProtocol::kAnnounce);
  flag.u32(1);
  flag.u32(4);
  flag.u8(2);  // presence flags are strictly 0/1
  EXPECT_EQ(StrProtocol::validate_and_decode(flag.take(), P()).reason,
            RejectReason::kBadTag);

  Writer dup;
  dup.u8(StrProtocol::kUpdate);
  dup.u32(2);
  for (int i = 0; i < 2; ++i) {
    dup.u32(9);  // same member twice
    dup.u8(0);
    dup.u8(0);
  }
  EXPECT_EQ(StrProtocol::validate_and_decode(dup.take(), P()).reason,
            RejectReason::kBadShape);

  Writer range;
  range.u8(StrProtocol::kAnnounce);
  range.u32(1);
  range.u32(4);
  range.u8(1);
  put_bigint(range, P() - BigInt(1));
  EXPECT_EQ(StrProtocol::validate_and_decode(range.take(), P()).reason,
            RejectReason::kBignumRange);

  Writer lie;
  lie.u8(StrProtocol::kAnnounce);
  lie.u32(0xffffffffu);
  EXPECT_EQ(StrProtocol::validate_and_decode(lie.take(), P()).reason,
            RejectReason::kBadLength);
}

// ---------------------------------------------------------------------------
// BD

TEST(BdCorpus, TagAndRangeRules) {
  EXPECT_EQ(BdProtocol::validate_and_decode({3}, P()).reason,
            RejectReason::kBadTag);
  EXPECT_TRUE(
      BdProtocol::validate_and_decode(bigint_body(BdProtocol::kZ, G()), P())
          .ok());
  EXPECT_EQ(BdProtocol::validate_and_decode(bigint_body(BdProtocol::kZ, BigInt(1)),
                                            P())
                .reason,
            RejectReason::kBignumRange);
  // X_i = (z_{i+1}/z_{i-1})^{r_i} is legitimately 1 in two-member groups
  // (the neighbors coincide), so kX admits 1 — but nothing below it or
  // outside the group.
  EXPECT_TRUE(
      BdProtocol::validate_and_decode(bigint_body(BdProtocol::kX, BigInt(1)), P())
          .ok());
  EXPECT_EQ(BdProtocol::validate_and_decode(bigint_body(BdProtocol::kX, BigInt(0)),
                                            P())
                .reason,
            RejectReason::kBignumRange);
  EXPECT_EQ(BdProtocol::validate_and_decode(
                bigint_body(BdProtocol::kX, P() - BigInt(1)), P())
                .reason,
            RejectReason::kBignumRange);
  EXPECT_EQ(BdProtocol::validate_and_decode(
                truncate(bigint_body(BdProtocol::kZ, G())), P())
                .reason,
            RejectReason::kTruncated);
}

// ---------------------------------------------------------------------------
// Secure group layer: injected hostile frames die as counted typed
// rejections and the group still converges.

class AdversarialGroup : public ::testing::TestWithParam<ProtocolKind> {};

std::uint64_t total_rejected(const ProtocolFixture& f) {
  std::uint64_t n = 0;
  for (SecureGroupMember* m : f.alive()) n += m->frames_rejected();
  return n;
}

TEST_P(AdversarialGroup, SpoofedSenderIsTypedRejectAndGroupConverges) {
  ProtocolFixture f(GetParam());
  f.grow_to(3);
  const ProcessId victim = f.members[0]->id();

  // The attacker holds a GCS membership (transport-level insider) and sends
  // a protocol frame claiming a *different* honest member as its sender.
  const ProcessId evil = f.net.create_process(3);
  f.net.join_group("secure-group", evil);
  f.sim.run();

  const std::uint64_t before = total_rejected(f);
  Writer w;
  w.u8(1);  // protocol frame
  w.u64(f.members[0]->view()->view_id);
  w.u32(victim);  // claimed sender != transport sender
  w.bytes(str_bytes("spoof"));
  w.bytes(Bytes(128, 0x41));
  f.net.multicast("secure-group", evil, w.take());
  f.sim.run();
  EXPECT_GT(total_rejected(f), before);

  f.net.leave_group("secure-group", evil);
  f.sim.run();
  f.add_member();
  f.expect_agreement();
}

TEST_P(AdversarialGroup, GarbageFramesAreCountedPerReason) {
  obs::MetricsRegistry registry;
  obs::set_metrics(&registry);
  ProtocolFixture f(GetParam());
  f.grow_to(3);

  const ProcessId evil = f.net.create_process(3);
  f.net.join_group("secure-group", evil);
  f.sim.run();
  // 0xde is not a valid outer frame kind: every honest member must classify
  // the frame as kBadTag and count it.
  f.net.multicast("secure-group", evil, Bytes{0xde, 0xad, 0xbe, 0xef});
  f.sim.run();
  obs::set_metrics(nullptr);

  const std::string name =
      std::string("frames_rejected/") + to_string(GetParam()) + "/bad_tag";
  EXPECT_GE(registry.counter(name).value(), 3u);
  EXPECT_GT(total_rejected(f), 0u);

  f.net.leave_group("secure-group", evil);
  f.sim.run();
  f.add_member();
  f.expect_agreement();
}

INSTANTIATE_TEST_SUITE_P(
    Protocols, AdversarialGroup,
    ::testing::ValuesIn(sgk::testing::all_protocols()),
    [](const ::testing::TestParamInfo<ProtocolKind>& info) {
      return std::string(to_string(info.param));
    });

}  // namespace
}  // namespace sgk
