// SecureBytes: zeroize-on-destruction storage for key material.
#include "util/secure_bytes.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <new>
#include <utility>

namespace sgk {
namespace {

Bytes pattern(std::size_t n) {
  Bytes b(n);
  for (std::size_t i = 0; i < n; ++i)
    b[i] = static_cast<std::uint8_t>(0xA0 + i);
  return b;
}

TEST(SecureBytes, BasicAccessors) {
  const Bytes src = pattern(16);
  SecureBytes s(src);
  EXPECT_EQ(s.size(), 16u);
  EXPECT_FALSE(s.empty());
  for (std::size_t i = 0; i < src.size(); ++i) EXPECT_EQ(s[i], src[i]);

  SecureBytes empty;
  EXPECT_TRUE(empty.empty());
  EXPECT_EQ(empty.size(), 0u);
}

TEST(SecureBytes, SizedConstructorZeroFills) {
  SecureBytes s(32);
  EXPECT_EQ(s.size(), 32u);
  for (std::size_t i = 0; i < s.size(); ++i) EXPECT_EQ(s[i], 0);
}

// Destruction must wipe the object's storage. Constructing into a caller-
// provided buffer via placement new makes the post-destruction bytes legal
// to inspect: the SecureBytes lifetime has ended, but the char buffer's has
// not. Inline storage (<= kInlineCapacity) means the secret bytes live
// inside the object itself.
TEST(SecureBytes, DestructorZeroizesInlineStorage) {
  alignas(SecureBytes) unsigned char raw[sizeof(SecureBytes)];
  const Bytes secret = pattern(48);

  auto* s = new (raw) SecureBytes(secret);
  ASSERT_EQ(s->size(), 48u);
  // The secret must be somewhere in the object representation...
  EXPECT_NE(std::search(raw, raw + sizeof(raw), secret.begin(), secret.end()),
            raw + sizeof(raw));
  s->~SecureBytes();
  // ...and gone after destruction.
  EXPECT_EQ(std::search(raw, raw + sizeof(raw), secret.begin(), secret.end()),
            raw + sizeof(raw));
}

TEST(SecureBytes, WipeClearsAndEmpties) {
  SecureBytes s(pattern(24));
  s.wipe();
  EXPECT_TRUE(s.empty());
  EXPECT_EQ(s.size(), 0u);
}

TEST(SecureBytes, HeapStorageAboveInlineCapacity) {
  const Bytes big = pattern(SecureBytes::kInlineCapacity + 37);
  SecureBytes s(big);
  EXPECT_EQ(s.size(), big.size());
  EXPECT_TRUE(ct_equal(s, big));
  s.wipe();
  EXPECT_TRUE(s.empty());
}

TEST(SecureBytes, AdoptingMoveWipesSourceBytes) {
  Bytes src = pattern(20);
  const Bytes copy = src;
  SecureBytes s(std::move(src));
  EXPECT_TRUE(ct_equal(s, copy));
  // The moved-from plain buffer must not retain the secret.
  const bool all_zero =
      std::all_of(src.begin(), src.end(), [](std::uint8_t b) { return b == 0; });
  EXPECT_TRUE(all_zero);
}

TEST(SecureBytes, MoveConstructionWipesSource) {
  SecureBytes a(pattern(16));
  SecureBytes b(std::move(a));
  EXPECT_EQ(b.size(), 16u);
  EXPECT_TRUE(a.empty());  // NOLINT(bugprone-use-after-move): wipe contract
}

TEST(SecureBytes, MoveAssignmentWipesSourceAndOldContents) {
  SecureBytes a(pattern(16));
  SecureBytes b(pattern(32));
  b = std::move(a);
  EXPECT_EQ(b.size(), 16u);
  EXPECT_TRUE(a.empty());  // NOLINT(bugprone-use-after-move): wipe contract
}

TEST(SecureBytes, CopyIsIndependent) {
  SecureBytes a(pattern(16));
  SecureBytes b(a);
  a.wipe();
  EXPECT_EQ(b.size(), 16u);
  EXPECT_TRUE(ct_equal(b, pattern(16)));
}

TEST(SecureBytes, RevealRanges) {
  SecureBytes s(pattern(64));
  // gka-lint: allow(GKA201) -- reveal() round-trip is the behavior under test
  const Bytes whole = s.reveal();
  EXPECT_TRUE(ct_equal(s, whole));
  // gka-lint: allow(GKA201) -- reveal() range slicing is the behavior under test
  const Bytes slice = s.reveal(4, 8);
  ASSERT_EQ(slice.size(), 8u);
  for (std::size_t i = 0; i < slice.size(); ++i) EXPECT_EQ(slice[i], s[4 + i]);
  EXPECT_THROW(s.reveal(60, 8), std::out_of_range);
  EXPECT_THROW(s.reveal(65, 0), std::out_of_range);
}

TEST(CtEqual, TruthTable) {
  const Bytes x = pattern(16);
  Bytes y = x;
  EXPECT_TRUE(ct_equal(SecureBytes(x), SecureBytes(y)));
  EXPECT_TRUE(ct_equal(SecureBytes(x), y));
  EXPECT_TRUE(ct_equal(x, SecureBytes(y)));

  y[7] ^= 1;  // single-bit difference
  EXPECT_FALSE(ct_equal(SecureBytes(x), SecureBytes(y)));
  EXPECT_FALSE(ct_equal(SecureBytes(x), y));
  EXPECT_FALSE(ct_equal(x, SecureBytes(y)));

  // Length mismatch is unequal, including the empty/non-empty case.
  EXPECT_FALSE(ct_equal(SecureBytes(x), SecureBytes(pattern(15))));
  EXPECT_FALSE(ct_equal(SecureBytes(), SecureBytes(x)));
  EXPECT_TRUE(ct_equal(SecureBytes(), SecureBytes()));
}

TEST(SecureZero, WipesAndHandlesNull) {
  Bytes b = pattern(16);
  secure_zero(b.data(), b.size());
  EXPECT_TRUE(std::all_of(b.begin(), b.end(),
                          [](std::uint8_t v) { return v == 0; }));
  secure_zero(nullptr, 0);  // must be a no-op, not a crash
}

}  // namespace
}  // namespace sgk
