// Direct unit tests for the cross-TU call graph (tools/gka_lint/callgraph),
// below the rule layer: name-merged definition lookup, callee extraction,
// the any-overload merge of InterprocView, and the lock-fact maps. The rule
// tests (gka_lint_test.cpp) cover the same machinery end-to-end; these pin
// the graph's own contract so a regression is attributed to the right layer.
#include "gka_lint/callgraph.h"

#include <gtest/gtest.h>

#include "gka_lint/model.h"

namespace {

using gka_lint::CallGraph;
using gka_lint::FileModel;
using gka_lint::FunctionRef;
using gka_lint::InterprocView;
using gka_lint::LockFacts;
using gka_lint::SummaryMap;
using gka_lint::TaintSummary;

std::vector<FileModel> build_models(
    const std::vector<std::pair<std::string, std::string>>& files) {
  std::vector<FileModel> models;
  for (const auto& [path, content] : files)
    models.push_back(gka_lint::build_model(path, content));
  return models;
}

TEST(CallGraph, MergesSameNamedDefinitionsAcrossTus) {
  // Two TUs each define `handle` — e.g. two protocol classes with a method
  // of the same name. The graph deliberately merges them by name.
  const auto models = build_models({
      {"src/core/a.cpp", "void A::handle(int x) {\n  route(x);\n}\n"},
      {"src/core/b.cpp", "void B::handle(double y) {\n  drop(y);\n}\n"},
  });
  CallGraph cg;
  cg.build(models);

  const std::vector<FunctionRef>* defs = cg.definitions("handle");
  ASSERT_NE(defs, nullptr);
  EXPECT_EQ(defs->size(), 2u);
  // Both files contribute, in deterministic model order.
  EXPECT_EQ((*defs)[0].file->path, "src/core/a.cpp");
  EXPECT_EQ((*defs)[1].file->path, "src/core/b.cpp");

  // Unknown names (std:: calls, system headers) resolve to nothing.
  EXPECT_EQ(cg.definitions("memcpy"), nullptr);

  // Callee sets are per *definition*, not merged.
  EXPECT_EQ(cg.callees((*defs)[0].fn).count("route"), 1u);
  EXPECT_EQ(cg.callees((*defs)[0].fn).count("drop"), 0u);
  EXPECT_EQ(cg.callees((*defs)[1].fn).count("drop"), 1u);

  EXPECT_EQ(cg.all().size(), 2u);
}

TEST(CallGraph, InterprocViewMergesSummariesTrueIfAny) {
  // With two same-named definitions, a summary bit holds at a call site if
  // it holds for ANY of them — the sound direction for an over-approximate
  // name-matched graph.
  const auto models = build_models({
      {"src/core/a.cpp", "void handle(int x) {\n  route(x);\n}\n"},
      {"src/core/b.cpp", "void handle(double y) {\n  drop(y);\n}\n"},
  });
  CallGraph cg;
  cg.build(models);
  const auto* defs = cg.definitions("handle");
  ASSERT_NE(defs, nullptr);
  ASSERT_EQ(defs->size(), 2u);

  SummaryMap sums;
  TaintSummary quiet;
  quiet.param_to_sink = {false};
  quiet.param_to_branch = {false};
  quiet.param_to_return = {false};
  TaintSummary leaky = quiet;
  leaky.param_to_sink = {true};
  leaky.param_to_branch = {true};
  sums[(*defs)[0].fn] = quiet;
  sums[(*defs)[1].fn] = leaky;

  const InterprocView iv(cg, sums);
  EXPECT_TRUE(iv.known("handle"));
  EXPECT_FALSE(iv.known("memcpy"));
  EXPECT_TRUE(iv.param_to_sink("handle", 0));    // any-overload merge
  EXPECT_TRUE(iv.param_to_branch("handle", 0));  // any-overload merge
  EXPECT_FALSE(iv.param_to_return("handle", 0));
  EXPECT_FALSE(iv.returns_tainted("handle"));
}

TEST(CallGraph, LockFactsMergeDeclarationsByNameAndInferEffects) {
  // The SGK_REQUIRES declaration lives in the header model; the inferred
  // acquire effect comes from a bare lock() in another TU's helper.
  const auto models = build_models({
      {"src/gcs/r.h",
       "class R {\n"
       "  void bump() SGK_REQUIRES(mu_);\n"
       "  std::mutex mu_;\n"
       "};\n"},
      {"src/gcs/r.cpp",
       "void R::grab() {\n"
       "  mu_.lock();\n"
       "}\n"},
  });
  CallGraph cg;
  cg.build(models);
  const LockFacts facts = gka_lint::compute_lock_facts(models, cg);

  ASSERT_EQ(facts.needs.count("bump"), 1u);
  EXPECT_EQ(facts.needs.at("bump").count("mu_"), 1u);
  // grab() never declared SGK_ACQUIRE, but its net effect is inferred.
  ASSERT_EQ(facts.acq_eff.count("grab"), 1u);
  EXPECT_EQ(facts.acq_eff.at("grab").count("mu_"), 1u);
  EXPECT_EQ(facts.acq_decl.count("grab"), 0u);
}

}  // namespace
