// SecureGroupMember data-plane and framing tests.
#include <gtest/gtest.h>

#include "tests/protocol_harness.h"
#include "util/serde.h"

namespace sgk {
namespace {

using testing::ProtocolFixture;

TEST(SecureGroup, DataBeforeKeyIsRejected) {
  ProtocolFixture f(ProtocolKind::kTgdh);
  f.grow_to(2);
  // A data frame claiming a future key epoch is ignored.
  Writer w;
  w.u8(2);  // kData
  w.u64(999999);
  w.u32(f.members[0]->id());
  w.bytes(str_bytes("junk"));
  bool delivered = false;
  f.members[1]->set_data_listener([&](ProcessId, const Bytes&) { delivered = true; });
  f.net.multicast("secure-group", f.members[0]->id(), w.take());
  f.sim.run();
  EXPECT_FALSE(delivered);
}

TEST(SecureGroup, DataAcrossEpochBoundaryIsDropped) {
  // Data sealed under the old key must not decrypt after a re-key.
  ProtocolFixture f(ProtocolKind::kBd);
  f.grow_to(3);
  Bytes old_frame;
  {
    // Capture a data frame wire format by sealing under the current key.
    Writer w;
    w.u8(2);
    w.u64(f.members[0]->key_epoch());
    w.u32(f.members[0]->id());
    w.bytes(f.members[0]->seal(str_bytes("old epoch payload")));
    old_frame = w.take();
  }
  f.add_member();  // re-key
  bool delivered = false;
  f.members[1]->set_data_listener([&](ProcessId, const Bytes&) { delivered = true; });
  f.net.multicast("secure-group", f.members[0]->id(), old_frame);
  f.sim.run();
  EXPECT_FALSE(delivered);  // stale epoch
}

TEST(SecureGroup, SenderDoesNotReceiveOwnData) {
  ProtocolFixture f(ProtocolKind::kStr);
  f.grow_to(2);
  int self_deliveries = 0;
  f.members[0]->set_data_listener([&](ProcessId, const Bytes&) { ++self_deliveries; });
  f.members[0]->send_data(str_bytes("to others"));
  f.sim.run();
  EXPECT_EQ(self_deliveries, 0);
}

TEST(SecureGroup, LargePayloadRoundTrip) {
  ProtocolFixture f(ProtocolKind::kCkd);
  f.grow_to(2);
  Bytes big(100000);
  for (std::size_t i = 0; i < big.size(); ++i)
    big[i] = static_cast<std::uint8_t>(i * 7);
  Bytes received;
  f.members[1]->set_data_listener([&](ProcessId, const Bytes& pt) { received = pt; });
  f.members[0]->send_data(big);
  f.sim.run();
  EXPECT_EQ(received, big);
}

TEST(SecureGroup, SealProducesDistinctCiphertexts) {
  ProtocolFixture f(ProtocolKind::kGdh);
  f.grow_to(2);
  Bytes a = f.members[0]->seal(str_bytes("same message"));
  Bytes b = f.members[0]->seal(str_bytes("same message"));
  EXPECT_NE(to_hex(a), to_hex(b));  // fresh IV per message
}

TEST(SecureGroup, OpenRejectsGarbage) {
  ProtocolFixture f(ProtocolKind::kGdh);
  f.grow_to(2);
  EXPECT_FALSE(f.members[0]->open(Bytes{1, 2, 3}).has_value());
  EXPECT_FALSE(f.members[0]->open(Bytes(200, 0xaa)).has_value());
}

TEST(SecureGroup, KeyListenerFiresPerEpoch) {
  ProtocolFixture f(ProtocolKind::kTgdh);
  std::vector<std::uint64_t> epochs;
  f.grow_to(1);
  f.members[0]->set_key_listener(
      [&](SimTime, std::uint64_t epoch) { epochs.push_back(epoch); });
  f.add_member();
  f.add_member();
  ASSERT_EQ(epochs.size(), 2u);
  EXPECT_LT(epochs[0], epochs[1]);
}

TEST(SecureGroup, ReplayedDataFrameDeliveredOnlyOnce) {
  // A passive attacker re-injecting a captured data frame must not cause a
  // duplicate delivery (per-sender sequence filter).
  ProtocolFixture f(ProtocolKind::kTgdh);
  f.grow_to(3);
  Bytes captured;
  f.net.set_wire_tap([&](const std::string&, ProcessId sender, const Bytes& payload) {
    if (sender == f.members[0]->id() && !payload.empty() && payload[0] == 2)
      captured = payload;
  });
  int deliveries = 0;
  f.members[1]->set_data_listener([&](ProcessId, const Bytes&) { ++deliveries; });
  f.members[0]->send_data(str_bytes("once only"));
  f.sim.run();
  ASSERT_EQ(deliveries, 1);
  ASSERT_FALSE(captured.empty());
  // Replay the exact frame.
  f.net.multicast("secure-group", f.members[0]->id(), captured);
  f.sim.run();
  EXPECT_EQ(deliveries, 1);
}

TEST(SecureGroup, OutOfOrderSequenceRejectedButLaterFramesFlow) {
  ProtocolFixture f(ProtocolKind::kBd);
  f.grow_to(2);
  std::vector<Bytes> frames;
  f.net.set_wire_tap([&](const std::string&, ProcessId, const Bytes& payload) {
    if (!payload.empty() && payload[0] == 2) frames.push_back(payload);
  });
  std::vector<Bytes> received;
  f.members[1]->set_data_listener(
      [&](ProcessId, const Bytes& pt) { received.push_back(pt); });
  f.members[0]->send_data(str_bytes("one"));
  f.members[0]->send_data(str_bytes("two"));
  f.sim.run();
  ASSERT_EQ(received.size(), 2u);
  // Re-inject frame #1 (stale sequence): dropped.
  ASSERT_EQ(frames.size(), 2u);
  f.net.multicast("secure-group", f.members[0]->id(), frames[0]);
  f.sim.run();
  EXPECT_EQ(received.size(), 2u);
  // New frames still flow.
  f.members[0]->send_data(str_bytes("three"));
  f.sim.run();
  ASSERT_EQ(received.size(), 3u);
  EXPECT_EQ(received.back(), str_bytes("three"));
}

TEST(SecureGroup, CountersTrackBytes) {
  ProtocolFixture f(ProtocolKind::kBd);
  f.grow_to(3);
  for (SecureGroupMember* m : f.alive()) {
    EXPECT_GT(m->counters().bytes_sent, 0u);
    EXPECT_GT(m->counters().multicasts, 0u);
  }
}

TEST(SecureGroup, ViewAccessorsReflectMembership) {
  ProtocolFixture f(ProtocolKind::kStr);
  f.grow_to(3);
  const View* v = f.members[0]->view();
  ASSERT_NE(v, nullptr);
  EXPECT_EQ(v->members.size(), 3u);
  EXPECT_EQ(f.members[0]->group_name(), "secure-group");
}

TEST(SecureGroup, MembersOnSameMachineShareCpuButAgree) {
  // All members on ONE machine: maximal CPU contention, still correct.
  ProtocolFixture f(ProtocolKind::kBd, lan_testbed(1));
  f.grow_to(6);
  f.expect_agreement();
  f.remove_member(2);
  f.expect_agreement();
}

TEST(SecureGroup, SoloMachinePerMemberAgreesToo) {
  ProtocolFixture f(ProtocolKind::kGdh, lan_testbed(8));
  f.grow_to(8);
  f.expect_agreement();
}

}  // namespace
}  // namespace sgk
