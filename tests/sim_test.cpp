#include <gtest/gtest.h>

#include "util/check.h"
#include "core/cost_model.h"
#include "sim/cpu.h"
#include "sim/simulator.h"
#include "sim/topology.h"

namespace sgk {
namespace {

TEST(Simulator, ExecutesInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.at(5.0, [&] { order.push_back(2); });
  sim.at(1.0, [&] { order.push_back(1); });
  sim.at(9.0, [&] { order.push_back(3); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.now(), 9.0);
  EXPECT_EQ(sim.executed(), 3u);
}

TEST(Simulator, FifoTieBreakAtSameTime) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) sim.at(1.0, [&order, i] { order.push_back(i); });
  sim.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(Simulator, NestedScheduling) {
  Simulator sim;
  double inner_time = -1;
  sim.at(2.0, [&] { sim.after(3.0, [&] { inner_time = sim.now(); }); });
  sim.run();
  EXPECT_EQ(inner_time, 5.0);
}

TEST(Simulator, SchedulingInPastThrows) {
  Simulator sim;
  sim.at(5.0, [&] {
    EXPECT_THROW(sim.at(4.0, [] {}), CheckFailure);
  });
  sim.run();
}

TEST(Simulator, RunUntilStopsEarly) {
  Simulator sim;
  int fired = 0;
  sim.at(1.0, [&] { ++fired; });
  sim.at(10.0, [&] { ++fired; });
  sim.run_until(5.0);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sim.now(), 5.0);
  EXPECT_EQ(sim.pending(), 1u);
  sim.run();
  EXPECT_EQ(fired, 2);
}

TEST(Cpu, SingleTaskRunsImmediately) {
  Simulator sim;
  CpuScheduler cpu(sim, 1, 1.0);
  double done_at = -1;
  cpu.submit(0, 10.0, [&] { done_at = sim.now(); });
  sim.run();
  EXPECT_EQ(done_at, 10.0);
}

TEST(Cpu, SpeedFactorScalesCost) {
  Simulator sim;
  CpuScheduler cpu(sim, 1, 2.0);  // half-speed machine
  double done_at = -1;
  cpu.submit(0, 10.0, [&] { done_at = sim.now(); });
  sim.run();
  EXPECT_EQ(done_at, 20.0);
}

TEST(Cpu, TwoCoresRunTwoProcessesInParallel) {
  Simulator sim;
  CpuScheduler cpu(sim, 2, 1.0);
  std::vector<double> done;
  cpu.submit(0, 10.0, [&] { done.push_back(sim.now()); });
  cpu.submit(1, 10.0, [&] { done.push_back(sim.now()); });
  sim.run();
  ASSERT_EQ(done.size(), 2u);
  EXPECT_EQ(done[0], 10.0);
  EXPECT_EQ(done[1], 10.0);
}

TEST(Cpu, ThirdProcessQueuesBehindTwoCores) {
  Simulator sim;
  CpuScheduler cpu(sim, 2, 1.0);
  std::vector<double> done;
  for (std::uint64_t p = 0; p < 3; ++p)
    cpu.submit(p, 10.0, [&] { done.push_back(sim.now()); });
  sim.run();
  ASSERT_EQ(done.size(), 3u);
  EXPECT_EQ(done[2], 20.0);  // contention: the paper's BD doubling effect
}

TEST(Cpu, SameProcessTasksSerializeEvenWithFreeCores) {
  Simulator sim;
  CpuScheduler cpu(sim, 4, 1.0);
  std::vector<double> done;
  cpu.submit(7, 10.0, [&] { done.push_back(sim.now()); });
  cpu.submit(7, 10.0, [&] { done.push_back(sim.now()); });
  sim.run();
  ASSERT_EQ(done.size(), 2u);
  EXPECT_EQ(done[1], 20.0);  // a member is single-threaded
}

TEST(Cpu, ZeroCostCompletesNow) {
  Simulator sim;
  CpuScheduler cpu(sim, 1, 1.0);
  double done_at = -1;
  sim.at(3.0, [&] { cpu.submit(0, 0.0, [&] { done_at = sim.now(); }); });
  sim.run();
  EXPECT_EQ(done_at, 3.0);
}

TEST(Topology, LanLatencies) {
  Topology t = lan_testbed();
  EXPECT_EQ(t.machine_count(), 13u);
  EXPECT_EQ(t.site_count(), 1u);
  EXPECT_EQ(t.latency(0, 1), t.intra_site_ms);
  EXPECT_EQ(t.latency(3, 3), t.local_loopback_ms);
  EXPECT_EQ(t.machine(0).cores, 2);
}

TEST(Topology, WanLatenciesMatchFigure13) {
  Topology t = wan_testbed();
  EXPECT_EQ(t.machine_count(), 13u);
  EXPECT_EQ(t.site_count(), 3u);
  // machines 0..10 at JHU, 11 at UCI, 12 at ICU.
  EXPECT_DOUBLE_EQ(t.latency(0, 11), 17.5);
  EXPECT_DOUBLE_EQ(t.latency(11, 12), 150.0);
  EXPECT_DOUBLE_EQ(t.latency(12, 0), 135.0);
  EXPECT_EQ(t.latency(0, 1), t.intra_site_ms);
  // Remote machines are single-CPU with distinct speed factors.
  EXPECT_EQ(t.machine(11).cores, 1);
  EXPECT_LT(t.machine(11).speed, 1.0);
  EXPECT_GT(t.machine(12).speed, 1.0);
}

TEST(CostModel, MatchesPaperPrimitives) {
  CostModel m = CostModel::paper2002();
  // 512-bit modexp with a 160-bit exponent: ~1.3 ms (paper section 6.1.1).
  EXPECT_NEAR(m.mod_exp_ms(512, 160), 1.3, 0.25);
  // 1024-bit: ~5.3 ms.
  EXPECT_NEAR(m.mod_exp_ms(1024, 160), 5.3, 0.6);
  // RSA-1024 sign ~8 ms, verify with e=3 well under a millisecond.
  EXPECT_NEAR(m.rsa_sign_ms(1024), 8.0, 1.5);
  EXPECT_LT(m.rsa_verify_ms(1024, 2), 1.0);
  EXPECT_GT(m.rsa_verify_ms(1024, 2), 0.2);
}

TEST(CostModel, ScalesQuadraticallyWithModulus) {
  CostModel m = CostModel::paper2002();
  EXPECT_NEAR(m.mult_ms(1024) / m.mult_ms(512), 4.0, 1e-9);
  EXPECT_GT(m.mod_exp_ms(512, 512), m.mod_exp_ms(512, 160));
}

TEST(CostModel, SmallExponentIsCheap) {
  CostModel m = CostModel::paper2002();
  // BD's hidden cost: exponent of ~6 bits is far cheaper than 160 bits but
  // not free.
  EXPECT_LT(m.mod_exp_ms(512, 6), 0.2);
  EXPECT_GT(m.mod_exp_ms(512, 6), 0.0);
}

TEST(CostModel, FreeModelIsZero) {
  CostModel m = CostModel::free();
  EXPECT_EQ(m.mod_exp_ms(512, 160), 0.0);
  EXPECT_EQ(m.rsa_sign_ms(1024), 0.0);
}

}  // namespace
}  // namespace sgk
