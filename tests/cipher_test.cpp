// AES-128 and CBC mode tests against FIPS-197 / SP800-38A vectors.
#include <gtest/gtest.h>

#include "crypto/aes.h"
#include "crypto/drbg.h"
#include "util/bytes.h"

namespace sgk {
namespace {

// FIPS-197 appendix B.
TEST(Aes128, Fips197Vector) {
  Bytes key = from_hex("2b7e151628aed2a6abf7158809cf4f3c");
  Bytes pt = from_hex("3243f6a8885a308d313198a2e0370734");
  Aes128 cipher(key);
  std::uint8_t ct[16];
  cipher.encrypt_block(pt.data(), ct);
  EXPECT_EQ(to_hex(Bytes(ct, ct + 16)), "3925841d02dc09fbdc118597196a0b32");
}

// SP 800-38A F.1.1 (ECB-AES128) first block.
TEST(Aes128, Sp80038aEcbBlock) {
  Bytes key = from_hex("2b7e151628aed2a6abf7158809cf4f3c");
  Bytes pt = from_hex("6bc1bee22e409f96e93d7e117393172a");
  Aes128 cipher(key);
  std::uint8_t ct[16];
  cipher.encrypt_block(pt.data(), ct);
  EXPECT_EQ(to_hex(Bytes(ct, ct + 16)), "3ad77bb40d7a3660a89ecaf32466ef97");
}

TEST(Aes128, DecryptInvertsEncrypt) {
  Drbg rng(11, "aes");
  for (int i = 0; i < 20; ++i) {
    Bytes key(16), block(16);
    rng.fill(key.data(), 16);
    rng.fill(block.data(), 16);
    Aes128 cipher(key);
    std::uint8_t ct[16], pt[16];
    cipher.encrypt_block(block.data(), ct);
    cipher.decrypt_block(ct, pt);
    EXPECT_EQ(Bytes(pt, pt + 16), block);
  }
}

TEST(Aes128, RejectsBadKeySize) {
  EXPECT_THROW(Aes128(Bytes(15, 0)), std::invalid_argument);
  EXPECT_THROW(Aes128(Bytes(32, 0)), std::invalid_argument);
}

// SP 800-38A F.2.1 CBC-AES128 first two blocks.
TEST(Cbc, Sp80038aVector) {
  Bytes key = from_hex("2b7e151628aed2a6abf7158809cf4f3c");
  Bytes iv = from_hex("000102030405060708090a0b0c0d0e0f");
  Bytes pt = from_hex(
      "6bc1bee22e409f96e93d7e117393172a"
      "ae2d8a571e03ac9c9eb76fac45af8e51");
  Bytes ct = aes128_cbc_encrypt(key, iv, pt);
  // Our CBC adds a PKCS#7 padding block; the first two blocks must match.
  ASSERT_GE(ct.size(), 48u);
  EXPECT_EQ(to_hex(Bytes(ct.begin(), ct.begin() + 32)),
            "7649abac8119b246cee98e9b12e9197d"
            "5086cb9b507219ee95db113a917678b2");
}

TEST(Cbc, RoundTripVariousLengths) {
  Drbg rng(12, "cbc");
  Bytes key(16), iv(16);
  rng.fill(key.data(), 16);
  rng.fill(iv.data(), 16);
  for (std::size_t len : {0u, 1u, 15u, 16u, 17u, 31u, 32u, 100u, 1000u}) {
    Bytes pt(len);
    rng.fill(pt.data(), pt.size());
    Bytes ct = aes128_cbc_encrypt(key, iv, pt);
    EXPECT_EQ(ct.size() % 16, 0u);
    EXPECT_GT(ct.size(), pt.size());  // always at least one padding byte
    EXPECT_EQ(aes128_cbc_decrypt(key, iv, ct), pt);
  }
}

TEST(Cbc, TamperedCiphertextFailsPaddingOrDiffers) {
  Drbg rng(13, "cbc-tamper");
  Bytes key(16), iv(16);
  rng.fill(key.data(), 16);
  rng.fill(iv.data(), 16);
  Bytes pt = str_bytes("attack at dawn, bring the group key");
  Bytes ct = aes128_cbc_encrypt(key, iv, pt);
  ct[3] ^= 0x80;
  // Either the padding check throws or the plaintext is garbled; both are
  // acceptable for CBC (integrity comes from the HMAC layer).
  try {
    Bytes out = aes128_cbc_decrypt(key, iv, ct);
    EXPECT_NE(out, pt);
  } catch (const std::runtime_error&) {
    SUCCEED();
  }
}

TEST(Cbc, RejectsBadLengths) {
  Bytes key(16, 1), iv(16, 2);
  EXPECT_THROW(aes128_cbc_decrypt(key, iv, Bytes(15, 0)), std::runtime_error);
  EXPECT_THROW(aes128_cbc_decrypt(key, iv, Bytes{}), std::runtime_error);
  EXPECT_THROW(aes128_cbc_encrypt(key, Bytes(8, 0), Bytes(16, 0)),
               std::invalid_argument);
}

TEST(Cbc, DifferentIvDifferentCiphertext) {
  Bytes key(16, 7);
  Bytes pt = str_bytes("same plaintext");
  Bytes ct1 = aes128_cbc_encrypt(key, Bytes(16, 1), pt);
  Bytes ct2 = aes128_cbc_encrypt(key, Bytes(16, 2), pt);
  EXPECT_NE(ct1, ct2);
}

}  // namespace
}  // namespace sgk
