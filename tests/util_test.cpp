#include <gtest/gtest.h>

#include "util/bytes.h"
#include "util/check.h"
#include "util/serde.h"

namespace sgk {
namespace {

TEST(Hex, RoundTrip) {
  Bytes b = {0x00, 0xff, 0x10, 0xab};
  EXPECT_EQ(to_hex(b), "00ff10ab");
  EXPECT_EQ(from_hex("00ff10ab"), b);
  EXPECT_EQ(from_hex("00FF10AB"), b);
}

TEST(Hex, Malformed) {
  EXPECT_THROW(from_hex("abc"), std::invalid_argument);
  EXPECT_THROW(from_hex("zz"), std::invalid_argument);
}

TEST(CtEqual, Behaviour) {
  EXPECT_TRUE(ct_equal({1, 2, 3}, {1, 2, 3}));
  EXPECT_FALSE(ct_equal({1, 2, 3}, {1, 2, 4}));
  EXPECT_FALSE(ct_equal({1, 2}, {1, 2, 3}));
  EXPECT_TRUE(ct_equal({}, {}));
}

TEST(XorBytes, Works) {
  EXPECT_EQ(xor_bytes({0x0f, 0xf0}, {0xff, 0xff}), Bytes({0xf0, 0x0f}));
  EXPECT_THROW(xor_bytes({1}, {1, 2}), std::invalid_argument);
}

TEST(Check, ThrowsWithLocation) {
  try {
    SGK_CHECK(1 == 2);
    FAIL() << "should have thrown";
  } catch (const CheckFailure& e) {
    EXPECT_NE(std::string(e.what()).find("1 == 2"), std::string::npos);
  }
}

TEST(Serde, ScalarRoundTrip) {
  Writer w;
  w.u8(0xab);
  w.u16(0x1234);
  w.u32(0xdeadbeef);
  w.u64(0x0123456789abcdefULL);
  Reader r(w.data());
  EXPECT_EQ(r.u8(), 0xab);
  EXPECT_EQ(r.u16(), 0x1234);
  EXPECT_EQ(r.u32(), 0xdeadbeefu);
  EXPECT_EQ(r.u64(), 0x0123456789abcdefULL);
  EXPECT_TRUE(r.done());
}

TEST(Serde, BytesAndStrings) {
  Writer w;
  w.bytes({1, 2, 3});
  w.str("hello");
  w.bytes({});
  Reader r(w.data());
  EXPECT_EQ(r.bytes(), Bytes({1, 2, 3}));
  EXPECT_EQ(r.str(), "hello");
  EXPECT_EQ(r.bytes(), Bytes{});
  EXPECT_TRUE(r.done());
}

TEST(Serde, TruncatedThrows) {
  Writer w;
  w.u32(42);
  Bytes data = w.data();
  data.pop_back();
  Reader r(data);
  EXPECT_THROW(r.u32(), DecodeError);
}

TEST(Serde, TruncatedBytesLengthThrows) {
  Writer w;
  w.u32(100);  // claims 100 bytes follow, but none do
  Reader r(w.data());
  EXPECT_THROW(r.bytes(), DecodeError);
}

TEST(Serde, BigEndianLayout) {
  Writer w;
  w.u32(1);
  EXPECT_EQ(w.data(), Bytes({0, 0, 0, 1}));
}

TEST(Serde, RawHasNoPrefix) {
  Writer w;
  w.raw({9, 8, 7});
  EXPECT_EQ(w.data(), Bytes({9, 8, 7}));
}

}  // namespace
}  // namespace sgk
