// White-box tests of the TGDH key tree structure.
#include "core/key_tree.h"

#include <cmath>

#include <gtest/gtest.h>

#include "util/serde.h"

namespace sgk {
namespace {

KeyTree tree_of(std::vector<ProcessId> members) {
  KeyTree t = KeyTree::leaf(members.at(0));
  for (std::size_t i = 1; i < members.size(); ++i) {
    KeyTree leaf = KeyTree::leaf(members[i]);
    t.merge(leaf);
  }
  return t;
}

TEST(KeyTree, LeafBasics) {
  KeyTree t = KeyTree::leaf(7);
  EXPECT_FALSE(t.empty());
  EXPECT_EQ(t.members(), std::vector<ProcessId>{7});
  EXPECT_EQ(t.height(t.root()), 0);
  EXPECT_EQ(t.rightmost_member(t.root()), 7u);
  EXPECT_EQ(t.find_leaf(7), t.root());
  EXPECT_EQ(t.find_leaf(8), -1);
}

TEST(KeyTree, MergeTwoLeaves) {
  KeyTree t = KeyTree::leaf(1);
  KeyTree other = KeyTree::leaf(2);
  int m = t.merge(other);
  EXPECT_EQ(m, t.root());
  EXPECT_EQ(t.members(), (std::vector<ProcessId>{1, 2}));
  EXPECT_EQ(t.height(t.root()), 1);
  EXPECT_EQ(t.rightmost_member(t.root()), 2u);
}

TEST(KeyTree, SequentialJoinsStayBalanced) {
  // Height-preserving insertion keeps the tree within log2 bounds plus one.
  for (std::size_t n : {4u, 8u, 16u, 32u}) {
    std::vector<ProcessId> members;
    for (std::size_t i = 0; i < n; ++i) members.push_back(static_cast<ProcessId>(i));
    KeyTree t = tree_of(members);
    int h = t.height(t.root());
    EXPECT_LE(h, static_cast<int>(std::ceil(std::log2(n))) + 1) << "n=" << n;
    EXPECT_EQ(t.members().size(), n);
  }
}

TEST(KeyTree, PerfectTreeJoinGoesToRoot) {
  // 4 leaves make a perfect tree of height 2; the 5th join must increase the
  // height by grafting at the root.
  KeyTree t = tree_of({0, 1, 2, 3});
  EXPECT_EQ(t.height(t.root()), 2);
  KeyTree extra = KeyTree::leaf(4);
  int m = t.merge(extra);
  EXPECT_EQ(m, t.root());
  EXPECT_EQ(t.height(t.root()), 3);
}

TEST(KeyTree, MergeInvalidatesPathToRoot) {
  KeyTree t = tree_of({0, 1, 2, 3});
  // Give every node a fake bkey.
  for (std::size_t i = 0; i < t.node_count(); ++i) {
    if (t.node(static_cast<int>(i)).parent == -2) continue;
    t.node(static_cast<int>(i)).has_bkey = true;
    t.node(static_cast<int>(i)).bkey = BigInt(static_cast<std::uint64_t>(i + 1));
    t.node(static_cast<int>(i)).bkey_published = true;
  }
  KeyTree extra = KeyTree::leaf(9);
  int m = t.merge(extra);
  // Everything on the path from the merge node to the root lost its keys.
  for (int cur = m; cur != -1; cur = t.node(cur).parent) {
    EXPECT_FALSE(t.node(cur).has_bkey);
    EXPECT_FALSE(t.node(cur).bkey_published);
  }
}

TEST(KeyTree, RemoveLeafPromotesSibling) {
  KeyTree t = tree_of({0, 1});
  auto sponsors = t.remove_members({1});
  EXPECT_EQ(t.members(), std::vector<ProcessId>{0});
  EXPECT_EQ(t.height(t.root()), 0);
  ASSERT_EQ(sponsors.size(), 1u);
  EXPECT_EQ(t.rightmost_member(sponsors[0]), 0u);
}

TEST(KeyTree, RemoveMiddleOfEight) {
  KeyTree t = tree_of({0, 1, 2, 3, 4, 5, 6, 7});
  t.remove_members({3});
  EXPECT_EQ(t.members(), (std::vector<ProcessId>{0, 1, 2, 4, 5, 6, 7}));
  EXPECT_EQ(t.find_leaf(3), -1);
}

TEST(KeyTree, RemoveSeveralMembers) {
  KeyTree t = tree_of({0, 1, 2, 3, 4, 5});
  t.remove_members({1, 4, 5});
  EXPECT_EQ(t.members(), (std::vector<ProcessId>{0, 2, 3}));
}

TEST(KeyTree, RemoveAllButOne) {
  KeyTree t = tree_of({0, 1, 2, 3});
  t.remove_members({0, 1, 3});
  EXPECT_EQ(t.members(), std::vector<ProcessId>{2});
  EXPECT_EQ(t.height(t.root()), 0);
}

TEST(KeyTree, RemoveInvalidatesAncestors) {
  KeyTree t = tree_of({0, 1, 2, 3});
  for (std::size_t i = 0; i < t.node_count(); ++i) {
    t.node(static_cast<int>(i)).has_key = true;
    t.node(static_cast<int>(i)).has_bkey = true;
  }
  t.remove_members({1});
  // The surviving root must have lost its key (it was an ancestor of 1).
  EXPECT_FALSE(t.node(t.root()).has_key);
}

TEST(KeyTree, SerializeRoundTripStructure) {
  KeyTree t = tree_of({5, 9, 2, 11, 3});
  Writer w;
  t.serialize(w);
  Reader r(w.data());
  KeyTree copy = KeyTree::deserialize(r);
  EXPECT_TRUE(t.same_structure(copy));
  EXPECT_EQ(copy.members(), t.members());
}

TEST(KeyTree, SerializeCarriesBlindedKeys) {
  KeyTree t = tree_of({1, 2});
  t.node(t.find_leaf(1)).has_bkey = true;
  t.node(t.find_leaf(1)).bkey = BigInt(12345);
  Writer w;
  t.serialize(w);
  Reader r(w.data());
  KeyTree copy = KeyTree::deserialize(r);
  const TreeNode& leaf = copy.node(copy.find_leaf(1));
  EXPECT_TRUE(leaf.has_bkey);
  EXPECT_TRUE(leaf.bkey_published);  // received == published
  EXPECT_EQ(leaf.bkey, BigInt(12345));
  EXPECT_FALSE(copy.node(copy.find_leaf(2)).has_bkey);
}

TEST(KeyTree, SerializeNeverCarriesSecrets) {
  KeyTree t = tree_of({1, 2});
  t.node(t.find_leaf(1)).has_key = true;
  t.node(t.find_leaf(1)).key = BigInt(777);
  Writer w;
  t.serialize(w);
  Reader r(w.data());
  KeyTree copy = KeyTree::deserialize(r);
  // "The keys are never broadcasted" (paper footnote 4).
  EXPECT_FALSE(copy.node(copy.find_leaf(1)).has_key);
}

TEST(KeyTree, SameStructureDetectsDifferences) {
  KeyTree a = tree_of({1, 2, 3});
  KeyTree b = tree_of({1, 2, 3});
  KeyTree c = tree_of({1, 3, 2});
  KeyTree d = tree_of({1, 2});
  EXPECT_TRUE(a.same_structure(b));
  EXPECT_FALSE(a.same_structure(c));
  EXPECT_FALSE(a.same_structure(d));
}

TEST(KeyTree, AbsorbBkeysCopiesOnlyMissing) {
  KeyTree mine = tree_of({1, 2});
  KeyTree theirs = tree_of({1, 2});
  int leaf1 = theirs.find_leaf(1);
  theirs.node(leaf1).has_bkey = true;
  theirs.node(leaf1).bkey = BigInt(42);
  // Mine already has a value at leaf 2; theirs must not overwrite it.
  int my_leaf2 = mine.find_leaf(2);
  mine.node(my_leaf2).has_bkey = true;
  mine.node(my_leaf2).bkey = BigInt(1000);
  int their_leaf2 = theirs.find_leaf(2);
  theirs.node(their_leaf2).has_bkey = true;
  theirs.node(their_leaf2).bkey = BigInt(2000);

  mine.absorb_bkeys(theirs);
  EXPECT_EQ(mine.node(mine.find_leaf(1)).bkey, BigInt(42));
  EXPECT_EQ(mine.node(my_leaf2).bkey, BigInt(1000));
  EXPECT_TRUE(mine.node(my_leaf2).bkey_published);
}

TEST(KeyTree, MergeKeepsGuestKeys) {
  // When my (small) tree is grafted into a larger one, my private key
  // material must survive the clone.
  KeyTree big = tree_of({0, 1, 2, 3});
  KeyTree mine = KeyTree::leaf(9);
  mine.node(mine.root()).has_key = true;
  mine.node(mine.root()).key = BigInt(31337);
  big.merge(mine);
  int my_leaf = big.find_leaf(9);
  ASSERT_NE(my_leaf, -1);
  EXPECT_TRUE(big.node(my_leaf).has_key);
  EXPECT_EQ(big.node(my_leaf).key.get(), BigInt(31337));
}

TEST(KeyTree, MergeOfBigTreesIsDeterministic) {
  KeyTree a1 = tree_of({0, 1, 2});
  KeyTree b1 = tree_of({10, 11, 12, 13, 14});
  KeyTree a2 = tree_of({0, 1, 2});
  KeyTree b2 = tree_of({10, 11, 12, 13, 14});
  b1.merge(a1);
  b2.merge(a2);
  EXPECT_TRUE(b1.same_structure(b2));
}

TEST(KeyTree, PathToRootAndSibling) {
  KeyTree t = tree_of({0, 1, 2, 3});
  int leaf0 = t.find_leaf(0);
  auto path = t.path_to_root(leaf0);
  EXPECT_EQ(static_cast<int>(path.size()), t.depth(leaf0));
  EXPECT_EQ(path.back(), t.root());
  int sib = t.sibling(leaf0);
  ASSERT_NE(sib, -1);
  EXPECT_EQ(t.node(t.node(leaf0).parent).left == leaf0 ? t.node(t.node(leaf0).parent).right
                                                       : t.node(t.node(leaf0).parent).left,
            sib);
  EXPECT_EQ(t.sibling(t.root()), -1);
}

TEST(KeyTree, RightmostMemberOfSubtrees) {
  KeyTree t = tree_of({0, 1, 2, 3});
  EXPECT_EQ(t.rightmost_member(t.root()), 3u);
  int left_child = t.node(t.root()).left;
  EXPECT_EQ(t.rightmost_member(left_child), 1u);
}

}  // namespace
}  // namespace sgk
