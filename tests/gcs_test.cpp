// Group communication system tests: total order, view synchrony,
// membership events, partitions and merges.
#include <gtest/gtest.h>

#include <map>

#include "gcs/spread.h"

#include "util/serde.h"

namespace sgk {
namespace {

/// Records every delivery for later inspection.
class RecordingClient : public GroupClient {
 public:
  struct Delivery {
    SimTime time;
    std::string group;
    ProcessId sender;
    Bytes payload;
  };
  struct ViewInstall {
    SimTime time;
    std::string group;
    View view;
    ViewDelta delta;
  };

  explicit RecordingClient(Simulator& sim) : sim_(sim) {}

  void on_view(const std::string& group, const View& view,
               const ViewDelta& delta) override {
    views.push_back({sim_.now(), group, view, delta});
  }
  void on_message(const std::string& group, ProcessId sender,
                  const Bytes& payload) override {
    messages.push_back({sim_.now(), group, sender, payload});
  }

  std::vector<ViewInstall> views;
  std::vector<Delivery> messages;

 private:
  Simulator& sim_;
};

struct Fixture {
  explicit Fixture(int machines = 4, Topology topo_in = Topology{})
      : topo(topo_in.machine_count() ? std::move(topo_in) : lan_testbed(machines)),
        net(sim, topo) {}

  ProcessId spawn(MachineId m) {
    ProcessId p = net.create_process(m);
    clients.push_back(std::make_unique<RecordingClient>(sim));
    net.attach(p, clients.back().get());
    return p;
  }

  RecordingClient& client(ProcessId p) { return *clients[p]; }

  Simulator sim;
  Topology topo;
  SpreadNetwork net;
  std::vector<std::unique_ptr<RecordingClient>> clients;
};

TEST(Gcs, JoinInstallsViewAtJoiner) {
  Fixture f;
  ProcessId a = f.spawn(0);
  f.net.join_group("g", a);
  f.sim.run();
  ASSERT_EQ(f.client(a).views.size(), 1u);
  const auto& v = f.client(a).views[0];
  EXPECT_EQ(v.view.members, std::vector<ProcessId>{a});
  EXPECT_TRUE(v.delta.first_view);
  EXPECT_GT(v.time, 0.0);  // membership protocol takes nonzero time
}

TEST(Gcs, SecondJoinSeenByBothWithConsistentDelta) {
  Fixture f;
  ProcessId a = f.spawn(0);
  ProcessId b = f.spawn(1);
  f.net.join_group("g", a);
  f.sim.run();
  f.net.join_group("g", b);
  f.sim.run();
  ASSERT_EQ(f.client(a).views.size(), 2u);
  ASSERT_EQ(f.client(b).views.size(), 1u);
  const auto& va = f.client(a).views[1];
  const auto& vb = f.client(b).views[0];
  EXPECT_EQ(va.view.members, (std::vector<ProcessId>{a, b}));
  EXPECT_EQ(va.view.view_id, vb.view.view_id);
  // Existing member sees a join of exactly b; joiner sees first_view.
  EXPECT_EQ(va.delta.classify(), GroupEvent::kJoin);
  EXPECT_EQ(va.delta.joined, std::vector<ProcessId>{b});
  EXPECT_TRUE(vb.delta.first_view);
  // Sides are identical for both: [{a}, {b}].
  ASSERT_EQ(va.delta.sides.size(), 2u);
  EXPECT_EQ(va.delta.sides, vb.delta.sides);
}

TEST(Gcs, LeaveInstallsReducedView) {
  Fixture f;
  ProcessId a = f.spawn(0);
  ProcessId b = f.spawn(1);
  f.net.join_group("g", a);
  f.net.join_group("g", b);
  f.sim.run();
  f.net.leave_group("g", b);
  f.sim.run();
  const auto& last = f.client(a).views.back();
  EXPECT_EQ(last.view.members, std::vector<ProcessId>{a});
  EXPECT_EQ(last.delta.classify(), GroupEvent::kLeave);
  EXPECT_EQ(last.delta.left, std::vector<ProcessId>{b});
}

TEST(Gcs, MulticastReachesAllMembersIncludingSender) {
  Fixture f;
  ProcessId a = f.spawn(0);
  ProcessId b = f.spawn(1);
  ProcessId c = f.spawn(2);
  for (ProcessId p : {a, b, c}) f.net.join_group("g", p);
  f.sim.run();
  f.net.multicast("g", a, str_bytes("hello"));
  f.sim.run();
  for (ProcessId p : {a, b, c}) {
    ASSERT_EQ(f.client(p).messages.size(), 1u) << "member " << p;
    EXPECT_EQ(f.client(p).messages[0].sender, a);
    EXPECT_EQ(f.client(p).messages[0].payload, str_bytes("hello"));
  }
}

TEST(Gcs, NonMemberDoesNotReceive) {
  Fixture f;
  ProcessId a = f.spawn(0);
  ProcessId b = f.spawn(1);
  ProcessId outsider = f.spawn(2);
  f.net.join_group("g", a);
  f.net.join_group("g", b);
  f.sim.run();
  f.net.multicast("g", a, str_bytes("secret"));
  f.sim.run();
  EXPECT_TRUE(f.client(outsider).messages.empty());
  EXPECT_TRUE(f.client(outsider).views.empty());
}

TEST(Gcs, AgreedTotalOrderAcrossSenders) {
  Fixture f(13);
  std::vector<ProcessId> members;
  for (int i = 0; i < 10; ++i) members.push_back(f.spawn(i % 13));
  for (ProcessId p : members) f.net.join_group("g", p);
  f.sim.run();
  // Everyone multicasts simultaneously (a BD-like round).
  for (ProcessId p : members) {
    Writer w;
    w.u32(p);
    f.net.multicast("g", p, w.take());
  }
  f.sim.run();
  // Every member delivered all 10 messages in the identical order.
  std::vector<ProcessId> reference;
  for (const auto& d : f.client(members[0]).messages) reference.push_back(d.sender);
  EXPECT_EQ(reference.size(), 10u);
  for (ProcessId p : members) {
    std::vector<ProcessId> order;
    for (const auto& d : f.client(p).messages) order.push_back(d.sender);
    EXPECT_EQ(order, reference) << "member " << p;
  }
}

TEST(Gcs, OrderedSendDeliversOnlyToDest) {
  Fixture f;
  ProcessId a = f.spawn(0);
  ProcessId b = f.spawn(1);
  ProcessId c = f.spawn(2);
  for (ProcessId p : {a, b, c}) f.net.join_group("g", p);
  f.sim.run();
  f.net.ordered_send("g", a, b, str_bytes("for b only"));
  f.sim.run();
  EXPECT_EQ(f.client(b).messages.size(), 1u);
  EXPECT_TRUE(f.client(a).messages.empty());
  EXPECT_TRUE(f.client(c).messages.empty());
}

TEST(Gcs, OrderedSendInterleavesWithMulticastOrder) {
  Fixture f;
  ProcessId a = f.spawn(0);
  ProcessId b = f.spawn(1);
  for (ProcessId p : {a, b}) f.net.join_group("g", p);
  f.sim.run();
  f.net.multicast("g", a, str_bytes("m1"));
  f.net.ordered_send("g", a, b, str_bytes("u"));
  f.net.multicast("g", a, str_bytes("m2"));
  f.sim.run();
  ASSERT_EQ(f.client(b).messages.size(), 3u);
  EXPECT_EQ(f.client(b).messages[0].payload, str_bytes("m1"));
  EXPECT_EQ(f.client(b).messages[1].payload, str_bytes("u"));
  EXPECT_EQ(f.client(b).messages[2].payload, str_bytes("m2"));
}

TEST(Gcs, UnicastIsDirectAndFast) {
  Fixture f;
  ProcessId a = f.spawn(0);
  ProcessId b = f.spawn(1);
  for (ProcessId p : {a, b}) f.net.join_group("g", p);
  f.sim.run();
  SimTime start = f.sim.now();
  f.net.unicast("g", a, b, str_bytes("direct"));
  f.sim.run();
  ASSERT_EQ(f.client(b).messages.size(), 1u);
  // Direct latency, no token wait: well under one token cycle.
  EXPECT_LT(f.client(b).messages[0].time - start, f.net.token_cycle_ms(0));
}

TEST(Gcs, LanAgreedMulticastCostMatchesPaper) {
  // Section 6.1.1: sending and delivering one Agreed multicast costs about
  // 0.8 to 1.3 ms on the 13-machine LAN.
  Fixture f(13);
  std::vector<ProcessId> members;
  for (int i = 0; i < 13; ++i) members.push_back(f.spawn(i));
  for (ProcessId p : members) f.net.join_group("g", p);
  f.sim.run();
  SimTime start = f.sim.now();
  f.net.multicast("g", members[5], str_bytes("x"));
  f.sim.run();
  SimTime worst = 0;
  for (ProcessId p : members)
    worst = std::max(worst, f.client(p).messages.back().time - start);
  EXPECT_GT(worst, 0.2);
  EXPECT_LT(worst, 2.0);
}

TEST(Gcs, WanAgreedMulticastCostMatchesPaper) {
  // Section 6.2.1: Agreed delivery costs roughly 300-340 ms on the WAN.
  Fixture f(0, wan_testbed());
  std::vector<ProcessId> members;
  for (MachineId m : {0, 5, 11, 12}) members.push_back(f.spawn(m));
  for (ProcessId p : members) f.net.join_group("g", p);
  f.sim.run();
  // Average several multicasts under steady token circulation (the paper's
  // ~300-335 ms numbers are steady-state averages).
  double total = 0;
  const int kRounds = 6;
  for (int i = 0; i < kRounds; ++i) {
    SimTime start = f.sim.now();
    f.net.multicast("g", members[static_cast<std::size_t>(i * 5) % members.size()],
                    str_bytes("x"));
    f.sim.run();
    SimTime worst = 0;
    for (ProcessId p : members)
      worst = std::max(worst, f.client(p).messages.back().time - start);
    total += worst;
  }
  const double avg = total / kRounds;
  EXPECT_GT(avg, 150.0);
  EXPECT_LT(avg, 600.0);
}

TEST(Gcs, WanMembershipCostMatchesPaper) {
  // Section 6.2.1: membership service costs 400-700 ms on the WAN.
  Fixture f(0, wan_testbed());
  ProcessId a = f.spawn(0);
  ProcessId b = f.spawn(11);
  f.net.join_group("g", a);
  f.sim.run();
  SimTime start = f.sim.now();
  f.net.join_group("g", b);
  f.sim.run();
  SimTime install = f.client(a).views.back().time - start;
  EXPECT_GT(install, 300.0);
  EXPECT_LT(install, 900.0);
}

TEST(Gcs, PartitionInstallsDisjointViews) {
  Fixture f(4);
  std::vector<ProcessId> members;
  for (int i = 0; i < 4; ++i) members.push_back(f.spawn(i));
  for (ProcessId p : members) f.net.join_group("g", p);
  f.sim.run();
  f.net.partition({{0, 1}, {2, 3}});
  f.sim.run();
  const auto& v0 = f.client(members[0]).views.back();
  const auto& v2 = f.client(members[2]).views.back();
  EXPECT_EQ(v0.view.members, (std::vector<ProcessId>{members[0], members[1]}));
  EXPECT_EQ(v2.view.members, (std::vector<ProcessId>{members[2], members[3]}));
  EXPECT_EQ(v0.delta.classify(), GroupEvent::kPartition);
  EXPECT_EQ(v0.delta.left, (std::vector<ProcessId>{members[2], members[3]}));
}

TEST(Gcs, MessagesDoNotCrossPartition) {
  Fixture f(4);
  std::vector<ProcessId> members;
  for (int i = 0; i < 4; ++i) members.push_back(f.spawn(i));
  for (ProcessId p : members) f.net.join_group("g", p);
  f.sim.run();
  f.net.partition({{0, 1}, {2, 3}});
  f.sim.run();
  std::size_t before = f.client(members[2]).messages.size();
  f.net.multicast("g", members[0], str_bytes("side A"));
  f.net.unicast("g", members[0], members[2], str_bytes("direct"));
  f.sim.run();
  EXPECT_EQ(f.client(members[2]).messages.size(), before);
  EXPECT_EQ(f.client(members[1]).messages.back().payload, str_bytes("side A"));
}

TEST(Gcs, HealMergesViewsWithSides) {
  Fixture f(4);
  std::vector<ProcessId> members;
  for (int i = 0; i < 4; ++i) members.push_back(f.spawn(i));
  for (ProcessId p : members) f.net.join_group("g", p);
  f.sim.run();
  f.net.partition({{0, 1}, {2, 3}});
  f.sim.run();
  f.net.heal();
  f.sim.run();
  const auto& v = f.client(members[0]).views.back();
  EXPECT_EQ(v.view.members.size(), 4u);
  EXPECT_EQ(v.delta.classify(), GroupEvent::kMerge);
  EXPECT_EQ(v.delta.joined, (std::vector<ProcessId>{members[2], members[3]}));
  // Sides reflect the two merging components.
  ASSERT_EQ(v.delta.sides.size(), 2u);
  // Same sides at a member from the other component.
  const auto& v2 = f.client(members[2]).views.back();
  EXPECT_EQ(v2.delta.sides, v.delta.sides);
  EXPECT_EQ(v2.delta.joined, (std::vector<ProcessId>{members[0], members[1]}));
}

TEST(Gcs, DisconnectActsAsLeave) {
  Fixture f;
  ProcessId a = f.spawn(0);
  ProcessId b = f.spawn(1);
  for (ProcessId p : {a, b}) f.net.join_group("g", p);
  f.sim.run();
  f.net.disconnect(b);
  f.sim.run();
  const auto& v = f.client(a).views.back();
  EXPECT_EQ(v.view.members, std::vector<ProcessId>{a});
  EXPECT_EQ(v.delta.classify(), GroupEvent::kLeave);
}

TEST(Gcs, MultipleGroupsAreIndependent) {
  Fixture f;
  ProcessId a = f.spawn(0);
  ProcessId b = f.spawn(1);
  f.net.join_group("g1", a);
  f.net.join_group("g1", b);
  f.net.join_group("g2", a);
  f.sim.run();
  f.net.multicast("g2", a, str_bytes("only g2"));
  f.sim.run();
  EXPECT_TRUE(f.client(b).messages.empty());
  ASSERT_EQ(f.client(a).messages.size(), 1u);
  EXPECT_EQ(f.client(a).messages[0].group, "g2");
}

TEST(Gcs, ViewIdsIncreaseMonotonically) {
  Fixture f;
  ProcessId a = f.spawn(0);
  f.net.join_group("g", a);
  f.sim.run();
  std::uint64_t prev = 0;
  for (int i = 0; i < 3; ++i) {
    ProcessId p = f.spawn(i % 4);
    f.net.join_group("g", p);
    f.sim.run();
  }
  for (const auto& v : f.client(a).views) {
    EXPECT_GT(v.view.view_id, prev);
    prev = v.view.view_id;
  }
}

TEST(Gcs, TokenCycleShorterOnLanThanWan) {
  Simulator sim1, sim2;
  SpreadNetwork lan(sim1, lan_testbed());
  SpreadNetwork wan(sim2, wan_testbed());
  EXPECT_LT(lan.token_cycle_ms(0), 2.0);
  EXPECT_GT(wan.token_cycle_ms(0), 250.0);
}

TEST(Gcs, CurrentViewReflectsInstalledMembership) {
  Fixture f;
  ProcessId a = f.spawn(0);
  EXPECT_FALSE(f.net.current_view("g", a).has_value());
  f.net.join_group("g", a);
  f.sim.run();
  auto view = f.net.current_view("g", a);
  ASSERT_TRUE(view.has_value());
  EXPECT_EQ(view->members, std::vector<ProcessId>{a});
}

}  // namespace
}  // namespace sgk
