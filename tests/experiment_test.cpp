// Tests of the experiment harness and sweeps (the machinery behind the
#include <fstream>
#include <sstream>
// figure benches).
#include <gtest/gtest.h>

#include "harness/bench_io.h"
#include "harness/report.h"
#include "harness/sweep.h"

namespace sgk {
namespace {

TEST(Experiment, GrowAndMeasureJoin) {
  ExperimentConfig cfg;
  cfg.protocol = ProtocolKind::kTgdh;
  Experiment exp(cfg);
  exp.grow_to(4);
  EXPECT_EQ(exp.group_size(), 4u);
  EventResult r = exp.measure_join();
  EXPECT_EQ(r.group_size, 5u);
  EXPECT_GT(r.elapsed_ms, 0.0);
  EXPECT_GT(r.membership_ms, 0.0);
  EXPECT_LT(r.membership_ms, r.elapsed_ms);
  EXPECT_GT(r.total.exp_total(), 0u);
  EXPECT_GT(r.total.multicasts, 0u);
}

TEST(Experiment, MeasureLeavePolicies) {
  for (LeavePolicy policy : {LeavePolicy::kRandom, LeavePolicy::kMiddle,
                             LeavePolicy::kOldest, LeavePolicy::kNewest}) {
    ExperimentConfig cfg;
    cfg.protocol = ProtocolKind::kStr;
    Experiment exp(cfg);
    exp.grow_to(6);
    EventResult r = exp.measure_leave(policy);
    EXPECT_EQ(r.group_size, 5u);
    EXPECT_GT(r.elapsed_ms, 0.0);
  }
}

TEST(Experiment, MeasureMultiLeave) {
  ExperimentConfig cfg;
  cfg.protocol = ProtocolKind::kGdh;
  Experiment exp(cfg);
  exp.grow_to(10);
  EventResult r = exp.measure_multi_leave(4);
  EXPECT_EQ(r.group_size, 6u);
  EXPECT_GT(r.elapsed_ms, 0.0);
  // One controller broadcast handles the whole partition event.
  EXPECT_EQ(r.total.multicasts, 1u);
}

TEST(Experiment, MeasurePartitionAndMerge) {
  ExperimentConfig cfg;
  cfg.topology = lan_testbed(6);
  cfg.protocol = ProtocolKind::kTgdh;
  Experiment exp(cfg);
  exp.grow_to(6);
  std::vector<std::vector<MachineId>> parts = {{0, 1, 2}, {3, 4, 5}};
  EventResult split = exp.measure_partition(parts);
  EXPECT_GT(split.elapsed_ms, 0.0);
  EXPECT_EQ(split.group_size, 6u);  // all members alive, two views
  EventResult merge = exp.measure_merge();
  EXPECT_GT(merge.elapsed_ms, 0.0);
  EXPECT_EQ(merge.group_size, 6u);
}

TEST(Experiment, MembershipBaselineIsCheapest) {
  // The membership-only series must lower-bound every protocol.
  for (ProtocolKind kind : {ProtocolKind::kBd, ProtocolKind::kTgdh}) {
    ExperimentConfig base;
    base.protocol = ProtocolKind::kNone;
    Experiment baseline(base);
    baseline.grow_to(5);
    double base_ms = baseline.measure_join().elapsed_ms;

    ExperimentConfig cfg;
    cfg.protocol = kind;
    Experiment exp(cfg);
    exp.grow_to(5);
    EXPECT_GT(exp.measure_join().elapsed_ms, base_ms);
  }
}

TEST(Experiment, DeterministicAcrossRuns) {
  auto run = [] {
    ExperimentConfig cfg;
    cfg.protocol = ProtocolKind::kGdh;
    cfg.seed = 5;
    Experiment exp(cfg);
    exp.grow_to(6);
    return exp.measure_join().elapsed_ms;
  };
  EXPECT_DOUBLE_EQ(run(), run());
}

TEST(Experiment, SeedChangesLeaveChoice) {
  auto run = [](std::uint64_t seed) {
    ExperimentConfig cfg;
    cfg.protocol = ProtocolKind::kCkd;
    cfg.seed = seed;
    Experiment exp(cfg);
    exp.grow_to(8);
    double total = 0;
    for (int i = 0; i < 3; ++i) total += exp.measure_leave(LeavePolicy::kRandom).elapsed_ms;
    return total;
  };
  // Different seeds pick different leavers; with CKD the controller-leave
  // case is much more expensive, so totals differ across seeds somewhere.
  EXPECT_NE(run(1), run(3));
}

TEST(Sweep, JoinSweepShapes) {
  SweepConfig cfg;
  cfg.max_size = 6;
  cfg.protocols = {ProtocolKind::kGdh, ProtocolKind::kNone};
  SweepResult r = sweep_join(cfg);
  ASSERT_EQ(r.series.size(), 2u);
  EXPECT_EQ(r.series[0].label, "GDH");
  EXPECT_EQ(r.series[1].label, "Membership service");
  ASSERT_EQ(r.series[0].values.size(), 5u);  // sizes 2..6
  for (std::size_t i = 0; i < 5; ++i)
    EXPECT_GT(r.series[0].values[i], r.series[1].values[i]);
}

TEST(Sweep, LeaveSweepShapes) {
  SweepConfig cfg;
  cfg.max_size = 6;
  cfg.protocols = {ProtocolKind::kTgdh};
  SweepResult r = sweep_leave(cfg);
  ASSERT_EQ(r.series.size(), 1u);
  for (double v : r.series[0].values) EXPECT_GT(v, 0.0);
}

TEST(Report, TableAndCsvRender) {
  SweepResult r;
  r.min_size = 2;
  r.max_size = 4;
  r.series = {Series{"A", {1.0, 2.0, 3.0}, {}}, Series{"B", {4.0, 5.0, 6.0}, {}}};
  std::ostringstream table;
  print_sweep_table(table, "title", r);
  EXPECT_NE(table.str().find("title"), std::string::npos);
  EXPECT_NE(table.str().find("A"), std::string::npos);
  std::ostringstream csv;
  print_sweep_csv(csv, r);
  EXPECT_NE(csv.str().find("size,A,B"), std::string::npos);
  EXPECT_NE(csv.str().find("2,1.000,4.000"), std::string::npos);
  std::ostringstream summary;
  print_sweep_summary(summary, r);
  EXPECT_NE(summary.str().find("fastest at n=2: A"), std::string::npos);
}

TEST(Report, CsvFileWrite) {
  SweepResult r;
  r.min_size = 2;
  r.max_size = 3;
  r.series = {Series{"X", {1.5, 2.5}, {}}};
  const std::string path = ::testing::TempDir() + "/sweep_test.csv";
  ASSERT_TRUE(write_sweep_csv(path, r));
  std::ifstream in(path);
  std::string header;
  std::getline(in, header);
  EXPECT_EQ(header, "size,X");
}

TEST(Report, CsvWriteErrorNamesPath) {
  SweepResult r;
  r.min_size = 2;
  r.max_size = 2;
  r.series = {Series{"X", {1.0}, {}}};
  const std::string path =
      ::testing::TempDir() + "/no-such-dir-xyz/sweep_test.csv";
  std::string error;
  EXPECT_FALSE(write_sweep_csv(path, r, &error));
  EXPECT_NE(error.find(path), std::string::npos) << error;
}

TEST(BenchIo, ParsesObservabilityFlagsAndPassesRestThrough) {
  const char* argv[] = {"bench", "12", "--json", "out.json",
                        "--csv",  "p",  "--trace", "t.json"};
  BenchOptions opts;
  std::string error;
  ASSERT_TRUE(BenchOptions::parse(8, const_cast<char**>(argv), opts, error));
  EXPECT_EQ(opts.json_path, "out.json");
  EXPECT_EQ(opts.trace_path, "t.json");
  EXPECT_TRUE(opts.observing());
  ASSERT_EQ(opts.rest.size(), 3u);
  EXPECT_EQ(opts.rest[0], "12");
  EXPECT_EQ(opts.rest[1], "--csv");
  EXPECT_EQ(opts.rest[2], "p");

  const char* bad[] = {"bench", "--json"};
  BenchOptions opts2;
  EXPECT_FALSE(BenchOptions::parse(2, const_cast<char**>(bad), opts2, error));
  EXPECT_NE(error.find("--json"), std::string::npos);
}

TEST(BenchIo, SweepToJsonEmitsMedianAndP95) {
  SweepResult r;
  r.min_size = 2;
  r.max_size = 3;
  Series s;
  s.label = "GDH";
  s.values = {2.0, 5.0};  // means of the sample sets below
  s.samples = {{1.0, 2.0, 3.0}, {4.0, 5.0, 6.0}};
  r.series = {s};
  const obs::Json doc = sweep_to_json(r);
  EXPECT_DOUBLE_EQ(doc.at("min_size").as_number(), 2.0);
  EXPECT_DOUBLE_EQ(doc.at("sizes").at(std::size_t{1}).as_number(), 3.0);
  const obs::Json& entry = doc.at("series").at(std::size_t{0});
  EXPECT_EQ(entry.at("label").as_string(), "GDH");
  EXPECT_DOUBLE_EQ(entry.at("mean_ms").at(std::size_t{0}).as_number(), 2.0);
  EXPECT_DOUBLE_EQ(entry.at("median_ms").at(std::size_t{0}).as_number(), 2.0);
  EXPECT_DOUBLE_EQ(entry.at("median_ms").at(std::size_t{1}).as_number(), 5.0);
  // p95 with 3 samples interpolates toward the max.
  EXPECT_NEAR(entry.at("p95_ms").at(std::size_t{1}).as_number(), 5.9, 1e-9);
}

TEST(Sweep, SamplesBackTheAverages) {
  SweepConfig cfg;
  cfg.max_size = 4;
  cfg.seeds = 2;
  cfg.protocols = {ProtocolKind::kTgdh};
  SweepResult r = sweep_leave(cfg);
  ASSERT_EQ(r.series.size(), 1u);
  const Series& s = r.series[0];
  ASSERT_EQ(s.samples.size(), s.values.size());
  for (std::size_t i = 0; i < s.values.size(); ++i) {
    ASSERT_EQ(s.samples[i].size(), 2u);
    const double mean = (s.samples[i][0] + s.samples[i][1]) / 2.0;
    EXPECT_NEAR(mean, s.values[i], 1e-9);
  }
}

TEST(Experiment, WanJoinSlowerThanLan) {
  auto measure = [](Topology topo) {
    ExperimentConfig cfg;
    cfg.topology = std::move(topo);
    cfg.protocol = ProtocolKind::kTgdh;
    Experiment exp(cfg);
    exp.grow_to(4);
    return exp.measure_join().elapsed_ms;
  };
  EXPECT_GT(measure(wan_testbed()), 10 * measure(lan_testbed()));
}

TEST(Experiment, DhBitsAffectCost) {
  auto measure = [](DhBits bits) {
    ExperimentConfig cfg;
    cfg.dh_bits = bits;
    cfg.protocol = ProtocolKind::kGdh;
    Experiment exp(cfg);
    exp.grow_to(8);
    return exp.measure_join().elapsed_ms;
  };
  EXPECT_GT(measure(DhBits::k1024), measure(DhBits::k512));
}

}  // namespace
}  // namespace sgk
