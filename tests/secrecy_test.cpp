// Passive-adversary secrecy tests.
//
// The paper's threat model: "a passive adversary who knows any proper subset
// of group keys cannot discover any other group key" and all protocols were
// "proven secure with respect to passive outside (eavesdropping) attacks".
// These tests record every byte that crosses the (simulated) wire and check
// that no group key — past or present — or any key-derivation secret ever
// appears in the traffic, for every protocol, across joins, leaves and
// re-keys. They also check the direct data plane: ciphertext never contains
// the plaintext.
#include <gtest/gtest.h>

#include "tests/protocol_harness.h"

namespace sgk {
namespace {

using testing::ProtocolFixture;

bool contains_subsequence(const Bytes& haystack, const Bytes& needle) {
  if (needle.empty() || haystack.size() < needle.size()) return false;
  return std::search(haystack.begin(), haystack.end(), needle.begin(),
                     needle.end()) != haystack.end();
}

class Secrecy : public ::testing::TestWithParam<ProtocolKind> {};

TEST_P(Secrecy, GroupKeysNeverOnTheWire) {
  ProtocolFixture f(GetParam());
  std::vector<Bytes> wire;
  f.net.set_wire_tap([&](const std::string&, ProcessId, const Bytes& payload) {
    wire.push_back(payload);
  });
  std::vector<Bytes> keys;
  f.grow_to(4);
  keys.push_back(f.current_key());
  f.remove_member(1);
  keys.push_back(f.current_key());
  f.add_member();
  keys.push_back(f.current_key());
  f.alive()[0]->request_rekey();
  f.sim.run();
  keys.push_back(f.current_key());

  ASSERT_FALSE(wire.empty());
  for (const Bytes& key : keys) {
    ASSERT_EQ(key.size(), 64u);
    // Check both the full derived block and its AES/HMAC sub-keys.
    const Bytes aes(key.begin(), key.begin() + 16);
    const Bytes mac(key.begin() + 32, key.end());
    for (const Bytes& frame : wire) {
      EXPECT_FALSE(contains_subsequence(frame, key));
      EXPECT_FALSE(contains_subsequence(frame, aes));
      EXPECT_FALSE(contains_subsequence(frame, mac));
    }
  }
}

TEST_P(Secrecy, PlaintextNeverInDataFrames) {
  ProtocolFixture f(GetParam());
  std::vector<Bytes> wire;
  f.net.set_wire_tap([&](const std::string&, ProcessId, const Bytes& payload) {
    wire.push_back(payload);
  });
  f.grow_to(3);
  const Bytes app_payload =
      str_bytes("the launch code is 0000, tell no one about this message");
  Bytes received;
  f.members[1]->set_data_listener(
      [&](ProcessId, const Bytes& pt) { received = pt; });
  f.members[0]->send_data(app_payload);
  f.sim.run();
  ASSERT_EQ(received, app_payload);  // delivered correctly...
  for (const Bytes& frame : wire)
    EXPECT_FALSE(contains_subsequence(frame, app_payload));  // ...never in clear
}

TEST_P(Secrecy, DistinctGroupsHaveIndependentKeys) {
  // Two groups with the same protocol and overlapping machines must not
  // share key material.
  Simulator sim;
  SpreadNetwork net(sim, lan_testbed());
  auto pki = std::make_shared<Pki>();
  auto make = [&](const std::string& group, int count) {
    std::vector<std::unique_ptr<SecureGroupMember>> out;
    for (int i = 0; i < count; ++i) {
      ProcessId pid = net.create_process(static_cast<MachineId>(i % 13));
      MemberConfig cfg;
      cfg.group = group;
      cfg.protocol = GetParam();
      cfg.seed = 5;
      out.push_back(std::make_unique<SecureGroupMember>(net, pid, pki, cfg));
      out.back()->join();
      sim.run();
    }
    return out;
  };
  auto ga = make("alpha", 3);
  auto gb = make("beta", 3);
  EXPECT_FALSE(ct_equal(ga[0]->key(), gb[0]->key()));
  // Data sealed in one group does not open in the other.
  Bytes sealed = ga[0]->seal(str_bytes("alpha only"));
  EXPECT_FALSE(gb[0]->open(sealed).has_value());
}

INSTANTIATE_TEST_SUITE_P(
    Protocols, Secrecy, ::testing::ValuesIn(sgk::testing::all_protocols()),
    [](const ::testing::TestParamInfo<ProtocolKind>& info) {
      return std::string(to_string(info.param));
    });

}  // namespace
}  // namespace sgk
