// DSA signature tests, including the end-to-end protocol path with DSA
// instead of RSA.
#include <gtest/gtest.h>

#include "crypto/dsa.h"
#include "crypto/drbg.h"
#include "tests/protocol_harness.h"

namespace sgk {
namespace {

TEST(Dsa, SignVerifyRoundTrip) {
  Drbg rng(61, "dsa");
  const DhGroup& grp = dh_group(DhBits::k512);
  DsaPrivateKey key(grp, rng);
  Bytes msg = str_bytes("group key agreement");
  DsaSignature sig = key.sign(msg, rng);
  EXPECT_TRUE(key.public_key().verify(msg, sig));
}

TEST(Dsa, RejectsWrongMessage) {
  Drbg rng(62, "dsa");
  const DhGroup& grp = dh_group(DhBits::k512);
  DsaPrivateKey key(grp, rng);
  DsaSignature sig = key.sign(str_bytes("A"), rng);
  EXPECT_FALSE(key.public_key().verify(str_bytes("B"), sig));
}

TEST(Dsa, RejectsTamperedSignature) {
  Drbg rng(63, "dsa");
  const DhGroup& grp = dh_group(DhBits::k512);
  DsaPrivateKey key(grp, rng);
  Bytes msg = str_bytes("tamper");
  DsaSignature sig = key.sign(msg, rng);
  DsaSignature bad = sig;
  bad.s = bad.s + BigInt(1) == grp.q() ? BigInt(1) : bad.s + BigInt(1);
  EXPECT_FALSE(key.public_key().verify(msg, bad));
}

TEST(Dsa, RejectsWrongKey) {
  Drbg rng(64, "dsa");
  const DhGroup& grp = dh_group(DhBits::k512);
  DsaPrivateKey key1(grp, rng);
  DsaPrivateKey key2(grp, rng);
  Bytes msg = str_bytes("cross");
  DsaSignature sig = key1.sign(msg, rng);
  EXPECT_FALSE(key2.public_key().verify(msg, sig));
}

TEST(Dsa, RejectsOutOfRangeComponents) {
  Drbg rng(65, "dsa");
  const DhGroup& grp = dh_group(DhBits::k512);
  DsaPrivateKey key(grp, rng);
  Bytes msg = str_bytes("range");
  DsaSignature sig = key.sign(msg, rng);
  DsaSignature zero_r = sig;
  zero_r.r = BigInt();
  EXPECT_FALSE(key.public_key().verify(msg, zero_r));
  DsaSignature big_s = sig;
  big_s.s = grp.q();
  EXPECT_FALSE(key.public_key().verify(msg, big_s));
}

TEST(Dsa, SignatureBytesRoundTrip) {
  Drbg rng(66, "dsa");
  const DhGroup& grp = dh_group(DhBits::k1024);
  DsaPrivateKey key(grp, rng);
  Bytes msg = str_bytes("serialize");
  DsaSignature sig = key.sign(msg, rng);
  Bytes wire = dsa_signature_to_bytes(sig, 20);
  DsaSignature back = dsa_signature_from_bytes(wire);
  EXPECT_EQ(back.r, sig.r);
  EXPECT_EQ(back.s, sig.s);
  EXPECT_TRUE(key.public_key().verify(msg, back));
}

TEST(Dsa, FreshNoncePerSignature) {
  Drbg rng(67, "dsa");
  const DhGroup& grp = dh_group(DhBits::k512);
  DsaPrivateKey key(grp, rng);
  Bytes msg = str_bytes("same message");
  DsaSignature a = key.sign(msg, rng);
  DsaSignature b = key.sign(msg, rng);
  EXPECT_NE(a.r, b.r);  // randomized signatures
  EXPECT_TRUE(key.public_key().verify(msg, a));
  EXPECT_TRUE(key.public_key().verify(msg, b));
}

// End to end: protocols agree when signed with DSA instead of RSA.
class DsaProtocols : public ::testing::TestWithParam<ProtocolKind> {};

TEST_P(DsaProtocols, AgreementUnderDsaSignatures) {
  sgk::testing::ProtocolFixture f(GetParam());
  // Rebuild members with DSA configured.
  for (int i = 0; i < 4; ++i) {
    const MachineId machine = static_cast<MachineId>(f.members.size() % 13);
    ProcessId pid = f.net.create_process(machine);
    MemberConfig cfg;
    cfg.protocol = f.protocol_kind;
    cfg.seed = 42;
    cfg.signature = SigScheme::kDsa;
    f.members.push_back(std::make_unique<SecureGroupMember>(f.net, pid, f.pki, cfg));
    f.members.back()->join();
    f.sim.run();
  }
  f.expect_agreement();
  f.remove_member(1);
  f.expect_agreement();
}

INSTANTIATE_TEST_SUITE_P(
    Protocols, DsaProtocols, ::testing::ValuesIn(sgk::testing::all_protocols()),
    [](const ::testing::TestParamInfo<ProtocolKind>& info) {
      return std::string(to_string(info.param));
    });

}  // namespace
}  // namespace sgk
