// Unit tests for the observability layer: histogram bucket geometry and
// quantiles, span nesting / phase tiling under virtual time, and Chrome
// trace export round-tripped through the JSON parser.
#include <cmath>
#include <set>
#include <string>

#include "gtest/gtest.h"
#include "harness/bench_io.h"
#include "harness/experiment.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/run_report.h"
#include "obs/trace.h"
#include "obs/wallclock.h"

namespace sgk::obs {
namespace {

// ---------------------------------------------------------------------------
// Json

TEST(Json, ScalarRoundTrip) {
  Json doc = Json::object();
  doc.set("b", Json(true));
  doc.set("n", Json(42.5));
  doc.set("i", Json(std::uint64_t{9007199254740992ull}));
  doc.set("s", Json("esc \"quotes\" and \n newline"));
  doc.set("z", Json(nullptr));
  Json back = Json::parse(doc.dump());
  EXPECT_TRUE(back.at("b").as_bool());
  EXPECT_DOUBLE_EQ(back.at("n").as_number(), 42.5);
  EXPECT_DOUBLE_EQ(back.at("i").as_number(), 9007199254740992.0);
  EXPECT_EQ(back.at("s").as_string(), "esc \"quotes\" and \n newline");
  EXPECT_TRUE(back.at("z").is_null());
}

TEST(Json, ObjectPreservesInsertionOrder) {
  Json doc = Json::object();
  doc.set("zeta", Json(1));
  doc.set("alpha", Json(2));
  const std::string text = doc.dump();
  EXPECT_LT(text.find("zeta"), text.find("alpha"));
}

TEST(Json, ParseRejectsTrailingGarbage) {
  EXPECT_THROW(Json::parse("{} x"), JsonError);
  EXPECT_THROW(Json::parse("[1,]"), JsonError);
  EXPECT_THROW(Json::parse(""), JsonError);
}

// ---------------------------------------------------------------------------
// Histogram

TEST(Histogram, BucketBoundariesArePowerOfTwoDecades) {
  // Bucket 0 is underflow: everything below 2^kMinExp.
  EXPECT_EQ(Histogram::bucket_index(0.0), 0);
  EXPECT_EQ(Histogram::bucket_index(std::ldexp(1.0, Histogram::kMinExp) / 2), 0);
  // The first resolved bucket starts exactly at 2^kMinExp.
  EXPECT_EQ(Histogram::bucket_index(std::ldexp(1.0, Histogram::kMinExp)), 1);
  // Overflow: anything at/above 2^kMaxExp lands in the last bucket.
  EXPECT_EQ(Histogram::bucket_index(std::ldexp(1.0, Histogram::kMaxExp)),
            Histogram::kBucketCount - 1);
  EXPECT_EQ(Histogram::bucket_index(1e300), Histogram::kBucketCount - 1);

  // Each decade [2^e, 2^{e+1}) splits into kSubBuckets equal parts: check the
  // decade [1, 2) explicitly.
  const int base = Histogram::bucket_index(1.0);
  EXPECT_EQ(Histogram::bucket_index(1.24), base);
  EXPECT_EQ(Histogram::bucket_index(1.25), base + 1);
  EXPECT_EQ(Histogram::bucket_index(1.75), base + 3);
  EXPECT_EQ(Histogram::bucket_index(2.0), base + 4);

  // bucket_bounds is the inverse: every bound's lower edge maps back to the
  // same bucket, and consecutive buckets tile the line with no gaps.
  for (int i = 1; i + 1 < Histogram::kBucketCount; ++i) {
    const auto [lo, hi] = Histogram::bucket_bounds(i);
    EXPECT_EQ(Histogram::bucket_index(lo), i) << "bucket " << i;
    EXPECT_EQ(Histogram::bucket_index(std::nextafter(hi, 0.0)), i);
    const auto [next_lo, next_hi] = Histogram::bucket_bounds(i + 1);
    EXPECT_DOUBLE_EQ(hi, next_lo);
  }
}

TEST(Histogram, AggregatesAndQuantiles) {
  Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 0.0);
  for (int i = 1; i <= 100; ++i) h.observe(static_cast<double>(i));
  EXPECT_EQ(h.count(), 100u);
  EXPECT_DOUBLE_EQ(h.min(), 1.0);
  EXPECT_DOUBLE_EQ(h.max(), 100.0);
  EXPECT_DOUBLE_EQ(h.mean(), 50.5);
  // Log-linear buckets bound relative quantile error by the sub-bucket width
  // (25% per decade → ~12% worst case).
  EXPECT_NEAR(h.quantile(0.5), 50.0, 50.0 * 0.13);
  EXPECT_NEAR(h.quantile(0.95), 95.0, 95.0 * 0.13);
  EXPECT_DOUBLE_EQ(h.quantile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 100.0);
}

TEST(Histogram, SingleObservationQuantilesClampToValue) {
  Histogram h;
  h.observe(3.7);
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 3.7);
  EXPECT_DOUBLE_EQ(h.quantile(0.95), 3.7);
}

TEST(MetricsRegistry, CountersAndJson) {
  MetricsRegistry reg;
  reg.counter("a/b").add(3);
  reg.counter("a/b").add();
  reg.histogram("h").observe(2.0);
  EXPECT_EQ(reg.counter("a/b").value(), 4u);
  const Json doc = reg.to_json();
  EXPECT_DOUBLE_EQ(doc.at("counters").at("a/b").as_number(), 4.0);
  EXPECT_DOUBLE_EQ(doc.at("histograms").at("h").at("count").as_number(), 1.0);
}

// ---------------------------------------------------------------------------
// Tracer

TEST(Trace, PhaseTilingSumsToEventDuration) {
  Tracer tr;
  tr.use_clock();
  const SpanId root = tr.begin_event("join", 10.0);
  tr.event_attr("protocol", Json("TGDH"));
  tr.phase("membership", 10.0);
  tr.phase("tree_update", 14.0);
  tr.phase("tree_update", 15.0);  // coalesces: same phase re-marked
  tr.phase("broadcast", 18.0);
  tr.end_event(25.0);

  const Span& ev = tr.span(root);
  EXPECT_EQ(ev.kind, SpanKind::kEvent);
  EXPECT_FALSE(ev.open());
  EXPECT_DOUBLE_EQ(ev.duration_ms(), 15.0);

  double phase_total = 0.0;
  int phases = 0;
  for (const Span& s : tr.spans()) {
    if (s.kind != SpanKind::kPhase) continue;
    ++phases;
    EXPECT_EQ(s.parent, root);
    EXPECT_GE(s.start_ms, ev.start_ms);
    EXPECT_LE(s.end_ms, ev.end_ms);
    phase_total += s.duration_ms();
  }
  EXPECT_EQ(phases, 3);  // membership, tree_update (coalesced), broadcast
  EXPECT_DOUBLE_EQ(phase_total, ev.duration_ms());
}

TEST(Trace, LatePhaseMarksAreClampedIntoTheEvent) {
  Tracer tr;
  tr.use_clock();
  const SpanId root = tr.begin_event("leave", 0.0);
  tr.phase("membership", 0.0);
  tr.phase("straggler", 9.0);
  tr.end_event(5.0);  // key installed before the straggler handler ran
  double phase_total = 0.0;
  for (const Span& s : tr.spans())
    if (s.kind == SpanKind::kPhase) {
      EXPECT_LE(s.end_ms, 5.0);
      phase_total += s.duration_ms();
    }
  EXPECT_DOUBLE_EQ(phase_total, tr.span(root).duration_ms());
}

TEST(Trace, UseClockLaysOutExperimentsSequentially) {
  Tracer tr;
  tr.use_clock();
  SpanId first = tr.begin_event("join", 0.0);
  tr.end_event(100.0);
  tr.use_clock();  // second experiment: its clock restarts at 0
  SpanId second = tr.begin_event("join", 0.0);
  tr.end_event(50.0);
  EXPECT_GE(tr.span(second).start_ms, tr.span(first).end_ms);
  EXPECT_DOUBLE_EQ(tr.span(second).duration_ms(), 50.0);
}

TEST(Trace, InstantsNestUnderTheOpenEvent) {
  Tracer tr;
  tr.use_clock();
  const SpanId root = tr.begin_event("join", 0.0);
  const SpanId mark = tr.instant("key_install", 3.0);
  tr.end_event(4.0);
  const SpanId orphan = tr.instant("idle", 9.0);
  EXPECT_EQ(tr.span(mark).parent, root);
  EXPECT_EQ(tr.span(orphan).parent, kNoSpan);
}

TEST(Trace, SpanRollupGroupsByProtocolAndEvent) {
  Tracer tr;
  tr.use_clock();
  for (int i = 0; i < 2; ++i) {
    tr.begin_event("join", i * 100.0);
    tr.event_attr("protocol", Json("GDH"));
    tr.phase("token_accumulation", i * 100.0);
    tr.phase("broadcast", i * 100.0 + 6.0);
    tr.end_event(i * 100.0 + 10.0);
  }
  const Json rows = span_rollup_json(tr);
  ASSERT_EQ(rows.size(), 1u);
  const Json& row = rows.at(std::size_t{0});
  EXPECT_EQ(row.at("protocol").as_string(), "GDH");
  EXPECT_EQ(row.at("event").as_string(), "join");
  EXPECT_DOUBLE_EQ(row.at("count").as_number(), 2.0);
  EXPECT_DOUBLE_EQ(row.at("total_ms").as_number(), 20.0);
  EXPECT_DOUBLE_EQ(row.at("mean_ms").as_number(), 10.0);
  const Json& phases = row.at("phases");
  EXPECT_DOUBLE_EQ(phases.at("token_accumulation").as_number(), 12.0);
  EXPECT_DOUBLE_EQ(phases.at("broadcast").as_number(), 8.0);
  EXPECT_DOUBLE_EQ(phases.at("token_accumulation").as_number() +
                       phases.at("broadcast").as_number(),
                   row.at("total_ms").as_number());
}

TEST(Trace, ChromeExportRoundTripsThroughParser) {
  Tracer tr;
  tr.use_clock();
  tr.set_track_name(1, "machine 0");
  const SpanId root = tr.begin_event("join", 0.0);
  tr.event_attr("protocol", Json("TGDH"));
  tr.phase("tree_update", 0.0);
  const SpanId compute = tr.begin_span_at("compute", 1.0, kNoSpan, 1);
  tr.end_span_at(compute, 2.5);
  tr.instant("key_install", 3.0, 1);
  tr.end_event(4.0);

  const Json doc = Json::parse(tr.chrome_trace_json().dump());
  const Json& events = doc.at("traceEvents");
  ASSERT_TRUE(events.is_array());

  std::set<std::string> names;
  int roots = 0;
  for (const Json& e : events.as_array()) {
    const std::string ph = e.at("ph").as_string();
    if (ph == "M") continue;  // metadata has no ts
    names.insert(e.at("name").as_string());
    EXPECT_GE(e.at("ts").as_number(), 0.0);
    if (ph == "X" && e.at("name").as_string() == "join") {
      ++roots;
      // Complete events carry microsecond durations: 4 ms -> 4000 us.
      EXPECT_DOUBLE_EQ(e.at("dur").as_number(), 4000.0);
      EXPECT_EQ(e.at("args").at("span_id").as_number(),
                static_cast<double>(root));
    }
  }
  EXPECT_EQ(roots, 1);
  EXPECT_TRUE(names.count("tree_update"));
  EXPECT_TRUE(names.count("compute"));
  EXPECT_TRUE(names.count("key_install"));
}

TEST(Trace, GlobalInstallUninstall) {
  EXPECT_EQ(tracer(), nullptr);
  Tracer tr;
  set_tracer(&tr);
  EXPECT_EQ(tracer(), &tr);
  bool ran = false;
  SGK_TRACE(ran = true; tr->instant("ping", 0.0));
  EXPECT_TRUE(ran);
  set_tracer(nullptr);
  EXPECT_EQ(tracer(), nullptr);
}

TEST(Wallclock, CalibrationIsSane) {
  const WallCalibration cal = calibrate_wall_timer();
  // Overhead is clamped into [0, 1000] ns by construction; a plausible
  // machine lands well under the cap.
  EXPECT_GE(cal.overhead_ns, 0.0);
  EXPECT_LE(cal.overhead_ns, 1000.0);
  EXPECT_GE(cal.resolution_ns, 0.0);
  EXPECT_GT(cal.batches, 0);
}

TEST(Wallclock, RecordSubtractsOverheadAndClampsAtZero) {
  WallProfiler wp;
  const double overhead = wp.calibration().overhead_ns;
  // A zero-width raw interval must never go negative after subtraction.
  wp.record("zero", 5000, 5000);
  ASSERT_NE(wp.site("zero"), nullptr);
  EXPECT_EQ(wp.site("zero")->count(), 1u);
  EXPECT_DOUBLE_EQ(wp.site("zero")->sum(), 0.0);
  // A wide interval loses exactly the calibrated overhead.
  wp.record("wide", 0, 1000000);
  EXPECT_DOUBLE_EQ(wp.site("wide")->sum(), 1.0e6 - overhead);
}

TEST(Wallclock, HistogramQuantilesAtNsScaleStayWithinBucketError) {
  // The log-linear buckets promise ~12-13% relative quantile error; check
  // that holds for nanosecond-magnitude values (1e2..1e6 ns), the range
  // wall sites actually produce.
  WallProfiler wp;
  for (int i = 1; i <= 1000; ++i) wp.observe("ns", 100.0 * i);  // 100ns..100us
  const Histogram* h = wp.site("ns");
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->count(), 1000u);
  EXPECT_NEAR(h->quantile(0.5), 50000.0, 50000.0 * 0.13);
  EXPECT_NEAR(h->quantile(0.95), 95000.0, 95000.0 * 0.13);
}

TEST(Wallclock, WallScopeIsNullSafeAndRecordsWhenInstalled) {
  ASSERT_EQ(wall_profiler(), nullptr);
  {
    WallScope scope("site/no_profiler");  // must be a no-op, not a crash
  }
  WallProfiler wp;
  set_wall_profiler(&wp);
  {
    WallScope scope("site/with_profiler");
  }
  set_wall_profiler(nullptr);
  ASSERT_NE(wp.site("site/with_profiler"), nullptr);
  EXPECT_EQ(wp.site("site/with_profiler")->count(), 1u);
  EXPECT_EQ(wp.site("site/no_profiler"), nullptr);
}

TEST(Wallclock, SpanBufferCapsAndCountsDrops) {
  WallProfiler wp;
  const std::size_t n = WallProfiler::kMaxSpans + 7;
  for (std::size_t i = 0; i < n; ++i) wp.record("spin", 0, 100);
  EXPECT_EQ(wp.spans_recorded(), WallProfiler::kMaxSpans);
  EXPECT_EQ(wp.spans_dropped(), 7u);
  // Aggregation is unbounded: every record still lands in the histogram.
  EXPECT_EQ(wp.site("spin")->count(), n);
}

TEST(Wallclock, JsonAndTraceShapes) {
  WallProfiler wp;
  wp.record("a/b", 1000, 3000);
  const Json doc = wp.to_json();
  EXPECT_NE(doc.find("calibration"), nullptr);
  EXPECT_NE(doc.find("env"), nullptr);
  ASSERT_NE(doc.find("sites"), nullptr);
  ASSERT_NE(doc.at("sites").find("a/b"), nullptr);
  const Json& site = doc.at("sites").at("a/b");
  for (const char* k :
       {"count", "sum_ns", "min_ns", "mean_ns", "p50_ns", "p95_ns", "max_ns"})
    EXPECT_NE(site.find(k), nullptr) << k;
  EXPECT_EQ(doc.at("spans_recorded").as_number(), 1.0);
  EXPECT_EQ(doc.at("spans_dropped").as_number(), 0.0);

  const Json events = wp.trace_events_json();
  ASSERT_EQ(events.size(), 2u);  // process_name metadata + one X event
  EXPECT_EQ(events.at(0).at("ph").as_string(), "M");
  EXPECT_EQ(events.at(0).at("pid").as_number(), 1.0);
  EXPECT_EQ(events.at(1).at("ph").as_string(), "X");
  EXPECT_EQ(events.at(1).at("name").as_string(), "a/b");
  EXPECT_EQ(events.at(1).at("pid").as_number(), 1.0);
}

// The cardinal dual-clock guarantee: with every sink installed (metrics,
// tracer, wall profiler), two identical runs produce RunReports that match
// byte for byte outside the "wallclock" section.
TEST(Wallclock, ReportsDifferOnlyInWallclockSection) {
  const auto run_once = [] {
    MetricsRegistry mr;
    Tracer tr;
    WallProfiler wp;
    set_metrics(&mr);
    set_tracer(&tr);
    set_wall_profiler(&wp);
    {
      sgk::ExperimentConfig cfg;
      cfg.protocol = sgk::ProtocolKind::kTgdh;
      sgk::Experiment exp(cfg);
      exp.grow_to(3);
      exp.measure_join();
    }
    set_metrics(nullptr);
    set_tracer(nullptr);
    set_wall_profiler(nullptr);
    RunReport report("determinism_probe");
    report.add_section("seed", Json(std::uint64_t{1}));
    report.add_metrics(mr);
    report.add_span_rollup(tr);
    report.set_schema(kBenchSchemaWallclock);
    report.add_section("wallclock", wp.to_json());
    return report.json().dump(2);
  };

  const Json a = Json::parse(run_once());
  const Json b = Json::parse(run_once());
  // Wall instrumentation actually fired during the run...
  ASSERT_NE(a.find("wallclock"), nullptr);
  EXPECT_GT(a.at("wallclock").at("sites").size(), 0u);
  // ...and is the only section allowed to differ.
  const auto without_wallclock = [](const Json& doc) {
    Json out = Json::object();
    for (const auto& [k, v] : doc.as_object())
      if (k != "wallclock") out.set(k, v);
    return out.dump(2);
  };
  EXPECT_EQ(without_wallclock(a), without_wallclock(b));
}

// Schema ladder: ObsSession::finish upgrades a v1 report to v2 when the
// wall profiler ran, but never downgrades a report a bench already stamped
// higher (sgk-bench/3 batch payloads carry their wallclock section at v3).
TEST(Wallclock, FinishNeverDowngradesABatchSchemaReport) {
  const std::string dir = ::testing::TempDir();
  const auto finish_with_wall = [&](const char* stamp, const std::string& path) {
    sgk::BenchOptions opts;
    opts.wallclock = true;
    opts.json_path = path;
    sgk::ObsSession session(opts);
    RunReport report("schema_probe");
    if (stamp != nullptr) report.set_schema(stamp);
    EXPECT_TRUE(session.finish(report));
    return report.json().at("schema").as_string();
  };
  EXPECT_EQ(finish_with_wall(kBenchSchemaBatch, dir + "/schema_v3.json"),
            kBenchSchemaBatch);
  EXPECT_EQ(finish_with_wall(nullptr, dir + "/schema_v1.json"),
            kBenchSchemaWallclock);
}

}  // namespace
}  // namespace sgk::obs
