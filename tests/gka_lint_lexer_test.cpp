// Edge-case tests for the gka_lint lexer (tools/gka_lint/lexer.h): the
// phase-2/phase-3 corners a line-oriented tokenizer is most likely to get
// wrong — backslash-newline inside raw strings (where it is NOT a
// continuation), digraphs, and adjacent '>' closing nested templates.
#include "gka_lint/lexer.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "gka_lint/lint.h"

namespace {

using gka_lint::lex;
using gka_lint::Tok;
using gka_lint::TokKind;

std::vector<Tok> of_kind(const std::vector<Tok>& toks, TokKind k) {
  std::vector<Tok> out;
  for (const Tok& t : toks)
    if (t.kind == k) out.push_back(t);
  return out;
}

bool has_ident(const std::vector<Tok>& toks, const std::string& text) {
  return std::any_of(toks.begin(), toks.end(), [&](const Tok& t) {
    return t.kind == TokKind::kIdent && t.text == text;
  });
}

TEST(GkaLintLexer, BackslashNewlineInsideRawStringIsLiteral) {
  // In a raw string, backslash-newline is two characters of the literal,
  // not a line continuation: the raw string ends at its delimiter and the
  // identifier after it is real code on line 3.
  const std::string src =
      "const char* s = R\"(line one \\\n"
      "still the string)\";\n"
      "int after_raw = 1;\n";
  const auto toks = lex(src);
  const auto strings = of_kind(toks, TokKind::kString);
  ASSERT_EQ(strings.size(), 1u);
  EXPECT_NE(strings[0].text.find("\\\n"), std::string::npos);
  ASSERT_TRUE(has_ident(toks, "after_raw"));
  for (const Tok& t : toks) {
    if (t.kind == TokKind::kIdent && t.text == "after_raw") {
      EXPECT_EQ(t.line, 3);
    }
  }
}

TEST(GkaLintLexer, RawStringDelimiterBodyIsNotTerminatedEarly) {
  // A ')' followed by '"' inside the body must not close a delimited raw
  // string; only the exact )delim" sequence does.
  const std::string src = "auto s = R\"x(a)\" b)x\"; int tail = 2;\n";
  const auto toks = lex(src);
  const auto strings = of_kind(toks, TokKind::kString);
  ASSERT_EQ(strings.size(), 1u);
  EXPECT_EQ(strings[0].text, "a)\" b");
  EXPECT_TRUE(has_ident(toks, "tail"));
}

TEST(GkaLintLexer, LineContinuationOutsideStringsJoinsPpLines) {
  // Outside literals, backslash-newline extends a preprocessor logical
  // line: the whole directive is ONE kPp token and the macro body is not
  // mistaken for code.
  const std::string src =
      "#define LOG_KEY(k) \\\n"
      "  log(k)\n"
      "int real_code = 1;\n";
  const auto toks = lex(src);
  const auto pps = of_kind(toks, TokKind::kPp);
  ASSERT_EQ(pps.size(), 1u);
  EXPECT_NE(pps[0].text.find("log"), std::string::npos);
  // `log` only exists inside the directive, never as a code identifier.
  EXPECT_FALSE(has_ident(toks, "log"));
  EXPECT_TRUE(has_ident(toks, "real_code"));
}

TEST(GkaLintLexer, DigraphsLexAsTheirPrimaryForms) {
  // <% %> <: :> are { } [ ]: the digraph-brace body must still scope like a
  // normal function body.
  const std::string src = "int f(int a) <% return a<:0:>; %>\n";
  const auto toks = lex(src);
  const auto puncts = of_kind(toks, TokKind::kPunct);
  auto count = [&](const std::string& p) {
    return std::count_if(puncts.begin(), puncts.end(),
                         [&](const Tok& t) { return t.text == p; });
  };
  EXPECT_EQ(count("{"), 1);
  EXPECT_EQ(count("}"), 1);
  EXPECT_EQ(count("["), 1);
  EXPECT_EQ(count("]"), 1);
  EXPECT_EQ(count("<"), 0);
  EXPECT_EQ(count("%"), 0);
}

TEST(GkaLintLexer, AdjacentClosingAnglesInTemplateArgs) {
  // `map<int, vector<int>>` — the '>>' must come through as two '>' punct
  // tokens (one-char punct lexing), not a shift operator the line rules
  // would misparse.
  const std::string src = "std::map<int, std::vector<int>> m;\n";
  const auto toks = lex(src);
  const auto puncts = of_kind(toks, TokKind::kPunct);
  const int gts = static_cast<int>(std::count_if(
      puncts.begin(), puncts.end(),
      [](const Tok& t) { return t.text == ">"; }));
  EXPECT_EQ(gts, 2);
  EXPECT_TRUE(has_ident(toks, "m"));
}

TEST(GkaLintLexer, TaintSummariesConvergeOnMutualRecursion) {
  // Regression for the interprocedural fixpoint: two helpers that forward
  // to each other must converge (terminate) and still carry the
  // param-to-sink fact around the cycle to the caller.
  const std::string src =
      "void even_hop(const Bytes& data, int n);\n"
      "void odd_hop(const Bytes& data, int n) {\n"
      "  if (n > 0) even_hop(data, n - 1);\n"
      "}\n"
      "void even_hop(const Bytes& data, int n) {\n"
      "  if (n > 0) odd_hop(data, n - 1);\n"
      "  std::cout << to_hex(data);\n"
      "}\n"
      "void entry(const SecureBytes& session_key) {\n"
      "  odd_hop(session_key.reveal(), 4);\n"
      "}\n";
  const auto fs = gka_lint::lint_source("src/core/hops.cpp", src);
  bool fired = false;
  for (const auto& f : fs)
    if (f.rule == "GKA203") fired = true;
  EXPECT_TRUE(fired);
}

}  // namespace
