#include "bignum/bigint.h"

#include <gtest/gtest.h>

#include "crypto/drbg.h"

namespace sgk {
namespace {

TEST(BigInt, DefaultIsZero) {
  BigInt z;
  EXPECT_TRUE(z.is_zero());
  EXPECT_EQ(z.bit_length(), 0u);
  EXPECT_EQ(z.to_hex(), "0");
  EXPECT_TRUE(z.to_bytes().empty());
}

TEST(BigInt, FromU64) {
  BigInt v(0xdeadbeefULL);
  EXPECT_EQ(v.to_hex(), "deadbeef");
  EXPECT_EQ(v.low_u64(), 0xdeadbeefULL);
  EXPECT_EQ(v.bit_length(), 32u);
}

TEST(BigInt, HexRoundTrip) {
  const std::string hex = "1fffffffffffffffffffffffffffffffffffffffff";
  BigInt v = BigInt::from_hex(hex);
  EXPECT_EQ(v.to_hex(), hex);
}

TEST(BigInt, HexUppercaseAccepted) {
  EXPECT_EQ(BigInt::from_hex("ABCDEF"), BigInt::from_hex("abcdef"));
}

TEST(BigInt, HexInvalidThrows) {
  EXPECT_THROW(BigInt::from_hex("12g4"), std::invalid_argument);
}

TEST(BigInt, BytesRoundTrip) {
  Bytes b = {0x01, 0x02, 0x03, 0x04, 0x05, 0x06, 0x07, 0x08, 0x09};
  BigInt v = BigInt::from_bytes(b);
  EXPECT_EQ(v.to_bytes(), b);
  EXPECT_EQ(v.to_hex(), "10203040506070809");  // minimal: no leading zero nibble
}

TEST(BigInt, BytesLeadingZerosStripped) {
  Bytes b = {0x00, 0x00, 0x12, 0x34};
  BigInt v = BigInt::from_bytes(b);
  EXPECT_EQ(v.to_hex(), "1234");
  Bytes out = v.to_bytes();
  EXPECT_EQ(out, Bytes({0x12, 0x34}));
}

TEST(BigInt, PaddedBytes) {
  BigInt v(0x1234);
  Bytes padded = v.to_bytes_padded(4);
  EXPECT_EQ(padded, Bytes({0x00, 0x00, 0x12, 0x34}));
  EXPECT_THROW(v.to_bytes_padded(1), std::length_error);
}

TEST(BigInt, DecRoundTrip) {
  BigInt v = BigInt::from_dec("123456789012345678901234567890");
  EXPECT_EQ(v.to_dec(), "123456789012345678901234567890");
}

TEST(BigInt, CompareOrdering) {
  BigInt a(5), b(7);
  BigInt big = BigInt::from_hex("ffffffffffffffffff");
  EXPECT_LT(a, b);
  EXPECT_GT(big, b);
  EXPECT_EQ(a.compare(a), 0);
  EXPECT_LE(a, a);
  EXPECT_GE(big, big);
}

TEST(BigInt, AddCarriesAcrossLimbs) {
  BigInt a = BigInt::from_hex("ffffffffffffffff");
  BigInt sum = a + BigInt(1);
  EXPECT_EQ(sum.to_hex(), "10000000000000000");
}

TEST(BigInt, SubBorrowsAcrossLimbs) {
  BigInt a = BigInt::from_hex("10000000000000000");
  BigInt diff = a - BigInt(1);
  EXPECT_EQ(diff.to_hex(), "ffffffffffffffff");
}

TEST(BigInt, SubUnderflowThrows) {
  EXPECT_THROW(BigInt(3) - BigInt(4), std::domain_error);
}

TEST(BigInt, MulSmall) {
  EXPECT_EQ(BigInt(6) * BigInt(7), BigInt(42));
  EXPECT_EQ((BigInt(6) * BigInt()).to_hex(), "0");
}

TEST(BigInt, MulLarge) {
  BigInt a = BigInt::from_hex("ffffffffffffffff");
  BigInt sq = a * a;
  EXPECT_EQ(sq.to_hex(), "fffffffffffffffe0000000000000001");
}

TEST(BigInt, ShiftLeftRightInverse) {
  BigInt v = BigInt::from_hex("123456789abcdef0123456789abcdef");
  EXPECT_EQ((v << 67) >> 67, v);
  EXPECT_EQ((v << 64).to_hex(), v.to_hex() + "0000000000000000");
}

TEST(BigInt, ShiftRightToZero) {
  EXPECT_TRUE((BigInt(5) >> 3).is_zero());
}

TEST(BigInt, DivModSingleLimb) {
  BigInt v = BigInt::from_dec("1000000000000000000000007");
  auto dm = v.divmod(BigInt(97));
  EXPECT_EQ(dm.quotient * BigInt(97) + dm.remainder, v);
  EXPECT_LT(dm.remainder, BigInt(97));
}

TEST(BigInt, DivByZeroThrows) {
  EXPECT_THROW(BigInt(4) / BigInt(), std::domain_error);
  EXPECT_THROW(BigInt(4) % BigInt(), std::domain_error);
}

TEST(BigInt, DivSmallerThanDivisor) {
  auto dm = BigInt(5).divmod(BigInt(9));
  EXPECT_TRUE(dm.quotient.is_zero());
  EXPECT_EQ(dm.remainder, BigInt(5));
}

TEST(BigInt, BitAccess) {
  BigInt v = BigInt::from_hex("8000000000000001");
  EXPECT_TRUE(v.bit(0));
  EXPECT_TRUE(v.bit(63));
  EXPECT_FALSE(v.bit(1));
  EXPECT_FALSE(v.bit(64));
  EXPECT_TRUE(v.is_odd());
}

// Property sweep: (q * d + r == n) and (r < d) for random operands of many
// widths, plus ring identities.
class BigIntProperty : public ::testing::TestWithParam<std::size_t> {};

TEST_P(BigIntProperty, DivModReconstructs) {
  Drbg rng(GetParam(), "bigint-divmod");
  for (int iter = 0; iter < 25; ++iter) {
    BigInt n = BigInt::random_bits(64 + GetParam() * 37, rng);
    BigInt d = BigInt::random_bits(1 + GetParam() * 23, rng);
    auto dm = n.divmod(d);
    EXPECT_EQ(dm.quotient * d + dm.remainder, n);
    EXPECT_LT(dm.remainder, d);
  }
}

TEST_P(BigIntProperty, AddSubInverse) {
  Drbg rng(GetParam(), "bigint-addsub");
  for (int iter = 0; iter < 25; ++iter) {
    BigInt a = BigInt::random_bits(32 + GetParam() * 41, rng);
    BigInt b = BigInt::random_bits(16 + GetParam() * 19, rng);
    EXPECT_EQ(a + b - b, a);
    EXPECT_EQ((a + b) - a, b);
  }
}

TEST_P(BigIntProperty, MulDistributesOverAdd) {
  Drbg rng(GetParam(), "bigint-dist");
  for (int iter = 0; iter < 10; ++iter) {
    BigInt a = BigInt::random_bits(100 + GetParam() * 13, rng);
    BigInt b = BigInt::random_bits(90 + GetParam() * 17, rng);
    BigInt c = BigInt::random_bits(80 + GetParam() * 11, rng);
    EXPECT_EQ(a * (b + c), a * b + a * c);
    EXPECT_EQ(a * b, b * a);
  }
}

TEST_P(BigIntProperty, BytesRoundTripRandom) {
  Drbg rng(GetParam(), "bigint-bytes");
  BigInt v = BigInt::random_bits(7 + GetParam() * 29, rng);
  EXPECT_EQ(BigInt::from_bytes(v.to_bytes()), v);
  EXPECT_EQ(BigInt::from_hex(v.to_hex()), v);
  EXPECT_EQ(BigInt::from_dec(v.to_dec()), v);
}

INSTANTIATE_TEST_SUITE_P(Widths, BigIntProperty, ::testing::Range<std::size_t>(1, 9));

// Karatsuba engages above ~12 limbs (768 bits); verify against schoolbook
// via the distributive/commutative identities at sizes straddling the
// threshold and far beyond it.
class KaratsubaProperty : public ::testing::TestWithParam<std::size_t> {};

TEST_P(KaratsubaProperty, MatchesIdentities) {
  Drbg rng(GetParam(), "karatsuba");
  const std::size_t bits = GetParam();
  for (int iter = 0; iter < 4; ++iter) {
    BigInt a = BigInt::random_bits(bits, rng);
    BigInt b = BigInt::random_bits(bits / 2 + 17, rng);
    BigInt c = BigInt::random_bits(bits / 3 + 5, rng);
    EXPECT_EQ(a * b, b * a);
    EXPECT_EQ(a * (b + c), a * b + a * c);
    // Division is schoolbook: (a*b)/b must reconstruct a exactly.
    EXPECT_EQ(a * b / b, a);
    EXPECT_EQ((a * b) % b, BigInt());
  }
}

TEST_P(KaratsubaProperty, SquareMatchesRepeatedAdd) {
  Drbg rng(GetParam() + 999, "karatsuba-sq");
  BigInt a = BigInt::random_bits(GetParam(), rng);
  EXPECT_EQ(a * BigInt(3), a + a + a);
  EXPECT_EQ((a + BigInt(1)) * (a + BigInt(1)), a * a + a + a + BigInt(1));
}

INSTANTIATE_TEST_SUITE_P(Sizes, KaratsubaProperty,
                         ::testing::Values<std::size_t>(256, 768, 1024, 1536,
                                                        2048, 4096, 8192));

TEST(BigInt, KaratsubaAsymmetricOperands) {
  Drbg rng(4242, "asym");
  // Very lopsided operand sizes stress the split logic.
  BigInt big = BigInt::random_bits(6000, rng);
  BigInt small = BigInt::random_bits(70, rng);
  EXPECT_EQ(big * small / small, big);
  BigInt one(1);
  EXPECT_EQ(big * one, big);
}

TEST(BigInt, RandomBitsExactWidth) {
  Drbg rng(7, "rb");
  for (std::size_t bits : {1u, 8u, 9u, 63u, 64u, 65u, 160u, 512u}) {
    BigInt v = BigInt::random_bits(bits, rng);
    EXPECT_EQ(v.bit_length(), bits);
  }
}

TEST(BigInt, RandomBelowInRange) {
  Drbg rng(8, "rbel");
  BigInt bound = BigInt::from_hex("10000000000000000000001");
  for (int i = 0; i < 50; ++i) {
    BigInt v = BigInt::random_below(bound, rng);
    EXPECT_LT(v, bound);
  }
}

}  // namespace
}  // namespace sgk
