// Broad agreement sweeps: every protocol (including the balanced TGDH
// variant) across a range of group sizes and a long mixed churn trace,
// asserting key agreement and key freshness at every step.
#include <gtest/gtest.h>

#include <set>

#include "crypto/drbg.h"
#include "tests/protocol_harness.h"

namespace sgk {
namespace {

using testing::ProtocolFixture;

std::vector<ProtocolKind> swept_protocols() {
  auto v = sgk::testing::all_protocols();
  v.push_back(ProtocolKind::kTgdhBalanced);
  return v;
}

class Sweep : public ::testing::TestWithParam<ProtocolKind> {};

TEST_P(Sweep, GrowTo24ThenShrinkTo2) {
  ProtocolFixture f(GetParam());
  std::set<std::string> keys;
  for (int n = 1; n <= 24; ++n) {
    f.add_member();
    f.expect_agreement();
    EXPECT_TRUE(keys.insert(f.current_fingerprint()).second) << "grow n=" << n;
  }
  Drbg rng(31337, "shrink");
  while (f.alive_count() > 2) {
    // Remove a pseudo-random live member.
    auto live = f.alive();
    SecureGroupMember* victim =
        live[static_cast<std::size_t>(rng.next_u64(live.size()))];
    for (std::size_t i = 0; i < f.members.size(); ++i) {
      if (f.members[i] && f.members[i].get() == victim) {
        f.remove_member(i);
        break;
      }
    }
    f.expect_agreement();
    EXPECT_TRUE(keys.insert(f.current_fingerprint()).second)
        << "shrink at " << f.alive_count();
  }
}

TEST_P(Sweep, LongMixedChurnTrace) {
  ProtocolFixture f(GetParam());
  Drbg rng(271828, "churn");
  f.grow_to(6);
  std::set<std::string> keys{f.current_fingerprint()};
  for (int step = 0; step < 30; ++step) {
    const std::uint64_t dice = rng.next_u64(10);
    if (dice < 4 || f.alive_count() <= 3) {
      f.add_member();
    } else if (dice < 8) {
      auto live = f.alive();
      SecureGroupMember* victim =
          live[static_cast<std::size_t>(rng.next_u64(live.size()))];
      for (std::size_t i = 0; i < f.members.size(); ++i)
        if (f.members[i] && f.members[i].get() == victim) {
          f.remove_member(i);
          break;
        }
    } else {
      f.alive()[0]->request_rekey();
      f.sim.run();
    }
    f.expect_agreement();
    EXPECT_TRUE(keys.insert(f.current_fingerprint()).second)
        << "step " << step << ": key reuse";
  }
}

TEST_P(Sweep, RepeatedPartitionHealCycles) {
  ProtocolFixture f(GetParam(), lan_testbed(6));
  f.grow_to(6);
  for (int round = 0; round < 3; ++round) {
    f.net.partition({{0, 1, 2}, {3, 4, 5}});
    f.sim.run();
    for (SecureGroupMember* m : f.alive()) ASSERT_TRUE(m->has_key());
    f.net.heal();
    f.sim.run();
    f.expect_agreement();
  }
}

INSTANTIATE_TEST_SUITE_P(
    Protocols, Sweep, ::testing::ValuesIn(swept_protocols()),
    [](const ::testing::TestParamInfo<ProtocolKind>& info) {
      std::string name = to_string(info.param);
      for (char& ch : name)
        if (ch == '-') ch = '_';
      return name;
    });

}  // namespace
}  // namespace sgk
