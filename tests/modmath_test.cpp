#include "bignum/modmath.h"

#include <gtest/gtest.h>

#include "bignum/montgomery.h"
#include "bignum/prime.h"
#include "crypto/drbg.h"

namespace sgk {
namespace {

TEST(Gcd, Basics) {
  EXPECT_EQ(gcd(BigInt(12), BigInt(18)), BigInt(6));
  EXPECT_EQ(gcd(BigInt(17), BigInt(5)), BigInt(1));
  EXPECT_EQ(gcd(BigInt(), BigInt(5)), BigInt(5));
  EXPECT_EQ(gcd(BigInt(5), BigInt()), BigInt(5));
}

TEST(ModInverse, SmallCases) {
  // 3 * 4 = 12 = 1 mod 11
  EXPECT_EQ(mod_inverse(BigInt(3), BigInt(11)), BigInt(4));
  EXPECT_EQ(mod_inverse(BigInt(1), BigInt(7)), BigInt(1));
  // a > m is reduced first.
  EXPECT_EQ(mod_inverse(BigInt(14), BigInt(11)), BigInt(4));
}

TEST(ModInverse, NotInvertibleThrows) {
  EXPECT_THROW(mod_inverse(BigInt(6), BigInt(9)), std::domain_error);
  EXPECT_THROW(mod_inverse(BigInt(), BigInt(9)), std::domain_error);
}

TEST(ModInverse, RandomInvertibleRoundTrip) {
  Drbg rng(3, "modinv");
  const BigInt m = BigInt::from_hex("d17977a5656e7ef6ea1a65eb9406b483d7b489a3");
  for (int i = 0; i < 30; ++i) {
    BigInt a = BigInt::random_below(m, rng);
    if (a.is_zero()) continue;
    BigInt inv = mod_inverse(a, m);
    EXPECT_EQ(a * inv % m, BigInt(1));
  }
}

TEST(ModInverse, CompositeModulus) {
  // Works for composite m when gcd(a, m) == 1 (needed by RSA keygen).
  const BigInt m = BigInt::from_dec("1000000");
  const BigInt a = BigInt(77);
  BigInt inv = mod_inverse(a, m);
  EXPECT_EQ(a * inv % m, BigInt(1));
}

TEST(ModAddSub, WrapsCorrectly) {
  const BigInt m(100);
  EXPECT_EQ(mod_add(BigInt(70), BigInt(50), m), BigInt(20));
  EXPECT_EQ(mod_add(BigInt(10), BigInt(20), m), BigInt(30));
  EXPECT_EQ(mod_sub(BigInt(10), BigInt(20), m), BigInt(90));
  EXPECT_EQ(mod_sub(BigInt(20), BigInt(10), m), BigInt(10));
}

TEST(CrtCombine, ReconstructsValue) {
  const BigInt p(101), q(103);
  const BigInt x(777);
  BigInt qinv = mod_inverse(q, p);
  BigInt rebuilt = crt_combine(x % p, x % q, p, q, qinv);
  EXPECT_EQ(rebuilt, x);
}

TEST(ModExp, KnownValues) {
  EXPECT_EQ(mod_exp(BigInt(2), BigInt(10), BigInt(1000)), BigInt(24));
  EXPECT_EQ(mod_exp(BigInt(5), BigInt(0), BigInt(7)), BigInt(1));
  EXPECT_EQ(mod_exp(BigInt(0), BigInt(5), BigInt(7)), BigInt(0));
  // Fermat: a^(p-1) = 1 mod p
  EXPECT_EQ(mod_exp(BigInt(2), BigInt(102), BigInt(103)), BigInt(1));
}

TEST(ModExp, EvenModulusFallback) {
  EXPECT_EQ(mod_exp(BigInt(3), BigInt(4), BigInt(100)), BigInt(81 % 100));
  EXPECT_EQ(mod_exp(BigInt(7), BigInt(3), BigInt(16)), BigInt(343 % 16));
}

TEST(Montgomery, RejectsEvenModulus) {
  EXPECT_THROW(MontgomeryCtx(BigInt(100)), std::invalid_argument);
  EXPECT_THROW(MontgomeryCtx(BigInt(1)), std::invalid_argument);
}

TEST(Montgomery, MulMatchesSchoolbook) {
  Drbg rng(4, "montmul");
  const BigInt m = BigInt::from_hex(
      "a8cb47671bf5d74c5ba7e3a079165690f7caed445170287bad497b312a4f6773"
      "3a128d309acb6678ab98b09b914d2c077b771265d2ece2b7761e2009b6b114e5");
  MontgomeryCtx ctx(m);
  for (int i = 0; i < 20; ++i) {
    BigInt a = BigInt::random_below(m, rng);
    BigInt b = BigInt::random_below(m, rng);
    EXPECT_EQ(ctx.mul(a, b), a * b % m);
  }
}

class MontExpProperty : public ::testing::TestWithParam<std::size_t> {};

TEST_P(MontExpProperty, MatchesNaiveSquareMultiply) {
  Drbg rng(GetParam(), "montexp");
  BigInt m = BigInt::random_bits(65 + GetParam() * 61, rng);
  if (!m.is_odd()) m = m + BigInt(1);
  MontgomeryCtx ctx(m);
  for (int i = 0; i < 6; ++i) {
    BigInt base = BigInt::random_below(m, rng);
    BigInt e = BigInt::random_bits(1 + GetParam() * 13, rng);
    // Naive reference.
    BigInt acc(1);
    for (std::size_t b = e.bit_length(); b-- > 0;) {
      acc = acc * acc % m;
      if (e.bit(b)) acc = acc * base % m;
    }
    EXPECT_EQ(ctx.exp(base, e), acc);
  }
}

TEST_P(MontExpProperty, ExponentAdditivity) {
  // g^(a+b) == g^a * g^b mod m
  Drbg rng(GetParam() + 100, "montexp-add");
  BigInt m = BigInt::random_bits(80 + GetParam() * 47, rng);
  if (!m.is_odd()) m = m + BigInt(1);
  MontgomeryCtx ctx(m);
  BigInt g = BigInt::random_below(m, rng);
  BigInt a = BigInt::random_bits(40, rng);
  BigInt b = BigInt::random_bits(40, rng);
  EXPECT_EQ(ctx.exp(g, a + b), ctx.mul(ctx.exp(g, a), ctx.exp(g, b)));
}

INSTANTIATE_TEST_SUITE_P(Widths, MontExpProperty, ::testing::Range<std::size_t>(1, 9));

TEST(Prime, SmallPrimesRecognized) {
  Drbg rng(5, "prime");
  for (std::uint32_t p : {2u, 3u, 5u, 7u, 97u, 251u, 257u, 65537u})
    EXPECT_TRUE(is_probable_prime(BigInt(p), rng)) << p;
  for (std::uint32_t c : {0u, 1u, 4u, 9u, 100u, 255u, 65535u})
    EXPECT_FALSE(is_probable_prime(BigInt(c), rng)) << c;
}

TEST(Prime, CarmichaelRejected) {
  Drbg rng(6, "carmichael");
  // 561, 1105, 1729 are Carmichael numbers (fool Fermat, not Miller-Rabin).
  for (std::uint32_t c : {561u, 1105u, 1729u, 41041u})
    EXPECT_FALSE(is_probable_prime(BigInt(c), rng)) << c;
}

TEST(Prime, KnownLargePrime) {
  Drbg rng(7, "large");
  // 2^127 - 1 is a Mersenne prime.
  BigInt m127 = (BigInt(1) << 127) - BigInt(1);
  EXPECT_TRUE(is_probable_prime(m127, rng));
  EXPECT_FALSE(is_probable_prime(m127 + BigInt(2), rng));
}

TEST(Prime, GenerateHasExactBits) {
  Drbg rng(8, "gen");
  BigInt p = generate_prime(128, rng);
  EXPECT_EQ(p.bit_length(), 128u);
  EXPECT_TRUE(is_probable_prime(p, rng));
}

TEST(Prime, SchnorrGroupStructure) {
  Drbg rng(9, "schnorr");
  SchnorrGroup grp = generate_schnorr_group(256, 96, rng);
  EXPECT_EQ(grp.p.bit_length(), 256u);
  EXPECT_EQ(grp.q.bit_length(), 96u);
  EXPECT_EQ((grp.p - BigInt(1)) % grp.q, BigInt(0));
  EXPECT_EQ(mod_exp(grp.g, grp.q, grp.p), BigInt(1));
  EXPECT_NE(grp.g, BigInt(1));
}

}  // namespace
}  // namespace sgk
