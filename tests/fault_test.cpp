// Unit tests for the fault subsystem (src/fault): deterministic plans,
// stateless per-copy wire verdicts, injector scheduling/bookkeeping, and the
// chaos invariants. Everything here must be a pure function of the seed —
// that is the property that makes a chaos failure reproducible from its
// report line alone.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "fault/injector.h"
#include "fault/invariants.h"
#include "fault/plan.h"
#include "sim/fault_adapter.h"
#include "sim/simulator.h"
#include "util/check.h"
#include "util/secure_bytes.h"

namespace sgk::fault {
namespace {

bool same_op(const ChurnOp& a, const ChurnOp& b) {
  return a.at_ms == b.at_ms && a.kind == b.kind && a.arg == b.arg;
}

TEST(FaultPlan, ScriptKeepsOrderAndRejectsTimeRegression) {
  FaultPlan plan(7, FaultRates{});
  plan.script(10.0, ChurnKind::kJoin, 1);
  plan.script(10.0, ChurnKind::kLeave, 2);  // equal times are legal
  plan.script(25.0, ChurnKind::kHeal);
  ASSERT_EQ(plan.ops().size(), 3u);
  EXPECT_EQ(plan.ops()[1].kind, ChurnKind::kLeave);
  EXPECT_EQ(plan.ops()[1].arg, 2u);
  EXPECT_THROW(plan.script(24.0, ChurnKind::kJoin), CheckFailure);
  EXPECT_THROW(plan.script(-1.0, ChurnKind::kJoin), CheckFailure);
}

TEST(FaultPlan, RandomizeIsDeterministicInSeed) {
  FaultPlan a(42, FaultRates::uniform(0.1));
  FaultPlan b(42, FaultRates::uniform(0.1));
  a.randomize(12, 50.0, 5.0, 40.0);
  b.randomize(12, 50.0, 5.0, 40.0);
  ASSERT_EQ(a.ops().size(), b.ops().size());
  for (std::size_t i = 0; i < a.ops().size(); ++i)
    EXPECT_TRUE(same_op(a.ops()[i], b.ops()[i])) << "op " << i;
}

TEST(FaultPlan, RandomizeDiffersAcrossSeeds) {
  FaultPlan a(1, FaultRates{});
  FaultPlan b(2, FaultRates{});
  a.randomize(12, 50.0, 5.0, 40.0);
  b.randomize(12, 50.0, 5.0, 40.0);
  bool differs = a.ops().size() != b.ops().size();
  for (std::size_t i = 0; !differs && i < a.ops().size(); ++i)
    differs = !same_op(a.ops()[i], b.ops()[i]);
  EXPECT_TRUE(differs);
}

TEST(FaultPlan, RandomizeRespectsGapsAndEndsHealed) {
  for (std::uint64_t seed = 0; seed < 32; ++seed) {
    FaultPlan plan(seed, FaultRates{});
    plan.randomize(10, 50.0, 5.0, 40.0);
    // Exactly the requested events, plus at most one trailing heal.
    ASSERT_GE(plan.ops().size(), 10u) << "seed " << seed;
    ASSERT_LE(plan.ops().size(), 11u) << "seed " << seed;
    EXPECT_EQ(plan.ops().front().at_ms, 50.0);
    bool partitioned = false;
    for (std::size_t i = 0; i < plan.ops().size(); ++i) {
      const ChurnOp& op = plan.ops()[i];
      if (i > 0) {
        const double gap = op.at_ms - plan.ops()[i - 1].at_ms;
        EXPECT_GE(gap, 5.0) << "seed " << seed << " op " << i;
        EXPECT_LE(gap, 40.0) << "seed " << seed << " op " << i;
      }
      if (op.kind == ChurnKind::kPartition) {
        // The generator never stacks partitions; it alternates with heals.
        EXPECT_FALSE(partitioned) << "seed " << seed << " op " << i;
        partitioned = true;
      }
      if (op.kind == ChurnKind::kHeal) partitioned = false;
    }
    // A schedule that leaves the network split could never converge on one
    // group key, so every plan must end healed.
    EXPECT_FALSE(partitioned) << "seed " << seed;
  }
}

TEST(FaultPlan, DaemonCopyVerdictIsStateless) {
  FaultPlan plan(99, FaultRates::uniform(0.5));
  const WireFault first = plan.daemon_copy_fault(1, 2, 77);
  // Interleave unrelated consultations; the (from, to, seq) verdict must not
  // move — hook call order differs between runs only in ways that may not
  // affect outcomes.
  for (int i = 0; i < 50; ++i) plan.daemon_copy_fault(i % 4, (i + 1) % 4, i);
  const WireFault again = plan.daemon_copy_fault(1, 2, 77);
  EXPECT_EQ(first.extra_delay_ms, again.extra_delay_ms);
  EXPECT_EQ(first.copies, again.copies);
}

TEST(FaultPlan, ZeroRatesAreClean) {
  FaultPlan plan(3, FaultRates{});
  for (std::uint64_t seq = 0; seq < 100; ++seq) {
    const WireFault f = plan.daemon_copy_fault(0, 1, seq);
    EXPECT_EQ(f.extra_delay_ms, 0.0);
    EXPECT_EQ(f.copies, 1);
  }
}

TEST(FaultPlan, FullRatesDropDelayAndDuplicateEveryCopy) {
  FaultRates rates = FaultRates::uniform(1.0);
  FaultPlan plan(3, rates);
  for (std::uint64_t seq = 0; seq < 100; ++seq) {
    const WireFault f = plan.daemon_copy_fault(0, 1, seq);
    // A drop is charged as a retransmission timeout, never silent loss.
    EXPECT_GE(f.extra_delay_ms, rates.retrans_ms);
    EXPECT_EQ(f.copies, 2);
  }
}

TEST(FaultPlan, CopiesNeverDropBelowOne) {
  for (std::uint64_t seed = 0; seed < 8; ++seed) {
    FaultPlan plan(seed, FaultRates::uniform(0.5));
    for (std::uint64_t seq = 0; seq < 64; ++seq)
      EXPECT_GE(plan.daemon_copy_fault(0, 1, seq).copies, 1);
  }
}

TEST(FaultPlan, RaisingDropRateDoesNotChangeDuplication) {
  // Each fault dimension consumes an independent slice of the decision hash,
  // so tuning one rate must not reshuffle the others' outcomes.
  FaultRates lo = FaultRates{};
  lo.duplicate = 0.5;
  FaultRates hi = lo;
  hi.drop = 1.0;
  FaultPlan a(11, lo), b(11, hi);
  for (std::uint64_t seq = 0; seq < 200; ++seq)
    EXPECT_EQ(a.daemon_copy_fault(2, 3, seq).copies,
              b.daemon_copy_fault(2, 3, seq).copies)
        << "seq " << seq;
}

TEST(FaultPlan, UnicastFaultIsDelayOnly) {
  FaultPlan plan(5, FaultRates::uniform(1.0));
  for (std::uint64_t nth = 0; nth < 100; ++nth) {
    const WireFault f = plan.unicast_fault(1, 2, nth);
    EXPECT_EQ(f.copies, 1);  // clients cannot dedupe; the plan never dups
    EXPECT_GT(f.extra_delay_ms, 0.0);
  }
}

/// Records every applied op with the virtual time it fired at.
class RecordingTarget final : public ChurnTarget {
 public:
  explicit RecordingTarget(const Simulator& sim) : sim_(sim) {}
  void apply(const ChurnOp& op) override {
    fired_.push_back({sim_.now(), op.kind, op.arg});
  }
  const std::vector<ChurnOp>& fired() const { return fired_; }

 private:
  const Simulator& sim_;
  std::vector<ChurnOp> fired_;
};

TEST(FaultInjector, ArmSchedulesEveryOpOnVirtualTime) {
  Simulator sim;
  SimFaultScheduler sched(sim);
  FaultPlan plan(1, FaultRates{});
  plan.script(5.0, ChurnKind::kJoin, 10);
  plan.script(12.0, ChurnKind::kLeave, 20);
  FaultInjector injector(std::move(plan));
  RecordingTarget target(sim);
  injector.arm(sched, target);
  sim.run();
  ASSERT_EQ(target.fired().size(), 2u);
  EXPECT_EQ(target.fired()[0].at_ms, 5.0);
  EXPECT_EQ(target.fired()[0].kind, ChurnKind::kJoin);
  EXPECT_EQ(target.fired()[0].arg, 10u);
  EXPECT_EQ(target.fired()[1].at_ms, 12.0);
  EXPECT_EQ(injector.stats().churn_applied, 2u);
}

TEST(FaultInjector, OpsAlreadyInThePastFireImmediately) {
  Simulator sim;
  SimFaultScheduler sched(sim);
  FaultPlan plan(1, FaultRates{});
  plan.script(5.0, ChurnKind::kRekey, 0);
  FaultInjector injector(std::move(plan));
  RecordingTarget target(sim);
  // Arm after the op's scheduled time has already passed.
  sim.after(20.0, [&] { injector.arm(sched, target); });
  sim.run();
  ASSERT_EQ(target.fired().size(), 1u);
  EXPECT_EQ(target.fired()[0].at_ms, 20.0);
}

TEST(FaultInjector, ArmingTwiceIsACheckFailure) {
  Simulator sim;
  SimFaultScheduler sched(sim);
  FaultInjector injector(FaultPlan(1, FaultRates{}));
  RecordingTarget target(sim);
  injector.arm(sched, target);
  EXPECT_THROW(injector.arm(sched, target), CheckFailure);
}

TEST(FaultInjector, StatsTallyWireVerdicts) {
  FaultInjector injector(FaultPlan(3, FaultRates::uniform(1.0)));
  for (std::uint64_t seq = 0; seq < 10; ++seq)
    injector.on_daemon_copy(0, 1, seq);
  injector.on_unicast(1, 2);
  injector.on_unicast(1, 2);
  const FaultInjector::Stats& s = injector.stats();
  EXPECT_EQ(s.daemon_copies, 10u);
  EXPECT_EQ(s.dropped, 10u);     // rate 1.0: every copy charged a retransmit
  EXPECT_EQ(s.duplicated, 10u);  // ... and duplicated
  EXPECT_EQ(s.unicasts, 2u);
  EXPECT_EQ(s.unicasts_delayed, 2u);
  EXPECT_EQ(s.churn_applied, 0u);
}

SecureBytes key_bytes(std::uint8_t fill) {
  Bytes b(16, fill);
  return SecureBytes(b);
}

KeyProbe probe(ProcessId member, int component, std::uint64_t epoch,
               const SecureBytes* kp) {
  KeyProbe p;
  p.member = member;
  p.component = component;
  p.has_key = kp != nullptr;
  p.epoch = epoch;
  p.key = kp;
  return p;
}

TEST(InvariantChecker, AcceptsMonotoneEpochs) {
  InvariantChecker c;
  c.observe_epoch(1, 1);
  c.observe_epoch(1, 1);  // re-install at the same epoch is legal
  c.observe_epoch(1, 2);
  c.observe_epoch(2, 7);
  EXPECT_TRUE(c.ok());
}

TEST(InvariantChecker, FlagsEpochRegression) {
  InvariantChecker c;
  c.observe_epoch(1, 3);
  c.observe_epoch(1, 2);
  ASSERT_FALSE(c.ok());
  EXPECT_NE(c.violations()[0].find("epoch regression"), std::string::npos);
}

TEST(InvariantChecker, ConvergedComponentPasses) {
  const SecureBytes k = key_bytes(0xAA);
  InvariantChecker c;
  c.check_convergence({probe(1, 0, 4, &k), probe(2, 0, 4, &k)});
  EXPECT_TRUE(c.ok());
}

TEST(InvariantChecker, FlagsMissingKey) {
  const SecureBytes k = key_bytes(0xAA);
  InvariantChecker c;
  c.check_convergence({probe(1, 0, 4, &k), probe(2, 0, 4, nullptr)});
  ASSERT_FALSE(c.ok());
  EXPECT_NE(c.violations()[0].find("has no key"), std::string::npos);
}

TEST(InvariantChecker, FlagsKeyDivergenceWithoutLeakingKeyMaterial) {
  const SecureBytes ka = key_bytes(0xAA);
  const SecureBytes kb = key_bytes(0xBB);
  InvariantChecker c;
  c.check_convergence({probe(1, 0, 4, &ka), probe(2, 0, 4, &kb)});
  ASSERT_FALSE(c.ok());
  const std::string& v = c.violations()[0];
  EXPECT_NE(v.find("key divergence"), std::string::npos);
  // Violation text carries ids and epochs only, never key bytes.
  EXPECT_EQ(v.find("aa"), std::string::npos);
  EXPECT_EQ(v.find("AA"), std::string::npos);
}

TEST(InvariantChecker, FlagsEpochDivergenceWithinComponent) {
  const SecureBytes k = key_bytes(0xAA);
  InvariantChecker c;
  c.check_convergence({probe(1, 0, 4, &k), probe(2, 0, 5, &k)});
  ASSERT_FALSE(c.ok());
  EXPECT_NE(c.violations()[0].find("epoch divergence"), std::string::npos);
}

TEST(InvariantChecker, SeparateComponentsMayHoldDifferentKeys) {
  const SecureBytes ka = key_bytes(0xAA);
  const SecureBytes kb = key_bytes(0xBB);
  InvariantChecker c;
  c.check_convergence({probe(1, 0, 4, &ka), probe(2, 1, 9, &kb)});
  EXPECT_TRUE(c.ok());
}

TEST(InvariantChecker, FlagTimeoutRecordsLivenessViolation) {
  InvariantChecker c;
  c.flag_timeout("still agreeing at deadline");
  ASSERT_FALSE(c.ok());
  EXPECT_NE(c.violations()[0].find("liveness"), std::string::npos);
}

}  // namespace
}  // namespace sgk::fault
