// Failure injection and cascaded-event tests: stale messages, malformed and
// unauthenticated traffic, and membership events arriving while a key
// agreement is still in flight.
#include <gtest/gtest.h>

#include "tests/protocol_harness.h"
#include "util/serde.h"

namespace sgk {
namespace {

using testing::ProtocolFixture;

class Robustness : public ::testing::TestWithParam<ProtocolKind> {};

TEST_P(Robustness, CascadedJoinsConverge) {
  // A second join is requested while the first join's key agreement is
  // still running; every member must converge on the final view's key.
  ProtocolFixture f(GetParam());
  f.grow_to(3);

  // First join: create the member, but interrupt the agreement midway.
  const MachineId m1 = static_cast<MachineId>(f.members.size() % 13);
  ProcessId p1 = f.net.create_process(m1);
  MemberConfig cfg;
  cfg.protocol = f.protocol_kind;
  cfg.seed = 42;
  f.members.push_back(std::make_unique<SecureGroupMember>(f.net, p1, f.pki, cfg));
  f.members.back()->join();
  // Run just past the view install (~3 ms) but not to quiescence.
  f.sim.run_until(f.sim.now() + 8.0);

  // Second join lands mid-agreement.
  const MachineId m2 = static_cast<MachineId>(f.members.size() % 13);
  ProcessId p2 = f.net.create_process(m2);
  f.members.push_back(std::make_unique<SecureGroupMember>(f.net, p2, f.pki, cfg));
  f.members.back()->join();
  f.sim.run();

  f.expect_agreement();
  EXPECT_EQ(f.alive()[0]->view()->members.size(), 5u);
}

TEST_P(Robustness, LeaveDuringJoinAgreementConverges) {
  ProtocolFixture f(GetParam());
  f.grow_to(4);
  const MachineId m1 = static_cast<MachineId>(f.members.size() % 13);
  ProcessId p1 = f.net.create_process(m1);
  MemberConfig cfg;
  cfg.protocol = f.protocol_kind;
  cfg.seed = 42;
  f.members.push_back(std::make_unique<SecureGroupMember>(f.net, p1, f.pki, cfg));
  f.members.back()->join();
  f.sim.run_until(f.sim.now() + 8.0);

  // A member leaves while the join's agreement is still in flight.
  f.members[1]->leave();
  f.members[1].reset();
  f.sim.run();

  f.expect_agreement();
  EXPECT_EQ(f.alive()[0]->view()->members.size(), 4u);
}

TEST_P(Robustness, PartitionDuringAgreementConverges) {
  ProtocolFixture f(GetParam(), lan_testbed(4));
  f.grow_to(4);
  f.add_member();  // member 4 on machine 0
  // Trigger a fresh join and partition mid-flight.
  const ProcessId p = f.net.create_process(1);
  MemberConfig cfg;
  cfg.protocol = f.protocol_kind;
  cfg.seed = 43;
  f.members.push_back(std::make_unique<SecureGroupMember>(f.net, p, f.pki, cfg));
  f.members.back()->join();
  f.sim.run_until(f.sim.now() + 8.0);
  f.net.partition({{0, 1}, {2, 3}});
  f.sim.run();
  // Each side independently converges.
  auto live = f.alive();
  for (SecureGroupMember* m : live) {
    ASSERT_TRUE(m->has_key()) << "member " << m->id();
  }
  // Heal and verify global convergence.
  f.net.heal();
  f.sim.run();
  f.expect_agreement();
}

/// An attacker process that joined the group (the GCS cannot stop it — it is
/// an insider at the membership layer but has no certified key) injects
/// malformed and unauthenticated protocol traffic.
class Attacker : public GroupClient {
 public:
  Attacker(SpreadNetwork& net, ProcessId self) : net_(net), self_(self) {}
  void on_view(const std::string&, const View& v, const ViewDelta&) override {
    view_ = v;
    // Garbage bytes.
    net_.multicast("secure-group", self_, Bytes{0xde, 0xad, 0xbe, 0xef});
    // A well-formed frame with a bogus signature, claiming the right epoch.
    Writer w;
    w.u8(1);             // protocol message
    w.u64(v.view_id);    // current epoch
    w.u32(self_);        // honest sender field (signature still fails)
    w.bytes(str_bytes("malicious body"));
    w.bytes(Bytes(128, 0x41));  // fake signature
    net_.multicast("secure-group", self_, w.take());
  }
  void on_message(const std::string&, ProcessId, const Bytes&) override {}

 private:
  SpreadNetwork& net_;
  ProcessId self_;
  View view_;
};

TEST_P(Robustness, UnauthenticatedInjectionIsIgnored) {
  ProtocolFixture f(GetParam());
  f.grow_to(3);
  // The attacker joins the group at the GCS layer.
  ProcessId evil = f.net.create_process(3);
  Attacker attacker(f.net, evil);
  f.net.attach(evil, &attacker);
  f.net.join_group("secure-group", evil);
  f.sim.run();

  // The honest members treat the attacker as a (silent) member: they re-key
  // around it. Key agreement among honest members must still converge for
  // every subsequent event despite the attacker's junk traffic.
  f.net.leave_group("secure-group", evil);
  f.sim.run();
  f.add_member();
  f.expect_agreement();
}

TEST_P(Robustness, StaleEpochMessagesAreDropped) {
  // Replaying an old protocol message (captured from a previous epoch) must
  // not disturb the current agreement.
  ProtocolFixture f(GetParam());
  f.grow_to(3);
  // Capture: run one more join to advance the epoch, then replay a frame
  // with the old epoch number.
  std::uint64_t old_epoch = f.members[0]->view()->view_id;
  f.add_member();
  Writer w;
  w.u8(1);
  w.u64(old_epoch);
  w.u32(f.members[0]->id());
  w.bytes(str_bytes("replayed"));
  w.bytes(Bytes(128, 0x42));
  f.net.multicast("secure-group", f.members[0]->id(), w.take());
  f.sim.run();
  f.add_member();
  f.expect_agreement();
}

TEST_P(Robustness, RapidChurnSequenceConverges) {
  ProtocolFixture f(GetParam());
  f.grow_to(4);
  // Fire a burst of membership operations with partial progress between
  // them: join, leave, join with only small slices of simulation time.
  MemberConfig cfg;
  cfg.protocol = f.protocol_kind;
  cfg.seed = 99;
  for (int round = 0; round < 3; ++round) {
    ProcessId p = f.net.create_process(static_cast<MachineId>(round % 13));
    f.members.push_back(std::make_unique<SecureGroupMember>(f.net, p, f.pki, cfg));
    f.members.back()->join();
    f.sim.run_until(f.sim.now() + 4.0);
    // A random established member leaves immediately.
    for (std::size_t i = 0; i < f.members.size(); ++i) {
      if (f.members[i]) {
        f.members[i]->leave();
        f.members[i].reset();
        break;
      }
    }
    f.sim.run_until(f.sim.now() + 4.0);
  }
  f.sim.run();
  f.expect_agreement();
}

INSTANTIATE_TEST_SUITE_P(
    Protocols, Robustness, ::testing::ValuesIn(sgk::testing::all_protocols()),
    [](const ::testing::TestParamInfo<ProtocolKind>& info) {
      return std::string(to_string(info.param));
    });

}  // namespace
}  // namespace sgk
