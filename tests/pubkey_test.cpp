// Diffie-Hellman and RSA tests.
#include <gtest/gtest.h>

#include "bignum/modmath.h"
#include "bignum/montgomery.h"
#include "crypto/dh.h"
#include "crypto/drbg.h"
#include "crypto/rsa.h"

namespace sgk {
namespace {

TEST(DhGroup, ParametersAreWellFormed) {
  for (DhBits bits : {DhBits::k512, DhBits::k1024}) {
    const DhGroup& grp = dh_group(bits);
    EXPECT_EQ(grp.p_bits(), bits == DhBits::k512 ? 512u : 1024u);
    EXPECT_EQ(grp.q().bit_length(), 160u);
    EXPECT_EQ((grp.p() - BigInt(1)) % grp.q(), BigInt(0));
    EXPECT_EQ(grp.exp(grp.g(), grp.q()), BigInt(1));
  }
}

TEST(DhGroup, TwoPartyAgreement) {
  const DhGroup& grp = dh_group(DhBits::k512);
  Drbg rng(21, "dh");
  BigInt a = grp.random_exponent(rng);
  BigInt b = grp.random_exponent(rng);
  BigInt pub_a = grp.exp_g(a);
  BigInt pub_b = grp.exp_g(b);
  EXPECT_EQ(grp.exp(pub_b, a), grp.exp(pub_a, b));
}

TEST(DhGroup, RandomExponentInRange) {
  const DhGroup& grp = dh_group(DhBits::k512);
  Drbg rng(22, "dh-exp");
  for (int i = 0; i < 50; ++i) {
    BigInt e = grp.random_exponent(rng);
    EXPECT_FALSE(e.is_zero());
    EXPECT_LT(e, grp.q());
  }
}

TEST(DhGroup, ToExponentReducesAndAvoidsZero) {
  const DhGroup& grp = dh_group(DhBits::k512);
  EXPECT_EQ(grp.to_exponent(grp.q() + BigInt(5)), BigInt(5));
  EXPECT_EQ(grp.to_exponent(grp.q()), BigInt(1));  // zero maps to one
  EXPECT_EQ(grp.to_exponent(BigInt(7)), BigInt(7));
}

TEST(DhGroup, SubgroupClosure) {
  // Elements produced by exp_g stay in the order-q subgroup.
  const DhGroup& grp = dh_group(DhBits::k512);
  Drbg rng(23, "dh-closure");
  BigInt e = grp.random_exponent(rng);
  BigInt elem = grp.exp_g(e);
  EXPECT_EQ(grp.exp(elem, grp.q()), BigInt(1));
}

TEST(Pkcs1, EncodingShape) {
  Bytes em = pkcs1_encode_sha256(str_bytes("msg"), 128);
  EXPECT_EQ(em.size(), 128u);
  EXPECT_EQ(em[0], 0x00);
  EXPECT_EQ(em[1], 0x01);
  // 0xff padding until the zero separator.
  EXPECT_EQ(em[2], 0xff);
  EXPECT_THROW(pkcs1_encode_sha256(str_bytes("msg"), 32), std::invalid_argument);
}

TEST(Rsa, TestKeySignVerify) {
  const RsaPrivateKey& key = RsaPrivateKey::test_key(0);
  Bytes msg = str_bytes("group key agreement protocol message");
  Bytes sig = key.sign(msg);
  EXPECT_EQ(sig.size(), 128u);
  EXPECT_TRUE(key.public_key().verify(msg, sig));
}

TEST(Rsa, VerifyRejectsWrongMessage) {
  const RsaPrivateKey& key = RsaPrivateKey::test_key(0);
  Bytes sig = key.sign(str_bytes("message A"));
  EXPECT_FALSE(key.public_key().verify(str_bytes("message B"), sig));
}

TEST(Rsa, VerifyRejectsTamperedSignature) {
  const RsaPrivateKey& key = RsaPrivateKey::test_key(1);
  Bytes msg = str_bytes("sign me");
  Bytes sig = key.sign(msg);
  sig[10] ^= 1;
  EXPECT_FALSE(key.public_key().verify(msg, sig));
}

TEST(Rsa, VerifyRejectsWrongKey) {
  Bytes msg = str_bytes("cross-key check");
  Bytes sig = RsaPrivateKey::test_key(0).sign(msg);
  EXPECT_FALSE(RsaPrivateKey::test_key(1).public_key().verify(msg, sig));
}

TEST(Rsa, VerifyRejectsBadSizes) {
  const RsaPrivateKey& key = RsaPrivateKey::test_key(2);
  Bytes msg = str_bytes("size checks");
  EXPECT_FALSE(key.public_key().verify(msg, Bytes(127, 0)));
  EXPECT_FALSE(key.public_key().verify(msg, Bytes(129, 0)));
  // A signature value >= n must be rejected.
  Bytes huge = key.public_key().n().to_bytes_padded(128);
  EXPECT_FALSE(key.public_key().verify(msg, huge));
}

TEST(Rsa, AllTestKeysDistinctAndValid) {
  Bytes msg = str_bytes("distinct");
  for (int i = 0; i < 4; ++i) {
    const RsaPrivateKey& key = RsaPrivateKey::test_key(i);
    EXPECT_EQ(key.public_key().n().bit_length(), 1024u);
    EXPECT_EQ(key.public_key().e(), 3u);
    EXPECT_TRUE(key.public_key().verify(msg, key.sign(msg)));
    for (int j = 0; j < i; ++j)
      EXPECT_NE(key.public_key().n(), RsaPrivateKey::test_key(j).public_key().n());
  }
}

TEST(Rsa, CrtMatchesPlainExponentiation) {
  const RsaPrivateKey& key = RsaPrivateKey::test_key(3);
  Bytes msg = str_bytes("crt cross-check");
  Bytes sig = key.sign(msg);
  // Recompute without CRT: s = m^d mod n.
  BigInt m = BigInt::from_bytes(pkcs1_encode_sha256(msg, 128));
  // d is private; verify instead via the public operation round-trip.
  BigInt s = BigInt::from_bytes(sig);
  MontgomeryCtx ctx(key.public_key().n());
  EXPECT_EQ(ctx.exp(s, BigInt(3)), m);
}

TEST(Rsa, GenerateSmallKeyWorks) {
  Drbg rng(31, "rsa-gen");
  RsaPrivateKey key = RsaPrivateKey::generate(512, rng);
  EXPECT_EQ(key.public_key().n().bit_length(), 512u);
  Bytes msg = str_bytes("freshly generated key");
  EXPECT_TRUE(key.public_key().verify(msg, key.sign(msg)));
}

TEST(Rsa, GenerateRespectsCustomExponent) {
  Drbg rng(32, "rsa-gen-e");
  RsaPrivateKey key = RsaPrivateKey::generate(512, rng, 65537);
  EXPECT_EQ(key.public_key().e(), 65537u);
  Bytes msg = str_bytes("e = 65537");
  EXPECT_TRUE(key.public_key().verify(msg, key.sign(msg)));
}

}  // namespace
}  // namespace sgk
