// Coalescing rekey pipeline (gcs/rekey_batcher.h) and its robustness
// envelope: adaptive window growth/shrink under the latency-budget cap,
// bounded queues with shed-oldest overload verdicts, degraded-mode health
// transitions, exponential recovery backoff determinism, and the
// batched-vs-unbatched equivalence of multi-group storm runs (same
// membership outcome, fewer keys, byte-identical reports at any thread
// count).
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "gcs/rekey_batcher.h"
#include "gcs/secure_group.h"
#include "harness/chaos.h"
#include "server/server.h"
#include "sim/simulator.h"

namespace sgk {
namespace {

struct FlushLog {
  std::vector<double> at_ms;
  std::vector<bool> forced;
};

BatchConfig small_config() {
  BatchConfig cfg;
  cfg.enabled = true;
  cfg.min_window_ms = 10.0;
  cfg.max_window_ms = 80.0;
  cfg.latency_budget_ms = 0.0;  // no budget: window capped by max only
  return cfg;
}

TEST(RekeyBatcher, CoalescesEventsWithinWindow) {
  Simulator sim;
  FlushLog log;
  RekeyBatcher batcher(sim, small_config(), [&](const std::string&, bool f) {
    log.at_ms.push_back(sim.now());
    log.forced.push_back(f);
  });

  std::vector<OverloadVerdict> verdicts;
  for (double t : {0.0, 3.0, 6.0})
    sim.at(t, [&] { verdicts.push_back(batcher.note_event("g", BatchEventKind::kJoin)); });
  sim.run_until(100.0);

  ASSERT_EQ(log.at_ms.size(), 1u);
  EXPECT_DOUBLE_EQ(log.at_ms[0], 10.0);  // window opened by the first event
  EXPECT_FALSE(log.forced[0]);
  ASSERT_EQ(verdicts.size(), 3u);
  EXPECT_EQ(verdicts[0], OverloadVerdict::kAdmitted);
  EXPECT_EQ(verdicts[1], OverloadVerdict::kCoalesced);
  EXPECT_EQ(verdicts[2], OverloadVerdict::kCoalesced);

  const BatchStats stats = batcher.stats("g");
  EXPECT_EQ(stats.events, 3u);
  EXPECT_EQ(stats.flushes, 1u);
  EXPECT_EQ(stats.coalesced, 2u);
  EXPECT_EQ(stats.max_batch, 3u);
  EXPECT_EQ(batcher.queue_depth("g"), 0u);
}

TEST(RekeyBatcher, RefreshEventForcesTheFlush) {
  Simulator sim;
  FlushLog log;
  RekeyBatcher batcher(sim, small_config(), [&](const std::string&, bool f) {
    log.at_ms.push_back(sim.now());
    log.forced.push_back(f);
  });
  sim.at(0.0, [&] { batcher.note_event("g", BatchEventKind::kJoin); });
  sim.at(2.0, [&] { batcher.note_event("g", BatchEventKind::kRefresh); });
  sim.run_until(50.0);
  ASSERT_EQ(log.forced.size(), 1u);
  EXPECT_TRUE(log.forced[0]);
}

TEST(RekeyBatcher, ZeroWindowFlushesEveryEvent) {
  Simulator sim;
  BatchConfig cfg = small_config();
  cfg.min_window_ms = 0.0;
  cfg.max_window_ms = 0.0;
  FlushLog log;
  RekeyBatcher batcher(sim, cfg, [&](const std::string&, bool) {
    log.at_ms.push_back(sim.now());
  });
  sim.at(1.0, [&] { batcher.note_event("g", BatchEventKind::kJoin); });
  sim.at(2.0, [&] { batcher.note_event("g", BatchEventKind::kLeave); });
  sim.run_until(10.0);
  ASSERT_EQ(log.at_ms.size(), 2u);
  EXPECT_DOUBLE_EQ(log.at_ms[0], 1.0);
  EXPECT_DOUBLE_EQ(log.at_ms[1], 2.0);
  EXPECT_EQ(batcher.stats("g").flushes, 2u);
}

TEST(RekeyBatcher, WindowGrowsUnderSustainedArrivalAndShrinksWhenIdle) {
  Simulator sim;
  BatchConfig cfg;
  cfg.enabled = true;
  cfg.min_window_ms = 2.0;
  cfg.max_window_ms = 64.0;
  cfg.latency_budget_ms = 0.0;
  cfg.grow_threshold = 3;
  RekeyBatcher batcher(sim, cfg, [](const std::string&, bool) {});

  // Three bursts of 3 events each, far enough apart that every burst lands
  // in its own window: each flush meets grow_threshold, doubling the window
  // 2 -> 4 -> 8 -> 16.
  for (int burst = 0; burst < 3; ++burst) {
    const double base = burst * 200.0;
    for (double dt : {0.0, 0.5, 1.0})
      sim.at(base + dt, [&] { batcher.note_event("g", BatchEventKind::kJoin); });
  }
  sim.run_until(500.0);
  EXPECT_DOUBLE_EQ(batcher.window_ms("g"), 16.0);

  // Two lone events: each flush carries batch size 1, halving 16 -> 8 -> 4.
  sim.at(600.0, [&] { batcher.note_event("g", BatchEventKind::kLeave); });
  sim.at(800.0, [&] { batcher.note_event("g", BatchEventKind::kLeave); });
  sim.run_until(1000.0);
  EXPECT_DOUBLE_EQ(batcher.window_ms("g"), 4.0);
}

TEST(RekeyBatcher, LatencyBudgetCapsWindowGrowth) {
  Simulator sim;
  BatchConfig cfg;
  cfg.enabled = true;
  cfg.min_window_ms = 8.0;
  cfg.max_window_ms = 256.0;
  cfg.latency_budget_ms = 40.0;
  cfg.budget_window_fraction = 0.5;  // hard cap: 20ms, despite max_window
  cfg.grow_threshold = 2;
  RekeyBatcher batcher(sim, cfg, [](const std::string&, bool) {});
  for (int burst = 0; burst < 5; ++burst) {
    const double base = burst * 300.0;
    sim.at(base, [&] { batcher.note_event("g", BatchEventKind::kJoin); });
    sim.at(base + 1.0, [&] { batcher.note_event("g", BatchEventKind::kJoin); });
  }
  sim.run_until(2000.0);
  EXPECT_DOUBLE_EQ(batcher.window_ms("g"), 20.0);
}

TEST(RekeyBatcher, ShedsOldestAtCapacityWithoutLosingTheFlush) {
  Simulator sim;
  BatchConfig cfg = small_config();
  cfg.queue_capacity = 2;
  FlushLog log;
  RekeyBatcher batcher(sim, cfg, [&](const std::string&, bool) {
    log.at_ms.push_back(sim.now());
  });
  std::vector<OverloadVerdict> verdicts;
  for (double t : {0.0, 1.0, 2.0, 3.0})
    sim.at(t, [&] { verdicts.push_back(batcher.note_event("g", BatchEventKind::kJoin)); });
  sim.run_until(50.0);

  ASSERT_EQ(verdicts.size(), 4u);
  EXPECT_EQ(verdicts[0], OverloadVerdict::kAdmitted);
  EXPECT_EQ(verdicts[1], OverloadVerdict::kCoalesced);
  EXPECT_EQ(verdicts[2], OverloadVerdict::kShedOldest);
  EXPECT_EQ(verdicts[3], OverloadVerdict::kShedOldest);
  const BatchStats stats = batcher.stats("g");
  EXPECT_EQ(stats.shed, 2u);
  EXPECT_EQ(stats.flushes, 1u);     // the window still flushed
  EXPECT_EQ(stats.max_batch, 2u);   // bounded by capacity
}

TEST(RekeyBatcher, KeyInstallCompletesEveryCoveredFlush) {
  Simulator sim;
  BatchConfig cfg = small_config();
  cfg.min_window_ms = 0.0;
  cfg.max_window_ms = 0.0;
  RekeyBatcher batcher(sim, cfg, [](const std::string&, bool) {});
  sim.at(1.0, [&] { batcher.note_event("g", BatchEventKind::kJoin); });
  sim.at(2.0, [&] { batcher.note_event("g", BatchEventKind::kJoin); });
  sim.run_until(5.0);

  // Two flushes are outstanding; the cascaded agreement keys once, covering
  // both — every event must receive a latency sample.
  batcher.note_key_installed("g", 10.0);
  const BatchStats stats = batcher.stats("g");
  ASSERT_EQ(stats.event_to_key_ms.size(), 2u);
  EXPECT_DOUBLE_EQ(stats.event_to_key_ms[0], 9.0);
  EXPECT_DOUBLE_EQ(stats.event_to_key_ms[1], 8.0);
}

TEST(RekeyBatcher, DegradedModePinsWidestWindowAndRecovers) {
  Simulator sim;
  BatchConfig cfg;
  cfg.enabled = true;
  cfg.min_window_ms = 1.0;
  cfg.max_window_ms = 32.0;
  cfg.latency_budget_ms = 40.0;
  cfg.budget_window_fraction = 1.0;
  cfg.degrade_after_misses = 2;
  cfg.recover_after_hits = 2;
  RekeyBatcher batcher(sim, cfg, [](const std::string&, bool) {});
  std::vector<GroupHealth> transitions;
  batcher.set_health_listener(
      [&](const std::string&, GroupHealth h, SimTime) { transitions.push_back(h); });

  // Two budget misses in a row: flush + install 50ms after arrival.
  sim.at(0.0, [&] { batcher.note_event("g", BatchEventKind::kJoin); });
  sim.run_until(5.0);
  batcher.note_key_installed("g", 50.0);
  sim.at(60.0, [&] { batcher.note_event("g", BatchEventKind::kJoin); });
  sim.run_until(65.0);
  batcher.note_key_installed("g", 105.0);

  EXPECT_EQ(batcher.health("g"), GroupHealth::kDegraded);
  EXPECT_DOUBLE_EQ(batcher.window_ms("g"), 32.0);  // pinned widest
  ASSERT_EQ(transitions.size(), 1u);
  EXPECT_EQ(transitions[0], GroupHealth::kDegraded);

  // Degraded windows open at max_window; two fast installs recover.
  sim.at(110.0, [&] { batcher.note_event("g", BatchEventKind::kJoin); });
  sim.run_until(145.0);  // flush at 142 (110 + 32)
  batcher.note_key_installed("g", 143.0);
  sim.at(150.0, [&] { batcher.note_event("g", BatchEventKind::kJoin); });
  sim.run_until(185.0);
  batcher.note_key_installed("g", 183.0);

  EXPECT_EQ(batcher.health("g"), GroupHealth::kNormal);
  ASSERT_EQ(transitions.size(), 2u);
  EXPECT_EQ(transitions[1], GroupHealth::kNormal);
  const BatchStats stats = batcher.stats("g");
  EXPECT_EQ(stats.budget_misses, 2u);
  EXPECT_EQ(stats.degraded_entries, 1u);
  EXPECT_EQ(stats.degraded_exits, 1u);
  // Recovery re-enters adaptation from the top of the allowed range.
  EXPECT_DOUBLE_EQ(batcher.window_ms("g"), 32.0);
}

// ---- exponential recovery backoff (gcs/secure_group.h) --------------------

TEST(RecoveryBackoff, FirstAttemptKeepsTheLegacyDelayExactly) {
  // Attempt 0 must stay jitter-free and uncapped-from-below so healthy-path
  // timing (and every committed baseline) is unchanged by the backoff.
  EXPECT_DOUBLE_EQ(recovery_backoff_ms(120.0, 50.0, 0, 7, 3, 1), 120.0);
  EXPECT_DOUBLE_EQ(recovery_backoff_ms(5000.0, 2000.0, 0, 7, 3, 1), 5000.0);
}

TEST(RecoveryBackoff, DoublesDeterministicallyWithBoundedJitter) {
  const double a1 = recovery_backoff_ms(100.0, 2000.0, 1, 42, 5, 9);
  EXPECT_GE(a1, 200.0);
  EXPECT_LE(a1, 250.0);  // 25% jitter ceiling
  EXPECT_DOUBLE_EQ(a1, recovery_backoff_ms(100.0, 2000.0, 1, 42, 5, 9));

  const double a3 = recovery_backoff_ms(100.0, 2000.0, 3, 42, 5, 9);
  EXPECT_GE(a3, 800.0);
  EXPECT_LE(a3, 1000.0);

  const double a10 = recovery_backoff_ms(100.0, 2000.0, 10, 42, 5, 9);
  EXPECT_GE(a10, 2000.0);  // capped
  EXPECT_LE(a10, 2500.0);
}

TEST(RecoveryBackoff, JitterIsSeededPerMemberAndEpoch) {
  const double base = recovery_backoff_ms(100.0, 2000.0, 2, 42, 5, 9);
  EXPECT_NE(base, recovery_backoff_ms(100.0, 2000.0, 2, 43, 5, 9));
  EXPECT_NE(base, recovery_backoff_ms(100.0, 2000.0, 2, 42, 6, 9));
  EXPECT_NE(base, recovery_backoff_ms(100.0, 2000.0, 2, 42, 5, 10));
}

// ---- storm runs through the multi-group server ----------------------------

server::ServerConfig storm_config(bool batched) {
  server::ServerConfig cfg;
  cfg.groups = 5;  // one per protocol in the default round-robin mix
  cfg.members_per_group = 4;
  cfg.churn_events = 12;
  cfg.seed = 7;
  cfg.storm = server::StormKind::kBursty;
  cfg.burst_size = 4;
  cfg.batch.enabled = true;
  cfg.batch.min_window_ms = batched ? 4.0 : 0.0;
  cfg.batch.max_window_ms = batched ? 256.0 : 0.0;
  cfg.batch.latency_budget_ms = 3000.0;
  return cfg;
}

TEST(ChurnStorm, BatchedBurstyStormConvergesEveryProtocol) {
  server::GroupServer srv(storm_config(/*batched=*/true));
  const server::ServerResult r = srv.run();
  for (const auto& g : r.groups)
    EXPECT_TRUE(g.converged) << "group g" << g.id << " (" << to_string(g.protocol) << ")";
  EXPECT_EQ(r.groups_converged, r.groups_hosted);
  EXPECT_GT(r.batch_events, 0u);
  EXPECT_GT(r.batch_flushes, 0u);
  // Coalescing must actually happen under 1ms-apart bursts.
  EXPECT_LT(r.batch_flushes, r.batch_events);
  EXPECT_GT(r.batch_event_to_key_p99_ms, 0.0);
}

TEST(ChurnStorm, BatchedMatchesUnbatchedMembershipOutcome) {
  server::GroupServer unbatched(storm_config(/*batched=*/false));
  server::GroupServer batched(storm_config(/*batched=*/true));
  const server::ServerResult ru = unbatched.run();
  const server::ServerResult rb = batched.run();
  EXPECT_EQ(ru.groups_converged, ru.groups_hosted);
  EXPECT_EQ(rb.groups_converged, rb.groups_hosted);
  // Batching changes when rekeys happen, never which membership changes
  // take effect: both runs apply the identical churn plan and must end with
  // the same population per group, using no more keys batched than not.
  ASSERT_EQ(ru.groups.size(), rb.groups.size());
  for (std::size_t i = 0; i < ru.groups.size(); ++i) {
    EXPECT_EQ(ru.groups[i].final_size, rb.groups[i].final_size) << "g" << i;
    EXPECT_EQ(ru.groups[i].events_applied, rb.groups[i].events_applied) << "g" << i;
  }
  EXPECT_EQ(ru.events_applied, rb.events_applied);
  EXPECT_LE(rb.rekeys_per_event, ru.rekeys_per_event);
}

TEST(ChurnStorm, OverloadSheddingNeverWedgesAGroup) {
  server::ServerConfig cfg = storm_config(/*batched=*/true);
  cfg.batch.queue_capacity = 1;  // every coalesce-eligible event sheds
  server::GroupServer srv(cfg);
  const server::ServerResult r = srv.run();
  EXPECT_GT(r.batch_shed, 0u);
  EXPECT_EQ(r.groups_converged, r.groups_hosted);
}

TEST(ChurnStorm, ImpossibleBudgetEntersDegradedModeAndStillConverges) {
  server::ServerConfig cfg = storm_config(/*batched=*/true);
  cfg.batch.latency_budget_ms = 0.5;  // no agreement can meet this
  cfg.batch.degrade_after_misses = 2;
  server::GroupServer srv(cfg);
  const server::ServerResult r = srv.run();
  EXPECT_GT(r.batch_budget_misses, 0u);
  EXPECT_GT(r.degraded_entries, 0u);
  EXPECT_GT(r.groups_degraded, 0u);
  EXPECT_EQ(r.groups_converged, r.groups_hosted);
}

TEST(ChurnStorm, BatchedReportIsByteIdenticalAcrossThreadCounts) {
  server::ServerConfig cfg = storm_config(/*batched=*/true);
  cfg.threads = 1;
  server::GroupServer one(cfg);
  cfg.threads = 3;
  server::GroupServer three(cfg);
  const std::string a = one.run().to_json(true).dump(2);
  const std::string b = three.run().to_json(true).dump(2);
  EXPECT_EQ(a, b);
}

TEST(ChurnStorm, BatchSectionAppearsOnlyWhenThePipelineRan) {
  server::ServerConfig off = storm_config(/*batched=*/true);
  off.batch = BatchConfig{};  // disabled: legacy per-event rekey path
  server::GroupServer legacy(off);
  const obs::Json without = legacy.run().to_json(false);
  EXPECT_EQ(without.find("batch"), nullptr);

  server::GroupServer srv(storm_config(/*batched=*/true));
  const obs::Json with = srv.run().to_json(false);
  ASSERT_NE(with.find("batch"), nullptr);
  EXPECT_NE(with.find("batch")->find("rekeys_per_event"), nullptr);
}

TEST(ChurnStorm, ChaosHarnessRunsBatchedDeployments) {
  ChaosConfig cfg;
  cfg.seed = 3;
  cfg.events = 4;
  cfg.initial_size = 5;
  cfg.batch.enabled = true;
  cfg.batch.min_window_ms = 4.0;
  const ChaosResult r = run_chaos(cfg);
  EXPECT_TRUE(r.converged) << (r.violations.empty() ? "" : r.violations[0]);
}

}  // namespace
}  // namespace sgk
