// Cross-protocol property tests: all five key agreement protocols must
// produce identical keys at every member across joins, leaves, partitions
// and merges, with fresh keys after every membership event.
#include <gtest/gtest.h>

#include <set>

#include "tests/protocol_harness.h"

namespace sgk {
namespace {

using testing::ProtocolFixture;

class AllProtocols : public ::testing::TestWithParam<ProtocolKind> {};

TEST_P(AllProtocols, SingleMemberEstablishesKey) {
  ProtocolFixture f(GetParam());
  f.add_member();
  ASSERT_TRUE(f.members[0]->has_key());
  EXPECT_FALSE(f.members[0]->key().empty());
}

TEST_P(AllProtocols, TwoMembersAgree) {
  ProtocolFixture f(GetParam());
  f.grow_to(2);
  f.expect_agreement();
}

TEST_P(AllProtocols, SequentialJoinsAgreeAtEverySize) {
  ProtocolFixture f(GetParam());
  for (std::size_t n = 1; n <= 8; ++n) {
    f.add_member();
    f.expect_agreement();
  }
}

TEST_P(AllProtocols, KeyChangesOnJoin) {
  ProtocolFixture f(GetParam());
  f.grow_to(3);
  const std::string before = f.current_fingerprint();
  f.add_member();
  f.expect_agreement();
  EXPECT_NE(f.current_fingerprint(), before)
      << "join must produce a fresh key (backward secrecy)";
}

TEST_P(AllProtocols, KeyChangesOnLeave) {
  ProtocolFixture f(GetParam());
  f.grow_to(4);
  const std::string before = f.current_fingerprint();
  f.remove_member(2);
  f.expect_agreement();
  EXPECT_NE(f.current_fingerprint(), before)
      << "leave must produce a fresh key (forward secrecy)";
}

TEST_P(AllProtocols, DepartedMemberKeyIsStale) {
  ProtocolFixture f(GetParam());
  f.grow_to(4);
  // Keep the leaver's last key around.
  MemberConfig cfg;
  const std::string leaver_fp = f.members[1]->key_fingerprint();
  f.members[1]->leave();
  auto leaver = std::move(f.members[1]);
  f.members[1].reset();
  f.sim.run();
  f.expect_agreement();
  EXPECT_NE(f.current_fingerprint(), leaver_fp);
  // The departed member never learns the new key.
  EXPECT_EQ(leaver->key_fingerprint(), leaver_fp);
}

TEST_P(AllProtocols, EveryMemberCanLeaveInTurn) {
  ProtocolFixture f(GetParam());
  f.grow_to(6);
  // Remove from the middle, front, and back; agreement must hold throughout.
  for (std::size_t idx : {2u, 0u, 5u}) {
    f.remove_member(idx);
    f.expect_agreement();
  }
}

TEST_P(AllProtocols, ShrinkToSingleton) {
  ProtocolFixture f(GetParam());
  f.grow_to(4);
  f.remove_member(0);
  f.expect_agreement();
  f.remove_member(1);
  f.expect_agreement();
  f.remove_member(2);
  ASSERT_TRUE(f.members[3]->has_key());
}

TEST_P(AllProtocols, KeysAreFreshAcrossManyEvents) {
  ProtocolFixture f(GetParam());
  std::set<std::string> seen;
  f.grow_to(3);
  seen.insert(f.current_fingerprint());
  for (int round = 0; round < 3; ++round) {
    f.add_member();
    EXPECT_TRUE(seen.insert(f.current_fingerprint()).second)
        << "key reused after a join";
    f.remove_member(f.members.size() - 2);
    EXPECT_TRUE(seen.insert(f.current_fingerprint()).second)
        << "key reused after a leave";
  }
}

TEST_P(AllProtocols, PartitionBothSidesRekey) {
  ProtocolFixture f(GetParam(), lan_testbed(4));
  // Place two members per machine-pair so the partition splits 2/2.
  f.grow_to(4);
  const std::string before = f.current_fingerprint();
  f.net.partition({{0, 1}, {2, 3}});
  f.sim.run();
  // Members 0,1 (machines 0,1) and 2,3 (machines 2,3).
  auto fp_of = [&](std::size_t i) { return f.members[i]->key_fingerprint(); };
  EXPECT_EQ(fp_of(0), fp_of(1));
  EXPECT_EQ(fp_of(2), fp_of(3));
  EXPECT_NE(fp_of(0), fp_of(2)) << "partitioned sides must diverge";
  EXPECT_NE(fp_of(0), before);
  EXPECT_NE(fp_of(2), before);
}

TEST_P(AllProtocols, MergeAfterPartitionReunifies) {
  ProtocolFixture f(GetParam(), lan_testbed(4));
  f.grow_to(4);
  f.net.partition({{0, 1}, {2, 3}});
  f.sim.run();
  f.net.heal();
  f.sim.run();
  f.expect_agreement();
  EXPECT_EQ(f.members[0]->view()->members.size(), 4u);
}

TEST_P(AllProtocols, UnevenPartitionAndMerge) {
  ProtocolFixture f(GetParam(), lan_testbed(5));
  f.grow_to(5);
  f.net.partition({{0}, {1, 2, 3, 4}});
  f.sim.run();
  auto fp_of = [&](std::size_t i) { return f.members[i]->key_fingerprint(); };
  EXPECT_EQ(fp_of(1), fp_of(4));
  EXPECT_NE(fp_of(0), fp_of(1));
  f.net.heal();
  f.sim.run();
  f.expect_agreement();
}

TEST_P(AllProtocols, ThreeWayPartitionAndMerge) {
  ProtocolFixture f(GetParam(), lan_testbed(6));
  f.grow_to(6);
  f.net.partition({{0, 1}, {2, 3}, {4, 5}});
  f.sim.run();
  auto fp_of = [&](std::size_t i) { return f.members[i]->key_fingerprint(); };
  EXPECT_EQ(fp_of(0), fp_of(1));
  EXPECT_EQ(fp_of(2), fp_of(3));
  EXPECT_EQ(fp_of(4), fp_of(5));
  EXPECT_NE(fp_of(0), fp_of(2));
  EXPECT_NE(fp_of(2), fp_of(4));
  f.net.heal();
  f.sim.run();
  f.expect_agreement();
}

TEST_P(AllProtocols, DataFlowsEncryptedAfterAgreement) {
  ProtocolFixture f(GetParam());
  f.grow_to(3);
  std::vector<std::pair<ProcessId, Bytes>> received;
  f.members[1]->set_data_listener([&](ProcessId sender, const Bytes& pt) {
    received.emplace_back(sender, pt);
  });
  f.members[0]->send_data(str_bytes("attack at dawn"));
  f.sim.run();
  ASSERT_EQ(received.size(), 1u);
  EXPECT_EQ(received[0].first, f.members[0]->id());
  EXPECT_EQ(received[0].second, str_bytes("attack at dawn"));
}

TEST_P(AllProtocols, SealOpenRoundTripAndTamperRejection) {
  ProtocolFixture f(GetParam());
  f.grow_to(2);
  Bytes sealed = f.members[0]->seal(str_bytes("secret payload"));
  auto opened = f.members[1]->open(sealed);
  ASSERT_TRUE(opened.has_value());
  EXPECT_EQ(*opened, str_bytes("secret payload"));
  sealed[sealed.size() / 2] ^= 1;
  EXPECT_FALSE(f.members[1]->open(sealed).has_value());
}

TEST_P(AllProtocols, WorksOn1024BitGroup) {
  ProtocolFixture f(GetParam(), lan_testbed(), DhBits::k1024);
  f.grow_to(3);
  f.expect_agreement();
  f.remove_member(1);
  f.expect_agreement();
}

TEST_P(AllProtocols, WorksOnWanTopology) {
  ProtocolFixture f(GetParam(), wan_testbed());
  f.grow_to(4);
  f.expect_agreement();
  f.remove_member(2);
  f.expect_agreement();
}

TEST_P(AllProtocols, KeyEstablishmentTakesNonzeroTime) {
  ProtocolFixture f(GetParam());
  f.grow_to(2);
  SimTime start = f.sim.now();
  f.add_member();
  for (SecureGroupMember* m : f.alive()) EXPECT_GT(m->key_time(), start);
}

INSTANTIATE_TEST_SUITE_P(
    Protocols, AllProtocols, ::testing::ValuesIn(sgk::testing::all_protocols()),
    [](const ::testing::TestParamInfo<ProtocolKind>& info) {
      return std::string(to_string(info.param));
    });

TEST(NullProtocol, MeasuresMembershipOnly) {
  ProtocolFixture f(ProtocolKind::kNone);
  f.grow_to(3);
  f.expect_agreement();
  // No cryptographic operations at all.
  for (SecureGroupMember* m : f.alive()) {
    EXPECT_EQ(m->counters().exp_total(), 0u);
    EXPECT_EQ(m->counters().sign_ops, 0u);
  }
}

}  // namespace
}  // namespace sgk
