// CI perf-trajectory gate: compares a BENCH_*.json produced by a bench
// binary's --json flag against a committed baseline and fails when any
// watched cell regressed beyond tolerance. The simulation is fully
// deterministic (virtual time, seeded randomness), so a tight relative gate
// is safe: any drift is a real behavior change, not machine noise.
//
// Watched cells:
//  * "sweeps" sections: per (sweep, series label, group size) the median
//    virtual-time latency (median_ms);
//  * "table" sections: per (protocol, event) the elapsed_ms of the run.
//  * "multi_group" sections (bench/multi_group): every "_ms" number in the
//    aggregate rollup (latency quantiles, makespan — lower is better) plus
//    the "_per_sec" throughput numbers, gated in the opposite direction
//    (higher is better: a drop beyond tolerance is the regression).
//  * "churn_storm" sections (bench/churn_storm, schema sgk-bench/3): the
//    same aggregate rules applied per rekey mode (unbatched/batched), plus
//    the batch payload's "_ms" latency quantiles and rekeys_per_event
//    amortization headline (all lower is better).
//
// A lower-is-better cell fails when current > baseline * (1 + tolerance) +
// abs_epsilon; a higher-is-better cell when current < baseline * (1 -
// tolerance) - abs_epsilon. The absolute epsilon keeps near-zero baseline
// cells (sub-millisecond events) from tripping on harmless rounding.
// Improvements and disappearing cells are reported but never fail the gate;
// *new* cells are informational too.
//
// Wall-clock trajectory (schema sgk-bench/2, the "wallclock" section):
// per-site p50_ns cells are compared the same ratio-based way but under
// their own knobs, because host-clock numbers are machine noise by nature:
//  * --wall-tolerance (default 0.60) — a site must slow down by more than
//    60% before it even counts as a wall regression;
//  * --wall-mode off|report|gate (default report) — `report` prints wall
//    regressions without failing the exit code, which is how CI runs it
//    until the committed wall baselines have proven quiet. Promotion to
//    `gate` is a one-flag change (see docs/observability.md).
//
// Multi-threaded benches record their thread count in the wallclock env
// (bench_io --threads). Wall numbers from different thread counts are not
// comparable, so when both documents record a thread count and they differ,
// the pairing is refused (exit 2) unless --wall-mode off — the virtual
// sections are byte-identical across thread counts and stay comparable.
//
// Usage: bench_gate <baseline.json> <current.json>
//                   [--tolerance 0.10] [--abs-epsilon 0.05]
//                   [--wall-tolerance 0.60] [--wall-mode off|report|gate]
#include <cstdio>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "obs/json.h"
#include "obs/run_report.h"

namespace {

using sgk::obs::Json;

bool read_file(const std::string& path, std::string& out, std::string& error) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    error = "cannot open '" + path + "' for reading";
    return false;
  }
  std::ostringstream ss;
  ss << in.rdbuf();
  out = ss.str();
  return true;
}

// Flat map of watched wall-clock cell name -> value, e.g.
//   "wall/bignum/modexp_full/p50_ns". Empty for v1 documents.
std::map<std::string, double> wall_cells(const Json& doc) {
  std::map<std::string, double> cells;
  const Json* wall = doc.find("wallclock");
  if (wall == nullptr) return cells;
  const Json* sites = wall->find("sites");
  if (sites == nullptr || !sites->is_object()) return cells;
  for (const auto& [site, stats] : sites->as_object())
    if (const Json* p50 = stats.find("p50_ns"); p50 && p50->is_number())
      cells["wall/" + site + "/p50_ns"] = p50->as_number();
  return cells;
}

// Flat map of watched cell name -> value, e.g.
//   "sweeps/join_512/GDH/n=8/median_ms" or "table/GDH/join/elapsed_ms".
std::map<std::string, double> watched_cells(const Json& doc) {
  std::map<std::string, double> cells;
  if (const Json* sweeps = doc.find("sweeps"); sweeps && sweeps->is_object()) {
    for (const auto& [sweep_name, sweep] : sweeps->as_object()) {
      const Json* sizes = sweep.find("sizes");
      const Json* series = sweep.find("series");
      if (sizes == nullptr || series == nullptr || !series->is_array()) continue;
      for (const Json& entry : series->as_array()) {
        const Json* label = entry.find("label");
        const Json* median = entry.find("median_ms");
        if (label == nullptr || median == nullptr || !median->is_array())
          continue;
        for (std::size_t i = 0; i < median->size() && i < sizes->size(); ++i) {
          const std::string key =
              "sweeps/" + sweep_name + "/" + label->as_string() + "/n=" +
              std::to_string(
                  static_cast<long long>(sizes->at(i).as_number())) +
              "/median_ms";
          cells[key] = median->at(i).as_number();
        }
      }
    }
  }
  if (const Json* table = doc.find("table"); table && table->is_array()) {
    for (const Json& row : table->as_array()) {
      const Json* proto = row.find("protocol");
      const Json* event = row.find("event");
      const Json* elapsed = row.find("elapsed_ms");
      if (proto == nullptr || event == nullptr || elapsed == nullptr) continue;
      cells["table/" + proto->as_string() + "/" + event->as_string() +
            "/elapsed_ms"] = elapsed->as_number();
    }
  }
  if (const Json* mg = doc.find("multi_group")) {
    if (const Json* agg = mg->find("aggregate"); agg && agg->is_object())
      for (const auto& [name, value] : agg->as_object())
        if (name.ends_with("_ms") && value.is_number())
          cells["multi_group/aggregate/" + name] = value.as_number();
  }
  // bench/churn_storm nests one ServerResult document per rekey mode; the
  // aggregate latency cells and the batch payload's amortization headline
  // (rekeys_per_event, event-arrival -> key quantiles) are all
  // lower-is-better.
  if (const Json* cs = doc.find("churn_storm")) {
    for (const char* mode : {"unbatched", "batched"}) {
      const Json* m = cs->find(mode);
      if (m == nullptr) continue;
      const std::string prefix = std::string("churn_storm/") + mode + "/";
      if (const Json* agg = m->find("aggregate"); agg && agg->is_object())
        for (const auto& [name, value] : agg->as_object())
          if (name.ends_with("_ms") && value.is_number())
            cells[prefix + "aggregate/" + name] = value.as_number();
      if (const Json* batch = m->find("batch"); batch && batch->is_object())
        for (const auto& [name, value] : batch->as_object())
          if ((name.ends_with("_ms") || name == "rekeys_per_event") &&
              value.is_number())
            cells[prefix + "batch/" + name] = value.as_number();
    }
  }
  return cells;
}

// Cells where MORE is better (multi-group throughput); a drop beyond
// tolerance is the regression.
std::map<std::string, double> throughput_cells(const Json& doc) {
  std::map<std::string, double> cells;
  if (const Json* mg = doc.find("multi_group"))
    if (const Json* agg = mg->find("aggregate"); agg && agg->is_object())
      for (const auto& [name, value] : agg->as_object())
        if (name.ends_with("_per_sec") && value.is_number())
          cells["multi_group/aggregate/" + name] = value.as_number();
  if (const Json* cs = doc.find("churn_storm"))
    for (const char* mode : {"unbatched", "batched"}) {
      const Json* m = cs->find(mode);
      if (m == nullptr) continue;
      if (const Json* agg = m->find("aggregate"); agg && agg->is_object())
        for (const auto& [name, value] : agg->as_object())
          if (name.ends_with("_per_sec") && value.is_number())
            cells[std::string("churn_storm/") + mode + "/aggregate/" + name] =
                value.as_number();
    }
  return cells;
}

// Thread count recorded in the wallclock env by bench_io --threads, or 0
// when the document predates it / never recorded one.
int wall_threads(const Json& doc) {
  const Json* wall = doc.find("wallclock");
  if (wall == nullptr) return 0;
  const Json* env = wall->find("env");
  if (env == nullptr) return 0;
  const Json* threads = env->find("threads");
  if (threads == nullptr || !threads->is_number()) return 0;
  return static_cast<int>(threads->as_number());
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> paths;
  double tolerance = 0.10;
  double abs_epsilon = 0.05;
  double wall_tolerance = 0.60;
  std::string wall_mode = "report";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--tolerance" && i + 1 < argc) {
      tolerance = std::stod(argv[++i]);
    } else if (arg == "--abs-epsilon" && i + 1 < argc) {
      abs_epsilon = std::stod(argv[++i]);
    } else if (arg == "--wall-tolerance" && i + 1 < argc) {
      wall_tolerance = std::stod(argv[++i]);
    } else if (arg == "--wall-mode" && i + 1 < argc) {
      wall_mode = argv[++i];
      if (wall_mode != "off" && wall_mode != "report" && wall_mode != "gate") {
        std::fprintf(stderr, "error: --wall-mode must be off|report|gate\n");
        return 2;
      }
    } else {
      paths.push_back(arg);
    }
  }
  if (paths.size() != 2) {
    std::fprintf(stderr,
                 "usage: bench_gate <baseline.json> <current.json> "
                 "[--tolerance 0.10] [--abs-epsilon 0.05] "
                 "[--wall-tolerance 0.60] [--wall-mode off|report|gate]\n");
    return 2;
  }

  Json baseline, current;
  try {
    std::string text, error;
    if (!read_file(paths[0], text, error)) {
      std::fprintf(stderr, "error: %s\n", error.c_str());
      return 2;
    }
    baseline = Json::parse(text);
    if (!read_file(paths[1], text, error)) {
      std::fprintf(stderr, "error: %s\n", error.c_str());
      return 2;
    }
    current = Json::parse(text);
  } catch (const sgk::obs::JsonError& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 2;
  }

  for (const Json& doc : {baseline, current}) {
    const Json* schema = doc.find("schema");
    if (schema == nullptr || !schema->is_string() ||
        (schema->as_string() != sgk::obs::kBenchSchema &&
         schema->as_string() != sgk::obs::kBenchSchemaWallclock &&
         schema->as_string() != sgk::obs::kBenchSchemaBatch)) {
      std::fprintf(stderr, "error: not a sgk-bench document\n");
      return 2;
    }
  }

  // Refuse wall comparisons across different recorded thread counts: those
  // numbers measure different machines-worth of parallelism. The virtual
  // sections are byte-identical across thread counts, so `--wall-mode off`
  // still compares them.
  if (wall_mode != "off") {
    const int base_threads = wall_threads(baseline);
    const int cur_threads = wall_threads(current);
    if (base_threads != 0 && cur_threads != 0 && base_threads != cur_threads) {
      std::fprintf(stderr,
                   "error: wallclock thread counts differ (baseline "
                   "--threads %d vs current --threads %d); these wall "
                   "numbers are not comparable — rerun with matching "
                   "--threads or pass --wall-mode off\n",
                   base_threads, cur_threads);
      return 2;
    }
  }

  const std::map<std::string, double> base = watched_cells(baseline);
  const std::map<std::string, double> cur = watched_cells(current);
  if (base.empty()) {
    std::fprintf(stderr, "error: baseline '%s' has no watched cells\n",
                 paths[0].c_str());
    return 2;
  }

  int regressions = 0, improvements = 0, compared = 0;
  for (const auto& [key, base_value] : base) {
    auto it = cur.find(key);
    if (it == cur.end()) {
      std::printf("MISSING %s (baseline %.3f)\n", key.c_str(), base_value);
      continue;
    }
    ++compared;
    const double limit = base_value * (1.0 + tolerance) + abs_epsilon;
    if (it->second > limit) {
      ++regressions;
      std::printf("REGRESSION %s: %.3f -> %.3f (limit %.3f)\n", key.c_str(),
                  base_value, it->second, limit);
    } else if (it->second < base_value - abs_epsilon) {
      ++improvements;
      std::printf("improved %s: %.3f -> %.3f\n", key.c_str(), base_value,
                  it->second);
    }
  }
  for (const auto& [key, value] : cur)
    if (base.find(key) == base.end())
      std::printf("new %s = %.3f (not gated)\n", key.c_str(), value);

  // Throughput cells gate in the opposite direction: current must not DROP
  // below baseline * (1 - tolerance) - abs_epsilon.
  const std::map<std::string, double> tp_base = throughput_cells(baseline);
  const std::map<std::string, double> tp_cur = throughput_cells(current);
  for (const auto& [key, base_value] : tp_base) {
    auto it = tp_cur.find(key);
    if (it == tp_cur.end()) {
      std::printf("MISSING %s (baseline %.3f)\n", key.c_str(), base_value);
      continue;
    }
    ++compared;
    const double floor = base_value * (1.0 - tolerance) - abs_epsilon;
    if (it->second < floor) {
      ++regressions;
      std::printf("REGRESSION %s: %.3f -> %.3f (floor %.3f, higher=better)\n",
                  key.c_str(), base_value, it->second, floor);
    } else if (it->second > base_value + abs_epsilon) {
      ++improvements;
      std::printf("improved %s: %.3f -> %.3f\n", key.c_str(), base_value,
                  it->second);
    }
  }
  for (const auto& [key, value] : tp_cur)
    if (tp_base.find(key) == tp_base.end())
      std::printf("new %s = %.3f (not gated)\n", key.c_str(), value);

  // Wall-clock cells: same shape, separate knobs, and by default the
  // verdict is advisory. Virtual cells above stay the authoritative gate.
  int wall_regressions = 0, wall_compared = 0;
  if (wall_mode != "off") {
    const std::map<std::string, double> wall_base = wall_cells(baseline);
    const std::map<std::string, double> wall_cur = wall_cells(current);
    // 100 ns floor: sites near the timer resolution jitter in absolute
    // terms far more than in ratio.
    const double wall_epsilon = 100.0;
    for (const auto& [key, base_value] : wall_base) {
      auto it = wall_cur.find(key);
      if (it == wall_cur.end()) {
        std::printf("WALL MISSING %s (baseline %.0f)\n", key.c_str(),
                    base_value);
        continue;
      }
      ++wall_compared;
      const double limit = base_value * (1.0 + wall_tolerance) + wall_epsilon;
      if (it->second > limit) {
        ++wall_regressions;
        std::printf("WALL REGRESSION %s: %.0f -> %.0f (limit %.0f)\n",
                    key.c_str(), base_value, it->second, limit);
      }
    }
    for (const auto& [key, value] : wall_cur)
      if (wall_base.find(key) == wall_base.end())
        std::printf("new %s = %.0f (not gated)\n", key.c_str(), value);
    if (wall_compared > 0)
      std::printf("bench_gate wall: %d cells compared, %d regressions "
                  "(tolerance %.0f%%, mode %s)\n",
                  wall_compared, wall_regressions, wall_tolerance * 100.0,
                  wall_mode.c_str());
  }

  std::printf("bench_gate: %d cells compared, %d regressions, %d improvements "
              "(tolerance %.0f%%, epsilon %.2f ms)\n",
              compared, regressions, improvements, tolerance * 100.0,
              abs_epsilon);
  if (regressions > 0) return 1;
  if (wall_mode == "gate" && wall_regressions > 0) return 1;
  return 0;
}
