// paramgen: regenerates the fixed cryptographic parameters shipped in
// src/crypto (Schnorr DH groups and RSA test keys) using this library's own
// prime generation. This documents the provenance of the hard-coded
// constants and lets a downstream user mint fresh ones.
//
// Usage:
//   paramgen dh <p_bits> <q_bits> [seed]     # Schnorr group (p, q, g)
//   paramgen rsa <bits> [count] [seed]       # RSA keys with e=3
#include <cstring>
#include <iostream>
#include <string>

#include "bignum/modmath.h"
#include "bignum/prime.h"
#include "crypto/drbg.h"
#include "crypto/rsa.h"

namespace {

void emit_dh(std::size_t p_bits, std::size_t q_bits, std::uint64_t seed) {
  sgk::Drbg rng(seed, "paramgen-dh");
  sgk::SchnorrGroup grp = sgk::generate_schnorr_group(p_bits, q_bits, rng);
  std::cout << "// Schnorr group: " << p_bits << "-bit p, " << q_bits
            << "-bit q (seed " << seed << ")\n";
  std::cout << "P = \"" << grp.p.to_hex() << "\"\n";
  std::cout << "Q = \"" << grp.q.to_hex() << "\"\n";
  std::cout << "G = \"" << grp.g.to_hex() << "\"\n";
  // Self-check the subgroup structure before anyone pastes these anywhere.
  if ((grp.p - sgk::BigInt(1)) % grp.q != sgk::BigInt(0) ||
      sgk::mod_exp(grp.g, grp.q, grp.p) != sgk::BigInt(1)) {
    std::cerr << "self-check FAILED\n";
    std::exit(1);
  }
  std::cout << "// self-check ok: q | p-1 and g^q = 1 (mod p)\n";
}

void emit_rsa(std::size_t bits, int count, std::uint64_t seed) {
  sgk::Drbg rng(seed, "paramgen-rsa");
  for (int i = 0; i < count; ++i) {
    sgk::RsaPrivateKey key = sgk::RsaPrivateKey::generate(bits, rng);
    std::cout << "// RSA-" << bits << " key " << i << " (e=3, seed " << seed
              << ")\n";
    std::cout << "N = \"" << key.public_key().n().to_hex() << "\"\n";
    sgk::Bytes probe = sgk::str_bytes("paramgen self check");
    if (!key.public_key().verify(probe, key.sign(probe))) {
      std::cerr << "self-check FAILED\n";
      std::exit(1);
    }
    std::cout << "// self-check ok: sign/verify round trip\n";
  }
}

}  // namespace

int main(int argc, char** argv) {
  if (argc >= 4 && std::strcmp(argv[1], "dh") == 0) {
    std::uint64_t seed = argc > 4 ? std::stoull(argv[4]) : 20020423;
    emit_dh(std::stoul(argv[2]), std::stoul(argv[3]), seed);
    return 0;
  }
  if (argc >= 3 && std::strcmp(argv[1], "rsa") == 0) {
    int count = argc > 3 ? std::stoi(argv[3]) : 1;
    std::uint64_t seed = argc > 4 ? std::stoull(argv[4]) : 19770426;
    emit_rsa(std::stoul(argv[2]), count, seed);
    return 0;
  }
  std::cerr << "usage:\n  paramgen dh <p_bits> <q_bits> [seed]\n"
               "  paramgen rsa <bits> [count] [seed]\n";
  return 2;
}
