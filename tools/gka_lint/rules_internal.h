// Internal interface between the gka_lint engine (lint.cpp) and the rule
// family implementations (rules_core.cpp, rules_arch.cpp, rules_taint.cpp).
// Not part of the public API.
#pragma once

#include <cstddef>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "gka_lint/lint.h"
#include "gka_lint/model.h"

namespace gka_lint {

class InterprocView;  // callgraph.h
struct LockFacts;     // callgraph.h

/// A finding before suppression filtering and severity assignment (the
/// engine derives severity from the rule table).
struct RawFinding {
  const char* rule;
  std::string path;
  int line;  // 1-based
  std::string message;
};

using Sink = std::function<void(RawFinding)>;

// --- shared line-lexing helpers (operate on a FileModel `code` line) ------

struct LineTok {
  std::string text;
  std::size_t pos;
};

/// All identifiers on a stripped code line, with their positions.
std::vector<LineTok> line_identifiers(const std::string& code);

/// Splits the top-level comma-separated arguments of a call whose opening
/// paren is at `open`. Returns the [begin,end) ranges of each argument.
std::vector<std::pair<std::size_t, std::size_t>> call_args(
    const std::string& code, std::size_t open);

/// Heuristic "name of the operand" in [begin,end): the last identifier not
/// inside a `[...]` subscript (so `keys_.end()` names `end`, not an index).
const LineTok* operand_name(const std::string& code,
                            const std::vector<LineTok>& ids,
                            std::size_t begin, std::size_t end);

bool path_has_prefix(const std::string& path, const std::string& prefix);
bool path_contains(const std::string& path, const std::string& needle);
bool ends_with(const std::string& s, const std::string& suffix);

/// Innermost-to-outermost names of the calls enclosing position `pos` on a
/// stripped code line: for `a(b(x))` at x, returns {"b", "a"}.
std::vector<std::string> enclosing_calls(const std::string& code,
                                         const std::vector<LineTok>& ids,
                                         std::size_t pos);

// --- rule families --------------------------------------------------------

/// GKA001..GKA006 on one file.
void run_core_rules(const FileModel& m, const Sink& sink);

/// GKA201..GKA203 on one file. `secure_idents` seeds the taint analysis —
/// pass the include-closure set in project mode so fields declared in
/// headers taint their uses in the .cpp. `iv` (may be null) supplies the
/// interprocedural taint summaries; with it, calls of project functions are
/// checked against their summaries (tainted arg into a sinking param,
/// secret-derived return values).
void run_taint_rules(const FileModel& m,
                     const std::vector<std::string>& secure_idents,
                     const InterprocView* iv, const Sink& sink);

/// GKA301..GKA306 (determinism) + GKA401/GKA402 (shared state) on one file.
void run_determinism_rules(const FileModel& m, const Sink& sink);

/// GKA501..GKA504 (lock discipline) on one file. `guard_closure` is the
/// SGK_GUARDED_BY set visible to this file (include-closure merged in
/// project mode, own-file in single-file mode); `facts` carries the
/// project-wide merged annotations and inferred lock effects
/// (compute_lock_facts in rules_lock.cpp).
void run_lock_rules(const FileModel& m,
                    const std::vector<const FieldGuard*>& guard_closure,
                    const LockFacts& facts, const Sink& sink);

/// GKA101/GKA102 over the whole project's include graph (src/ files only).
void run_arch_rules(const std::vector<FileModel>& files, const Sink& sink);

}  // namespace gka_lint
