// A small C++ lexer for gka_lint: comment-, string-, char- and raw-string
// aware, with line/column positions. It does not try to be a conforming
// phase-3 tokenizer — punctuation is emitted one character at a time and
// numbers are lexed loosely — but it is exact about the things a lint rule
// must never confuse: what is code, what is a comment, and what is the
// inside of a string literal.
#pragma once

#include <string>
#include <vector>

namespace gka_lint {

enum class TokKind {
  kIdent,    // identifiers and keywords
  kNumber,   // numeric literals (incl. digit separators, suffixes)
  kString,   // "..." and R"delim(...)delim"; text is the literal's contents
  kChar,     // '...'
  kPunct,    // one punctuation character
  kComment,  // // or /* */; text is the comment's contents (may span lines)
  kPp,       // a whole preprocessor logical line (text includes the '#')
};

struct Tok {
  TokKind kind;
  std::string text;
  int line = 1;         // 1-based line of the token's first character
  std::size_t col = 0;  // 0-based column on that line
};

/// Lexes a whole translation unit. Never throws: unterminated literals and
/// comments are closed at end of input.
std::vector<Tok> lex(const std::string& content);

}  // namespace gka_lint
