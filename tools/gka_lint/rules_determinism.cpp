// GKA301..GKA306 (determinism) and GKA401/GKA402 (shared state).
//
// The simulator's claim to credibility is bit-identical replay: the same
// seed and scenario must produce the same trace on every run and every
// machine. These rules fence off the C++ constructs that silently break
// that promise:
//
//   GKA301  unordered containers in deterministic subsystems — iteration
//           order depends on hash seeding, insertion history, and libc++ vs
//           libstdc++; anything iterated into serialization, scheduling, or
//           a trace diverges across runs. Over-approximation: fires on ANY
//           unordered_map/unordered_set mention (declaration, include, or
//           iteration) because a pure find/insert use today becomes an
//           iteration in the next refactor; use std::map, or suppress with
//           a reason if the lookup-only use is hot enough to matter.
//   GKA302  pointer-keyed ordered containers / std::hash over pointers —
//           ordering or hashing by address is ASLR-dependent.
//   GKA303  wall-clock reads (system_clock) outside the wallclock boundary.
//           The boundary is exactly src/obs/wallclock.{h,cpp}; scope covers
//           src/ and bench/.
//   GKA304  monotonic clocks (steady_clock / high_resolution_clock) outside
//           the wallclock boundary — virtual time comes from
//           Simulator::now(), and host ns/op from WallScope, never from a
//           clock read in calling code.
//   GKA305  time/env entropy: time(nullptr)/time(0), clock(), getpid(),
//           getenv() — ambient inputs that differ per run/host. Complements
//           GKA003, which catches the std::random engines by name.
//   GKA306  reinterpret_cast of a pointer to uintptr_t/intptr_t in a
//           deterministic subsystem — an address about to leak into logic.
//
//   GKA401  mutable namespace-scope state in src/core|sim|gcs|server —
//           simulator runs must be independent; a mutable global couples
//           them and blocks in-process parallel sweeps (src/server runs
//           thousands of them concurrently).
//   GKA402  mutable function-local statics in the same subsystems — same
//           problem plus an initialization race once runs go parallel.
#include <cctype>

#include "gka_lint/rules_internal.h"

namespace gka_lint {

namespace {

/// Subsystems that must be deterministic: protocol logic, the simulator,
/// the group-communication layer, fault injection (whose schedules are part
/// of the reproducible scenario), and the multi-group server (whose whole
/// contract is bit-identical output regardless of worker-thread count).
bool deterministic_subsystem(const std::string& path) {
  return path_has_prefix(path, "src/core/") ||
         path_has_prefix(path, "src/sim/") ||
         path_has_prefix(path, "src/gcs/") ||
         path_has_prefix(path, "src/fault/") ||
         path_has_prefix(path, "src/server/");
}

/// GKA401/402 scope: the subsystems whose state a simulation run owns. The
/// server hosts many runs in one process, so a mutable global there couples
/// every group it serves.
bool shared_state_scope(const std::string& path) {
  return path_has_prefix(path, "src/core/") ||
         path_has_prefix(path, "src/sim/") ||
         path_has_prefix(path, "src/gcs/") ||
         path_has_prefix(path, "src/server/");
}

/// The sanctioned host-time boundary: exactly the WallProfiler translation
/// unit (obs/wallclock.h declares wall_now_ns(), the one clock read in the
/// tree). An exact-path match, not a substring, so a stray
/// "my_wallclock_helper.cpp" elsewhere cannot smuggle in an exemption.
bool wallclock_boundary(const std::string& path) {
  return path == "src/obs/wallclock.h" || path == "src/obs/wallclock.cpp";
}

/// Ambient-entropy sanctioned files (same set GKA003 exempts).
bool entropy_boundary(const std::string& path) {
  return path_contains(path, "util/random_source") ||
         path_contains(path, "crypto/drbg");
}

bool calls_with(const std::string& code, const LineTok& t) {
  const std::size_t after = t.pos + t.text.size();
  return after < code.size() && code[after] == '(';
}

/// First top-level template argument after the '<' at `open`:
/// [open+1, end) up to the first depth-0 ',' or the matching '>'.
std::string first_template_arg(const std::string& code, std::size_t open) {
  int angle = 0, paren = 0;
  for (std::size_t i = open; i < code.size(); ++i) {
    const char c = code[i];
    if (c == '(' || c == '[') ++paren;
    if (c == ')' || c == ']') --paren;
    if (paren > 0) continue;
    if (c == '<') ++angle;
    if (c == '>' && --angle == 0) return code.substr(open + 1, i - open - 1);
    if (c == ',' && angle == 1) return code.substr(open + 1, i - open - 1);
  }
  return code.substr(open + 1);
}

// ---------------------------------------------------------------------------
// GKA301..GKA306: per-line scans over the stripped code view

void run_unordered_rule(const FileModel& m, const Sink& sink) {
  if (!deterministic_subsystem(m.path)) return;
  // Includes are preprocessor tokens, not code lines; catch both forms.
  for (const Tok& t : m.tokens) {
    if (t.kind != TokKind::kPp) continue;
    if (t.text.find("include") == std::string::npos) continue;
    if (t.text.find("<unordered_map>") != std::string::npos ||
        t.text.find("<unordered_set>") != std::string::npos ||
        t.text.find("\"unordered_map\"") != std::string::npos) {
      sink({"GKA301", m.path, t.line,
            "unordered container include in a deterministic subsystem; "
            "iteration order is not reproducible — use std::map/std::set"});
    }
  }
  for (std::size_t li = 0; li < m.code.size(); ++li) {
    for (const LineTok& t : line_identifiers(m.code[li])) {
      if (t.text != "unordered_map" && t.text != "unordered_set") continue;
      sink({"GKA301", m.path, static_cast<int>(li + 1),
            "'" + t.text +
                "' in a deterministic subsystem; iteration order depends on "
                "hashing and insertion history — use std::map/std::set (or "
                "suppress with a reason for a proven lookup-only use)"});
    }
  }
}

void run_pointer_order_rule(const FileModel& m, const Sink& sink) {
  if (!deterministic_subsystem(m.path)) return;
  for (std::size_t li = 0; li < m.code.size(); ++li) {
    const std::string& c = m.code[li];
    for (const LineTok& t : line_identifiers(c)) {
      const bool assoc = ends_with(t.text, "map") || ends_with(t.text, "set");
      const bool hash = t.text == "hash";
      if (!assoc && !hash) continue;
      const std::size_t open = t.pos + t.text.size();
      if (open >= c.size() || c[open] != '<') continue;
      const std::string key = first_template_arg(c, open);
      if (key.find('*') == std::string::npos) continue;
      sink({"GKA302", m.path, static_cast<int>(li + 1),
            "'" + t.text + "<" + key +
                ">' orders/hashes by pointer value; addresses vary per run "
                "(ASLR) — key by a stable id instead"});
    }
  }
}

void run_clock_rules(const FileModel& m, const Sink& sink) {
  // bench/ is in scope too: benches measure through WallScope /
  // wall_now_ns() so timing stays calibrated and greppable, never by
  // reading a chrono clock themselves.
  if (!path_has_prefix(m.path, "src/") && !path_has_prefix(m.path, "bench/"))
    return;
  if (wallclock_boundary(m.path)) return;
  for (std::size_t li = 0; li < m.code.size(); ++li) {
    for (const LineTok& t : line_identifiers(m.code[li])) {
      if (t.text == "system_clock") {
        sink({"GKA303", m.path, static_cast<int>(li + 1),
              "wall-clock read outside the wallclock boundary; host time "
              "must not reach simulation or protocol logic"});
      } else if (t.text == "steady_clock" || t.text == "high_resolution_clock") {
        sink({"GKA304", m.path, static_cast<int>(li + 1),
              "'" + t.text +
                  "' outside the wallclock boundary; virtual time comes "
                  "from Simulator::now(), not the host clock"});
      }
    }
  }
}

void run_entropy_rule(const FileModel& m, const Sink& sink) {
  if (entropy_boundary(m.path)) return;
  for (std::size_t li = 0; li < m.code.size(); ++li) {
    const std::string& c = m.code[li];
    for (const LineTok& t : line_identifiers(c)) {
      if (!calls_with(c, t)) continue;
      const std::size_t open = t.pos + t.text.size();
      bool fires = false;
      if (t.text == "getpid" || t.text == "getenv") {
        fires = true;
      } else if (t.text == "time" || t.text == "clock") {
        // `time` and `clock` are common identifiers in a simulator; only
        // the C library signatures count: time(nullptr|0|NULL), clock().
        const std::size_t close = c.find(')', open);
        if (close != std::string::npos) {
          std::string arg = c.substr(open + 1, close - open - 1);
          arg.erase(0, arg.find_first_not_of(" \t"));
          const std::size_t tail = arg.find_last_not_of(" \t");
          arg = tail == std::string::npos ? "" : arg.substr(0, tail + 1);
          fires = (t.text == "time" &&
                   (arg == "nullptr" || arg == "0" || arg == "NULL")) ||
                  (t.text == "clock" && arg.empty());
        }
      }
      if (fires) {
        sink({"GKA305", m.path, static_cast<int>(li + 1),
              "'" + t.text +
                  "(...)' is ambient entropy (differs per run/host); seed "
                  "from util/random_source or take the value as an input"});
      }
    }
  }
}

void run_pointer_cast_rule(const FileModel& m, const Sink& sink) {
  if (!deterministic_subsystem(m.path)) return;
  for (std::size_t li = 0; li < m.code.size(); ++li) {
    const std::string& c = m.code[li];
    if (c.find("reinterpret_cast") == std::string::npos) continue;
    if (c.find("intptr_t") == std::string::npos) continue;  // u/intptr_t
    sink({"GKA306", m.path, static_cast<int>(li + 1),
          "pointer-to-integer cast in a deterministic subsystem; the "
          "numeric value is an address and varies per run — use a stable "
          "id"});
  }
}

// ---------------------------------------------------------------------------
// GKA401: mutable namespace-scope state

/// Tokens that mark a namespace-scope statement as something other than a
/// variable definition (declarations, type definitions, aliases) — skipped.
bool non_variable_marker(const std::string& s) {
  return s == "using" || s == "typedef" || s == "extern" || s == "template" ||
         s == "friend" || s == "operator" || s == "static_assert" ||
         s == "class" || s == "struct" || s == "enum" || s == "union" ||
         s == "namespace" || s == "concept" || s == "requires";
}

bool immutable_marker(const std::string& s) {
  return s == "const" || s == "constexpr" || s == "constinit";
}

void run_global_state_rule(const FileModel& m, const Sink& sink) {
  if (!shared_state_scope(m.path)) return;

  // Walk the namespace-scope token stream statement by statement. A
  // statement ends at ';'. A '{' with no '=' seen so far is a scope
  // heading (namespace open — type/function bodies are not ns_only), which
  // resets; with an '=' it is a brace initializer and is skipped.
  std::vector<const ScopedTok*> stmt;
  bool saw_eq = false;
  auto reset = [&] {
    stmt.clear();
    saw_eq = false;
  };
  auto flush = [&] {
    if (stmt.size() < 2) return reset();
    std::size_t idents = 0;
    const ScopedTok* name = nullptr;
    for (const ScopedTok* t : stmt) {
      if (t->kind != TokKind::kIdent) continue;
      if (non_variable_marker(t->text) || immutable_marker(t->text))
        return reset();
      ++idents;
      name = t;
    }
    // Function definitions/declarations and constructor-style initializers
    // carry a '('; skipping them is a documented under-approximation
    // (`int g(5);` escapes — rare enough not to chase).
    for (const ScopedTok* t : stmt)
      if (t->kind == TokKind::kPunct && t->text == "(") return reset();
    if (idents < 2) return reset();
    // Bare two-ident statements (`int x;`) are as likely forward
    // declarations of incomplete scaffolding as definitions; require an
    // initializer or a multi-token type before firing (documented
    // under-approximation: an uninitialized `int g_count;` escapes).
    if (!saw_eq && idents < 3) return reset();
    // Re-find the name: last identifier before the '=' when present.
    if (saw_eq) {
      name = nullptr;
      for (const ScopedTok* t : stmt) {
        if (t->kind == TokKind::kPunct && t->text == "=") break;
        if (t->kind == TokKind::kIdent) name = t;
      }
    }
    if (name == nullptr) return reset();
    sink({"GKA401", m.path, name->line,
          "mutable namespace-scope state '" + name->text +
              "'; simulation runs must be independent — make it const/"
              "constexpr, or pass it through the scenario"});
    reset();
  };

  for (const ScopedTok& t : m.scoped_tokens) {
    if (!t.ns_only) continue;
    if (t.kind == TokKind::kPunct) {
      if (t.text == ";") {
        flush();
        continue;
      }
      if (t.text == "=") saw_eq = true;
      if (t.text == "{" || t.text == "}") {
        if (!saw_eq) reset();
        continue;  // brace-initializer tokens stay out of the statement
      }
    }
    stmt.push_back(&t);
  }
}

// ---------------------------------------------------------------------------
// GKA402: mutable function-local statics

void run_local_static_rule(const FileModel& m, const Sink& sink) {
  if (!shared_state_scope(m.path)) return;
  for (std::size_t i = 0; i < m.scoped_tokens.size(); ++i) {
    const ScopedTok& t = m.scoped_tokens[i];
    if (t.kind != TokKind::kIdent || t.text != "static") continue;
    if (t.scope != TokScope::kFunction) continue;
    // `static const`/`static constexpr` locals are immutable and fine.
    std::size_t j = i + 1;
    if (j < m.scoped_tokens.size() &&
        m.scoped_tokens[j].kind == TokKind::kIdent &&
        m.scoped_tokens[j].text == "thread_local")
      ++j;
    if (j < m.scoped_tokens.size() &&
        m.scoped_tokens[j].kind == TokKind::kIdent &&
        immutable_marker(m.scoped_tokens[j].text))
      continue;
    sink({"GKA402", m.path, t.line,
          "mutable function-local static; hidden shared state couples "
          "simulation runs and races once they run in parallel — hoist it "
          "into the owning object or make it const"});
  }
}

}  // namespace

void run_determinism_rules(const FileModel& m, const Sink& sink) {
  run_unordered_rule(m, sink);
  run_pointer_order_rule(m, sink);
  run_clock_rules(m, sink);
  run_entropy_rule(m, sink);
  run_pointer_cast_rule(m, sink);
  run_global_state_rule(m, sink);
  run_local_static_rule(m, sink);
}

}  // namespace gka_lint
