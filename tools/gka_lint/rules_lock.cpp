// GKA501..GKA504: lock-discipline / capability analysis (v4).
//
// The SGK_* annotations (src/util/thread_annotations.h) declare the locking
// contract; this pass checks the tree against it, whole-program:
//
//   GKA501  a field annotated SGK_GUARDED_BY(m) is read or written at a
//           point where `m` is not held. Guard maps follow the include
//           closure (a guard declared in a header protects uses in every
//           file that includes it), matching by field *name* — the same
//           deliberate over-approximation the taint pass uses.
//   GKA502  a function annotated SGK_REQUIRES(m) is called without `m`
//           held, or a function annotated SGK_EXCLUDES(m) is called WITH
//           `m` held (deadlock fence). Annotations are merged across
//           translation units by function name, so a declaration in one
//           header disciplines call sites in every TU — this is what makes
//           the seeded xtu_lock fixture fire only in project mode.
//   GKA503  a bare `m.lock()` (non-RAII) with no matching unlock at
//           function exit, or a conditional early return while the lock is
//           held, in a function not annotated SGK_ACQUIRE(m). Lock
//           *wrappers* declare SGK_ACQUIRE and are exempt.
//   GKA504  a mutable top-level class/struct under src/sim, src/gcs or
//           src/server with neither an SGK_GUARDED_BY member nor the
//           SGK_CONFINED_TO_RUN classification marker: unclassified shared
//           state. This is the escape-analysis complement to GKA401/402 —
//           the multi-group server's worker threads (src/server, ROADMAP
//           item 4) share exactly these structures, so every one must be
//           consciously classified. Mutex/atomic members, const
//           members, nested records (covered by the enclosing record's
//           classification) and function-local records (run-confined by
//           construction) are exempt.
//
// Lock-set tracking per function, to a fixpoint over the cross-TU call
// graph (compute_lock_facts): the entry set is the merged SGK_REQUIRES +
// SGK_RELEASE capabilities; RAII guards (std::lock_guard / unique_lock /
// scoped_lock / shared_lock) hold from their declaration to the end of the
// enclosing brace scope; bare `m.lock()` holds until `m.unlock()` or
// function exit; and calling a function whose *effective* summary acquires
// or releases a mutex applies that effect at the call site. Effective
// summaries start from the declared SGK_ACQUIRE/SGK_RELEASE sets and grow
// with inferred net effects (a helper that locks and returns without
// unlocking behaves like SGK_ACQUIRE for its callers), iterated until
// stable — the same summary machinery as the taint pass.
//
// Known approximations (documented in docs/static_analysis.md): tracking is
// line-granular; `unique_lock` with `defer_lock` is skipped entirely;
// conditions spanning multiple lines are scanned line-by-line; capability
// names are matched as bare identifiers (the last identifier of `a.b_`).
#include <algorithm>
#include <map>
#include <set>

#include "gka_lint/callgraph.h"
#include "gka_lint/rules_internal.h"

namespace gka_lint {

namespace {

bool raii_guard_type(const std::string& s) {
  return s == "lock_guard" || s == "unique_lock" || s == "scoped_lock" ||
         s == "shared_lock";
}

bool lock_tag(const std::string& s) {
  return s == "defer_lock" || s == "adopt_lock" || s == "try_to_lock";
}

const std::set<std::string>& facts_of(
    const std::map<std::string, std::set<std::string>>& m,
    const std::string& name) {
  static const std::set<std::string> kEmpty;
  const auto it = m.find(name);
  return it == m.end() ? kEmpty : it->second;
}

/// The outcome of one body scan, for the inference fixpoint.
struct LockOutcome {
  std::set<std::string> held_at_exit;       // bare-acquired, never released
  std::set<std::string> released_for_caller;  // released without acquiring
};

/// Scans one function body tracking the held lock-set. In reporting mode
/// (`report` != nullptr) emits GKA501/502/503; in summary mode only records
/// the net effect. `guards` maps field name -> its FieldGuard annotations
/// (include-closure merged in project mode).
LockOutcome scan_locks(
    const FileModel& m, const Function& fn, const LockFacts& facts,
    const std::map<std::string, std::vector<const FieldGuard*>>& guards,
    const Sink* report) {
  LockOutcome out;

  // Entry capabilities: what SGK_REQUIRES says the caller holds, plus what
  // SGK_RELEASE says this function will release on the caller's behalf.
  std::set<std::string> entry = facts_of(facts.needs, fn.name);
  for (const std::string& s : facts_of(facts.rel_decl, fn.name))
    entry.insert(s);

  struct Raii {
    std::string mutex;
    int depth;
  };
  std::vector<Raii> raii;
  std::map<std::string, int> bare;  // mutex -> line of the acquiring lock()
  std::set<std::string> early_fired;
  int depth = 0;

  auto held = [&](const std::string& mu) {
    if (entry.count(mu) != 0) return true;
    if (bare.count(mu) != 0) return true;
    for (const Raii& r : raii)
      if (r.mutex == mu) return true;
    return false;
  };

  for (int line = fn.body_begin; line <= fn.body_end; ++line) {
    const std::size_t li = static_cast<std::size_t>(line - 1);
    if (li >= m.code.size()) break;
    const std::string& c = m.code[li];
    const int depth_start = depth;
    if (c.empty()) continue;
    const std::vector<LineTok> ids = line_identifiers(c);

    // Brace delta of this line, computed up front: a guard declared here
    // lives in the innermost scope OPEN at this line — depth_start if the
    // scope's '{' was on an earlier line, depth_end if this line opens it
    // (`if (x) { std::lock_guard ...`). Line-granular by design.
    int depth_end = depth, d_min = depth;
    for (char ch : c) {
      if (ch == '{') ++depth_end;
      if (ch == '}') {
        --depth_end;
        d_min = std::min(d_min, depth_end);
      }
    }

    // --- lock events -----------------------------------------------------
    // RAII guard declarations: `std::lock_guard<std::mutex> lk(mu_);`.
    for (const LineTok& t : ids) {
      if (!raii_guard_type(t.text)) continue;
      const std::size_t open = c.find('(', t.pos + t.text.size());
      if (open == std::string::npos) break;
      const auto args = call_args(c, open);
      bool deferred = false;
      std::vector<std::string> mus;
      for (const auto& [ab, ae] : args) {
        const LineTok* last = nullptr;
        for (const LineTok& a : ids)
          if (a.pos >= ab && a.pos + a.text.size() <= ae) last = &a;
        if (last == nullptr) continue;
        if (lock_tag(last->text)) {
          deferred = deferred || last->text == "defer_lock";
          continue;
        }
        mus.push_back(last->text);
      }
      if (!deferred)
        for (const std::string& mu : mus)
          raii.push_back({mu, std::max(depth_start, depth_end)});
      break;
    }
    // Bare `m.lock()` / `m.unlock()` and calls with acquire/release effects.
    for (const LineTok& t : ids) {
      const std::size_t after = t.pos + t.text.size();
      if (after >= c.size() || c[after] != '(') continue;
      if (t.text == "lock" || t.text == "unlock") {
        // Preceded by '.' or '->' => find the object identifier.
        std::size_t p = t.pos;
        int skip = 0;
        if (p >= 1 && c[p - 1] == '.') skip = 1;
        if (p >= 2 && c[p - 2] == '-' && c[p - 1] == '>') skip = 2;
        if (skip == 0) continue;
        const LineTok* obj = nullptr;
        for (const LineTok& a : ids)
          if (a.pos + a.text.size() == p - static_cast<std::size_t>(skip))
            obj = &a;
        if (obj == nullptr) continue;
        if (t.text == "lock") {
          bare.emplace(obj->text, line);
        } else if (bare.erase(obj->text) == 0) {
          // Releasing something this function never acquired: the caller
          // held it (an SGK_RELEASE-style helper).
          out.released_for_caller.insert(obj->text);
          entry.erase(obj->text);
        }
        continue;
      }
      if (t.text == fn.name) continue;  // the definition / recursion
      for (const std::string& mu : facts_of(facts.acq_eff, t.text))
        bare.emplace(mu, line);
      for (const std::string& mu : facts_of(facts.rel_eff, t.text))
        if (bare.erase(mu) == 0) {
          out.released_for_caller.insert(mu);
          entry.erase(mu);
        }
    }

    if (report != nullptr) {
      // --- GKA501: guarded field access without the mutex ----------------
      for (const LineTok& t : ids) {
        const auto git = guards.find(t.text);
        if (git == guards.end()) continue;
        bool ok = false, declaration_site = false;
        for (const FieldGuard* g : git->second) {
          if (held(g->mutex)) ok = true;
          // Constructors/destructor of the owning class initialize before
          // the object is shared (the Clang analysis exempts them too).
          if (!g->owner.empty() && fn.name == g->owner) ok = true;
        }
        // The annotation's own declaration line is not an access.
        for (const FieldGuard* g : git->second)
          if (g->line == line) declaration_site = true;
        if (ok || declaration_site) continue;
        const FieldGuard* g = git->second.front();
        (*report)({"GKA501", m.path, line,
                   "field '" + t.text + "' is SGK_GUARDED_BY(" + g->mutex +
                       ") but '" + g->mutex + "' is not held here; take a "
                       "std::lock_guard first or annotate '" + fn.name +
                       "' with SGK_REQUIRES(" + g->mutex + ")"});
      }
      // --- GKA502: call without required capability / with excluded one --
      for (const LineTok& t : ids) {
        const std::size_t after = t.pos + t.text.size();
        if (after >= c.size() || c[after] != '(') continue;
        if (t.text == fn.name) continue;
        for (const std::string& mu : facts_of(facts.needs, t.text)) {
          if (held(mu)) continue;
          (*report)({"GKA502", m.path, line,
                     "'" + t.text + "' requires capability '" + mu +
                         "' (SGK_REQUIRES) but it is not held at this call "
                         "site; lock it first or propagate SGK_REQUIRES"});
        }
        for (const std::string& mu : facts_of(facts.excl, t.text)) {
          if (!held(mu)) continue;
          (*report)({"GKA502", m.path, line,
                     "'" + t.text + "' excludes capability '" + mu +
                         "' (SGK_EXCLUDES) but it is held at this call site; "
                         "release it first (deadlock fence)"});
        }
      }
      // --- GKA503 (early path): conditional return while bare-held -------
      bool has_return = false, conditional = depth_start > 1;
      for (const LineTok& t : ids) {
        if (t.text == "return") has_return = true;
        if (t.text == "if" || t.text == "case") conditional = true;
      }
      if (has_return && conditional) {
        for (const auto& [mu, lock_line] : bare) {
          if (facts_of(facts.acq_decl, fn.name).count(mu) != 0) continue;
          if (!early_fired.insert(mu).second) continue;
          (*report)({"GKA503", m.path, line,
                     "early return with '" + mu + "' still locked (acquired "
                     "at line " + std::to_string(lock_line) +
                         "); use std::lock_guard so every path releases it"});
        }
      }
    }

    // --- scope bookkeeping: drop guards whose scope closed on this line ---
    depth = depth_end;
    raii.erase(std::remove_if(raii.begin(), raii.end(),
                              [&](const Raii& r) { return r.depth > d_min; }),
               raii.end());
  }

  for (const auto& [mu, lock_line] : bare) {
    out.held_at_exit.insert(mu);
    if (report != nullptr &&
        facts_of(facts.acq_decl, fn.name).count(mu) == 0 &&
        early_fired.count(mu) == 0) {
      (*report)({"GKA503", m.path, lock_line,
                 "'" + mu + "' is locked here but not released on every "
                 "path out of '" + fn.name +
                     "'; use std::lock_guard or annotate the function with "
                     "SGK_ACQUIRE(" + mu + ") if it is a lock wrapper"});
    }
  }
  return out;
}

}  // namespace

LockFacts compute_lock_facts(const std::vector<FileModel>& models,
                             const CallGraph& cg) {
  LockFacts facts;
  for (const FileModel& m : models) {
    if (m.skip_file) continue;
    for (const FnAnnotation& a : m.fn_annotations) {
      auto* dst = &facts.needs;
      if (a.kind == "acquire") dst = &facts.acq_decl;
      if (a.kind == "release") dst = &facts.rel_decl;
      if (a.kind == "excludes") dst = &facts.excl;
      for (const std::string& mu : a.mutexes) (*dst)[a.fn].insert(mu);
    }
  }
  facts.acq_eff = facts.acq_decl;
  facts.rel_eff = facts.rel_decl;

  // Inference fixpoint: net lock effects only ever grow, so this converges;
  // the cap bounds pathological chains.
  constexpr int kMaxIters = 12;
  const std::map<std::string, std::vector<const FieldGuard*>> no_guards;
  for (int iter = 0; iter < kMaxIters; ++iter) {
    bool changed = false;
    for (const FunctionRef& ref : cg.all()) {
      const LockOutcome o =
          scan_locks(*ref.file, *ref.fn, facts, no_guards, nullptr);
      for (const std::string& mu : o.held_at_exit)
        changed |= facts.acq_eff[ref.fn->name].insert(mu).second;
      for (const std::string& mu : o.released_for_caller)
        changed |= facts.rel_eff[ref.fn->name].insert(mu).second;
    }
    if (!changed) break;
  }
  return facts;
}

void run_lock_rules(const FileModel& m,
                    const std::vector<const FieldGuard*>& guard_closure,
                    const LockFacts& facts, const Sink& sink) {
  std::map<std::string, std::vector<const FieldGuard*>> guards;
  for (const FieldGuard* g : guard_closure) guards[g->field].push_back(g);

  for (const Function& fn : m.functions)
    scan_locks(m, fn, facts, guards, &sink);

  // --- GKA504: unclassified mutable shared structure in sim/gcs/server ----
  if (!path_has_prefix(m.path, "src/sim") &&
      !path_has_prefix(m.path, "src/gcs") &&
      !path_has_prefix(m.path, "src/server"))
    return;
  for (const Record& r : m.records) {
    if (r.nested || !r.has_mutable_member) continue;
    if (r.has_guard || r.has_confined_marker) continue;
    bool function_local = false;
    for (const Function& fn : m.functions)
      if (r.line >= fn.body_begin && r.line <= fn.body_end)
        function_local = true;
    if (function_local) continue;
    sink({"GKA504", m.path, r.line,
          "mutable structure '" + r.name + "' (e.g. member '" +
              r.first_mutable +
              "') has no concurrency classification; guard its fields with "
              "SGK_GUARDED_BY or mark the type SGK_CONFINED_TO_RUN "
              "(src/util/thread_annotations.h) before worker threads share "
              "it"});
  }
}

}  // namespace gka_lint
