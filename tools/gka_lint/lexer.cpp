#include "gka_lint/lexer.h"

#include <cctype>

namespace gka_lint {

namespace {

bool ident_start(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}

bool ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

/// True when `ident` is a raw-string prefix (R, u8R, uR, UR, LR).
bool raw_prefix(const std::string& ident) {
  return ident == "R" || ident == "u8R" || ident == "uR" || ident == "UR" ||
         ident == "LR";
}

/// True when `ident` is an ordinary string/char prefix (u8, u, U, L).
bool str_prefix(const std::string& ident) {
  return ident == "u8" || ident == "u" || ident == "U" || ident == "L";
}

class Lexer {
 public:
  explicit Lexer(const std::string& s) : s_(s) {}

  std::vector<Tok> run() {
    while (i_ < s_.size()) {
      const char c = s_[i_];
      if (c == '\n') {
        advance();
        at_line_start_ = true;
        continue;
      }
      if (std::isspace(static_cast<unsigned char>(c))) {
        advance();
        continue;
      }
      if (c == '#' && at_line_start_) {
        preprocessor();
        continue;
      }
      at_line_start_ = false;
      if (c == '/' && i_ + 1 < s_.size() && s_[i_ + 1] == '/') {
        line_comment();
        continue;
      }
      if (c == '/' && i_ + 1 < s_.size() && s_[i_ + 1] == '*') {
        block_comment();
        continue;
      }
      if (c == '"') {
        string_literal();
        continue;
      }
      if (c == '\'') {
        char_literal();
        continue;
      }
      if (std::isdigit(static_cast<unsigned char>(c))) {
        number();
        continue;
      }
      if (ident_start(c)) {
        identifier();
        continue;
      }
      // Digraphs ([lex.digraph]): <% %> <: :> lex as their primary forms
      // { } [ ] so brace-scope classification works on digraph source.
      // Exception ([lex.pptoken]/3): "<::" not followed by ':' or '>' is
      // '<' then '::' (think std::vector<::X>), not '[:'.
      const char next = i_ + 1 < s_.size() ? s_[i_ + 1] : '\0';
      if (c == '<' && next == '%') {
        digraph('{');
        continue;
      }
      if (c == '%' && next == '>') {
        digraph('}');
        continue;
      }
      if (c == ':' && next == '>') {
        digraph(']');
        continue;
      }
      if (c == '<' && next == ':') {
        const char c2 = i_ + 2 < s_.size() ? s_[i_ + 2] : '\0';
        const char c3 = i_ + 3 < s_.size() ? s_[i_ + 3] : '\0';
        const bool angle_scope = c2 == ':' && c3 != ':' && c3 != '>';
        if (!angle_scope) {
          digraph('[');
          continue;
        }
      }
      begin(TokKind::kPunct);
      cur_.text.push_back(c);
      advance();
      emit();
    }
    return std::move(out_);
  }

 private:
  void advance() {
    if (s_[i_] == '\n') {
      ++line_;
      col_ = 0;
    } else {
      ++col_;
    }
    ++i_;
  }

  void begin(TokKind kind) {
    cur_ = Tok{kind, {}, line_, col_};
  }

  /// Emits a two-character digraph as its one-character primary form.
  void digraph(char primary) {
    begin(TokKind::kPunct);
    cur_.text.push_back(primary);
    advance();
    advance();
    emit();
  }

  void emit() { out_.push_back(std::move(cur_)); }

  /// Consumes a whole preprocessor logical line, honoring backslash
  /// continuations. Comments on the line are not separated out — directive
  /// lines are opaque to the rule engine except for #include extraction.
  void preprocessor() {
    begin(TokKind::kPp);
    while (i_ < s_.size()) {
      if (s_[i_] == '\\' && i_ + 1 < s_.size() && s_[i_ + 1] == '\n') {
        cur_.text.push_back(' ');
        advance();
        advance();
        continue;
      }
      if (s_[i_] == '\n') break;
      cur_.text.push_back(s_[i_]);
      advance();
    }
    emit();
  }

  void line_comment() {
    begin(TokKind::kComment);
    advance();  // '/'
    advance();  // '/'
    while (i_ < s_.size() && s_[i_] != '\n') {
      cur_.text.push_back(s_[i_]);
      advance();
    }
    emit();
  }

  void block_comment() {
    begin(TokKind::kComment);
    advance();  // '/'
    advance();  // '*'
    while (i_ < s_.size()) {
      if (s_[i_] == '*' && i_ + 1 < s_.size() && s_[i_ + 1] == '/') {
        advance();
        advance();
        break;
      }
      cur_.text.push_back(s_[i_]);
      advance();
    }
    emit();
  }

  /// Ordinary "..." literal; the opening quote is at i_.
  void string_literal() {
    begin(TokKind::kString);
    advance();  // '"'
    while (i_ < s_.size()) {
      if (s_[i_] == '\\' && i_ + 1 < s_.size()) {
        cur_.text.push_back(s_[i_]);
        advance();
        cur_.text.push_back(s_[i_]);
        advance();
        continue;
      }
      if (s_[i_] == '"') {
        advance();
        break;
      }
      cur_.text.push_back(s_[i_]);
      advance();
    }
    emit();
  }

  /// R"delim( ... )delim" — the opening quote is at i_ (prefix consumed by
  /// identifier()).
  void raw_string_literal() {
    begin(TokKind::kString);
    advance();  // '"'
    std::string delim;
    while (i_ < s_.size() && s_[i_] != '(' && s_[i_] != '\n') {
      delim.push_back(s_[i_]);
      advance();
    }
    if (i_ < s_.size() && s_[i_] == '(') advance();
    const std::string closer = ")" + delim + "\"";
    while (i_ < s_.size()) {
      if (s_.compare(i_, closer.size(), closer) == 0) {
        for (std::size_t k = 0; k < closer.size(); ++k) advance();
        break;
      }
      cur_.text.push_back(s_[i_]);
      advance();
    }
    emit();
  }

  void char_literal() {
    begin(TokKind::kChar);
    advance();  // '\''
    while (i_ < s_.size()) {
      if (s_[i_] == '\\' && i_ + 1 < s_.size()) {
        cur_.text.push_back(s_[i_]);
        advance();
        cur_.text.push_back(s_[i_]);
        advance();
        continue;
      }
      if (s_[i_] == '\'' || s_[i_] == '\n') {
        if (s_[i_] == '\'') advance();
        break;
      }
      cur_.text.push_back(s_[i_]);
      advance();
    }
    emit();
  }

  /// Loose numeric literal: digits, hex/bin/octal bodies, digit separators,
  /// exponents with signs, and type suffixes.
  void number() {
    begin(TokKind::kNumber);
    while (i_ < s_.size()) {
      const char c = s_[i_];
      if (std::isalnum(static_cast<unsigned char>(c)) || c == '.' ||
          (c == '\'' && i_ + 1 < s_.size() &&
           std::isalnum(static_cast<unsigned char>(s_[i_ + 1])))) {
        cur_.text.push_back(c);
        advance();
        continue;
      }
      if ((c == '+' || c == '-') && !cur_.text.empty()) {
        const char prev = cur_.text.back();
        if (prev == 'e' || prev == 'E' || prev == 'p' || prev == 'P') {
          cur_.text.push_back(c);
          advance();
          continue;
        }
      }
      break;
    }
    emit();
  }

  void identifier() {
    begin(TokKind::kIdent);
    while (i_ < s_.size() && ident_char(s_[i_])) {
      cur_.text.push_back(s_[i_]);
      advance();
    }
    // A string literal glued to this identifier makes it a literal prefix,
    // not an identifier: R"(...)", u8"...", L'x'.
    if (i_ < s_.size() && s_[i_] == '"') {
      if (raw_prefix(cur_.text)) {
        raw_string_literal();
        return;
      }
      if (str_prefix(cur_.text)) {
        string_literal();
        return;
      }
    }
    if (i_ < s_.size() && s_[i_] == '\'' && str_prefix(cur_.text)) {
      char_literal();
      return;
    }
    emit();
  }

  const std::string& s_;
  std::size_t i_ = 0;
  int line_ = 1;
  std::size_t col_ = 0;
  bool at_line_start_ = true;
  Tok cur_;
  std::vector<Tok> out_;
};

}  // namespace

std::vector<Tok> lex(const std::string& content) {
  return Lexer(content).run();
}

}  // namespace gka_lint
