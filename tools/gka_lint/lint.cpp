// gka_lint engine: orchestrates the rule families over file models, applies
// inline suppressions, and implements the suppression-hygiene meta rules
// (GKA007 stale allow, GKA008 missing reason).
#include "gka_lint/lint.h"

#include <algorithm>
#include <atomic>
#include <cctype>
#include <chrono>
#include <map>
#include <set>
#include <sstream>
#include <thread>

#include "gka_lint/callgraph.h"
#include "gka_lint/model.h"
#include "gka_lint/rules_internal.h"

namespace gka_lint {

namespace {

// ---------------------------------------------------------------------------
// identifier classification

const char* const kSecretComponents[] = {
    "key",    "keys",   "secret", "secrets", "exponent",
    "share",  "shares", "mac",    "tag",
};

// A component that marks a name as public, derived, or merely key-adjacent
// metadata. "bkey" is TGDH/STR's blinded (public) key; epochs, listeners and
// fingerprints are about keys but are not key material. "ms" marks a
// latency/timestamp ("event_to_key_ms") and "installs" an install-event
// count — timing and cardinality metadata about keys, like "time"/"epoch".
const char* const kAllowComponents[] = {
    "bkey",   "bkeys", "bk",          "br",       "pub",    "public",
    "verify", "fingerprint", "fp",    "epoch",    "has",    "listener",
    "time",   "kind",  "confirmation", "agreement", "tree",  "size",
    "len",    "id",    "epochs",      "name",     "schedule", "ms",
    "installs",
};

std::vector<std::string> components(const std::string& ident) {
  std::vector<std::string> out;
  std::string cur;
  for (char c : ident) {
    if (c == '_') {
      if (!cur.empty()) out.push_back(cur);
      cur.clear();
    } else {
      cur.push_back(static_cast<char>(std::tolower(static_cast<unsigned char>(c))));
    }
  }
  if (!cur.empty()) out.push_back(cur);
  return out;
}

bool in_list(const std::string& s, const char* const* list, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i)
    if (s == list[i]) return true;
  return false;
}

Severity rule_severity(const std::string& id) {
  for (const Rule& r : rules())
    if (id == r.id) return r.severity;
  return Severity::kError;
}

// ---------------------------------------------------------------------------
// suppression resolution

/// Applies a file's allow() markers to its raw findings, records which
/// allows were used, and appends the GKA007/GKA008 meta findings. An allow
/// covers its own line and the following line (matching the established
/// same-line / previous-line comment styles).
void resolve_suppressions(const FileModel& m, std::vector<RawFinding>& raw,
                          std::vector<Finding>& out) {
  std::map<const Allow*, std::set<std::string>> used;  // allow -> ids used
  for (RawFinding& f : raw) {
    bool suppressed = false;
    for (const Allow& a : m.allows) {
      if (a.line != f.line && a.line != f.line - 1) continue;
      if (std::find(a.ids.begin(), a.ids.end(), f.rule) == a.ids.end())
        continue;
      used[&a].insert(f.rule);
      suppressed = true;
    }
    if (!suppressed)
      out.push_back({f.rule, rule_severity(f.rule), f.path, f.line,
                     std::move(f.message)});
  }

  for (const Allow& a : m.allows) {
    for (const std::string& id : a.ids) {
      const auto it = used.find(&a);
      if (it == used.end() || it->second.count(id) == 0) {
        out.push_back({"GKA007", rule_severity("GKA007"), m.path, a.line,
                       "stale suppression: allow(" + id +
                           ") no longer matches any finding; remove it"});
      }
    }
    if (!a.has_reason) {
      out.push_back({"GKA008", rule_severity("GKA008"), m.path, a.line,
                     "suppression without a reason; write `gka-lint: "
                     "allow(...) -- why this is safe`"});
    }
  }
}

/// Per-file rules (GKA0xx + GKA2xx + GKA3xx/4xx + GKA5xx/6xx) into `out`,
/// suppressions applied. `iv` carries the interprocedural taint summaries
/// (may be null); `facts`/`guard_closure` the lock-discipline view.
void lint_one(const FileModel& m, const std::vector<std::string>& taint_seed,
              const InterprocView* iv, const LockFacts& facts,
              const std::vector<const FieldGuard*>& guard_closure,
              std::vector<Finding>& out) {
  if (m.skip_file) return;
  std::vector<RawFinding> raw;
  const Sink sink = [&raw](RawFinding f) { raw.push_back(std::move(f)); };
  run_core_rules(m, sink);
  run_taint_rules(m, taint_seed, iv, sink);
  run_determinism_rules(m, sink);
  run_lock_rules(m, guard_closure, facts, sink);
  resolve_suppressions(m, raw, out);
}

void sort_findings(std::vector<Finding>& fs) {
  std::stable_sort(fs.begin(), fs.end(),
                   [](const Finding& a, const Finding& b) {
                     if (a.path != b.path) return a.path < b.path;
                     if (a.line != b.line) return a.line < b.line;
                     return a.rule < b.rule;
                   });
}

}  // namespace

const std::vector<Rule>& rules() {
  static const std::vector<Rule> kRules = {
      {"GKA001", Severity::kError,
       "raw equality (memcmp / == / EXPECT_EQ) on secret material; use "
       "ct_equal"},
      {"GKA002", Severity::kError,
       "secret material passed to a logging/formatting sink; log "
       "key_fingerprint() instead"},
      {"GKA003", Severity::kError,
       "ambient randomness outside util/random_source.h and the DRBG"},
      {"GKA004", Severity::kWarning,
       "secret-named field not held in zeroizing Secure* storage"},
      {"GKA005", Severity::kWarning, "TODO/FIXME in a crypto path"},
      {"GKA006", Severity::kError,
       "secret material passed into a trace/metric attribute sink; record a "
       "fingerprint or a size instead"},
      {"GKA007", Severity::kWarning,
       "stale allow() suppression that no longer matches any finding"},
      {"GKA008", Severity::kWarning,
       "allow() suppression without a reason string"},
      {"GKA009", Severity::kError,
       "wire Reader constructed outside a validate_and_decode entrypoint in "
       "src/core or src/gcs; parse untrusted bytes only behind the typed "
       "reject path"},
      {"GKA101", Severity::kError,
       "include edge violates the subsystem layering DAG (util -> bignum -> "
       "crypto -> core -> {sim, gcs} -> server -> harness; obs from core "
       "up)"},
      {"GKA102", Severity::kError, "cycle in the file-level include graph"},
      {"GKA201", Severity::kError,
       "secret-derived value escapes into a raw byte/string local without "
       "an approved boundary"},
      {"GKA202", Severity::kError,
       "secret-derived value returned as a raw byte/string type"},
      {"GKA203", Severity::kError,
       "secret-derived value reaches a logging/trace/metric sink "
       "(taint-based, interprocedural over the cross-TU call graph)"},
      {"GKA301", Severity::kError,
       "unordered container in a deterministic subsystem (src/core, src/sim, "
       "src/gcs, src/fault, src/server); iteration order is not reproducible "
       "— use std::map/std::set"},
      {"GKA302", Severity::kWarning,
       "container ordered or hashed by pointer value in a deterministic "
       "subsystem; addresses vary per run (ASLR) — key by a stable id"},
      {"GKA303", Severity::kError,
       "wall-clock read (system_clock) outside the wallclock boundary "
       "(src/obs/wallclock.{h,cpp})"},
      {"GKA304", Severity::kError,
       "host monotonic clock (steady_clock/high_resolution_clock) outside "
       "the wallclock boundary; virtual time comes from Simulator::now(), "
       "host ns/op from obs::WallScope"},
      {"GKA305", Severity::kError,
       "ambient time/env entropy (time(nullptr), clock(), getpid, getenv) "
       "outside util/random_source and the DRBG"},
      {"GKA306", Severity::kWarning,
       "pointer-to-integer reinterpret_cast in a deterministic subsystem; "
       "the value is an address and varies per run"},
      {"GKA401", Severity::kError,
       "mutable namespace-scope state in src/core, src/sim, src/gcs, or "
       "src/server; couples simulation runs — make it const or pass it "
       "through the scenario"},
      {"GKA402", Severity::kError,
       "mutable function-local static in src/core, src/sim, src/gcs, or "
       "src/server; hidden shared state plus an initialization race once "
       "runs go parallel"},
      {"GKA501", Severity::kError,
       "SGK_GUARDED_BY field accessed without its mutex held; take a "
       "std::lock_guard or annotate the accessor with SGK_REQUIRES"},
      {"GKA502", Severity::kError,
       "function called without its SGK_REQUIRES capability held (or with "
       "an SGK_EXCLUDES capability held); annotations merge across TUs by "
       "name"},
      {"GKA503", Severity::kError,
       "lock acquired but not released on some path (bare lock() without "
       "unlock() at exit, or a conditional early return while held); use "
       "std::lock_guard or declare SGK_ACQUIRE"},
      {"GKA504", Severity::kError,
       "mutable sim/gcs/server structure with no concurrency classification; "
       "guard fields with SGK_GUARDED_BY or mark the type "
       "SGK_CONFINED_TO_RUN"},
      {"GKA601", Severity::kError,
       "secret-derived value in an if/while/switch/ternary condition (or "
       "passed to a callee that branches on it, interprocedurally); "
       "execution time becomes key-dependent"},
      {"GKA602", Severity::kError,
       "secret-derived loop bound or early-return/break guard; iteration "
       "count leaks secret structure — use fixed trip counts"},
      {"GKA603", Severity::kError,
       "secret-derived array/Bytes index; memory access pattern leaks the "
       "secret through cache timing — use a masked/constant-time select"},
  };
  return kRules;
}

bool is_secretish(const std::string& ident) {
  bool secret = false;
  for (const std::string& c : components(ident)) {
    if (in_list(c, kAllowComponents,
                sizeof(kAllowComponents) / sizeof(kAllowComponents[0])))
      return false;
    if (in_list(c, kSecretComponents,
                sizeof(kSecretComponents) / sizeof(kSecretComponents[0])))
      secret = true;
  }
  return secret;
}

std::string format(const Finding& f) {
  std::ostringstream os;
  os << f.path << ':' << f.line << ": [" << f.rule << "] "
     << (f.severity == Severity::kError ? "error" : "warning") << ": "
     << f.message;
  return os.str();
}

std::vector<Finding> lint_source(const std::string& path,
                                 const std::string& content) {
  std::vector<Finding> out;
  std::vector<FileModel> models;
  models.push_back(build_model(path, content));
  const FileModel& m = models.front();

  // Single-file mode still gets the interprocedural layer, scoped to this
  // translation unit: a helper defined above its caller in the same file is
  // summarized and consulted.
  CallGraph cg;
  cg.build(models);
  std::map<const FileModel*, std::vector<std::string>> seeds;
  seeds[&m] = m.secure_idents;
  const SummaryMap summaries = compute_taint_summaries(models, cg, seeds);
  const InterprocView iv(cg, summaries);
  const LockFacts facts = compute_lock_facts(models, cg);
  std::vector<const FieldGuard*> guard_closure;
  for (const FieldGuard& g : m.field_guards) guard_closure.push_back(&g);

  lint_one(m, m.secure_idents, &iv, facts, guard_closure, out);
  sort_findings(out);
  return out;
}

std::vector<Finding> lint_project(const std::vector<SourceFile>& files) {
  return lint_project(files, 1, nullptr);
}

std::vector<Finding> lint_project(const std::vector<SourceFile>& files,
                                  int jobs, LintStats* stats) {
  const auto t0 = std::chrono::steady_clock::now();

  // Model building (lex + extract) is per-file independent — the only
  // parallel phase. Workers claim indices off an atomic counter and write
  // into pre-sized slots, so the result vector is in input order and every
  // later phase is identical for any jobs value.
  std::vector<FileModel> models(files.size());
  const int workers = std::min<int>(std::max(jobs, 1),
                                    static_cast<int>(files.size()) > 0
                                        ? static_cast<int>(files.size())
                                        : 1);
  if (workers <= 1) {
    for (std::size_t i = 0; i < files.size(); ++i)
      models[i] = build_model(files[i].path, files[i].content);
  } else {
    std::atomic<std::size_t> next{0};
    std::vector<std::thread> pool;
    pool.reserve(static_cast<std::size_t>(workers));
    for (int w = 0; w < workers; ++w) {
      pool.emplace_back([&] {
        for (std::size_t i = next.fetch_add(1); i < files.size();
             i = next.fetch_add(1))
          models[i] = build_model(files[i].path, files[i].content);
      });
    }
    for (std::thread& t : pool) t.join();
  }

  const auto t1 = std::chrono::steady_clock::now();

  // Taint seeds follow the include graph: a file sees the Secure*-typed
  // symbols of every header reachable from it (and its own), mirroring
  // actual visibility — a SecureBytes field declared in gcs/secure_group.h
  // taints uses of that name in gcs/secure_group.cpp, but a secret local
  // named `k` in an unrelated .cpp taints nothing else.
  std::map<std::string, const FileModel*> by_path;
  for (const FileModel& m : models) by_path[m.path] = &m;
  auto resolve = [&](const std::string& target) -> const FileModel* {
    const auto it = by_path.find("src/" + target);
    return it == by_path.end() ? nullptr : it->second;
  };
  // Field-guard maps (GKA501) follow the same closure: a SGK_GUARDED_BY in
  // a header protects that field's uses in every file that includes it.
  std::map<const FileModel*, std::vector<std::string>> seeds;
  std::map<const FileModel*, std::vector<const FieldGuard*>> guard_closures;
  for (const FileModel& m : models) {
    std::set<std::string> names(m.secure_idents.begin(),
                                m.secure_idents.end());
    std::vector<const FieldGuard*>& guards = guard_closures[&m];
    for (const FieldGuard& g : m.field_guards) guards.push_back(&g);
    std::set<const FileModel*> visited{&m};
    std::vector<const FileModel*> queue{&m};
    while (!queue.empty()) {
      const FileModel* cur = queue.back();
      queue.pop_back();
      for (const Include& inc : cur->includes) {
        const FileModel* dep = resolve(inc.target);
        if (dep == nullptr || !visited.insert(dep).second) continue;
        names.insert(dep->secure_idents.begin(), dep->secure_idents.end());
        for (const FieldGuard& g : dep->field_guards) guards.push_back(&g);
        queue.push_back(dep);
      }
    }
    seeds[&m] = std::vector<std::string>(names.begin(), names.end());
  }

  // Interprocedural layer: cross-TU call graph + per-function taint
  // summaries to a fixpoint. Serial — the fixpoint is a whole-program
  // computation and the rule phase is cheap next to model building.
  CallGraph cg;
  cg.build(models);
  const SummaryMap summaries = compute_taint_summaries(models, cg, seeds);
  const InterprocView iv(cg, summaries);
  const LockFacts facts = compute_lock_facts(models, cg);

  std::vector<Finding> out;
  for (const FileModel& m : models)
    lint_one(m, seeds[&m], &iv, facts, guard_closures[&m], out);

  // Project-wide architecture rules (suppressions still apply, resolved
  // against the reporting file's allow markers).
  std::vector<RawFinding> arch_raw;
  run_arch_rules(models, [&](RawFinding f) { arch_raw.push_back(std::move(f)); });
  std::map<std::string, std::vector<RawFinding>> arch_by_file;
  for (RawFinding& f : arch_raw) arch_by_file[f.path].push_back(std::move(f));
  for (const FileModel& m : models) {
    const auto it = arch_by_file.find(m.path);
    if (it == arch_by_file.end() || m.skip_file) continue;
    // Meta findings for these files were already emitted by lint_one; only
    // filter the arch findings against the allows here.
    for (RawFinding& f : it->second) {
      bool suppressed = false;
      for (const Allow& a : m.allows) {
        if (a.line != f.line && a.line != f.line - 1) continue;
        if (std::find(a.ids.begin(), a.ids.end(), f.rule) != a.ids.end())
          suppressed = true;
      }
      if (!suppressed)
        out.push_back({f.rule, rule_severity(f.rule), f.path, f.line,
                       std::move(f.message)});
    }
  }

  sort_findings(out);

  if (stats != nullptr) {
    const auto t2 = std::chrono::steady_clock::now();
    stats->files = files.size();
    stats->model_ms =
        std::chrono::duration_cast<std::chrono::milliseconds>(t1 - t0).count();
    stats->analyze_ms =
        std::chrono::duration_cast<std::chrono::milliseconds>(t2 - t1).count();
  }
  return out;
}

// ---------------------------------------------------------------------------
// shared line helpers (declared in rules_internal.h)

namespace {
bool ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}
bool ident_start(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}
}  // namespace

std::vector<LineTok> line_identifiers(const std::string& code) {
  std::vector<LineTok> out;
  std::size_t i = 0;
  while (i < code.size()) {
    if (ident_start(code[i]) && (i == 0 || !ident_char(code[i - 1]))) {
      std::size_t j = i;
      while (j < code.size() && ident_char(code[j])) ++j;
      out.push_back({code.substr(i, j - i), i});
      i = j;
    } else {
      ++i;
    }
  }
  return out;
}

std::vector<std::pair<std::size_t, std::size_t>> call_args(
    const std::string& code, std::size_t open) {
  std::vector<std::pair<std::size_t, std::size_t>> out;
  int depth = 0;
  std::size_t start = open + 1;
  for (std::size_t i = open; i < code.size(); ++i) {
    const char c = code[i];
    if (c == '(' || c == '[' || c == '{') {
      ++depth;
    } else if (c == ')' || c == ']' || c == '}') {
      --depth;
      if (depth == 0) {
        if (i > start) out.push_back({start, i});
        return out;
      }
    } else if (c == ',' && depth == 1) {
      out.push_back({start, i});
      start = i + 1;
    }
  }
  if (code.size() > start) out.push_back({start, code.size()});
  return out;
}

const LineTok* operand_name(const std::string& code,
                            const std::vector<LineTok>& ids,
                            std::size_t begin, std::size_t end) {
  const LineTok* best = nullptr;
  int bracket = 0;
  std::size_t i = begin;
  std::size_t next_id = 0;
  while (next_id < ids.size() && ids[next_id].pos < begin) ++next_id;
  for (; i < end; ++i) {
    if (code[i] == '[') ++bracket;
    if (code[i] == ']' && bracket > 0) --bracket;
    if (next_id < ids.size() && ids[next_id].pos == i) {
      if (bracket == 0 && ids[next_id].pos + ids[next_id].text.size() <= end)
        best = &ids[next_id];
      ++next_id;
    }
  }
  return best;
}

bool path_has_prefix(const std::string& path, const std::string& prefix) {
  return path.rfind(prefix, 0) == 0;
}

bool path_contains(const std::string& path, const std::string& needle) {
  return path.find(needle) != std::string::npos;
}

bool ends_with(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

std::vector<std::string> enclosing_calls(const std::string& code,
                                         const std::vector<LineTok>& ids,
                                         std::size_t pos) {
  std::vector<std::string> out;
  int depth = 0;
  for (std::size_t i = pos; i-- > 0;) {
    const char c = code[i];
    if (c == ')' || c == ']' || c == '}') ++depth;
    if (c == '(' || c == '[' || c == '{') {
      if (depth > 0) {
        --depth;
        continue;
      }
      if (c == '(') {
        // The identifier ending right before this '(' names the call.
        for (const LineTok& t : ids) {
          if (t.pos + t.text.size() == i) {
            out.push_back(t.text);
            break;
          }
        }
      }
      // Keep walking outward (depth stays 0: we are now outside this group).
    }
  }
  return out;
}

}  // namespace gka_lint
