#include "gka_lint/lint.h"

#include <algorithm>
#include <cctype>
#include <sstream>

namespace gka_lint {

namespace {

// ---------------------------------------------------------------------------
// identifier classification

const char* const kSecretComponents[] = {
    "key",    "keys",   "secret", "secrets", "exponent",
    "share",  "shares", "mac",    "tag",
};

// A component that marks a name as public, derived, or merely key-adjacent
// metadata. "bkey" is TGDH/STR's blinded (public) key; epochs, listeners and
// fingerprints are about keys but are not key material.
const char* const kAllowComponents[] = {
    "bkey",   "bkeys", "bk",          "br",       "pub",    "public",
    "verify", "fingerprint", "fp",    "epoch",    "has",    "listener",
    "time",   "kind",  "confirmation", "agreement", "tree",  "size",
    "len",    "id",    "epochs",      "name",     "schedule",
};

std::vector<std::string> components(const std::string& ident) {
  std::vector<std::string> out;
  std::string cur;
  for (char c : ident) {
    if (c == '_') {
      if (!cur.empty()) out.push_back(cur);
      cur.clear();
    } else {
      cur.push_back(static_cast<char>(std::tolower(static_cast<unsigned char>(c))));
    }
  }
  if (!cur.empty()) out.push_back(cur);
  return out;
}

bool in_list(const std::string& s, const char* const* list, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i)
    if (s == list[i]) return true;
  return false;
}

// ---------------------------------------------------------------------------
// per-line lexing helpers

bool ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

bool ident_start(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}

struct Token {
  std::string text;
  std::size_t pos;
};

std::vector<Token> identifiers(const std::string& code) {
  std::vector<Token> out;
  std::size_t i = 0;
  while (i < code.size()) {
    if (ident_start(code[i]) &&
        (i == 0 || !ident_char(code[i - 1]))) {
      std::size_t j = i;
      while (j < code.size() && ident_char(code[j])) ++j;
      out.push_back({code.substr(i, j - i), i});
      i = j;
    } else {
      ++i;
    }
  }
  return out;
}

/// Splits the top-level comma-separated arguments of a call whose opening
/// paren is at `open`. Returns the [begin,end) ranges of each argument.
std::vector<std::pair<std::size_t, std::size_t>> call_args(
    const std::string& code, std::size_t open) {
  std::vector<std::pair<std::size_t, std::size_t>> out;
  int depth = 0;
  std::size_t start = open + 1;
  for (std::size_t i = open; i < code.size(); ++i) {
    const char c = code[i];
    if (c == '(' || c == '[' || c == '{') {
      ++depth;
    } else if (c == ')' || c == ']' || c == '}') {
      --depth;
      if (depth == 0) {
        if (i > start) out.push_back({start, i});
        return out;
      }
    } else if (c == ',' && depth == 1) {
      out.push_back({start, i});
      start = i + 1;
    }
  }
  if (code.size() > start) out.push_back({start, code.size()});
  return out;
}

/// Last identifier inside [begin, end) — the heuristic "name of the operand":
/// for `m->key()` that is `key`, for `f.members[i]` it is... the subscript;
/// to avoid index variables winning, prefer the last identifier that is
/// followed by `(`, `.`-end, or is the final token; in practice "last
/// identifier not used as an index" ≈ last identifier before any trailing
/// `[...]` subscript. We keep it simple: last identifier whose position is
/// not inside a `[...]` range.
const Token* operand_name(const std::string& code,
                          const std::vector<Token>& ids, std::size_t begin,
                          std::size_t end) {
  const Token* best = nullptr;
  int bracket = 0;
  std::size_t i = begin;
  std::size_t next_id = 0;
  while (next_id < ids.size() && ids[next_id].pos < begin) ++next_id;
  for (; i < end; ++i) {
    if (code[i] == '[') ++bracket;
    if (code[i] == ']' && bracket > 0) --bracket;
    if (next_id < ids.size() && ids[next_id].pos == i) {
      if (bracket == 0 && ids[next_id].pos + ids[next_id].text.size() <= end)
        best = &ids[next_id];
      ++next_id;
    }
  }
  return best;
}

bool path_has_prefix(const std::string& path, const std::string& prefix) {
  return path.rfind(prefix, 0) == 0;
}

bool path_contains(const std::string& path, const std::string& needle) {
  return path.find(needle) != std::string::npos;
}

bool ends_with(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

// ---------------------------------------------------------------------------
// suppression comments

/// Rule IDs named by `gka-lint: allow(...)` markers on the raw line.
std::vector<std::string> allows_on(const std::string& raw) {
  std::vector<std::string> out;
  std::size_t at = 0;
  const std::string marker = "gka-lint: allow(";
  while ((at = raw.find(marker, at)) != std::string::npos) {
    std::size_t open = at + marker.size();
    std::size_t close = raw.find(')', open);
    if (close == std::string::npos) break;
    std::stringstream list(raw.substr(open, close - open));
    std::string id;
    while (std::getline(list, id, ',')) {
      id.erase(std::remove_if(id.begin(), id.end(),
                              [](unsigned char c) { return std::isspace(c); }),
               id.end());
      if (!id.empty()) out.push_back(id);
    }
    at = close;
  }
  return out;
}

}  // namespace

const std::vector<Rule>& rules() {
  static const std::vector<Rule> kRules = {
      {"GKA001", Severity::kError,
       "raw equality (memcmp / == / EXPECT_EQ) on secret material; use "
       "ct_equal"},
      {"GKA002", Severity::kError,
       "secret material passed to a logging/formatting sink; log "
       "key_fingerprint() instead"},
      {"GKA003", Severity::kError,
       "ambient randomness outside util/random_source.h and the DRBG"},
      {"GKA004", Severity::kWarning,
       "secret-named field not held in zeroizing Secure* storage"},
      {"GKA005", Severity::kWarning, "TODO/FIXME in a crypto path"},
      {"GKA006", Severity::kError,
       "secret material passed into a trace/metric attribute sink; record a "
       "fingerprint or a size instead"},
  };
  return kRules;
}

bool is_secretish(const std::string& ident) {
  bool secret = false;
  for (const std::string& c : components(ident)) {
    if (in_list(c, kAllowComponents,
                sizeof(kAllowComponents) / sizeof(kAllowComponents[0])))
      return false;
    if (in_list(c, kSecretComponents,
                sizeof(kSecretComponents) / sizeof(kSecretComponents[0])))
      secret = true;
  }
  return secret;
}

std::string format(const Finding& f) {
  std::ostringstream os;
  os << f.path << ':' << f.line << ": [" << f.rule << "] "
     << (f.severity == Severity::kError ? "error" : "warning") << ": "
     << f.message;
  return os.str();
}

std::vector<Finding> lint_source(const std::string& path,
                                 const std::string& content) {
  std::vector<Finding> findings;
  if (content.find("gka-lint: skip-file") != std::string::npos)
    return findings;

  // Split into raw lines.
  std::vector<std::string> raw;
  {
    std::string cur;
    for (char c : content) {
      if (c == '\n') {
        raw.push_back(cur);
        cur.clear();
      } else {
        cur.push_back(c);
      }
    }
    if (!cur.empty()) raw.push_back(cur);
  }

  // Strip comments and string/char literals, producing a "code" view of each
  // line. Block-comment state carries across lines.
  std::vector<std::string> code(raw.size());
  bool in_block = false;
  for (std::size_t li = 0; li < raw.size(); ++li) {
    const std::string& line = raw[li];
    std::string& out = code[li];
    out.reserve(line.size());
    for (std::size_t i = 0; i < line.size(); ++i) {
      if (in_block) {
        if (line[i] == '*' && i + 1 < line.size() && line[i + 1] == '/') {
          in_block = false;
          ++i;
        }
        out.push_back(' ');
        continue;
      }
      const char c = line[i];
      if (c == '/' && i + 1 < line.size() && line[i + 1] == '/') break;
      if (c == '/' && i + 1 < line.size() && line[i + 1] == '*') {
        in_block = true;
        out.push_back(' ');
        out.push_back(' ');
        ++i;
        continue;
      }
      if (c == '"' || c == '\'') {
        const char quote = c;
        out.push_back(quote);
        ++i;
        while (i < line.size()) {
          if (line[i] == '\\') {
            i += 2;
            continue;
          }
          if (line[i] == quote) break;
          ++i;
        }
        out.push_back(quote);
        continue;
      }
      out.push_back(c);
    }
  }

  const bool header = ends_with(path, ".h") || ends_with(path, ".hpp");
  const bool crypto_path = path_has_prefix(path, "src/crypto") ||
                           path_has_prefix(path, "src/bignum") ||
                           path_has_prefix(path, "src/core");
  const bool randomness_ok = path_contains(path, "util/random_source") ||
                             path_contains(path, "crypto/drbg");

  auto suppressed = [&](std::size_t li, const char* rule) {
    std::vector<std::string> ids = allows_on(raw[li]);
    if (li > 0) {
      std::vector<std::string> prev = allows_on(raw[li - 1]);
      ids.insert(ids.end(), prev.begin(), prev.end());
    }
    return std::find(ids.begin(), ids.end(), rule) != ids.end();
  };

  auto report = [&](std::size_t li, const char* rule, Severity sev,
                    std::string message) {
    if (suppressed(li, rule)) return;
    findings.push_back(
        {rule, sev, path, static_cast<int>(li) + 1, std::move(message)});
  };

  for (std::size_t li = 0; li < code.size(); ++li) {
    const std::string& c = code[li];
    const std::vector<Token> ids = identifiers(c);

    // --- GKA001: raw equality on secret material -------------------------
    // (a) == / != operators. Each operand is the text between the operator
    // and the nearest expression delimiter; its *last* identifier names the
    // compared thing (`it == keys_.end()` compares `end`, not `keys_`, so
    // iterator-membership idioms don't trip the rule).
    const std::string lhs_stops = ",;({}&|?=!";
    const std::string rhs_stops = ",;)}&|?";
    for (std::size_t i = 0; i + 1 < c.size(); ++i) {
      if ((c[i] == '=' || c[i] == '!') && c[i + 1] == '=' &&
          (i == 0 || (c[i - 1] != '=' && c[i - 1] != '!' && c[i - 1] != '<' &&
                      c[i - 1] != '>')) &&
          (i + 2 >= c.size() || c[i + 2] != '=')) {
        std::size_t lb = 0;
        for (std::size_t j = i; j > 0; --j) {
          if (lhs_stops.find(c[j - 1]) != std::string::npos) {
            lb = j;
            break;
          }
        }
        std::size_t re = c.size();
        for (std::size_t j = i + 2; j < c.size(); ++j) {
          if (rhs_stops.find(c[j]) != std::string::npos) {
            re = j;
            break;
          }
        }
        const Token* lhs = operand_name(c, ids, lb, i);
        const Token* rhs = operand_name(c, ids, i + 2, re);
        for (const Token* t : {lhs, rhs}) {
          if (t != nullptr && is_secretish(t->text)) {
            report(li, "GKA001", Severity::kError,
                   "raw comparison touches secret '" + t->text +
                       "'; use ct_equal");
            break;
          }
        }
      }
    }
    // (b) memcmp / gtest equality macros.
    for (const char* call :
         {"memcmp", "EXPECT_EQ", "EXPECT_NE", "ASSERT_EQ", "ASSERT_NE"}) {
      for (const Token& t : ids) {
        if (t.text != call) continue;
        const std::size_t open = t.pos + t.text.size();
        if (open >= c.size() || c[open] != '(') continue;
        const auto args = call_args(c, open);
        const std::size_t nargs = std::min<std::size_t>(args.size(), 2);
        for (std::size_t a = 0; a < nargs; ++a) {
          const Token* name =
              operand_name(c, ids, args[a].first, args[a].second);
          if (name != nullptr && is_secretish(name->text)) {
            report(li, "GKA001", Severity::kError,
                   std::string(call) + " on secret '" + name->text +
                       "'; use ct_equal");
            break;
          }
        }
      }
    }

    // --- GKA002: secret material reaching a logging/formatting sink ------
    for (const char* sink : {"to_hex", "printf", "fprintf", "report",
                             "cout", "cerr", "clog"}) {
      for (const Token& t : ids) {
        if (t.text != sink) continue;
        // Only identifiers to the right of the sink are its payload.
        bool hit = false;
        for (const Token& arg : ids) {
          if (arg.pos <= t.pos) continue;
          if (is_secretish(arg.text)) {
            report(li, "GKA002", Severity::kError,
                   "secret '" + arg.text + "' reaches sink '" + t.text +
                       "'; log a fingerprint instead");
            hit = true;
            break;
          }
        }
        if (hit) break;
      }
    }

    // --- GKA006: secret material into a trace/metric attribute sink ------
    // Observability data leaves the process (BENCH_*.json, Chrome traces),
    // so the obs API is a logging sink in the GKA002 sense. Matches calls
    // only (the token must be followed by '('), so declarations of these
    // methods don't self-flag.
    for (const char* sink :
         {"attr", "event_attr", "instant", "phase", "mark_phase", "mark_point",
          "begin_event", "begin_span_at", "observe", "counter", "histogram",
          "set_track_name"}) {
      for (const Token& t : ids) {
        if (t.text != sink) continue;
        const std::size_t open = t.pos + t.text.size();
        if (open >= c.size() || c[open] != '(') continue;
        bool hit = false;
        for (const auto& [ab, ae] : call_args(c, open)) {
          for (const Token& arg : ids) {
            if (arg.pos < ab || arg.pos >= ae) continue;
            if (is_secretish(arg.text)) {
              report(li, "GKA006", Severity::kError,
                     "secret '" + arg.text + "' reaches trace/metric sink '" +
                         t.text + "'; record a fingerprint or a size instead");
              hit = true;
              break;
            }
          }
          if (hit) break;
        }
        if (hit) break;
      }
    }

    // --- GKA003: ambient randomness --------------------------------------
    if (!randomness_ok) {
      for (const char* bad :
           {"rand", "srand", "random_device", "mt19937", "mt19937_64",
            "default_random_engine", "minstd_rand"}) {
        for (const Token& t : ids) {
          if (t.text == bad) {
            report(li, "GKA003", Severity::kError,
                   "ambient randomness '" + t.text +
                       "'; use RandomSource / the DRBG");
          }
        }
      }
    }

    // --- GKA004: secret-named field without Secure* storage --------------
    if (header && ids.size() >= 2 && !c.empty()) {
      // Declaration shape: ...Type name;  or  ...Type name = init;
      // (assignments `name = ...;` have only one identifier before '=').
      const std::string trimmed_end = c.substr(0, c.find_last_not_of(" \t") + 1);
      if (ends_with(trimmed_end, ";") && c.find('(') == std::string::npos &&
          c.find("return") == std::string::npos &&
          c.find("using") == std::string::npos) {
        const std::size_t eq = c.find('=');
        const std::size_t decl_end =
            eq == std::string::npos ? trimmed_end.size() - 1 : eq;
        // Name = last identifier of the declarator part; type = everything
        // before it.
        const Token* name = nullptr;
        for (const Token& t : ids)
          if (t.pos + t.text.size() <= decl_end) name = &t;
        if (name != nullptr && name->pos > 0 && is_secretish(name->text)) {
          const std::string type = c.substr(0, name->pos);
          if (type.find_first_not_of(" \t") != std::string::npos &&
              type.find("Secure") == std::string::npos &&
              type.find("Verify") == std::string::npos &&
              type.find("Public") == std::string::npos) {
            report(li, "GKA004", Severity::kWarning,
                   "field '" + name->text +
                       "' holds secret material in non-zeroizing storage; "
                       "use SecureBytes / SecureBigInt");
          }
        }
      }
    }

    // --- GKA005: TODO/FIXME in crypto paths ------------------------------
    if (crypto_path) {
      if (raw[li].find("TODO") != std::string::npos ||
          raw[li].find("FIXME") != std::string::npos) {
        report(li, "GKA005", Severity::kWarning,
               "TODO/FIXME left in a crypto path");
      }
    }
  }

  return findings;
}

}  // namespace gka_lint
