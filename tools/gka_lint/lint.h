// gka_lint v4: project-specific static analysis for key-handling hygiene,
// architecture discipline, determinism, lock discipline, and constant-time
// secret handling.
//
// Built on a real (comment/string/raw-string aware) lexer with per-file
// include, symbol and function extraction — see lexer.h and model.h — plus,
// since v3, a cross-translation-unit call graph with per-function taint
// summaries computed to a fixpoint (callgraph.h), which lifts the GKA2xx
// dataflow from function-local to interprocedural. v4 reuses the same
// summary machinery for two new whole-program families: GKA5xx lock-set /
// capability analysis over the SGK_* annotations
// (src/util/thread_annotations.h) and GKA6xx secret-dependent control flow.
// Seven rule families:
//
// Key-handling rules (per file):
//   GKA001 (error)   raw equality on secret material: memcmp / operator== /
//                    EXPECT_EQ-style macros where an operand names a key,
//                    secret, exponent or share. Use ct_equal.
//   GKA002 (error)   secret material passed to a logging / formatting sink
//                    (to_hex, printf, std::cout, report, ...). Log a
//                    key_fingerprint() instead.
//   GKA003 (error)   ambient randomness (std::rand, std::random_device,
//                    std::mt19937, ...) outside the sanctioned sources
//                    (util/random_source.h and the DRBG implementation).
//   GKA004 (warning) field named like secret material (key / secret /
//                    exponent / share) whose declared type is not a
//                    zeroizing Secure* wrapper.
//   GKA005 (warning) TODO / FIXME comment in a crypto path (src/crypto,
//                    src/bignum, src/core).
//   GKA006 (error)   secret material passed into a trace/metric attribute
//                    sink; record a fingerprint or a size instead.
//
// Suppression-hygiene rules (per file, not themselves suppressible):
//   GKA007 (warning) stale suppression: an `allow(GKAnnn)` that no longer
//                    suppresses anything.
//   GKA008 (warning) suppression without a reason: every `allow()` must
//                    carry explanatory text after the closing paren, e.g.
//                    `// gka-lint: allow(GKA002) -- public test vector`.
//   GKA009 (error)   wire Reader constructed outside a validate_and_decode
//                    entrypoint in src/core or src/gcs: untrusted bytes must
//                    only be parsed behind the typed reject path, never via a
//                    bare Reader that can throw past the message handler.
//
// Architecture rules (whole project, src/ only):
//   GKA101 (error)   include edge that violates the subsystem layering DAG
//                    util -> bignum -> crypto -> core -> {sim, gcs} ->
//                    harness, with obs includable from core upward only.
//   GKA102 (error)   cycle in the file-level include graph.
//
// Secret-taint rules (interprocedural dataflow over the call graph):
//   GKA201 (error)   a value derived from SecureBytes / SecureBigInt (or
//                    from reveal(), or from a call whose taint summary says
//                    it returns secret-derived bytes) stored in a raw
//                    std::vector<uint8_t> / std::string / Bytes local
//                    without passing through an approved boundary (ct_equal,
//                    key_fingerprint, HKDF / cipher / MAC APIs,
//                    ScopedSubkey, secure_zero).
//   GKA202 (error)   a secret-derived value returned from a function whose
//                    return type is a raw byte/string type.
//   GKA203 (error)   a secret-derived value reaching a logging / trace /
//                    metric sink under a name the GKA002/GKA006 heuristics
//                    would not catch — directly, or passed into a project
//                    function (possibly defined in another file) whose
//                    summary says that parameter reaches a sink inside.
//
// Determinism rules (per file, deterministic subsystems):
//   GKA301 (error)   unordered_map/unordered_set in src/core|sim|gcs|fault;
//                    iteration order is not reproducible across runs.
//   GKA302 (warning) pointer-keyed ordered container or std::hash over a
//                    pointer type: address-dependent order (ASLR).
//   GKA303 (error)   system_clock outside the wallclock boundary (exactly
//                    src/obs/wallclock.{h,cpp}); scope is src/ and bench/.
//   GKA304 (error)   steady_clock / high_resolution_clock outside the
//                    wallclock boundary; virtual time is Simulator::now()
//                    and host ns/op comes through obs::WallScope.
//   GKA305 (error)   ambient time/env entropy — time(nullptr), clock(),
//                    getpid(), getenv() — outside util/random_source and
//                    the DRBG (complements GKA003's engine-name list).
//   GKA306 (warning) reinterpret_cast of a pointer to uintptr_t/intptr_t in
//                    a deterministic subsystem.
//
// Shared-state rules (per file, src/core|sim|gcs):
//   GKA401 (error)   mutable namespace-scope state; couples simulation runs.
//   GKA402 (error)   mutable function-local static; hidden shared state and
//                    an init race once runs go parallel.
//
// Lock-discipline rules (whole program, over the SGK_* annotations of
// src/util/thread_annotations.h; lock-sets computed to a fixpoint over the
// cross-TU call graph):
//   GKA501 (error)   SGK_GUARDED_BY field accessed without its mutex held
//                    (guard maps follow the include closure).
//   GKA502 (error)   function called without its SGK_REQUIRES capability
//                    held, or with an SGK_EXCLUDES capability held;
//                    annotations merge across TUs by function name.
//   GKA503 (error)   bare lock() not released on every path out of the
//                    function (and not declared SGK_ACQUIRE).
//   GKA504 (error)   mutable top-level structure in src/sim|src/gcs with
//                    neither SGK_GUARDED_BY members nor the
//                    SGK_CONFINED_TO_RUN classification marker.
//
// Constant-time rules (src/ only; the GKA2xx taint engine with control-flow
// sinks and a param_to_branch interprocedural summary bit; `k.size()`-style
// public-length accessors are declassified):
//   GKA601 (error)   secret-derived value in an if/while/switch/ternary
//                    condition, directly or through a summarized callee.
//   GKA602 (error)   secret-derived loop bound or early-return/break guard.
//   GKA603 (error)   secret-derived array/Bytes subscript (cache-timing
//                    channel).
//
// Suppressions:
//   - `// gka-lint: allow(GKAnnn) -- reason` on the same or the previous
//     line suppresses that rule for the line (comma-separate several IDs).
//     The reason text is mandatory (GKA008) and a suppression that stops
//     matching anything is flagged (GKA007).
//   - `gka-lint: skip-file` in a comment anywhere in a file skips the whole
//     file (for lint-rule test fixtures).
#pragma once

#include <string>
#include <vector>

namespace gka_lint {

enum class Severity { kWarning, kError };

struct Finding {
  std::string rule;  // "GKA001" ... "GKA203"
  Severity severity;
  std::string path;  // as passed to lint_source / lint_project
  int line;          // 1-based
  std::string message;
};

struct Rule {
  const char* id;
  Severity severity;
  const char* summary;
};

/// The rule table (for --list-rules, the SARIF catalog, and the tests).
const std::vector<Rule>& rules();

/// True when `ident` names secret material per the component heuristic.
bool is_secretish(const std::string& ident);

/// Lints one file in isolation: all per-file rules (GKA0xx, GKA2xx), with
/// the taint analysis seeded only from this file's Secure*-typed symbols.
/// `path` is used for findings and for the path-scoped rules — use
/// repo-relative paths like "src/crypto/dh.cpp".
std::vector<Finding> lint_source(const std::string& path,
                                 const std::string& content);

/// A file handed to the whole-project analysis.
struct SourceFile {
  std::string path;     // repo-relative
  std::string content;
};

/// Timing/size counters from one lint run, for --stats and the CI wall-time
/// budget.
struct LintStats {
  std::size_t files = 0;    // models built
  long long model_ms = 0;   // lexing + model extraction (parallel under jobs)
  long long analyze_ms = 0; // call graph, summaries, rules, suppressions
};

/// Lints a whole project: per-file rules with taint seeded from every
/// file's Secure*-typed symbols along the include graph (so a field
/// declared in a header taints its uses in the .cpp), the interprocedural
/// taint summaries over the cross-TU call graph, plus the GKA1xx
/// include-graph rules.
///
/// `jobs` parallelizes the per-file lexing/model extraction (the dominant
/// cost; the merge and rule phases stay serial so output is byte-identical
/// for any jobs value). Values < 1 mean 1. `stats`, when non-null, receives
/// phase timings.
std::vector<Finding> lint_project(const std::vector<SourceFile>& files,
                                  int jobs, LintStats* stats);
std::vector<Finding> lint_project(const std::vector<SourceFile>& files);

/// Formats a finding as "path:line: [RULE] severity: message".
std::string format(const Finding& f);

/// Machine-readable output for CI: a stable JSON object, and SARIF 2.1.0
/// for code-scanning annotation upload. Every SARIF rule carries a helpUri
/// into the docs/static_analysis.md catalog (rule_help_uri), and every
/// result echoes it in its property bag plus a ruleIndex into the catalog.
std::string to_json(const std::vector<Finding>& findings,
                    std::size_t files_scanned);
std::string to_sarif(const std::vector<Finding>& findings);

/// The docs/static_analysis.md catalog anchor for a rule id, e.g.
/// "docs/static_analysis.md#lock-discipline-rules-gka5xx" for GKA501.
std::string rule_help_uri(const std::string& id);

/// The rule table as JSON (`--list-rules --format=json`): id, severity,
/// summary, and helpUri per rule — what the fixture-coverage meta-test
/// iterates.
std::string rules_to_json();

}  // namespace gka_lint
