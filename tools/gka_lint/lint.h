// gka_lint: project-specific static analysis for key-handling hygiene.
//
// A deliberately small line/token-based scanner (no real C++ parser) that
// enforces the rules this codebase adopted alongside SecureBytes:
//
//   GKA001 (error)   raw equality on secret material: memcmp / operator== /
//                    EXPECT_EQ-style macros where an operand names a key,
//                    secret, exponent or share. Use ct_equal.
//   GKA002 (error)   secret material passed to a logging / formatting sink
//                    (to_hex, printf, std::cout, report, ...). Log a
//                    key_fingerprint() instead.
//   GKA003 (error)   ambient randomness (std::rand, std::random_device,
//                    std::mt19937, ...) outside the sanctioned sources
//                    (util/random_source.h and the DRBG implementation).
//   GKA004 (warning) field named like secret material (key / secret /
//                    exponent / share) whose declared type is not a
//                    zeroizing Secure* wrapper.
//   GKA005 (warning) TODO / FIXME left in a crypto path (src/crypto,
//                    src/bignum, src/core).
//
// Suppressions:
//   - `// gka-lint: allow(GKA00N)` on the same or the previous line
//     suppresses that rule for the line (comma-separate several IDs).
//   - `gka-lint: skip-file` anywhere in a file skips the whole file
//     (for lint-rule test fixtures).
//
// The scanner is intentionally conservative-with-allowlist: identifiers are
// split into `_`-separated components; a name is "secretish" when it has a
// secret component (key, secret, mac, tag, exponent, share, ...) and no
// component marking it as public or derived (bkey, pub, fingerprint, epoch,
// verify, ...).
#pragma once

#include <string>
#include <vector>

namespace gka_lint {

enum class Severity { kWarning, kError };

struct Finding {
  std::string rule;      // "GKA001" ... "GKA005"
  Severity severity;
  std::string path;      // as passed to lint_source
  int line;              // 1-based
  std::string message;
};

struct Rule {
  const char* id;
  Severity severity;
  const char* summary;
};

/// The rule table (for --list-rules and the tests).
const std::vector<Rule>& rules();

/// True when `ident` names secret material per the component heuristic.
bool is_secretish(const std::string& ident);

/// Lints one file's contents. `path` is used for findings and for the
/// path-scoped rules (GKA003 sanctioned files, GKA005 crypto paths) — use
/// repo-relative paths like "src/crypto/dh.cpp".
std::vector<Finding> lint_source(const std::string& path,
                                 const std::string& content);

/// Formats a finding as "path:line: [RULE] severity: message".
std::string format(const Finding& f);

}  // namespace gka_lint
