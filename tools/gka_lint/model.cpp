#include "gka_lint/model.h"

#include <algorithm>
#include <cctype>
#include <sstream>
#include <utility>

namespace gka_lint {

namespace {

void split_lines(const std::string& content, std::vector<std::string>& out) {
  std::string cur;
  for (char c : content) {
    if (c == '\n') {
      out.push_back(cur);
      cur.clear();
    } else {
      cur.push_back(c);
    }
  }
  if (!cur.empty()) out.push_back(cur);
}

void place(std::vector<std::string>& lines, int line, std::size_t col,
           const std::string& text) {
  if (line < 1) return;
  const std::size_t idx = static_cast<std::size_t>(line - 1);
  if (idx >= lines.size()) return;
  std::string& l = lines[idx];
  if (l.size() < col) l.resize(col, ' ');
  l += text;
}

/// Appends comment text (which may span lines for block comments) to the
/// per-line comment map starting at `line`.
void place_comment(std::vector<std::string>& comments, int line,
                   const std::string& text) {
  std::vector<std::string> parts;
  split_lines(text + "\n", parts);
  for (std::size_t k = 0; k < parts.size(); ++k) {
    const std::size_t idx = static_cast<std::size_t>(line - 1) + k;
    if (idx >= comments.size()) break;
    if (!comments[idx].empty()) comments[idx] += ' ';
    comments[idx] += parts[k];
  }
}

void parse_allows(const std::vector<std::string>& comments,
                  std::vector<Allow>& out) {
  const std::string marker = "gka-lint: allow(";
  for (std::size_t li = 0; li < comments.size(); ++li) {
    const std::string& text = comments[li];
    std::size_t at = 0;
    while ((at = text.find(marker, at)) != std::string::npos) {
      const std::size_t open = at + marker.size();
      const std::size_t close = text.find(')', open);
      if (close == std::string::npos) break;
      Allow a;
      a.line = static_cast<int>(li) + 1;
      std::stringstream list(text.substr(open, close - open));
      std::string id;
      while (std::getline(list, id, ',')) {
        id.erase(std::remove_if(
                     id.begin(), id.end(),
                     [](unsigned char c) { return std::isspace(c); }),
                 id.end());
        if (!id.empty()) a.ids.push_back(id);
      }
      // A reason is any text after the ')' beyond whitespace and the
      // conventional "--" / ":" separator.
      std::size_t r = close + 1;
      while (r < text.size() &&
             (std::isspace(static_cast<unsigned char>(text[r])) ||
              text[r] == '-' || text[r] == ':'))
        ++r;
      a.has_reason = r < text.size();
      if (!a.ids.empty()) out.push_back(a);
      at = close;
    }
  }
}

void parse_include(const Tok& pp, std::vector<Include>& out) {
  // Directive text is the whole logical line including '#'.
  std::size_t i = pp.text.find_first_not_of(" \t", 1);
  if (i == std::string::npos) return;
  if (pp.text.compare(i, 7, "include") != 0) return;
  const std::size_t open = pp.text.find('"', i + 7);
  if (open == std::string::npos) return;
  const std::size_t close = pp.text.find('"', open + 1);
  if (close == std::string::npos) return;
  out.push_back({pp.text.substr(open + 1, close - open - 1), pp.line});
}

bool is_code(const Tok& t) {
  return t.kind != TokKind::kComment && t.kind != TokKind::kPp;
}

const char* const kKeywordsNotCalls[] = {
    "if", "for", "while", "switch", "catch", "return", "sizeof",
    "alignof", "decltype", "static_assert", "new", "delete", "throw",
};

bool keyword_not_call(const std::string& s) {
  for (const char* k : kKeywordsNotCalls)
    if (s == k) return true;
  return false;
}

bool secure_type(const std::string& s) {
  return s == "SecureBytes" || s == "SecureBigInt";
}

/// Extracts identifiers declared with a Secure* type: the next identifier
/// after the type name, skipping `>`, `&`, `*` and `const` (covers plain
/// fields, references, and `std::map<K, SecureBigInt> m` /
/// `std::optional<SecureBytes> o` where the declared name follows the
/// closing `>`). A `(` right after the type is a constructor call, not a
/// declaration. A declared name directly followed by `(` is a function
/// returning a Secure* type — also recorded: calling it yields secret
/// material, so it seeds taint the same way a variable does.
void extract_secure_idents(const std::vector<Tok>& code_toks,
                           std::vector<std::string>& out) {
  for (std::size_t i = 0; i < code_toks.size(); ++i) {
    if (code_toks[i].kind != TokKind::kIdent || !secure_type(code_toks[i].text))
      continue;
    std::size_t j = i + 1;
    while (j < code_toks.size()) {
      const Tok& t = code_toks[j];
      if (t.kind == TokKind::kPunct &&
          (t.text == ">" || t.text == "&" || t.text == "*")) {
        ++j;
        continue;
      }
      if (t.kind == TokKind::kIdent && t.text == "const") {
        ++j;
        continue;
      }
      break;
    }
    if (j >= code_toks.size() || code_toks[j].kind != TokKind::kIdent) continue;
    const std::string& name = code_toks[j].text;
    if (!keyword_not_call(name) &&
        std::find(out.begin(), out.end(), name) == out.end())
      out.push_back(name);
  }
}

/// Heuristic function-definition finder: `name ( ... ) [qualifiers] {`.
/// Constructors with init lists (`) : a_(x), b_(y) {`) are followed through
/// the init list; `name (...)` followed by `;` is a declaration and skipped.
void extract_functions(const std::vector<Tok>& code_toks,
                       std::vector<Function>& out) {
  const std::size_t n = code_toks.size();
  for (std::size_t i = 0; i + 1 < n; ++i) {
    const Tok& name = code_toks[i];
    if (name.kind != TokKind::kIdent || keyword_not_call(name.text)) continue;
    const Tok& open = code_toks[i + 1];
    if (open.kind != TokKind::kPunct || open.text != "(") continue;
    // `std::move(x)` in a lambda capture list can look like `name (...) {`
    // once the capture's `] ( ) mutable {` tail is reached; std-qualified
    // names are never project definitions, so drop them up front.
    if (i >= 2 && code_toks[i - 1].kind == TokKind::kPunct &&
        code_toks[i - 1].text == "::" &&
        code_toks[i - 2].kind == TokKind::kIdent &&
        code_toks[i - 2].text == "std")
      continue;

    // Find the matching ')'.
    int depth = 0;
    std::size_t j = i + 1;
    for (; j < n; ++j) {
      if (code_toks[j].kind != TokKind::kPunct) continue;
      if (code_toks[j].text == "(") ++depth;
      if (code_toks[j].text == ")" && --depth == 0) break;
    }
    if (j >= n) break;

    // Parameter names: split [i+2, j) on top-level commas (angle brackets
    // tracked loosely so `std::map<K, V> m` stays one parameter); each
    // parameter's name is its last identifier before a default-argument '='.
    std::vector<std::string> params;
    {
      int pd = 1, ad = 0;
      std::string last_ident;
      bool past_default = false;
      bool any_tok = false;
      auto flush = [&] {
        if (any_tok) params.push_back(last_ident);
        last_ident.clear();
        past_default = false;
        any_tok = false;
      };
      for (std::size_t q = i + 2; q < j; ++q) {
        const Tok& t = code_toks[q];
        any_tok = true;
        if (t.kind == TokKind::kPunct) {
          if (t.text == "(") ++pd;
          if (t.text == ")") --pd;
          if (t.text == "<") ++ad;
          if (t.text == ">" && ad > 0) --ad;
          if (t.text == "=" && pd == 1 && ad == 0) past_default = true;
          if (t.text == "," && pd == 1 && ad == 0) flush();
          continue;
        }
        if (t.kind == TokKind::kIdent && !past_default) last_ident = t.text;
      }
      flush();
    }

    // After the parameter list: qualifiers, trailing return, init list —
    // anything but ';', '}' or a second unbalanced construct — then '{'.
    std::size_t k = j + 1;
    int paren = 0;
    bool is_def = false;
    for (; k < n; ++k) {
      const Tok& t = code_toks[k];
      if (t.kind == TokKind::kPunct) {
        if (t.text == "(") ++paren;
        if (t.text == ")") --paren;
        if (paren == 0 && t.text == ";") break;          // declaration
        if (paren == 0 && t.text == "=") continue;        // = default/delete
        if (paren == 0 && t.text == "{") {
          is_def = true;
          break;
        }
        // A bare ']' can't appear in a function header between the parameter
        // list and the body — it means the candidate was a call inside a
        // lambda capture list, e.g. `[k = f(k)] () {`.
        if (paren == 0 && t.text == "]") break;
        if (paren < 0) break;  // we were inside an argument list, not params
        continue;
      }
      continue;
    }
    if (!is_def) continue;
    // `= default {` can't happen; `= delete` ends in ';' and was skipped.

    // Body range: match braces from code_toks[k].
    int braces = 0;
    std::size_t b = k;
    for (; b < n; ++b) {
      if (code_toks[b].kind != TokKind::kPunct) continue;
      if (code_toks[b].text == "{") ++braces;
      if (code_toks[b].text == "}" && --braces == 0) break;
    }
    if (b >= n) break;

    Function f;
    f.name = name.text;
    f.signature_line = name.line;
    f.body_begin = code_toks[k].line;
    f.body_end = code_toks[b].line;
    f.params = std::move(params);

    // Return type: walk back over the qualified-name prefix (`A::B::name`),
    // then collect the preceding type tokens up to a statement boundary.
    std::size_t start = i;
    while (start >= 2 && code_toks[start - 1].kind == TokKind::kPunct &&
           code_toks[start - 1].text == ":" &&
           code_toks[start - 2].kind == TokKind::kPunct &&
           code_toks[start - 2].text == ":") {
      start -= 2;
      if (start >= 1 && code_toks[start - 1].kind == TokKind::kIdent)
        --start;
    }
    std::vector<std::string> type_parts;
    for (std::size_t p = start; p-- > 0;) {
      const Tok& t = code_toks[p];
      if (t.kind == TokKind::kPunct) {
        if (t.text == ";" || t.text == "{" || t.text == "}" ||
            t.text == "(" || t.text == ")" || t.text == ",")
          break;
        type_parts.push_back(t.text);
        continue;
      }
      if (t.kind == TokKind::kIdent) {
        type_parts.push_back(t.text);
        continue;
      }
      break;
    }
    std::reverse(type_parts.begin(), type_parts.end());
    std::string type;
    for (const std::string& part : type_parts) {
      if (!type.empty()) type += ' ';
      type += part;
    }
    f.return_type = type;

    out.push_back(f);
    i = k;  // continue the scan inside the body (nested definitions: rare,
            // and their lines are already covered by the enclosing range)
  }
}

bool sgk_fn_annotation(const std::string& s, std::string& kind) {
  if (s == "SGK_REQUIRES") kind = "requires";
  else if (s == "SGK_ACQUIRE") kind = "acquire";
  else if (s == "SGK_RELEASE") kind = "release";
  else if (s == "SGK_EXCLUDES") kind = "excludes";
  else return false;
  return true;
}

bool sgk_field_annotation(const std::string& s) {
  return s == "SGK_GUARDED_BY" || s == "SGK_PT_GUARDED_BY";
}

bool mutex_type(const std::string& s) {
  return s == "mutex" || s == "shared_mutex" || s == "recursive_mutex" ||
         s == "timed_mutex" || s == "shared_timed_mutex";
}

/// Extracts the SGK_* lock annotations from the un-expanded token stream.
/// `SGK_GUARDED_BY(m)` attaches to the identifier immediately before it (the
/// declared member); `SGK_REQUIRES(m)` & friends attach to the function whose
/// parameter list precedes them (declaration or definition), skipping
/// qualifiers and other annotations in between.
void extract_annotations(const std::vector<Tok>& pure,
                         std::vector<FieldGuard>& guards,
                         std::vector<FnAnnotation>& fns) {
  const std::size_t n = pure.size();
  auto match_close = [&](std::size_t open) -> std::size_t {
    int depth = 0;
    for (std::size_t j = open; j < n; ++j) {
      if (pure[j].kind != TokKind::kPunct) continue;
      if (pure[j].text == "(") ++depth;
      if (pure[j].text == ")" && --depth == 0) return j;
    }
    return n;
  };
  for (std::size_t i = 0; i < n; ++i) {
    if (pure[i].kind != TokKind::kIdent) continue;
    std::string kind;
    if (sgk_field_annotation(pure[i].text)) {
      if (i + 1 >= n || pure[i + 1].text != "(") continue;
      const std::size_t close = match_close(i + 1);
      if (close >= n) continue;
      std::string mutex;
      for (std::size_t j = i + 2; j < close; ++j)
        if (pure[j].kind == TokKind::kIdent) mutex = pure[j].text;
      if (mutex.empty()) continue;
      if (i == 0 || pure[i - 1].kind != TokKind::kIdent) continue;
      guards.push_back({"", pure[i - 1].text, mutex, pure[i].line});
      i = close;
      continue;
    }
    if (!sgk_fn_annotation(pure[i].text, kind)) continue;
    if (i + 1 >= n || pure[i + 1].text != "(") continue;
    const std::size_t close = match_close(i + 1);
    if (close >= n) continue;
    // Arguments: top-level comma split, each argument's last identifier.
    std::vector<std::string> mutexes;
    {
      int pd = 0;
      std::string last;
      for (std::size_t j = i + 2; j < close; ++j) {
        const Tok& t = pure[j];
        if (t.kind == TokKind::kPunct) {
          if (t.text == "(") ++pd;
          if (t.text == ")") --pd;
          if (t.text == "," && pd == 0 && !last.empty()) {
            mutexes.push_back(last);
            last.clear();
          }
          continue;
        }
        if (t.kind == TokKind::kIdent) last = t.text;
      }
      if (!last.empty()) mutexes.push_back(last);
    }
    // The function name: walk back over qualifiers and earlier annotations
    // to the ')' that closes the parameter list, then take the identifier
    // before its '('.
    std::string fn;
    std::size_t p = i;
    while (p > 0) {
      --p;
      const Tok& t = pure[p];
      if (t.kind == TokKind::kIdent &&
          (t.text == "const" || t.text == "noexcept" || t.text == "override" ||
           t.text == "final"))
        continue;
      if (t.kind == TokKind::kPunct && t.text == ")") {
        int depth = 0;
        std::size_t q = p + 1;
        while (q-- > 0) {
          if (pure[q].kind != TokKind::kPunct) continue;
          if (pure[q].text == ")") ++depth;
          if (pure[q].text == "(" && --depth == 0) break;
        }
        if (q == 0 && (pure[0].kind != TokKind::kPunct || pure[0].text != "("))
          break;
        if (q >= 1 && pure[q - 1].kind == TokKind::kIdent) {
          std::string k2;
          const std::string& cand = pure[q - 1].text;
          if (sgk_fn_annotation(cand, k2) || sgk_field_annotation(cand)) {
            p = q;  // an earlier annotation's parens; keep walking back
            continue;
          }
          if (!keyword_not_call(cand)) fn = cand;
        } else if (q >= 1 && pure[q - 1].kind == TokKind::kPunct &&
                   pure[q - 1].text == "]") {
          // Trailing annotation on a lambda (`[..](..) SGK_REQUIRES(mu) {`,
          // the cv.wait-predicate idiom): the function extractor models the
          // lambda body as a pseudo-function named after the annotation
          // macro itself, so attach the capability to that name. All
          // annotated lambdas merge under it — the same deliberate
          // name-level over-approximation the rest of the pass uses.
          fn = pure[i].text;
        }
        break;
      }
      break;
    }
    if (!fn.empty() && !mutexes.empty())
      fns.push_back({fn, kind, mutexes, pure[i].line});
    i = close;
  }
}

/// Finds class/struct/union definitions and classifies their members:
/// unguarded mutable data members (what GKA504 keys on), SGK_GUARDED_BY
/// members, the SGK_CONFINED_TO_RUN marker, and mutex-typed members (the
/// capabilities themselves — exempt, as are std::atomic members and
/// const/constexpr ones).
void extract_records(const std::vector<Tok>& pure, std::vector<Record>& records,
                     std::vector<MutexMember>& mutexes) {
  const std::size_t n = pure.size();
  struct Range {
    std::size_t open, close;
  };
  std::vector<Range> ranges;

  for (std::size_t i = 0; i < n; ++i) {
    const Tok& kw = pure[i];
    if (kw.kind != TokKind::kIdent ||
        (kw.text != "class" && kw.text != "struct" && kw.text != "union"))
      continue;
    if (i > 0 && pure[i - 1].kind == TokKind::kIdent &&
        pure[i - 1].text == "enum")
      continue;  // `enum class`
    if (i + 1 >= n || pure[i + 1].kind != TokKind::kIdent) continue;
    const Tok& name = pure[i + 1];
    // Forward to the body '{'; a ';', '(', ')' or '=' first means a forward
    // declaration or an elaborated type in some other construct.
    std::size_t k = i + 2;
    bool has_body = false;
    for (; k < n; ++k) {
      const Tok& t = pure[k];
      if (t.kind != TokKind::kPunct) continue;
      if (t.text == "{") {
        has_body = true;
        break;
      }
      if (t.text == ";" || t.text == "(" || t.text == ")" || t.text == "=" ||
          t.text == "}")
        break;
    }
    if (!has_body) continue;
    int depth = 0;
    std::size_t c = k;
    for (; c < n; ++c) {
      if (pure[c].kind != TokKind::kPunct) continue;
      if (pure[c].text == "{") ++depth;
      if (pure[c].text == "}" && --depth == 0) break;
    }
    if (c >= n) continue;

    Record rec;
    rec.name = name.text;
    rec.line = name.line;
    rec.body_begin = pure[k].line;
    rec.body_end = pure[c].line;

    // Member statements directly in the body: skip nested `{...}` blocks
    // (method bodies, nested records, brace-inits).
    std::vector<const Tok*> stmt;
    auto flush = [&] {
      if (stmt.empty()) return;
      bool has_paren = false, immutable = false, skip = false, guarded = false,
           confined = false, is_mutex = false, is_atomic = false;
      for (const Tok* t : stmt) {
        if (t->kind == TokKind::kPunct && t->text == "(") has_paren = true;
        if (t->kind != TokKind::kIdent) continue;
        const std::string& s = t->text;
        if (s == "using" || s == "typedef" || s == "friend" ||
            s == "static_assert" || s == "template" || s == "operator" ||
            s == "enum" || s == "class" || s == "struct" || s == "union" ||
            s == "namespace" || s == "public" || s == "private" ||
            s == "protected")
          skip = true;
        if (s == "const" || s == "constexpr" || s == "constinit")
          immutable = true;
        if (s == "SGK_CONFINED_TO_RUN") confined = true;
        if (sgk_field_annotation(s)) guarded = true;
        if (mutex_type(s)) is_mutex = true;
        if (s == "atomic" || s == "condition_variable") is_atomic = true;
      }
      if (confined) {
        rec.has_confined_marker = true;
      } else if (guarded) {
        rec.has_guard = true;
        rec.has_mutable_member = true;
      } else if (!skip && !has_paren && !immutable && !is_mutex && !is_atomic) {
        int idents = 0;
        std::string last;
        int first_line = stmt.front()->line;
        for (const Tok* t : stmt) {
          if (t->kind == TokKind::kPunct && t->text == "=") break;
          if (t->kind == TokKind::kIdent) {
            ++idents;
            last = t->text;
          }
        }
        if (idents >= 2) {
          rec.has_mutable_member = true;
          if (rec.first_mutable.empty()) {
            rec.first_mutable = last;
            rec.first_mutable_line = first_line;
          }
        }
      }
      stmt.clear();
    };
    std::size_t idx = k + 1;
    while (idx < c) {
      const Tok& t = pure[idx];
      if (t.kind == TokKind::kPunct && t.text == "{") {
        int d = 0;
        std::size_t m2 = idx;
        for (; m2 < c; ++m2) {
          if (pure[m2].kind != TokKind::kPunct) continue;
          if (pure[m2].text == "{") ++d;
          if (pure[m2].text == "}" && --d == 0) break;
        }
        // A block followed by ';' is a brace-init: keep the statement. A
        // block followed by anything else was a method body or nested
        // record: discard what we collected.
        if (!(m2 + 1 < c && pure[m2 + 1].kind == TokKind::kPunct &&
              pure[m2 + 1].text == ";"))
          stmt.clear();
        idx = m2 + 1;
        continue;
      }
      if (t.kind == TokKind::kPunct && t.text == ";") {
        flush();
        ++idx;
        continue;
      }
      if (t.kind == TokKind::kPunct && t.text == ":" && stmt.size() == 1 &&
          stmt[0]->kind == TokKind::kIdent &&
          (stmt[0]->text == "public" || stmt[0]->text == "private" ||
           stmt[0]->text == "protected")) {
        stmt.clear();
        ++idx;
        continue;
      }
      stmt.push_back(&t);
      ++idx;
    }
    flush();
    records.push_back(rec);
    ranges.push_back({k, c});
  }

  for (std::size_t a = 0; a < records.size(); ++a)
    for (std::size_t b = 0; b < records.size(); ++b)
      if (a != b && ranges[b].open < ranges[a].open &&
          ranges[a].close < ranges[b].close)
        records[a].nested = true;

  // Mutex declarations anywhere (members and namespace-scope); the owner is
  // filled in by line containment below.
  for (std::size_t i = 0; i + 1 < n; ++i) {
    if (pure[i].kind != TokKind::kIdent || !mutex_type(pure[i].text)) continue;
    if (pure[i + 1].kind != TokKind::kIdent ||
        keyword_not_call(pure[i + 1].text))
      continue;
    mutexes.push_back({"", pure[i + 1].text, pure[i + 1].line});
  }
}

/// Fills the `owner` of guards/mutexes with the innermost record whose body
/// contains their line.
template <typename T>
void fill_owner(std::vector<T>& items, const std::vector<Record>& records) {
  for (T& it : items) {
    int best_span = 0;
    for (const Record& r : records) {
      if (it.line < r.line || it.line > r.body_end) continue;
      const int span = r.body_end - r.line;
      if (it.owner.empty() || span < best_span) {
        it.owner = r.name;
        best_span = span;
      }
    }
  }
}

/// Classifies each pure-code token with its innermost syntactic scope via a
/// brace-context walk. Heuristics (documented in docs/static_analysis.md as
/// known over-approximations):
///   - `namespace ... {`                       -> namespace frame
///   - `class/struct/union/enum ... {`         -> type frame
///   - `...) {`, blocks inside functions, and
///     lambda bodies                           -> function frame
///   - `= {`, `, {`, `( {`, `return {`, and
///     `ident{` brace-init                     -> initializer frame
///     (transparent: tokens inside keep the enclosing kind but are NOT
///     namespace-only, so initializer contents never look like globals)
void classify_scopes(const std::vector<Tok>& code_toks,
                     std::vector<ScopedTok>& out) {
  struct Frame {
    TokScope kind;
    bool is_init;
  };
  std::vector<Frame> stack;
  bool saw_namespace = false, saw_type_kw = false, saw_paren_close = false;
  int paren_depth = 0;
  std::string prev_text;

  auto reset_pending = [&] {
    saw_namespace = saw_type_kw = saw_paren_close = false;
  };
  auto current_kind = [&]() -> TokScope {
    for (auto it = stack.rbegin(); it != stack.rend(); ++it)
      if (!it->is_init) return it->kind;
    return TokScope::kNamespace;
  };
  auto at_ns_only = [&]() -> bool {
    for (const Frame& f : stack)
      if (f.is_init || f.kind != TokScope::kNamespace) return false;
    return true;
  };

  out.reserve(code_toks.size());
  for (const Tok& t : code_toks) {
    // Record the token against the scope it sits in (the '{' / '}' tokens
    // themselves belong to the outer scope).
    if (t.kind == TokKind::kPunct && t.text == "}") {
      if (!stack.empty()) stack.pop_back();
      reset_pending();
      out.push_back({t.kind, t.text, t.line, current_kind(), at_ns_only()});
      prev_text = t.text;
      continue;
    }
    out.push_back({t.kind, t.text, t.line, current_kind(), at_ns_only()});

    if (t.kind == TokKind::kIdent) {
      if (t.text == "namespace") saw_namespace = true;
      if (t.text == "class" || t.text == "struct" || t.text == "union" ||
          t.text == "enum")
        saw_type_kw = true;
    } else if (t.kind == TokKind::kPunct) {
      if (t.text == "(") ++paren_depth;
      if (t.text == ")") {
        if (paren_depth > 0) --paren_depth;
        saw_paren_close = true;
      }
      if (t.text == ";") reset_pending();
      if (t.text == "{") {
        Frame f{TokScope::kFunction, false};
        if (saw_namespace) {
          f = {TokScope::kNamespace, false};
        } else if (saw_type_kw && paren_depth == 0) {
          f = {TokScope::kType, false};
        } else if (prev_text == "=" || prev_text == "," || prev_text == "(" ||
                   prev_text == "{" || prev_text == "return") {
          f = {current_kind(), true};
        } else if (saw_paren_close || current_kind() == TokScope::kFunction) {
          f = {TokScope::kFunction, false};
        } else if (!prev_text.empty() &&
                   (std::isalnum(static_cast<unsigned char>(prev_text[0])) ||
                    prev_text[0] == '_')) {
          // `ident{...}` with no parens in sight: brace-init of a variable.
          f = {current_kind(), true};
        } else {
          f = {current_kind(), false};
        }
        stack.push_back(f);
        reset_pending();
      }
    }
    prev_text = t.text;
  }
}

}  // namespace

FileModel build_model(const std::string& path, const std::string& content) {
  FileModel m;
  m.path = path;
  split_lines(content, m.raw);
  m.code.assign(m.raw.size(), std::string());
  m.comments.assign(m.raw.size(), std::string());
  m.tokens = lex(content);

  std::vector<Tok> code_toks;
  code_toks.reserve(m.tokens.size());
  for (const Tok& t : m.tokens) {
    switch (t.kind) {
      case TokKind::kComment:
        place_comment(m.comments, t.line, t.text);
        break;
      case TokKind::kPp:
        parse_include(t, m.includes);
        break;
      case TokKind::kString:
        place(m.code, t.line, t.col, "\"\"");
        code_toks.push_back(t);
        break;
      case TokKind::kChar:
        place(m.code, t.line, t.col, "''");
        code_toks.push_back(t);
        break;
      default:
        place(m.code, t.line, t.col, t.text);
        code_toks.push_back(t);
        break;
    }
  }

  parse_allows(m.comments, m.allows);
  for (const std::string& c : m.comments)
    if (c.find("gka-lint: skip-file") != std::string::npos) m.skip_file = true;

  std::vector<Tok> pure_code;
  pure_code.reserve(code_toks.size());
  for (const Tok& t : code_toks)
    if (is_code(t) && t.kind != TokKind::kString && t.kind != TokKind::kChar)
      pure_code.push_back(t);
  extract_secure_idents(pure_code, m.secure_idents);
  extract_functions(pure_code, m.functions);
  extract_annotations(pure_code, m.field_guards, m.fn_annotations);
  extract_records(pure_code, m.records, m.mutex_members);
  fill_owner(m.field_guards, m.records);
  fill_owner(m.mutex_members, m.records);
  classify_scopes(pure_code, m.scoped_tokens);
  return m;
}

}  // namespace gka_lint
