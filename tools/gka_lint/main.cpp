// gka_lint driver: scans src/, tests/ and bench/ under the given repo root
// and prints every finding. Exit status is non-zero when any unsuppressed
// finding remains, so `ctest -R gka_lint` gates the tree.
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "gka_lint/lint.h"

namespace fs = std::filesystem;

namespace {

bool lintable(const fs::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".h" || ext == ".hpp" || ext == ".cpp" || ext == ".cc";
}

std::string slurp(const fs::path& p) {
  std::ifstream in(p, std::ios::binary);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> args(argv + 1, argv + argc);
  if (!args.empty() && args[0] == "--list-rules") {
    for (const gka_lint::Rule& r : gka_lint::rules())
      std::cout << r.id << "  "
                << (r.severity == gka_lint::Severity::kError ? "error  "
                                                             : "warning")
                << "  " << r.summary << "\n";
    return 0;
  }

  const fs::path root = args.empty() ? fs::path(".") : fs::path(args[0]);
  std::vector<gka_lint::Finding> all;
  std::size_t files = 0;
  for (const char* sub : {"src", "tests", "bench"}) {
    const fs::path dir = root / sub;
    if (!fs::exists(dir)) continue;
    for (const auto& entry : fs::recursive_directory_iterator(dir)) {
      if (!entry.is_regular_file() || !lintable(entry.path())) continue;
      ++files;
      const std::string rel =
          fs::relative(entry.path(), root).generic_string();
      const std::vector<gka_lint::Finding> found =
          gka_lint::lint_source(rel, slurp(entry.path()));
      all.insert(all.end(), found.begin(), found.end());
    }
  }

  for (const gka_lint::Finding& f : all)
    std::cout << gka_lint::format(f) << "\n";
  std::cout << "gka_lint: " << files << " files, " << all.size()
            << " finding(s)\n";
  return all.empty() ? 0 : 1;
}
