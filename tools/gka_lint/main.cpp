// gka_lint driver: scans src/, tests/ and bench/ under the given repo root
// as one project (so the include-graph and cross-file taint rules see
// everything) and prints every finding.
//
// Usage: gka_lint [root] [--format=text|json|sarif] [--werror] [--list-rules]
//
// Exit status: 0 clean, 1 unsuppressed errors, 2 warnings only. The ctest
// gate maps 2 to SKIP (warnings surface without failing the build);
// --werror promotes warnings to errors for stricter pipelines.
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "gka_lint/lint.h"

namespace fs = std::filesystem;

namespace {

bool lintable(const fs::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".h" || ext == ".hpp" || ext == ".cpp" || ext == ".cc";
}

std::string slurp(const fs::path& p) {
  std::ifstream in(p, std::ios::binary);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

int usage(const std::string& bad) {
  std::cerr << "gka_lint: unknown option '" << bad << "'\n"
            << "usage: gka_lint [root] [--format=text|json|sarif] [--werror] "
               "[--list-rules]\n";
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  std::string format = "text";
  bool werror = false;
  bool list_rules = false;
  fs::path root = ".";

  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--list-rules") {
      list_rules = true;
    } else if (a == "--werror") {
      werror = true;
    } else if (a.rfind("--format=", 0) == 0) {
      format = a.substr(9);
      if (format != "text" && format != "json" && format != "sarif")
        return usage(a);
    } else if (!a.empty() && a[0] == '-') {
      return usage(a);
    } else {
      root = a;
    }
  }

  if (list_rules) {
    for (const gka_lint::Rule& r : gka_lint::rules())
      std::cout << r.id << "  "
                << (r.severity == gka_lint::Severity::kError ? "error  "
                                                             : "warning")
                << "  " << r.summary << "\n";
    return 0;
  }

  std::vector<gka_lint::SourceFile> sources;
  for (const char* sub : {"src", "tests", "bench"}) {
    const fs::path dir = root / sub;
    if (!fs::exists(dir)) continue;
    for (const auto& entry : fs::recursive_directory_iterator(dir)) {
      if (!entry.is_regular_file() || !lintable(entry.path())) continue;
      const std::string rel =
          fs::relative(entry.path(), root).generic_string();
      // Rule-test fixtures are deliberate violations, not project code.
      if (rel.find("gka_lint_fixtures") != std::string::npos) continue;
      sources.push_back({rel, slurp(entry.path())});
    }
  }

  std::vector<gka_lint::Finding> all = gka_lint::lint_project(sources);
  if (werror)
    for (gka_lint::Finding& f : all) f.severity = gka_lint::Severity::kError;

  std::size_t errors = 0, warnings = 0;
  for (const gka_lint::Finding& f : all)
    (f.severity == gka_lint::Severity::kError ? errors : warnings)++;

  if (format == "json") {
    std::cout << gka_lint::to_json(all, sources.size());
  } else if (format == "sarif") {
    std::cout << gka_lint::to_sarif(all);
  } else {
    for (const gka_lint::Finding& f : all)
      std::cout << gka_lint::format(f) << "\n";
    std::cout << "gka_lint: " << sources.size() << " files, " << errors
              << " error(s), " << warnings << " warning(s)\n";
  }
  if (errors > 0) return 1;
  if (warnings > 0) return 2;
  return 0;
}
