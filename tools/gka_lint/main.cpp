// gka_lint driver: scans src/, tests/ and bench/ under the given repo root
// as one project (so the include-graph and cross-file taint rules see
// everything) and prints every finding.
//
// Usage: gka_lint [root] [--format=text|json|sarif] [--werror] [--list-rules]
//                 [--jobs N] [--stats] [--budget-ms N]
//
// --list-rules honors --format=json (the rule catalog with per-rule
// helpUri), which is what the fixture-coverage meta-test consumes.
//
// --jobs N parallelizes per-file lexing/model extraction (merge and rule
// phases stay serial, so findings are byte-identical for any N). --stats
// prints a one-line phase-timing summary to stderr. --budget-ms N makes the
// run fail (exit 1) when total wall time exceeds N milliseconds — CI
// commits a budget so analyzer slowdowns surface as red instead of creep.
//
// Exit status: 0 clean, 1 unsuppressed errors (or budget exceeded), 2
// warnings only. The ctest gate maps 2 to SKIP (warnings surface without
// failing the build); --werror promotes warnings to errors for stricter
// pipelines.
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "gka_lint/lint.h"

namespace fs = std::filesystem;

namespace {

bool lintable(const fs::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".h" || ext == ".hpp" || ext == ".cpp" || ext == ".cc";
}

std::string slurp(const fs::path& p) {
  std::ifstream in(p, std::ios::binary);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

int usage(const std::string& bad) {
  std::cerr << "gka_lint: bad option '" << bad << "'\n"
            << "usage: gka_lint [root] [--format=text|json|sarif] [--werror] "
               "[--list-rules] [--jobs N] [--stats] [--budget-ms N]\n";
  return 1;
}

/// Parses the integer argument of `--flag N` / `--flag=N`; returns false on
/// a malformed or missing value.
bool int_arg(int argc, char** argv, int& i, const std::string& a,
             const std::string& flag, long& out) {
  std::string text;
  if (a == flag) {
    if (i + 1 >= argc) return false;
    text = argv[++i];
  } else if (a.rfind(flag + "=", 0) == 0) {
    text = a.substr(flag.size() + 1);
  } else {
    return false;
  }
  if (text.empty()) return false;
  char* end = nullptr;
  out = std::strtol(text.c_str(), &end, 10);
  return end != nullptr && *end == '\0' && out >= 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::string format = "text";
  bool werror = false;
  bool list_rules = false;
  bool stats = false;
  long jobs = 1;
  long budget_ms = -1;
  fs::path root = ".";

  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    long value = 0;
    if (a == "--list-rules") {
      list_rules = true;
    } else if (a == "--werror") {
      werror = true;
    } else if (a == "--stats") {
      stats = true;
    } else if (a == "--jobs" || a.rfind("--jobs=", 0) == 0) {
      if (!int_arg(argc, argv, i, a, "--jobs", value)) return usage(a);
      jobs = value;
    } else if (a == "--budget-ms" || a.rfind("--budget-ms=", 0) == 0) {
      if (!int_arg(argc, argv, i, a, "--budget-ms", value)) return usage(a);
      budget_ms = value;
    } else if (a.rfind("--format=", 0) == 0) {
      format = a.substr(9);
      if (format != "text" && format != "json" && format != "sarif")
        return usage(a);
    } else if (!a.empty() && a[0] == '-') {
      return usage(a);
    } else {
      root = a;
    }
  }

  if (list_rules) {
    if (format == "json") {
      std::cout << gka_lint::rules_to_json();
    } else {
      for (const gka_lint::Rule& r : gka_lint::rules())
        std::cout << r.id << "  "
                  << (r.severity == gka_lint::Severity::kError ? "error  "
                                                               : "warning")
                  << "  " << r.summary << "\n";
    }
    return 0;
  }

  std::vector<gka_lint::SourceFile> sources;
  for (const char* sub : {"src", "tests", "bench"}) {
    const fs::path dir = root / sub;
    if (!fs::exists(dir)) continue;
    for (const auto& entry : fs::recursive_directory_iterator(dir)) {
      if (!entry.is_regular_file() || !lintable(entry.path())) continue;
      const std::string rel =
          fs::relative(entry.path(), root).generic_string();
      // Rule-test fixtures are deliberate violations, not project code.
      if (rel.find("gka_lint_fixtures") != std::string::npos) continue;
      sources.push_back({rel, slurp(entry.path())});
    }
  }

  gka_lint::LintStats timing;
  std::vector<gka_lint::Finding> all =
      gka_lint::lint_project(sources, static_cast<int>(jobs), &timing);
  if (stats) {
    std::cerr << "gka_lint: stats: " << timing.files << " files, model "
              << timing.model_ms << " ms (jobs=" << jobs << "), analyze "
              << timing.analyze_ms << " ms, total "
              << (timing.model_ms + timing.analyze_ms) << " ms\n";
  }
  if (werror)
    for (gka_lint::Finding& f : all) f.severity = gka_lint::Severity::kError;

  std::size_t errors = 0, warnings = 0;
  for (const gka_lint::Finding& f : all)
    (f.severity == gka_lint::Severity::kError ? errors : warnings)++;

  if (format == "json") {
    std::cout << gka_lint::to_json(all, sources.size());
  } else if (format == "sarif") {
    std::cout << gka_lint::to_sarif(all);
  } else {
    for (const gka_lint::Finding& f : all)
      std::cout << gka_lint::format(f) << "\n";
    std::cout << "gka_lint: " << sources.size() << " files, " << errors
              << " error(s), " << warnings << " warning(s)\n";
  }
  if (budget_ms >= 0 && timing.model_ms + timing.analyze_ms > budget_ms) {
    std::cerr << "gka_lint: wall time " << (timing.model_ms + timing.analyze_ms)
              << " ms exceeds --budget-ms " << budget_ms << "\n";
    return 1;
  }
  if (errors > 0) return 1;
  if (warnings > 0) return 2;
  return 0;
}
