// Cross-translation-unit call graph for gka_lint, built from the per-file
// function extraction in model.cpp.
//
// Call sites are linked to definitions by *name*: an identifier followed by
// '(' inside a function body is a call of every project function with that
// name. This deliberately over-approximates — overloads are merged (a
// summary bit is set if it holds for ANY overload), member calls match every
// class's method of that name, and calls into code the scanner cannot see
// (the standard library, system headers) resolve to nothing and contribute
// no edges. Over-approximating keeps the interprocedural taint pass sound
// for the flows it models at the cost of occasional conservative fires;
// docs/static_analysis.md lists the known consequences.
//
// The graph feeds the GKA2xx interprocedural taint pass: per-function taint
// summaries (params-in -> return/sink-out, see TaintSummary) are computed to
// a fixpoint over this graph by compute_taint_summaries (rules_taint.cpp,
// which owns the boundary and sink tables).
#pragma once

#include <cstddef>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "gka_lint/model.h"

namespace gka_lint {

/// One function definition: the file it lives in plus the extracted model.
struct FunctionRef {
  const FileModel* file;
  const Function* fn;
};

class CallGraph {
 public:
  /// Builds the name -> definitions map and per-definition callee sets over
  /// every function of every model. The models vector must outlive the
  /// graph (FunctionRef points into it).
  void build(const std::vector<FileModel>& models);

  /// All definitions of `name` across the project (nullptr when the name is
  /// not defined in the scanned tree — e.g. a standard-library call).
  const std::vector<FunctionRef>* definitions(const std::string& name) const;

  /// Names called from `fn`'s body (project-defined or not).
  const std::set<std::string>& callees(const Function* fn) const;

  /// Every definition, in deterministic (file, body order) traversal order.
  const std::vector<FunctionRef>& all() const { return order_; }

 private:
  std::map<std::string, std::vector<FunctionRef>> defs_;
  std::map<const Function*, std::set<std::string>> callees_;
  std::vector<FunctionRef> order_;
  std::set<std::string> no_callees_;
};

/// Per-function taint summary: how taint entering through each parameter
/// leaves the function. Computed to a fixpoint, so mutually recursive
/// helpers converge (bits only ever turn on).
struct TaintSummary {
  std::vector<bool> param_to_sink;    // param i reaches a log/trace/metric
                                      // sink inside (transitively)
  std::vector<bool> param_to_return;  // param i flows into the return value
                                      // without an approved boundary
  std::vector<bool> param_to_branch;  // param i reaches a control-flow
                                      // decision inside (if/while/for/switch
                                      // condition, ternary, subscript) —
                                      // the GKA6xx constant-time sinks
  bool returns_tainted = false;       // the return value derives from the
                                      // function's own Secure* seeds
};

using SummaryMap = std::map<const Function*, TaintSummary>;

/// Call-site view of the summaries: queries are by callee *name* and merge
/// every overload (true if true for any definition).
class InterprocView {
 public:
  InterprocView(const CallGraph& cg, const SummaryMap& summaries)
      : cg_(&cg), summaries_(&summaries) {}

  /// True when the project defines at least one function named `callee`.
  bool known(const std::string& callee) const;
  bool param_to_sink(const std::string& callee, std::size_t arg) const;
  bool param_to_return(const std::string& callee, std::size_t arg) const;
  bool param_to_branch(const std::string& callee, std::size_t arg) const;
  bool returns_tainted(const std::string& callee) const;

 private:
  const CallGraph* cg_;
  const SummaryMap* summaries_;
};

/// Computes every function's TaintSummary to a fixpoint over the call
/// graph. `seeds_of` maps each model to the Secure*-identifier seed set to
/// use for its functions' `returns_tainted` bit (the include-closure seeds
/// in project mode). Implemented in rules_taint.cpp.
SummaryMap compute_taint_summaries(
    const std::vector<FileModel>& models, const CallGraph& cg,
    const std::map<const FileModel*, std::vector<std::string>>& seeds_of);

/// Project-wide lock-capability facts for the GKA5xx rules, merged by
/// function *name* (the same over-approximation as the taint summaries: a
/// fact is attributed to every same-named definition). The declared maps
/// come straight from the SGK_* annotations of every translation unit; the
/// effective maps add the *inferred* net lock effects — a helper that calls
/// `mu_.lock()` and returns without unlocking behaves like SGK_ACQUIRE(mu_)
/// for its callers — computed to a fixpoint over the cross-TU call graph.
/// Implemented in rules_lock.cpp.
struct LockFacts {
  std::map<std::string, std::set<std::string>> needs;     // SGK_REQUIRES
  std::map<std::string, std::set<std::string>> acq_decl;  // SGK_ACQUIRE
  std::map<std::string, std::set<std::string>> rel_decl;  // SGK_RELEASE
  std::map<std::string, std::set<std::string>> excl;      // SGK_EXCLUDES
  std::map<std::string, std::set<std::string>> acq_eff;   // declared+inferred
  std::map<std::string, std::set<std::string>> rel_eff;   // declared+inferred
};

LockFacts compute_lock_facts(const std::vector<FileModel>& models,
                             const CallGraph& cg);

}  // namespace gka_lint
