// GKA001..GKA006: the key-handling hygiene rules, ported from gka_lint v1
// onto the lexer-backed FileModel (the matching logic is unchanged; the
// input is now a properly stripped code view, so raw strings, multi-line
// strings and block comments can no longer confuse the line rules).
#include <algorithm>

#include "gka_lint/rules_internal.h"

namespace gka_lint {

namespace {

const char* const kEqualityMacros[] = {"memcmp", "EXPECT_EQ", "EXPECT_NE",
                                       "ASSERT_EQ", "ASSERT_NE"};

const char* const kLogSinks[] = {"to_hex", "printf", "fprintf", "report",
                                 "cout",   "cerr",   "clog"};

const char* const kObsSinks[] = {
    "attr",      "event_attr",    "instant", "phase",     "mark_phase",
    "mark_point", "begin_event",  "begin_span_at", "observe", "counter",
    "histogram", "set_track_name"};

const char* const kAmbientRandomness[] = {
    "rand",       "srand",      "random_device", "mt19937",
    "mt19937_64", "default_random_engine",       "minstd_rand"};

}  // namespace

void run_core_rules(const FileModel& m, const Sink& sink) {
  const std::string& path = m.path;
  const bool header = ends_with(path, ".h") || ends_with(path, ".hpp");
  const bool crypto_path = path_has_prefix(path, "src/crypto") ||
                           path_has_prefix(path, "src/bignum") ||
                           path_has_prefix(path, "src/core");
  const bool randomness_ok = path_contains(path, "util/random_source") ||
                             path_contains(path, "crypto/drbg");
  const bool wire_path = path_has_prefix(path, "src/core") ||
                         path_has_prefix(path, "src/gcs");

  auto report = [&](std::size_t li, const char* rule, std::string message) {
    sink({rule, path, static_cast<int>(li) + 1, std::move(message)});
  };

  for (std::size_t li = 0; li < m.code.size(); ++li) {
    const std::string& c = m.code[li];
    const std::vector<LineTok> ids = line_identifiers(c);

    // --- GKA001: raw equality on secret material -------------------------
    // (a) == / != operators. Each operand is the text between the operator
    // and the nearest expression delimiter; its *last* identifier names the
    // compared thing (`it == keys_.end()` compares `end`, not `keys_`, so
    // iterator-membership idioms don't trip the rule).
    const std::string lhs_stops = ",;({}&|?=!";
    const std::string rhs_stops = ",;)}&|?";
    for (std::size_t i = 0; i + 1 < c.size(); ++i) {
      if ((c[i] == '=' || c[i] == '!') && c[i + 1] == '=' &&
          (i == 0 || (c[i - 1] != '=' && c[i - 1] != '!' && c[i - 1] != '<' &&
                      c[i - 1] != '>')) &&
          (i + 2 >= c.size() || c[i + 2] != '=')) {
        std::size_t lb = 0;
        for (std::size_t j = i; j > 0; --j) {
          if (lhs_stops.find(c[j - 1]) != std::string::npos) {
            lb = j;
            break;
          }
        }
        std::size_t re = c.size();
        for (std::size_t j = i + 2; j < c.size(); ++j) {
          if (rhs_stops.find(c[j]) != std::string::npos) {
            re = j;
            break;
          }
        }
        const LineTok* lhs = operand_name(c, ids, lb, i);
        const LineTok* rhs = operand_name(c, ids, i + 2, re);
        for (const LineTok* t : {lhs, rhs}) {
          if (t != nullptr && is_secretish(t->text)) {
            report(li, "GKA001",
                   "raw comparison touches secret '" + t->text +
                       "'; use ct_equal");
            break;
          }
        }
      }
    }
    // (b) memcmp / gtest equality macros.
    for (const char* call : kEqualityMacros) {
      for (const LineTok& t : ids) {
        if (t.text != call) continue;
        const std::size_t open = t.pos + t.text.size();
        if (open >= c.size() || c[open] != '(') continue;
        const auto args = call_args(c, open);
        const std::size_t nargs = std::min<std::size_t>(args.size(), 2);
        for (std::size_t a = 0; a < nargs; ++a) {
          const LineTok* name =
              operand_name(c, ids, args[a].first, args[a].second);
          if (name != nullptr && is_secretish(name->text)) {
            report(li, "GKA001",
                   std::string(call) + " on secret '" + name->text +
                       "'; use ct_equal");
            break;
          }
        }
      }
    }

    // --- GKA002: secret material reaching a logging/formatting sink ------
    for (const char* sink_name : kLogSinks) {
      for (const LineTok& t : ids) {
        if (t.text != sink_name) continue;
        // Only identifiers to the right of the sink are its payload.
        bool hit = false;
        for (const LineTok& arg : ids) {
          if (arg.pos <= t.pos) continue;
          if (is_secretish(arg.text)) {
            report(li, "GKA002",
                   "secret '" + arg.text + "' reaches sink '" + t.text +
                       "'; log a fingerprint instead");
            hit = true;
            break;
          }
        }
        if (hit) break;
      }
    }

    // --- GKA006: secret material into a trace/metric attribute sink ------
    // Observability data leaves the process (BENCH_*.json, Chrome traces),
    // so the obs API is a logging sink in the GKA002 sense. Matches calls
    // only (the token must be followed by '('), so declarations of these
    // methods don't self-flag.
    for (const char* sink_name : kObsSinks) {
      for (const LineTok& t : ids) {
        if (t.text != sink_name) continue;
        const std::size_t open = t.pos + t.text.size();
        if (open >= c.size() || c[open] != '(') continue;
        bool hit = false;
        for (const auto& [ab, ae] : call_args(c, open)) {
          for (const LineTok& arg : ids) {
            if (arg.pos < ab || arg.pos >= ae) continue;
            if (is_secretish(arg.text)) {
              report(li, "GKA006",
                     "secret '" + arg.text + "' reaches trace/metric sink '" +
                         t.text + "'; record a fingerprint or a size instead");
              hit = true;
              break;
            }
          }
          if (hit) break;
        }
        if (hit) break;
      }
    }

    // --- GKA003: ambient randomness --------------------------------------
    if (!randomness_ok) {
      for (const char* bad : kAmbientRandomness) {
        for (const LineTok& t : ids) {
          if (t.text == bad) {
            report(li, "GKA003",
                   "ambient randomness '" + t.text +
                       "'; use RandomSource / the DRBG");
          }
        }
      }
    }

    // --- GKA004: secret-named field without Secure* storage --------------
    if (header && ids.size() >= 2 && !c.empty()) {
      // Declaration shape: ...Type name;  or  ...Type name = init;
      // (assignments `name = ...;` have only one identifier before '=').
      const std::string trimmed_end = c.substr(0, c.find_last_not_of(" \t") + 1);
      if (ends_with(trimmed_end, ";") && c.find('(') == std::string::npos &&
          c.find("return") == std::string::npos &&
          c.find("using") == std::string::npos) {
        const std::size_t eq = c.find('=');
        const std::size_t decl_end =
            eq == std::string::npos ? trimmed_end.size() - 1 : eq;
        // Name = last identifier of the declarator part; type = everything
        // before it.
        const LineTok* name = nullptr;
        for (const LineTok& t : ids)
          if (t.pos + t.text.size() <= decl_end) name = &t;
        if (name != nullptr && name->pos > 0 && is_secretish(name->text)) {
          const std::string type = c.substr(0, name->pos);
          if (type.find_first_not_of(" \t") != std::string::npos &&
              type.find("Secure") == std::string::npos &&
              type.find("Verify") == std::string::npos &&
              type.find("Public") == std::string::npos) {
            report(li, "GKA004",
                   "field '" + name->text +
                       "' holds secret material in non-zeroizing storage; "
                       "use SecureBytes / SecureBigInt");
          }
        }
      }
    }

    // --- GKA009: wire Reader outside a validated-decode entrypoint --------
    // Untrusted bytes enter the protocol layer only through the per-protocol
    // validate_and_decode functions (and secure_group's validate_and_decode_*
    // helpers), which map every malformed input to a typed RejectReason
    // instead of throwing. A bare `Reader r(...)` construction anywhere else
    // in src/core or src/gcs reintroduces a throw-past-the-handler path.
    if (wire_path) {
      for (std::size_t i = 0; i + 1 < ids.size(); ++i) {
        if (ids[i].text != "Reader") continue;
        const LineTok& decl = ids[i + 1];
        // Construction shape: `Reader name(...)` / `Reader name{...}` with
        // the name directly adjacent to Reader (modulo spaces). References
        // (`Reader& r`) are parameters, not constructions, and stay clean.
        const std::string between =
            c.substr(ids[i].pos + ids[i].text.size(),
                     decl.pos - (ids[i].pos + ids[i].text.size()));
        if (between.find_first_not_of(" \t") != std::string::npos) continue;
        const std::size_t after = decl.pos + decl.text.size();
        if (after >= c.size() || (c[after] != '(' && c[after] != '{')) continue;
        const int line1 = static_cast<int>(li) + 1;
        const Function* inner = nullptr;
        for (const Function& fn : m.functions) {
          if (fn.body_begin <= line1 && line1 <= fn.body_end &&
              (inner == nullptr || fn.body_begin > inner->body_begin))
            inner = &fn;
        }
        if (inner == nullptr ||
            inner->name.find("validate_and_decode") == std::string::npos) {
          report(li, "GKA009",
                 "wire Reader constructed outside a validate_and_decode "
                 "entrypoint; parse untrusted bytes only behind the typed "
                 "reject path");
        }
      }
    }

    // --- GKA005: TODO/FIXME comments in crypto paths ---------------------
    if (crypto_path) {
      if (m.comments[li].find("TODO") != std::string::npos ||
          m.comments[li].find("FIXME") != std::string::npos) {
        report(li, "GKA005", "TODO/FIXME left in a crypto path");
      }
    }
  }
}

}  // namespace gka_lint
