// Machine-readable output: --format=json for scripting, --format=sarif for
// CI code-scanning upload (SARIF 2.1.0, minimal static-analysis profile).
#include "gka_lint/lint.h"

#include <map>
#include <sstream>

namespace gka_lint {

namespace {

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

const char* severity_name(Severity s) {
  return s == Severity::kError ? "error" : "warning";
}

}  // namespace

std::string rule_help_uri(const std::string& id) {
  // Family anchors follow the GitHub slugs of the docs/static_analysis.md
  // section headings.
  const char* anchor = "";
  if (id == "GKA007" || id == "GKA008") {
    anchor = "suppression-hygiene-rules-gka0xx-meta";
  } else if (id.rfind("GKA0", 0) == 0) {
    anchor = "key-handling-rules-gka0xx";
  } else if (id.rfind("GKA1", 0) == 0) {
    anchor = "architecture-rules-gka1xx";
  } else if (id.rfind("GKA2", 0) == 0) {
    anchor = "secret-taint-rules-gka2xx";
  } else if (id.rfind("GKA3", 0) == 0) {
    anchor = "determinism-rules-gka3xx";
  } else if (id.rfind("GKA4", 0) == 0) {
    anchor = "shared-state-rules-gka4xx";
  } else if (id.rfind("GKA5", 0) == 0) {
    anchor = "lock-discipline-rules-gka5xx";
  } else if (id.rfind("GKA6", 0) == 0) {
    anchor = "constant-time-rules-gka6xx";
  }
  std::string uri = "docs/static_analysis.md";
  if (anchor[0] != '\0') {
    uri += '#';
    uri += anchor;
  }
  return uri;
}

std::string rules_to_json() {
  const std::vector<Rule>& rs = rules();
  std::ostringstream os;
  os << "{\n  \"tool\": \"gka_lint\",\n  \"rules\": [";
  for (std::size_t i = 0; i < rs.size(); ++i) {
    os << (i ? "," : "") << "\n    {\"id\": \"" << rs[i].id
       << "\", \"severity\": \"" << severity_name(rs[i].severity)
       << "\", \"summary\": \"" << json_escape(rs[i].summary)
       << "\", \"helpUri\": \"" << json_escape(rule_help_uri(rs[i].id))
       << "\"}";
  }
  os << "\n  ]\n}\n";
  return os.str();
}

std::string to_json(const std::vector<Finding>& findings,
                    std::size_t files_scanned) {
  std::size_t errors = 0, warnings = 0;
  for (const Finding& f : findings)
    (f.severity == Severity::kError ? errors : warnings)++;

  std::ostringstream os;
  os << "{\n  \"tool\": \"gka_lint\",\n  \"files_scanned\": " << files_scanned
     << ",\n  \"errors\": " << errors << ",\n  \"warnings\": " << warnings
     << ",\n  \"findings\": [";
  for (std::size_t i = 0; i < findings.size(); ++i) {
    const Finding& f = findings[i];
    os << (i ? "," : "") << "\n    {\"rule\": \"" << f.rule
       << "\", \"severity\": \"" << severity_name(f.severity)
       << "\", \"path\": \"" << json_escape(f.path)
       << "\", \"line\": " << f.line << ", \"message\": \""
       << json_escape(f.message) << "\"}";
  }
  os << (findings.empty() ? "]" : "\n  ]") << "\n}\n";
  return os.str();
}

std::string to_sarif(const std::vector<Finding>& findings) {
  std::ostringstream os;
  os << "{\n"
        "  \"$schema\": \"https://raw.githubusercontent.com/oasis-tcs/"
        "sarif-spec/master/Schemata/sarif-schema-2.1.0.json\",\n"
        "  \"version\": \"2.1.0\",\n"
        "  \"runs\": [{\n"
        "    \"tool\": {\"driver\": {\n"
        "      \"name\": \"gka_lint\",\n"
        "      \"informationUri\": \"docs/static_analysis.md\",\n"
        "      \"rules\": [";
  const std::vector<Rule>& rs = rules();
  std::map<std::string, std::size_t> rule_index;
  for (std::size_t i = 0; i < rs.size(); ++i) {
    rule_index[rs[i].id] = i;
    os << (i ? "," : "") << "\n        {\"id\": \"" << rs[i].id
       << "\", \"shortDescription\": {\"text\": \"" << json_escape(rs[i].summary)
       << "\"}, \"helpUri\": \"" << json_escape(rule_help_uri(rs[i].id))
       << "\", \"defaultConfiguration\": {\"level\": \""
       << severity_name(rs[i].severity) << "\"}}";
  }
  os << "\n      ]\n    }},\n    \"results\": [";
  for (std::size_t i = 0; i < findings.size(); ++i) {
    const Finding& f = findings[i];
    os << (i ? "," : "") << "\n      {\"ruleId\": \"" << f.rule << "\"";
    const auto idx = rule_index.find(f.rule);
    if (idx != rule_index.end()) os << ", \"ruleIndex\": " << idx->second;
    os << ", \"level\": \"" << severity_name(f.severity)
       << "\", \"message\": {\"text\": \"" << json_escape(f.message)
       << "\"}, \"locations\": [{\"physicalLocation\": {"
          "\"artifactLocation\": {\"uri\": \""
       << json_escape(f.path) << "\"}, \"region\": {\"startLine\": " << f.line
       << "}}}], \"properties\": {\"helpUri\": \""
       << json_escape(rule_help_uri(f.rule)) << "\"}}";
  }
  os << (findings.empty() ? "]" : "\n    ]") << "\n  }]\n}\n";
  return os.str();
}

}  // namespace gka_lint
