// GKA101/GKA102: architecture rules over the real include graph.
//
// The subsystem layering DAG this repo commits to (see DESIGN.md and
// docs/static_analysis.md):
//
//     util -> bignum -> crypto -> core -> fault -> {sim, gcs} -> server
//       -> harness
//
// where "A -> B" means B may include A. The braces group sim and gcs above
// fault; within the group, gcs may include sim (the Spread model runs on the
// simulator) but not vice versa. `fault` is pure policy (plans, hooks,
// invariants) consumed by sim/gcs through interfaces, so it sits below both
// and must not include either. `server` (the multi-group daemon) composes
// whole per-group stacks, so it sits on top of sim and gcs and below the
// harness. `obs` is a side layer includable from core upward only — the
// numeric/crypto layers below core must stay free of observability hooks.
//
// GKA101 rejects any `#include "subsys/..."` edge outside that table;
// GKA102 rejects cycles in the file-level include graph (which the DAG
// alone cannot see: two files of the same subsystem can still include each
// other in a loop).
#include <algorithm>
#include <functional>
#include <map>
#include <set>
#include <string>

#include "gka_lint/rules_internal.h"

namespace gka_lint {

namespace {

/// Subsystem of a repo-relative path, or "" when the file is outside src/
/// (tests, benches and tools are consumers of every layer and exempt).
std::string subsystem_of(const std::string& path) {
  const std::string prefix = "src/";
  if (path.rfind(prefix, 0) != 0) return {};
  const std::size_t slash = path.find('/', prefix.size());
  if (slash == std::string::npos) return {};
  return path.substr(prefix.size(), slash - prefix.size());
}

/// Subsystem named by an include target ("core/view.h" -> "core").
std::string subsystem_of_target(const std::string& target) {
  const std::size_t slash = target.find('/');
  if (slash == std::string::npos) return {};
  return target.substr(0, slash);
}

const std::map<std::string, std::set<std::string>>& allowed_deps() {
  static const std::map<std::string, std::set<std::string>> kAllowed = {
      {"util", {"util"}},
      {"obs", {"obs", "util"}},
      {"bignum", {"bignum", "util"}},
      {"crypto", {"crypto", "bignum", "util"}},
      {"core", {"core", "crypto", "bignum", "util", "obs"}},
      {"fault", {"fault", "core", "crypto", "bignum", "util", "obs"}},
      {"sim", {"sim", "fault", "core", "crypto", "bignum", "util", "obs"}},
      {"gcs",
       {"gcs", "sim", "fault", "core", "crypto", "bignum", "util", "obs"}},
      {"server",
       {"server", "gcs", "sim", "fault", "core", "crypto", "bignum", "util",
        "obs"}},
      {"harness",
       {"harness", "server", "gcs", "sim", "fault", "core", "crypto", "bignum",
        "util", "obs"}},
  };
  return kAllowed;
}

}  // namespace

void run_arch_rules(const std::vector<FileModel>& files, const Sink& sink) {
  // --- GKA101: layering-DAG violations ------------------------------------
  for (const FileModel& m : files) {
    const std::string from = subsystem_of(m.path);
    if (from.empty()) continue;
    const auto it = allowed_deps().find(from);
    for (const Include& inc : m.includes) {
      const std::string to = subsystem_of_target(inc.target);
      if (to.empty()) continue;  // relative or project-external include
      if (allowed_deps().find(to) == allowed_deps().end())
        continue;  // not a known subsystem (e.g. a third-party dir)
      if (it == allowed_deps().end()) {
        sink({"GKA101", m.path, inc.line,
              "subsystem '" + from +
                  "' is not in the layering DAG; add it to the table in "
                  "tools/gka_lint/rules_arch.cpp"});
        break;  // once per file is enough for an unknown subsystem
      }
      if (it->second.count(to) == 0) {
        sink({"GKA101", m.path, inc.line,
              "include of \"" + inc.target + "\" makes '" + from +
                  "' depend on '" + to +
                  "', violating the layering DAG util -> bignum -> crypto "
                  "-> core -> fault -> {sim, gcs} -> server -> harness (obs "
                  "from core up)"});
      }
    }
  }

  // --- GKA102: include cycles ---------------------------------------------
  // File-level DFS over project-internal includes with a three-color walk;
  // each back edge is one cycle, reported at the include that closes it.
  std::map<std::string, const FileModel*> by_path;
  for (const FileModel& m : files) by_path[m.path] = &m;
  // Include targets are repo-relative to src/ ("core/view.h"); file paths
  // are repo-relative ("src/core/view.h").
  auto resolve = [&](const std::string& target) -> const FileModel* {
    const auto it = by_path.find("src/" + target);
    return it == by_path.end() ? nullptr : it->second;
  };

  enum class Color { kWhite, kGray, kBlack };
  std::map<std::string, Color> color;
  std::vector<const FileModel*> stack;

  std::function<void(const FileModel*)> dfs = [&](const FileModel* m) {
    color[m->path] = Color::kGray;
    stack.push_back(m);
    for (const Include& inc : m->includes) {
      const FileModel* dep = resolve(inc.target);
      if (dep == nullptr) continue;
      const Color c = color.count(dep->path) ? color[dep->path] : Color::kWhite;
      if (c == Color::kGray) {
        // Reconstruct the loop for the message.
        std::string chain = dep->path;
        auto at = std::find(stack.begin(), stack.end(), dep);
        for (auto s = at; s != stack.end(); ++s)
          if (s != at) chain += " -> " + (*s)->path;
        chain += " -> " + dep->path;
        sink({"GKA102", m->path, inc.line,
              "include cycle: " + chain});
        continue;
      }
      if (c == Color::kWhite) dfs(dep);
    }
    stack.pop_back();
    color[m->path] = Color::kBlack;
  };

  for (const FileModel& m : files) {
    if (subsystem_of(m.path).empty()) continue;
    if (!color.count(m.path) || color[m.path] == Color::kWhite) dfs(&m);
  }
}

}  // namespace gka_lint
