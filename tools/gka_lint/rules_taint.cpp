// GKA201..GKA203: secret-taint dataflow, interprocedural since v3.
//
// Taint sources are identifiers declared with a zeroizing Secure* type
// (fields, locals, parameters, and functions *returning* a Secure* type —
// the model extracts them; in project mode the seed set spans the include
// closure so a field declared in a header taints its uses in the .cpp) plus
// any call to `reveal(...)`, the explicit SecureBytes escape hatch, plus —
// new in v3 — any call to a project function whose taint summary says its
// return value derives from secret material.
//
// Taint propagates through raw-byte locals: a line that declares a
// std::vector<uint8_t> / std::string / Bytes local (or `auto` initialized
// from reveal()) from a tainted expression both fires GKA201 and marks the
// new name tainted, so a later `std::cout << to_hex(buf)` fires GKA203 even
// though `buf` is not a secret-ish *name* — exactly the laundering the
// name-based GKA002/GKA006 heuristics cannot see.
//
// An approved boundary absorbs taint: a tainted value used as an argument
// of ct_equal / key_fingerprint / the HKDF-MAC-cipher APIs / a Secure*
// constructor / ScopedSubkey / secure_zero / mod_exp is considered properly
// handed over (the result is a fingerprint, ciphertext, a wiped copy, or a
// blinded public value), and the destination is not tainted.
//
// The interprocedural layer (v3): every project function gets a
// TaintSummary — for each parameter, whether taint entering through it
// reaches a log/trace/metric sink or the return value, and whether the
// return value derives from the function's own Secure* seeds — computed to
// a fixpoint over the cross-TU call graph (callgraph.h). The per-file pass
// then consults the summaries at every call site, so a secret laundered
// through a helper defined in ANOTHER file still fires:
//
//     // a.cpp                              // b.cpp
//     void stash(const Bytes& data) {       void f(const SecureBytes& k) {
//       std::cout << to_hex(data);            stash(k.reveal());   // GKA203
//     }                                     }
//
// Function-local v2 sees nothing wrong with either file in isolation.
#include <algorithm>
#include <set>

#include "gka_lint/callgraph.h"
#include "gka_lint/rules_internal.h"

namespace gka_lint {

namespace {

/// Call names that absorb taint. Deliberately explicit rather than
/// pattern-based: growing this list is a reviewed decision.
const char* const kBoundaries[] = {
    "ct_equal",       "key_fingerprint",    "secure_zero",
    "hkdf_sha256",    "hmac_sha256",        "aes128_cbc_encrypt",
    "aes128_cbc_decrypt", "ChaCha20",       "Sha256",
    "SecureBytes",    "SecureBigInt",       "ScopedSubkey",
    "Drbg",           "mod_exp",            "wipe",
};

/// Logging + obs sinks (the GKA002 and GKA006 lists combined): a tainted
/// value reaching one of these is an exfiltration regardless of its name.
const char* const kTaintSinks[] = {
    "to_hex",     "printf",     "fprintf",    "report",     "cout",
    "cerr",       "clog",       "attr",       "event_attr", "instant",
    "phase",      "mark_phase", "mark_point", "begin_event",
    "begin_span_at", "observe", "counter",    "histogram",
    "set_track_name"};

bool is_boundary(const std::string& name) {
  for (const char* b : kBoundaries)
    if (name == b) return true;
  return false;
}

bool is_taint_sink(const std::string& name) {
  for (const char* s : kTaintSinks)
    if (name == s) return true;
  return false;
}

/// Sanctioned files: the Secure* wrappers implement the boundary (reveal(),
/// wiping internals), and the symmetric primitives below them take raw key
/// bytes by design — their bodies ARE the approved boundary interior. They
/// are exempt from the GKA2xx findings and contribute no taint summaries.
bool taint_exempt_path(const std::string& path) {
  return path_contains(path, "util/secure_bytes") ||
         path_contains(path, "bignum/secure_bigint") ||
         path_contains(path, "crypto/aes") ||
         path_contains(path, "crypto/hmac") ||
         path_contains(path, "crypto/hkdf") ||
         path_contains(path, "crypto/chacha20") ||
         path_contains(path, "crypto/sha1") ||
         path_contains(path, "crypto/sha256") ||
         path_contains(path, "crypto/drbg");
}

/// Raw byte/string storage per the rule text. `Bytes` is this repo's alias
/// for std::vector<uint8_t>.
bool raw_byte_type(const std::string& type) {
  if (type.find("Secure") != std::string::npos) return false;
  return type.find("vector") != std::string::npos ||
         type.find("string") != std::string::npos ||
         type.find("Bytes") != std::string::npos;
}

/// Return types that can carry secret bytes out of a function. Scalar
/// returns (sizes, bools, ids) cannot, so a helper like
/// `std::size_t key_size() { return key_.size(); }` does not mint taint at
/// its call sites even though its return expression touches `key_`.
bool carrier_return_type(const std::string& type) {
  return type.find("vector") != std::string::npos ||
         type.find("string") != std::string::npos ||
         type.find("Bytes") != std::string::npos ||
         type.find("Secure") != std::string::npos ||
         type.find("auto") != std::string::npos;
}

/// True when the identifier occurrence at `pos` is wrapped by an approved
/// boundary call somewhere up its enclosing-call chain on this line.
bool wrapped_by_boundary(const std::string& code,
                         const std::vector<LineTok>& ids, std::size_t pos) {
  for (const std::string& call : enclosing_calls(code, ids, pos))
    if (is_boundary(call)) return true;
  return false;
}

struct TaintHit {
  const LineTok* tok;  // the tainted identifier, `reveal`, or a call whose
                       // summary says it returns tainted bytes
  bool via_reveal;
  bool via_summary;
};

/// Tainted, non-boundary-wrapped occurrences within [begin,end) of the
/// line: directly tainted identifiers, `reveal(...)` calls, and — when an
/// interprocedural view is available — calls of project functions whose
/// summary says the return value is secret-derived. `skip_call`, when
/// non-null, names a callee not to treat as a summary source (the scanned
/// function itself, on its signature line — a definition is not a call).
std::vector<TaintHit> region_hits(const std::string& code,
                                  const std::vector<LineTok>& ids,
                                  const std::set<std::string>& tainted,
                                  std::size_t begin, std::size_t end,
                                  const InterprocView* iv,
                                  const std::string* skip_call = nullptr) {
  std::vector<TaintHit> hits;
  for (const LineTok& t : ids) {
    if (t.pos < begin || t.pos >= end) continue;
    const bool reveal = t.text == "reveal";
    bool summary_source = false;
    if (!reveal && tainted.count(t.text) == 0) {
      if (iv == nullptr) continue;
      const std::size_t after = t.pos + t.text.size();
      if (after >= code.size() || code[after] != '(') continue;
      if (is_boundary(t.text) || is_taint_sink(t.text)) continue;
      if (skip_call != nullptr && t.text == *skip_call) continue;
      if (!iv->returns_tainted(t.text)) continue;
      summary_source = true;
    }
    if (wrapped_by_boundary(code, ids, t.pos)) continue;
    hits.push_back({&t, reveal, summary_source});
  }
  return hits;
}

/// Parses a local declaration with an initializer on a stripped code line:
/// `[const] Type name = expr;` or `[const] Type name(expr);` /
/// `Type name{expr};`. Returns true and fills the out-params when the line
/// looks like one; `init_begin` is where the initializer text starts.
bool parse_decl(const std::string& code, const std::vector<LineTok>& ids,
                std::string* type, const LineTok** name,
                std::size_t* init_begin) {
  if (ids.empty()) return false;
  const std::size_t eq = code.find('=');
  if (eq != std::string::npos &&
      (eq + 1 >= code.size() || code[eq + 1] != '=') &&
      (eq == 0 || (code[eq - 1] != '=' && code[eq - 1] != '!' &&
                   code[eq - 1] != '<' && code[eq - 1] != '>' &&
                   code[eq - 1] != '+' && code[eq - 1] != '-' &&
                   code[eq - 1] != '|' && code[eq - 1] != '&'))) {
    // `Type name = init` needs >= 2 identifiers left of '='; a plain
    // assignment `name = init` has one and is not a declaration.
    const LineTok* last = nullptr;
    std::size_t count = 0;
    for (const LineTok& t : ids) {
      if (t.pos + t.text.size() <= eq) {
        last = &t;
        ++count;
      }
    }
    if (last == nullptr || count < 2) return false;
    *name = last;
    *type = code.substr(0, last->pos);
    *init_begin = eq + 1;
    return true;
  }
  // Constructor-style: `Type name(init);` — the name is the identifier
  // right before the first '(' and must have type text before it.
  const std::size_t open = code.find('(');
  if (open == std::string::npos) return false;
  const LineTok* before = nullptr;
  for (const LineTok& t : ids)
    if (t.pos + t.text.size() == open) before = &t;
  if (before == nullptr || before->pos == 0) return false;
  const std::string head = code.substr(0, before->pos);
  // Type text must contain another identifier (calls like `foo(x)` have
  // only whitespace or punctuation before the name).
  bool has_type_ident = false;
  for (const LineTok& t : ids)
    if (t.pos + t.text.size() <= before->pos && &t != before &&
        t.text != "const" && t.text != "static")
      has_type_ident = true;
  (void)head;
  if (!has_type_ident) return false;
  *name = before;
  *type = code.substr(0, before->pos);
  *init_begin = open + 1;
  return true;
}

struct ScanOutcome {
  bool reached_sink = false;    // taint reached a log/trace/metric sink
                                // (directly or through a summarized callee)
  bool reached_return = false;  // taint reached a return expression
};

/// Scans one function body with the given initial taint set. In reporting
/// mode (`report` != nullptr) emits GKA201/202/203 findings; in summary
/// mode (`report` == nullptr) only records the outcome. Both modes
/// propagate taint through raw/auto locals and consult the interprocedural
/// view (when present) for summary-known callees.
ScanOutcome scan_body(const FileModel& m, const Function& fn,
                      std::set<std::string> tainted, const InterprocView* iv,
                      const Sink* report) {
  ScanOutcome out;
  const bool raw_return = raw_byte_type(fn.return_type);

  for (int line = fn.body_begin; line <= fn.body_end; ++line) {
    const std::size_t li = static_cast<std::size_t>(line - 1);
    if (li >= m.code.size()) break;
    const std::string& c = m.code[li];
    if (c.empty()) continue;
    const std::vector<LineTok> ids = line_identifiers(c);
    // On the signature line(s), an occurrence of the function's own name
    // followed by '(' is the definition, not a recursive call site.
    const std::string* self =
        line <= fn.body_begin ? &fn.name : nullptr;

    // --- GKA202: tainted return ------------------------------------------
    for (const LineTok& t : ids) {
      if (t.text != "return") continue;
      const auto hits = region_hits(c, ids, tainted,
                                    t.pos + t.text.size(), c.size(), iv, self);
      if (!hits.empty()) {
        out.reached_return = true;
        if (report != nullptr && raw_return) {
          const LineTok* h = hits.front().tok;
          (*report)({"GKA202", m.path, line,
                     "function '" + fn.name + "' returns secret-derived '" +
                         h->text + "' as raw '" + fn.return_type +
                         "'; return a Secure* wrapper or pass through an "
                         "approved boundary"});
        }
      }
      break;
    }
    if (!ids.empty() && ids.front().text == "return") continue;

    // --- GKA203 (direct): tainted value reaching a sink -------------------
    // Scanned before the declaration handling: member-call lines like
    // `tr->attr(...)` parse as constructor-style declarations, and the
    // sink scan must not be gated behind that misparse.
    // Stream sinks (cout/cerr/clog) take everything to their right; call
    // sinks take their parenthesized arguments.
    for (const LineTok& t : ids) {
      if (!is_taint_sink(t.text)) continue;
      const std::size_t open = t.pos + t.text.size();
      const bool is_call = open < c.size() && c[open] == '(';
      const bool is_stream =
          t.text == "cout" || t.text == "cerr" || t.text == "clog";
      if (!is_call && !is_stream) continue;
      std::vector<TaintHit> hits;
      if (is_call) {
        for (const auto& [ab, ae] : call_args(c, open)) {
          const auto h = region_hits(c, ids, tainted, ab, ae, iv, self);
          hits.insert(hits.end(), h.begin(), h.end());
        }
      } else {
        hits = region_hits(c, ids, tainted, open, c.size(), iv, self);
      }
      for (const TaintHit& h : hits) {
        out.reached_sink = true;
        if (report == nullptr) break;
        // Name-based rules already cover secret-ish names; GKA203 exists
        // for the laundered ones they cannot see.
        if (!h.via_reveal && !h.via_summary && is_secretish(h.tok->text))
          continue;
        (*report)({"GKA203", m.path, line,
                   "secret-derived '" + h.tok->text + "' reaches sink '" +
                       t.text + "'; log a fingerprint or a size instead"});
        break;
      }
    }

    // --- GKA203 (interprocedural): tainted argument to a callee whose
    // summary says that parameter reaches a sink inside ---------------------
    if (iv != nullptr) {
      for (const LineTok& t : ids) {
        const std::size_t open = t.pos + t.text.size();
        if (open >= c.size() || c[open] != '(') continue;
        if (is_boundary(t.text) || is_taint_sink(t.text)) continue;
        if (self != nullptr && t.text == *self) continue;
        if (!iv->known(t.text)) continue;
        if (wrapped_by_boundary(c, ids, t.pos)) continue;
        const auto args = call_args(c, open);
        for (std::size_t k = 0; k < args.size(); ++k) {
          if (!iv->param_to_sink(t.text, k)) continue;
          const auto hits = region_hits(c, ids, tainted, args[k].first,
                                        args[k].second, iv, self);
          if (hits.empty()) continue;
          out.reached_sink = true;
          if (report != nullptr) {
            (*report)({"GKA203", m.path, line,
                       "secret-derived '" + hits.front().tok->text +
                           "' passed to '" + t.text +
                           "', which forwards argument " + std::to_string(k) +
                           " to a logging/trace sink (interprocedural "
                           "summary); log a fingerprint or a size instead"});
          }
          break;
        }
      }
    }

    // --- GKA201: tainted value into a raw byte/string local --------------
    std::string type;
    const LineTok* name = nullptr;
    std::size_t init_begin = 0;
    if (parse_decl(c, ids, &type, &name, &init_begin)) {
      const auto hits =
          region_hits(c, ids, tainted, init_begin, c.size(), iv, self);
      if (!hits.empty()) {
        const bool is_auto = type.find("auto") != std::string::npos;
        const bool reveal_init =
            std::any_of(hits.begin(), hits.end(),
                        [](const TaintHit& h) { return h.via_reveal; });
        if (raw_byte_type(type) || (is_auto && reveal_init)) {
          if (report != nullptr) {
            (*report)({"GKA201", m.path, line,
                       "secret-derived value escapes into raw '" +
                           (is_auto
                                ? std::string("auto (reveal)")
                                : type.substr(type.find_first_not_of(" \t"))) +
                           "' local '" + name->text +
                           "'; keep it in Secure* storage or wrap the use in "
                           "an approved boundary"});
          }
          tainted.insert(name->text);  // follow the laundered copy
        } else if (is_auto) {
          tainted.insert(name->text);  // auto from tainted expr: propagate
        }
      }
    }
  }
  return out;
}

/// Seed names for a taint scan. Single-letter names are too generic to
/// taint by name: the seed set is file-global (no per-function scoping), so
/// a `SecureBytes b` in one test body must not taint an unrelated `b`
/// elsewhere. An escape of a single-letter secret is still caught at its
/// reveal() call.
std::set<std::string> filtered_seed(const std::vector<std::string>& names) {
  std::set<std::string> seed;
  for (const std::string& n : names)
    if (n.size() > 1) seed.insert(n);
  return seed;
}

}  // namespace

SummaryMap compute_taint_summaries(
    const std::vector<FileModel>& models, const CallGraph& cg,
    const std::map<const FileModel*, std::vector<std::string>>& seeds_of) {
  (void)models;
  SummaryMap sums;
  for (const FunctionRef& ref : cg.all()) {
    if (taint_exempt_path(ref.file->path)) continue;
    // Boundary and sink names have fixed semantics; a project-local
    // redefinition must not widen or narrow them.
    if (is_boundary(ref.fn->name) || is_taint_sink(ref.fn->name)) continue;
    TaintSummary s;
    s.param_to_sink.assign(ref.fn->params.size(), false);
    s.param_to_return.assign(ref.fn->params.size(), false);
    sums[ref.fn] = std::move(s);
  }

  // Fixpoint: bits only ever turn on, so this converges; the iteration cap
  // is a safety net (summary depth beyond it would need a call chain of
  // more than kMaxIters summary-relevant hops).
  constexpr int kMaxIters = 12;
  for (int iter = 0; iter < kMaxIters; ++iter) {
    bool changed = false;
    const InterprocView iv(cg, sums);
    for (const FunctionRef& ref : cg.all()) {
      const auto it = sums.find(ref.fn);
      if (it == sums.end()) continue;
      TaintSummary& sum = it->second;
      const Function& fn = *ref.fn;

      for (std::size_t p = 0; p < fn.params.size(); ++p) {
        if (fn.params[p].empty()) continue;
        if (sum.param_to_sink[p] && sum.param_to_return[p]) continue;
        const ScanOutcome o =
            scan_body(*ref.file, fn, {fn.params[p]}, &iv, nullptr);
        if (o.reached_sink && !sum.param_to_sink[p]) {
          sum.param_to_sink[p] = true;
          changed = true;
        }
        if (o.reached_return && !sum.param_to_return[p]) {
          sum.param_to_return[p] = true;
          changed = true;
        }
      }

      if (!sum.returns_tainted && carrier_return_type(fn.return_type)) {
        const auto seeds = seeds_of.find(ref.file);
        const ScanOutcome o = scan_body(
            *ref.file, fn,
            seeds == seeds_of.end() ? std::set<std::string>{}
                                    : filtered_seed(seeds->second),
            &iv, nullptr);
        if (o.reached_return) {
          sum.returns_tainted = true;
          changed = true;
        }
      }
    }
    if (!changed) break;
  }
  return sums;
}

void run_taint_rules(const FileModel& m,
                     const std::vector<std::string>& secure_idents,
                     const InterprocView* iv, const Sink& sink) {
  if (taint_exempt_path(m.path)) return;

  const std::set<std::string> seed = filtered_seed(secure_idents);
  for (const Function& fn : m.functions)
    scan_body(m, fn, seed, iv, &sink);
}

}  // namespace gka_lint
