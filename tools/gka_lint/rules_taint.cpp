// GKA201..GKA203: secret-taint dataflow, interprocedural since v3.
// GKA601..GKA603 (v4): the same taint engine with *control-flow* sinks —
// a secret-derived value in an if/while/switch condition or a ternary
// (GKA601), a loop bound or an early-return/break guard (GKA602), or an
// array/Bytes subscript (GKA603) is a data-dependent timing channel: the
// branchy-crypto leak class docs/hardening.md calls out. Reporting is scoped
// to src/ (test bodies branch on test vectors all the time); the summaries
// still propagate everywhere, and a new param_to_branch summary bit fires
// GKA601 at the call site when a tainted argument reaches a branch inside a
// callee defined in another TU. Public-length accessors (`k.size()`,
// `k.empty()`, `k.bit_length()`) are declassified: message and key lengths
// are public protocol metadata here, so branching on them leaks nothing
// secret. The remaining sanctioned secret-dependent loops (bignum limb
// kernels) carry audited allow() suppressions with reasons.
//
// Taint sources are identifiers declared with a zeroizing Secure* type
// (fields, locals, parameters, and functions *returning* a Secure* type —
// the model extracts them; in project mode the seed set spans the include
// closure so a field declared in a header taints its uses in the .cpp) plus
// any call to `reveal(...)`, the explicit SecureBytes escape hatch, plus —
// new in v3 — any call to a project function whose taint summary says its
// return value derives from secret material.
//
// Taint propagates through raw-byte locals: a line that declares a
// std::vector<uint8_t> / std::string / Bytes local (or `auto` initialized
// from reveal()) from a tainted expression both fires GKA201 and marks the
// new name tainted, so a later `std::cout << to_hex(buf)` fires GKA203 even
// though `buf` is not a secret-ish *name* — exactly the laundering the
// name-based GKA002/GKA006 heuristics cannot see.
//
// An approved boundary absorbs taint: a tainted value used as an argument
// of ct_equal / key_fingerprint / the HKDF-MAC-cipher APIs / a Secure*
// constructor / ScopedSubkey / secure_zero / mod_exp is considered properly
// handed over (the result is a fingerprint, ciphertext, a wiped copy, or a
// blinded public value), and the destination is not tainted.
//
// The interprocedural layer (v3): every project function gets a
// TaintSummary — for each parameter, whether taint entering through it
// reaches a log/trace/metric sink or the return value, and whether the
// return value derives from the function's own Secure* seeds — computed to
// a fixpoint over the cross-TU call graph (callgraph.h). The per-file pass
// then consults the summaries at every call site, so a secret laundered
// through a helper defined in ANOTHER file still fires:
//
//     // a.cpp                              // b.cpp
//     void stash(const Bytes& data) {       void f(const SecureBytes& k) {
//       std::cout << to_hex(data);            stash(k.reveal());   // GKA203
//     }                                     }
//
// Function-local v2 sees nothing wrong with either file in isolation.
#include <algorithm>
#include <cctype>
#include <cstring>
#include <set>

#include "gka_lint/callgraph.h"
#include "gka_lint/rules_internal.h"

namespace gka_lint {

namespace {

/// Call names that absorb taint. Deliberately explicit rather than
/// pattern-based: growing this list is a reviewed decision.
const char* const kBoundaries[] = {
    "ct_equal",       "key_fingerprint",    "secure_zero",
    "hkdf_sha256",    "hmac_sha256",        "aes128_cbc_encrypt",
    "aes128_cbc_decrypt", "ChaCha20",       "Sha256",
    "SecureBytes",    "SecureBigInt",       "ScopedSubkey",
    "Drbg",           "mod_exp",            "wipe",
    // The modular-exponentiation kernels (Montgomery::exp, the
    // CryptoContext::exp/exp_g wrappers): passing a secret exponent into
    // modexp is the *intended* use of the secret, and the kernel's interior
    // square-and-multiply loop is the audited constant-time boundary — the
    // GKA6xx rules stop at its signature rather than flagging every
    // protocol-layer exp(g, secret) call.
    "exp",            "exp_g",
};

/// Logging + obs sinks (the GKA002 and GKA006 lists combined): a tainted
/// value reaching one of these is an exfiltration regardless of its name.
const char* const kTaintSinks[] = {
    "to_hex",     "printf",     "fprintf",    "report",     "cout",
    "cerr",       "clog",       "attr",       "event_attr", "instant",
    "phase",      "mark_phase", "mark_point", "begin_event",
    "begin_span_at", "observe", "counter",    "histogram",
    "set_track_name"};

bool is_boundary(const std::string& name) {
  for (const char* b : kBoundaries)
    if (name == b) return true;
  return false;
}

bool is_taint_sink(const std::string& name) {
  for (const char* s : kTaintSinks)
    if (name == s) return true;
  return false;
}

/// Sanctioned files: the Secure* wrappers implement the boundary (reveal(),
/// wiping internals), and the symmetric primitives below them take raw key
/// bytes by design — their bodies ARE the approved boundary interior. They
/// are exempt from the GKA2xx findings and contribute no taint summaries.
bool taint_exempt_path(const std::string& path) {
  return path_contains(path, "util/secure_bytes") ||
         path_contains(path, "bignum/secure_bigint") ||
         path_contains(path, "crypto/aes") ||
         path_contains(path, "crypto/hmac") ||
         path_contains(path, "crypto/hkdf") ||
         path_contains(path, "crypto/chacha20") ||
         path_contains(path, "crypto/sha1") ||
         path_contains(path, "crypto/sha256") ||
         path_contains(path, "crypto/drbg");
}

/// Raw byte/string storage per the rule text. `Bytes` is this repo's alias
/// for std::vector<uint8_t>.
bool raw_byte_type(const std::string& type) {
  if (type.find("Secure") != std::string::npos) return false;
  return type.find("vector") != std::string::npos ||
         type.find("string") != std::string::npos ||
         type.find("Bytes") != std::string::npos;
}

/// Return types that can carry secret bytes out of a function. Scalar
/// returns (sizes, bools, ids) cannot, so a helper like
/// `std::size_t key_size() { return key_.size(); }` does not mint taint at
/// its call sites even though its return expression touches `key_`.
bool carrier_return_type(const std::string& type) {
  return type.find("vector") != std::string::npos ||
         type.find("string") != std::string::npos ||
         type.find("Bytes") != std::string::npos ||
         type.find("Secure") != std::string::npos ||
         type.find("auto") != std::string::npos;
}

/// True when the identifier occurrence at `pos` is wrapped by an approved
/// boundary call somewhere up its enclosing-call chain on this line.
bool wrapped_by_boundary(const std::string& code,
                         const std::vector<LineTok>& ids, std::size_t pos) {
  for (const std::string& call : enclosing_calls(code, ids, pos))
    if (is_boundary(call)) return true;
  return false;
}

struct TaintHit {
  const LineTok* tok;  // the tainted identifier, `reveal`, or a call whose
                       // summary says it returns tainted bytes
  bool via_reveal;
  bool via_summary;
};

/// Tainted, non-boundary-wrapped occurrences within [begin,end) of the
/// line: directly tainted identifiers, `reveal(...)` calls, and — when an
/// interprocedural view is available — calls of project functions whose
/// summary says the return value is secret-derived. `skip_call`, when
/// non-null, names a callee not to treat as a summary source (the scanned
/// function itself, on its signature line — a definition is not a call).
std::vector<TaintHit> region_hits(const std::string& code,
                                  const std::vector<LineTok>& ids,
                                  const std::set<std::string>& tainted,
                                  std::size_t begin, std::size_t end,
                                  const InterprocView* iv,
                                  const std::string* skip_call = nullptr) {
  std::vector<TaintHit> hits;
  for (const LineTok& t : ids) {
    if (t.pos < begin || t.pos >= end) continue;
    const bool reveal = t.text == "reveal";
    bool summary_source = false;
    if (!reveal && tainted.count(t.text) == 0) {
      if (iv == nullptr) continue;
      const std::size_t after = t.pos + t.text.size();
      if (after >= code.size() || code[after] != '(') continue;
      if (is_boundary(t.text) || is_taint_sink(t.text)) continue;
      if (skip_call != nullptr && t.text == *skip_call) continue;
      if (!iv->returns_tainted(t.text)) continue;
      summary_source = true;
    }
    if (wrapped_by_boundary(code, ids, t.pos)) continue;
    hits.push_back({&t, reveal, summary_source});
  }
  return hits;
}

/// Parses a local declaration with an initializer on a stripped code line:
/// `[const] Type name = expr;` or `[const] Type name(expr);` /
/// `Type name{expr};`. Returns true and fills the out-params when the line
/// looks like one; `init_begin` is where the initializer text starts.
bool parse_decl(const std::string& code, const std::vector<LineTok>& ids,
                std::string* type, const LineTok** name,
                std::size_t* init_begin) {
  if (ids.empty()) return false;
  const std::size_t eq = code.find('=');
  if (eq != std::string::npos &&
      (eq + 1 >= code.size() || code[eq + 1] != '=') &&
      (eq == 0 || (code[eq - 1] != '=' && code[eq - 1] != '!' &&
                   code[eq - 1] != '<' && code[eq - 1] != '>' &&
                   code[eq - 1] != '+' && code[eq - 1] != '-' &&
                   code[eq - 1] != '|' && code[eq - 1] != '&'))) {
    // `Type name = init` needs >= 2 identifiers left of '='; a plain
    // assignment `name = init` has one and is not a declaration.
    const LineTok* last = nullptr;
    std::size_t count = 0;
    for (const LineTok& t : ids) {
      if (t.pos + t.text.size() <= eq) {
        last = &t;
        ++count;
      }
    }
    if (last == nullptr || count < 2) return false;
    *name = last;
    *type = code.substr(0, last->pos);
    *init_begin = eq + 1;
    return true;
  }
  // Constructor-style: `Type name(init);` — the name is the identifier
  // right before the first '(' and must have type text before it.
  const std::size_t open = code.find('(');
  if (open == std::string::npos) return false;
  const LineTok* before = nullptr;
  for (const LineTok& t : ids)
    if (t.pos + t.text.size() == open) before = &t;
  if (before == nullptr || before->pos == 0) return false;
  const std::string head = code.substr(0, before->pos);
  // Type text must contain another identifier (calls like `foo(x)` have
  // only whitespace or punctuation before the name).
  bool has_type_ident = false;
  for (const LineTok& t : ids)
    if (t.pos + t.text.size() <= before->pos && &t != before &&
        t.text != "const" && t.text != "static")
      has_type_ident = true;
  (void)head;
  if (!has_type_ident) return false;
  *name = before;
  *type = code.substr(0, before->pos);
  *init_begin = open + 1;
  return true;
}

/// True when the tainted identifier occurrence is used only through a
/// public-metadata accessor: its length/emptiness (`k.size()`, `k.empty()`,
/// `k.bit_length()`) or container *structure* (`keys_.count(e)`,
/// `keys_.find(e)`, `keys_.end()`): lengths and which-epochs-exist are
/// public protocol metadata in this codebase — the secret is the mapped
/// value, not the shape of the map — so a branch on one is not a
/// secret-dependent branch. Applied to the GKA6xx control-flow sinks and to
/// taint propagation through locals (`auto it = keys_.find(e)` yields a
/// public position, not secret bytes); the escape rules (GKA201/202/203)
/// keep their stricter view of direct uses.
bool public_accessor_use(const std::string& code, const LineTok& t) {
  std::size_t i = t.pos + t.text.size();
  while (i < code.size() && code[i] == ' ') ++i;
  if (i < code.size() && code[i] == '.') {
    ++i;
  } else if (i + 1 < code.size() && code[i] == '-' && code[i + 1] == '>') {
    i += 2;
  } else {
    return false;
  }
  while (i < code.size() && code[i] == ' ') ++i;
  static const char* const kPublicAccessors[] = {
      "size", "empty",    "length", "bit_length", "bits",
      "count", "find",    "contains", "begin",    "end"};
  for (const char* a : kPublicAccessors) {
    const std::size_t len = std::strlen(a);
    if (code.compare(i, len, a) == 0 && i + len < code.size() &&
        code[i + len] == '(')
      return true;
  }
  return false;
}

/// True when `line` (or the line above it) carries an `allow()` listing a
/// GKA6xx rule. Summary-mode scans consult this so an *audited* secret-
/// dependent branch (the bignum square-and-multiply kernels) does not set
/// param_to_branch and re-fire GKA601 at every call site — the allow() marks
/// the reviewed constant-time boundary, exactly like the data-flow
/// boundaries in kBoundaries. Reporting mode ignores it: findings are still
/// emitted there and eaten by the normal suppression pass, which keeps the
/// GKA007 stale-allow bookkeeping honest.
bool ct_allowed(const FileModel& m, int line) {
  for (const Allow& a : m.allows) {
    if (a.line != line && a.line != line - 1) continue;
    for (const std::string& id : a.ids)
      if (id.rfind("GKA6", 0) == 0) return true;
  }
  return false;
}

struct ScanOutcome {
  bool reached_sink = false;    // taint reached a log/trace/metric sink
                                // (directly or through a summarized callee)
  bool reached_return = false;  // taint reached a return expression
  bool reached_branch = false;  // taint reached a control-flow decision
                                // (condition, loop bound, subscript)
};

/// Scans one function body with the given initial taint set. In reporting
/// mode (`report` != nullptr) emits GKA201/202/203 findings; in summary
/// mode (`report` == nullptr) only records the outcome. Both modes
/// propagate taint through raw/auto locals and consult the interprocedural
/// view (when present) for summary-known callees.
ScanOutcome scan_body(const FileModel& m, const Function& fn,
                      std::set<std::string> tainted, const InterprocView* iv,
                      const Sink* report) {
  ScanOutcome out;
  const bool raw_return = raw_byte_type(fn.return_type);

  for (int line = fn.body_begin; line <= fn.body_end; ++line) {
    const std::size_t li = static_cast<std::size_t>(line - 1);
    if (li >= m.code.size()) break;
    const std::string& c = m.code[li];
    if (c.empty()) continue;
    const std::vector<LineTok> ids = line_identifiers(c);
    // On the signature line(s), an occurrence of the function's own name
    // followed by '(' is the definition, not a recursive call site.
    const std::string* self =
        line <= fn.body_begin ? &fn.name : nullptr;

    // --- GKA202: tainted return ------------------------------------------
    for (const LineTok& t : ids) {
      if (t.text != "return") continue;
      const auto hits = region_hits(c, ids, tainted,
                                    t.pos + t.text.size(), c.size(), iv, self);
      if (!hits.empty()) {
        out.reached_return = true;
        if (report != nullptr && raw_return) {
          const LineTok* h = hits.front().tok;
          (*report)({"GKA202", m.path, line,
                     "function '" + fn.name + "' returns secret-derived '" +
                         h->text + "' as raw '" + fn.return_type +
                         "'; return a Secure* wrapper or pass through an "
                         "approved boundary"});
        }
      }
      break;
    }

    // --- GKA601/602/603: secret-dependent control flow (constant-time
    // discipline). Findings are scoped to src/ — test and bench bodies
    // branch on test vectors by design — but the summary bit is recorded
    // everywhere so cross-TU propagation works. ---------------------------
    const bool ct_report = report != nullptr && path_has_prefix(m.path, "src/");
    auto ct_hits = [&](std::size_t b, std::size_t e) {
      std::vector<TaintHit> hs = region_hits(c, ids, tainted, b, e, iv, self);
      hs.erase(std::remove_if(hs.begin(), hs.end(),
                              [&](const TaintHit& h) {
                                return public_accessor_use(c, *h.tok);
                              }),
               hs.end());
      return hs;
    };
    auto ct_fire = [&](const char* rule, const TaintHit& h,
                       const std::string& what) {
      if (report == nullptr && ct_allowed(m, line)) return;  // audited
      out.reached_branch = true;
      if (!ct_report) return;
      (*report)({rule, m.path, line,
                 "secret-derived '" + h.tok->text + "' " + what +
                     "; execution time becomes key-dependent — use ct_equal "
                     "/ a fixed iteration count / a masked select, or "
                     "justify with an audited allow()"});
    };

    for (const LineTok& t : ids) {
      const bool is_loop = t.text == "for";
      const bool is_cond =
          t.text == "if" || t.text == "while" || t.text == "switch";
      if (!is_loop && !is_cond) continue;
      std::size_t open = t.pos + t.text.size();
      while (open < c.size() && c[open] == ' ') ++open;
      if (open >= c.size() || c[open] != '(') continue;
      int d = 0;
      std::size_t close = open;
      for (; close < c.size(); ++close) {
        if (c[close] == '(') ++d;
        if (c[close] == ')' && --d == 0) break;
      }
      // An unterminated condition (it continues on the next source line) is
      // scanned to end-of-line; continuation lines are a documented
      // under-approximation.
      const std::size_t cond_end = close < c.size() ? close : c.size();
      if (is_loop) {
        // Ranged-for iterates a container: the trip count is the container
        // *length*, which is public, so `for (auto b : key)` is fine.
        bool range_for = false;
        for (std::size_t q = open + 1; q < cond_end; ++q)
          if (c[q] == ':' && (q + 1 >= c.size() || c[q + 1] != ':') &&
              (q == 0 || c[q - 1] != ':'))
            range_for = true;
        if (range_for) continue;
      }
      const auto hs = ct_hits(open + 1, cond_end);
      if (hs.empty()) continue;
      bool early_exit = false;
      if (t.text == "if") {
        for (const LineTok& r : ids)
          if (r.pos > cond_end &&
              (r.text == "return" || r.text == "break" ||
               r.text == "continue" || r.text == "goto"))
            early_exit = true;
      }
      if (is_loop)
        ct_fire("GKA602", hs.front(), "used as a loop bound/condition");
      else if (early_exit)
        ct_fire("GKA602", hs.front(), "guards an early return/break");
      else
        ct_fire("GKA601", hs.front(),
                "used in a '" + t.text + "' condition");
    }

    // Ternary `cond ? a : b`: the condition part runs from the last
    // statement/grouping boundary to the '?'.
    {
      const std::size_t q = c.find('?');
      if (q != std::string::npos && c.find(':', q) != std::string::npos) {
        std::size_t b = 0;
        for (std::size_t i2 = 0; i2 < q; ++i2) {
          const char ch = c[i2];
          if (ch == ';' || ch == '{') b = i2 + 1;
          if (ch == '=') {
            // Assignment '=' starts the expression; comparison operators
            // (==, !=, <=, >=) do not.
            const bool cmp = (i2 + 1 < q && c[i2 + 1] == '=') ||
                             (i2 > 0 && (c[i2 - 1] == '=' || c[i2 - 1] == '!' ||
                                         c[i2 - 1] == '<' || c[i2 - 1] == '>'));
            if (!cmp) b = i2 + 1;
            if (i2 + 1 < q && c[i2 + 1] == '=') ++i2;
          }
        }
        const auto hs = ct_hits(b, q);
        if (!hs.empty())
          ct_fire("GKA601", hs.front(), "used in a ternary condition");
      }
    }

    // --- GKA603: secret-tainted subscript. The char before '[' must end an
    // indexable expression, which filters lambda captures and attributes. --
    for (std::size_t i2 = 0; i2 < c.size(); ++i2) {
      if (c[i2] != '[') continue;
      std::size_t p2 = i2;
      while (p2 > 0 && c[p2 - 1] == ' ') --p2;
      if (p2 == 0) continue;
      const char before = c[p2 - 1];
      if (!(std::isalnum(static_cast<unsigned char>(before)) ||
            before == '_' || before == ']' || before == ')'))
        continue;
      int d = 0;
      std::size_t close = i2;
      for (; close < c.size(); ++close) {
        if (c[close] == '[') ++d;
        if (c[close] == ']' && --d == 0) break;
      }
      if (close >= c.size()) break;
      const auto hs = ct_hits(i2 + 1, close);
      if (!hs.empty())
        ct_fire("GKA603", hs.front(), "used as an array/Bytes index");
      i2 = close;
    }

    // Interprocedural: a tainted argument passed to a callee whose summary
    // says that parameter reaches a branch inside (possibly in another TU).
    if (iv != nullptr) {
      for (const LineTok& t : ids) {
        const std::size_t open = t.pos + t.text.size();
        if (open >= c.size() || c[open] != '(') continue;
        if (is_boundary(t.text) || is_taint_sink(t.text)) continue;
        if (self != nullptr && t.text == *self) continue;
        if (!iv->known(t.text)) continue;
        if (wrapped_by_boundary(c, ids, t.pos)) continue;
        const auto args = call_args(c, open);
        for (std::size_t k = 0; k < args.size(); ++k) {
          if (!iv->param_to_branch(t.text, k)) continue;
          const auto hs = ct_hits(args[k].first, args[k].second);
          if (hs.empty()) continue;
          if (report == nullptr && ct_allowed(m, line)) break;  // audited
          out.reached_branch = true;
          if (ct_report) {
            (*report)({"GKA601", m.path, line,
                       "secret-derived '" + hs.front().tok->text +
                           "' passed to '" + t.text +
                           "', which branches on argument " +
                           std::to_string(k) +
                           " (interprocedural summary); make the callee "
                           "constant-time or pass a fingerprint"});
          }
          break;
        }
      }
    }

    if (!ids.empty() && ids.front().text == "return") continue;

    // --- GKA203 (direct): tainted value reaching a sink -------------------
    // Scanned before the declaration handling: member-call lines like
    // `tr->attr(...)` parse as constructor-style declarations, and the
    // sink scan must not be gated behind that misparse.
    // Stream sinks (cout/cerr/clog) take everything to their right; call
    // sinks take their parenthesized arguments.
    for (const LineTok& t : ids) {
      if (!is_taint_sink(t.text)) continue;
      const std::size_t open = t.pos + t.text.size();
      const bool is_call = open < c.size() && c[open] == '(';
      const bool is_stream =
          t.text == "cout" || t.text == "cerr" || t.text == "clog";
      if (!is_call && !is_stream) continue;
      std::vector<TaintHit> hits;
      if (is_call) {
        for (const auto& [ab, ae] : call_args(c, open)) {
          const auto h = region_hits(c, ids, tainted, ab, ae, iv, self);
          hits.insert(hits.end(), h.begin(), h.end());
        }
      } else {
        hits = region_hits(c, ids, tainted, open, c.size(), iv, self);
      }
      for (const TaintHit& h : hits) {
        out.reached_sink = true;
        if (report == nullptr) break;
        // Name-based rules already cover secret-ish names; GKA203 exists
        // for the laundered ones they cannot see.
        if (!h.via_reveal && !h.via_summary && is_secretish(h.tok->text))
          continue;
        (*report)({"GKA203", m.path, line,
                   "secret-derived '" + h.tok->text + "' reaches sink '" +
                       t.text + "'; log a fingerprint or a size instead"});
        break;
      }
    }

    // --- GKA203 (interprocedural): tainted argument to a callee whose
    // summary says that parameter reaches a sink inside ---------------------
    if (iv != nullptr) {
      for (const LineTok& t : ids) {
        const std::size_t open = t.pos + t.text.size();
        if (open >= c.size() || c[open] != '(') continue;
        if (is_boundary(t.text) || is_taint_sink(t.text)) continue;
        if (self != nullptr && t.text == *self) continue;
        if (!iv->known(t.text)) continue;
        if (wrapped_by_boundary(c, ids, t.pos)) continue;
        const auto args = call_args(c, open);
        for (std::size_t k = 0; k < args.size(); ++k) {
          if (!iv->param_to_sink(t.text, k)) continue;
          const auto hits = region_hits(c, ids, tainted, args[k].first,
                                        args[k].second, iv, self);
          if (hits.empty()) continue;
          out.reached_sink = true;
          if (report != nullptr) {
            (*report)({"GKA203", m.path, line,
                       "secret-derived '" + hits.front().tok->text +
                           "' passed to '" + t.text +
                           "', which forwards argument " + std::to_string(k) +
                           " to a logging/trace sink (interprocedural "
                           "summary); log a fingerprint or a size instead"});
          }
          break;
        }
      }
    }

    // --- GKA201: tainted value into a raw byte/string local --------------
    std::string type;
    const LineTok* name = nullptr;
    std::size_t init_begin = 0;
    if (parse_decl(c, ids, &type, &name, &init_begin)) {
      // `auto it = keys_.find(epoch)` initializes from public container
      // structure, not from the secret mapped values — such declarations
      // neither escape secret bytes nor taint the new name.
      auto hits = region_hits(c, ids, tainted, init_begin, c.size(), iv, self);
      hits.erase(std::remove_if(hits.begin(), hits.end(),
                                [&](const TaintHit& h) {
                                  return public_accessor_use(c, *h.tok);
                                }),
                 hits.end());
      if (!hits.empty()) {
        const bool is_auto = type.find("auto") != std::string::npos;
        const bool reveal_init =
            std::any_of(hits.begin(), hits.end(),
                        [](const TaintHit& h) { return h.via_reveal; });
        if (raw_byte_type(type) || (is_auto && reveal_init)) {
          if (report != nullptr) {
            (*report)({"GKA201", m.path, line,
                       "secret-derived value escapes into raw '" +
                           (is_auto
                                ? std::string("auto (reveal)")
                                : type.substr(type.find_first_not_of(" \t"))) +
                           "' local '" + name->text +
                           "'; keep it in Secure* storage or wrap the use in "
                           "an approved boundary"});
          }
          tainted.insert(name->text);  // follow the laundered copy
        } else if (is_auto) {
          tainted.insert(name->text);  // auto from tainted expr: propagate
        }
      }
    }
  }
  return out;
}

/// Seed names for a taint scan. Single-letter names are too generic to
/// taint by name: the seed set is file-global (no per-function scoping), so
/// a `SecureBytes b` in one test body must not taint an unrelated `b`
/// elsewhere. An escape of a single-letter secret is still caught at its
/// reveal() call.
std::set<std::string> filtered_seed(const std::vector<std::string>& names) {
  std::set<std::string> seed;
  for (const std::string& n : names)
    if (n.size() > 1) seed.insert(n);
  return seed;
}

}  // namespace

SummaryMap compute_taint_summaries(
    const std::vector<FileModel>& models, const CallGraph& cg,
    const std::map<const FileModel*, std::vector<std::string>>& seeds_of) {
  (void)models;
  SummaryMap sums;
  for (const FunctionRef& ref : cg.all()) {
    if (taint_exempt_path(ref.file->path)) continue;
    // Boundary and sink names have fixed semantics; a project-local
    // redefinition must not widen or narrow them.
    if (is_boundary(ref.fn->name) || is_taint_sink(ref.fn->name)) continue;
    TaintSummary s;
    s.param_to_sink.assign(ref.fn->params.size(), false);
    s.param_to_return.assign(ref.fn->params.size(), false);
    s.param_to_branch.assign(ref.fn->params.size(), false);
    sums[ref.fn] = std::move(s);
  }

  // Fixpoint: bits only ever turn on, so this converges; the iteration cap
  // is a safety net (summary depth beyond it would need a call chain of
  // more than kMaxIters summary-relevant hops).
  constexpr int kMaxIters = 12;
  for (int iter = 0; iter < kMaxIters; ++iter) {
    bool changed = false;
    const InterprocView iv(cg, sums);
    for (const FunctionRef& ref : cg.all()) {
      const auto it = sums.find(ref.fn);
      if (it == sums.end()) continue;
      TaintSummary& sum = it->second;
      const Function& fn = *ref.fn;

      for (std::size_t p = 0; p < fn.params.size(); ++p) {
        if (fn.params[p].empty()) continue;
        if (sum.param_to_sink[p] && sum.param_to_return[p] &&
            sum.param_to_branch[p])
          continue;
        const ScanOutcome o =
            scan_body(*ref.file, fn, {fn.params[p]}, &iv, nullptr);
        if (o.reached_sink && !sum.param_to_sink[p]) {
          sum.param_to_sink[p] = true;
          changed = true;
        }
        if (o.reached_return && !sum.param_to_return[p]) {
          sum.param_to_return[p] = true;
          changed = true;
        }
        if (o.reached_branch && !sum.param_to_branch[p]) {
          sum.param_to_branch[p] = true;
          changed = true;
        }
      }

      if (!sum.returns_tainted && carrier_return_type(fn.return_type)) {
        const auto seeds = seeds_of.find(ref.file);
        const ScanOutcome o = scan_body(
            *ref.file, fn,
            seeds == seeds_of.end() ? std::set<std::string>{}
                                    : filtered_seed(seeds->second),
            &iv, nullptr);
        if (o.reached_return) {
          sum.returns_tainted = true;
          changed = true;
        }
      }
    }
    if (!changed) break;
  }
  return sums;
}

void run_taint_rules(const FileModel& m,
                     const std::vector<std::string>& secure_idents,
                     const InterprocView* iv, const Sink& sink) {
  if (taint_exempt_path(m.path)) return;

  const std::set<std::string> seed = filtered_seed(secure_idents);
  for (const Function& fn : m.functions)
    scan_body(m, fn, seed, iv, &sink);
}

}  // namespace gka_lint
