// GKA201..GKA203: function-local secret-taint dataflow.
//
// Taint sources are identifiers declared with a zeroizing Secure* type
// (fields, locals, parameters, and functions *returning* a Secure* type —
// the model extracts them; in project mode the seed set spans all files so
// a field declared in a header taints its uses in the .cpp) plus any call
// to `reveal(...)`, the explicit SecureBytes escape hatch.
//
// Taint propagates through raw-byte locals: a line that declares a
// std::vector<uint8_t> / std::string / Bytes local (or `auto` initialized
// from reveal()) from a tainted expression both fires GKA201 and marks the
// new name tainted, so a later `std::cout << to_hex(buf)` fires GKA203 even
// though `buf` is not a secret-ish *name* — exactly the laundering the
// name-based GKA002/GKA006 heuristics cannot see.
//
// An approved boundary absorbs taint: a tainted value used as an argument
// of ct_equal / key_fingerprint / the HKDF-MAC-cipher APIs / a Secure*
// constructor / ScopedSubkey / secure_zero / mod_exp is considered properly
// handed over (the result is a fingerprint, ciphertext, a wiped copy, or a
// blinded public value), and the destination is not tainted.
#include <algorithm>
#include <set>

#include "gka_lint/rules_internal.h"

namespace gka_lint {

namespace {

/// Call names that absorb taint. Deliberately explicit rather than
/// pattern-based: growing this list is a reviewed decision.
const char* const kBoundaries[] = {
    "ct_equal",       "key_fingerprint",    "secure_zero",
    "hkdf_sha256",    "hmac_sha256",        "aes128_cbc_encrypt",
    "aes128_cbc_decrypt", "ChaCha20",       "Sha256",
    "SecureBytes",    "SecureBigInt",       "ScopedSubkey",
    "Drbg",           "mod_exp",            "wipe",
};

/// Logging + obs sinks (the GKA002 and GKA006 lists combined): a tainted
/// value reaching one of these is an exfiltration regardless of its name.
const char* const kTaintSinks[] = {
    "to_hex",     "printf",     "fprintf",    "report",     "cout",
    "cerr",       "clog",       "attr",       "event_attr", "instant",
    "phase",      "mark_phase", "mark_point", "begin_event",
    "begin_span_at", "observe", "counter",    "histogram",
    "set_track_name"};

bool is_boundary(const std::string& name) {
  for (const char* b : kBoundaries)
    if (name == b) return true;
  return false;
}

bool is_taint_sink(const std::string& name) {
  for (const char* s : kTaintSinks)
    if (name == s) return true;
  return false;
}

/// Raw byte/string storage per the rule text. `Bytes` is this repo's alias
/// for std::vector<uint8_t>.
bool raw_byte_type(const std::string& type) {
  if (type.find("Secure") != std::string::npos) return false;
  return type.find("vector") != std::string::npos ||
         type.find("string") != std::string::npos ||
         type.find("Bytes") != std::string::npos;
}

/// True when the identifier occurrence at `pos` is wrapped by an approved
/// boundary call somewhere up its enclosing-call chain on this line.
bool wrapped_by_boundary(const std::string& code,
                         const std::vector<LineTok>& ids, std::size_t pos) {
  for (const std::string& call : enclosing_calls(code, ids, pos))
    if (is_boundary(call)) return true;
  return false;
}

struct TaintHit {
  const LineTok* tok;  // the tainted identifier (or `reveal`)
  bool via_reveal;
};

/// Tainted, non-boundary-wrapped occurrences within [begin,end) of the line.
std::vector<TaintHit> taint_hits(const std::string& code,
                                 const std::vector<LineTok>& ids,
                                 const std::set<std::string>& tainted,
                                 std::size_t begin, std::size_t end) {
  std::vector<TaintHit> hits;
  for (const LineTok& t : ids) {
    if (t.pos < begin || t.pos >= end) continue;
    const bool reveal = t.text == "reveal";
    if (!reveal && tainted.count(t.text) == 0) continue;
    if (wrapped_by_boundary(code, ids, t.pos)) continue;
    hits.push_back({&t, reveal});
  }
  return hits;
}

/// Parses a local declaration with an initializer on a stripped code line:
/// `[const] Type name = expr;` or `[const] Type name(expr);` /
/// `Type name{expr};`. Returns true and fills the out-params when the line
/// looks like one; `init_begin` is where the initializer text starts.
bool parse_decl(const std::string& code, const std::vector<LineTok>& ids,
                std::string* type, const LineTok** name,
                std::size_t* init_begin) {
  if (ids.empty()) return false;
  const std::size_t eq = code.find('=');
  if (eq != std::string::npos &&
      (eq + 1 >= code.size() || code[eq + 1] != '=') &&
      (eq == 0 || (code[eq - 1] != '=' && code[eq - 1] != '!' &&
                   code[eq - 1] != '<' && code[eq - 1] != '>' &&
                   code[eq - 1] != '+' && code[eq - 1] != '-' &&
                   code[eq - 1] != '|' && code[eq - 1] != '&'))) {
    // `Type name = init` needs >= 2 identifiers left of '='; a plain
    // assignment `name = init` has one and is not a declaration.
    const LineTok* last = nullptr;
    std::size_t count = 0;
    for (const LineTok& t : ids) {
      if (t.pos + t.text.size() <= eq) {
        last = &t;
        ++count;
      }
    }
    if (last == nullptr || count < 2) return false;
    *name = last;
    *type = code.substr(0, last->pos);
    *init_begin = eq + 1;
    return true;
  }
  // Constructor-style: `Type name(init);` — the name is the identifier
  // right before the first '(' and must have type text before it.
  const std::size_t open = code.find('(');
  if (open == std::string::npos) return false;
  const LineTok* before = nullptr;
  for (const LineTok& t : ids)
    if (t.pos + t.text.size() == open) before = &t;
  if (before == nullptr || before->pos == 0) return false;
  const std::string head = code.substr(0, before->pos);
  // Type text must contain another identifier (calls like `foo(x)` have
  // only whitespace or punctuation before the name).
  bool has_type_ident = false;
  for (const LineTok& t : ids)
    if (t.pos + t.text.size() <= before->pos && &t != before &&
        t.text != "const" && t.text != "static")
      has_type_ident = true;
  (void)head;
  if (!has_type_ident) return false;
  *name = before;
  *type = code.substr(0, before->pos);
  *init_begin = open + 1;
  return true;
}

}  // namespace

void run_taint_rules(const FileModel& m,
                     const std::vector<std::string>& secure_idents,
                     const Sink& sink) {
  // Sanctioned files: the Secure* wrappers implement the boundary (reveal(),
  // wiping internals), and the symmetric primitives below them take raw key
  // bytes by design — their bodies ARE the approved boundary interior.
  if (path_contains(m.path, "util/secure_bytes") ||
      path_contains(m.path, "bignum/secure_bigint") ||
      path_contains(m.path, "crypto/aes") ||
      path_contains(m.path, "crypto/hmac") ||
      path_contains(m.path, "crypto/hkdf") ||
      path_contains(m.path, "crypto/chacha20") ||
      path_contains(m.path, "crypto/sha1") ||
      path_contains(m.path, "crypto/sha256") ||
      path_contains(m.path, "crypto/drbg"))
    return;

  // Single-letter names are too generic to taint by name: the seed set is
  // file-global (no per-function scoping), so a `SecureBytes b` in one test
  // body must not taint an unrelated `b` elsewhere. An escape of a
  // single-letter secret is still caught at its reveal() call.
  std::set<std::string> seed;
  for (const std::string& n : secure_idents)
    if (n.size() > 1) seed.insert(n);

  for (const Function& fn : m.functions) {
    std::set<std::string> tainted = seed;
    const bool raw_return = raw_byte_type(fn.return_type);

    for (int line = fn.body_begin; line <= fn.body_end; ++line) {
      const std::size_t li = static_cast<std::size_t>(line - 1);
      if (li >= m.code.size()) break;
      const std::string& c = m.code[li];
      if (c.empty()) continue;
      const std::vector<LineTok> ids = line_identifiers(c);

      // --- GKA202: tainted return from a raw-typed function --------------
      for (const LineTok& t : ids) {
        if (t.text != "return") continue;
        const auto hits = taint_hits(c, ids, tainted,
                                     t.pos + t.text.size(), c.size());
        if (!hits.empty() && raw_return) {
          const LineTok* h = hits.front().tok;
          sink({"GKA202", m.path, line,
                "function '" + fn.name + "' returns secret-derived '" +
                    h->text + "' as raw '" + fn.return_type +
                    "'; return a Secure* wrapper or pass through an "
                    "approved boundary"});
        }
        break;
      }
      if (!ids.empty() && ids.front().text == "return") continue;

      // --- GKA203: tainted value reaching a sink --------------------------
      // Scanned before the declaration handling: member-call lines like
      // `tr->attr(...)` parse as constructor-style declarations, and the
      // sink scan must not be gated behind that misparse.
      // Stream sinks (cout/cerr/clog) take everything to their right; call
      // sinks take their parenthesized arguments.
      for (const LineTok& t : ids) {
        if (!is_taint_sink(t.text)) continue;
        const std::size_t open = t.pos + t.text.size();
        const bool is_call = open < c.size() && c[open] == '(';
        const bool is_stream =
            t.text == "cout" || t.text == "cerr" || t.text == "clog";
        if (!is_call && !is_stream) continue;
        std::vector<TaintHit> hits;
        if (is_call) {
          for (const auto& [ab, ae] : call_args(c, open)) {
            const auto h = taint_hits(c, ids, tainted, ab, ae);
            hits.insert(hits.end(), h.begin(), h.end());
          }
        } else {
          hits = taint_hits(c, ids, tainted, open, c.size());
        }
        for (const TaintHit& h : hits) {
          // Name-based rules already cover secret-ish names; GKA203 exists
          // for the laundered ones they cannot see.
          if (!h.via_reveal && is_secretish(h.tok->text)) continue;
          sink({"GKA203", m.path, line,
                "secret-derived '" + h.tok->text + "' reaches sink '" +
                    t.text +
                    "'; log a fingerprint or a size instead"});
          break;
        }
      }

      // --- GKA201: tainted value into a raw byte/string local ------------
      std::string type;
      const LineTok* name = nullptr;
      std::size_t init_begin = 0;
      if (parse_decl(c, ids, &type, &name, &init_begin)) {
        const auto hits = taint_hits(c, ids, tainted, init_begin, c.size());
        if (!hits.empty()) {
          const bool is_auto = type.find("auto") != std::string::npos;
          const bool reveal_init =
              std::any_of(hits.begin(), hits.end(),
                          [](const TaintHit& h) { return h.via_reveal; });
          if (raw_byte_type(type) || (is_auto && reveal_init)) {
            sink({"GKA201", m.path, line,
                  "secret-derived value escapes into raw '" +
                      (is_auto ? std::string("auto (reveal)")
                               : type.substr(type.find_first_not_of(" \t"))) +
                      "' local '" + name->text +
                      "'; keep it in Secure* storage or wrap the use in an "
                      "approved boundary"});
            tainted.insert(name->text);  // follow the laundered copy
          } else if (is_auto) {
            tainted.insert(name->text);  // auto from tainted expr: propagate
          }
        }
      }
    }
  }
}

}  // namespace gka_lint
