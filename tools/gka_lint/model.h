// Per-file analysis model for gka_lint: the lexed token stream digested into
// the structures the rule families consume.
//
//   - `code`:     a per-line view with comments blanked and string/char
//                 literal contents emptied (only the quotes remain), so line
//                 rules never match inside literals — including raw strings
//                 and multi-line block comments, which the v1 line stripper
//                 got wrong.
//   - `comments`: per-line comment text, for suppression markers and
//                 TODO/FIXME scanning.
//   - includes:   every `#include "..."` with its line, for the GKA1xx
//                 layering rules.
//   - functions:  heuristic function-definition extraction (name, return
//                 type, body line range), for the GKA2xx taint rules.
//   - secure_idents: identifiers declared with a zeroizing Secure* type —
//                 fields, locals, parameters, and functions *returning* a
//                 Secure* type. These seed the taint analysis.
//   - field_guards / fn_annotations / mutex_members / records: the SGK_*
//                 lock-discipline annotations (src/util/thread_annotations.h)
//                 plus class/struct records with their mutable-member and
//                 classification status, for the GKA5xx lock rules.
#pragma once

#include <string>
#include <vector>

#include "gka_lint/lexer.h"

namespace gka_lint {

struct Include {
  std::string target;  // the path between the quotes
  int line = 0;        // 1-based
};

/// One `gka-lint: allow(...)` marker.
struct Allow {
  int line = 0;                   // 1-based line the marker sits on
  std::vector<std::string> ids;   // rule ids listed in the parentheses
  bool has_reason = false;        // non-empty text followed the ')'
};

struct Function {
  std::string name;
  std::string return_type;  // token spelling, space-joined; empty if unknown
  int signature_line = 0;   // line of the name
  int body_begin = 0;       // line of the opening '{'
  int body_end = 0;         // line of the matching '}'
  std::vector<std::string> params;  // declared parameter names, in order
                                    // (empty string for unnamed parameters)
};

/// Innermost syntactic scope of a code token, classified by a brace-context
/// walk (see classify_scopes in model.cpp). Initializer braces (`= {...}`,
/// brace-init arguments) do not open a new scope kind — their tokens keep
/// the enclosing classification.
enum class TokScope {
  kNamespace,  // namespace scope (incl. the global namespace)
  kType,       // inside a class/struct/union/enum body
  kFunction,   // inside a function body (incl. nested blocks and lambdas)
};

/// A pure-code token (no comments, strings, or preprocessor lines) with its
/// scope classification. `ns_only` is true when every enclosing brace is a
/// namespace — i.e. the token sits at namespace scope, which is what the
/// GKA401 mutable-global rule keys on.
struct ScopedTok {
  TokKind kind;
  std::string text;
  int line = 0;
  TokScope scope = TokScope::kNamespace;
  bool ns_only = true;
};

/// One `field SGK_GUARDED_BY(mutex)` annotation. `owner` is the innermost
/// enclosing class/struct name, or empty for a namespace-scope guard.
struct FieldGuard {
  std::string owner;
  std::string field;
  std::string mutex;
  int line = 0;  // 1-based
};

/// One function-level capability annotation (`SGK_REQUIRES` & friends),
/// attached to a declaration or a definition. `kind` is one of "requires",
/// "acquire", "release", "excludes".
struct FnAnnotation {
  std::string fn;
  std::string kind;
  std::vector<std::string> mutexes;
  int line = 0;  // 1-based
};

/// A mutex-typed data member (`std::mutex` / `std::shared_mutex` / ...).
struct MutexMember {
  std::string owner;  // enclosing class/struct name, empty at namespace scope
  std::string name;
  int line = 0;  // 1-based
};

/// A class/struct/union definition, with the mutable-member and
/// lock-classification summary the GKA504 rule keys on. Nested records are
/// extracted too but flagged, since classification of the enclosing record
/// covers them.
struct Record {
  std::string name;
  int line = 0;        // line of the record name
  int body_begin = 0;  // line of the opening '{'
  int body_end = 0;    // line of the matching '}'
  bool nested = false;
  bool has_mutable_member = false;
  std::string first_mutable;  // first unguarded mutable member, for messages
  int first_mutable_line = 0;
  bool has_guard = false;     // any SGK_GUARDED_BY member
  bool has_confined_marker = false;  // SGK_CONFINED_TO_RUN classification
};

struct FileModel {
  std::string path;
  bool skip_file = false;
  std::vector<std::string> raw;       // raw source lines
  std::vector<std::string> code;      // stripped code view, same line count
  std::vector<std::string> comments;  // per-line comment text
  std::vector<Include> includes;
  std::vector<Allow> allows;
  std::vector<Function> functions;
  std::vector<std::string> secure_idents;
  std::vector<FieldGuard> field_guards;
  std::vector<FnAnnotation> fn_annotations;
  std::vector<MutexMember> mutex_members;
  std::vector<Record> records;
  std::vector<Tok> tokens;
  std::vector<ScopedTok> scoped_tokens;  // pure code tokens, scope-classified
};

FileModel build_model(const std::string& path, const std::string& content);

}  // namespace gka_lint
