#include "gka_lint/callgraph.h"

#include "gka_lint/rules_internal.h"

namespace gka_lint {

namespace {

const char* const kNotCalls[] = {
    "if",     "for",    "while",    "switch",        "catch",
    "return", "sizeof", "alignof",  "decltype",      "static_assert",
    "new",    "delete", "throw",    "defined",       "assert",
};

bool keywordish(const std::string& s) {
  for (const char* k : kNotCalls)
    if (s == k) return true;
  return false;
}

}  // namespace

void CallGraph::build(const std::vector<FileModel>& models) {
  for (const FileModel& m : models) {
    if (m.skip_file) continue;
    for (const Function& fn : m.functions) {
      order_.push_back({&m, &fn});
      defs_[fn.name].push_back({&m, &fn});

      // Callees: every `ident(` on the body's stripped code lines.
      std::set<std::string>& out = callees_[&fn];
      for (int line = fn.body_begin; line <= fn.body_end; ++line) {
        const std::size_t li = static_cast<std::size_t>(line - 1);
        if (li >= m.code.size()) break;
        const std::string& c = m.code[li];
        if (c.empty()) continue;
        for (const LineTok& t : line_identifiers(c)) {
          const std::size_t after = t.pos + t.text.size();
          if (after < c.size() && c[after] == '(' && !keywordish(t.text))
            out.insert(t.text);
        }
      }
    }
  }
}

const std::vector<FunctionRef>* CallGraph::definitions(
    const std::string& name) const {
  const auto it = defs_.find(name);
  return it == defs_.end() ? nullptr : &it->second;
}

const std::set<std::string>& CallGraph::callees(const Function* fn) const {
  const auto it = callees_.find(fn);
  return it == callees_.end() ? no_callees_ : it->second;
}

bool InterprocView::known(const std::string& callee) const {
  return cg_->definitions(callee) != nullptr;
}

bool InterprocView::param_to_sink(const std::string& callee,
                                  std::size_t arg) const {
  const auto* defs = cg_->definitions(callee);
  if (defs == nullptr) return false;
  for (const FunctionRef& ref : *defs) {
    const auto it = summaries_->find(ref.fn);
    if (it == summaries_->end()) continue;
    if (arg < it->second.param_to_sink.size() && it->second.param_to_sink[arg])
      return true;
  }
  return false;
}

bool InterprocView::param_to_return(const std::string& callee,
                                    std::size_t arg) const {
  const auto* defs = cg_->definitions(callee);
  if (defs == nullptr) return false;
  for (const FunctionRef& ref : *defs) {
    const auto it = summaries_->find(ref.fn);
    if (it == summaries_->end()) continue;
    if (arg < it->second.param_to_return.size() &&
        it->second.param_to_return[arg])
      return true;
  }
  return false;
}

bool InterprocView::param_to_branch(const std::string& callee,
                                    std::size_t arg) const {
  const auto* defs = cg_->definitions(callee);
  if (defs == nullptr) return false;
  for (const FunctionRef& ref : *defs) {
    const auto it = summaries_->find(ref.fn);
    if (it == summaries_->end()) continue;
    if (arg < it->second.param_to_branch.size() &&
        it->second.param_to_branch[arg])
      return true;
  }
  return false;
}

bool InterprocView::returns_tainted(const std::string& callee) const {
  const auto* defs = cg_->definitions(callee);
  if (defs == nullptr) return false;
  for (const FunctionRef& ref : *defs) {
    const auto it = summaries_->find(ref.fn);
    if (it != summaries_->end() && it->second.returns_tainted) return true;
  }
  return false;
}

}  // namespace gka_lint
