// Event-coalescing rekey pipeline: the churn-storm survival layer.
//
// Without it, every membership event — join, leave, crash, partition, merge,
// refresh — triggers its own view install and therefore its own full key
// agreement. Under a storm of events the group does O(events) agreements,
// falls behind, and the per-event cost is exactly the scalability killer
// ROADMAP item 2 describes (the simultaneous-join/leave problem the CKCS
// line of work targets). All five protocols already expose aggregate
// merge/partition forms (paper Table 1): ONE view whose delta adds and
// removes many members costs roughly one agreement, not many.
//
// The RekeyBatcher exploits that. Membership events queue into a per-group
// batch; a batch flushes as ONE view-update request after an adaptive
// window, so the stamped view's delta aggregates every event of the window
// and the protocols rekey once for the whole batch. Around the queue sits
// the robustness envelope:
//
//  * Adaptive window — grows geometrically while batches stay busy
//    (sustained arrival), shrinks when traffic is sparse, and is hard-capped
//    so that batching delay plus an expected agreement still fits the
//    configured p99 event-to-key latency budget.
//  * Bounded queue with explicit backpressure — each admitted event gets a
//    typed OverloadVerdict: admitted (opened a window), coalesced (joined
//    the open window), or shed-oldest (queue full: the oldest pending
//    record is dropped to make room — membership truth lives in the GCS
//    registry, so shedding only loses per-event latency attribution, never
//    the membership change itself). Verdicts are counted in obs metrics.
//  * Degraded mode — a group that misses its latency budget for K
//    consecutive flushed windows falls back to widest-window "one rekey per
//    epoch" operation (maximum amortization, bounded rekey rate) and emits
//    a typed health transition; R consecutive within-budget windows restore
//    normal adaptation.
//
// Determinism: the batcher runs entirely on the owning run's Simulator and
// contains no randomness, so batched runs replay bit-for-bit and the
// multi-group server's reports stay byte-identical at any thread count.
// Disabled (the default), SpreadNetwork bypasses it entirely and behaves
// exactly as before — see docs/batched_rekey.md.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "sim/simulator.h"
#include "util/thread_annotations.h"

namespace sgk {

/// Membership-event classes the batcher coalesces (the GCS-level causes; the
/// protocols later see whatever aggregate GroupEvent the flushed view's
/// delta classifies as).
enum class BatchEventKind : std::uint8_t {
  kJoin,
  kLeave,      // graceful leave or crash-disconnect
  kPartition,  // topology split rebuilt the component rings
  kMerge,      // components healed back together
  kRefresh,    // explicit rekey request (forces a view even if membership
               // is unchanged)
};

const char* to_string(BatchEventKind kind);

/// Typed admission verdict for one membership event.
enum class OverloadVerdict : std::uint8_t {
  kAdmitted,   // opened a fresh batching window
  kCoalesced,  // joined the already-open window (coalesce-in-place)
  kShedOldest, // queue at capacity: oldest pending record shed to make room
};

const char* to_string(OverloadVerdict verdict);

/// Group health as seen by the rekey pipeline.
enum class GroupHealth : std::uint8_t {
  kNormal,    // adaptive windows, latency budget being met
  kDegraded,  // budget missed K consecutive windows: widest-window fallback
};

const char* to_string(GroupHealth health);

/// Batching tunables. The all-defaults config is DISABLED: a SpreadNetwork
/// built with it routes membership events straight to the membership
/// protocol, bit-identical to the pre-batching behavior.
struct BatchConfig {
  // Copied into the owning network at construction; per-run value type.
  SGK_CONFINED_TO_RUN;
  /// Master switch. Off: SpreadNetwork never constructs a batcher.
  bool enabled = false;
  /// Window bounds (virtual ms). A window of 0 flushes on the next simulator
  /// turn — per-event rekeying with batcher accounting ("unbatched
  /// baseline" mode of bench/churn_storm).
  double min_window_ms = 2.0;
  double max_window_ms = 256.0;
  /// p99 event-to-new-key budget (virtual ms). Normal-mode windows are
  /// hard-capped at budget_window_fraction * latency_budget_ms so batching
  /// delay leaves room for the agreement itself; flushed windows whose
  /// slowest event exceeds the budget count as misses.
  double latency_budget_ms = 800.0;
  double budget_window_fraction = 0.5;
  /// Pending event records per group; beyond this the oldest is shed.
  std::size_t queue_capacity = 64;
  /// Batch size at which the window doubles (sustained arrival).
  std::size_t grow_threshold = 3;
  /// Consecutive budget misses that trip degraded mode, and consecutive
  /// within-budget windows that restore normal operation.
  int degrade_after_misses = 3;
  int recover_after_hits = 4;
};

/// Deterministic per-group pipeline statistics (plain counters; snapshot
/// freely).
struct BatchStats {
  // Owned by the batcher, read by the finalizing thread after the run.
  SGK_CONFINED_TO_RUN;
  std::uint64_t events = 0;       // membership events noted
  std::uint64_t flushes = 0;      // windows flushed (aggregate view requests)
  std::uint64_t coalesced = 0;    // events that joined an open window
  std::uint64_t shed = 0;         // oldest-record sheds under overload
  std::uint64_t budget_misses = 0;
  std::uint64_t degraded_entries = 0;
  std::uint64_t degraded_exits = 0;
  GroupHealth health = GroupHealth::kNormal;
  std::uint64_t max_batch = 0;    // largest flushed batch
  /// Per-event latency samples (event arrival -> first key of a later
  /// epoch), for events whose record survived to its window's key install.
  std::vector<double> event_to_key_ms;
};

class RekeyBatcher {
  // Lives inside one SpreadNetwork and is driven only from that run's
  // simulator event loop.
  SGK_CONFINED_TO_RUN;

 public:
  /// `flush` is invoked once per closed window with (group, force): it must
  /// issue the aggregate view-update request. `force` is true when any event
  /// of the window was a kRefresh (membership-unchanged views must still
  /// install).
  using FlushFn = std::function<void(const std::string& group, bool force)>;
  /// Optional health listener: (group, new_health, virtual time).
  using HealthFn = std::function<void(const std::string& group, GroupHealth,
                                      SimTime)>;

  RekeyBatcher(Simulator& sim, BatchConfig config, FlushFn flush);

  RekeyBatcher(const RekeyBatcher&) = delete;
  RekeyBatcher& operator=(const RekeyBatcher&) = delete;

  /// Records one membership event for `group` and returns its admission
  /// verdict. Opens a window when none is pending; otherwise coalesces (or
  /// sheds the oldest record when the queue is full).
  OverloadVerdict note_event(const std::string& group, BatchEventKind kind);

  /// Latency feedback: the group established a key (a NEW keyed epoch) at
  /// virtual time `t`. Completes the oldest outstanding flush's latency
  /// samples, drives budget/degraded accounting. Call once per fresh epoch
  /// (the first member to install is enough).
  void note_key_installed(const std::string& group, SimTime t);

  /// Current adaptive window for `group` (ms); min_window_ms before any
  /// traffic.
  double window_ms(const std::string& group) const;

  GroupHealth health(const std::string& group) const;

  /// Snapshot of the group's pipeline counters (zeroes for an unseen group).
  BatchStats stats(const std::string& group) const;

  /// Pending (not yet flushed) event records for `group`.
  std::size_t queue_depth(const std::string& group) const;

  void set_health_listener(HealthFn fn) { health_fn_ = std::move(fn); }

  const BatchConfig& config() const { return config_; }

 private:
  struct PendingEvent {
    SimTime at = 0.0;
    BatchEventKind kind = BatchEventKind::kJoin;
  };

  /// One flushed window awaiting its key install (FIFO per group).
  struct OutstandingFlush {
    SimTime flushed_at = 0.0;
    std::vector<SimTime> arrivals;  // surviving records' arrival times
  };

  struct GroupPipe {
    std::deque<PendingEvent> pending;
    bool window_open = false;
    bool force = false;            // a kRefresh is queued
    double window_ms = 0.0;        // current adaptive window (set on first use)
    std::uint64_t window_gen = 0;  // invalidates superseded flush timers
    std::deque<OutstandingFlush> outstanding;
    int consecutive_misses = 0;
    int consecutive_hits = 0;
    BatchStats stats;
  };

  /// Outstanding flushes kept per group before the oldest is dropped (a
  /// flush whose view was deduplicated away never sees a key install).
  static constexpr std::size_t kMaxOutstanding = 8;

  GroupPipe& pipe(const std::string& group);
  void open_window(const std::string& group, GroupPipe& p);
  void flush(const std::string& group, GroupPipe& p);
  void adapt_window(GroupPipe& p, std::size_t batch_size) const;
  double window_cap() const;
  void set_health(const std::string& group, GroupPipe& p, GroupHealth health);

  Simulator& sim_;
  BatchConfig config_;
  FlushFn flush_fn_;
  HealthFn health_fn_;
  std::map<std::string, GroupPipe> pipes_;
};

}  // namespace sgk
