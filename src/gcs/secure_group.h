// Secure Spread client: a group member with an attached key agreement
// protocol and a secured data plane.
//
// A SecureGroupMember owns one protocol instance for one group. On every
// installed view it starts the protocol for the new epoch; protocol messages
// are RSA-signed by the sender and verified by every receiver (the paper's
// source-authentication requirement); all cryptographic work is charged to
// the member's machine CPU in virtual time, and outbound messages leave only
// when that work completes. Once a key is established, application data sent
// through the member is AES-CBC encrypted and HMAC-authenticated under keys
// derived from the group secret.
#pragma once

#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "core/crypto_context.h"
#include "core/key_agreement.h"
#include "gcs/spread.h"
#include "core/cost_model.h"
#include "util/secure_bytes.h"
#include "util/thread_annotations.h"

namespace sgk {

/// Public-key directory shared by all members (the paper assumes long-term
/// keys are certified out of band).
class Pki {
  // The one structure the multi-group server genuinely shares across worker
  // threads: every group's members enroll into and verify against the same
  // directory, concurrently. Hence a real guard rather than the historical
  // SGK_CONFINED_TO_RUN marker. Process ids are globally unique across
  // groups (SpreadParams::first_process_id), so entries never collide.

 public:
  void enroll(ProcessId p, VerifyKey key) SGK_EXCLUDES(pki_mu_) {
    std::lock_guard<std::mutex> lock(pki_mu_);
    // Owned copies: verification must keep working for messages from members
    // that have since been destroyed. (DsaPublicKey holds a reference and is
    // not assignable, hence erase + emplace.)
    keys_.erase(p);
    keys_.emplace(p, std::move(key));
  }
  const VerifyKey* find(ProcessId p) const SGK_EXCLUDES(pki_mu_) {
    std::lock_guard<std::mutex> lock(pki_mu_);
    // Returning a pointer out of the lock is sound: std::map nodes are
    // pointer-stable, a process id is enrolled at most once per run, and
    // enroll() never mutates an existing node (erase of an absent key is a
    // no-op by the uniqueness invariant above).
    auto it = keys_.find(p);
    return it == keys_.end() ? nullptr : &it->second;
  }

 private:
  mutable std::mutex pki_mu_;
  std::map<ProcessId, VerifyKey> keys_ SGK_GUARDED_BY(pki_mu_);
};

struct MemberConfig {
  // Copied into each member at construction; per-run value type.
  SGK_CONFINED_TO_RUN;
  std::string group = "secure-group";
  ProtocolKind protocol = ProtocolKind::kTgdh;
  DhBits dh_bits = DhBits::k512;
  CostModel cost = CostModel::paper2002();
  const RsaPrivateKey* rsa = nullptr;  // defaults to a fixed test key
  std::uint64_t seed = 1;
  /// Blinded-key re-computation in TGDH/STR (see ProtocolHost).
  bool key_confirmation = true;
  /// Signature scheme for protocol messages (RSA e=3 in the paper; DSA for
  /// the verification-cost comparison).
  SigScheme signature = SigScheme::kRsa;
  /// Verify signatures on incoming protocol frames. Disabled only by fuzzing
  /// harnesses that study what strict structural validation alone catches;
  /// loopback integrity and all semantic checks stay on.
  bool verify_signatures = true;
  /// Base virtual-time delay between a recoverable frame rejection and the
  /// rekey request it triggers when the agreement is still stuck (quarantine
  /// policy; rate-limited to one recovery per epoch). The FIRST recovery of
  /// a convergence episode waits exactly this long; consecutive failed
  /// recoveries back off exponentially with seeded jitter (see
  /// recovery_backoff_ms) up to recovery_backoff_cap_ms.
  double recovery_delay_ms = 20.0;
  /// When > 0, an agreement still in flight this long (virtual ms) after its
  /// view installed triggers a rekey request — the backstop for frames an
  /// adversary erased outright, which produce no rejection at the members
  /// that needed them. 0 disables the watchdog. Like the reject path, the
  /// watchdog's retry chain backs off exponentially across consecutive
  /// unkeyed fires (streak resets on every key install).
  double recovery_watchdog_ms = 0.0;
  /// Upper bound for the deterministic part of both backoff schedules
  /// (virtual ms). Jitter of up to 25% rides on top, so the true ceiling is
  /// 1.25x this. <= 0 disables the cap (pure exponential growth).
  double recovery_backoff_cap_ms = 2000.0;
};

/// Deterministic backoff schedule shared by the reject-path recovery and the
/// watchdog retry chain: min(base * 2^attempt, cap), plus up to 25% seeded
/// jitter for attempt >= 1 (attempt 0 keeps the exact legacy delay). The
/// jitter draw is fault_unit(seed, self, epoch, attempt) — stateless and
/// order-independent, so two members with the same config desynchronize
/// their retry storms identically on every replay of the same seed.
double recovery_backoff_ms(double base_ms, double cap_ms, int attempt,
                           std::uint64_t seed, ProcessId self,
                           std::uint64_t epoch);

class SecureGroupMember final : public GroupClient, private ProtocolHost {
  // A member belongs to exactly one SpreadNetwork/Simulator pair and is
  // driven only from that run's event loop.
  SGK_CONFINED_TO_RUN;

 public:
  SecureGroupMember(SpreadNetwork& net, ProcessId self, std::shared_ptr<Pki> pki,
                    MemberConfig config);
  ~SecureGroupMember() override;

  SecureGroupMember(const SecureGroupMember&) = delete;
  SecureGroupMember& operator=(const SecureGroupMember&) = delete;

  /// Joins the configured group (membership + key agreement are driven by
  /// the GCS from here on).
  void join();
  /// Leaves the group.
  void leave();
  /// Requests an explicit re-key: a fresh group key with unchanged
  /// membership (a "session rekeying" policy event). Every member ends up
  /// with a new key at a new epoch.
  void request_rekey();

  // ---- key state ------------------------------------------------------------
  bool has_key() const { return !key_.empty(); }
  /// The full derived secret block (zeroizing storage). Compare across
  /// members with ct_equal; never with operator== or by hex dump.
  const SecureBytes& key() const { return key_; }
  /// Short hex fingerprint of the current key (SHA-256 of a domain-separated
  /// hash of the key block). Safe to log or display; empty when no key.
  std::string key_fingerprint() const;
  std::uint64_t key_epoch() const { return key_epoch_; }
  /// Virtual time at which the current key was established.
  SimTime key_time() const { return key_time_; }
  /// Virtual time at which the latest view was installed.
  SimTime view_time() const { return view_time_; }
  /// Called at (virtual) key establishment: (time, epoch).
  void set_key_listener(std::function<void(SimTime, std::uint64_t)> fn) {
    key_listener_ = std::move(fn);
  }

  // ---- data plane -----------------------------------------------------------
  /// Encrypts and multicasts application data to the group.
  void send_data(const Bytes& plaintext);
  /// Called for every decrypted application message: (sender, plaintext).
  void set_data_listener(std::function<void(ProcessId, const Bytes&)> fn) {
    data_listener_ = std::move(fn);
  }
  /// Seal/open primitives (encrypt-then-MAC under the group key). Exposed
  /// for tests; send_data/delivery use them internally. `aad` is bound into
  /// the MAC without being transmitted: both sides must present the same
  /// associated data or open fails. The data plane binds epoch || sequence
  /// number so neither can be tampered with independently of the payload.
  Bytes seal(const Bytes& plaintext, const Bytes& aad = {});
  std::optional<Bytes> open(const Bytes& sealed, const Bytes& aad = {});

  // ---- introspection --------------------------------------------------------
  const OpCounters& counters() const { return crypto_.counters(); }
  CryptoContext& crypto_context() { return crypto_; }
  KeyAgreement& protocol() { return *protocol_; }
  /// Agreements aborted by a cascaded view change before completing (the
  /// Secure Spread restart rule firing; see KeyAgreement::restarts).
  std::uint64_t agreement_restarts() const { return protocol_->restarts(); }
  /// True while a key agreement is running for the current view.
  bool agreement_in_flight() const { return protocol_->in_flight(); }
  /// Stale protocol frames discarded (epoch older than the installed view).
  std::uint64_t stale_dropped() const { return stale_dropped_; }
  /// Frames rejected by the hardened receive path, by any typed reason
  /// (also broken out per reason in the `frames_rejected/...` counters).
  std::uint64_t frames_rejected() const { return frames_rejected_; }
  /// Rekey requests issued by the quarantine/recovery policy.
  std::uint64_t recoveries() const { return recoveries_; }
  const View* view() const { return view_ ? &*view_ : nullptr; }
  ProcessId id() const { return self_; }
  const std::string& group_name() const { return config_.group; }

  // GroupClient:
  void on_view(const std::string& group, const View& view,
               const ViewDelta& delta) override;
  void on_message(const std::string& group, ProcessId sender,
                  const Bytes& payload) override;

 private:
  enum class WireKind : std::uint8_t { kProtocol = 1, kData = 2 };
  enum class SendKind : std::uint8_t { kMulticast, kOrdered, kUnicast };

  struct Outbound {
    SendKind kind;
    ProcessId dest;
    Bytes wire;
  };

  /// Decoded outer frame (common header of both wire kinds).
  struct OuterFrame {
    std::uint8_t kind = 0;
    std::uint64_t epoch = 0;
    ProcessId claimed_sender = kNoProcess;
    Bytes body;
    Bytes sig;  // kProtocol only
  };

  /// Decoded data-plane body (sequence number + sealed payload).
  struct DataBody {
    std::uint64_t seq = 0;
    Bytes sealed;
  };

  /// Decoded sealed envelope (IV, ciphertext, MAC).
  struct SealedParts {
    Bytes iv;
    Bytes ct;
    // gka-lint: allow(GKA004) -- untrusted wire MAC value, not key material
    Bytes mac;
  };

  // The only entrypoints that touch untrusted wire bytes (enforced by lint
  // rule GKA009): structural decode that never throws past them — a hostile
  // payload comes back as a typed rejection.
  static Decoded<OuterFrame> validate_and_decode_frame(const Bytes& payload);
  static Decoded<DataBody> validate_and_decode_data(const Bytes& body);
  static Decoded<SealedParts> validate_and_decode_sealed(const Bytes& sealed);

  /// Epochs further ahead of the installed view than this are hostile (an
  /// honest sender can only be a short cascade ahead), and buffering them
  /// would let an attacker park junk in future_.
  static constexpr std::uint64_t kMaxEpochWindow = 1024;

  /// Counts a typed rejection (total, per-reason counter, wire-size
  /// histogram) and, when `recoverable`, invokes the quarantine policy.
  void reject_frame(RejectReason reason, std::size_t wire_size, bool recoverable);
  /// Quarantine policy: after recovery_delay_ms of virtual time, if this
  /// epoch's agreement is still stuck, request a rekey (once per epoch).
  void schedule_recovery();

  // ProtocolHost:
  ProcessId self() const override { return self_; }
  CryptoContext& crypto() override { return crypto_; }
  void send_multicast(Bytes body) override;
  void send_ordered(ProcessId dest, Bytes body) override;
  void send_unicast(ProcessId dest, Bytes body) override;
  void deliver_key(const BigInt& group_secret) override;
  void note_frame_rejected(RejectReason reason) override;
  bool key_confirmation() const override { return config_.key_confirmation; }
  void mark_phase(const char* phase_name) override;
  void mark_point(const char* point_name) override;

  Bytes frame_and_sign(WireKind kind, const Bytes& body);
  void queue(SendKind kind, ProcessId dest, Bytes body);
  /// Flushes accumulated compute cost to the CPU model and releases buffered
  /// sends / key notifications at completion time.
  void end_handler();

  SpreadNetwork& net_;
  ProcessId self_;
  std::shared_ptr<Pki> pki_;
  MemberConfig config_;
  CryptoContext crypto_;
  std::unique_ptr<KeyAgreement> protocol_;

  std::optional<View> view_;
  std::uint64_t epoch_ = 0;
  std::uint64_t stale_dropped_ = 0;
  std::uint64_t frames_rejected_ = 0;
  std::uint64_t recoveries_ = 0;
  std::uint64_t last_recovery_epoch_ = 0;  // rate limit: one recovery / epoch
  std::size_t current_frame_size_ = 0;     // wire size of the frame in hand

  // Consecutive recovery rekeys since the last successful key install. A
  // persistent adversary (or a member that will never converge) must not be
  // able to drive an unbounded rekey storm: after the budget is exhausted
  // the member stops initiating recoveries until a key installs again. The
  // same counter indexes the exponential backoff schedule, so each retry of
  // an episode waits longer than the last.
  int recovery_attempts_ = 0;
  static constexpr int kMaxRecoveryAttempts = 8;
  // Consecutive watchdog fires without an intervening key install; indexes
  // the watchdog chain's backoff (the chain itself stays budget-exempt).
  int watchdog_streak_ = 0;

  // Protocol frames I sent, pristine as framed (epoch, wire). A kProtocol
  // frame that loops back under my own id must byte-match one of these —
  // nobody else can sign for me, so a mismatch means the wire was tampered
  // in transit. Byte comparison instead of self-verification keeps the
  // charged crypto-op counts of honest runs unchanged.
  std::deque<std::pair<std::uint64_t, Bytes>> sent_wires_;
  static constexpr std::size_t kMaxSentRecorded = 64;

  // Protocol frames that arrived for a future epoch: their sender installed
  // a view this member has not yet processed (possible when injected wire
  // delays reorder a unicast around a view install). Replayed in arrival
  // order once the matching view lands; entries at or below the installed
  // epoch are pruned. Bounded so a buggy peer cannot grow it without limit.
  std::map<std::uint64_t, std::vector<std::pair<ProcessId, Bytes>>> future_;
  static constexpr std::size_t kMaxFutureBuffered = 256;

  // Handler-scoped buffers.
  std::vector<Outbound> outbound_;
  std::optional<SecureBytes> pending_key_;

  SecureBytes key_;  // derived key block (enc key || iv seed || mac key)
  std::uint64_t data_seq_sent_ = 0;              // my data-plane sequence
  std::map<ProcessId, std::uint64_t> data_seq_seen_;  // replay filter
  std::uint64_t key_epoch_ = 0;
  SimTime key_time_ = -1;
  SimTime view_time_ = -1;

  std::function<void(SimTime, std::uint64_t)> key_listener_;
  std::function<void(ProcessId, const Bytes&)> data_listener_;

  // Deferred CPU-completion callbacks capture this flag; destroying the
  // member (e.g. right after it leaves) flips it so stragglers are no-ops.
  std::shared_ptr<bool> alive_ = std::make_shared<bool>(true);
};

}  // namespace sgk
