#include "gcs/rekey_batcher.h"

#include <algorithm>

#include "obs/metrics.h"

namespace sgk {

namespace {

void count(const char* name, std::uint64_t n = 1) {
  if (auto* m = obs::metrics()) m->counter(name).add(n);
}

void observe(const char* name, double v) {
  if (auto* m = obs::metrics()) m->histogram(name).observe(v);
}

}  // namespace

const char* to_string(BatchEventKind kind) {
  switch (kind) {
    case BatchEventKind::kJoin: return "join";
    case BatchEventKind::kLeave: return "leave";
    case BatchEventKind::kPartition: return "partition";
    case BatchEventKind::kMerge: return "merge";
    case BatchEventKind::kRefresh: return "refresh";
  }
  return "?";
}

const char* to_string(OverloadVerdict verdict) {
  switch (verdict) {
    case OverloadVerdict::kAdmitted: return "admitted";
    case OverloadVerdict::kCoalesced: return "coalesced";
    case OverloadVerdict::kShedOldest: return "shed_oldest";
  }
  return "?";
}

const char* to_string(GroupHealth health) {
  switch (health) {
    case GroupHealth::kNormal: return "normal";
    case GroupHealth::kDegraded: return "degraded";
  }
  return "?";
}

RekeyBatcher::RekeyBatcher(Simulator& sim, BatchConfig config, FlushFn flush)
    : sim_(sim), config_(config), flush_fn_(std::move(flush)) {
  // Sanitize: a budget cap below the minimum window would make the adaptive
  // range empty, and min > max inverts the clamp.
  config_.min_window_ms = std::max(0.0, config_.min_window_ms);
  config_.max_window_ms = std::max(config_.min_window_ms, config_.max_window_ms);
  config_.queue_capacity = std::max<std::size_t>(1, config_.queue_capacity);
  config_.grow_threshold = std::max<std::size_t>(2, config_.grow_threshold);
  config_.degrade_after_misses = std::max(1, config_.degrade_after_misses);
  config_.recover_after_hits = std::max(1, config_.recover_after_hits);
}

double RekeyBatcher::window_cap() const {
  double cap = config_.max_window_ms;
  if (config_.latency_budget_ms > 0.0 && config_.budget_window_fraction > 0.0) {
    cap = std::min(cap,
                   config_.latency_budget_ms * config_.budget_window_fraction);
  }
  return std::max(cap, config_.min_window_ms);
}

RekeyBatcher::GroupPipe& RekeyBatcher::pipe(const std::string& group) {
  auto [it, inserted] = pipes_.try_emplace(group);
  if (inserted) it->second.window_ms = config_.min_window_ms;
  return it->second;
}

OverloadVerdict RekeyBatcher::note_event(const std::string& group,
                                         BatchEventKind kind) {
  GroupPipe& p = pipe(group);
  p.stats.events += 1;
  count("gcs/batch/events");

  OverloadVerdict verdict;
  if (p.pending.size() >= config_.queue_capacity) {
    p.pending.pop_front();
    p.stats.shed += 1;
    count("gcs/batch/shed_oldest");
    verdict = OverloadVerdict::kShedOldest;
  } else if (p.window_open) {
    p.stats.coalesced += 1;
    count("gcs/batch/coalesced");
    verdict = OverloadVerdict::kCoalesced;
  } else {
    verdict = OverloadVerdict::kAdmitted;
  }

  p.pending.push_back(PendingEvent{sim_.now(), kind});
  if (kind == BatchEventKind::kRefresh) p.force = true;
  observe("gcs/batch/queue_depth", static_cast<double>(p.pending.size()));

  if (!p.window_open) open_window(group, p);
  return verdict;
}

void RekeyBatcher::open_window(const std::string& group, GroupPipe& p) {
  p.window_open = true;
  const double window = (p.stats.health == GroupHealth::kDegraded)
                            ? config_.max_window_ms
                            : std::min(p.window_ms, window_cap());
  observe("gcs/batch/window_ms", window);
  const std::uint64_t gen = ++p.window_gen;
  sim_.after(window, [this, group, gen] {
    auto it = pipes_.find(group);
    if (it == pipes_.end()) return;
    GroupPipe& pg = it->second;
    if (!pg.window_open || pg.window_gen != gen) return;
    flush(group, pg);
  });
}

void RekeyBatcher::flush(const std::string& group, GroupPipe& p) {
  const std::size_t batch = p.pending.size();
  p.window_open = false;
  const bool force = p.force;
  p.force = false;
  if (batch == 0) return;  // everything was shed away (capacity 0 impossible,
                           // but stay safe)

  p.stats.flushes += 1;
  p.stats.max_batch = std::max<std::uint64_t>(p.stats.max_batch, batch);
  count("gcs/batch/flushes");
  observe("gcs/batch/size", static_cast<double>(batch));

  OutstandingFlush record;
  record.flushed_at = sim_.now();
  record.arrivals.reserve(batch);
  for (const PendingEvent& ev : p.pending) record.arrivals.push_back(ev.at);
  p.pending.clear();
  p.outstanding.push_back(std::move(record));
  // A flush whose view got deduplicated (membership unchanged, not forced)
  // never sees a key install; bound the backlog so stale records cannot
  // poison latency attribution forever.
  while (p.outstanding.size() > kMaxOutstanding) p.outstanding.pop_front();

  adapt_window(p, batch);
  flush_fn_(group, force);
}

void RekeyBatcher::adapt_window(GroupPipe& p, std::size_t batch_size) const {
  if (p.stats.health == GroupHealth::kDegraded) return;  // pinned widest
  if (batch_size >= config_.grow_threshold) {
    p.window_ms = std::min(p.window_ms * 2.0, window_cap());
  } else if (batch_size <= 1) {
    p.window_ms = std::max(p.window_ms * 0.5, config_.min_window_ms);
  }
}

void RekeyBatcher::note_key_installed(const std::string& group, SimTime t) {
  auto it = pipes_.find(group);
  if (it == pipes_.end()) return;
  GroupPipe& p = it->second;
  if (p.outstanding.empty()) return;

  // A fresh key completes every window flushed before it, not only the
  // oldest: cascaded view changes abort the agreements of intermediate
  // flushes (their epochs never key), and the agreement that finally lands
  // covers the aggregate of all of them. (In the rare race where a flush's
  // view stamps after this install, its events get slightly optimistic
  // latencies — acceptable for a latency metric, and the alternative would
  // leave superseded flushes unsampled forever.)
  double worst = 0.0;
  while (!p.outstanding.empty() && p.outstanding.front().flushed_at <= t) {
    OutstandingFlush record = std::move(p.outstanding.front());
    p.outstanding.pop_front();
    for (SimTime arrival : record.arrivals) {
      const double latency = std::max(0.0, t - arrival);
      worst = std::max(worst, latency);
      p.stats.event_to_key_ms.push_back(latency);
      observe("gcs/batch/event_to_key_ms", latency);
    }
  }

  if (config_.latency_budget_ms <= 0.0) return;
  if (worst > config_.latency_budget_ms) {
    p.stats.budget_misses += 1;
    count("gcs/batch/budget_misses");
    p.consecutive_hits = 0;
    p.consecutive_misses += 1;
    if (p.stats.health == GroupHealth::kNormal &&
        p.consecutive_misses >= config_.degrade_after_misses) {
      set_health(group, p, GroupHealth::kDegraded);
    }
  } else {
    p.consecutive_misses = 0;
    p.consecutive_hits += 1;
    if (p.stats.health == GroupHealth::kDegraded &&
        p.consecutive_hits >= config_.recover_after_hits) {
      set_health(group, p, GroupHealth::kNormal);
    }
  }
}

void RekeyBatcher::set_health(const std::string& group, GroupPipe& p,
                              GroupHealth health) {
  if (p.stats.health == health) return;
  p.stats.health = health;
  p.consecutive_misses = 0;
  p.consecutive_hits = 0;
  if (health == GroupHealth::kDegraded) {
    p.stats.degraded_entries += 1;
    count("gcs/batch/degraded_enter");
    // Widest-window fallback: one rekey per (maximal) epoch until recovery.
    p.window_ms = config_.max_window_ms;
  } else {
    p.stats.degraded_exits += 1;
    count("gcs/batch/degraded_exit");
    // Re-enter adaptation from the top of the allowed range rather than the
    // floor so a still-loaded group does not thrash straight back.
    p.window_ms = window_cap();
  }
  if (health_fn_) health_fn_(group, health, sim_.now());
}

double RekeyBatcher::window_ms(const std::string& group) const {
  auto it = pipes_.find(group);
  return it == pipes_.end() ? config_.min_window_ms : it->second.window_ms;
}

GroupHealth RekeyBatcher::health(const std::string& group) const {
  auto it = pipes_.find(group);
  return it == pipes_.end() ? GroupHealth::kNormal : it->second.stats.health;
}

BatchStats RekeyBatcher::stats(const std::string& group) const {
  auto it = pipes_.find(group);
  return it == pipes_.end() ? BatchStats{} : it->second.stats;
}

std::size_t RekeyBatcher::queue_depth(const std::string& group) const {
  auto it = pipes_.find(group);
  return it == pipes_.end() ? 0 : it->second.pending.size();
}

}  // namespace sgk
