// Simulated Spread-like group communication system.
//
// Architecture mirrors the real Spread deployment the paper uses: one daemon
// per machine, client processes attached to their local daemon, and a
// token-ring total-order protocol among the daemons of each connected
// network component. A daemon may only stamp (sequence and transmit) queued
// messages while it holds the token, which is what makes an "Agreed" (total
// order) multicast cost a fraction of a token cycle on a LAN and several
// hundred milliseconds on the paper's three-site WAN.
//
// Provided services:
//  * agreed multicast within a group (total order, view synchronous),
//  * agreed "ordered unicast" (a sequenced message delivered to a single
//    member; the paper notes GDH's factor-out messages need exactly this),
//  * plain FIFO unicast (direct link latency, no sequencing),
//  * membership: group join/leave, network partition and merge, delivered
//    as views in the agreed stream (all members see the same view sequence
//    interleaved identically with data messages).
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "core/view.h"
#include "fault/hooks.h"
#include "gcs/rekey_batcher.h"
#include "sim/cpu.h"
#include "sim/simulator.h"
#include "sim/topology.h"
#include "util/bytes.h"
#include "util/thread_annotations.h"

namespace sgk {

/// Callback interface implemented by group members (clients).
class GroupClient {
 public:
  virtual ~GroupClient() = default;
  /// A new view was installed for `group`.
  virtual void on_view(const std::string& group, const View& view,
                       const ViewDelta& delta) = 0;
  /// A data message was delivered in `group`.
  virtual void on_message(const std::string& group, ProcessId sender,
                          const Bytes& payload) = 0;
};

/// Protocol/transport tunables. Defaults calibrated so the LAN testbed
/// reproduces the paper's measured primitives (section 6.1.1).
struct SpreadParams {
  // Tunables fixed at network construction; read-only during the run.
  SGK_CONFINED_TO_RUN;
  double hop_process_ms = 0.06;   // daemon token handling per hop
  double stamp_ms = 0.04;         // sequencing cost per stamped message
  double deliver_ms = 0.08;       // daemon-to-client delivery overhead
  double membership_rounds = 2.0; // token cycles consumed by the membership protocol
  double membership_base_ms = 1.0;
  /// First ProcessId this network hands out. A multi-group server gives each
  /// group's network a disjoint id block so process ids are globally unique
  /// and structures shared across groups (the Pki, aggregate stats) can key
  /// on them without collisions.
  ProcessId first_process_id = 0;
  /// Event-coalescing rekey pipeline (see rekey_batcher.h). Disabled by
  /// default: membership events trigger immediate view updates, exactly the
  /// pre-batching behavior.
  BatchConfig batch;
};

class SpreadNetwork {
  // One simulated GCS instance per run; lives and dies with its Simulator.
  SGK_CONFINED_TO_RUN;

 public:
  SpreadNetwork(Simulator& sim, Topology topology, SpreadParams params = {});
  ~SpreadNetwork();

  SpreadNetwork(const SpreadNetwork&) = delete;
  SpreadNetwork& operator=(const SpreadNetwork&) = delete;

  // ---- process management -------------------------------------------------
  /// Creates a process (client slot) on `machine` and returns its id.
  ProcessId create_process(MachineId machine);
  /// Registers the callback target for `process`.
  void attach(ProcessId process, GroupClient* client);
  MachineId machine_of(ProcessId process) const;
  CpuScheduler& cpu_of(ProcessId process);
  Simulator& simulator() { return sim_; }
  const Topology& topology() const { return topo_; }

  // ---- membership operations ----------------------------------------------
  /// Requests that `process` join `group`; the resulting view is installed
  /// asynchronously after the (modeled) membership protocol completes.
  void join_group(const std::string& group, ProcessId process);
  /// Requests that `process` leave `group`.
  void leave_group(const std::string& group, ProcessId process);
  /// Abrupt disconnect: leaves all groups (same observable effect as leave,
  /// which is how the paper treats crashes).
  void disconnect(ProcessId process);

  /// Installs a fresh view with unchanged membership (a re-key request: the
  /// "session rekeying" policy the paper discusses via Antigone). The key
  /// agreement layer re-keys for the new epoch.
  void refresh_group(const std::string& group, ProcessId requester);

  /// Splits the network into components of machines. Every machine must
  /// appear in exactly one component. Each component rebuilds its token ring
  /// and installs reduced views for the groups it hosts.
  void partition(const std::vector<std::vector<MachineId>>& components);
  /// Heals all partitions: one component with every machine; merged views.
  void heal();

  // ---- data plane ----------------------------------------------------------
  /// Agreed (total order) multicast to all current members of `group`.
  void multicast(const std::string& group, ProcessId sender, Bytes payload);
  /// Agreed-ordered message delivered only to `dest` (still consumes a stamp
  /// in the total order, like an Agreed message addressed to one member).
  void ordered_send(const std::string& group, ProcessId sender, ProcessId dest,
                    Bytes payload);
  /// Direct FIFO unicast: link latency only, no token, no ordering
  /// guarantees across senders. Dropped across partition boundaries.
  void unicast(const std::string& group, ProcessId sender, ProcessId dest,
               Bytes payload);

  // ---- introspection (tests, calibration benches) --------------------------
  /// Time for a token to complete one cycle of `machine`'s component.
  double token_cycle_ms(MachineId machine) const;
  /// Current installed view of `group` as seen by `process`'s daemon.
  std::optional<View> current_view(const std::string& group, ProcessId process) const;
  std::uint64_t messages_stamped() const { return messages_stamped_; }
  /// Number of processes ever created on this network.
  std::size_t process_count() const { return processes_.size(); }
  /// First ProcessId of this network's id block (SpreadParams).
  ProcessId first_process_id() const { return params_.first_process_id; }

  /// Installs a passive wire tap: called once for every stamped data message
  /// with (group, sender, payload bytes). Models the paper's threat model of
  /// a passive outside eavesdropper; used by the secrecy tests.
  void set_wire_tap(
      std::function<void(const std::string&, ProcessId, const Bytes&)> tap) {
    wire_tap_ = std::move(tap);
  }

  /// Installs a wire-fault hook consulted for every daemon-to-daemon message
  /// copy and every client unicast. Pass nullptr to remove. The hook only
  /// perturbs timing and copy counts (links stay reliable — see
  /// fault/hooks.h); total order and view synchrony are preserved.
  void set_fault_hook(fault::WireFaultHook* hook) { fault_hook_ = hook; }

  /// Component index `machine` currently belongs to (chaos drivers use this
  /// to group surviving members for the convergence invariant).
  int component_of_machine(MachineId machine) const {
    return component_of(machine);
  }

  /// The rekey batcher, or nullptr when batching is disabled. Hosts feed it
  /// key-install feedback (`note_key_installed`) and read its per-group
  /// pipeline stats after the run.
  RekeyBatcher* batcher() { return batcher_.get(); }
  const RekeyBatcher* batcher() const { return batcher_.get(); }

 private:
  struct Payload {
    enum Kind { kData, kView } kind = kData;
    std::string group;
    ProcessId sender = kNoProcess;
    ProcessId dest = kNoProcess;  // kNoProcess == all members
    Bytes data;
    // kView:
    View view;
    std::vector<std::vector<ProcessId>> sides;
    bool force = false;  // re-key request: install even if membership unchanged
  };

  struct Stamped {
    std::uint64_t seq;
    MachineId origin;
    Payload payload;
  };

  struct Daemon {
    MachineId machine;
    int component = 0;
    std::uint64_t epoch = 0;
    std::uint64_t expected_seq = 0;
    std::map<std::uint64_t, Stamped> pending;   // out-of-order buffer
    std::vector<Payload> outbox;                // waiting for the token
    std::map<std::string, View> delivered_view; // last installed view per group
  };

  struct Component {
    std::uint64_t epoch = 0;
    std::vector<MachineId> ring;  // ascending machine ids
    std::uint64_t next_seq = 0;
    /// Every message stamped in this component, in order (log[i].seq == i).
    /// Replayed to lagging daemons when a membership change dissolves the
    /// component, so view synchrony survives fault-delayed copies.
    std::vector<Stamped> log;
    bool token_parked = true;
    int token_pos = 0;   // current / parked ring position
    int idle_hops = 0;   // consecutive hops without stamping anything
    // Per group: the previously co-viewed member sets ("sides") used to
    // build the next stamped view's transitional information.
    std::map<std::string, std::vector<std::vector<ProcessId>>> side_seeds;
    // Per group: the member list of the last view stamped in this
    // component's stream (inherited across ring rebuilds), used to suppress
    // duplicate view installs.
    std::map<std::string, std::vector<ProcessId>> last_stamped;
  };

  struct ProcessInfo {
    MachineId machine;
    GroupClient* client = nullptr;
    bool connected = true;
    std::map<std::string, View> last_view;  // per group, as installed
  };

  // Token machinery.
  void schedule_token_arrival(int component_index, std::uint64_t epoch, int pos,
                              SimTime time);
  void token_arrive(int component_index, std::uint64_t epoch, int pos);
  void wake_token(int component_index);
  void enqueue(MachineId daemon, Payload payload);
  void transmit(const Component& comp, MachineId origin, Stamped stamped,
                SimTime depart);
  void daemon_receive(MachineId machine, std::uint64_t epoch, Stamped stamped);
  void daemon_deliver(Daemon& daemon, const Stamped& stamped);
  void deliver_view(Daemon& daemon, const Payload& payload);
  void deliver_data(Daemon& daemon, const Payload& payload);

  // Membership machinery.
  /// Routes one membership event either through the batcher (when enabled)
  /// or straight to request_view_update (the legacy per-event path).
  void membership_event(const std::string& group, int component_index,
                        BatchEventKind kind);
  void partition_impl(const std::vector<std::vector<MachineId>>& components,
                      bool is_merge);
  void request_view_update(const std::string& group, int component_index,
                           bool force = false);
  std::vector<ProcessId> component_members(const std::string& group,
                                           int component_index) const;
  int component_of(MachineId m) const;
  MachineId coordinator(int component_index) const;
  double cycle_ms(const Component& comp) const;

  // Global id <-> local slot translation for this network's id block.
  std::size_t slot_of(ProcessId p) const;
  ProcessInfo& proc(ProcessId p) { return processes_.at(slot_of(p)); }
  const ProcessInfo& proc(ProcessId p) const { return processes_.at(slot_of(p)); }

  Simulator& sim_;
  Topology topo_;
  SpreadParams params_;

  std::vector<Daemon> daemons_;           // index == MachineId
  std::vector<Component> components_;
  std::vector<std::unique_ptr<CpuScheduler>> cpus_;  // per machine
  // Slot i holds ProcessId params_.first_process_id + i (see slot_of()).
  std::vector<ProcessInfo> processes_;

  // group name -> sorted list of member processes (global registry).
  std::map<std::string, std::vector<ProcessId>> group_registry_;
  std::uint64_t next_view_id_ = 1;
  std::uint64_t messages_stamped_ = 0;
  std::function<void(const std::string&, ProcessId, const Bytes&)> wire_tap_;
  fault::WireFaultHook* fault_hook_ = nullptr;
  std::unique_ptr<RekeyBatcher> batcher_;  // non-null iff params_.batch.enabled
  std::uint64_t unicast_mutation_units_ = 0;  // see unicast() mutation point
};

/// Aggregate transport counters shared by every group a multi-group server
/// hosts. Each per-group SpreadNetwork stays strictly run-confined; workers
/// fold a finished network's totals into this one mutex-guarded sink, so the
/// only cross-thread transport state carries a real lock rather than a
/// confinement marker.
class SharedSpreadStats {
 public:
  /// Adds `net`'s lifetime totals. Called once per network, from whichever
  /// worker (or the main thread) finalizes its group.
  ///
  /// Fields and accessors deliberately do NOT reuse SpreadNetwork's names
  /// (messages_stamped et al.): the capability analyses (gka_lint GKA5xx,
  /// Clang -Wthread-safety via the guard map) match by bare identifier, so
  /// a guarded `stamped_total_` must not share a name with the per-network
  /// run-confined counter it aggregates.
  void absorb(const SpreadNetwork& net) SGK_EXCLUDES(stats_mu_) {
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++networks_absorbed_;
    stamped_total_ += net.messages_stamped();
    processes_total_ += static_cast<std::uint64_t>(net.process_count());
  }

  std::uint64_t networks_absorbed() const SGK_EXCLUDES(stats_mu_) {
    std::lock_guard<std::mutex> lock(stats_mu_);
    return networks_absorbed_;
  }
  std::uint64_t stamped_total() const SGK_EXCLUDES(stats_mu_) {
    std::lock_guard<std::mutex> lock(stats_mu_);
    return stamped_total_;
  }
  std::uint64_t processes_total() const SGK_EXCLUDES(stats_mu_) {
    std::lock_guard<std::mutex> lock(stats_mu_);
    return processes_total_;
  }

 private:
  mutable std::mutex stats_mu_;
  std::uint64_t networks_absorbed_ SGK_GUARDED_BY(stats_mu_) = 0;
  std::uint64_t stamped_total_ SGK_GUARDED_BY(stats_mu_) = 0;
  std::uint64_t processes_total_ SGK_GUARDED_BY(stats_mu_) = 0;
};

}  // namespace sgk
