#include "gcs/spread.h"

#include <algorithm>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/check.h"

namespace sgk {

namespace {
/// Intersection of two sorted process lists.
std::vector<ProcessId> intersect(const std::vector<ProcessId>& a,
                                 const std::vector<ProcessId>& b) {
  std::vector<ProcessId> out;
  std::set_intersection(a.begin(), a.end(), b.begin(), b.end(),
                        std::back_inserter(out));
  return out;
}
}  // namespace

SpreadNetwork::SpreadNetwork(Simulator& sim, Topology topology, SpreadParams params)
    : sim_(sim), topo_(std::move(topology)), params_(params) {
  SGK_CHECK(topo_.machine_count() > 0);
  daemons_.resize(topo_.machine_count());
  Component comp;
  comp.epoch = 1;
  for (std::size_t m = 0; m < topo_.machine_count(); ++m) {
    daemons_[m].machine = static_cast<MachineId>(m);
    daemons_[m].component = 0;
    daemons_[m].epoch = comp.epoch;
    comp.ring.push_back(static_cast<MachineId>(m));
    const MachineSpec& spec = topo_.machine(static_cast<MachineId>(m));
    // Track 0 is the events/phases timeline; machine m traces on track m+1.
    const auto track = static_cast<std::uint32_t>(m + 1);
    cpus_.push_back(
        std::make_unique<CpuScheduler>(sim_, spec.cores, spec.speed, track));
    SGK_TRACE(tr->set_track_name(track, "machine " + std::to_string(m)));
  }
  SGK_TRACE(tr->set_track_name(0, "membership events"));
  components_.push_back(std::move(comp));
  if (params_.batch.enabled) {
    // A flushed window requests one aggregate view per component; the
    // stamp-time dedup (last_stamped) suppresses components whose membership
    // is unchanged, so a flush costs exactly one view install per component
    // the batch actually touched.
    batcher_ = std::make_unique<RekeyBatcher>(
        sim_, params_.batch, [this](const std::string& group, bool force) {
          for (std::size_t c = 0; c < components_.size(); ++c)
            request_view_update(group, static_cast<int>(c), force);
        });
  }
}

SpreadNetwork::~SpreadNetwork() = default;

// ---------------------------------------------------------------------------
// processes

std::size_t SpreadNetwork::slot_of(ProcessId p) const {
  SGK_CHECK(p >= params_.first_process_id);
  return static_cast<std::size_t>(p - params_.first_process_id);
}

ProcessId SpreadNetwork::create_process(MachineId machine) {
  SGK_CHECK(machine >= 0 &&
            static_cast<std::size_t>(machine) < topo_.machine_count());
  processes_.push_back(ProcessInfo{machine, nullptr, true, {}});
  return params_.first_process_id +
         static_cast<ProcessId>(processes_.size() - 1);
}

void SpreadNetwork::attach(ProcessId process, GroupClient* client) {
  proc(process).client = client;
}

MachineId SpreadNetwork::machine_of(ProcessId process) const {
  return proc(process).machine;
}

CpuScheduler& SpreadNetwork::cpu_of(ProcessId process) {
  return *cpus_.at(static_cast<std::size_t>(machine_of(process)));
}

// ---------------------------------------------------------------------------
// membership

void SpreadNetwork::join_group(const std::string& group, ProcessId process) {
  auto& members = group_registry_[group];
  auto it = std::lower_bound(members.begin(), members.end(), process);
  SGK_CHECK(it == members.end() || *it != process);
  members.insert(it, process);
  membership_event(group, component_of(machine_of(process)),
                   BatchEventKind::kJoin);
}

void SpreadNetwork::leave_group(const std::string& group, ProcessId process) {
  auto& members = group_registry_[group];
  auto it = std::lower_bound(members.begin(), members.end(), process);
  SGK_CHECK(it != members.end() && *it == process);
  members.erase(it);
  proc(process).last_view.erase(group);
  membership_event(group, component_of(machine_of(process)),
                   BatchEventKind::kLeave);
}

void SpreadNetwork::disconnect(ProcessId process) {
  proc(process).connected = false;
  for (auto& [group, members] : group_registry_) {
    auto it = std::lower_bound(members.begin(), members.end(), process);
    if (it != members.end() && *it == process) {
      members.erase(it);
      membership_event(group, component_of(machine_of(process)),
                       BatchEventKind::kLeave);
    }
  }
}

int SpreadNetwork::component_of(MachineId m) const {
  return daemons_.at(static_cast<std::size_t>(m)).component;
}

MachineId SpreadNetwork::coordinator(int component_index) const {
  return components_.at(static_cast<std::size_t>(component_index)).ring.front();
}

std::vector<ProcessId> SpreadNetwork::component_members(const std::string& group,
                                                        int component_index) const {
  std::vector<ProcessId> out;
  auto it = group_registry_.find(group);
  if (it == group_registry_.end()) return out;
  for (ProcessId p : it->second)
    if (component_of(machine_of(p)) == component_index) out.push_back(p);
  return out;
}

double SpreadNetwork::cycle_ms(const Component& comp) const {
  double total = 0;
  const std::size_t n = comp.ring.size();
  for (std::size_t i = 0; i < n; ++i) {
    MachineId a = comp.ring[i];
    MachineId b = comp.ring[(i + 1) % n];
    total += params_.hop_process_ms + topo_.latency(a, b);
  }
  return total;
}

double SpreadNetwork::token_cycle_ms(MachineId machine) const {
  return cycle_ms(components_.at(static_cast<std::size_t>(component_of(machine))));
}

void SpreadNetwork::refresh_group(const std::string& group, ProcessId requester) {
  const auto& members = group_registry_[group];
  SGK_CHECK(std::binary_search(members.begin(), members.end(), requester));
  membership_event(group, component_of(machine_of(requester)),
                   BatchEventKind::kRefresh);
}

void SpreadNetwork::membership_event(const std::string& group,
                                     int component_index, BatchEventKind kind) {
  if (batcher_ != nullptr) {
    batcher_->note_event(group, kind);
    return;
  }
  request_view_update(group, component_index,
                      /*force=*/kind == BatchEventKind::kRefresh);
}

void SpreadNetwork::request_view_update(const std::string& group,
                                        int component_index, bool force) {
  // Model of the membership protocol: after a preparation phase (gather +
  // consensus rounds among daemons) the coordinator injects a view-install
  // message into the agreed stream; stamping adds the remaining ~half cycle.
  Component& comp = components_.at(static_cast<std::size_t>(component_index));
  const double prep = params_.membership_base_ms +
                      std::max(0.0, params_.membership_rounds - 0.5) * cycle_ms(comp);
  const MachineId coord = coordinator(component_index);
  Payload payload;
  payload.kind = Payload::kView;
  payload.group = group;
  payload.force = force;
  sim_.after(prep, [this, coord, payload]() { enqueue(coord, payload); });
}

// ---------------------------------------------------------------------------
// data plane

void SpreadNetwork::multicast(const std::string& group, ProcessId sender,
                              Bytes payload) {
  Payload p;
  p.kind = Payload::kData;
  p.group = group;
  p.sender = sender;
  p.data = std::move(payload);
  enqueue(machine_of(sender), std::move(p));
}

void SpreadNetwork::ordered_send(const std::string& group, ProcessId sender,
                                 ProcessId dest, Bytes payload) {
  Payload p;
  p.kind = Payload::kData;
  p.group = group;
  p.sender = sender;
  p.dest = dest;
  p.data = std::move(payload);
  enqueue(machine_of(sender), std::move(p));
}

void SpreadNetwork::unicast(const std::string& group, ProcessId sender,
                            ProcessId dest, Bytes payload) {
  const MachineId src_m = machine_of(sender);
  const MachineId dst_m = machine_of(dest);
  if (component_of(src_m) != component_of(dst_m)) return;  // partitioned away
  if (proc(dest).client == nullptr || !proc(dest).connected)
    return;
  double delay = topo_.latency(src_m, dst_m) + params_.deliver_ms;
  if (fault_hook_ != nullptr)
    delay += fault_hook_->on_unicast(sender, dest).extra_delay_ms;
  std::string g = group;
  Bytes data = std::move(payload);
  if (fault_hook_ != nullptr) {
    // Direct unicasts bypass the token ring, so they draw mutation units
    // from a disjoint space (top bit set) counted in issue order — which is
    // deterministic for a given seed and scenario.
    const fault::MutationKind mut =
        fault_hook_->on_frame(data, (1ULL << 63) | unicast_mutation_units_++);
    if (mut != fault::MutationKind::kNone) {
      if (obs::MetricsRegistry* mr = obs::metrics())
        mr->counter(std::string("gcs/frames_mutated/") + fault::to_string(mut))
            .add();
    }
  }
  // Resolve the client at delivery time: it may detach before the message
  // lands (a member that left and was destroyed).
  sim_.after(delay, [this, dest, g, sender, data]() {
    GroupClient* client = proc(dest).client;
    if (client != nullptr && proc(dest).connected)
      client->on_message(g, sender, data);
  });
}

// ---------------------------------------------------------------------------
// token ring

void SpreadNetwork::enqueue(MachineId daemon, Payload payload) {
  Daemon& d = daemons_.at(static_cast<std::size_t>(daemon));
  d.outbox.push_back(std::move(payload));
  wake_token(d.component);
}

void SpreadNetwork::wake_token(int component_index) {
  Component& comp = components_.at(static_cast<std::size_t>(component_index));
  if (!comp.token_parked) return;
  comp.token_parked = false;
  comp.idle_hops = 0;
  // The parked daemon holds the token; it may stamp immediately.
  schedule_token_arrival(component_index, comp.epoch, comp.token_pos, sim_.now());
}

void SpreadNetwork::schedule_token_arrival(int component_index, std::uint64_t epoch,
                                           int pos, SimTime time) {
  sim_.at(time, [this, component_index, epoch, pos]() {
    token_arrive(component_index, epoch, pos);
  });
}

void SpreadNetwork::token_arrive(int component_index, std::uint64_t epoch, int pos) {
  // A membership change may have rebuilt (or removed) the component between
  // scheduling and arrival; a token from a dead ring generation is dropped.
  if (static_cast<std::size_t>(component_index) >= components_.size()) return;
  Component& comp = components_.at(static_cast<std::size_t>(component_index));
  if (comp.epoch != epoch) return;  // ring was rebuilt; this token is dead
  comp.token_pos = pos;
  const MachineId machine = comp.ring.at(static_cast<std::size_t>(pos));
  Daemon& daemon = daemons_.at(static_cast<std::size_t>(machine));

  // Stamp everything queued at this daemon.
  std::vector<Payload> queue;
  queue.swap(daemon.outbox);
  std::size_t stamped_count = 0;
  SimTime depart = sim_.now() + params_.hop_process_ms;
  for (Payload& payload : queue) {
    if (payload.kind == Payload::kView) {
      const std::vector<ProcessId> members =
          component_members(payload.group, component_index);
      auto& seeds = comp.side_seeds[payload.group];
      // Deduplicate: the membership already matches the last stamped view.
      auto stamped_it = comp.last_stamped.find(payload.group);
      if (!payload.force && stamped_it != comp.last_stamped.end() &&
          stamped_it->second == members)
        continue;
      comp.last_stamped[payload.group] = members;
      if (members.empty()) {
        seeds.assign(1, {});
        continue;  // nobody left to deliver to
      }
      payload.view.view_id = next_view_id_++;
      payload.view.members = members;
      // Sides: previous co-viewed sets, filtered to current members, plus a
      // singleton side for every member not covered (fresh joiners).
      payload.sides.clear();
      std::vector<ProcessId> covered;
      for (const auto& seed : seeds) {
        std::vector<ProcessId> side = intersect(seed, members);
        if (!side.empty()) {
          covered.insert(covered.end(), side.begin(), side.end());
          payload.sides.push_back(std::move(side));
        }
      }
      std::sort(covered.begin(), covered.end());
      for (ProcessId p : members)
        if (!std::binary_search(covered.begin(), covered.end(), p))
          payload.sides.push_back({p});
      seeds.assign(1, members);
    }
    if (payload.kind == Payload::kData && wire_tap_)
      wire_tap_(payload.group, payload.sender, payload.data);
    if (payload.kind == Payload::kData && fault_hook_ != nullptr) {
      // Adversarial wire mutation, applied once at stamp time so every
      // receiver — the sender's own loopback included — sees the same
      // (possibly corrupted) bytes. Keyed on the stamp sequence number,
      // which is deterministic for a given seed and scenario.
      const fault::MutationKind mut =
          fault_hook_->on_frame(payload.data, comp.next_seq);
      if (mut != fault::MutationKind::kNone) {
        if (obs::MetricsRegistry* mr = obs::metrics())
          mr->counter(std::string("gcs/frames_mutated/") + fault::to_string(mut))
              .add();
      }
    }
    Stamped stamped{comp.next_seq++, machine, std::move(payload)};
    comp.log.push_back(stamped);
    ++messages_stamped_;
    ++stamped_count;
    depart += params_.stamp_ms;
    if (obs::MetricsRegistry* mr = obs::metrics())
      mr->counter("gcs/messages_stamped").add();
    SGK_TRACE(if (tr->event_active()) {
      obs::SpanId mark = tr->instant(
          stamped.payload.kind == Payload::kView ? "stamp_view" : "stamp_data",
          depart, static_cast<std::uint32_t>(machine + 1));
      if (stamped.payload.kind == Payload::kData)
        tr->attr(mark, "bytes",
                 obs::Json(static_cast<std::uint64_t>(stamped.payload.data.size())));
    });
    transmit(comp, machine, std::move(stamped), depart);
  }

  // The token circulates continuously while the component is active (this
  // is what makes every protocol round pay an average of half a token cycle,
  // as in the real system); it parks only after two fully idle cycles so
  // the simulation quiesces.
  if (stamped_count == 0) {
    ++comp.idle_hops;
  } else {
    comp.idle_hops = 0;
  }
  bool queued_somewhere = false;
  for (MachineId m : comp.ring)
    if (!daemons_.at(static_cast<std::size_t>(m)).outbox.empty()) {
      queued_somewhere = true;
      break;
    }
  if (!queued_somewhere &&
      comp.idle_hops >= 2 * static_cast<int>(comp.ring.size())) {
    comp.token_parked = true;
    return;
  }
  const int next_pos = (pos + 1) % static_cast<int>(comp.ring.size());
  const MachineId next_machine = comp.ring.at(static_cast<std::size_t>(next_pos));
  schedule_token_arrival(component_index, epoch,
                         next_pos, depart + topo_.latency(machine, next_machine));
}

void SpreadNetwork::transmit(const Component& comp, MachineId origin,
                             Stamped stamped, SimTime depart) {
  const std::uint64_t epoch = comp.epoch;
  for (MachineId dest : comp.ring) {
    SimTime arrive = depart + topo_.latency(origin, dest);
    int copies = 1;
    if (fault_hook_ != nullptr) {
      const fault::WireFault f =
          fault_hook_->on_daemon_copy(origin, dest, stamped.seq);
      arrive += f.extra_delay_ms;
      copies = f.copies;
      if (obs::MetricsRegistry* mr = obs::metrics()) {
        if (f.extra_delay_ms > 0) mr->counter("gcs/fault_copies_delayed").add();
        if (f.copies > 1) mr->counter("gcs/fault_copies_duplicated").add();
      }
    }
    for (int c = 0; c < copies; ++c) {
      // Duplicate copies trail the original slightly; daemon_receive dedups
      // by sequence number, so extras only cost receive-side work.
      Stamped copy = stamped;
      sim_.at(arrive + 0.25 * c,
              [this, dest, epoch, copy = std::move(copy)]() {
                daemon_receive(dest, epoch, copy);
              });
    }
  }
}

void SpreadNetwork::daemon_receive(MachineId machine, std::uint64_t epoch,
                                   Stamped stamped) {
  Daemon& daemon = daemons_.at(static_cast<std::size_t>(machine));
  if (daemon.epoch != epoch) return;  // stale component
  if (stamped.seq < daemon.expected_seq) {
    // Already delivered: a duplicated wire copy (fault injection). Sequence
    // dedup here is what makes daemon-level duplication safe to inject.
    if (obs::MetricsRegistry* mr = obs::metrics())
      mr->counter("gcs/duplicates_discarded").add();
    return;
  }
  daemon.pending.emplace(stamped.seq, std::move(stamped));
  // Deliver in sequence order.
  while (!daemon.pending.empty() &&
         daemon.pending.begin()->first == daemon.expected_seq) {
    Stamped next = std::move(daemon.pending.begin()->second);
    daemon.pending.erase(daemon.pending.begin());
    ++daemon.expected_seq;
    daemon_deliver(daemon, next);
  }
}

void SpreadNetwork::daemon_deliver(Daemon& daemon, const Stamped& stamped) {
  if (stamped.payload.kind == Payload::kView) {
    deliver_view(daemon, stamped.payload);
  } else {
    deliver_data(daemon, stamped.payload);
  }
}

void SpreadNetwork::deliver_view(Daemon& daemon, const Payload& payload) {
  const View& view = payload.view;
  daemon.delivered_view[payload.group] = view;
  if (obs::MetricsRegistry* mr = obs::metrics())
    mr->counter("gcs/views_installed").add();
  SGK_TRACE(if (tr->event_active()) {
    obs::SpanId mark =
        tr->instant("view_install", sim_.now() + params_.deliver_ms,
                    static_cast<std::uint32_t>(daemon.machine + 1));
    tr->attr(mark, "members",
             obs::Json(static_cast<std::uint64_t>(view.members.size())));
  });
  for (ProcessId p : view.members) {
    if (machine_of(p) != daemon.machine) continue;
    ProcessInfo& info = proc(p);
    if (info.client == nullptr || !info.connected) continue;
    View prev;
    bool first = true;
    auto it = info.last_view.find(payload.group);
    if (it != info.last_view.end()) {
      prev = it->second;
      first = false;
    }
    ViewDelta delta = view_delta(prev, view, first);
    delta.sides = payload.sides;
    info.last_view[payload.group] = view;
    std::string group = payload.group;
    View v = view;
    sim_.after(params_.deliver_ms, [this, p, group, v, delta]() {
      GroupClient* client = proc(p).client;
      if (client != nullptr && proc(p).connected)
        client->on_view(group, v, delta);
    });
  }
}

void SpreadNetwork::deliver_data(Daemon& daemon, const Payload& payload) {
  auto vit = daemon.delivered_view.find(payload.group);
  if (vit == daemon.delivered_view.end()) return;  // no members here yet
  const View& view = vit->second;
  for (ProcessId p : view.members) {
    if (machine_of(p) != daemon.machine) continue;
    if (payload.dest != kNoProcess && payload.dest != p) continue;
    ProcessInfo& info = proc(p);
    if (info.client == nullptr || !info.connected) continue;
    std::string group = payload.group;
    ProcessId sender = payload.sender;
    Bytes data = payload.data;
    sim_.after(params_.deliver_ms, [this, p, group, sender, data]() {
      GroupClient* client = proc(p).client;
      if (client != nullptr && proc(p).connected)
        client->on_message(group, sender, data);
    });
  }
}

// ---------------------------------------------------------------------------
// partitions

void SpreadNetwork::partition(const std::vector<std::vector<MachineId>>& components) {
  partition_impl(components, /*is_merge=*/false);
}

void SpreadNetwork::partition_impl(
    const std::vector<std::vector<MachineId>>& components, bool is_merge) {
  // Validate loudly: every machine in exactly one component. A malformed
  // split is a driver bug; each message names the offending machine so a
  // failing chaos seed is diagnosable from the exception text alone.
  std::vector<int> assignment(topo_.machine_count(), -1);
  for (std::size_t c = 0; c < components.size(); ++c) {
    if (components[c].empty())
      throw CheckFailure("partition: component " + std::to_string(c) +
                         " is empty");
    for (MachineId m : components[c]) {
      if (m < 0 || static_cast<std::size_t>(m) >= topo_.machine_count())
        throw CheckFailure("partition: unknown machine " + std::to_string(m) +
                           " in component " + std::to_string(c));
      if (assignment[static_cast<std::size_t>(m)] != -1)
        throw CheckFailure(
            "partition: machine " + std::to_string(m) +
            " listed twice (components " +
            std::to_string(assignment[static_cast<std::size_t>(m)]) + " and " +
            std::to_string(c) + ")");
      assignment[static_cast<std::size_t>(m)] = static_cast<int>(c);
    }
  }
  for (std::size_t m = 0; m < assignment.size(); ++m)
    if (assignment[m] == -1)
      throw CheckFailure("partition: machine " + std::to_string(m) +
                         " missing from every component");

  // Retransmission round of the membership protocol: before the old rings
  // dissolve, catch every daemon up to its component's full stamped prefix.
  // Daemons entering the same new view must have delivered identical message
  // sequences — otherwise fault-delayed copies (still in flight or parked in
  // a pending buffer with holes) would leave the secure layer's members with
  // divergent protocol state, and the post-view agreement could never
  // converge.
  for (Daemon& d : daemons_) {
    const Component& oc = components_.at(static_cast<std::size_t>(d.component));
    while (d.expected_seq < oc.log.size()) {
      const Stamped& missed = oc.log.at(static_cast<std::size_t>(d.expected_seq));
      ++d.expected_seq;
      daemon_deliver(d, missed);
    }
    d.pending.clear();
  }

  std::vector<Component> old_components = std::move(components_);
  components_.clear();
  std::uint64_t epoch_base = 0;
  for (const Component& oc : old_components)
    epoch_base = std::max(epoch_base, oc.epoch);

  for (std::size_t c = 0; c < components.size(); ++c) {
    Component comp;
    comp.epoch = epoch_base + 1 + c;
    comp.ring = components[c];
    std::sort(comp.ring.begin(), comp.ring.end());
    // Seed the sides for upcoming merge views: one side per old component
    // that contributed machines, preserving each side's last stamped view.
    std::vector<int> old_indices;
    for (MachineId m : comp.ring) {
      int old_idx = daemons_.at(static_cast<std::size_t>(m)).component;
      if (std::find(old_indices.begin(), old_indices.end(), old_idx) ==
          old_indices.end())
        old_indices.push_back(old_idx);
    }
    // Inherit the duplicate-suppression state from the coordinator's old
    // component: its last stamped views are what this component's surviving
    // members have installed.
    {
      int coord_old = daemons_.at(static_cast<std::size_t>(comp.ring.front())).component;
      comp.last_stamped =
          old_components.at(static_cast<std::size_t>(coord_old)).last_stamped;
    }
    for (int old_idx : old_indices) {
      const Component& oc = old_components.at(static_cast<std::size_t>(old_idx));
      for (const auto& [group, seeds] : oc.side_seeds) {
        for (const auto& seed : seeds) {
          // Keep only processes now living in this new component.
          std::vector<ProcessId> side;
          for (ProcessId p : seed)
            if (assignment[static_cast<std::size_t>(machine_of(p))] ==
                static_cast<int>(c))
              side.push_back(p);
          if (!side.empty()) comp.side_seeds[group].push_back(std::move(side));
        }
      }
    }
    components_.push_back(std::move(comp));
  }

  for (std::size_t m = 0; m < daemons_.size(); ++m) {
    Daemon& d = daemons_[m];
    d.component = assignment[m];
    d.epoch = components_.at(static_cast<std::size_t>(d.component)).epoch;
    d.expected_seq = 0;
    d.pending.clear();
    // Unstamped data survives into the new component; stale view requests
    // do not (each new component installs its own views below).
    std::erase_if(d.outbox, [](const Payload& p) { return p.kind == Payload::kView; });
  }

  // Install new views for every group in every component. With batching on,
  // one kPartition/kMerge event per group is enough — the flush requests
  // views for all components at flush time (the topology change itself took
  // effect above; only the rekey is coalesced).
  if (batcher_ != nullptr) {
    for (const auto& [group, members] : group_registry_) {
      (void)members;
      batcher_->note_event(group, is_merge ? BatchEventKind::kMerge
                                           : BatchEventKind::kPartition);
    }
  } else {
    for (std::size_t c = 0; c < components_.size(); ++c)
      for (const auto& [group, members] : group_registry_) {
        (void)members;
        request_view_update(group, static_cast<int>(c));
      }
  }

  // Wake tokens for components with queued data.
  for (std::size_t c = 0; c < components_.size(); ++c)
    for (MachineId m : components_[c].ring)
      if (!daemons_.at(static_cast<std::size_t>(m)).outbox.empty()) {
        wake_token(static_cast<int>(c));
        break;
      }
}

void SpreadNetwork::heal() {
  std::vector<MachineId> all;
  for (std::size_t m = 0; m < topo_.machine_count(); ++m)
    all.push_back(static_cast<MachineId>(m));
  partition_impl({all}, /*is_merge=*/true);
}

std::optional<View> SpreadNetwork::current_view(const std::string& group,
                                                ProcessId process) const {
  const auto& info = proc(process);
  auto it = info.last_view.find(group);
  if (it == info.last_view.end()) return std::nullopt;
  return it->second;
}

}  // namespace sgk
