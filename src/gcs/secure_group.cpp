#include "gcs/secure_group.h"

#include <algorithm>

#include "crypto/aes.h"
#include "crypto/hmac.h"
#include "crypto/sha256.h"
#include "fault/rng.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "obs/wallclock.h"
#include "util/check.h"

namespace sgk {

namespace {
const RsaPrivateKey& default_rsa(ProcessId self) {
  return RsaPrivateKey::test_key(static_cast<int>(self % 4));
}

/// Plain sub-key copy whose storage is wiped when the enclosing scope ends
/// (the cipher/MAC primitives take `Bytes`).
struct ScopedSubkey {
  // Stack-scoped wipe guard; never outlives the calling frame.
  SGK_CONFINED_TO_RUN;
  Bytes b;
  explicit ScopedSubkey(Bytes bytes) : b(std::move(bytes)) {}
  ~ScopedSubkey() { secure_zero(b.data(), b.size()); }
};
}  // namespace

double recovery_backoff_ms(double base_ms, double cap_ms, int attempt,
                           std::uint64_t seed, ProcessId self,
                           std::uint64_t epoch) {
  // A cap below the base would SHORTEN the first delay; the legacy contract
  // is that attempt 0 waits exactly base_ms, so the effective ceiling is
  // never less than the base.
  const double cap = cap_ms > 0 ? std::max(cap_ms, base_ms) : 0.0;
  const int shift = std::min(std::max(attempt, 0), 30);
  double d = base_ms * static_cast<double>(1u << shift);
  if (cap > 0) d = std::min(d, cap);
  if (attempt > 0) {
    d += d * 0.25 *
         fault::fault_unit(seed, static_cast<std::uint64_t>(self), epoch,
                           static_cast<std::uint64_t>(attempt));
  }
  return d;
}

SecureGroupMember::SecureGroupMember(SpreadNetwork& net, ProcessId self,
                                     std::shared_ptr<Pki> pki, MemberConfig config)
    : net_(net),
      self_(self),
      pki_(std::move(pki)),
      config_(std::move(config)),
      crypto_(dh_group(config_.dh_bits),
              config_.rsa ? *config_.rsa : default_rsa(self),
              config_.cost,
              Drbg(config_.seed * 0x9e3779b97f4a7c15ULL + self, "member"),
              config_.signature) {
  pki_->enroll(self_, crypto_.verify_key());
  net_.attach(self_, this);
  protocol_ = make_protocol(config_.protocol, *this);
}

SecureGroupMember::~SecureGroupMember() {
  *alive_ = false;
  net_.attach(self_, nullptr);
}

std::string SecureGroupMember::key_fingerprint() const {
  if (!has_key()) return {};
  Sha256 h;
  h.update(str_bytes("sgk-key-fingerprint"));
  const ScopedSubkey block(key_.reveal());
  h.update(block.b);
  Bytes digest = h.finish();
  digest.resize(8);
  return to_hex(digest);
}

void SecureGroupMember::join() { net_.join_group(config_.group, self_); }

void SecureGroupMember::leave() { net_.leave_group(config_.group, self_); }

void SecureGroupMember::request_rekey() {
  net_.refresh_group(config_.group, self_);
}

// ---------------------------------------------------------------------------
// framing

Bytes SecureGroupMember::frame_and_sign(WireKind kind, const Bytes& body) {
  obs::WallScope wall("serde/frame_encode");
  Writer signed_part;
  signed_part.u8(static_cast<std::uint8_t>(kind));
  signed_part.u64(epoch_);
  signed_part.u32(self_);
  signed_part.bytes(body);
  Bytes to_sign = signed_part.take();
  Bytes sig = crypto_.sign(to_sign);
  Writer w;
  w.raw(to_sign);
  w.bytes(sig);
  Bytes wire = w.take();
  // Record the pristine wire for the loopback-integrity check (see
  // sent_wires_). Every protocol frame passes through here.
  sent_wires_.emplace_back(epoch_, wire);
  while (sent_wires_.size() > kMaxSentRecorded) sent_wires_.pop_front();
  return wire;
}

void SecureGroupMember::queue(SendKind kind, ProcessId dest, Bytes wire) {
  outbound_.push_back(Outbound{kind, dest, std::move(wire)});
}

void SecureGroupMember::send_multicast(Bytes body) {
  queue(SendKind::kMulticast, kNoProcess, frame_and_sign(WireKind::kProtocol, body));
}

void SecureGroupMember::send_ordered(ProcessId dest, Bytes body) {
  queue(SendKind::kOrdered, dest, frame_and_sign(WireKind::kProtocol, body));
}

void SecureGroupMember::send_unicast(ProcessId dest, Bytes body) {
  queue(SendKind::kUnicast, dest, frame_and_sign(WireKind::kProtocol, body));
}

void SecureGroupMember::mark_phase(const char* phase_name) {
  SGK_TRACE(tr->phase(phase_name, net_.simulator().now()));
}

void SecureGroupMember::mark_point(const char* point_name) {
  SGK_TRACE(if (tr->event_active()) {
    obs::SpanId mark = tr->instant(point_name, net_.simulator().now(),
                                   static_cast<std::uint32_t>(
                                       net_.machine_of(self_) + 1));
    tr->attr(mark, "member", obs::Json(static_cast<std::uint64_t>(self_)));
  });
}

void SecureGroupMember::deliver_key(const BigInt& group_secret) {
  // Derive a 64-byte key block (16B AES key, 16B IV seed, 32B HMAC key).
  Bytes material = group_secret.to_bytes();
  Writer info;
  info.str(config_.group);
  info.u64(epoch_);
  const std::size_t material_size = material.size();
  pending_key_ = SecureBytes(
      hkdf_sha256(material, str_bytes("sgk-group-key"), info.take(), 64));
  secure_zero(material.data(), material.size());
  crypto_.charge_symmetric(material_size + 64);
  protocol_->note_key_delivered();
}

void SecureGroupMember::end_handler() {
  const double cost = crypto_.take_charge();
  std::vector<Outbound> out = std::move(outbound_);
  outbound_.clear();
  std::optional<SecureBytes> key = std::move(pending_key_);
  pending_key_.reset();
  const std::uint64_t epoch = epoch_;

  // gka-lint: allow(GKA602) -- `!key` tests std::optional presence (key delivered this turn?), a public protocol event, not key bytes
  if (cost == 0 && out.empty() && !key) return;

  net_.cpu_of(self_).submit(
      self_, cost,
      [this, alive = alive_, out = std::move(out), key = std::move(key),
       epoch]() mutable {
        if (!*alive) return;
        for (Outbound& o : out) {
          // Account for traffic at release time.
          crypto_.counters().bytes_sent += o.wire.size();
          switch (o.kind) {
            case SendKind::kMulticast:
              ++crypto_.counters().multicasts;
              net_.multicast(config_.group, self_, std::move(o.wire));
              break;
            case SendKind::kOrdered:
              ++crypto_.counters().ordered_sends;
              net_.ordered_send(config_.group, self_, o.dest, std::move(o.wire));
              break;
            case SendKind::kUnicast:
              ++crypto_.counters().unicasts;
              net_.unicast(config_.group, self_, o.dest, std::move(o.wire));
              break;
          }
        }
        // gka-lint: allow(GKA601) -- optional-presence gate for the install path (did this epoch deliver a key), independent of the key value
        if (key) {
          key_ = std::move(*key);
          key_epoch_ = epoch;
          key_time_ = net_.simulator().now();
          recovery_attempts_ = 0;  // converged: refill the recovery budget
          watchdog_streak_ = 0;    // and restart the watchdog chain's backoff
          SGK_TRACE(if (tr->event_active()) {
            obs::SpanId mark = tr->instant(
                "key_install", key_time_,
                static_cast<std::uint32_t>(net_.machine_of(self_) + 1));
            tr->attr(mark, "member",
                     obs::Json(static_cast<std::uint64_t>(self_)));
            tr->attr(mark, "epoch", obs::Json(epoch));
          });
          if (key_listener_) key_listener_(key_time_, key_epoch_);
        }
      });
}

// ---------------------------------------------------------------------------
// GCS callbacks

void SecureGroupMember::on_view(const std::string& group, const View& view,
                                const ViewDelta& delta) {
  if (group != config_.group) return;
  // The agreed stream delivers views in increasing id order; anything else
  // is a stale straggler and must not roll the epoch back.
  if (view_ && view.view_id <= epoch_) {
    ++stale_dropped_;
    return;
  }
  if (protocol_->in_flight()) {
    // Cascaded membership event: this view interrupts a running agreement.
    // The protocol wrapper aborts and restarts it on the new membership.
    if (obs::MetricsRegistry* mr = obs::metrics())
      mr->counter("member/agreement_restarts").add();
  }
  view_ = view;
  view_time_ = net_.simulator().now();
  epoch_ = view.view_id;
  // Loopback records from dead epochs can no longer loop back.
  while (!sent_wires_.empty() && sent_wires_.front().first < epoch_)
    sent_wires_.pop_front();
  protocol_->on_view(view, delta);
  end_handler();

  // Watchdog arm: an adversary that erases a frame outright (e.g. replaces
  // it with a replay) leaves the members that needed it with nothing to
  // reject. If the agreement for this view is still in flight after the
  // deadline, request a rekey. The watchdog deliberately bypasses the
  // reject-path recovery budget: each view install arms exactly one shot,
  // and a fired shot produces a fresh view that arms the next, so the retry
  // chain is self-limiting and ends the moment an agreement completes. A
  // finite budget here would be exhausted by a long enough corruption storm
  // and leave the group wedged mid-agreement once the storm passed. The
  // trade-off is that the chain retries as long as agreements keep failing —
  // which is why the watchdog is opt-in (default off) and armed only by
  // bounded-horizon harnesses like run_fuzz.
  if (config_.recovery_watchdog_ms > 0) {
    const std::uint64_t epoch = epoch_;
    // Consecutive unkeyed fires stretch the chain's period exponentially
    // (streak resets on key install), so a long corruption storm costs
    // O(log) rekeys instead of one per fixed deadline while the chain stays
    // budget-exempt and therefore can never wedge.
    const double deadline = recovery_backoff_ms(
        config_.recovery_watchdog_ms, config_.recovery_backoff_cap_ms,
        watchdog_streak_, config_.seed, self_, epoch);
    net_.simulator().after(deadline, [this, alive = alive_, epoch] {
      if (!*alive || epoch_ != epoch) return;
      if (!protocol_->in_flight()) return;
      ++watchdog_streak_;
      ++recoveries_;
      if (obs::MetricsRegistry* mr = obs::metrics())
        mr->counter("member/recoveries").add();
      request_rekey();
    });
  }

  // Replay protocol frames that raced ahead of this view install, then drop
  // anything at or below the now-current epoch.
  std::vector<std::pair<ProcessId, Bytes>> replay;
  auto it = future_.find(epoch_);
  if (it != future_.end()) replay = std::move(it->second);
  future_.erase(future_.begin(), future_.upper_bound(epoch_));
  for (auto& [sender, payload] : replay) on_message(group, sender, payload);
}

Decoded<SecureGroupMember::OuterFrame> SecureGroupMember::validate_and_decode_frame(
    const Bytes& payload) {
  using D = Decoded<OuterFrame>;
  OuterFrame f;
  try {
    Reader r(payload);
    f.kind = r.u8();
    if (f.kind != static_cast<std::uint8_t>(WireKind::kProtocol) &&
        f.kind != static_cast<std::uint8_t>(WireKind::kData))
      return D::rejected(RejectReason::kBadTag);
    f.epoch = r.u64();
    f.claimed_sender = r.u32();
    f.body = r.bytes();
    if (f.kind == static_cast<std::uint8_t>(WireKind::kProtocol)) f.sig = r.bytes();
    if (!r.done()) return D::rejected(RejectReason::kTrailingBytes);
  } catch (const LengthError&) {
    return D::rejected(RejectReason::kBadLength);
  } catch (const DecodeError&) {
    return D::rejected(RejectReason::kTruncated);
  }
  return D::accepted(std::move(f));
}

Decoded<SecureGroupMember::DataBody> SecureGroupMember::validate_and_decode_data(
    const Bytes& body) {
  using D = Decoded<DataBody>;
  DataBody b;
  try {
    Reader r(body);
    b.seq = r.u64();
    b.sealed = r.bytes();
    if (!r.done()) return D::rejected(RejectReason::kTrailingBytes);
  } catch (const LengthError&) {
    return D::rejected(RejectReason::kBadLength);
  } catch (const DecodeError&) {
    return D::rejected(RejectReason::kTruncated);
  }
  return D::accepted(std::move(b));
}

Decoded<SecureGroupMember::SealedParts> SecureGroupMember::validate_and_decode_sealed(
    const Bytes& sealed) {
  using D = Decoded<SealedParts>;
  SealedParts s;
  try {
    Reader r(sealed);
    s.iv = r.bytes();
    s.ct = r.bytes();
    s.mac = r.bytes();
    if (!r.done()) return D::rejected(RejectReason::kTrailingBytes);
  } catch (const LengthError&) {
    return D::rejected(RejectReason::kBadLength);
  } catch (const DecodeError&) {
    return D::rejected(RejectReason::kTruncated);
  }
  return D::accepted(std::move(s));
}

void SecureGroupMember::reject_frame(RejectReason reason, std::size_t wire_size,
                                     bool recoverable) {
  ++frames_rejected_;
  if (obs::MetricsRegistry* mr = obs::metrics()) {
    const std::string proto = to_string(config_.protocol);
    mr->counter("frames_rejected/" + proto + "/" + to_string(reason)).add();
    mr->histogram("frames_rejected_bytes/" + proto)
        .observe(static_cast<double>(wire_size));
  }
  if (recoverable) schedule_recovery();
}

void SecureGroupMember::schedule_recovery() {
  // A rejected frame on the protocol path may have replaced an honest frame
  // the agreement needed. Give the protocol a grace delay to converge on its
  // own; if it is still in flight at this epoch, request a rekey. One
  // recovery per epoch: the rekey changes the epoch, so a repeat at the same
  // epoch means this recovery is already pending. The delay starts at
  // recovery_delay_ms and backs off exponentially (with seeded jitter)
  // across the consecutive failed recoveries of one convergence episode, so
  // a group fighting a persistent corruptor spaces its rekey storm out
  // instead of burning the whole 8-attempt budget at a fixed cadence.
  if (!view_ || last_recovery_epoch_ == epoch_) return;
  last_recovery_epoch_ = epoch_;
  const std::uint64_t epoch = epoch_;
  const double delay =
      recovery_backoff_ms(config_.recovery_delay_ms, config_.recovery_backoff_cap_ms,
                          recovery_attempts_, config_.seed, self_, epoch);
  net_.simulator().after(delay, [this, alive = alive_, epoch] {
    if (!*alive || epoch_ != epoch) return;
    if (!protocol_->in_flight()) return;
    if (recovery_attempts_ >= kMaxRecoveryAttempts) return;
    ++recovery_attempts_;
    ++recoveries_;
    if (obs::MetricsRegistry* mr = obs::metrics())
      mr->counter("member/recoveries").add();
    request_rekey();
  });
}

void SecureGroupMember::note_frame_rejected(RejectReason reason) {
  // Protocol-level rejection (validate_and_decode or a semantic check inside
  // the handler) for the frame currently in hand.
  reject_frame(reason, current_frame_size_, /*recoverable=*/true);
}

void SecureGroupMember::on_message(const std::string& group, ProcessId sender,
                                   const Bytes& payload) {
  if (group != config_.group) return;
  Decoded<OuterFrame> decoded;
  {
    obs::WallScope wall("serde/frame_decode");
    decoded = validate_and_decode_frame(payload);
  }
  if (!decoded.ok()) {
    reject_frame(decoded.reason, payload.size(), /*recoverable=*/true);
    end_handler();
    return;
  }
  OuterFrame& f = decoded.value;
  const std::uint64_t msg_epoch = f.epoch;

  if (f.kind == static_cast<std::uint8_t>(WireKind::kProtocol)) {
    if (msg_epoch > epoch_ + kMaxEpochWindow) {
      // No honest sender runs this far ahead; do not let hostile epochs
      // park frames in the future buffer.
      reject_frame(RejectReason::kEpochFarFuture, payload.size(), true);
      end_handler();
      return;
    }
    if (msg_epoch > epoch_) {
      // The sender already installed a newer view. Buffer the frame until
      // our own install lands (signature is verified at replay).
      std::size_t buffered = 0;
      for (const auto& [e, v] : future_) buffered += v.size();
      if (buffered < kMaxFutureBuffered)
        future_[msg_epoch].emplace_back(sender, payload);
      end_handler();
      return;
    }
    if (msg_epoch < epoch_) {
      // Stale instance: a view change aborted the agreement this frame
      // belongs to. Discarding it is the other half of the restart rule.
      ++stale_dropped_;
      if (obs::MetricsRegistry* mr = obs::metrics())
        mr->counter("member/stale_dropped").add();
      reject_frame(RejectReason::kEpochStale, payload.size(), false);
      end_handler();
      return;
    }
    if (f.claimed_sender != sender) {
      reject_frame(RejectReason::kSenderMismatch, payload.size(), true);
      end_handler();
      return;
    }
    if (view_ && !view_->contains(sender)) {
      reject_frame(RejectReason::kUnknownSender, payload.size(), true);
      end_handler();
      return;
    }
    if (sender == self_) {
      // Loopback integrity: my own frame cannot be verified against the PKI
      // more cheaply than against my own record of what I sent. A mismatch
      // means the wire was tampered in transit.
      auto it = sent_wires_.begin();
      for (; it != sent_wires_.end(); ++it)
        if (it->second == payload) break;
      if (it == sent_wires_.end()) {
        reject_frame(RejectReason::kLoopbackMismatch, payload.size(), true);
        end_handler();
        return;
      }
      sent_wires_.erase(it);
    } else if (config_.verify_signatures) {
      // Reconstruct the signed prefix and verify.
      Writer signed_part;
      signed_part.u8(f.kind);
      signed_part.u64(msg_epoch);
      signed_part.u32(f.claimed_sender);
      signed_part.bytes(f.body);
      const VerifyKey* pub = pki_->find(sender);
      if (pub == nullptr) {
        reject_frame(RejectReason::kUnknownSender, payload.size(), true);
        end_handler();
        return;
      }
      if (!crypto_.verify(*pub, signed_part.data(), f.sig)) {
        reject_frame(RejectReason::kBadSignature, payload.size(), true);
        end_handler();
        return;
      }
    }
    current_frame_size_ = payload.size();
    try {
      protocol_->on_message(sender, f.body);
    } catch (const CheckFailure&) {
      // An internal invariant tripped while handling an untrusted frame.
      // The member must survive it: count, recover, move on.
      reject_frame(RejectReason::kInternalCheck, payload.size(), true);
    } catch (const DecodeError&) {
      // Unreachable once every protocol decodes via validate_and_decode;
      // kept as a belt-and-braces guarantee that no frame throws past here.
      reject_frame(RejectReason::kTruncated, payload.size(), true);
    }
    end_handler();
    return;
  }

  // WireKind::kData
  if (sender == self_) return;
  if (f.claimed_sender != sender) {
    reject_frame(RejectReason::kSenderMismatch, payload.size(), false);
    end_handler();
    return;
  }
  if (msg_epoch != epoch_ || msg_epoch != key_epoch_ || !has_key()) {
    reject_frame(msg_epoch > epoch_ ? RejectReason::kEpochFarFuture
                                    : RejectReason::kEpochStale,
                 payload.size(), false);
    end_handler();
    return;
  }
  Decoded<DataBody> data = validate_and_decode_data(f.body);
  if (!data.ok()) {
    reject_frame(data.reason, payload.size(), false);
    end_handler();
    return;
  }
  // Replay protection: data frames carry a strictly increasing per-sender
  // sequence number (the "sequence numbers which identify the particular
  // protocol run" of section 3.2, applied to the data plane). The agreed
  // stream already delivers in order, so any non-increasing number is a
  // replay or an injection.
  // Senders number frames from 1, so a fresh filter entry (0) admits
  // the first frame and rejects a forged sequence number of 0.
  std::uint64_t& last = data_seq_seen_[sender];
  if (data.value.seq <= last) {
    reject_frame(RejectReason::kReplay, payload.size(), false);
    end_handler();
    return;
  }
  // The MAC binds epoch and sequence number (as associated data), so a
  // tampered sequence number cannot poison the replay filter.
  Writer aad;
  aad.u64(msg_epoch);
  aad.u64(data.value.seq);
  std::optional<Bytes> plain = open(data.value.sealed, aad.take());
  end_handler();
  if (plain) {
    last = data.value.seq;
    if (data_listener_) data_listener_(sender, *plain);
  } else {
    reject_frame(RejectReason::kBadMac, payload.size(), false);
  }
}

// ---------------------------------------------------------------------------
// data plane

Bytes SecureGroupMember::seal(const Bytes& plaintext, const Bytes& aad) {
  SGK_CHECK(has_key());
  const ScopedSubkey enc_key(key_.reveal(0, 16));
  const ScopedSubkey mac_key(key_.reveal(32, 32));
  Bytes iv = crypto_.random_bytes(16);
  Bytes ct = aes128_cbc_encrypt(enc_key.b, iv, plaintext);
  Writer mac_input;
  mac_input.bytes(iv);
  mac_input.bytes(ct);
  mac_input.bytes(aad);
  Bytes mac;
  {
    obs::WallScope wall("crypto/hash");
    mac = hmac_sha256(mac_key.b, mac_input.data());
  }
  crypto_.charge_symmetric(plaintext.size() + 48);
  Writer w;
  w.bytes(iv);
  w.bytes(ct);
  w.bytes(mac);
  return w.take();
}

std::optional<Bytes> SecureGroupMember::open(const Bytes& sealed, const Bytes& aad) {
  if (!has_key()) return std::nullopt;
  Decoded<SealedParts> parts = validate_and_decode_sealed(sealed);
  if (!parts.ok()) return std::nullopt;
  const SealedParts& s = parts.value;
  try {
    const ScopedSubkey enc_key(key_.reveal(0, 16));
    const ScopedSubkey mac_key(key_.reveal(32, 32));
    Writer mac_input;
    mac_input.bytes(s.iv);
    mac_input.bytes(s.ct);
    mac_input.bytes(aad);
    crypto_.charge_symmetric(s.ct.size() + 48);
    Bytes expect_mac;
    {
      obs::WallScope wall("crypto/hash");
      expect_mac = hmac_sha256(mac_key.b, mac_input.data());
    }
    if (!ct_equal(expect_mac, s.mac)) return std::nullopt;
    return aes128_cbc_decrypt(enc_key.b, s.iv, s.ct);
  } catch (const std::exception&) {
    // The cipher layer can still object (e.g. a ciphertext that is not a
    // whole number of blocks slipped past the MAC in a chosen-key setting).
    return std::nullopt;
  }
}

void SecureGroupMember::send_data(const Bytes& plaintext) {
  SGK_CHECK(has_key());
  const std::uint64_t seq = ++data_seq_sent_;
  Writer aad;
  aad.u64(key_epoch_);
  aad.u64(seq);
  Writer body;
  body.u64(seq);
  body.bytes(seal(plaintext, aad.take()));
  Writer w;
  w.u8(static_cast<std::uint8_t>(WireKind::kData));
  w.u64(key_epoch_);
  w.u32(self_);
  w.bytes(body.take());
  queue(SendKind::kMulticast, kNoProcess, w.take());
  end_handler();
}

}  // namespace sgk
