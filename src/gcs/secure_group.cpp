#include "gcs/secure_group.h"

#include "crypto/aes.h"
#include "crypto/hmac.h"
#include "crypto/sha256.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/check.h"

namespace sgk {

namespace {
const RsaPrivateKey& default_rsa(ProcessId self) {
  return RsaPrivateKey::test_key(static_cast<int>(self % 4));
}

/// Plain sub-key copy whose storage is wiped when the enclosing scope ends
/// (the cipher/MAC primitives take `Bytes`).
struct ScopedSubkey {
  Bytes b;
  explicit ScopedSubkey(Bytes bytes) : b(std::move(bytes)) {}
  ~ScopedSubkey() { secure_zero(b.data(), b.size()); }
};
}  // namespace

SecureGroupMember::SecureGroupMember(SpreadNetwork& net, ProcessId self,
                                     std::shared_ptr<Pki> pki, MemberConfig config)
    : net_(net),
      self_(self),
      pki_(std::move(pki)),
      config_(std::move(config)),
      crypto_(dh_group(config_.dh_bits),
              config_.rsa ? *config_.rsa : default_rsa(self),
              config_.cost,
              Drbg(config_.seed * 0x9e3779b97f4a7c15ULL + self, "member"),
              config_.signature) {
  pki_->enroll(self_, crypto_.verify_key());
  net_.attach(self_, this);
  protocol_ = make_protocol(config_.protocol, *this);
}

SecureGroupMember::~SecureGroupMember() {
  *alive_ = false;
  net_.attach(self_, nullptr);
}

std::string SecureGroupMember::key_fingerprint() const {
  if (!has_key()) return {};
  Sha256 h;
  h.update(str_bytes("sgk-key-fingerprint"));
  const ScopedSubkey block(key_.reveal());
  h.update(block.b);
  Bytes digest = h.finish();
  digest.resize(8);
  return to_hex(digest);
}

void SecureGroupMember::join() { net_.join_group(config_.group, self_); }

void SecureGroupMember::leave() { net_.leave_group(config_.group, self_); }

void SecureGroupMember::request_rekey() {
  net_.refresh_group(config_.group, self_);
}

// ---------------------------------------------------------------------------
// framing

Bytes SecureGroupMember::frame_and_sign(WireKind kind, const Bytes& body) {
  Writer signed_part;
  signed_part.u8(static_cast<std::uint8_t>(kind));
  signed_part.u64(epoch_);
  signed_part.u32(self_);
  signed_part.bytes(body);
  Bytes to_sign = signed_part.take();
  Bytes sig = crypto_.sign(to_sign);
  Writer w;
  w.raw(to_sign);
  w.bytes(sig);
  return w.take();
}

void SecureGroupMember::queue(SendKind kind, ProcessId dest, Bytes wire) {
  outbound_.push_back(Outbound{kind, dest, std::move(wire)});
}

void SecureGroupMember::send_multicast(Bytes body) {
  queue(SendKind::kMulticast, kNoProcess, frame_and_sign(WireKind::kProtocol, body));
}

void SecureGroupMember::send_ordered(ProcessId dest, Bytes body) {
  queue(SendKind::kOrdered, dest, frame_and_sign(WireKind::kProtocol, body));
}

void SecureGroupMember::send_unicast(ProcessId dest, Bytes body) {
  queue(SendKind::kUnicast, dest, frame_and_sign(WireKind::kProtocol, body));
}

void SecureGroupMember::mark_phase(const char* phase_name) {
  SGK_TRACE(tr->phase(phase_name, net_.simulator().now()));
}

void SecureGroupMember::mark_point(const char* point_name) {
  SGK_TRACE(if (tr->event_active()) {
    obs::SpanId mark = tr->instant(point_name, net_.simulator().now(),
                                   static_cast<std::uint32_t>(
                                       net_.machine_of(self_) + 1));
    tr->attr(mark, "member", obs::Json(static_cast<std::uint64_t>(self_)));
  });
}

void SecureGroupMember::deliver_key(const BigInt& group_secret) {
  // Derive a 64-byte key block (16B AES key, 16B IV seed, 32B HMAC key).
  Bytes material = group_secret.to_bytes();
  Writer info;
  info.str(config_.group);
  info.u64(epoch_);
  const std::size_t material_size = material.size();
  pending_key_ = SecureBytes(
      hkdf_sha256(material, str_bytes("sgk-group-key"), info.take(), 64));
  secure_zero(material.data(), material.size());
  crypto_.charge_symmetric(material_size + 64);
  protocol_->note_key_delivered();
}

void SecureGroupMember::end_handler() {
  const double cost = crypto_.take_charge();
  std::vector<Outbound> out = std::move(outbound_);
  outbound_.clear();
  std::optional<SecureBytes> key = std::move(pending_key_);
  pending_key_.reset();
  const std::uint64_t epoch = epoch_;

  if (cost == 0 && out.empty() && !key) return;

  net_.cpu_of(self_).submit(
      self_, cost,
      [this, alive = alive_, out = std::move(out), key = std::move(key),
       epoch]() mutable {
        if (!*alive) return;
        for (Outbound& o : out) {
          // Account for traffic at release time.
          crypto_.counters().bytes_sent += o.wire.size();
          switch (o.kind) {
            case SendKind::kMulticast:
              ++crypto_.counters().multicasts;
              net_.multicast(config_.group, self_, std::move(o.wire));
              break;
            case SendKind::kOrdered:
              ++crypto_.counters().ordered_sends;
              net_.ordered_send(config_.group, self_, o.dest, std::move(o.wire));
              break;
            case SendKind::kUnicast:
              ++crypto_.counters().unicasts;
              net_.unicast(config_.group, self_, o.dest, std::move(o.wire));
              break;
          }
        }
        if (key) {
          key_ = std::move(*key);
          key_epoch_ = epoch;
          key_time_ = net_.simulator().now();
          SGK_TRACE(if (tr->event_active()) {
            obs::SpanId mark = tr->instant(
                "key_install", key_time_,
                static_cast<std::uint32_t>(net_.machine_of(self_) + 1));
            tr->attr(mark, "member",
                     obs::Json(static_cast<std::uint64_t>(self_)));
            tr->attr(mark, "epoch", obs::Json(epoch));
          });
          if (key_listener_) key_listener_(key_time_, key_epoch_);
        }
      });
}

// ---------------------------------------------------------------------------
// GCS callbacks

void SecureGroupMember::on_view(const std::string& group, const View& view,
                                const ViewDelta& delta) {
  if (group != config_.group) return;
  // The agreed stream delivers views in increasing id order; anything else
  // is a stale straggler and must not roll the epoch back.
  if (view_ && view.view_id <= epoch_) {
    ++stale_dropped_;
    return;
  }
  if (protocol_->in_flight()) {
    // Cascaded membership event: this view interrupts a running agreement.
    // The protocol wrapper aborts and restarts it on the new membership.
    if (obs::MetricsRegistry* mr = obs::metrics())
      mr->counter("member/agreement_restarts").add();
  }
  view_ = view;
  view_time_ = net_.simulator().now();
  epoch_ = view.view_id;
  protocol_->on_view(view, delta);
  end_handler();

  // Replay protocol frames that raced ahead of this view install, then drop
  // anything at or below the now-current epoch.
  std::vector<std::pair<ProcessId, Bytes>> replay;
  auto it = future_.find(epoch_);
  if (it != future_.end()) replay = std::move(it->second);
  future_.erase(future_.begin(), future_.upper_bound(epoch_));
  for (auto& [sender, payload] : replay) on_message(group, sender, payload);
}

void SecureGroupMember::on_message(const std::string& group, ProcessId sender,
                                   const Bytes& payload) {
  if (group != config_.group) return;
  try {
    Reader outer(payload);
    const auto kind = static_cast<WireKind>(outer.u8());
    const std::uint64_t msg_epoch = outer.u64();
    const ProcessId claimed_sender = outer.u32();
    Bytes body = outer.bytes();

    if (kind == WireKind::kProtocol) {
      if (msg_epoch > epoch_) {
        // The sender already installed a newer view. Buffer the frame until
        // our own install lands (signature is verified at replay).
        std::size_t buffered = 0;
        for (const auto& [e, v] : future_) buffered += v.size();
        if (buffered < kMaxFutureBuffered)
          future_[msg_epoch].emplace_back(sender, payload);
        end_handler();
        return;
      }
      if (msg_epoch < epoch_) {
        // Stale instance: a view change aborted the agreement this frame
        // belongs to. Discarding it is the other half of the restart rule.
        ++stale_dropped_;
        if (obs::MetricsRegistry* mr = obs::metrics())
          mr->counter("member/stale_dropped").add();
        end_handler();
        return;
      }
      if (claimed_sender != sender) {
        end_handler();
        return;
      }
      if (sender != self_) {
        // Reconstruct the signed prefix and verify.
        Bytes sig = outer.bytes();
        Writer signed_part;
        signed_part.u8(static_cast<std::uint8_t>(kind));
        signed_part.u64(msg_epoch);
        signed_part.u32(claimed_sender);
        signed_part.bytes(body);
        const VerifyKey* pub = pki_->find(sender);
        if (pub == nullptr || !crypto_.verify(*pub, signed_part.data(), sig)) {
          end_handler();
          return;
        }
      }
      protocol_->on_message(sender, body);
      end_handler();
      return;
    }

    if (kind == WireKind::kData) {
      if (sender == self_) return;
      if (msg_epoch != epoch_ || msg_epoch != key_epoch_ || !has_key()) {
        end_handler();
        return;
      }
      // Replay protection: data frames carry a strictly increasing per-sender
      // sequence number (the "sequence numbers which identify the particular
      // protocol run" of section 3.2, applied to the data plane). The agreed
      // stream already delivers in order, so any non-increasing number is a
      // replay or an injection.
      Reader body_reader(body);
      const std::uint64_t seq = body_reader.u64();
      Bytes sealed = body_reader.bytes();
      // Senders number frames from 1, so a fresh filter entry (0) admits
      // the first frame and rejects a forged sequence number of 0.
      std::uint64_t& last = data_seq_seen_[sender];
      if (seq <= last) {
        end_handler();
        return;
      }
      std::optional<Bytes> plain = open(sealed);
      end_handler();
      if (plain) {
        last = seq;
        if (data_listener_) data_listener_(sender, *plain);
      }
      return;
    }
  } catch (const DecodeError&) {
    end_handler();  // malformed message: drop, keep charges
  }
}

// ---------------------------------------------------------------------------
// data plane

Bytes SecureGroupMember::seal(const Bytes& plaintext) {
  SGK_CHECK(has_key());
  const ScopedSubkey enc_key(key_.reveal(0, 16));
  const ScopedSubkey mac_key(key_.reveal(32, 32));
  Bytes iv = crypto_.random_bytes(16);
  Bytes ct = aes128_cbc_encrypt(enc_key.b, iv, plaintext);
  Writer mac_input;
  mac_input.bytes(iv);
  mac_input.bytes(ct);
  Bytes mac = hmac_sha256(mac_key.b, mac_input.data());
  crypto_.charge_symmetric(plaintext.size() + 48);
  Writer w;
  w.bytes(iv);
  w.bytes(ct);
  w.bytes(mac);
  return w.take();
}

std::optional<Bytes> SecureGroupMember::open(const Bytes& sealed) {
  if (!has_key()) return std::nullopt;
  try {
    Reader r(sealed);
    Bytes iv = r.bytes();
    Bytes ct = r.bytes();
    Bytes mac = r.bytes();
    const ScopedSubkey enc_key(key_.reveal(0, 16));
    const ScopedSubkey mac_key(key_.reveal(32, 32));
    Writer mac_input;
    mac_input.bytes(iv);
    mac_input.bytes(ct);
    crypto_.charge_symmetric(ct.size() + 48);
    if (!ct_equal(hmac_sha256(mac_key.b, mac_input.data()), mac))
      return std::nullopt;
    return aes128_cbc_decrypt(enc_key.b, iv, ct);
  } catch (const std::exception&) {
    return std::nullopt;
  }
}

void SecureGroupMember::send_data(const Bytes& plaintext) {
  SGK_CHECK(has_key());
  Writer body;
  body.u64(++data_seq_sent_);
  body.bytes(seal(plaintext));
  Writer w;
  w.u8(static_cast<std::uint8_t>(WireKind::kData));
  w.u64(key_epoch_);
  w.u32(self_);
  w.bytes(body.take());
  queue(SendKind::kMulticast, kNoProcess, w.take());
  end_handler();
}

}  // namespace sgk
