#include "util/secure_bytes.h"

#include <stdexcept>

namespace sgk {

void secure_zero(void* p, std::size_t len) noexcept {
  volatile std::uint8_t* q = static_cast<volatile std::uint8_t*>(p);
  for (std::size_t i = 0; i < len; ++i) q[i] = 0;
}

SecureBytes::SecureBytes(std::size_t n) { assign(nullptr, n); }

SecureBytes::SecureBytes(const std::uint8_t* p, std::size_t n) { assign(p, n); }

SecureBytes::SecureBytes(const Bytes& b) { assign(b.data(), b.size()); }

SecureBytes::SecureBytes(Bytes&& b) {
  assign(b.data(), b.size());
  secure_zero(b.data(), b.size());
  b.clear();
}

SecureBytes::SecureBytes(const SecureBytes& o) { assign(o.data(), o.size_); }

SecureBytes::SecureBytes(SecureBytes&& o) noexcept {
  assign(o.data(), o.size_);
  o.wipe();
}

SecureBytes& SecureBytes::operator=(const SecureBytes& o) {
  if (this != &o) {
    wipe();
    assign(o.data(), o.size_);
  }
  return *this;
}

SecureBytes& SecureBytes::operator=(SecureBytes&& o) noexcept {
  if (this != &o) {
    wipe();
    assign(o.data(), o.size_);
    o.wipe();
  }
  return *this;
}

SecureBytes::~SecureBytes() { wipe(); }

void SecureBytes::wipe() noexcept {
  if (heap_ != nullptr) {
    secure_zero(heap_, size_);
    delete[] heap_;
    heap_ = nullptr;
  } else {
    secure_zero(inline_, sizeof(inline_));
  }
  size_ = 0;
}

Bytes SecureBytes::reveal(std::size_t off, std::size_t len) const {
  if (off > size_ || len > size_ - off)
    throw std::out_of_range("SecureBytes::reveal: range outside buffer");
  const std::uint8_t* p = data() + off;
  return Bytes(p, p + len);
}

void SecureBytes::assign(const std::uint8_t* p, std::size_t n) {
  std::uint8_t* dst = inline_;
  if (n > kInlineCapacity) {
    heap_ = new std::uint8_t[n];
    dst = heap_;
  }
  if (p != nullptr) {
    for (std::size_t i = 0; i < n; ++i) dst[i] = p[i];
  } else {
    for (std::size_t i = 0; i < n; ++i) dst[i] = 0;
  }
  size_ = n;
}

namespace {
bool ct_equal_raw(const std::uint8_t* a, std::size_t an, const std::uint8_t* b,
                  std::size_t bn) {
  if (an != bn) return false;
  std::uint8_t acc = 0;
  for (std::size_t i = 0; i < an; ++i) acc = static_cast<std::uint8_t>(acc | (a[i] ^ b[i]));
  return acc == 0;
}
}  // namespace

bool ct_equal(const SecureBytes& a, const SecureBytes& b) {
  return ct_equal_raw(a.data(), a.size(), b.data(), b.size());
}

bool ct_equal(const SecureBytes& a, const Bytes& b) {
  return ct_equal_raw(a.data(), a.size(), b.data(), b.size());
}

bool ct_equal(const Bytes& a, const SecureBytes& b) {
  return ct_equal_raw(a.data(), a.size(), b.data(), b.size());
}

}  // namespace sgk
