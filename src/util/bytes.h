// Byte-buffer helpers shared across the library.
//
// `Bytes` is the canonical octet-string type for keys, hashes, wire messages
// and ciphertexts. Helpers here keep hex conversion and constant-time
// comparison in one place.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace sgk {

using Bytes = std::vector<std::uint8_t>;

/// Encodes `data` as lowercase hex.
std::string to_hex(const Bytes& data);

/// Decodes a hex string (upper or lower case, no separators).
/// Throws std::invalid_argument on malformed input.
Bytes from_hex(std::string_view hex);

/// Constant-time equality for secret material. Returns false on length
/// mismatch without inspecting contents.
bool ct_equal(const Bytes& a, const Bytes& b);

/// Converts an ASCII string to bytes (no terminator).
Bytes str_bytes(std::string_view s);

/// XOR of two equal-length buffers. Throws std::invalid_argument otherwise.
Bytes xor_bytes(const Bytes& a, const Bytes& b);

}  // namespace sgk
