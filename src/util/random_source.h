// Abstract randomness source.
//
// Lower layers (bignum) consume randomness through this interface; the
// concrete deterministic DRBG lives in src/crypto. Keeping the interface here
// avoids a bignum -> crypto dependency cycle.
#pragma once

#include <cstddef>
#include <cstdint>

namespace sgk {

class RandomSource {
 public:
  virtual ~RandomSource() = default;

  /// Fills `out[0..len)` with random bytes.
  virtual void fill(std::uint8_t* out, std::size_t len) = 0;
};

}  // namespace sgk
