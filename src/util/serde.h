// Minimal binary serialization used for wire messages.
//
// All integers are big-endian. Variable-length fields are length-prefixed
// with u32. Decoding is bounds-checked; malformed input throws DecodeError.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>

#include "util/bytes.h"

namespace sgk {

class DecodeError : public std::runtime_error {
 public:
  explicit DecodeError(const std::string& what) : std::runtime_error(what) {}
};

/// Appends encoded fields to an internal buffer.
class Writer {
 public:
  void u8(std::uint8_t v);
  void u16(std::uint16_t v);
  void u32(std::uint32_t v);
  void u64(std::uint64_t v);
  /// Length-prefixed byte string.
  void bytes(const Bytes& v);
  /// Length-prefixed UTF-8/ASCII string.
  void str(std::string_view v);
  /// Raw bytes without a length prefix (caller knows the framing).
  void raw(const Bytes& v);

  const Bytes& data() const { return buf_; }
  Bytes take() { return std::move(buf_); }

 private:
  Bytes buf_;
};

/// Reads fields back in the order they were written.
class Reader {
 public:
  explicit Reader(const Bytes& data) : data_(data) {}

  std::uint8_t u8();
  std::uint16_t u16();
  std::uint32_t u32();
  std::uint64_t u64();
  Bytes bytes();
  std::string str();

  bool done() const { return pos_ == data_.size(); }
  std::size_t remaining() const { return data_.size() - pos_; }

 private:
  void need(std::size_t n) const;

  const Bytes& data_;
  std::size_t pos_ = 0;
};

}  // namespace sgk
