// Minimal binary serialization used for wire messages.
//
// All integers are big-endian. Variable-length fields are length-prefixed
// with u32. Decoding is bounds-checked; malformed input throws DecodeError.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>

#include "util/bytes.h"

namespace sgk {

class DecodeError : public std::runtime_error {
 public:
  explicit DecodeError(const std::string& what) : std::runtime_error(what) {}
};

/// A length prefix inconsistent with its payload or above a caller-imposed
/// cap (Reader::count). Distinct from plain truncation so validated decoders
/// can report a typed kBadLength rejection.
class LengthError : public DecodeError {
 public:
  explicit LengthError(const std::string& what) : DecodeError(what) {}
};

/// Appends encoded fields to an internal buffer.
class Writer {
 public:
  void u8(std::uint8_t v);
  void u16(std::uint16_t v);
  void u32(std::uint32_t v);
  void u64(std::uint64_t v);
  /// Length-prefixed byte string.
  void bytes(const Bytes& v);
  /// Length-prefixed UTF-8/ASCII string.
  void str(std::string_view v);
  /// Raw bytes without a length prefix (caller knows the framing).
  void raw(const Bytes& v);

  const Bytes& data() const { return buf_; }
  Bytes take() { return std::move(buf_); }

 private:
  Bytes buf_;
};

/// Reads fields back in the order they were written.
class Reader {
 public:
  explicit Reader(const Bytes& data) : data_(data) {}

  std::uint8_t u8();
  std::uint16_t u16();
  std::uint32_t u32();
  std::uint64_t u64();
  Bytes bytes();
  std::string str();

  /// Next byte without consuming it.
  std::uint8_t peek_u8() const;
  /// u32 element count, bounds-checked against both `cap` and the bytes
  /// actually left (each element occupies at least one byte), so a hostile
  /// length prefix cannot drive a huge allocation or loop.
  std::uint32_t count(std::uint32_t cap);
  /// Throws unless every byte has been consumed. Validated decoders call
  /// this last so trailing garbage is rejected, not ignored.
  void expect_done() const;

  bool done() const { return pos_ == data_.size(); }
  std::size_t remaining() const { return data_.size() - pos_; }

 private:
  void need(std::size_t n) const;

  const Bytes& data_;
  std::size_t pos_ = 0;
};

}  // namespace sgk
