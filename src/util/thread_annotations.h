// Lightweight lock-discipline annotations, checked twice:
//
//   1. by gka_lint's GKA5xx whole-program lock-set analysis (which reads the
//      un-expanded SGK_* tokens straight from the lexer model, so the checks
//      run on every compiler and in CI's static-analysis job), and
//   2. by Clang's native -Wthread-safety analysis when the tree is built with
//      clang and SGK_THREAD_SAFETY=ON (the macros expand to the attributes
//      below; under any other compiler they expand to nothing).
//
// Usage:
//
//   class Registry {
//    public:
//     void bump() SGK_REQUIRES(mu_);          // caller must hold mu_
//     void lock() SGK_ACQUIRE(mu_);           // takes mu_; caller releases
//     void unlock() SGK_RELEASE(mu_);
//     std::mutex mu_;
//    private:
//     int count_ SGK_GUARDED_BY(mu_) = 0;     // only touch with mu_ held
//   };
//
//   class Simulator {
//     SGK_CONFINED_TO_RUN;  // classification: owned by one run, never shared
//     ...
//   };
//
// SGK_CONFINED_TO_RUN is gka_lint-only (GKA504): it marks a mutable sim/gcs
// structure as deliberately confined to a single simulation run / worker
// thread, so it needs no mutex. Every mutable structure under src/sim and
// src/gcs must either guard its fields with SGK_GUARDED_BY or carry this
// marker — unclassified shared state is a GKA504 error.
#pragma once

#if defined(__clang__)
#define SGK_THREAD_ANNOTATION_ATTRIBUTE(x) __attribute__((x))
#else
#define SGK_THREAD_ANNOTATION_ATTRIBUTE(x)  // expands to nothing
#endif

/// Marks a type as a lockable capability (e.g. a mutex wrapper).
#define SGK_CAPABILITY(x) SGK_THREAD_ANNOTATION_ATTRIBUTE(capability(x))

/// Data member that must only be read or written with `x` held.
#define SGK_GUARDED_BY(x) SGK_THREAD_ANNOTATION_ATTRIBUTE(guarded_by(x))

/// Pointer member whose *pointee* is guarded by `x`.
#define SGK_PT_GUARDED_BY(x) SGK_THREAD_ANNOTATION_ATTRIBUTE(pt_guarded_by(x))

/// Function that requires the caller to already hold the capability.
#define SGK_REQUIRES(...) \
  SGK_THREAD_ANNOTATION_ATTRIBUTE(requires_capability(__VA_ARGS__))

/// Function that acquires the capability and returns with it held.
#define SGK_ACQUIRE(...) \
  SGK_THREAD_ANNOTATION_ATTRIBUTE(acquire_capability(__VA_ARGS__))

/// Function that releases a capability the caller holds on entry.
#define SGK_RELEASE(...) \
  SGK_THREAD_ANNOTATION_ATTRIBUTE(release_capability(__VA_ARGS__))

/// Function that must NOT be called with the capability held (deadlock fence).
#define SGK_EXCLUDES(...) \
  SGK_THREAD_ANNOTATION_ATTRIBUTE(locks_excluded(__VA_ARGS__))

/// Escape hatch for functions the analysis cannot model; use sparingly and
/// justify in a comment.
#define SGK_NO_THREAD_SAFETY_ANALYSIS \
  SGK_THREAD_ANNOTATION_ATTRIBUTE(no_thread_safety_analysis)

/// gka_lint-only classification marker (GKA504): this mutable structure is
/// confined to a single simulation run / worker thread by construction and
/// intentionally carries no locks. Expands to a harmless declaration so it
/// can sit inside a class body followed by ';'.
#define SGK_CONFINED_TO_RUN \
  static_assert(true, "sgk: confined to one simulation run")
