// Lightweight invariant checking.
//
// SGK_CHECK is an always-on assertion for invariants whose violation means a
// programming error inside the library; it throws (rather than aborts) so
// tests can exercise failure paths.
#pragma once

#include <stdexcept>
#include <string>

namespace sgk {

class CheckFailure : public std::logic_error {
 public:
  explicit CheckFailure(const std::string& what) : std::logic_error(what) {}
};

namespace detail {
[[noreturn]] inline void check_failed(const char* expr, const char* file,
                                      int line) {
  throw CheckFailure(std::string("check failed: ") + expr + " at " + file +
                     ":" + std::to_string(line));
}
}  // namespace detail

}  // namespace sgk

#define SGK_CHECK(expr)                                          \
  do {                                                           \
    if (!(expr)) ::sgk::detail::check_failed(#expr, __FILE__, __LINE__); \
  } while (false)
