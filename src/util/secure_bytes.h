// Zeroizing secret-byte storage.
//
// `SecureBytes` is the mandatory container for key material at rest: derived
// group-key blocks, KDF outputs and symmetric sub-keys. It wipes its storage
// on destruction, on move-from and on reassignment, so secrets do not linger
// in freed heap pages. Buffers up to kInlineCapacity bytes (every key this
// library derives) live inline in the object, which makes the wipe observable
// and keeps small secrets off the heap entirely.
//
// Comparison is deliberately not provided via operator==: compare secrets
// with ct_equal (constant time) only. gka_lint rule GKA001 enforces this.
#pragma once

#include <cstddef>
#include <cstdint>

#include "util/bytes.h"

namespace sgk {

/// Zeroes `len` bytes at `p` in a way the optimizer must not elide (volatile
/// writes). Safe on len == 0 with p == nullptr.
void secure_zero(void* p, std::size_t len) noexcept;

class SecureBytes {
 public:
  /// Secrets at or below this size (all session keys, 160-bit exponents and
  /// the 64-byte derived key block) are stored inline in the object.
  static constexpr std::size_t kInlineCapacity = 64;

  SecureBytes() noexcept = default;
  /// `n` zero bytes.
  explicit SecureBytes(std::size_t n);
  SecureBytes(const std::uint8_t* p, std::size_t n);
  /// Copies `b`; the caller still owns (and should wipe) the source.
  explicit SecureBytes(const Bytes& b);
  /// Adopts `b`'s contents and wipes the source buffer before returning, so
  /// the only live copy of the secret is the SecureBytes.
  explicit SecureBytes(Bytes&& b);

  SecureBytes(const SecureBytes& o);
  SecureBytes(SecureBytes&& o) noexcept;
  SecureBytes& operator=(const SecureBytes& o);
  SecureBytes& operator=(SecureBytes&& o) noexcept;
  ~SecureBytes();

  std::uint8_t* data() noexcept { return heap_ ? heap_ : inline_; }
  const std::uint8_t* data() const noexcept { return heap_ ? heap_ : inline_; }
  std::size_t size() const noexcept { return size_; }
  bool empty() const noexcept { return size_ == 0; }
  std::uint8_t operator[](std::size_t i) const { return data()[i]; }

  /// Zeroes the contents and releases storage; size() becomes 0.
  void wipe() noexcept;

  /// Explicit escape hatch: plain copy of [off, off+len) for APIs that take
  /// `Bytes` (cipher/MAC keys). The caller is responsible for wiping the
  /// returned buffer; prefer keeping material in SecureBytes.
  /// Throws std::out_of_range when the range does not fit.
  Bytes reveal(std::size_t off, std::size_t len) const;
  /// Plain copy of the whole buffer.
  Bytes reveal() const { return reveal(0, size_); }

  // Secrets are compared with ct_equal only.
  bool operator==(const SecureBytes&) const = delete;
  bool operator!=(const SecureBytes&) const = delete;

 private:
  void assign(const std::uint8_t* p, std::size_t n);

  std::size_t size_ = 0;
  std::uint8_t* heap_ = nullptr;  // nullptr while the inline buffer is used
  std::uint8_t inline_[kInlineCapacity] = {};
};

/// Constant-time equality; false on length mismatch without inspecting
/// contents (same contract as ct_equal(Bytes, Bytes)).
bool ct_equal(const SecureBytes& a, const SecureBytes& b);
bool ct_equal(const SecureBytes& a, const Bytes& b);
bool ct_equal(const Bytes& a, const SecureBytes& b);

}  // namespace sgk
