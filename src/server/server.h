// GroupServer: hosts N independent secure groups over one shared daemon
// topology shape and executes them in parallel across shard workers with
// bit-for-bit deterministic output.
//
// Execution model (docs/multi_group.md has the long form):
//  * Every group gets its own seeded schedule (Simulator + SpreadNetwork +
//    churn plan derived from fault_hash(seed, gid)), a disjoint process-id
//    block, and a pin to shard gid % threads.
//  * Time advances on a fixed epoch grid (epoch_window_ms). Each epoch, the
//    ShardExecutor runs every shard once: a worker lazily constructs hosts
//    whose onboard time has arrived and advances each unfinished host of its
//    shard to the epoch end (skipping hosts whose next_event_time() lies
//    beyond it — conservative lookahead). The epoch barrier then orders all
//    worker writes before the next epoch and before main-thread reads.
//  * Results are aggregated on the main thread in ascending group-id order,
//    so reports are byte-identical for any thread count.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "gcs/secure_group.h"
#include "gcs/spread.h"
#include "obs/json.h"
#include "server/group_directory.h"
#include "server/group_host.h"
#include "server/shard_executor.h"
#include "sim/topology.h"
#include "util/thread_annotations.h"

namespace sgk::server {

struct ServerConfig {
  // Fixed before run(); read-only once workers start.
  SGK_CONFINED_TO_RUN;
  std::size_t groups = 16;
  std::size_t members_per_group = 4;
  int churn_events = 4;
  int threads = 1;
  std::uint64_t seed = 1;
  /// Groups onboard staggered: group g starts at g * onboard_gap_ms.
  double onboard_gap_ms = 1.0;
  /// Virtual-time epoch window between executor barriers.
  double epoch_window_ms = 50.0;
  /// Protocol mix, assigned round-robin by group id.
  std::vector<ProtocolKind> protocols = {ProtocolKind::kGdh,
                                         ProtocolKind::kCkd,
                                         ProtocolKind::kTgdh,
                                         ProtocolKind::kStr,
                                         ProtocolKind::kBd};
  DhBits dh_bits = DhBits::k512;
  /// Machines in every group's (private) LAN topology.
  int machines_per_group = 4;
  /// Wire-fault rates applied inside every group's network.
  fault::FaultRates rates;
  double min_gap_ms = 5.0;
  double max_gap_ms = 40.0;
  double grace_ms = 30000.0;
  /// Churn schedule shape for every group (kUniform = legacy plans) and the
  /// storm parameters the non-uniform shapes read (GroupSpec docs).
  StormKind storm = StormKind::kUniform;
  double mean_gap_ms = 10.0;
  int burst_size = 8;
  double intra_gap_ms = 1.0;
  double idle_gap_ms = 400.0;
  /// Rekey batching applied to every group's network (default disabled).
  BatchConfig batch;
  /// Also fold each group's registry under a "group/<name>/" metric prefix
  /// (aggregate-only by default: 1000 groups would mean 1000x the labels).
  bool per_group_metrics = false;
};

struct ServerResult {
  // Built on the main thread after the run.
  SGK_CONFINED_TO_RUN;
  std::vector<GroupReport> groups;  // ascending group id
  std::size_t groups_hosted = 0;
  std::size_t groups_converged = 0;
  std::uint64_t epochs_executed = 0;     // executor barriers crossed
  double virtual_makespan_ms = 0.0;      // max settled_ms over groups
  std::uint64_t key_installs = 0;        // key-listener fires, all groups
  std::uint64_t rekeys = 0;              // distinct keyed epochs beyond first
  double onboard_p50_ms = 0.0;           // onboard latency quantiles
  double onboard_p99_ms = 0.0;
  double event_to_key_p50_ms = 0.0;      // per-install latency quantiles
  double event_to_key_p99_ms = 0.0;
  double groups_per_sec = 0.0;           // converged groups / virtual second
  double rekeys_per_sec = 0.0;           // rekeys / virtual second
  std::uint64_t shared_messages_stamped = 0;  // SharedSpreadStats totals
  std::uint64_t shared_processes = 0;
  // Rekey-pipeline rollup (all zeros when batching is disabled).
  std::uint64_t events_applied = 0;     // churn ops that took effect
  std::uint64_t batch_events = 0;       // events noted by the batchers
  std::uint64_t batch_flushes = 0;      // aggregate rekeys issued
  std::uint64_t batch_coalesced = 0;
  std::uint64_t batch_shed = 0;
  std::uint64_t batch_budget_misses = 0;
  std::uint64_t degraded_entries = 0;   // health transitions, all groups
  std::uint64_t degraded_exits = 0;
  std::size_t groups_degraded = 0;      // final health == degraded
  /// Distinct rekeys per applied membership event (the amortization
  /// headline; 0 when no events applied).
  double rekeys_per_event = 0.0;
  /// Batcher-attributed latency quantiles: event ARRIVAL -> new key (the
  /// event_to_key_* fields above measure view install -> key instead).
  double batch_event_to_key_p50_ms = 0.0;
  double batch_event_to_key_p99_ms = 0.0;

  /// Canonical deterministic JSON (no wall-clock, no thread count): the
  /// payload the determinism regression compares byte-for-byte across
  /// thread counts. Per-group rows are included only when `with_groups`.
  obs::Json to_json(bool with_groups = false) const;
};

class GroupServer {
  // Orchestrator state is main-thread-owned: workers only ever touch the
  // host slots of their shard (handed out via the epoch closure) plus the
  // individually locked shared structures (Pki, GroupDirectory,
  // SharedSpreadStats). The epoch barrier orders every slot hand-off.
  SGK_CONFINED_TO_RUN;

 public:
  explicit GroupServer(ServerConfig config);
  ~GroupServer();

  GroupServer(const GroupServer&) = delete;
  GroupServer& operator=(const GroupServer&) = delete;

  /// Executes every group to settlement (or its deadline) and aggregates.
  /// Deterministic in the config minus `threads`: any thread count produces
  /// byte-identical results. Call once.
  ServerResult run();

  const GroupDirectory& directory() const { return directory_; }
  const SharedSpreadStats& shared_stats() const { return shared_stats_; }

  /// Process-id block width per group (first pid of group g is
  /// g * kPidStride), sized so no realistic churn schedule overflows it.
  static constexpr ProcessId kPidStride = 4096;

 private:
  GroupSpec spec_for(GroupId gid) const;

  ServerConfig config_;
  std::shared_ptr<Pki> pki_;
  GroupDirectory directory_;
  SharedSpreadStats shared_stats_;
  std::vector<std::unique_ptr<GroupHost>> hosts_;  // slot gid; shard-owned
  bool ran_ = false;
};

}  // namespace sgk::server
