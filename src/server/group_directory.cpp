#include "server/group_directory.h"

#include "util/check.h"

namespace sgk::server {

const char* to_string(StormKind kind) {
  switch (kind) {
    case StormKind::kUniform: return "uniform";
    case StormKind::kPoisson: return "poisson";
    case StormKind::kBursty: return "bursty";
  }
  return "?";
}

const char* to_string(GroupState state) {
  switch (state) {
    case GroupState::kPending: return "pending";
    case GroupState::kOnboarding: return "onboarding";
    case GroupState::kActive: return "active";
    case GroupState::kSettled: return "settled";
    case GroupState::kFailed: return "failed";
  }
  return "?";
}

void GroupDirectory::register_group(const GroupSpec& spec) {
  std::lock_guard<std::mutex> lock(dir_mu_);
  const bool inserted = entries_.emplace(spec.id, Entry{spec, {}}).second;
  SGK_CHECK(inserted);
}

void GroupDirectory::update(GroupId id, const GroupStatus& status) {
  std::lock_guard<std::mutex> lock(dir_mu_);
  entries_.at(id).status = status;
}

std::size_t GroupDirectory::group_count() const {
  std::lock_guard<std::mutex> lock(dir_mu_);
  return entries_.size();
}

std::size_t GroupDirectory::count(GroupState state) const {
  std::lock_guard<std::mutex> lock(dir_mu_);
  std::size_t n = 0;
  for (const auto& [id, e] : entries_) {
    if (e.status.state == state) ++n;
  }
  return n;
}

std::vector<std::pair<GroupSpec, GroupStatus>> GroupDirectory::snapshot()
    const {
  std::lock_guard<std::mutex> lock(dir_mu_);
  std::vector<std::pair<GroupSpec, GroupStatus>> out;
  out.reserve(entries_.size());
  for (const auto& [id, e] : entries_) out.emplace_back(e.spec, e.status);
  return out;
}

}  // namespace sgk::server
