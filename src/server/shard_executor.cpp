#include "server/shard_executor.h"

#include "util/check.h"

namespace sgk::server {

ShardExecutor::ShardExecutor(int threads) : threads_(threads) {
  SGK_CHECK(threads >= 1);
  if (threads_ == 1) return;  // inline mode, no pool
  workers_.reserve(static_cast<std::size_t>(threads_));
  for (int shard = 0; shard < threads_; ++shard) {
    workers_.emplace_back([this, shard] { worker_loop(shard); });
  }
}

ShardExecutor::~ShardExecutor() {
  if (workers_.empty()) return;
  {
    std::lock_guard<std::mutex> lock(pool_mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void ShardExecutor::run_epoch(const std::function<void(int)>& fn) {
  if (threads_ == 1) {
    fn(0);
    return;
  }
  {
    std::lock_guard<std::mutex> lock(pool_mu_);
    SGK_CHECK(remaining_ == 0);  // not reentrant
    task_ = &fn;
    remaining_ = threads_;
    ++generation_;
  }
  work_cv_.notify_all();
  std::unique_lock<std::mutex> lock(pool_mu_);
  done_cv_.wait(lock, [this]() SGK_REQUIRES(pool_mu_) {
    return remaining_ == 0;
  });
  task_ = nullptr;
}

void ShardExecutor::worker_loop(int shard) {
  std::uint64_t seen = 0;
  while (true) {
    const std::function<void(int)>* task = nullptr;
    {
      std::unique_lock<std::mutex> lock(pool_mu_);
      work_cv_.wait(lock, [this, seen]() SGK_REQUIRES(pool_mu_) {
        return stop_ || generation_ != seen;
      });
      if (stop_) return;
      seen = generation_;
      task = task_;
    }
    (*task)(shard);
    bool last = false;
    {
      std::lock_guard<std::mutex> lock(pool_mu_);
      last = (--remaining_ == 0);
    }
    if (last) done_cv_.notify_one();
  }
}

}  // namespace sgk::server
