// One hosted group: a complete, isolated Secure Spread deployment (its own
// Simulator, SpreadNetwork, members and seeded churn plan) that a
// GroupServer advances in virtual-time slices.
//
// Isolation is the determinism mechanism: everything a host touches while
// advancing is owned by the host, except two structures with real locks —
// the server-wide Pki (process ids are globally unique thanks to the host's
// disjoint SpreadParams::first_process_id block) and the SharedSpreadStats
// sink it reports into at finalize. A host is only ever advanced by the one
// worker that owns its shard, one epoch at a time, with the executor's
// barrier ordering epochs — hence SGK_CONFINED_TO_RUN on the class itself.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "fault/injector.h"
#include "fault/invariants.h"
#include "gcs/secure_group.h"
#include "gcs/spread.h"
#include "obs/metrics.h"
#include "server/group_directory.h"
#include "sim/fault_adapter.h"
#include "sim/simulator.h"
#include "sim/topology.h"
#include "util/thread_annotations.h"

namespace sgk::server {

/// The group's seeded churn plan, derived purely from its spec (the host
/// builds the same plan internally; the server uses this to know deadlines
/// before any host exists).
fault::FaultPlan build_group_plan(const GroupSpec& spec);

/// Liveness bound for a spec: last scheduled churn op + grace.
double group_deadline_ms(const GroupSpec& spec);

/// Deterministic per-group outcome, produced once by finalize().
struct GroupReport {
  // Built by the finalizing thread; plain value afterwards.
  SGK_CONFINED_TO_RUN;
  GroupId id = 0;
  ProtocolKind protocol = ProtocolKind::kTgdh;
  bool converged = false;
  std::vector<std::string> violations;  // empty iff converged
  std::size_t final_size = 0;
  std::uint64_t final_epoch = 0;
  std::uint64_t rekeys = 0;          // distinct keyed epochs beyond the first
  double onboard_ms = 0.0;           // onboard start -> first key anywhere
  double settled_ms = 0.0;           // virtual time the group went quiet
  std::vector<double> event_to_key_ms;  // per key install: view -> key latency
  std::uint64_t restarts = 0;
  std::uint64_t stale_dropped = 0;
  std::uint64_t frames_rejected = 0;
  std::uint64_t recoveries = 0;
  std::string fingerprint;  // final group key fingerprint (loggable)
  /// Churn ops that actually took effect (a leave skipped to keep two
  /// members does not count) — the denominator of keys-per-event.
  std::uint64_t events_applied = 0;
  /// Rekey pipeline stats (all zeros when spec.batch is disabled); the
  /// batcher's own event-arrival -> key latency samples live in
  /// batch.event_to_key_ms.
  BatchStats batch;
};

class GroupHost final : public fault::ChurnTarget {
  // Owned by one shard; advanced by at most one worker at a time (the
  // executor's epoch barrier separates slices). Shared structures it touches
  // (Pki, SharedSpreadStats) carry their own locks.
  SGK_CONFINED_TO_RUN;

 public:
  /// Builds the deployment and schedules member onboarding at
  /// `spec.onboard_at_ms` plus the seeded churn plan after it. `pki` is the
  /// server-wide directory shared across groups; `first_pid` is this group's
  /// disjoint process-id block.
  GroupHost(const GroupSpec& spec, std::shared_ptr<Pki> pki,
            ProcessId first_pid, const Topology& topology);
  ~GroupHost() override;

  GroupHost(const GroupHost&) = delete;
  GroupHost& operator=(const GroupHost&) = delete;

  /// Runs this group's events up to virtual time `until`, with the calling
  /// thread's ambient metrics registry pointed at this group's own registry
  /// for the duration of the slice.
  void advance(SimTime until);

  /// True once the event queue drained (the group converged and went quiet)
  /// or the host was force-settled at its deadline.
  bool done() const { return forced_ || sim_.pending() == 0; }

  /// Conservative lookahead: virtual time of this group's next event
  /// (+infinity when quiet). An executor may skip any epoch that ends
  /// before this without advancing the host.
  SimTime next_event_time() const { return sim_.next_event_time(); }

  /// Liveness bound: last scheduled churn op + grace.
  double deadline_ms() const { return deadline_ms_; }

  /// Marks the host settled even though events are still pending; the
  /// deadline was hit and finalize() will record a timeout violation.
  void force_settle() { forced_ = true; }

  const GroupSpec& spec() const { return spec_; }

  /// Directory row reflecting current progress.
  GroupStatus status() const;

  /// Checks invariants, absorbs transport totals into `shared` (when given)
  /// and builds the report. Call once, after done(), from the finalizing
  /// thread.
  GroupReport finalize(SharedSpreadStats* shared);

  /// This group's private metrics registry (merged into the session
  /// registry by the server after the run).
  const obs::MetricsRegistry& metrics() const { return metrics_; }

 private:
  void apply(const fault::ChurnOp& op) override;
  SecureGroupMember& spawn();
  std::vector<SecureGroupMember*> alive() const;
  std::size_t slot(ProcessId pid) const {
    return static_cast<std::size_t>(pid - first_pid_);
  }

  GroupSpec spec_;
  ProcessId first_pid_;
  Simulator sim_;
  SpreadNetwork net_;
  std::shared_ptr<Pki> pki_;
  fault::FaultInjector injector_;
  fault::InvariantChecker checker_;
  obs::MetricsRegistry metrics_;
  std::vector<std::unique_ptr<SecureGroupMember>> members_;  // slot(pid)
  std::size_t spawned_ = 0;
  std::uint64_t events_applied_ = 0;
  double last_op_ms_ = 0.0;
  double deadline_ms_ = 0.0;
  double first_key_ms_ = -1.0;
  std::vector<double> event_to_key_ms_;
  std::vector<std::uint64_t> keyed_epochs_;  // distinct epochs, ascending
  bool forced_ = false;
  bool finalized_ = false;
};

}  // namespace sgk::server
