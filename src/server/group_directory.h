// Directory of every group a GroupServer hosts: group id -> protocol,
// membership, epoch, lifecycle state.
//
// This is one of the genuinely cross-thread structures of the multi-group
// server: worker threads publish status rows for the groups pinned to their
// shard while the main thread reads counts and snapshots, so every field is
// behind a real mutex (SGK_GUARDED_BY — verified by gka_lint GKA5xx and
// Clang -Wthread-safety) rather than a confinement marker. Snapshots are
// returned in ascending group-id order, which is what keeps aggregate
// reports deterministic regardless of worker interleaving.
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "core/key_agreement.h"
#include "crypto/dh.h"
#include "fault/plan.h"
#include "gcs/rekey_batcher.h"
#include "util/thread_annotations.h"

namespace sgk::server {

using GroupId = std::uint32_t;

/// Shape of a group's churn schedule (see fault::FaultPlan).
enum class StormKind {
  kUniform,  // randomize(): uniform gaps in [min_gap_ms, max_gap_ms]
  kPoisson,  // poisson_storm(): exponential gaps of mean mean_gap_ms
  kBursty,   // bursty_storm(): tight bursts separated by idle stretches
};

const char* to_string(StormKind kind);

/// Lifecycle of a hosted group.
enum class GroupState {
  kPending,     // registered, onboard time not reached yet
  kOnboarding,  // members joining / first agreement running
  kActive,      // keyed at least once, churn still scheduled
  kSettled,     // event queue drained before the deadline
  kFailed,      // deadline hit or an invariant violated
};

const char* to_string(GroupState state);

/// Immutable per-group configuration, fixed when the server builds its
/// schedule. Copied by value into the group's host.
struct GroupSpec {
  // Built once on the main thread before workers start; read-only after.
  SGK_CONFINED_TO_RUN;
  GroupId id = 0;
  std::string name;  // "g<id>", used for group labels and metric prefixes
  ProtocolKind protocol = ProtocolKind::kTgdh;
  DhBits dh_bits = DhBits::k512;
  std::size_t initial_size = 4;
  int churn_events = 4;
  double onboard_at_ms = 0.0;  // virtual time the group's members start joining
  std::uint64_t seed = 1;      // per-group schedule + DRBG seed
  fault::FaultRates rates;     // wire-fault rates for this group's network
  /// First churn op fires this long after onboarding begins (the chaos
  /// harness's tested regime: late enough for the initial join burst to be
  /// in flight, short enough that ops still land inside agreements).
  double churn_start_ms = 50.0;
  double min_gap_ms = 5.0;     // churn inter-op gap bounds
  double max_gap_ms = 40.0;
  double grace_ms = 30000.0;   // liveness bound past the last churn op
  /// Per-member recovery watchdog (gcs/secure_group.h): a member whose
  /// agreement outlives this window requests a quarantine rekey instead of
  /// wedging forever. A long-lived server arms it by default — at thousands
  /// of groups, rare per-group liveness corners become routine events.
  double recovery_watchdog_ms = 5000.0;
  /// Ceiling for the recovery/watchdog exponential backoff (MemberConfig).
  double recovery_backoff_cap_ms = 2000.0;
  /// Churn schedule shape; kUniform reproduces the pre-storm plans exactly.
  StormKind storm = StormKind::kUniform;
  double mean_gap_ms = 10.0;   // kPoisson: mean inter-event gap
  int burst_size = 8;          // kBursty: events per burst
  double intra_gap_ms = 1.0;   // kBursty: gap inside a burst
  double idle_gap_ms = 400.0;  // kBursty: quiet stretch between bursts
  /// Rekey batching for this group's network (disabled by default — every
  /// membership event rekeys immediately, the legacy behavior).
  BatchConfig batch;
};

/// Mutable status row a group's host publishes as it runs.
struct GroupStatus {
  // Published into the directory under its lock; plain value otherwise.
  SGK_CONFINED_TO_RUN;
  GroupState state = GroupState::kPending;
  std::uint64_t epoch = 0;     // latest key epoch observed in the group
  std::size_t members = 0;     // current live member count
  std::uint64_t rekeys = 0;    // distinct keyed epochs so far
  double settled_ms = 0.0;     // virtual time the group settled (0 until then)
};

class GroupDirectory {
 public:
  /// Registers a group in state kPending. Ids must be unique.
  void register_group(const GroupSpec& spec) SGK_EXCLUDES(dir_mu_);

  /// Publishes a new status row for `id` (must be registered).
  void update(GroupId id, const GroupStatus& status) SGK_EXCLUDES(dir_mu_);

  /// Number of registered groups. (Named to avoid the bare-identifier
  /// capability analyses conflating it with container `.size()` calls made
  /// while dir_mu_ is held.)
  std::size_t group_count() const SGK_EXCLUDES(dir_mu_);

  /// Number of groups currently in `state`.
  std::size_t count(GroupState state) const SGK_EXCLUDES(dir_mu_);

  /// Every (spec, status) pair in ascending group-id order.
  std::vector<std::pair<GroupSpec, GroupStatus>> snapshot() const
      SGK_EXCLUDES(dir_mu_);

 private:
  struct Entry {
    GroupSpec spec;
    GroupStatus status;
  };

  mutable std::mutex dir_mu_;
  std::map<GroupId, Entry> entries_ SGK_GUARDED_BY(dir_mu_);
};

}  // namespace sgk::server
