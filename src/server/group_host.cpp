#include "server/group_host.h"

#include <algorithm>
#include <string>
#include <utility>

#include "util/check.h"

namespace sgk::server {

fault::FaultPlan build_group_plan(const GroupSpec& spec) {
  fault::FaultPlan plan(spec.seed, spec.rates);
  // Churn starts churn_start_ms after onboarding so the first op routinely
  // lands inside an in-flight agreement — the cascaded regime, per group.
  const double start = spec.onboard_at_ms + spec.churn_start_ms;
  switch (spec.storm) {
    case StormKind::kUniform:
      plan.randomize(spec.churn_events, start, spec.min_gap_ms,
                     spec.max_gap_ms);
      break;
    case StormKind::kPoisson:
      plan.poisson_storm(spec.churn_events, start, spec.mean_gap_ms);
      break;
    case StormKind::kBursty: {
      // churn_events stays the total event budget across storm shapes, so
      // the batched/unbatched comparison holds workload size constant.
      const int size = std::max(1, spec.burst_size);
      const int bursts = std::max(1, spec.churn_events / size);
      plan.bursty_storm(bursts, size, start, spec.intra_gap_ms,
                        spec.idle_gap_ms);
      break;
    }
  }
  return plan;
}

double group_deadline_ms(const GroupSpec& spec) {
  const fault::FaultPlan plan = build_group_plan(spec);
  const auto& ops = plan.ops();
  const double last_op = ops.empty() ? spec.onboard_at_ms : ops.back().at_ms;
  return std::max(last_op, spec.onboard_at_ms) + spec.grace_ms;
}

GroupHost::GroupHost(const GroupSpec& spec, std::shared_ptr<Pki> pki,
                     ProcessId first_pid, const Topology& topology)
    : spec_(spec),
      first_pid_(first_pid),
      net_(sim_, topology,
           [&] {
             SpreadParams p;
             p.first_process_id = first_pid;
             p.batch = spec.batch;
             return p;
           }()),
      pki_(std::move(pki)),
      injector_(build_group_plan(spec)) {
  SGK_CHECK(spec_.initial_size >= 2);
  net_.set_fault_hook(&injector_);

  const auto& ops = injector_.plan().ops();
  last_op_ms_ = ops.empty() ? spec_.onboard_at_ms : ops.back().at_ms;
  deadline_ms_ = std::max(last_op_ms_, spec_.onboard_at_ms) + spec_.grace_ms;

  // Arm everything up front on this group's private simulator: onboarding at
  // the scheduled time, then the churn plan (absolute virtual times).
  sim_.at(spec_.onboard_at_ms, [this] {
    for (std::size_t i = 0; i < spec_.initial_size; ++i) spawn().join();
  });
  // The scheduler adapter is only used during arm(); all ops land on sim_.
  SimFaultScheduler sched(sim_);
  injector_.arm(sched, *this);
}

GroupHost::~GroupHost() = default;

void GroupHost::advance(SimTime until) {
  if (done()) return;
  // Every metric recorded while this group's events run lands in the
  // group's own registry, so worker threads never share a sink.
  obs::ScopedMetrics scoped(&metrics_);
  sim_.run_until(until);
}

GroupStatus GroupHost::status() const {
  GroupStatus s;
  if (finalized_ || done()) {
    s.state = forced_ ? GroupState::kFailed : GroupState::kSettled;
    s.settled_ms = sim_.now();
  } else if (first_key_ms_ >= 0.0) {
    s.state = GroupState::kActive;
  } else {
    s.state = GroupState::kOnboarding;
  }
  s.epoch = keyed_epochs_.empty() ? 0 : keyed_epochs_.back();
  s.members = alive().size();
  s.rekeys = keyed_epochs_.size() <= 1 ? 0 : keyed_epochs_.size() - 1;
  return s;
}

GroupReport GroupHost::finalize(SharedSpreadStats* shared) {
  SGK_CHECK(!finalized_);
  finalized_ = true;
  obs::ScopedMetrics scoped(&metrics_);

  if (forced_ && sim_.pending() > 0) {
    checker_.flag_timeout(spec_.name + " still active at deadline (last op " +
                          std::to_string(last_op_ms_) + "ms + grace " +
                          std::to_string(spec_.grace_ms) + "ms)");
  }

  GroupReport r;
  r.id = spec_.id;
  r.protocol = spec_.protocol;
  std::vector<fault::KeyProbe> probes;
  for (const auto& m : members_) {
    if (!m) continue;
    ++r.final_size;
    fault::KeyProbe p;
    p.member = m->id();
    p.component = net_.component_of_machine(net_.machine_of(m->id()));
    p.has_key = m->has_key();
    p.epoch = m->key_epoch();
    p.key = m->has_key() ? &m->key() : nullptr;
    probes.push_back(p);
    checker_.check_no_wedge(m->id(), m->agreement_in_flight());
    r.restarts += m->agreement_restarts();
    r.stale_dropped += m->stale_dropped();
    r.frames_rejected += m->frames_rejected();
    r.recoveries += m->recoveries();
    r.final_epoch = std::max(r.final_epoch, m->key_epoch());
    if (r.fingerprint.empty()) r.fingerprint = m->key_fingerprint();
  }
  checker_.check_convergence(probes);
  if (r.final_size < 2) checker_.flag_timeout("fewer than two members survived");

  r.converged = checker_.ok() && r.final_size >= 2;
  r.violations = checker_.violations();
  r.rekeys = keyed_epochs_.size() <= 1 ? 0 : keyed_epochs_.size() - 1;
  r.onboard_ms =
      first_key_ms_ < 0.0 ? 0.0 : first_key_ms_ - spec_.onboard_at_ms;
  r.settled_ms = sim_.now();
  r.event_to_key_ms = event_to_key_ms_;
  r.events_applied = events_applied_;
  if (const RekeyBatcher* b = net_.batcher()) r.batch = b->stats(spec_.name);

  metrics_.counter("server/groups_finalized").add();
  if (!r.converged) metrics_.counter("server/groups_failed").add();

  if (shared != nullptr) shared->absorb(net_);
  return r;
}

void GroupHost::apply(const fault::ChurnOp& op) {
  bool applied = true;
  switch (op.kind) {
    case fault::ChurnKind::kJoin:
      spawn().join();
      break;
    case fault::ChurnKind::kLeave: {
      auto live = alive();
      if (live.size() <= 2) {  // keep a group worth agreeing over
        applied = false;
        break;
      }
      SecureGroupMember* victim = live[op.arg % live.size()];
      victim->leave();
      members_.at(slot(victim->id())).reset();
      break;
    }
    case fault::ChurnKind::kCrash: {
      auto live = alive();
      if (live.size() <= 2) {
        applied = false;
        break;
      }
      SecureGroupMember* victim = live[op.arg % live.size()];
      net_.disconnect(victim->id());
      members_.at(slot(victim->id())).reset();
      break;
    }
    case fault::ChurnKind::kPartition: {
      const auto mc =
          static_cast<std::uint64_t>(net_.topology().machine_count());
      if (mc < 2) {
        applied = false;
        break;
      }
      const auto split = static_cast<MachineId>(1 + op.arg % (mc - 1));
      std::vector<MachineId> a, b;
      for (MachineId m = 0; m < static_cast<MachineId>(mc); ++m)
        (m < split ? a : b).push_back(m);
      net_.partition({a, b});
      break;
    }
    case fault::ChurnKind::kHeal:
      net_.heal();
      break;
    case fault::ChurnKind::kRekey: {
      auto live = alive();
      if (live.empty()) {
        applied = false;
        break;
      }
      live[op.arg % live.size()]->request_rekey();
      break;
    }
  }
  if (applied) ++events_applied_;
  if (obs::MetricsRegistry* mr = obs::metrics())
    mr->counter(std::string("server/op/") + fault::to_string(op.kind)).add();
}

SecureGroupMember& GroupHost::spawn() {
  const auto machine = static_cast<MachineId>(
      spawned_ % net_.topology().machine_count());
  ++spawned_;
  const ProcessId pid = net_.create_process(machine);
  MemberConfig cfg;
  cfg.group = spec_.name;
  cfg.protocol = spec_.protocol;
  cfg.dh_bits = spec_.dh_bits;
  cfg.seed = spec_.seed;
  cfg.recovery_watchdog_ms = spec_.recovery_watchdog_ms;
  cfg.recovery_backoff_cap_ms = spec_.recovery_backoff_cap_ms;
  auto member = std::make_unique<SecureGroupMember>(net_, pid, pki_, cfg);
  SecureGroupMember* mp = member.get();
  member->set_key_listener([this, mp, pid](SimTime t, std::uint64_t epoch) {
    checker_.observe_epoch(pid, epoch);
    if (first_key_ms_ < 0.0) first_key_ms_ = t;
    // View install -> key established, the per-install agreement latency.
    const double latency = t - mp->view_time();
    event_to_key_ms_.push_back(latency);
    if (obs::MetricsRegistry* mr = obs::metrics())
      mr->histogram("server/event_to_key_ms").observe(latency);
    // Track distinct keyed epochs (mostly ascending; cascades can skip).
    if (keyed_epochs_.empty() || keyed_epochs_.back() < epoch) {
      keyed_epochs_.push_back(epoch);
      // Latency feedback for the rekey pipeline, once per fresh epoch: the
      // first member to key an epoch completes the oldest outstanding
      // flush's event-arrival -> key samples.
      if (RekeyBatcher* b = net_.batcher()) b->note_key_installed(spec_.name, t);
    } else if (!std::binary_search(keyed_epochs_.begin(), keyed_epochs_.end(),
                                   epoch)) {
      keyed_epochs_.insert(std::lower_bound(keyed_epochs_.begin(),
                                            keyed_epochs_.end(), epoch),
                           epoch);
    }
  });
  const std::size_t s = slot(pid);
  if (members_.size() <= s) members_.resize(s + 1);
  members_.at(s) = std::move(member);
  return *members_.at(s);
}

std::vector<SecureGroupMember*> GroupHost::alive() const {
  std::vector<SecureGroupMember*> out;
  for (const auto& m : members_)
    if (m) out.push_back(m.get());
  return out;
}

}  // namespace sgk::server
