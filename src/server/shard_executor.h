// Fixed pool of worker threads that executes one "epoch" of shard work at a
// time, with a full barrier between epochs.
//
// The multi-group server pins every group to one shard (gid % threads), so
// within an epoch no two workers ever touch the same group and the only
// shared state is the epoch hand-off itself — a generation counter and a
// remaining-shards count, both behind pool_mu_ with real SGK_GUARDED_BY
// guards (gka_lint GKA5xx and Clang -Wthread-safety both verify them).
//
// Determinism: the barrier gives run_epoch() release/acquire semantics — all
// worker writes in epoch N happen-before the caller's reads after
// run_epoch(N) returns and before every worker's reads in epoch N+1. Since
// each group's events are replayed by a seeded single-threaded Simulator and
// shard assignment never lets two workers interleave inside one group, the
// bytes a run produces are independent of thread count and scheduling.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "util/thread_annotations.h"

namespace sgk::server {

class ShardExecutor {
 public:
  /// `threads` >= 1. With one thread no workers are spawned and epochs run
  /// inline on the calling thread (the determinism reference path).
  explicit ShardExecutor(int threads);
  ~ShardExecutor();

  ShardExecutor(const ShardExecutor&) = delete;
  ShardExecutor& operator=(const ShardExecutor&) = delete;

  int threads() const { return threads_; }

  /// Runs `fn(shard)` once for every shard in [0, threads()) and returns
  /// after all of them finished (the epoch barrier). `fn` must confine
  /// itself to state owned by its shard (plus properly guarded shared
  /// structures). Not reentrant.
  void run_epoch(const std::function<void(int)>& fn);

 private:
  void worker_loop(int shard);

  const int threads_;
  std::vector<std::thread> workers_;

  std::mutex pool_mu_;
  std::condition_variable work_cv_;  // workers wait for a new generation
  std::condition_variable done_cv_;  // caller waits for remaining_ == 0
  const std::function<void(int)>* task_ SGK_GUARDED_BY(pool_mu_) = nullptr;
  std::uint64_t generation_ SGK_GUARDED_BY(pool_mu_) = 0;
  int remaining_ SGK_GUARDED_BY(pool_mu_) = 0;
  bool stop_ SGK_GUARDED_BY(pool_mu_) = false;
};

}  // namespace sgk::server
