#include "server/server.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <string>
#include <utility>

#include "fault/rng.h"
#include "obs/metrics.h"
#include "obs/wallclock.h"
#include "util/check.h"

namespace sgk::server {

namespace {

/// Nearest-rank quantile with interpolation over a copy of `v`.
double sample_quantile(std::vector<double> v, double q) {
  if (v.empty()) return 0.0;
  std::sort(v.begin(), v.end());
  const double rank = q * static_cast<double>(v.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, v.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return v[lo] + (v[hi] - v[lo]) * frac;
}

}  // namespace

GroupServer::GroupServer(ServerConfig config)
    : config_(std::move(config)), pki_(std::make_shared<Pki>()) {
  SGK_CHECK(config_.groups >= 1);
  SGK_CHECK(config_.members_per_group >= 2);
  SGK_CHECK(config_.threads >= 1);
  SGK_CHECK(!config_.protocols.empty());
  SGK_CHECK(config_.epoch_window_ms > 0.0);
}

GroupServer::~GroupServer() = default;

GroupSpec GroupServer::spec_for(GroupId gid) const {
  GroupSpec spec;
  spec.id = gid;
  spec.name = "g" + std::to_string(gid);
  spec.protocol = config_.protocols[gid % config_.protocols.size()];
  spec.dh_bits = config_.dh_bits;
  spec.initial_size = config_.members_per_group;
  spec.churn_events = config_.churn_events;
  spec.onboard_at_ms = static_cast<double>(gid) * config_.onboard_gap_ms;
  // Independent per-group schedule/DRBG stream, order-free in gid.
  spec.seed = fault::fault_hash(config_.seed, gid, 0x5eedULL, 1);
  spec.rates = config_.rates;
  spec.min_gap_ms = config_.min_gap_ms;
  spec.max_gap_ms = config_.max_gap_ms;
  spec.grace_ms = config_.grace_ms;
  spec.storm = config_.storm;
  spec.mean_gap_ms = config_.mean_gap_ms;
  spec.burst_size = config_.burst_size;
  spec.intra_gap_ms = config_.intra_gap_ms;
  spec.idle_gap_ms = config_.idle_gap_ms;
  spec.batch = config_.batch;
  return spec;
}

ServerResult GroupServer::run() {
  SGK_CHECK(!ran_);
  ran_ = true;

  const auto n = config_.groups;
  std::vector<GroupSpec> specs;
  specs.reserve(n);
  double max_deadline = 0.0;
  for (GroupId gid = 0; gid < static_cast<GroupId>(n); ++gid) {
    specs.push_back(spec_for(gid));
    directory_.register_group(specs.back());
    max_deadline = std::max(max_deadline, group_deadline_ms(specs.back()));
  }
  hosts_.resize(n);  // slots are shard-owned from here until the last barrier

  const Topology topo = lan_testbed(config_.machines_per_group);
  ShardExecutor exec(config_.threads);
  const int shards = exec.threads();

  ServerResult result;
  {
    obs::WallScope run_scope("server/run");
    double t = 0.0;
    std::size_t unfinished = n;
    while (unfinished > 0) {
      t += config_.epoch_window_ms;
      {
        obs::WallScope epoch_scope("server/epoch");
        exec.run_epoch([&](int shard) {
          for (std::size_t gid = static_cast<std::size_t>(shard); gid < n;
               gid += static_cast<std::size_t>(shards)) {
            auto& slot = hosts_[gid];
            if (!slot) {
              if (specs[gid].onboard_at_ms > t) continue;
              slot = std::make_unique<GroupHost>(
                  specs[gid], pki_,
                  static_cast<ProcessId>(gid) * kPidStride, topo);
              directory_.update(specs[gid].id, slot->status());
            }
            if (slot->done()) continue;
            if (t >= slot->deadline_ms()) {
              slot->advance(slot->deadline_ms());
              if (!slot->done()) slot->force_settle();
            } else if (slot->next_event_time() > t) {
              continue;  // conservative lookahead: nothing to do this epoch
            } else {
              slot->advance(t);
            }
            directory_.update(specs[gid].id, slot->status());
          }
        });
      }
      ++result.epochs_executed;
      // Barrier passed: worker writes to this epoch's slots are visible.
      unfinished = 0;
      for (const auto& slot : hosts_) {
        if (!slot || !slot->done()) ++unfinished;
      }
      SGK_CHECK(t <= max_deadline + 2.0 * config_.epoch_window_ms);
    }
  }

  // Aggregate on the main thread in ascending group-id order — the fixed
  // fold order is what keeps the report independent of worker interleaving.
  obs::MetricsRegistry* ambient = obs::metrics();
  std::vector<double> onboard_ms;
  std::vector<double> event_to_key_ms;
  std::vector<double> batch_event_to_key_ms;
  result.groups.reserve(n);
  for (std::size_t gid = 0; gid < n; ++gid) {
    GroupHost& host = *hosts_[gid];
    GroupReport report = host.finalize(&shared_stats_);
    directory_.update(report.id, host.status());
    if (ambient != nullptr) {
      ambient->merge_from(host.metrics());
      if (config_.per_group_metrics) {
        ambient->merge_from(host.metrics(),
                            "group/" + host.spec().name + "/");
      }
    }
    ++result.groups_hosted;
    if (report.converged) ++result.groups_converged;
    if (report.onboard_ms > 0.0) onboard_ms.push_back(report.onboard_ms);
    event_to_key_ms.insert(event_to_key_ms.end(),
                           report.event_to_key_ms.begin(),
                           report.event_to_key_ms.end());
    result.key_installs += report.event_to_key_ms.size();
    result.rekeys += report.rekeys;
    result.virtual_makespan_ms =
        std::max(result.virtual_makespan_ms, report.settled_ms);
    result.events_applied += report.events_applied;
    result.batch_events += report.batch.events;
    result.batch_flushes += report.batch.flushes;
    result.batch_coalesced += report.batch.coalesced;
    result.batch_shed += report.batch.shed;
    result.batch_budget_misses += report.batch.budget_misses;
    result.degraded_entries += report.batch.degraded_entries;
    result.degraded_exits += report.batch.degraded_exits;
    if (report.batch.health == GroupHealth::kDegraded) ++result.groups_degraded;
    batch_event_to_key_ms.insert(batch_event_to_key_ms.end(),
                                 report.batch.event_to_key_ms.begin(),
                                 report.batch.event_to_key_ms.end());
    result.groups.push_back(std::move(report));
  }
  result.onboard_p50_ms = sample_quantile(onboard_ms, 0.50);
  result.onboard_p99_ms = sample_quantile(onboard_ms, 0.99);
  result.event_to_key_p50_ms = sample_quantile(event_to_key_ms, 0.50);
  result.event_to_key_p99_ms = sample_quantile(event_to_key_ms, 0.99);
  const double makespan_s = result.virtual_makespan_ms / 1000.0;
  if (makespan_s > 0.0) {
    result.groups_per_sec =
        static_cast<double>(result.groups_converged) / makespan_s;
    result.rekeys_per_sec = static_cast<double>(result.rekeys) / makespan_s;
  }
  if (result.events_applied > 0) {
    result.rekeys_per_event = static_cast<double>(result.rekeys) /
                            static_cast<double>(result.events_applied);
  }
  result.batch_event_to_key_p50_ms =
      sample_quantile(batch_event_to_key_ms, 0.50);
  result.batch_event_to_key_p99_ms =
      sample_quantile(batch_event_to_key_ms, 0.99);
  result.shared_messages_stamped = shared_stats_.stamped_total();
  result.shared_processes = shared_stats_.processes_total();
  if (ambient != nullptr) {
    ambient->counter("server/epochs").add(result.epochs_executed);
    ambient->counter("server/groups_hosted").add(result.groups_hosted);
  }
  return result;
}

obs::Json ServerResult::to_json(bool with_groups) const {
  obs::Json j = obs::Json::object();
  obs::Json agg = obs::Json::object();
  agg.set("groups_hosted", obs::Json(static_cast<std::uint64_t>(groups_hosted)));
  agg.set("groups_converged",
          obs::Json(static_cast<std::uint64_t>(groups_converged)));
  agg.set("epochs_executed", obs::Json(epochs_executed));
  agg.set("virtual_makespan_ms", obs::Json(virtual_makespan_ms));
  agg.set("key_installs", obs::Json(key_installs));
  agg.set("rekeys", obs::Json(rekeys));
  agg.set("onboard_p50_ms", obs::Json(onboard_p50_ms));
  agg.set("onboard_p99_ms", obs::Json(onboard_p99_ms));
  agg.set("event_to_key_p50_ms", obs::Json(event_to_key_p50_ms));
  agg.set("event_to_key_p99_ms", obs::Json(event_to_key_p99_ms));
  agg.set("groups_per_sec", obs::Json(groups_per_sec));
  agg.set("rekeys_per_sec", obs::Json(rekeys_per_sec));
  agg.set("shared_messages_stamped", obs::Json(shared_messages_stamped));
  agg.set("shared_processes", obs::Json(shared_processes));
  j.set("aggregate", std::move(agg));

  // Rekey-pipeline rollup, present only when batching actually ran: a server
  // with batching disabled produces byte-identical JSON to the pre-pipeline
  // versions, which keeps the committed multi_group baselines valid.
  if (batch_events > 0) {
    obs::Json batch = obs::Json::object();
    batch.set("events_applied",
              obs::Json(static_cast<std::uint64_t>(events_applied)));
    batch.set("events", obs::Json(batch_events));
    batch.set("flushes", obs::Json(batch_flushes));
    batch.set("coalesced", obs::Json(batch_coalesced));
    batch.set("shed", obs::Json(batch_shed));
    batch.set("budget_misses", obs::Json(batch_budget_misses));
    batch.set("degraded_entries", obs::Json(degraded_entries));
    batch.set("degraded_exits", obs::Json(degraded_exits));
    batch.set("groups_degraded",
              obs::Json(static_cast<std::uint64_t>(groups_degraded)));
    batch.set("rekeys_per_event", obs::Json(rekeys_per_event));
    batch.set("event_to_key_p50_ms", obs::Json(batch_event_to_key_p50_ms));
    batch.set("event_to_key_p99_ms", obs::Json(batch_event_to_key_p99_ms));
    j.set("batch", std::move(batch));
  }

  // Per-protocol rollup in protocol-name order (deterministic).
  struct Roll {
    std::uint64_t hosted = 0;
    std::uint64_t converged = 0;
    std::uint64_t rekeys = 0;
    std::vector<double> onboard_ms;
    std::vector<double> event_to_key_ms;
  };
  std::map<std::string, Roll> rolls;
  for (const GroupReport& g : groups) {
    Roll& r = rolls[to_string(g.protocol)];
    ++r.hosted;
    if (g.converged) ++r.converged;
    r.rekeys += g.rekeys;
    if (g.onboard_ms > 0.0) r.onboard_ms.push_back(g.onboard_ms);
    r.event_to_key_ms.insert(r.event_to_key_ms.end(),
                             g.event_to_key_ms.begin(),
                             g.event_to_key_ms.end());
  }
  obs::Json protos = obs::Json::array();
  for (const auto& [name, r] : rolls) {
    obs::Json row = obs::Json::object();
    row.set("protocol", obs::Json(name));
    row.set("groups", obs::Json(r.hosted));
    row.set("converged", obs::Json(r.converged));
    row.set("rekeys", obs::Json(r.rekeys));
    row.set("onboard_p50_ms", obs::Json(sample_quantile(r.onboard_ms, 0.50)));
    row.set("event_to_key_p99_ms",
            obs::Json(sample_quantile(r.event_to_key_ms, 0.99)));
    protos.push(std::move(row));
  }
  j.set("protocols", std::move(protos));

  if (with_groups) {
    obs::Json rows = obs::Json::array();
    for (const GroupReport& g : groups) {
      obs::Json row = obs::Json::object();
      row.set("id", obs::Json(static_cast<std::uint64_t>(g.id)));
      row.set("protocol", obs::Json(to_string(g.protocol)));
      row.set("converged", obs::Json(g.converged));
      row.set("final_size",
              obs::Json(static_cast<std::uint64_t>(g.final_size)));
      row.set("final_epoch", obs::Json(g.final_epoch));
      row.set("rekeys", obs::Json(g.rekeys));
      row.set("onboard_ms", obs::Json(g.onboard_ms));
      row.set("settled_ms", obs::Json(g.settled_ms));
      row.set("event_to_key_p99_ms",
              obs::Json(sample_quantile(g.event_to_key_ms, 0.99)));
      row.set("fingerprint", obs::Json(g.fingerprint));
      rows.push(std::move(row));
    }
    j.set("groups", std::move(rows));
  }
  return j;
}

}  // namespace sgk::server
