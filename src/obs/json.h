// Minimal JSON document model with a parser and a serializer.
//
// Used by the observability layer for machine-readable bench output
// (BENCH_*.json), Chrome trace_event export, and the bench_gate comparison
// tool. Numbers are stored as doubles (every counter this project emits fits
// losslessly below 2^53); objects preserve insertion order so emitted files
// diff cleanly between runs.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>
#include <utility>
#include <variant>
#include <vector>

namespace sgk::obs {

class JsonError : public std::runtime_error {
 public:
  explicit JsonError(const std::string& what) : std::runtime_error(what) {}
};

class Json {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };
  using Array = std::vector<Json>;
  using Member = std::pair<std::string, Json>;
  using Object = std::vector<Member>;

  Json() : value_(nullptr) {}
  Json(std::nullptr_t) : value_(nullptr) {}
  Json(bool b) : value_(b) {}
  Json(double v) : value_(v) {}
  Json(int v) : value_(static_cast<double>(v)) {}
  Json(std::int64_t v) : value_(static_cast<double>(v)) {}
  Json(std::uint64_t v) : value_(static_cast<double>(v)) {}
  Json(std::string s) : value_(std::move(s)) {}
  Json(std::string_view s) : value_(std::string(s)) {}
  Json(const char* s) : value_(std::string(s)) {}

  static Json array() { return Json(Array{}); }
  static Json object() { return Json(Object{}); }

  Kind kind() const { return static_cast<Kind>(value_.index()); }
  bool is_null() const { return kind() == Kind::kNull; }
  bool is_bool() const { return kind() == Kind::kBool; }
  bool is_number() const { return kind() == Kind::kNumber; }
  bool is_string() const { return kind() == Kind::kString; }
  bool is_array() const { return kind() == Kind::kArray; }
  bool is_object() const { return kind() == Kind::kObject; }

  bool as_bool() const { return get<bool>("bool"); }
  double as_number() const { return get<double>("number"); }
  const std::string& as_string() const { return get<std::string>("string"); }
  const Array& as_array() const { return get<Array>("array"); }
  Array& as_array() { return get<Array>("array"); }
  const Object& as_object() const { return get<Object>("object"); }
  Object& as_object() { return get<Object>("object"); }

  /// Array append. Returns the appended element (for in-place building).
  Json& push(Json v);
  /// Object insert-or-replace. Returns the stored element.
  Json& set(std::string name, Json v);

  /// Object lookup; nullptr when absent (or not an object).
  const Json* find(std::string_view name) const;
  /// Object lookup; throws JsonError when absent.
  const Json& at(std::string_view name) const;
  /// Array element; throws JsonError when out of range.
  const Json& at(std::size_t i) const;
  /// Array / object element count; 0 for scalars.
  std::size_t size() const;

  /// Serializes. indent < 0 gives one compact line; indent >= 0 pretty-prints
  /// with that many spaces per level.
  std::string dump(int indent = -1) const;

  /// Parses a complete JSON document; throws JsonError on malformed input or
  /// trailing garbage.
  static Json parse(std::string_view text);

 private:
  explicit Json(Array a) : value_(std::move(a)) {}
  explicit Json(Object o) : value_(std::move(o)) {}

  template <typename T>
  const T& get(const char* what) const {
    const T* p = std::get_if<T>(&value_);
    if (p == nullptr) throw JsonError(std::string("json: not a ") + what);
    return *p;
  }
  template <typename T>
  T& get(const char* what) {
    T* p = std::get_if<T>(&value_);
    if (p == nullptr) throw JsonError(std::string("json: not a ") + what);
    return *p;
  }

  void write(std::string& out, int indent, int depth) const;

  std::variant<std::nullptr_t, bool, double, std::string, Array, Object> value_;
};

}  // namespace sgk::obs
