// Named counters and log-linear histograms for run-level observability.
//
// A MetricsRegistry is the aggregate side of the observability layer: the
// tracer records *where* virtual time went, the registry records *how much*
// and *how often*. Histograms use log-linear buckets (each power-of-two
// decade split into a fixed number of equal-width sub-buckets), which keeps
// relative quantile error bounded at ~12% across the nine orders of
// magnitude between a sub-microsecond hash charge and a multi-second WAN
// re-key, with a fixed, allocation-free observe path.
//
// Naming convention (see docs/observability.md): slash-separated paths,
// lowest-cardinality segment first, e.g. "event_ms/TGDH/join",
// "event_bytes/GDH/leave", "gcs/messages_stamped".
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "obs/json.h"

namespace sgk::obs {

class Counter {
 public:
  void add(std::uint64_t n = 1) { value_ += n; }
  std::uint64_t value() const { return value_; }

 private:
  std::uint64_t value_ = 0;
};

class Histogram {
 public:
  /// Linear sub-buckets per power-of-two decade.
  static constexpr int kSubBuckets = 4;
  /// Smallest / largest resolved decade: values below 2^kMinExp land in the
  /// underflow bucket 0, values >= 2^kMaxExp in the overflow bucket.
  static constexpr int kMinExp = -20;
  static constexpr int kMaxExp = 40;
  static constexpr int kBucketCount = (kMaxExp - kMinExp) * kSubBuckets + 2;

  void observe(double v);

  std::uint64_t count() const { return count_; }
  double sum() const { return sum_; }
  double min() const { return count_ == 0 ? 0.0 : min_; }
  double max() const { return count_ == 0 ? 0.0 : max_; }
  double mean() const { return count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_); }

  /// Quantile estimate (q in [0, 1]) with linear interpolation inside the
  /// containing bucket, clamped to the observed [min, max].
  double quantile(double q) const;

  /// Bucket index a value lands in (0 = underflow, kBucketCount-1 = overflow).
  static int bucket_index(double v);
  /// Half-open value range [lower, upper) of a bucket.
  static std::pair<double, double> bucket_bounds(int index);

  /// Dense bucket counts; empty until the first observe().
  const std::vector<std::uint64_t>& buckets() const { return buckets_; }

  /// Folds another histogram into this one bucket-by-bucket. Exact for
  /// count/sum/min/max and bucket counts; quantiles of the merged histogram
  /// carry the same ~12% relative error as direct observation. Used by the
  /// multi-group server to roll per-group registries into the aggregate.
  void merge(const Histogram& other);

  /// {"count","sum","min","max","mean","p50","p95","buckets":[[lo,hi,n]...]}
  /// (only non-empty buckets are listed).
  Json to_json() const;

 private:
  std::vector<std::uint64_t> buckets_;
  std::uint64_t count_ = 0;
  double sum_ = 0;
  double min_ = 0;
  double max_ = 0;
};

class MetricsRegistry {
 public:
  Counter& counter(const std::string& name) { return counters_[name]; }
  Histogram& histogram(const std::string& name) { return histograms_[name]; }

  const std::map<std::string, Counter>& counters() const { return counters_; }
  const std::map<std::string, Histogram>& histograms() const { return histograms_; }

  /// Adds every counter and folds every histogram from `other` into this
  /// registry, creating entries as needed. Deterministic as long as callers
  /// merge in a fixed order (counter addition commutes; histogram bucket
  /// counts commute; min/max commute).
  void merge_from(const MetricsRegistry& other);

  /// Like merge_from, but each metric name gains `prefix` (e.g.
  /// "group/g42/") so per-group registries can be folded into one report
  /// without the labels colliding.
  void merge_from(const MetricsRegistry& other, const std::string& prefix);

  /// {"counters": {name: value}, "histograms": {name: {...}}}
  Json to_json() const;

 private:
  std::map<std::string, Counter> counters_;
  std::map<std::string, Histogram> histograms_;
};

/// Ambient registry used by instrumentation sites; nullptr (the default)
/// disables metric recording entirely. Thread-local: each worker thread of a
/// parallel run has its own slot, so a shard executor can point workers at
/// per-group registries while the main thread keeps the session registry.
MetricsRegistry* metrics();
void set_metrics(MetricsRegistry* registry);

/// RAII install/restore of the calling thread's ambient registry. Used by
/// the multi-group server to scope every slice of a group's execution to
/// that group's own registry.
class ScopedMetrics {
 public:
  explicit ScopedMetrics(MetricsRegistry* registry) : prev_(metrics()) {
    set_metrics(registry);
  }
  ~ScopedMetrics() { set_metrics(prev_); }
  ScopedMetrics(const ScopedMetrics&) = delete;
  ScopedMetrics& operator=(const ScopedMetrics&) = delete;

 private:
  MetricsRegistry* prev_;
};

}  // namespace sgk::obs
