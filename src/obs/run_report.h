// Schema-versioned machine-readable bench output (BENCH_*.json).
//
// Every bench binary gains `--json <path>` via the harness (see
// harness/bench_io.h); the file it writes is assembled here from three
// ingredients: whatever bench-specific payload the binary provides (sweep
// series, table rows), the MetricsRegistry aggregate state, and per-
// (protocol, event) span rollups derived from the tracer. The schema is
// documented in docs/observability.md and guarded by the bench_gate tool.
#pragma once

#include <string>

#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "obs/wallclock.h"

namespace sgk::obs {

/// Schema identifier written as the "schema" field of every BENCH_*.json.
inline constexpr const char* kBenchSchema = "sgk-bench/1";
/// Bumped schema for reports carrying the "wallclock" section. A report
/// stays at v1 unless wall-clock mode is on, so `--wallclock`-less output
/// remains byte-identical across the schema bump.
inline constexpr const char* kBenchSchemaWallclock = "sgk-bench/2";
/// Bumped schema for reports carrying the rekey-pipeline "batch" payload
/// (bench/churn_storm and any server bench run with batching enabled).
/// Supersedes v2: a v3 report may also carry the "wallclock" section —
/// ObsSession::finish only upgrades v1 reports and never downgrades one a
/// bench already stamped.
inline constexpr const char* kBenchSchemaBatch = "sgk-bench/3";

class RunReport {
 public:
  explicit RunReport(std::string bench_name);

  /// Replaces the "schema" field in place (used when the wallclock section
  /// upgrades a report to kBenchSchemaWallclock).
  void set_schema(const char* schema);

  /// Bench-specific payload, e.g. "sweep" or "table".
  void add_section(std::string name, Json value);

  /// Snapshots registry counters + histograms into the "metrics" section.
  void add_metrics(const MetricsRegistry& registry);

  /// Derives per-(protocol, event) rollups — event count, total/mean
  /// duration, and per-phase duration totals — into "span_rollup".
  void add_span_rollup(const Tracer& tracer);

  /// The assembled document ("schema", "bench", sections in insert order).
  const Json& json() const { return doc_; }

 private:
  Json doc_;
};

/// Aggregates closed kEvent roots by (protocol attr, span name): returns an
/// array of {"protocol","event","count","total_ms","mean_ms","phases":
/// {phase: total_ms}} rows. Phase totals tile the event roots, so for each
/// row sum(phases) == total_ms up to float rounding.
Json span_rollup_json(const Tracer& tracer);

/// Writes `doc` pretty-printed to `path`. On failure returns false and, when
/// `error` is non-null, stores a message naming the path.
bool write_json_file(const std::string& path, const Json& doc,
                     std::string* error = nullptr);

/// Writes the tracer's Chrome trace_event JSON to `path` (open it in
/// chrome://tracing or https://ui.perfetto.dev). When `wall` is non-null its
/// buffered spans are appended as a second track (pid 1, "wall clock
/// (host)") so the virtual and wall timelines of the same run sit side by
/// side in Perfetto.
bool write_chrome_trace_file(const std::string& path, const Tracer& tracer,
                             std::string* error = nullptr,
                             const WallProfiler* wall = nullptr);

}  // namespace sgk::obs
