#include "obs/wallclock.h"

#include <algorithm>
#include <fstream>
#include <thread>

namespace sgk::obs {

namespace {

// Thread-local like the metrics/tracer sinks: worker threads of a parallel
// multi-group run see nullptr (no clock reads) unless an executor installs a
// profiler, so the main thread's session profiler is never written
// cross-thread.
thread_local WallProfiler* g_wall_profiler = nullptr;

/// First line of `path` whose field name (text before ':') matches `field`,
/// trimmed; empty when the file or field is absent. /proc and /sys reads
/// only — no clocks, no environment variables.
std::string read_keyed_line(const char* path, const std::string& field) {
  std::ifstream in(path);
  std::string line;
  while (std::getline(in, line)) {
    const std::size_t colon = line.find(':');
    if (colon == std::string::npos) continue;
    std::string k = line.substr(0, colon);
    while (!k.empty() && (k.back() == ' ' || k.back() == '\t')) k.pop_back();
    if (k != field) continue;
    std::string v = line.substr(colon + 1);
    const std::size_t start = v.find_first_not_of(" \t");
    return start == std::string::npos ? std::string() : v.substr(start);
  }
  return {};
}

std::string read_first_line(const char* path) {
  std::ifstream in(path);
  std::string line;
  std::getline(in, line);
  while (!line.empty() && (line.back() == '\n' || line.back() == '\r'))
    line.pop_back();
  return line;
}

}  // namespace

WallProfiler* wall_profiler() { return g_wall_profiler; }
void set_wall_profiler(WallProfiler* profiler) { g_wall_profiler = profiler; }

WallCalibration calibrate_wall_timer() {
  WallCalibration cal;

  // Warm the clock path (first reads can fault in the vDSO page and train
  // the branch predictors; they are not representative).
  volatile std::uint64_t sink = 0;
  for (int i = 0; i < 2048; ++i) sink = wall_now_ns();

  // Resolution: smallest nonzero delta between consecutive reads. On a
  // coarse clock many consecutive reads tie, so spin until the value moves.
  double resolution = 0;
  for (int trial = 0; trial < 64; ++trial) {
    const std::uint64_t a = wall_now_ns();
    std::uint64_t b = a;
    for (int spin = 0; spin < 100000 && b == a; ++spin) b = wall_now_ns();
    if (b <= a) continue;
    const double delta = static_cast<double>(b - a);
    if (resolution == 0 || delta < resolution) resolution = delta;
  }
  cal.resolution_ns = resolution;

  // Overhead: the apparent duration of an empty scope, i.e. of two
  // back-to-back reads. Batch means absorb coarse-clock quantization; the
  // min over batches discards any batch inflated by preemption or a
  // frequency dip — the same min-of-k methodology the docs prescribe for
  // micro-measurements.
  constexpr int kBatches = 32;
  constexpr int kPairsPerBatch = 256;
  double overhead = 0;
  for (int batch = 0; batch < kBatches; ++batch) {
    std::uint64_t total = 0;
    for (int i = 0; i < kPairsPerBatch; ++i) {
      const std::uint64_t t0 = wall_now_ns();
      const std::uint64_t t1 = wall_now_ns();
      total += t1 - t0;
    }
    const double mean =
        static_cast<double>(total) / static_cast<double>(kPairsPerBatch);
    if (batch == 0 || mean < overhead) overhead = mean;
  }
  (void)sink;
  // Sanity clamp: a plausible vDSO clock read costs tens of ns; anything
  // past a microsecond means the estimate itself was perturbed, and a
  // too-large subtraction would zero out real work.
  cal.overhead_ns = std::clamp(overhead, 0.0, 1000.0);
  cal.batches = kBatches;
  return cal;
}

WallProfiler::WallProfiler() : cal_(calibrate_wall_timer()) {
  epoch_ns_ = wall_now_ns();
  spans_.reserve(1024);
}

void WallProfiler::record(const std::string& site, std::uint64_t t0_ns,
                          std::uint64_t t1_ns) {
  const double raw =
      t1_ns > t0_ns ? static_cast<double>(t1_ns - t0_ns) : 0.0;
  const double ns = std::max(0.0, raw - cal_.overhead_ns);
  const auto it = sites_.try_emplace(site).first;
  it->second.observe(ns);
  if (spans_.size() < kMaxSpans) {
    const std::uint64_t rel = t0_ns > epoch_ns_ ? t0_ns - epoch_ns_ : 0;
    spans_.push_back(SpanRec{&it->first, rel, ns});
  } else {
    ++dropped_;
  }
}

void WallProfiler::observe(const std::string& site, double ns) {
  sites_[site].observe(std::max(0.0, ns));
}

const Histogram* WallProfiler::site(const std::string& name) const {
  const auto it = sites_.find(name);
  return it == sites_.end() ? nullptr : &it->second;
}

Json WallProfiler::to_json() const {
  Json doc = Json::object();
  {
    Json cal = Json::object();
    cal.set("timer_overhead_ns", Json(cal_.overhead_ns));
    cal.set("resolution_ns", Json(cal_.resolution_ns));
    cal.set("batches", Json(cal_.batches));
    doc.set("calibration", std::move(cal));
  }
  doc.set("env", wall_env_json());
  Json sites = Json::object();
  for (const auto& [name, h] : sites_) {
    Json s = Json::object();
    s.set("count", Json(h.count()));
    s.set("sum_ns", Json(h.sum()));
    s.set("min_ns", Json(h.min()));
    s.set("mean_ns", Json(h.mean()));
    s.set("p50_ns", Json(h.quantile(0.5)));
    s.set("p95_ns", Json(h.quantile(0.95)));
    s.set("max_ns", Json(h.max()));
    sites.set(name, std::move(s));
  }
  doc.set("sites", std::move(sites));
  doc.set("spans_recorded", Json(static_cast<std::uint64_t>(spans_.size())));
  doc.set("spans_dropped", Json(dropped_));
  return doc;
}

Json WallProfiler::trace_events_json() const {
  Json events = Json::array();
  {
    Json meta = Json::object();
    meta.set("ph", Json("M"));
    meta.set("name", Json("process_name"));
    meta.set("pid", Json(1));
    meta.set("tid", Json(0));
    Json args = Json::object();
    args.set("name", Json("wall clock (host)"));
    meta.set("args", std::move(args));
    events.push(std::move(meta));
  }
  for (const SpanRec& s : spans_) {
    Json e = Json::object();
    e.set("name", Json(*s.site));
    e.set("cat", Json("wall"));
    e.set("ph", Json("X"));
    e.set("pid", Json(1));
    e.set("tid", Json(0));
    e.set("ts", Json(static_cast<double>(s.start_ns) / 1000.0));  // host us
    e.set("dur", Json(s.dur_ns / 1000.0));
    events.push(std::move(e));
  }
  return events;
}

Json wall_env_json() {
  Json env = Json::object();
  std::string cpu = read_keyed_line("/proc/cpuinfo", "model name");
  if (cpu.empty()) cpu = read_keyed_line("/proc/cpuinfo", "Model");  // arm
  env.set("cpu", Json(cpu.empty() ? "unknown" : cpu));
  env.set("cpus",
          Json(static_cast<std::uint64_t>(std::thread::hardware_concurrency())));
  const std::string governor = read_first_line(
      "/sys/devices/system/cpu/cpu0/cpufreq/scaling_governor");
  env.set("governor", Json(governor.empty() ? "unknown" : governor));
#if defined(__clang__)
  env.set("compiler", Json(std::string("clang ") + __clang_version__));
#elif defined(__GNUC__)
  env.set("compiler", Json(std::string("gcc ") + __VERSION__));
#else
  env.set("compiler", Json("unknown"));
#endif
#if defined(NDEBUG)
  env.set("build", Json("release"));
#else
  env.set("build", Json("debug"));
#endif
#if defined(__x86_64__) || defined(_M_X64)
  env.set("arch", Json("x86_64"));
#elif defined(__aarch64__)
  env.set("arch", Json("aarch64"));
#else
  env.set("arch", Json("unknown"));
#endif
  return env;
}

}  // namespace sgk::obs
