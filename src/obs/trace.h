// Span-based tracer driven by the simulator's virtual clock.
//
// The tracer records three related shapes of data:
//
//   * membership-event root spans (SpanKind::kEvent) opened by the harness
//     around each measured operation (join, leave, partition, merge, ...);
//   * protocol-phase spans (SpanKind::kPhase) that tile the open event span:
//     a `phase("x")` mark at virtual time t closes the previous phase at t
//     and opens "x" at t, and `end_event(end)` closes the last one at `end`.
//     By construction the phase durations of an event sum exactly to the
//     event's duration — this is the per-phase breakdown BENCH_*.json rolls
//     up (see docs/observability.md);
//   * free spans (SpanKind::kSpan, e.g. per-machine compute charges from the
//     CPU scheduler) and zero-width instants (SpanKind::kInstant, e.g. view
//     installs and key installs), each placed on an explicit track.
//
// Time handling: every Experiment runs its own Simulator starting at virtual
// time 0. `use_clock()` re-bases the tracer so that consecutive experiments
// lay out sequentially on the trace timeline instead of overlapping: the new
// clock's 0 maps to the current high-water mark. All public *_at entry points
// take *clock* coordinates (the current simulator's time); spans store
// trace-line coordinates internally.
//
// Instrumentation sites use the SGK_TRACE(stmt) macro: a single global
// pointer null-check when tracing is compiled in, nothing at all when built
// with SGK_TRACE_DISABLED. Never pass key material into attributes — the
// gka_lint rule GKA006 enforces this statically.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "obs/json.h"

namespace sgk::obs {

using SpanId = std::uint32_t;
inline constexpr SpanId kNoSpan = 0;

enum class SpanKind : std::uint8_t { kSpan, kEvent, kPhase, kInstant };

struct Span {
  std::string name;
  SpanKind kind = SpanKind::kSpan;
  SpanId parent = kNoSpan;
  std::uint32_t track = 0;  // 0 = events/phases; 1 + machine = machine tracks
  double start_ms = 0;      // trace-line coordinates
  double end_ms = -1;       // < start_ms while still open
  std::vector<std::pair<std::string, Json>> attrs;

  bool open() const { return end_ms < start_ms; }
  double duration_ms() const { return open() ? 0.0 : end_ms - start_ms; }
};

class Tracer {
 public:
  /// Re-bases clock coordinates so the new clock's 0 lands at the current
  /// high-water mark; call once per Experiment/Simulator before tracing.
  void use_clock();

  // -- membership-event roots + phase tiling ------------------------------

  /// Opens a root span for a membership event at clock time `clock_now`.
  SpanId begin_event(std::string name, double clock_now);
  /// True between begin_event and end_event.
  bool event_active() const { return event_ != kNoSpan; }
  /// The open event root (kNoSpan outside an event).
  SpanId current_event() const { return event_; }
  /// Sets an attribute on the open event root; no-op outside an event.
  void event_attr(std::string_view name, Json value);

  /// Marks a protocol-phase transition at `clock_now`: closes the open phase
  /// and opens `name` as a child of the event root. Consecutive marks with
  /// the same name coalesce. No-op outside an event.
  void phase(std::string_view name, double clock_now);

  /// Closes the event root at clock time `clock_end` (the instant the last
  /// member installed the key). The open phase is closed at `clock_end` too;
  /// any phase that started at/after `clock_end` (late straggler handlers)
  /// is clamped to zero width so phase durations still sum to the root's.
  void end_event(double clock_end);

  // -- free spans / instants ----------------------------------------------

  SpanId begin_span_at(std::string name, double clock_start, SpanId parent,
                       std::uint32_t track);
  void end_span_at(SpanId id, double clock_end);
  /// Zero-width marker; parented under the open event when `parent` is
  /// kNoSpan and an event is active.
  SpanId instant(std::string name, double clock_now, std::uint32_t track = 0);

  /// Sets an attribute on any open-or-closed span.
  void attr(SpanId id, std::string_view name, Json value);

  /// Names a track ("thread") in the Chrome trace, e.g. "machine 3".
  void set_track_name(std::uint32_t track, std::string name);

  // -- inspection / export ------------------------------------------------

  const std::vector<Span>& spans() const { return spans_; }
  const Span& span(SpanId id) const { return spans_[id - 1]; }

  /// Chrome trace_event JSON ({"traceEvents": [...]}) loadable in
  /// chrome://tracing and Perfetto. Timestamps are virtual microseconds.
  Json chrome_trace_json() const;

 private:
  Span& mut(SpanId id) { return spans_[id - 1]; }
  SpanId add_span(Span s);
  double to_line(double clock_ms) const { return offset_ + clock_ms; }
  void bump_high_water(double line_ms);

  std::vector<Span> spans_;
  double offset_ = 0;
  double high_water_ = 0;
  SpanId event_ = kNoSpan;
  SpanId open_phase_ = kNoSpan;
  std::vector<SpanId> event_phases_;
  std::vector<std::pair<std::uint32_t, std::string>> track_names_;
};

/// Ambient tracer used by instrumentation sites; nullptr (the default)
/// disables tracing. Thread-local: worker threads of a parallel run see
/// their own slot (null unless their executor installs one), so tracing on
/// the main thread never races them.
Tracer* tracer();
void set_tracer(Tracer* tracer);

}  // namespace sgk::obs

// Statement guard for instrumentation sites. `tr` is bound to the active
// tracer inside the statement. Compiles to a single global-pointer test, or
// to nothing under SGK_TRACE_DISABLED.
#if defined(SGK_TRACE_DISABLED)
// Dead branch: the statement is still type-checked (so instrumentation can't
// rot behind the flag) but constant-folds away, parameters and all.
#define SGK_TRACE(...)                            \
  do {                                            \
    if (false) {                                  \
      if (::sgk::obs::Tracer* tr = nullptr) {     \
        __VA_ARGS__;                              \
      }                                           \
    }                                             \
  } while (false)
#else
#define SGK_TRACE(...)                                   \
  do {                                                   \
    if (::sgk::obs::Tracer* tr = ::sgk::obs::tracer()) { \
      __VA_ARGS__;                                       \
    }                                                    \
  } while (false)
#endif
