#include "obs/run_report.h"

#include <cstdio>
#include <map>

namespace sgk::obs {

RunReport::RunReport(std::string bench_name) {
  doc_ = Json::object();
  doc_.set("schema", Json(kBenchSchema));
  doc_.set("bench", Json(std::move(bench_name)));
}

void RunReport::set_schema(const char* schema) {
  // Json::set replaces in place, so the field keeps its leading position.
  doc_.set("schema", Json(schema));
}

void RunReport::add_section(std::string name, Json value) {
  doc_.set(std::move(name), std::move(value));
}

void RunReport::add_metrics(const MetricsRegistry& registry) {
  doc_.set("metrics", registry.to_json());
}

void RunReport::add_span_rollup(const Tracer& tr) {
  doc_.set("span_rollup", span_rollup_json(tr));
}

Json span_rollup_json(const Tracer& tr) {
  struct Rollup {
    std::uint64_t count = 0;
    double total_ms = 0;
    std::map<std::string, double> phases;
  };
  // Key: protocol + '\0' + event name (events without a protocol attribute
  // roll up under "").
  std::map<std::string, Rollup> rollups;

  const std::vector<Span>& spans = tr.spans();
  std::vector<std::string> event_key(spans.size() + 1);
  for (std::size_t i = 0; i < spans.size(); ++i) {
    const Span& s = spans[i];
    if (s.kind != SpanKind::kEvent || s.open()) continue;
    std::string proto;
    for (const auto& [k, v] : s.attrs)
      if (k == "protocol" && v.is_string()) proto = v.as_string();
    std::string key = proto + '\0' + s.name;
    event_key[i + 1] = key;
    Rollup& r = rollups[key];
    ++r.count;
    r.total_ms += s.duration_ms();
  }
  for (const Span& s : spans) {
    if (s.kind != SpanKind::kPhase || s.open() || s.parent == kNoSpan) continue;
    const std::string& key = event_key[s.parent];
    if (key.empty()) continue;
    rollups[key].phases[s.name] += s.duration_ms();
  }

  Json rows = Json::array();
  for (const auto& [key, r] : rollups) {
    const std::size_t sep = key.find('\0');
    Json row = Json::object();
    row.set("protocol", Json(key.substr(0, sep)));
    row.set("event", Json(key.substr(sep + 1)));
    row.set("count", Json(r.count));
    row.set("total_ms", Json(r.total_ms));
    row.set("mean_ms",
            Json(r.count == 0 ? 0.0 : r.total_ms / static_cast<double>(r.count)));
    Json phases = Json::object();
    for (const auto& [name, ms] : r.phases) phases.set(name, Json(ms));
    row.set("phases", std::move(phases));
    rows.push(std::move(row));
  }
  return rows;
}

namespace {

bool write_text_file(const std::string& path, const std::string& text,
                     std::string* error) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    if (error != nullptr) *error = "cannot open '" + path + "' for writing";
    return false;
  }
  const std::size_t written = std::fwrite(text.data(), 1, text.size(), f);
  const bool closed = std::fclose(f) == 0;
  if (written != text.size() || !closed) {
    if (error != nullptr) *error = "short write to '" + path + "'";
    return false;
  }
  return true;
}

}  // namespace

bool write_json_file(const std::string& path, const Json& doc,
                     std::string* error) {
  return write_text_file(path, doc.dump(2) + "\n", error);
}

bool write_chrome_trace_file(const std::string& path, const Tracer& tr,
                             std::string* error, const WallProfiler* wall) {
  Json doc = tr.chrome_trace_json();
  if (wall != nullptr) {
    Json wall_events = wall->trace_events_json();
    for (auto& [name, value] : doc.as_object()) {
      if (name != "traceEvents") continue;
      for (Json& e : wall_events.as_array()) value.push(std::move(e));
      break;
    }
  }
  return write_text_file(path, doc.dump() + "\n", error);
}

}  // namespace sgk::obs
