#include "obs/json.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace sgk::obs {

Json& Json::push(Json v) {
  Array& a = get<Array>("array");
  a.push_back(std::move(v));
  return a.back();
}

Json& Json::set(std::string name, Json v) {
  Object& o = get<Object>("object");
  for (Member& m : o) {
    if (m.first == name) {
      m.second = std::move(v);
      return m.second;
    }
  }
  o.emplace_back(std::move(name), std::move(v));
  return o.back().second;
}

const Json* Json::find(std::string_view name) const {
  const Object* o = std::get_if<Object>(&value_);
  if (o == nullptr) return nullptr;
  for (const Member& m : *o)
    if (m.first == name) return &m.second;
  return nullptr;
}

const Json& Json::at(std::string_view name) const {
  const Json* p = find(name);
  if (p == nullptr) throw JsonError("json: missing key '" + std::string(name) + "'");
  return *p;
}

const Json& Json::at(std::size_t i) const {
  const Array& a = get<Array>("array");
  if (i >= a.size()) throw JsonError("json: index out of range");
  return a[i];
}

std::size_t Json::size() const {
  if (const Array* a = std::get_if<Array>(&value_)) return a->size();
  if (const Object* o = std::get_if<Object>(&value_)) return o->size();
  return 0;
}

namespace {

void write_escaped(std::string& out, const std::string& s) {
  out.push_back('"');
  for (unsigned char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(static_cast<char>(c));
        }
    }
  }
  out.push_back('"');
}

void write_number(std::string& out, double v) {
  if (!std::isfinite(v)) {
    out += "null";  // JSON has no inf/nan
    return;
  }
  if (v == std::floor(v) && std::fabs(v) <= 9.007199254740992e15) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(v));
    out += buf;
    return;
  }
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  out += buf;
}

void newline_indent(std::string& out, int indent, int depth) {
  if (indent < 0) return;
  out.push_back('\n');
  out.append(static_cast<std::size_t>(indent) * static_cast<std::size_t>(depth), ' ');
}

}  // namespace

void Json::write(std::string& out, int indent, int depth) const {
  switch (kind()) {
    case Kind::kNull:
      out += "null";
      return;
    case Kind::kBool:
      out += std::get<bool>(value_) ? "true" : "false";
      return;
    case Kind::kNumber:
      write_number(out, std::get<double>(value_));
      return;
    case Kind::kString:
      write_escaped(out, std::get<std::string>(value_));
      return;
    case Kind::kArray: {
      const Array& a = std::get<Array>(value_);
      if (a.empty()) {
        out += "[]";
        return;
      }
      out.push_back('[');
      for (std::size_t i = 0; i < a.size(); ++i) {
        if (i != 0) out.push_back(',');
        newline_indent(out, indent, depth + 1);
        a[i].write(out, indent, depth + 1);
      }
      newline_indent(out, indent, depth);
      out.push_back(']');
      return;
    }
    case Kind::kObject: {
      const Object& o = std::get<Object>(value_);
      if (o.empty()) {
        out += "{}";
        return;
      }
      out.push_back('{');
      for (std::size_t i = 0; i < o.size(); ++i) {
        if (i != 0) out.push_back(',');
        newline_indent(out, indent, depth + 1);
        write_escaped(out, o[i].first);
        out.push_back(':');
        if (indent >= 0) out.push_back(' ');
        o[i].second.write(out, indent, depth + 1);
      }
      newline_indent(out, indent, depth);
      out.push_back('}');
      return;
    }
  }
}

std::string Json::dump(int indent) const {
  std::string out;
  write(out, indent, 0);
  return out;
}

// ---------------------------------------------------------------------------
// parser

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Json parse_document() {
    Json v = parse_value(0);
    skip_ws();
    if (pos_ != text_.size()) fail("trailing characters after document");
    return v;
  }

 private:
  static constexpr int kMaxDepth = 200;

  [[noreturn]] void fail(const std::string& why) const {
    throw JsonError("json parse error at offset " + std::to_string(pos_) +
                    ": " + why);
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r'))
      ++pos_;
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  bool consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  void expect(char c) {
    if (!consume(c)) fail(std::string("expected '") + c + "'");
  }

  void expect_literal(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) != lit) fail("invalid literal");
    pos_ += lit.size();
  }

  Json parse_value(int depth) {
    if (depth > kMaxDepth) fail("nesting too deep");
    skip_ws();
    const char c = peek();
    switch (c) {
      case '{': return parse_object(depth);
      case '[': return parse_array(depth);
      case '"': return Json(parse_string());
      case 't': expect_literal("true"); return Json(true);
      case 'f': expect_literal("false"); return Json(false);
      case 'n': expect_literal("null"); return Json(nullptr);
      default: return parse_number();
    }
  }

  Json parse_object(int depth) {
    expect('{');
    Json obj = Json::object();
    skip_ws();
    if (consume('}')) return obj;
    for (;;) {
      skip_ws();
      if (peek() != '"') fail("expected object key string");
      std::string key = parse_string();
      skip_ws();
      expect(':');
      obj.set(std::move(key), parse_value(depth + 1));
      skip_ws();
      if (consume(',')) continue;
      expect('}');
      return obj;
    }
  }

  Json parse_array(int depth) {
    expect('[');
    Json arr = Json::array();
    skip_ws();
    if (consume(']')) return arr;
    for (;;) {
      arr.push(parse_value(depth + 1));
      skip_ws();
      if (consume(',')) continue;
      expect(']');
      return arr;
    }
  }

  unsigned parse_hex4() {
    unsigned v = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = peek();
      ++pos_;
      v <<= 4;
      if (c >= '0' && c <= '9') v |= static_cast<unsigned>(c - '0');
      else if (c >= 'a' && c <= 'f') v |= static_cast<unsigned>(c - 'a' + 10);
      else if (c >= 'A' && c <= 'F') v |= static_cast<unsigned>(c - 'A' + 10);
      else fail("invalid \\u escape");
    }
    return v;
  }

  void append_utf8(std::string& out, unsigned cp) {
    if (cp < 0x80) {
      out.push_back(static_cast<char>(cp));
    } else if (cp < 0x800) {
      out.push_back(static_cast<char>(0xC0 | (cp >> 6)));
      out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else if (cp < 0x10000) {
      out.push_back(static_cast<char>(0xE0 | (cp >> 12)));
      out.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else {
      out.push_back(static_cast<char>(0xF0 | (cp >> 18)));
      out.push_back(static_cast<char>(0x80 | ((cp >> 12) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    for (;;) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20) fail("control character in string");
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape");
      const char e = text_[pos_++];
      switch (e) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          unsigned cp = parse_hex4();
          if (cp >= 0xD800 && cp < 0xDC00 && text_.substr(pos_, 2) == "\\u") {
            pos_ += 2;
            const unsigned lo = parse_hex4();
            if (lo >= 0xDC00 && lo < 0xE000)
              cp = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
            else
              fail("invalid surrogate pair");
          }
          append_utf8(out, cp);
          break;
        }
        default: fail("invalid escape");
      }
    }
  }

  Json parse_number() {
    const std::size_t start = pos_;
    if (consume('-')) {}
    while (pos_ < text_.size() &&
           ((text_[pos_] >= '0' && text_[pos_] <= '9') || text_[pos_] == '.' ||
            text_[pos_] == 'e' || text_[pos_] == 'E' || text_[pos_] == '+' ||
            text_[pos_] == '-'))
      ++pos_;
    if (pos_ == start) fail("invalid value");
    const std::string token(text_.substr(start, pos_ - start));
    char* end = nullptr;
    const double v = std::strtod(token.c_str(), &end);
    if (end == nullptr || *end != '\0') fail("invalid number '" + token + "'");
    return Json(v);
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

Json Json::parse(std::string_view text) { return Parser(text).parse_document(); }

}  // namespace sgk::obs
