#include "obs/metrics.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace sgk::obs {

namespace {
// Thread-local so parallel multi-group workers can install a per-group
// registry without racing each other or the main thread's session registry.
// A freshly spawned worker sees nullptr (recording disabled) until its
// executor installs a sink.
thread_local MetricsRegistry* g_metrics = nullptr;
}  // namespace

MetricsRegistry* metrics() { return g_metrics; }
void set_metrics(MetricsRegistry* registry) { g_metrics = registry; }

int Histogram::bucket_index(double v) {
  if (!(v > 0) || std::isnan(v)) return 0;  // <= 0 and nan underflow
  int exp = 0;
  const double frac = std::frexp(v, &exp);  // v = frac * 2^exp, frac in [0.5, 1)
  --exp;                                    // v = (2*frac) * 2^exp, 2*frac in [1, 2)
  if (exp < kMinExp) return 0;
  if (exp >= kMaxExp) return kBucketCount - 1;
  const double within = 2.0 * frac - 1.0;  // [0, 1) across the decade
  int sub = static_cast<int>(within * kSubBuckets);
  sub = std::min(sub, kSubBuckets - 1);
  return 1 + (exp - kMinExp) * kSubBuckets + sub;
}

std::pair<double, double> Histogram::bucket_bounds(int index) {
  if (index <= 0) return {0.0, std::ldexp(1.0, kMinExp)};
  if (index >= kBucketCount - 1)
    return {std::ldexp(1.0, kMaxExp), std::numeric_limits<double>::infinity()};
  const int linear = index - 1;
  const int exp = kMinExp + linear / kSubBuckets;
  const int sub = linear % kSubBuckets;
  const double base = std::ldexp(1.0, exp);
  const double step = base / kSubBuckets;
  return {base + step * sub, base + step * (sub + 1)};
}

void Histogram::observe(double v) {
  if (std::isnan(v)) return;
  if (buckets_.empty()) buckets_.assign(kBucketCount, 0);
  ++buckets_[static_cast<std::size_t>(bucket_index(v))];
  if (count_ == 0) {
    min_ = max_ = v;
  } else {
    min_ = std::min(min_, v);
    max_ = std::max(max_, v);
  }
  ++count_;
  sum_ += v;
}

double Histogram::quantile(double q) const {
  if (count_ == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  // Index of the q-th observation (nearest-rank, 0-based).
  const double rank = q * static_cast<double>(count_ - 1);
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    const std::uint64_t n = buckets_[i];
    if (n == 0) continue;
    if (static_cast<double>(seen + n - 1) >= rank) {
      const auto [lo, hi] = bucket_bounds(static_cast<int>(i));
      if (!std::isfinite(hi)) return max_;
      // Interpolate the rank's position inside this bucket.
      const double within =
          (rank - static_cast<double>(seen)) / static_cast<double>(n);
      const double v = lo + (hi - lo) * std::clamp(within, 0.0, 1.0);
      return std::clamp(v, min_, max_);
    }
    seen += n;
  }
  return max_;
}

void Histogram::merge(const Histogram& other) {
  if (other.count_ == 0) return;
  if (buckets_.empty()) buckets_.assign(kBucketCount, 0);
  for (std::size_t i = 0; i < other.buckets_.size(); ++i) {
    buckets_[i] += other.buckets_[i];
  }
  if (count_ == 0) {
    min_ = other.min_;
    max_ = other.max_;
  } else {
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
  }
  count_ += other.count_;
  sum_ += other.sum_;
}

Json Histogram::to_json() const {
  Json j = Json::object();
  j.set("count", Json(count_));
  j.set("sum", Json(sum_));
  j.set("min", Json(min()));
  j.set("max", Json(max()));
  j.set("mean", Json(mean()));
  j.set("p50", Json(quantile(0.50)));
  j.set("p95", Json(quantile(0.95)));
  Json buckets = Json::array();
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    if (buckets_[i] == 0) continue;
    const auto [lo, hi] = bucket_bounds(static_cast<int>(i));
    Json row = Json::array();
    row.push(Json(lo));
    row.push(Json(std::isfinite(hi) ? Json(hi) : Json(nullptr)));
    row.push(Json(buckets_[i]));
    buckets.push(std::move(row));
  }
  j.set("buckets", std::move(buckets));
  return j;
}

void MetricsRegistry::merge_from(const MetricsRegistry& other) {
  for (const auto& [name, c] : other.counters()) counter(name).add(c.value());
  for (const auto& [name, h] : other.histograms()) histogram(name).merge(h);
}

void MetricsRegistry::merge_from(const MetricsRegistry& other,
                                 const std::string& prefix) {
  for (const auto& [name, c] : other.counters()) {
    counter(prefix + name).add(c.value());
  }
  for (const auto& [name, h] : other.histograms()) {
    histogram(prefix + name).merge(h);
  }
}

Json MetricsRegistry::to_json() const {
  Json j = Json::object();
  Json cj = Json::object();
  for (const auto& [name, c] : counters_) cj.set(name, Json(c.value()));
  j.set("counters", std::move(cj));
  Json hj = Json::object();
  for (const auto& [name, h] : histograms_) hj.set(name, h.to_json());
  j.set("histograms", std::move(hj));
  return j;
}

}  // namespace sgk::obs
