#include "obs/trace.h"

#include <algorithm>

namespace sgk::obs {

namespace {
// Thread-local for the same reason as the metrics sink: parallel multi-group
// workers must not race the main thread's session tracer. Workers default to
// nullptr (tracing disabled) unless an executor installs a sink.
thread_local Tracer* g_tracer = nullptr;
}  // namespace

Tracer* tracer() { return g_tracer; }
void set_tracer(Tracer* tr) { g_tracer = tr; }

SpanId Tracer::add_span(Span s) {
  bump_high_water(s.start_ms);
  spans_.push_back(std::move(s));
  return static_cast<SpanId>(spans_.size());
}

void Tracer::bump_high_water(double line_ms) {
  high_water_ = std::max(high_water_, line_ms);
}

void Tracer::use_clock() {
  offset_ = high_water_;
}

SpanId Tracer::begin_event(std::string name, double clock_now) {
  end_event(clock_now);  // defensively close a dangling event
  Span s;
  s.name = std::move(name);
  s.kind = SpanKind::kEvent;
  s.start_ms = to_line(clock_now);
  event_ = add_span(std::move(s));
  return event_;
}

void Tracer::event_attr(std::string_view name, Json value) {
  if (event_ == kNoSpan) return;
  attr(event_, name, std::move(value));
}

void Tracer::phase(std::string_view name, double clock_now) {
  if (event_ == kNoSpan) return;
  if (open_phase_ != kNoSpan && mut(open_phase_).name == name) return;
  const double t = to_line(clock_now);
  if (open_phase_ != kNoSpan) {
    Span& prev = mut(open_phase_);
    prev.end_ms = std::max(prev.start_ms, t);
    bump_high_water(prev.end_ms);
  }
  Span s;
  s.name = std::string(name);
  s.kind = SpanKind::kPhase;
  s.parent = event_;
  s.start_ms = t;
  open_phase_ = add_span(std::move(s));
  event_phases_.push_back(open_phase_);
}

void Tracer::end_event(double clock_end) {
  if (event_ == kNoSpan) return;
  const double end = std::max(to_line(clock_end), mut(event_).start_ms);
  // Tile: clamp every phase of this event into [event.start, end] so the
  // phase durations sum exactly to the root duration.
  for (SpanId id : event_phases_) {
    Span& p = mut(id);
    p.start_ms = std::min(p.start_ms, end);
    if (p.open() || p.end_ms > end) p.end_ms = end;
  }
  if (open_phase_ != kNoSpan) mut(open_phase_).end_ms = end;
  Span& root = mut(event_);
  root.end_ms = end;
  bump_high_water(end);
  event_ = kNoSpan;
  open_phase_ = kNoSpan;
  event_phases_.clear();
}

SpanId Tracer::begin_span_at(std::string name, double clock_start,
                             SpanId parent, std::uint32_t track) {
  Span s;
  s.name = std::move(name);
  s.parent = parent;
  s.track = track;
  s.start_ms = to_line(clock_start);
  return add_span(std::move(s));
}

void Tracer::end_span_at(SpanId id, double clock_end) {
  if (id == kNoSpan) return;
  Span& s = mut(id);
  s.end_ms = std::max(s.start_ms, to_line(clock_end));
  bump_high_water(s.end_ms);
}

SpanId Tracer::instant(std::string name, double clock_now,
                       std::uint32_t track) {
  Span s;
  s.name = std::move(name);
  s.kind = SpanKind::kInstant;
  s.parent = (track == 0) ? event_ : kNoSpan;
  s.track = track;
  s.start_ms = to_line(clock_now);
  s.end_ms = s.start_ms;
  return add_span(std::move(s));
}

void Tracer::attr(SpanId id, std::string_view name, Json value) {
  if (id == kNoSpan) return;
  mut(id).attrs.emplace_back(std::string(name), std::move(value));
}

void Tracer::set_track_name(std::uint32_t track, std::string name) {
  for (auto& [t, n] : track_names_) {
    if (t == track) {
      n = std::move(name);
      return;
    }
  }
  track_names_.emplace_back(track, std::move(name));
}

Json Tracer::chrome_trace_json() const {
  Json events = Json::array();
  for (const auto& [track, name] : track_names_) {
    Json m = Json::object();
    m.set("ph", Json("M"));
    m.set("name", Json("thread_name"));
    m.set("pid", Json(0));
    m.set("tid", Json(static_cast<std::uint64_t>(track)));
    Json margs = Json::object();
    margs.set("name", Json(name));
    m.set("args", std::move(margs));
    events.push(std::move(m));
  }
  for (std::size_t i = 0; i < spans_.size(); ++i) {
    const Span& s = spans_[i];
    Json e = Json::object();
    e.set("name", Json(s.name));
    e.set("cat", Json(s.kind == SpanKind::kEvent   ? "event"
                      : s.kind == SpanKind::kPhase ? "phase"
                      : s.kind == SpanKind::kInstant ? "instant"
                                                     : "span"));
    e.set("ph", Json(s.kind == SpanKind::kInstant ? "i" : "X"));
    e.set("pid", Json(0));
    e.set("tid", Json(static_cast<std::uint64_t>(s.track)));
    e.set("ts", Json(s.start_ms * 1000.0));  // virtual microseconds
    if (s.kind == SpanKind::kInstant) {
      e.set("s", Json("t"));  // thread-scoped instant
    } else {
      e.set("dur", Json(s.duration_ms() * 1000.0));
    }
    Json args = Json::object();
    args.set("span_id", Json(static_cast<std::uint64_t>(i + 1)));
    if (s.parent != kNoSpan)
      args.set("parent_span_id", Json(static_cast<std::uint64_t>(s.parent)));
    for (const auto& [k, v] : s.attrs) args.set(k, v);
    e.set("args", std::move(args));
    events.push(std::move(e));
  }
  Json doc = Json::object();
  doc.set("traceEvents", std::move(events));
  doc.set("displayTimeUnit", Json("ms"));
  return doc;
}

}  // namespace sgk::obs
