// Calibrated wall-clock profiling beside the virtual clock.
//
// Everything else in this repo measures *virtual* cost-model time — faithful
// to the paper's methodology but blind to how fast the code actually runs.
// The WallProfiler is the second clock: RAII scoped timers around the real
// hot paths (modular exponentiation, sign/verify, validated decode, frame
// framing) aggregate host-clock nanoseconds into the same log-linear
// histograms the metrics layer uses, so every bench can emit real ns/op per
// primitive and per membership event *beside* its virtual-ms numbers.
//
// Two hard rules keep the dual-clock design honest:
//
//  * Determinism is untouched. The profiler never feeds anything back into
//    simulation, metrics, or tracing state; with `--wallclock` on, two runs
//    still produce RunReports that are byte-identical outside the
//    "wallclock" section. Instrumentation sites check the thread-local
//    pointer (null by default), so a run without the flag does no clock
//    reads at all and its output is byte-identical to a build without this
//    file.
//
//  * This file is the only sanctioned host-clock boundary. The gka_lint
//    rules GKA303/GKA304 reject `system_clock`/`steady_clock` tokens in any
//    other file under src/ or bench/; callers time things through WallScope
//    or wall_now_ns(), never by reading a clock themselves.
//
// Timer noise handling (see docs/observability.md, "Wall-clock mode"):
// construction self-calibrates by measuring the scope-timer's own overhead
// (min of k batch means, after warmup) and that overhead is subtracted from
// every recorded interval, clamped at zero so a measured duration is never
// negative. Cross-machine comparisons should use ratios, not absolute ns —
// the bench_gate wall-trajectory mode is ratio-based and report-only by
// default for exactly that reason.
#pragma once

#include <chrono>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "obs/json.h"
#include "obs/metrics.h"

namespace sgk::obs {

/// Monotonic host-clock read in integer nanoseconds since an unspecified
/// epoch. The single place in the tree (outside tests) where a real clock is
/// read; everything else receives timestamps from here.
inline std::uint64_t wall_now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// Result of the startup self-calibration.
struct WallCalibration {
  /// Per-interval timer overhead (ns) subtracted from every recorded scope:
  /// the apparent duration of an empty back-to-back read pair, min of
  /// `batches` batch means so scheduler preemption cannot inflate it.
  double overhead_ns = 0;
  /// Smallest nonzero delta ever observed between consecutive reads.
  double resolution_ns = 0;
  /// Batches measured for the min-of-k estimate.
  int batches = 0;
};

class WallProfiler {
 public:
  /// Wall spans kept for the Chrome trace's wall-clock track. Aggregation
  /// into histograms is unbounded; the span buffer is capped so a long soak
  /// cannot grow the trace without bound (drops are counted).
  static constexpr std::size_t kMaxSpans = 1 << 16;

  /// Runs self-calibration (a few hundred microseconds) and stamps the
  /// profiler's epoch; spans are stored relative to it.
  WallProfiler();

  const WallCalibration& calibration() const { return cal_; }

  /// Records the closed raw-clock interval [t0_ns, t1_ns] against `site`:
  /// subtracts the calibrated timer overhead, clamps at zero, aggregates
  /// into the site histogram, and (buffer permitting) keeps the span for
  /// the trace's wall track.
  void record(const std::string& site, std::uint64_t t0_ns,
              std::uint64_t t1_ns);

  /// Aggregates an already-computed duration without a trace span (used by
  /// tests and by callers that timed across non-contiguous intervals).
  void observe(const std::string& site, double ns);

  /// Per-site histogram of calibrated ns/op; nullptr for an unknown site.
  const Histogram* site(const std::string& name) const;
  const std::map<std::string, Histogram>& sites() const { return sites_; }

  std::uint64_t spans_recorded() const { return spans_.size(); }
  std::uint64_t spans_dropped() const { return dropped_; }

  /// The RunReport "wallclock" section: {"calibration", "env", "sites",
  /// "spans_recorded", "spans_dropped"}. Site stats are suffixed _ns
  /// (count, sum_ns, min_ns, mean_ns, p50_ns, p95_ns, max_ns).
  Json to_json() const;

  /// Chrome trace_event entries for the wall-clock track: every buffered
  /// span as a complete event on pid 1 ("wall clock (host)"), timestamps in
  /// host microseconds relative to the profiler epoch. Appended beside the
  /// virtual-time events (pid 0) so Perfetto shows both timelines of the
  /// same run.
  Json trace_events_json() const;

 private:
  struct SpanRec {
    const std::string* site;  // key in sites_ (stable: std::map nodes)
    std::uint64_t start_ns;   // relative to epoch_ns_
    double dur_ns;            // overhead-subtracted
  };

  WallCalibration cal_;
  std::uint64_t epoch_ns_ = 0;
  std::map<std::string, Histogram> sites_;
  std::vector<SpanRec> spans_;
  std::uint64_t dropped_ = 0;
};

/// Measures the scope-timer overhead and clock resolution. Exposed for the
/// calibration sanity tests; WallProfiler's constructor calls it.
WallCalibration calibrate_wall_timer();

/// Environment snapshot recorded beside the numbers so a wall-clock JSON is
/// interpretable later: CPU model and count, cpufreq governor, compiler and
/// build flags, architecture. Never raises; unknown fields say "unknown".
Json wall_env_json();

/// Ambient profiler used by instrumentation sites; nullptr (the default)
/// disables wall-clock profiling entirely — no clock is read. Thread-local:
/// worker threads of a parallel run have their own (null) slot, so the main
/// thread's session profiler is never written cross-thread.
WallProfiler* wall_profiler();
void set_wall_profiler(WallProfiler* profiler);

/// RAII scoped timer: two clock reads around the protected region when a
/// profiler is installed, a single global-pointer test when not. `site`
/// must outlive the scope (string literals at every in-tree call site).
class WallScope {
 public:
  explicit WallScope(const char* site)
      : profiler_(wall_profiler()), site_(site) {
    if (profiler_ != nullptr) t0_ = wall_now_ns();
  }
  WallScope(const WallScope&) = delete;
  WallScope& operator=(const WallScope&) = delete;
  ~WallScope() {
    if (profiler_ != nullptr) profiler_->record(site_, t0_, wall_now_ns());
  }

 private:
  WallProfiler* profiler_;
  const char* site_;
  std::uint64_t t0_ = 0;
};

}  // namespace sgk::obs
