// Plain-text and CSV rendering of experiment results.
#pragma once

#include <ostream>
#include <string>

#include "harness/sweep.h"

namespace sgk {

/// Renders a sweep as a fixed-width table: one row per group size, one
/// column per series (protocol). Values in milliseconds.
void print_sweep_table(std::ostream& os, const std::string& title,
                       const SweepResult& result, int row_stride = 1);

/// Renders the sweep as CSV ("size,BD,CKD,...").
void print_sweep_csv(std::ostream& os, const SweepResult& result);

/// Writes the CSV to a file; returns false on I/O failure. When `error` is
/// non-null a failure fills it with a message naming the offending path.
bool write_sweep_csv(const std::string& path, const SweepResult& result,
                     std::string* error = nullptr);

/// Short textual summary (min/max per series and who wins at small / large
/// sizes) to make bench output self-explanatory.
void print_sweep_summary(std::ostream& os, const SweepResult& result);

}  // namespace sgk
