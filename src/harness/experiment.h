// Experiment harness: drives membership events against a simulated Secure
// Spread deployment and measures what the paper measures — the total elapsed
// time from the membership event until the key agreement has finished and
// every member has been notified of the new key (section 6).
#pragma once

#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "gcs/secure_group.h"
#include "crypto/drbg.h"
#include "gcs/spread.h"

namespace sgk {

/// Which member leaves in a leave experiment. The paper pins this down per
/// protocol (section 6.1.2): STR uses the middle member (average case), CKD
/// accounts for the 1/n chance of the controller leaving, GDH/BD are
/// oblivious to the choice.
enum class LeavePolicy {
  kRandom,   // uniform among members (matches CKD's 1/n controller factor)
  kMiddle,   // the n/2-th member in join order (STR's average case)
  kOldest,   // first joiner (CKD controller: the expensive case)
  kNewest,   // last joiner (GDH controller)
};

struct ExperimentConfig {
  Topology topology = lan_testbed();
  ProtocolKind protocol = ProtocolKind::kTgdh;
  DhBits dh_bits = DhBits::k512;
  CostModel cost = CostModel::paper2002();
  std::uint64_t seed = 1;
  /// Blinded-key recomputation in TGDH/STR (on in the paper's measured
  /// system; off for Table 1's operation counting).
  bool key_confirmation = true;
  /// Signature scheme for protocol messages.
  SigScheme signature = SigScheme::kRsa;
  /// Placement of member i: machine i % machine_count (the paper's uniform
  /// distribution over the testbed machines).
};

/// Result of one measured membership event.
struct EventResult {
  double elapsed_ms = 0;         // event injection -> last member keyed
  double membership_ms = 0;      // event injection -> last view install
  OpCounters total;              // summed over all members
  OpCounters max_member;         // heaviest single member
  std::size_t group_size = 0;    // resulting group size
};

class Experiment {
 public:
  explicit Experiment(ExperimentConfig config);
  ~Experiment();

  /// Adds a member without measuring (setup).
  void grow_to(std::size_t n);

  /// Measured events; each runs the simulation to quiescence and asserts
  /// that every member derived the same key.
  EventResult measure_join();
  EventResult measure_leave(LeavePolicy policy);
  /// `count` random members leave simultaneously (the paper's "partition"
  /// event at the group level: multiple members disappear in one view).
  EventResult measure_multi_leave(std::size_t count);
  /// Partitions the network into `parts` machine groups; elapsed time is the
  /// slowest component's re-key.
  EventResult measure_partition(const std::vector<std::vector<MachineId>>& parts);
  /// Heals all partitions; elapsed is until the merged group re-keys.
  EventResult measure_merge();

  std::size_t group_size() const;
  const std::vector<SecureGroupMember*> members() const;
  SpreadNetwork& network() { return net_; }
  Simulator& simulator() { return sim_; }

 private:
  SecureGroupMember& spawn();
  /// Opens the tracer's root span for a measured event at t0.
  void begin_event(const char* event_name, double t0);
  /// Runs the sim and collects timing/counter deltas for one event.
  EventResult finish_event(const char* event_name, double t0,
                           OpCounters before_total);
  /// Closes the root span at `keyed` and records event metrics.
  void record_event(const char* event_name, const EventResult& r, double keyed);
  OpCounters sum_counters() const;

  ExperimentConfig config_;
  Simulator sim_;
  SpreadNetwork net_;
  std::shared_ptr<Pki> pki_;
  Drbg rng_;
  std::vector<std::unique_ptr<SecureGroupMember>> members_;
  std::vector<OpCounters> last_counters_;  // per member slot, at event start
  std::size_t spawned_ = 0;
  /// Host-clock stamp taken in begin_event when a wall profiler is
  /// installed; record_event closes the interval so `--wallclock` runs get
  /// real ns per membership event beside the virtual elapsed_ms.
  std::uint64_t wall_t0_ = 0;
};

}  // namespace sgk
