#include "harness/report.h"

#include <algorithm>
#include <fstream>
#include <iomanip>

namespace sgk {

void print_sweep_table(std::ostream& os, const std::string& title,
                       const SweepResult& result, int row_stride) {
  os << "== " << title << " ==\n";
  os << std::setw(6) << "n";
  for (const Series& s : result.series) os << std::setw(14) << s.label;
  os << "\n";
  const auto sizes = result.sizes();
  for (std::size_t i = 0; i < sizes.size(); ++i) {
    if (row_stride > 1 && sizes[i] % static_cast<std::size_t>(row_stride) != 0 &&
        i != 0 && i + 1 != sizes.size())
      continue;
    os << std::setw(6) << sizes[i];
    for (const Series& s : result.series)
      os << std::setw(14) << std::fixed << std::setprecision(2) << s.values[i];
    os << "\n";
  }
}

void print_sweep_csv(std::ostream& os, const SweepResult& result) {
  os << "size";
  for (const Series& s : result.series) os << "," << s.label;
  os << "\n";
  const auto sizes = result.sizes();
  for (std::size_t i = 0; i < sizes.size(); ++i) {
    os << sizes[i];
    for (const Series& s : result.series)
      os << "," << std::fixed << std::setprecision(3) << s.values[i];
    os << "\n";
  }
}

bool write_sweep_csv(const std::string& path, const SweepResult& result,
                     std::string* error) {
  std::ofstream out(path);
  if (!out) {
    if (error) *error = "cannot open '" + path + "' for writing";
    return false;
  }
  print_sweep_csv(out, result);
  if (!out) {
    if (error) *error = "write to '" + path + "' failed";
    return false;
  }
  return true;
}

void print_sweep_summary(std::ostream& os, const SweepResult& result) {
  const auto sizes = result.sizes();
  if (sizes.empty()) return;
  // Winner (fastest protocol, ignoring the membership baseline) at the
  // smallest and largest measured sizes.
  auto winner_at = [&](std::size_t idx) -> const Series* {
    const Series* best = nullptr;
    for (const Series& s : result.series) {
      if (s.label == "Membership service") continue;
      if (best == nullptr || s.values[idx] < best->values[idx]) best = &s;
    }
    return best;
  };
  const Series* small = winner_at(0);
  const Series* large = winner_at(sizes.size() - 1);
  if (small)
    os << "fastest at n=" << sizes.front() << ": " << small->label << " ("
       << std::fixed << std::setprecision(2) << small->values.front() << " ms)\n";
  if (large)
    os << "fastest at n=" << sizes.back() << ": " << large->label << " ("
       << std::fixed << std::setprecision(2) << large->values.back() << " ms)\n";
  for (const Series& s : result.series) {
    const double lo = *std::min_element(s.values.begin(), s.values.end());
    const double hi = *std::max_element(s.values.begin(), s.values.end());
    os << "  " << s.label << ": " << std::fixed << std::setprecision(2) << lo
       << " .. " << hi << " ms\n";
  }
}

}  // namespace sgk
