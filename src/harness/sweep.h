// Parameter sweeps reproducing the paper's figures: average elapsed time per
// membership event as a function of group size, for every protocol plus the
// bare membership service.
#pragma once

#include <string>
#include <vector>

#include "harness/experiment.h"

namespace sgk {

struct Series {
  std::string label;
  std::vector<double> values;  // indexed by group size - min_size
  /// Per-size raw samples, one entry per seed (same indexing as `values`;
  /// `values[i]` is the mean of `samples[i]`). Feeds the median/p95 columns
  /// of BENCH_*.json and the CI perf gate.
  std::vector<std::vector<double>> samples;
};

struct SweepResult {
  std::size_t min_size = 2;
  std::size_t max_size = 50;
  std::vector<std::size_t> sizes() const;
  std::vector<Series> series;
};

struct SweepConfig {
  Topology topology = lan_testbed();
  DhBits dh_bits = DhBits::k512;
  CostModel cost = CostModel::paper2002();
  std::size_t min_size = 2;
  std::size_t max_size = 50;
  int seeds = 1;  // number of independent runs averaged
  /// Run i (i in [0, seeds)) uses experiment seed seed_base + i; benches
  /// thread --seed here so a sweep is reproducible from its RunReport.
  std::uint64_t seed_base = 1;
  std::vector<ProtocolKind> protocols = {
      ProtocolKind::kBd,  ProtocolKind::kCkd, ProtocolKind::kGdh,
      ProtocolKind::kStr, ProtocolKind::kTgdh, ProtocolKind::kNone};
};

/// Join sweep (Figures 11 / 14-left): grows a group one member at a time and
/// records each join's elapsed time; the value at size n is the time to join
/// into a group of n-1 members (resulting size n).
SweepResult sweep_join(const SweepConfig& config);

/// Leave sweep (Figures 12 / 14-right): grows to max size, then removes one
/// member at a time; the value at size n is the time to re-key after a leave
/// from a group of n members. The departing member follows the paper's
/// per-protocol test scenario: the middle member for STR, uniformly random
/// otherwise (which also realizes CKD's 1/n controller-leave factor).
SweepResult sweep_leave(const SweepConfig& config);

}  // namespace sgk
