// Chaos harness: one seeded fault plan against a full Secure Spread
// deployment.
//
// run_chaos builds a simulated deployment (network, daemons, members with
// the configured key agreement protocol), arms a FaultInjector with the
// plan derived from (seed, config), lets the schedule play out — cascaded
// joins/leaves/crashes/partitions landing inside in-flight agreements,
// wire-level drop/delay/duplication on every daemon copy — and then checks
// the chaos invariants (fault/invariants.h): every surviving member of the
// final healed component holds the same key at the same epoch, epochs never
// regressed, and the run settled before its deadline. The whole run is a
// pure function of the config, so a failing seed reproduces bit-for-bit
// from the verdict line alone (see docs/fault_injection.md).
#pragma once

#include <string>
#include <vector>

#include "fault/injector.h"
#include "fault/invariants.h"
#include "fault/plan.h"
#include "gcs/secure_group.h"
#include "gcs/spread.h"

namespace sgk {

struct ChaosConfig {
  Topology topology = lan_testbed();
  ProtocolKind protocol = ProtocolKind::kTgdh;
  DhBits dh_bits = DhBits::k512;
  CostModel cost = CostModel::paper2002();
  SigScheme signature = SigScheme::kRsa;
  std::uint64_t seed = 1;
  std::size_t initial_size = 8;
  /// Randomized churn ops to schedule (ignored when `script` is set).
  int events = 6;
  fault::FaultRates rates = fault::FaultRates::uniform(0.1);
  /// First churn op fires at start_ms; inter-op gaps are uniform in
  /// [min_gap_ms, max_gap_ms] — short enough that ops routinely land inside
  /// the previous op's key agreement (the cascaded regime).
  double start_ms = 50.0;
  double min_gap_ms = 5.0;
  double max_gap_ms = 40.0;
  /// Liveness bound: the run must settle within grace_ms (virtual) of the
  /// last churn op, else it records a timeout violation.
  double grace_ms = 30000.0;
  /// Scripted mode: when non-empty these ops replace the randomized
  /// schedule (regression reproductions, unit tests).
  std::vector<fault::ChurnOp> script;

  // ---- adversarial wire fuzzing (see src/fault/mutator.h) -----------------
  /// Probability that any one stamped frame / unicast is mutated. 0 keeps
  /// the wire honest (the chaos baseline regime).
  double mutation_rate = 0.0;
  /// Verify signatures at the members. When off, the mutator restricts
  /// itself to mutations that strict structural validation provably catches
  /// (detectable_only), so the run still may not diverge silently.
  bool verify_signatures = true;
  /// Per-member recovery watchdog (0 = disabled); fuzz runs arm it so frames
  /// erased outright (replay mutations) cannot wedge an agreement.
  double recovery_watchdog_ms = 0.0;
  /// Rekey batching for the deployment's network (default disabled, so the
  /// chaos baselines keep exercising the per-event rekey path).
  BatchConfig batch;
};

struct ChaosResult {
  /// Every invariant held: all survivors share one key at one epoch, no
  /// epoch regression, run settled before the deadline.
  bool converged = false;
  std::vector<std::string> violations;  // empty iff converged
  /// Last churn op (scheduled time) -> last key install, clamped to >= 0.
  double convergence_ms = 0.0;
  double end_ms = 0.0;      // virtual time when the run settled
  std::size_t final_size = 0;
  std::uint64_t final_epoch = 0;
  std::string fingerprint;  // final group key fingerprint (loggable)
  std::uint64_t restarts = 0;       // agreement restarts, summed over members
  std::uint64_t stale_dropped = 0;  // stale frames discarded, summed
  std::uint64_t churn_applied = 0;
  std::uint64_t frames_mutated = 0;   // wire frames the mutator corrupted
  std::uint64_t frames_rejected = 0;  // typed rejections, summed over members
  std::uint64_t recoveries = 0;       // quarantine rekeys, summed over members
  fault::FaultInjector::Stats wire;
};

/// Runs one chaos scenario to completion. Deterministic in `config`.
ChaosResult run_chaos(const ChaosConfig& config);

}  // namespace sgk
