#include "harness/sweep.h"

#include "util/check.h"

namespace sgk {

std::vector<std::size_t> SweepResult::sizes() const {
  std::vector<std::size_t> out;
  for (std::size_t n = min_size; n <= max_size; ++n) out.push_back(n);
  return out;
}

namespace {
const char* series_label(ProtocolKind kind) {
  return kind == ProtocolKind::kNone ? "Membership service" : to_string(kind);
}

LeavePolicy leave_policy_for(ProtocolKind kind) {
  // Section 6.1.2: STR is evaluated with the middle member leaving; the
  // other protocols with a random member (CKD's 1/n controller factor
  // arises naturally).
  return kind == ProtocolKind::kStr ? LeavePolicy::kMiddle : LeavePolicy::kRandom;
}
}  // namespace

SweepResult sweep_join(const SweepConfig& config) {
  SweepResult result;
  result.min_size = config.min_size;
  result.max_size = config.max_size;
  for (ProtocolKind kind : config.protocols) {
    Series series;
    series.label = series_label(kind);
    series.values.assign(config.max_size - config.min_size + 1, 0.0);
    series.samples.assign(series.values.size(), {});
    for (int seed = 0; seed < config.seeds; ++seed) {
      ExperimentConfig ec;
      ec.topology = config.topology;
      ec.protocol = kind;
      ec.dh_bits = config.dh_bits;
      ec.cost = config.cost;
      ec.seed = config.seed_base + static_cast<std::uint64_t>(seed);
      Experiment exp(ec);
      exp.grow_to(config.min_size - 1);
      for (std::size_t n = config.min_size; n <= config.max_size; ++n) {
        EventResult r = exp.measure_join();
        SGK_CHECK(r.group_size == n);
        series.values[n - config.min_size] += r.elapsed_ms / config.seeds;
        series.samples[n - config.min_size].push_back(r.elapsed_ms);
      }
    }
    result.series.push_back(std::move(series));
  }
  return result;
}

SweepResult sweep_leave(const SweepConfig& config) {
  SweepResult result;
  result.min_size = config.min_size;
  result.max_size = config.max_size;
  for (ProtocolKind kind : config.protocols) {
    Series series;
    series.label = series_label(kind);
    series.values.assign(config.max_size - config.min_size + 1, 0.0);
    series.samples.assign(series.values.size(), {});
    for (int seed = 0; seed < config.seeds; ++seed) {
      ExperimentConfig ec;
      ec.topology = config.topology;
      ec.protocol = kind;
      ec.dh_bits = config.dh_bits;
      ec.cost = config.cost;
      ec.seed = config.seed_base + static_cast<std::uint64_t>(seed);
      Experiment exp(ec);
      exp.grow_to(config.max_size);
      for (std::size_t n = config.max_size; n >= config.min_size; --n) {
        EventResult r = exp.measure_leave(leave_policy_for(kind));
        SGK_CHECK(r.group_size == n - 1);
        series.values[n - config.min_size] += r.elapsed_ms / config.seeds;
        series.samples[n - config.min_size].push_back(r.elapsed_ms);
      }
    }
    result.series.push_back(std::move(series));
  }
  return result;
}

}  // namespace sgk
