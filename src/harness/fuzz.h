// Fuzz harness: one seeded chaos run with adversarial wire mutation.
//
// run_fuzz drives run_chaos with a non-zero mutation rate and the recovery
// machinery armed, and converts the tentpole invariant — no single untrusted
// frame may crash a member, wedge a group, or cause silent key divergence —
// into a checkable result: any exception escaping the run is a crash
// violation (flag_crash), a member still mid-agreement at the deadline is a
// wedge (check_no_wedge, inside run_chaos), and key divergence is the
// existing convergence check. The whole run is a pure function of the
// config, so a failing (seed, rate, protocol) reproduces bit-for-bit.
#pragma once

#include <string>
#include <vector>

#include "harness/chaos.h"

namespace sgk {

struct FuzzConfig {
  /// The underlying chaos scenario. mutation_rate must be non-zero for the
  /// run to exercise anything; run_fuzz arms the recovery watchdog when the
  /// caller left it disabled.
  ChaosConfig chaos;
  /// Watchdog applied when chaos.recovery_watchdog_ms is 0: long enough for
  /// honest agreements to finish, short enough to retry well inside the
  /// chaos grace period.
  double default_watchdog_ms = 400.0;
};

struct FuzzResult {
  ChaosResult chaos;
  /// True when the run neither crashed, nor wedged, nor diverged.
  bool survived = false;
  /// Set when an exception escaped the run (the crash half of the tentpole
  /// invariant); the chaos violations then contain the what() string.
  bool crashed = false;
};

/// Runs one adversarial-wire scenario to completion. Deterministic in
/// `config`.
FuzzResult run_fuzz(const FuzzConfig& config);

}  // namespace sgk
