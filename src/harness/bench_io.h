// Shared command-line handling and observability plumbing for the bench
// binaries: every bench gains `--json <path>` (schema-versioned BENCH_*.json
// RunReport) and `--trace <path>` (Chrome trace_event file for Perfetto /
// chrome://tracing) through this header. See docs/observability.md.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "harness/sweep.h"
#include "obs/run_report.h"

namespace sgk {

/// Observability flags shared by every bench binary. Flags this parser does
/// not recognize (and all positional arguments) pass through in `rest`, in
/// their original order, so each bench keeps its own argument handling.
struct BenchOptions {
  std::string json_path;   // --json <path>
  std::string trace_path;  // --trace <path>
  /// --seed <n>: base seed for the bench's randomized choices. Recorded in
  /// the RunReport ("seed" section) so a BENCH_*.json names the run it came
  /// from and any result can be reproduced from the file alone.
  std::uint64_t seed = 1;
  bool seed_set = false;   // --seed was given explicitly
  /// --wallclock: also profile real host-clock ns/op at the instrumented
  /// sites (see obs/wallclock.h). Off by default; without it no host clock
  /// is read and all output stays byte-identical to a flagless run.
  bool wallclock = false;
  /// --threads <n>: worker threads for benches that parallelize (others
  /// ignore it). Recorded inside the report's "wallclock" env — wall
  /// trajectories from different thread counts must never be compared
  /// silently (tools/bench_gate refuses) — and deliberately NOT in any
  /// deterministic section: the same scenario at any thread count must
  /// produce byte-identical v1 report bytes.
  int threads = 1;
  bool threads_set = false;  // --threads was given explicitly
  std::vector<std::string> rest;

  bool observing() const { return !json_path.empty() || !trace_path.empty(); }

  /// Parses argv (argv[0] is skipped). Recognized flags accept both
  /// `--flag value` and `--flag=value`. Returns false and fills `error` when
  /// a recognized flag is missing or has a malformed argument.
  static bool parse(int argc, char** argv, BenchOptions& out,
                    std::string& error);
};

/// Scoped installation of the process-global metrics registry and tracer.
/// While an ObsSession with observing options is alive, the harness and the
/// instrumented simulator record into its sinks; `finish` folds the collected
/// state into a RunReport and writes the files the flags requested. When the
/// options request nothing, the session is a no-op and `finish` only prints
/// nothing and succeeds.
///
/// With `--wallclock` the session additionally installs a WallProfiler
/// (self-calibrating at construction), so the WallScope sites record real
/// ns/op while the run proceeds. `finish` then prints a per-site summary
/// table on stdout and, when --json was also given, bumps the report schema
/// to kBenchSchemaWallclock and appends the "wallclock" section — the only
/// part of the report allowed to differ between two identical runs.
class ObsSession {
 public:
  explicit ObsSession(const BenchOptions& opts);
  ~ObsSession();
  ObsSession(const ObsSession&) = delete;
  ObsSession& operator=(const ObsSession&) = delete;

  obs::MetricsRegistry* metrics() const { return metrics_.get(); }
  obs::Tracer* tracer() const { return tracer_.get(); }
  obs::WallProfiler* wall() const { return wall_.get(); }

  /// Adds the metrics + span-rollup (and, with --wallclock, wallclock)
  /// sections to `report`, then writes the --json and --trace files.
  /// Failures are reported on stderr; returns false if any write failed.
  bool finish(obs::RunReport& report);

 private:
  const BenchOptions opts_;
  std::unique_ptr<obs::MetricsRegistry> metrics_;
  std::unique_ptr<obs::Tracer> tracer_;
  std::unique_ptr<obs::WallProfiler> wall_;
  obs::MetricsRegistry* prev_metrics_ = nullptr;
  obs::Tracer* prev_tracer_ = nullptr;
  obs::WallProfiler* prev_wall_ = nullptr;
};

/// Serializes a sweep for the BENCH_*.json "sweeps" entries: sizes plus, per
/// series, the mean curve and per-size median / p95 over seeds (the median is
/// what the CI perf gate compares against its committed baseline).
obs::Json sweep_to_json(const SweepResult& result);

}  // namespace sgk
