#include "harness/experiment.h"

#include <algorithm>
#include <string>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "obs/wallclock.h"
#include "util/check.h"

namespace sgk {

Experiment::Experiment(ExperimentConfig config)
    : config_(std::move(config)),
      net_(sim_, config_.topology),
      pki_(std::make_shared<Pki>()),
      rng_(config_.seed, "experiment") {
  // Each Experiment has its own Simulator starting at virtual 0; re-base the
  // tracer so sequential experiments lay out sequentially on the timeline.
  SGK_TRACE(tr->use_clock());
}

Experiment::~Experiment() = default;

SecureGroupMember& Experiment::spawn() {
  const MachineId machine = static_cast<MachineId>(
      spawned_ % config_.topology.machine_count());
  ++spawned_;
  const ProcessId pid = net_.create_process(machine);
  MemberConfig cfg;
  cfg.protocol = config_.protocol;
  cfg.dh_bits = config_.dh_bits;
  cfg.cost = config_.cost;
  cfg.seed = config_.seed;
  cfg.key_confirmation = config_.key_confirmation;
  cfg.signature = config_.signature;
  members_.push_back(std::make_unique<SecureGroupMember>(net_, pid, pki_, cfg));
  return *members_.back();
}

void Experiment::grow_to(std::size_t n) {
  while (group_size() < n) {
    spawn().join();
    sim_.run();
  }
}

std::size_t Experiment::group_size() const {
  std::size_t n = 0;
  for (const auto& m : members_)
    if (m) ++n;
  return n;
}

const std::vector<SecureGroupMember*> Experiment::members() const {
  std::vector<SecureGroupMember*> out;
  for (const auto& m : members_)
    if (m) out.push_back(m.get());
  return out;
}

OpCounters Experiment::sum_counters() const {
  OpCounters total;
  for (const auto& m : members_)
    if (m) total += m->counters();
  return total;
}

void Experiment::begin_event(const char* event_name, double t0) {
  // The first phase covers the GCS membership protocol: it runs from the
  // event until a protocol handler marks its first phase.
  SGK_TRACE(tr->begin_event(event_name, t0); tr->phase("membership", t0));
  if (obs::wall_profiler() != nullptr) wall_t0_ = obs::wall_now_ns();
}

void Experiment::record_event(const char* event_name, const EventResult& r,
                              double keyed) {
  SGK_TRACE(
      tr->event_attr("protocol", obs::Json(to_string(config_.protocol)));
      tr->event_attr("n", obs::Json(static_cast<std::uint64_t>(r.group_size)));
      tr->end_event(keyed));
  if (obs::WallProfiler* wp = obs::wall_profiler()) {
    // Real host time the whole event took to simulate and key — the wall
    // counterpart of the virtual r.elapsed_ms recorded below.
    const std::string site = std::string("event/") +
                             to_string(config_.protocol) + "/" + event_name;
    wp->record(site, wall_t0_, obs::wall_now_ns());
  }
  if (obs::MetricsRegistry* mr = obs::metrics()) {
    const std::string path =
        std::string(to_string(config_.protocol)) + "/" + event_name;
    mr->counter("events/" + path).add();
    mr->histogram("event_ms/" + path).observe(r.elapsed_ms);
    mr->histogram("event_bytes/" + path)
        .observe(static_cast<double>(r.total.bytes_sent));
    mr->histogram("event_msgs/" + path)
        .observe(static_cast<double>(r.total.messages()));
    // Rounds-to-key proxy: the heaviest member's sent-message count (each
    // protocol round has a member send at most one message).
    mr->histogram("event_rounds/" + path)
        .observe(static_cast<double>(r.max_member.messages()));
  }
}

EventResult Experiment::finish_event(const char* event_name, double t0,
                                     OpCounters before_total) {
  sim_.run();
  EventResult r;
  r.group_size = group_size();
  double membership = t0;
  double keyed = t0;
  std::vector<std::uint64_t> epochs;
  for (SecureGroupMember* m : members()) {
    SGK_CHECK(m->has_key());
    SGK_CHECK(m->key_time() >= t0);
    keyed = std::max(keyed, m->key_time());
    OpCounters delta =
        m->counters() - last_counters_.at(static_cast<std::size_t>(m->id()));
    if (delta.exp_total() + delta.sign_ops + delta.verify_ops >
        r.max_member.exp_total() + r.max_member.sign_ops + r.max_member.verify_ops)
      r.max_member = delta;
    membership = std::max(membership, m->view_time());
  }
  r.elapsed_ms = keyed - t0;
  r.membership_ms = membership - t0;
  r.total = sum_counters() - before_total;
  record_event(event_name, r, keyed);
  return r;
}

EventResult Experiment::measure_join() {
  // Snapshot per-member counters.
  last_counters_.assign(members_.size() + 1, OpCounters{});
  for (const auto& m : members_)
    if (m) last_counters_.at(m->id()) = m->counters();
  const OpCounters before = sum_counters();
  const double t0 = sim_.now();
  begin_event("join", t0);
  spawn().join();
  last_counters_.resize(members_.size());
  return finish_event("join", t0, before);
}

EventResult Experiment::measure_leave(LeavePolicy policy) {
  auto live = members();
  SGK_CHECK(live.size() >= 2);
  std::size_t pick = 0;
  switch (policy) {
    case LeavePolicy::kRandom:
      pick = static_cast<std::size_t>(rng_.next_u64(live.size()));
      break;
    case LeavePolicy::kMiddle:
      pick = live.size() / 2;
      break;
    case LeavePolicy::kOldest:
      pick = 0;
      break;
    case LeavePolicy::kNewest:
      pick = live.size() - 1;
      break;
  }
  SecureGroupMember* leaver = live.at(pick);

  last_counters_.assign(members_.size(), OpCounters{});
  for (const auto& m : members_)
    if (m) last_counters_.at(m->id()) = m->counters();
  OpCounters before = sum_counters();
  before = before - leaver->counters();  // leaver's past ops drop out of the sum

  const double t0 = sim_.now();
  begin_event("leave", t0);
  leaver->leave();
  members_.at(leaver->id()).reset();
  return finish_event("leave", t0, before);
}

EventResult Experiment::measure_multi_leave(std::size_t count) {
  auto live = members();
  SGK_CHECK(live.size() > count);
  last_counters_.assign(members_.size(), OpCounters{});
  for (const auto& m : members_)
    if (m) last_counters_.at(m->id()) = m->counters();
  OpCounters before = sum_counters();

  const double t0 = sim_.now();
  begin_event("multi_leave", t0);
  for (std::size_t i = 0; i < count; ++i) {
    const std::size_t pick = static_cast<std::size_t>(rng_.next_u64(live.size()));
    SecureGroupMember* leaver = live.at(pick);
    live.erase(live.begin() + static_cast<std::ptrdiff_t>(pick));
    before = before - leaver->counters();
    leaver->leave();
    members_.at(leaver->id()).reset();
  }
  return finish_event("multi_leave", t0, before);
}

EventResult Experiment::measure_partition(
    const std::vector<std::vector<MachineId>>& parts) {
  last_counters_.assign(members_.size(), OpCounters{});
  for (const auto& m : members_)
    if (m) last_counters_.at(m->id()) = m->counters();
  const OpCounters before = sum_counters();
  const double t0 = sim_.now();
  begin_event("partition", t0);
  net_.partition(parts);
  sim_.run();
  EventResult r;
  r.group_size = group_size();
  double keyed = t0;
  for (SecureGroupMember* m : members()) {
    SGK_CHECK(m->has_key());
    keyed = std::max(keyed, m->key_time());
  }
  r.elapsed_ms = keyed - t0;
  r.total = sum_counters() - before;
  record_event("partition", r, keyed);
  return r;
}

EventResult Experiment::measure_merge() {
  last_counters_.assign(members_.size(), OpCounters{});
  for (const auto& m : members_)
    if (m) last_counters_.at(m->id()) = m->counters();
  const OpCounters before = sum_counters();
  const double t0 = sim_.now();
  begin_event("merge", t0);
  net_.heal();
  return finish_event("merge", t0, before);
}

}  // namespace sgk
