#include "harness/chaos.h"

#include <algorithm>
#include <memory>
#include <optional>
#include <utility>

#include "obs/metrics.h"
#include "sim/fault_adapter.h"
#include "util/check.h"

namespace sgk {

namespace {

/// One chaos run: owns the deployment and interprets churn ops against
/// whatever population exists when each op fires.
class ChaosRun final : public fault::ChurnTarget {
 public:
  ChaosRun(const ChaosConfig& config, fault::FaultPlan plan)
      : config_(config),
        net_(sim_, config.topology,
             [&] {
               SpreadParams p;
               p.batch = config.batch;
               return p;
             }()),
        pki_(std::make_shared<Pki>()),
        injector_(std::move(plan)) {
    if (config_.mutation_rate > 0.0) {
      fault::FrameMutator::Options opts;
      opts.rate = config_.mutation_rate;
      // Without signatures only strict validation stands between a mutated
      // frame and the protocols, so restrict the menu to mutations it
      // provably catches — the harness must not manufacture the very silent
      // divergence it exists to rule out.
      opts.detectable_only = !config_.verify_signatures;
      opts.modulus_bytes = dh_group(config_.dh_bits).p().to_bytes().size();
      mutator_.emplace(config_.seed, opts);
      injector_.set_mutator(&*mutator_);
    }
    net_.set_fault_hook(&injector_);
  }

  ChaosResult run() {
    // Arm first: the plan's ops are absolute virtual times, and the initial
    // group's agreement may still be running when the first op fires —
    // that cascade is the point.
    SimFaultScheduler sched(sim_);
    injector_.arm(sched, *this);
    for (std::size_t i = 0; i < config_.initial_size; ++i) spawn().join();

    const auto& ops = injector_.plan().ops();
    const double last_op = ops.empty() ? 0.0 : ops.back().at_ms;
    const double deadline = last_op + config_.grace_ms;
    sim_.run_until(deadline);
    if (sim_.pending() > 0)
      checker_.flag_timeout("run still active at deadline (last op " +
                            std::to_string(last_op) + "ms + grace " +
                            std::to_string(config_.grace_ms) + "ms)");

    ChaosResult r;
    std::vector<fault::KeyProbe> probes;
    for (const auto& m : members_) {
      if (!m) continue;
      ++r.final_size;
      fault::KeyProbe p;
      p.member = m->id();
      p.component = net_.component_of_machine(net_.machine_of(m->id()));
      p.has_key = m->has_key();
      p.epoch = m->key_epoch();
      p.key = m->has_key() ? &m->key() : nullptr;
      probes.push_back(p);
      checker_.check_no_wedge(m->id(), m->agreement_in_flight());
      r.restarts += m->agreement_restarts();
      r.stale_dropped += m->stale_dropped();
      r.frames_rejected += m->frames_rejected();
      r.recoveries += m->recoveries();
      r.final_epoch = std::max(r.final_epoch, m->key_epoch());
      if (r.fingerprint.empty()) r.fingerprint = m->key_fingerprint();
    }
    checker_.check_convergence(probes);

    r.converged = checker_.ok() && r.final_size >= 2;
    if (r.final_size < 2)
      checker_.flag_timeout("fewer than two members survived");
    r.violations = checker_.violations();
    r.end_ms = sim_.now();
    r.convergence_ms = std::max(0.0, last_key_time_ - last_op);
    r.wire = injector_.stats();
    r.churn_applied = injector_.stats().churn_applied;
    r.frames_mutated = injector_.stats().frames_mutated;
    return r;
  }

  void apply(const fault::ChurnOp& op) override {
    switch (op.kind) {
      case fault::ChurnKind::kJoin:
        spawn().join();
        break;
      case fault::ChurnKind::kLeave: {
        auto live = alive();
        if (live.size() <= 2) break;  // keep a group worth agreeing over
        SecureGroupMember* victim = live[op.arg % live.size()];
        victim->leave();
        members_.at(victim->id()).reset();
        break;
      }
      case fault::ChurnKind::kCrash: {
        auto live = alive();
        if (live.size() <= 2) break;
        SecureGroupMember* victim = live[op.arg % live.size()];
        // Abrupt daemon-crash model: no leave message, the membership
        // protocol discovers the absence.
        net_.disconnect(victim->id());
        members_.at(victim->id()).reset();
        break;
      }
      case fault::ChurnKind::kPartition: {
        const auto mc = static_cast<std::uint64_t>(
            config_.topology.machine_count());
        if (mc < 2) break;
        const auto split =
            static_cast<MachineId>(1 + op.arg % (mc - 1));
        std::vector<MachineId> a, b;
        for (MachineId m = 0; m < static_cast<MachineId>(mc); ++m)
          (m < split ? a : b).push_back(m);
        net_.partition({a, b});
        break;
      }
      case fault::ChurnKind::kHeal:
        net_.heal();
        break;
      case fault::ChurnKind::kRekey: {
        auto live = alive();
        if (live.empty()) break;
        live[op.arg % live.size()]->request_rekey();
        break;
      }
    }
    if (obs::MetricsRegistry* mr = obs::metrics())
      mr->counter(std::string("chaos/op/") + fault::to_string(op.kind)).add();
  }

 private:
  SecureGroupMember& spawn() {
    const auto machine = static_cast<MachineId>(
        spawned_ % config_.topology.machine_count());
    ++spawned_;
    const ProcessId pid = net_.create_process(machine);
    MemberConfig cfg;
    cfg.protocol = config_.protocol;
    cfg.dh_bits = config_.dh_bits;
    cfg.cost = config_.cost;
    cfg.seed = config_.seed;
    cfg.signature = config_.signature;
    cfg.verify_signatures = config_.verify_signatures;
    cfg.recovery_watchdog_ms = config_.recovery_watchdog_ms;
    auto member = std::make_unique<SecureGroupMember>(net_, pid, pki_, cfg);
    member->set_key_listener([this, pid](SimTime t, std::uint64_t epoch) {
      checker_.observe_epoch(pid, epoch);
      last_key_time_ = std::max(last_key_time_, t);
    });
    if (members_.size() <= static_cast<std::size_t>(pid))
      members_.resize(static_cast<std::size_t>(pid) + 1);
    members_.at(static_cast<std::size_t>(pid)) = std::move(member);
    return *members_.at(static_cast<std::size_t>(pid));
  }

  std::vector<SecureGroupMember*> alive() const {
    std::vector<SecureGroupMember*> out;
    for (const auto& m : members_)
      if (m) out.push_back(m.get());
    return out;
  }

  ChaosConfig config_;
  Simulator sim_;
  SpreadNetwork net_;
  std::shared_ptr<Pki> pki_;
  fault::FaultInjector injector_;
  std::optional<fault::FrameMutator> mutator_;
  fault::InvariantChecker checker_;
  std::vector<std::unique_ptr<SecureGroupMember>> members_;  // index: ProcessId
  std::size_t spawned_ = 0;
  double last_key_time_ = 0.0;
};

}  // namespace

ChaosResult run_chaos(const ChaosConfig& config) {
  SGK_CHECK(config.initial_size >= 2);
  fault::FaultPlan plan(config.seed, config.rates);
  if (!config.script.empty()) {
    for (const fault::ChurnOp& op : config.script)
      plan.script(op.at_ms, op.kind, op.arg);
  } else {
    plan.randomize(config.events, config.start_ms, config.min_gap_ms,
                   config.max_gap_ms);
  }
  ChaosRun run(config, std::move(plan));
  return run.run();
}

}  // namespace sgk
