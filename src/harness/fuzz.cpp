#include "harness/fuzz.h"

#include <exception>

#include "fault/invariants.h"

namespace sgk {

FuzzResult run_fuzz(const FuzzConfig& config) {
  FuzzResult r;
  ChaosConfig chaos = config.chaos;
  if (chaos.recovery_watchdog_ms <= 0.0)
    chaos.recovery_watchdog_ms = config.default_watchdog_ms;
  try {
    r.chaos = run_chaos(chaos);
  } catch (const std::exception& e) {
    // The tentpole invariant: untrusted bytes must never throw past a
    // member's handler. Record the escape as a crash violation instead of
    // taking the harness down with it.
    r.crashed = true;
    fault::InvariantChecker crash;
    crash.flag_crash(e.what());
    r.chaos.converged = false;
    r.chaos.violations = crash.violations();
    return r;
  }
  r.survived = r.chaos.converged;
  return r;
}

}  // namespace sgk
