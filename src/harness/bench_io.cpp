#include "harness/bench_io.h"

#include <algorithm>
#include <cstdio>
#include <utility>

namespace sgk {

bool BenchOptions::parse(int argc, char** argv, BenchOptions& out,
                         std::string& error) {
  for (int i = 1; i < argc; ++i) {
    const std::string orig = argv[i];
    std::string arg = orig;
    std::string value;
    bool has_value = false;
    if (const std::size_t eq = arg.find('=');
        arg.rfind("--", 0) == 0 && eq != std::string::npos) {
      value = arg.substr(eq + 1);
      arg = arg.substr(0, eq);
      has_value = true;
    }
    if (arg == "--wallclock") {
      if (has_value) {
        error = "--wallclock takes no argument";
        return false;
      }
      out.wallclock = true;
      continue;
    }
    if (arg != "--json" && arg != "--trace" && arg != "--seed" &&
        arg != "--threads") {
      out.rest.push_back(orig);
      continue;
    }
    if (!has_value) {
      if (i + 1 >= argc) {
        error = arg + " requires an argument";
        return false;
      }
      value = argv[++i];
    }
    if (arg == "--json") {
      out.json_path = value;
    } else if (arg == "--trace") {
      out.trace_path = value;
    } else if (arg == "--threads") {
      try {
        out.threads = std::stoi(value);
      } catch (const std::exception&) {
        out.threads = 0;
      }
      if (out.threads < 1) {
        error = "--threads requires a positive integer, got '" + value + "'";
        return false;
      }
      out.threads_set = true;
    } else {
      try {
        out.seed = std::stoull(value);
      } catch (const std::exception&) {
        error = "--seed requires an unsigned integer, got '" + value + "'";
        return false;
      }
      out.seed_set = true;
    }
  }
  return true;
}

ObsSession::ObsSession(const BenchOptions& opts) : opts_(opts) {
  // The wall profiler installs independently of --json/--trace: `bench
  // --wallclock` alone still prints the stdout summary table.
  if (opts_.wallclock) {
    wall_ = std::make_unique<obs::WallProfiler>();
    prev_wall_ = obs::wall_profiler();
    obs::set_wall_profiler(wall_.get());
  }
  if (!opts_.observing()) return;
  metrics_ = std::make_unique<obs::MetricsRegistry>();
  tracer_ = std::make_unique<obs::Tracer>();
  prev_metrics_ = obs::metrics();
  prev_tracer_ = obs::tracer();
  obs::set_metrics(metrics_.get());
  obs::set_tracer(tracer_.get());
}

ObsSession::~ObsSession() {
  if (wall_ != nullptr) obs::set_wall_profiler(prev_wall_);
  if (!opts_.observing()) return;
  obs::set_metrics(prev_metrics_);
  obs::set_tracer(prev_tracer_);
}

namespace {

void print_wall_summary(const obs::WallProfiler& wall) {
  const obs::WallCalibration& cal = wall.calibration();
  std::printf("\nwall-clock profile (host ns/op; timer overhead %.1f ns "
              "subtracted, resolution %.0f ns)\n",
              cal.overhead_ns, cal.resolution_ns);
  std::printf("%-28s %10s %12s %12s %12s\n", "site", "count", "p50_ns",
              "p95_ns", "min_ns");
  for (const auto& [name, h] : wall.sites())
    std::printf("%-28s %10llu %12.0f %12.0f %12.0f\n", name.c_str(),
                static_cast<unsigned long long>(h.count()), h.quantile(0.5),
                h.quantile(0.95), h.min());
  if (wall.spans_dropped() > 0)
    std::printf("(trace span buffer full: %llu spans dropped)\n",
                static_cast<unsigned long long>(wall.spans_dropped()));
}

}  // namespace

bool ObsSession::finish(obs::RunReport& report) {
  if (wall_ != nullptr) print_wall_summary(*wall_);
  if (!opts_.observing()) return true;
  // Stamp the run's base seed so any number in the file can be reproduced.
  report.add_section("seed", obs::Json(opts_.seed));
  report.add_metrics(*metrics_);
  report.add_span_rollup(*tracer_);
  if (wall_ != nullptr) {
    // The schema bump and the section land together, so a v1 report never
    // contains wall data and a v2 report always does. A report a bench
    // already stamped past v1 (e.g. sgk-bench/3 batch payloads) keeps its
    // higher schema — those supersets admit the wallclock section too.
    const obs::Json* schema = report.json().find("schema");
    if (schema != nullptr && schema->is_string() &&
        schema->as_string() == obs::kBenchSchema)
      report.set_schema(obs::kBenchSchemaWallclock);
    obs::Json wall_json = wall_->to_json();
    // The thread count lives here, in the wall env, and nowhere else: wall
    // numbers from different thread counts are not comparable (bench_gate
    // refuses the pairing), while the deterministic sections must stay
    // byte-identical across thread counts.
    for (auto& [section, value] : wall_json.as_object()) {
      if (section == "env") value.set("threads", obs::Json(opts_.threads));
    }
    report.add_section("wallclock", std::move(wall_json));
  }
  bool ok = true;
  std::string error;
  if (!opts_.json_path.empty() &&
      !obs::write_json_file(opts_.json_path, report.json(), &error)) {
    std::fprintf(stderr, "error: %s\n", error.c_str());
    ok = false;
  }
  if (!opts_.trace_path.empty() &&
      !obs::write_chrome_trace_file(opts_.trace_path, *tracer_, &error,
                                    wall_.get())) {
    std::fprintf(stderr, "error: %s\n", error.c_str());
    ok = false;
  }
  return ok;
}

namespace {

// Quantile over a copy of `v` with linear interpolation between order
// statistics (matches the convention documented in docs/observability.md).
double sample_quantile(std::vector<double> v, double q) {
  if (v.empty()) return 0.0;
  std::sort(v.begin(), v.end());
  const double rank = q * static_cast<double>(v.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, v.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return v[lo] + (v[hi] - v[lo]) * frac;
}

}  // namespace

obs::Json sweep_to_json(const SweepResult& result) {
  obs::Json doc = obs::Json::object();
  doc.set("min_size", obs::Json(static_cast<std::uint64_t>(result.min_size)));
  doc.set("max_size", obs::Json(static_cast<std::uint64_t>(result.max_size)));
  obs::Json sizes = obs::Json::array();
  for (std::size_t n : result.sizes())
    sizes.push(obs::Json(static_cast<std::uint64_t>(n)));
  doc.set("sizes", std::move(sizes));

  obs::Json series = obs::Json::array();
  for (const Series& s : result.series) {
    obs::Json entry = obs::Json::object();
    entry.set("label", obs::Json(s.label));
    obs::Json mean = obs::Json::array();
    obs::Json median = obs::Json::array();
    obs::Json p95 = obs::Json::array();
    for (std::size_t i = 0; i < s.values.size(); ++i) {
      mean.push(obs::Json(s.values[i]));
      // Sweeps run with seeds=1 still get well-defined order statistics: the
      // single sample is its own median and p95.
      static const std::vector<double> kEmpty;
      const std::vector<double>& samples =
          i < s.samples.size() ? s.samples[i] : kEmpty;
      median.push(obs::Json(samples.empty() ? s.values[i]
                                            : sample_quantile(samples, 0.5)));
      p95.push(obs::Json(samples.empty() ? s.values[i]
                                         : sample_quantile(samples, 0.95)));
    }
    entry.set("mean_ms", std::move(mean));
    entry.set("median_ms", std::move(median));
    entry.set("p95_ms", std::move(p95));
    series.push(std::move(entry));
  }
  doc.set("series", std::move(series));
  return doc;
}

}  // namespace sgk
