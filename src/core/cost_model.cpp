#include "core/cost_model.h"

namespace sgk {

double CostModel::mult_ms(std::size_t mod_bits) const {
  const double scale = static_cast<double>(mod_bits) / 512.0;
  return mult_512_ms * scale * scale;
}

double CostModel::mod_exp_ms(std::size_t mod_bits, std::size_t exp_bits) const {
  if (exp_bits == 0) return mult_ms(mod_bits);
  // e squarings + ~e/5 multiplies with 4-bit sliding windows, plus window
  // precomputation (~8 multiplies) and Montgomery conversions.
  const double mults = 1.2 * static_cast<double>(exp_bits) + 10.0;
  return mults * mult_ms(mod_bits);
}

double CostModel::rsa_sign_ms(std::size_t mod_bits) const {
  // CRT: two exponentiations at half the modulus with half-size exponents.
  return 2.0 * mod_exp_ms(mod_bits / 2, mod_bits / 2) + rsa_sign_overhead_ms;
}

double CostModel::rsa_verify_ms(std::size_t mod_bits, std::size_t e_bits) const {
  const double mults = 1.5 * static_cast<double>(e_bits) + 1.0;
  return mults * mult_ms(mod_bits) + rsa_verify_overhead_ms;
}

double CostModel::sha256_ms(std::size_t bytes) const {
  return sign_hash_overhead_ms * 0.0 + sha256_per_byte_ms * static_cast<double>(bytes);
}

double CostModel::aes_ms(std::size_t bytes) const {
  return aes_per_byte_ms * static_cast<double>(bytes);
}

CostModel CostModel::free() {
  CostModel m;
  m.mult_512_ms = 0;
  m.rsa_sign_overhead_ms = 0;
  m.rsa_verify_overhead_ms = 0;
  m.sign_hash_overhead_ms = 0;
  m.sha256_per_byte_ms = 0;
  m.aes_per_byte_ms = 0;
  m.modinv_ms = 0;
  return m;
}

}  // namespace sgk
