#include "core/bd.h"

#include <algorithm>
#include <utility>

#include "obs/wallclock.h"
#include "util/check.h"

namespace sgk {

std::size_t BdProtocol::index_of(ProcessId p) const {
  auto it = std::lower_bound(view_.members.begin(), view_.members.end(), p);
  SGK_CHECK(it != view_.members.end() && *it == p);
  return static_cast<std::size_t>(it - view_.members.begin());
}

ProcessId BdProtocol::at_offset(std::size_t i, std::ptrdiff_t delta) const {
  const std::ptrdiff_t n = static_cast<std::ptrdiff_t>(view_.members.size());
  std::ptrdiff_t j = (static_cast<std::ptrdiff_t>(i) + delta) % n;
  if (j < 0) j += n;
  return view_.members[static_cast<std::size_t>(j)];
}

void BdProtocol::handle_view(const View& view, const ViewDelta& /*delta*/) {
  // BD restarts from scratch on any membership change.
  view_ = view;
  z_.clear();
  x_values_.clear();
  sent_x_ = false;

  r_ = crypto().random_exponent();
  const BigInt z = crypto().exp_g(r_);
  z_[self()] = z;

  if (view.members.size() == 1) {
    // Degenerate group: K = z^r = g^(r^2).
    host_.deliver_key(crypto().exp(z, r_));
    return;
  }
  mark_phase("round1_broadcast");
  Writer w;
  w.u8(kZ);
  put_bigint(w, z);
  host_.send_multicast(w.take());
}

void BdProtocol::maybe_round2() {
  if (sent_x_ || z_.size() < view_.members.size()) return;
  sent_x_ = true;
  mark_phase("round2_broadcast");
  const std::size_t i = index_of(self());
  const BigInt& z_next = z_.at(at_offset(i, +1));
  const BigInt& z_prev = z_.at(at_offset(i, -1));
  const BigInt ratio = crypto().mul_p(z_next, crypto().inverse_p(z_prev));
  const BigInt x = crypto().exp(ratio, r_);
  x_values_[self()] = x;
  Writer w;
  w.u8(kX);
  put_bigint(w, x);
  host_.send_multicast(w.take());
  maybe_finish();
}

void BdProtocol::maybe_finish() {
  if (!sent_x_ || x_values_.size() < view_.members.size()) return;
  mark_phase("key_derivation");
  const std::size_t n = view_.members.size();
  const std::size_t i = index_of(self());
  // K = z_{i-1}^(n r_i) * prod_{j=0}^{n-2} X_{i+j}^(n-1-j)
  SecureBigInt key =
      crypto().exp(z_.at(at_offset(i, -1)), BigInt(n) * r_ % crypto().group().q());
  for (std::size_t j = 0; j + 1 < n; ++j) {
    const std::uint64_t e = static_cast<std::uint64_t>(n - 1 - j);
    const BigInt& xj = x_values_.at(at_offset(i, static_cast<std::ptrdiff_t>(j)));
    BigInt term = e == 1 ? xj : crypto().exp(xj, BigInt(e));
    key = crypto().mul_p(key, term);
  }
  host_.deliver_key(key);
}

Decoded<BdProtocol::Wire> BdProtocol::validate_and_decode(const Bytes& body,
                                                          const BigInt& p) {
  using D = Decoded<Wire>;
  Wire m;
  try {
    Reader r(body);
    m.type = r.u8();
    if (m.type != kZ && m.type != kX) return D::rejected(RejectReason::kBadTag);
    m.value = get_bigint(r);
    // z_i = g^(r_i) is a non-identity subgroup element, so the usual
    // [2, p-2] band applies. X_i = (z_{i+1}/z_{i-1})^(r_i) is legitimately 1
    // whenever the two neighbours coincide (any 2-member group), so only the
    // degenerate 0 and >= p-1 values are hostile there.
    const bool ok_range = m.type == kZ
                              ? in_group_range(m.value, p)
                              : m.value >= BigInt(1) && m.value <= p - BigInt(2);
    if (!ok_range) return D::rejected(RejectReason::kBignumRange);
    if (!r.done()) return D::rejected(RejectReason::kTrailingBytes);
  } catch (const LengthError&) {
    return D::rejected(RejectReason::kBadLength);
  } catch (const DecodeError&) {
    return D::rejected(RejectReason::kTruncated);
  }
  return D::accepted(std::move(m));
}

void BdProtocol::handle_message(ProcessId sender, const Bytes& body) {
  Decoded<Wire> d;
  {
    obs::WallScope wall("decode/BD");
    d = validate_and_decode(body, crypto().group().p());
  }
  if (!d.ok()) {
    reject(d.reason);
    return;
  }
  Wire& m = d.value;
  switch (m.type) {
    case kZ:
      if (sender != self()) z_[sender] = std::move(m.value);
      maybe_round2();
      return;
    case kX:
      if (sender != self()) x_values_[sender] = std::move(m.value);
      maybe_finish();
      return;
    default:
      return;  // unreachable: validate_and_decode rejected unknown tags
  }
}

}  // namespace sgk
