// CKD: centralized key distribution with a dynamically chosen key server.
//
// The controller (the oldest group member) maintains a long-term pairwise
// Diffie-Hellman key K_ci = g^(x_c x_i) with every member. On every
// membership change it picks a fresh group secret exponent s and broadcasts
// E_i = K_ci ^ s for every member; member i unwraps the group secret
// g^(x_c s) = E_i ^ (x_i^{-1} mod q). This costs the controller one
// exponentiation per member per re-key (matching Table 1's linear cost) and
// provides key independence because s is fresh each time.
//
// Join/merge additionally establishes the new pairwise channels (the
// controller broadcasts g^(x_c), each new member responds with g^(x_i)),
// which is why CKD needs three rounds where the contributory protocols need
// two. When the controller itself leaves, the new controller (next oldest)
// must first establish channels with everyone — the expensive case the
// paper calls out.
#pragma once

#include <map>
#include <vector>

#include "bignum/secure_bigint.h"
#include "core/key_agreement.h"

namespace sgk {

class CkdProtocol final : public KeyAgreement {
 public:
  explicit CkdProtocol(ProtocolHost& host) : KeyAgreement(host) {}

  void handle_view(const View& view, const ViewDelta& delta) override;
  void handle_message(ProcessId sender, const Bytes& body) override;
  ProtocolKind kind() const override { return ProtocolKind::kCkd; }

  ProcessId controller() const { return order_.empty() ? kNoProcess : order_.front(); }
  const std::vector<ProcessId>& join_order() const { return order_; }

  enum MsgType : std::uint8_t { kChallenge = 1, kResponse = 2, kKeyBcast = 3 };

  /// Fully decoded + validated wire message (union across the three types).
  struct Wire {
    std::uint8_t type = 0;
    BigInt value;                      // kChallenge / kResponse public value
    std::vector<ProcessId> targets;    // kChallenge: members owing a response
    std::vector<ProcessId> order;      // kKeyBcast
    std::vector<std::pair<ProcessId, BigInt>> wraps;  // kKeyBcast
  };

  /// The only entrypoint that touches raw CKD wire bytes: structural decode
  /// plus semantic validation (tags, list caps, every bignum in [2, p-2]).
  /// Never throws; a hostile body comes back as a typed rejection.
  static Decoded<Wire> validate_and_decode(const Bytes& body, const BigInt& p);

 private:

  void begin_controller_round(const std::vector<ProcessId>& need_channel);
  void rekey();

  View view_;
  std::vector<ProcessId> order_;  // oldest first; controller == order_.front()
  SecureBigInt x_;                // my long-term DH exponent (per session)
  BigInt my_pub_;                 // g^x, computed lazily
  bool have_pub_ = false;

  // Controller state. Pairwise channel keys K_ci are long-lived secrets.
  std::map<ProcessId, SecureBigInt> pairwise_;  // member -> K_ci
  std::vector<ProcessId> awaiting_;             // responses still missing

  // Member state.
  ProcessId controller_seen_ = kNoProcess;  // sender of the last challenge

  // Group secret the controller broadcast but has not yet seen come back
  // through the agreed stream. The controller installs it only at that
  // self-delivery: under a cascade two members can transiently both act as
  // controller, and taking the key at send time would leave each of them on
  // its own key while the totally-ordered stream hands every other member
  // whichever broadcast was stamped last.
  SecureBigInt pending_key_;
  bool has_pending_key_ = false;
};

}  // namespace sgk
