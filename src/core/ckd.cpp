#include "core/ckd.h"

#include <algorithm>

#include "obs/wallclock.h"
#include "util/check.h"

namespace sgk {

namespace {
std::vector<ProcessId> sorted_copy(std::vector<ProcessId> v) {
  std::sort(v.begin(), v.end());
  return v;
}
}  // namespace

void CkdProtocol::handle_view(const View& view, const ViewDelta& delta) {
  view_ = view;
  awaiting_.clear();
  has_pending_key_ = false;  // a broadcast the view change killed

  if (view.members.size() == 1) {
    order_ = {self()};
    pairwise_.clear();
    controller_seen_ = self();
    host_.deliver_key(crypto().random_exponent());
    return;
  }

  const std::vector<ProcessId>* core = core_side(delta);
  SGK_CHECK(core != nullptr && !core->empty());
  bool i_am_new = std::find(core->begin(), core->end(), self()) == core->end();

  std::vector<ProcessId> pruned;
  for (ProcessId p : order_)
    if (view.contains(p)) pruned.push_back(p);

  if (!i_am_new && sorted_copy(pruned) != *core) {
    // Cascade fallback: no established state on this side; the lowest id
    // OF THE CORE SIDE deterministically becomes the controller of a fresh
    // session. Only core members execute this branch, so a seed drawn from
    // the whole view could be a member that never learns it should act.
    const ProcessId seed = core->front();
    if (self() == seed) {
      order_ = {self()};
      pairwise_.clear();
      std::vector<ProcessId> need;
      for (ProcessId p : view.members)
        if (p != seed) need.push_back(p);
      for (ProcessId p : need) order_.push_back(p);
      begin_controller_round(need);
    } else {
      order_.clear();
    }
    return;
  }

  if (i_am_new) {
    order_.clear();
    return;  // wait for the controller's challenge
  }

  // Established member: update order (new members join at the end, sorted)
  // and drop state for departed members.
  order_ = std::move(pruned);
  std::vector<ProcessId> new_members;
  for (ProcessId p : view.members)
    if (std::find(core->begin(), core->end(), p) == core->end())
      new_members.push_back(p);
  for (ProcessId p : new_members) order_.push_back(p);
  for (auto it = pairwise_.begin(); it != pairwise_.end();)
    it = view.contains(it->first) ? std::next(it) : pairwise_.erase(it);

  if (self() != order_.front()) return;  // wait for the controller

  // I am the controller (possibly freshly promoted after the previous
  // controller departed). Channels may be missing for new members and, in
  // the promotion case, for everyone.
  std::vector<ProcessId> need;
  for (ProcessId p : view.members)
    if (p != self() && pairwise_.count(p) == 0) need.push_back(p);
  if (need.empty()) {
    rekey();
  } else {
    begin_controller_round(need);
  }
}

void CkdProtocol::begin_controller_round(const std::vector<ProcessId>& need_channel) {
  mark_phase("pairwise_channels");
  if (!have_pub_) {
    x_ = crypto().random_exponent();
    my_pub_ = crypto().exp_g(x_);
    have_pub_ = true;
  }
  awaiting_ = need_channel;
  Writer w;
  w.u8(kChallenge);
  put_bigint(w, my_pub_);
  w.u32(static_cast<std::uint32_t>(need_channel.size()));
  for (ProcessId p : need_channel) w.u32(p);
  host_.send_multicast(w.take());
}

void CkdProtocol::rekey() {
  mark_phase("key_distribution");
  SGK_CHECK(have_pub_);
  const SecureBigInt s = crypto().random_exponent();
  Writer w;
  w.u8(kKeyBcast);
  w.u32(static_cast<std::uint32_t>(order_.size()));
  for (ProcessId p : order_) w.u32(p);
  w.u32(static_cast<std::uint32_t>(view_.members.size() - 1));
  for (ProcessId p : view_.members) {
    if (p == self()) continue;
    auto it = pairwise_.find(p);
    SGK_CHECK(it != pairwise_.end());
    w.u32(p);
    put_bigint(w, crypto().exp(it->second, s));
  }
  host_.send_multicast(w.take());
  // Group secret: g^(x_c * s), which every member recovers from its wrap.
  // Installed when the broadcast self-delivers, not now (see pending_key_).
  pending_key_ = SecureBigInt(crypto().exp(my_pub_, s));
  has_pending_key_ = true;
}

Decoded<CkdProtocol::Wire> CkdProtocol::validate_and_decode(const Bytes& body,
                                                            const BigInt& p) {
  using D = Decoded<Wire>;
  Wire m;
  try {
    Reader r(body);
    m.type = r.u8();
    switch (m.type) {
      case kChallenge: {
        m.value = get_bigint(r);
        if (!in_group_range(m.value, p)) return D::rejected(RejectReason::kBignumRange);
        const std::uint32_t count = r.count(kMaxWireMembers);
        for (std::uint32_t i = 0; i < count; ++i) m.targets.push_back(r.u32());
        break;
      }
      case kResponse: {
        m.value = get_bigint(r);
        if (!in_group_range(m.value, p)) return D::rejected(RejectReason::kBignumRange);
        break;
      }
      case kKeyBcast: {
        const std::uint32_t order_len = r.count(kMaxWireMembers);
        for (std::uint32_t i = 0; i < order_len; ++i) m.order.push_back(r.u32());
        const std::uint32_t count = r.count(kMaxWireMembers);
        for (std::uint32_t i = 0; i < count; ++i) {
          const ProcessId member = r.u32();
          BigInt wrap = get_bigint(r);
          if (!in_group_range(wrap, p))
            return D::rejected(RejectReason::kBignumRange);
          m.wraps.emplace_back(member, std::move(wrap));
        }
        break;
      }
      default:
        return D::rejected(RejectReason::kBadTag);
    }
    if (!r.done()) return D::rejected(RejectReason::kTrailingBytes);
  } catch (const LengthError&) {
    return D::rejected(RejectReason::kBadLength);
  } catch (const DecodeError&) {
    return D::rejected(RejectReason::kTruncated);
  }
  return D::accepted(std::move(m));
}

void CkdProtocol::handle_message(ProcessId sender, const Bytes& body) {
  Decoded<Wire> d;
  {
    obs::WallScope wall("decode/CKD");
    d = validate_and_decode(body, crypto().group().p());
  }
  if (!d.ok()) {
    reject(d.reason);
    return;
  }
  Wire& m = d.value;
  switch (m.type) {
    case kChallenge: {
      if (sender == self()) return;
      mark_phase("pairwise_channels");
      BigInt controller_pub = std::move(m.value);
      bool addressed = false;
      for (ProcessId t : m.targets)
        if (t == self()) addressed = true;
      controller_seen_ = sender;
      if (!addressed) return;
      if (!have_pub_) {
        x_ = crypto().random_exponent();
        my_pub_ = crypto().exp_g(x_);
        have_pub_ = true;
      }
      // Establish the pairwise channel (the member's half of the two-party
      // DH). The value itself is not needed by the unwrap path — the member
      // recovers the group secret with x^{-1} — but the exponentiation is
      // the real cost the paper attributes to channel setup, so we perform
      // and charge it.
      (void)crypto().exp(controller_pub, x_);
      Writer w;
      w.u8(kResponse);
      put_bigint(w, my_pub_);
      host_.send_unicast(sender, w.take());
      return;
    }
    case kResponse: {
      auto it = std::find(awaiting_.begin(), awaiting_.end(), sender);
      if (it == awaiting_.end()) return;
      awaiting_.erase(it);
      pairwise_[sender] = crypto().exp(m.value, x_);
      if (awaiting_.empty()) rekey();
      return;
    }
    case kKeyBcast: {
      mark_phase("key_distribution");
      if (sender == self()) {
        // My own broadcast came back through the agreed stream: it is now
        // part of the group's total order, so the key is safe to install.
        order_ = std::move(m.order);
        if (has_pending_key_) {
          has_pending_key_ = false;
          host_.deliver_key(pending_key_);
        }
        return;
      }
      BigInt my_wrap;
      bool found = false;
      for (auto& [member, wrap] : m.wraps) {
        if (member == self()) {
          my_wrap = std::move(wrap);
          found = true;
        }
      }
      // A broadcast that does not wrap the group secret for me cannot be
      // the one my instance is waiting for — a forgery, or a stale
      // controller's list. Reject it without adopting its order; the
      // quarantine policy re-keys if the agreement is left hanging.
      if (!found) {
        reject(RejectReason::kStateMismatch);
        return;
      }
      // Everyone — the broadcasting controller included — adopts the order
      // carried by the broadcast as it is delivered, so concurrent
      // controllers (possible transiently under cascades) converge on the
      // last stamped one.
      order_ = std::move(m.order);
      controller_seen_ = sender;
      host_.deliver_key(crypto().exp(my_wrap, crypto().inverse_q(x_)));
      return;
    }
    default:
      return;  // unreachable: validate_and_decode rejected unknown tags
  }
}

}  // namespace sgk
