#include "core/gdh.h"

#include <algorithm>

#include "obs/wallclock.h"
#include "util/check.h"

namespace sgk {

namespace {
std::vector<ProcessId> sorted_copy(std::vector<ProcessId> v) {
  std::sort(v.begin(), v.end());
  return v;
}
}  // namespace

void GdhProtocol::handle_view(const View& view, const ViewDelta& delta) {
  view_ = view;
  // Discard transient state from any interrupted instance.
  factors_.clear();
  accum_ = BigInt();
  new_members_.clear();
  new_controller_ = kNoProcess;
  i_am_new_ = false;
  pending_gen_ = -1;  // a list the view change killed is dead at everyone

  // Singleton group: re-key locally (fresh contribution, K = g^r).
  if (view.members.size() == 1) {
    r_ = crypto().random_exponent();
    ++my_gen_;
    order_ = {self()};
    partials_.clear();
    partials_[self()] = crypto().group().g();
    host_.deliver_key(crypto().exp(partials_[self()], r_));
    return;
  }

  const std::vector<ProcessId>* core = core_side(delta);
  SGK_CHECK(core != nullptr && !core->empty());
  i_am_new_ = std::find(core->begin(), core->end(), self()) == core->end();

  if (!i_am_new_) {
    // Validate that my stored state matches the core side; a cascaded event
    // can leave the side without an established key, in which case every
    // member deterministically falls back to a full initial key agreement
    // rooted at the lowest id.
    std::vector<ProcessId> pruned;
    for (ProcessId p : order_)
      if (view.contains(p)) pruned.push_back(p);
    // An interrupted factor-out round can leave a member (the would-be new
    // controller) with a current-looking order but no partial keys; it has
    // no established state to act from and must fall back too.
    //
    // restarting() covers the remaining hole: a cached (order_, partials_)
    // pair is only coherent with the peers' current exponents if the
    // instance that built it completed. A view change that aborts an
    // in-flight agreement can strand one member with a current-looking
    // cache (e.g. a controller whose partial-key broadcast the other
    // members stale-dropped) while the fallback chain refreshes everyone
    // else's r_; acting on that cache forks the group onto two instances
    // whose keys silently diverge. Key delivery flips in_flight at agreed-
    // stream handler time, so "the previous instance completed" is decided
    // at the same total-order position at every member and the fallback
    // below stays unanimous.
    if (restarting() || sorted_copy(pruned) != *core ||
        partials_.count(self()) == 0) {
      // The seed must come from the core side: only core members execute
      // this branch, and a seed that does not know a fallback is happening
      // would leave the whole view waiting for a token nobody sends.
      const ProcessId seed = core->front();
      std::vector<ProcessId> chain;
      for (ProcessId p : view.members)
        if (p != seed) chain.push_back(p);
      new_members_ = std::move(chain);
      new_controller_ = new_members_.back();
      if (self() == seed) {
        r_ = crypto().random_exponent();
        ++my_gen_;
        order_ = {self()};
        partials_.clear();
        partials_[self()] = crypto().group().g();
        start_merge();
      } else {
        i_am_new_ = true;
        order_.clear();
        partials_.clear();
      }
      return;
    }
    order_ = std::move(pruned);
    for (auto it = partials_.begin(); it != partials_.end();)
      it = view.contains(it->first) ? std::next(it) : partials_.erase(it);
  }

  // New members, in token-chain order.
  for (ProcessId p : view.members)
    if (std::find(core->begin(), core->end(), p) == core->end())
      new_members_.push_back(p);

  if (i_am_new_) {
    order_.clear();
    partials_.clear();
    SGK_CHECK(!new_members_.empty());
    new_controller_ = new_members_.back();
    return;  // wait for the token / accumulated broadcast
  }

  if (new_members_.empty()) {
    handle_leave(delta);
  } else {
    new_controller_ = new_members_.back();
    start_merge();
  }
}

void GdhProtocol::start_merge() {
  mark_phase("token_accumulation");
  if (self() != order_.back()) return;  // only the current controller acts
  // Step 1: refresh my contribution and pass the accumulated token to the
  // first new member. The token carries the join order so the eventual
  // partial-key broadcast can reinstall it at everyone.
  r_ = crypto().random_exponent();
  SGK_CHECK(partials_.count(self()) == 1);
  BigInt token = crypto().exp(partials_[self()], r_);
  // The robust GDH implementation sends the token in agreed order with
  // respect to group messages (section 6.2.2), like the factor-out round.
  host_.send_ordered(new_members_.front(),
                     encode_token(token, order_, new_members_));
}

Bytes GdhProtocol::encode_token(const BigInt& token,
                                const std::vector<ProcessId>& done,
                                const std::vector<ProcessId>& chain) const {
  Writer w;
  w.u8(kToken);
  put_bigint(w, token);
  w.u32(static_cast<std::uint32_t>(done.size()));
  for (ProcessId p : done) w.u32(p);
  w.u32(static_cast<std::uint32_t>(chain.size()));
  for (ProcessId p : chain) w.u32(p);
  return w.take();
}

void GdhProtocol::handle_leave(const ViewDelta& delta) {
  (void)delta;
  mark_phase("key_distribution");
  if (self() != order_.back()) return;  // wait for the controller broadcast
  // Refresh my exponent by a factor f; every other partial key gains f, my
  // own stays (it excludes my contribution by construction).
  const SecureBigInt f = crypto().random_exponent();
  r_ = r_.get() * f % crypto().group().q();
  ++my_gen_;
  for (auto& [member, partial] : partials_) {
    if (member == self()) continue;
    partial = crypto().exp(partial, f);
  }
  broadcast_partials();
  // Installed when the list self-delivers, not now (see pending_gen_).
  pending_gen_ = my_gen_;
}

Bytes GdhProtocol::encode_partials() const {
  Writer w;
  w.u8(kPartials);
  w.u32(static_cast<std::uint32_t>(order_.size()));
  for (ProcessId p : order_) w.u32(p);
  w.u32(static_cast<std::uint32_t>(partials_.size()));
  for (const auto& [member, partial] : partials_) {
    w.u32(member);
    put_bigint(w, partial);
  }
  return w.take();
}

void GdhProtocol::broadcast_partials() { host_.send_multicast(encode_partials()); }

Decoded<GdhProtocol::Wire> GdhProtocol::validate_and_decode(const Bytes& body,
                                                            const BigInt& p) {
  using D = Decoded<Wire>;
  Wire m;
  try {
    Reader r(body);
    m.type = r.u8();
    switch (m.type) {
      case kToken: {
        m.value = get_bigint(r);
        if (!in_group_range(m.value, p)) return D::rejected(RejectReason::kBignumRange);
        const std::uint32_t done_len = r.count(kMaxWireMembers);
        for (std::uint32_t i = 0; i < done_len; ++i) m.done.push_back(r.u32());
        const std::uint32_t chain_len = r.count(kMaxWireMembers);
        if (chain_len == 0) return D::rejected(RejectReason::kBadLength);
        for (std::uint32_t i = 0; i < chain_len; ++i) m.chain.push_back(r.u32());
        break;
      }
      case kAccum:
      case kFactorOut: {
        m.value = get_bigint(r);
        if (!in_group_range(m.value, p)) return D::rejected(RejectReason::kBignumRange);
        break;
      }
      case kPartials: {
        const std::uint32_t order_len = r.count(kMaxWireMembers);
        for (std::uint32_t i = 0; i < order_len; ++i) m.order.push_back(r.u32());
        const std::uint32_t count = r.count(kMaxWireMembers);
        for (std::uint32_t i = 0; i < count; ++i) {
          const ProcessId member = r.u32();
          BigInt partial = get_bigint(r);
          if (!in_group_range(partial, p))
            return D::rejected(RejectReason::kBignumRange);
          m.partials.emplace_back(member, std::move(partial));
        }
        break;
      }
      default:
        return D::rejected(RejectReason::kBadTag);
    }
    if (!r.done()) return D::rejected(RejectReason::kTrailingBytes);
  } catch (const LengthError&) {
    return D::rejected(RejectReason::kBadLength);
  } catch (const DecodeError&) {
    return D::rejected(RejectReason::kTruncated);
  }
  return D::accepted(std::move(m));
}

void GdhProtocol::adopt_partials(Wire msg) {
  std::map<ProcessId, BigInt> partials;
  for (auto& [member, partial] : msg.partials)
    partials[member] = std::move(partial);
  // A stale controller (possible transiently under cascades) can broadcast
  // a list that omits me; that list is not mine to adopt — keep waiting for
  // the one produced by the instance I contributed to.
  auto it = partials.find(self());
  if (it == partials.end()) return;
  const BigInt mine = it->second;
  order_ = std::move(msg.order);
  partials_ = std::move(partials);
  host_.deliver_key(crypto().exp(mine, r_));
}

void GdhProtocol::handle_message(ProcessId sender, const Bytes& body) {
  Decoded<Wire> d;
  {
    obs::WallScope wall("decode/GDH");
    d = validate_and_decode(body, crypto().group().p());
  }
  if (!d.ok()) {
    reject(d.reason);
    return;
  }
  Wire& m = d.value;
  switch (m.type) {
    case kToken: {
      BigInt token = std::move(m.value);
      std::vector<ProcessId> done = std::move(m.done);
      std::vector<ProcessId> chain = std::move(m.chain);
      // The chain carried by the token is authoritative: after a fallback
      // restart only core-side members know the real chain, so a locally
      // computed new_members_ (or even i_am_new_ itself — a member whose
      // completed state survived a cascade may be drafted into a fallback
      // chain started by members whose state did not) may disagree with the
      // sender's. Membership in the chain is the only test.
      auto pos = std::find(chain.begin(), chain.end(), self());
      if (pos == chain.end()) return;  // stale token, not addressed to me
      if (pos + 1 == chain.end()) {
        // Last chain member: the new controller; broadcast the accumulated
        // value unchanged.
        mark_phase("broadcast");
        new_controller_ = self();
        accum_ = token;
        order_ = std::move(done);
        order_.push_back(self());
        Writer w;
        w.u8(kAccum);
        put_bigint(w, accum_);
        host_.send_multicast(w.take());
      } else {
        // Add my contribution and forward along the chain.
        mark_phase("token_accumulation");
        r_ = crypto().random_exponent();
        ++my_gen_;
        BigInt next_token = crypto().exp(token, r_);
        done.push_back(self());
        host_.send_ordered(*(pos + 1), encode_token(next_token, done, chain));
      }
      return;
    }
    case kAccum: {
      if (sender == self()) return;  // own broadcast
      mark_phase("factor_out");
      // The broadcaster is the actual controller — trust the message, not
      // the locally computed new_controller_ (see the kToken chain note).
      new_controller_ = sender;
      accum_ = std::move(m.value);
      // Factor out my contribution and return it to the new controller.
      BigInt factored = crypto().exp(accum_, crypto().inverse_q(r_));
      Writer w;
      w.u8(kFactorOut);
      put_bigint(w, factored);
      host_.send_ordered(new_controller_, w.take());
      return;
    }
    case kFactorOut: {
      if (self() != new_controller_) return;
      factors_[sender] = std::move(m.value);
      if (factors_.size() + 1 < view_.members.size()) return;
      // All factor-out tokens collected: become the controller.
      mark_phase("key_distribution");
      r_ = crypto().random_exponent();
      ++my_gen_;
      partials_.clear();
      for (const auto& [member, factored] : factors_) {
        partials_[member] = crypto().exp(factored, r_);
      }
      partials_[self()] = accum_;
      broadcast_partials();
      // Installed when the list self-delivers, not now (see pending_gen_).
      pending_gen_ = my_gen_;
      // From now on I am an established member.
      i_am_new_ = false;
      return;
    }
    case kPartials: {
      mark_phase("key_distribution");
      if (sender == self()) {
        // My own list came back through the agreed stream: it is part of
        // the group's total order, so the key is safe to install — unless
        // r_ was refreshed since (the instance the list belonged to died).
        if (pending_gen_ == my_gen_) {
          auto it = partials_.find(self());
          if (it != partials_.end())
            host_.deliver_key(crypto().exp(it->second, r_));
        }
        pending_gen_ = -1;
        return;
      }
      adopt_partials(std::move(m));
      i_am_new_ = false;
      return;
    }
    default:
      return;  // unreachable: validate_and_decode rejected unknown tags
  }
}

}  // namespace sgk
