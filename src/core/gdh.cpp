#include "core/gdh.h"

#include <algorithm>

#include "util/check.h"

namespace sgk {

namespace {
std::vector<ProcessId> sorted_copy(std::vector<ProcessId> v) {
  std::sort(v.begin(), v.end());
  return v;
}
}  // namespace

void GdhProtocol::on_view(const View& view, const ViewDelta& delta) {
  view_ = view;
  // Discard transient state from any interrupted instance.
  factors_.clear();
  accum_ = BigInt();
  new_members_.clear();
  new_controller_ = kNoProcess;
  i_am_new_ = false;

  // Singleton group: re-key locally (fresh contribution, K = g^r).
  if (view.members.size() == 1) {
    r_ = crypto().random_exponent();
    order_ = {self()};
    partials_.clear();
    partials_[self()] = crypto().group().g();
    host_.deliver_key(crypto().exp(partials_[self()], r_));
    return;
  }

  const std::vector<ProcessId>* core = core_side(delta);
  SGK_CHECK(core != nullptr && !core->empty());
  i_am_new_ = std::find(core->begin(), core->end(), self()) == core->end();

  if (!i_am_new_) {
    // Validate that my stored state matches the core side; a cascaded event
    // can leave the side without an established key, in which case every
    // member deterministically falls back to a full initial key agreement
    // rooted at the lowest id.
    std::vector<ProcessId> pruned;
    for (ProcessId p : order_)
      if (view.contains(p)) pruned.push_back(p);
    if (sorted_copy(pruned) != *core) {
      const ProcessId seed = view.members.front();
      if (self() == seed) {
        r_ = crypto().random_exponent();
        order_ = {self()};
        partials_.clear();
        partials_[self()] = crypto().group().g();
        new_members_.assign(view.members.begin() + 1, view.members.end());
        new_controller_ = new_members_.back();
        start_merge();
      } else {
        i_am_new_ = true;
        order_.clear();
        partials_.clear();
        new_members_.assign(view.members.begin() + 1, view.members.end());
        new_controller_ = new_members_.back();
      }
      return;
    }
    order_ = std::move(pruned);
    for (auto it = partials_.begin(); it != partials_.end();)
      it = view.contains(it->first) ? std::next(it) : partials_.erase(it);
  }

  // New members, in token-chain order.
  for (ProcessId p : view.members)
    if (std::find(core->begin(), core->end(), p) == core->end())
      new_members_.push_back(p);

  if (i_am_new_) {
    order_.clear();
    partials_.clear();
    SGK_CHECK(!new_members_.empty());
    new_controller_ = new_members_.back();
    return;  // wait for the token / accumulated broadcast
  }

  if (new_members_.empty()) {
    handle_leave(delta);
  } else {
    new_controller_ = new_members_.back();
    start_merge();
  }
}

void GdhProtocol::start_merge() {
  mark_phase("token_accumulation");
  if (self() != order_.back()) return;  // only the current controller acts
  // Step 1: refresh my contribution and pass the accumulated token to the
  // first new member. The token carries the join order so the eventual
  // partial-key broadcast can reinstall it at everyone.
  r_ = crypto().random_exponent();
  SGK_CHECK(partials_.count(self()) == 1);
  BigInt token = crypto().exp(partials_[self()], r_);

  Writer w;
  w.u8(kToken);
  put_bigint(w, token);
  w.u32(static_cast<std::uint32_t>(order_.size()));
  for (ProcessId p : order_) w.u32(p);
  // The robust GDH implementation sends the token in agreed order with
  // respect to group messages (section 6.2.2), like the factor-out round.
  host_.send_ordered(new_members_.front(), w.take());
}

void GdhProtocol::handle_leave(const ViewDelta& delta) {
  (void)delta;
  mark_phase("key_distribution");
  if (self() != order_.back()) return;  // wait for the controller broadcast
  // Refresh my exponent by a factor f; every other partial key gains f, my
  // own stays (it excludes my contribution by construction).
  const SecureBigInt f = crypto().random_exponent();
  r_ = r_.get() * f % crypto().group().q();
  for (auto& [member, partial] : partials_) {
    if (member == self()) continue;
    partial = crypto().exp(partial, f);
  }
  broadcast_partials();
  host_.deliver_key(crypto().exp(partials_[self()], r_));
}

Bytes GdhProtocol::encode_partials() const {
  Writer w;
  w.u8(kPartials);
  w.u32(static_cast<std::uint32_t>(order_.size()));
  for (ProcessId p : order_) w.u32(p);
  w.u32(static_cast<std::uint32_t>(partials_.size()));
  for (const auto& [member, partial] : partials_) {
    w.u32(member);
    put_bigint(w, partial);
  }
  return w.take();
}

void GdhProtocol::broadcast_partials() { host_.send_multicast(encode_partials()); }

void GdhProtocol::adopt_partials(Reader& r, ProcessId /*sender*/) {
  const std::uint32_t order_len = r.u32();
  order_.clear();
  for (std::uint32_t i = 0; i < order_len; ++i) order_.push_back(r.u32());
  const std::uint32_t count = r.u32();
  partials_.clear();
  for (std::uint32_t i = 0; i < count; ++i) {
    ProcessId member = r.u32();
    partials_[member] = get_bigint(r);
  }
  auto it = partials_.find(self());
  SGK_CHECK(it != partials_.end());
  host_.deliver_key(crypto().exp(it->second, r_));
}

void GdhProtocol::on_message(ProcessId sender, const Bytes& body) {
  Reader r(body);
  const std::uint8_t type = r.u8();
  switch (type) {
    case kToken: {
      if (!i_am_new_) return;
      BigInt token = get_bigint(r);
      const std::uint32_t order_len = r.u32();
      std::vector<ProcessId> chain_order;
      for (std::uint32_t i = 0; i < order_len; ++i) chain_order.push_back(r.u32());
      auto pos = std::find(new_members_.begin(), new_members_.end(), self());
      SGK_CHECK(pos != new_members_.end());
      if (self() == new_controller_) {
        // Last new member: broadcast the accumulated value unchanged.
        mark_phase("broadcast");
        accum_ = token;
        order_ = std::move(chain_order);
        order_.push_back(self());
        Writer w;
        w.u8(kAccum);
        put_bigint(w, accum_);
        host_.send_multicast(w.take());
      } else {
        // Add my contribution and forward along the chain.
        mark_phase("token_accumulation");
        r_ = crypto().random_exponent();
        BigInt next_token = crypto().exp(token, r_);
        chain_order.push_back(self());
        Writer w;
        w.u8(kToken);
        put_bigint(w, next_token);
        w.u32(static_cast<std::uint32_t>(chain_order.size()));
        for (ProcessId p : chain_order) w.u32(p);
        host_.send_ordered(*(pos + 1), w.take());
      }
      return;
    }
    case kAccum: {
      if (sender == self()) return;  // own broadcast
      mark_phase("factor_out");
      accum_ = get_bigint(r);
      // Factor out my contribution and return it to the new controller.
      BigInt factored = crypto().exp(accum_, crypto().inverse_q(r_));
      Writer w;
      w.u8(kFactorOut);
      put_bigint(w, factored);
      host_.send_ordered(new_controller_, w.take());
      return;
    }
    case kFactorOut: {
      if (self() != new_controller_) return;
      factors_[sender] = get_bigint(r);
      if (factors_.size() + 1 < view_.members.size()) return;
      // All factor-out tokens collected: become the controller.
      mark_phase("key_distribution");
      r_ = crypto().random_exponent();
      partials_.clear();
      for (const auto& [member, factored] : factors_) {
        partials_[member] = crypto().exp(factored, r_);
      }
      partials_[self()] = accum_;
      broadcast_partials();
      host_.deliver_key(crypto().exp(accum_, r_));
      // From now on I am an established member.
      i_am_new_ = false;
      return;
    }
    case kPartials: {
      if (sender == self()) return;  // I built this list
      mark_phase("key_distribution");
      adopt_partials(r, sender);
      i_am_new_ = false;
      return;
    }
    default:
      return;  // unknown message: ignore
  }
}

}  // namespace sgk
