// Virtual-time costs of cryptographic operations.
//
// The simulator executes real cryptography but charges virtual time from
// this model, so experiments reproduce the paper's 2002-era hardware
// deterministically. All costs derive from a single primitive: the cost of
// one modular multiplication at a given modulus size, which scales
// quadratically with the modulus. A sliding-window modular exponentiation
// with an e-bit exponent costs about 1.2 * e multiplications (e squarings
// plus ~e/5 multiplies), exactly the shape the paper leans on when it
// discusses BD's "hidden cost" of n-1 small-exponent exponentiations.
#pragma once

#include <cstddef>

namespace sgk {

struct CostModel {
  // Milliseconds for one modular multiplication at a 512-bit modulus on the
  // reference machine. Other sizes scale as (bits/512)^2.
  double mult_512_ms = 0.00677;

  // Fixed per-operation overheads (padding, hashing, marshalling). Verify
  // overhead is calibrated against the paper's observation that BD's and
  // GDH's n-fold signature verifications dominate at large group sizes.
  double rsa_sign_overhead_ms = 0.2;
  double rsa_verify_overhead_ms = 0.8;
  double sign_hash_overhead_ms = 0.05;

  // Symmetric/hash costs per byte (negligible but modeled).
  double sha256_per_byte_ms = 2.0e-6;
  double aes_per_byte_ms = 3.0e-6;

  // Cheap bignum ops.
  double modinv_ms = 0.08;   // extended Euclid at 512..1024 bits
  double modmul_extra_ms = 0.0;  // charged via mult cost directly

  /// Cost of one modular multiplication at `mod_bits`.
  double mult_ms(std::size_t mod_bits) const;

  /// Cost of (base^exp mod m) with `exp_bits`-bit exponent at `mod_bits`.
  double mod_exp_ms(std::size_t mod_bits, std::size_t exp_bits) const;

  /// RSA sign with CRT at `mod_bits` (two half-size exponentiations).
  double rsa_sign_ms(std::size_t mod_bits) const;

  /// RSA verify with public exponent e (small): ~log2(e) multiplications.
  double rsa_verify_ms(std::size_t mod_bits, std::size_t e_bits) const;

  double sha256_ms(std::size_t bytes) const;
  double aes_ms(std::size_t bytes) const;

  /// Reference model: 800 MHz Pentium III with OpenSSL-era big-number code,
  /// reproducing the paper's quoted primitive costs: 512-bit modexp
  /// (160-bit exponent) ~1.3 ms, 1024-bit ~5.2 ms, RSA-1024 sign ~8 ms,
  /// verify (e=3) ~0.2 ms.
  static CostModel paper2002() { return CostModel{}; }

  /// A model with all costs zero; useful to isolate communication costs in
  /// ablation benchmarks.
  static CostModel free();
};

}  // namespace sgk
