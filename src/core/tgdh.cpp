#include "core/tgdh.h"

#include <algorithm>

#include "obs/wallclock.h"
#include "util/check.h"

namespace sgk {

namespace {
std::vector<ProcessId> sorted_copy(std::vector<ProcessId> v) {
  std::sort(v.begin(), v.end());
  return v;
}
}  // namespace

void TgdhProtocol::reset_to_singleton() {
  tree_ = KeyTree::leaf(self());
  refresh_my_leaf();
}

void TgdhProtocol::refresh_my_leaf() {
  const int leaf = tree_.find_leaf(self());
  SGK_CHECK(leaf != -1);
  TreeNode& n = tree_.node(leaf);
  n.key = crypto().random_exponent();
  n.has_key = true;
  n.bkey = crypto().exp_g(n.key);
  n.has_bkey = true;
  n.bkey_published = false;
}

void TgdhProtocol::invalidate_sponsor_path(ProcessId sponsor) {
  const int leaf = tree_.find_leaf(sponsor);
  if (leaf == -1) return;
  // The sponsor will refresh its secret: its blinded key and every key /
  // blinded key above it are stale.
  for (int cur = leaf; cur != -1; cur = tree_.node(cur).parent) {
    TreeNode& n = tree_.node(cur);
    if (cur != leaf || sponsor != self()) {
      if (cur == leaf) {
        n.has_bkey = false;
        n.bkey_published = false;
      } else {
        n.has_key = false;
        n.has_bkey = false;
        n.bkey_published = false;
      }
    } else if (cur == leaf) {
      continue;  // my own leaf: refresh_my_leaf replaces it
    }
  }
}

void TgdhProtocol::handle_view(const View& view, const ViewDelta& delta) {
  view_ = view;
  delivered_ = false;
  collecting_ = false;
  announced_.clear();
  covered_.clear();
  unconfirmed_bcasts_ = 0;  // broadcasts of the aborted instance are dead
  // Blinded keys broadcast by an instance this view just aborted were
  // discarded as stale at the receivers; be willing to re-announce them.
  if (restarting()) tree_.mark_bkeys_unpublished();

  if (view.members.size() == 1) {
    reset_to_singleton();
    const TreeNode& root = tree_.node(tree_.root());
    host_.deliver_key(root.key);
    delivered_ = true;
    return;
  }

  // Prune anything not in the new view from my tree.
  if (!tree_.empty()) {
    std::vector<ProcessId> departed;
    for (ProcessId p : tree_.members())
      if (!view.contains(p)) departed.push_back(p);
    std::sort(departed.begin(), departed.end());
    if (!departed.empty() && delta.sides.size() == 1) {
      // Pure subtractive event: remember sponsor candidates.
      start_subtractive(delta);
      return;
    }
    tree_.remove_members(departed);
  }

  start_merge(delta);
}

void TgdhProtocol::start_subtractive(const ViewDelta& delta) {
  mark_phase("tree_update");
  std::vector<ProcessId> departed = delta.left;
  std::sort(departed.begin(), departed.end());
  const std::vector<int> candidates = tree_.remove_members(departed);

  // Consistency check: the pruned tree must hold exactly the view members.
  if (tree_.empty() || sorted_copy(tree_.members()) != view_.members) {
    reset_to_singleton();
    start_merge(ViewDelta{});  // everyone re-announces from singletons
    return;
  }

  // Eager balancing variant: if the pruned tree is taller than necessary,
  // rebuild it height-minimal. Every internal node becomes invalid, so the
  // re-key takes more rounds of blinded-key broadcasts — the higher leave
  // communication cost the paper's footnote 7 attributes to AVL-style
  // management — in exchange for minimal path lengths afterwards.
  if (eager_balance_) {
    int minimal = 0;
    while ((std::size_t{1} << minimal) < view_.members.size()) ++minimal;
    if (tree_.height(tree_.root()) > minimal) {
      tree_.rebuild_balanced();
      const ProcessId sponsor = tree_.rightmost_member(tree_.root());
      invalidate_sponsor_path(sponsor);
      if (sponsor == self()) refresh_my_leaf();
      iterate();
      return;
    }
  }

  // Sponsor selection (paper 4.3): the rightmost member of the sibling
  // subtree of the shallowest, rightmost departed leaf refreshes its share.
  int best = -1;
  int best_depth = 0;
  std::size_t best_pos = 0;
  const std::vector<ProcessId> order = tree_.members();
  for (int cand : candidates) {
    const ProcessId m = tree_.rightmost_member(cand);
    const int leaf = tree_.find_leaf(m);
    const int d = tree_.depth(leaf);
    const std::size_t pos = static_cast<std::size_t>(
        std::find(order.begin(), order.end(), m) - order.begin());
    if (best == -1 || d < best_depth || (d == best_depth && pos > best_pos)) {
      best = cand;
      best_depth = d;
      best_pos = pos;
    }
  }
  SGK_CHECK(best != -1);
  const ProcessId sponsor = tree_.rightmost_member(best);
  invalidate_sponsor_path(sponsor);
  if (sponsor == self()) refresh_my_leaf();
  iterate();
}

void TgdhProtocol::start_merge(const ViewDelta& delta) {
  mark_phase("tree_update");
  // Determine my side; if my tree does not match it (cascade or fresh join),
  // fall back to a singleton announcement, which is always safe.
  const std::vector<ProcessId>* my_side = delta.side_of(self());
  if (tree_.empty() || my_side == nullptr ||
      sorted_copy(tree_.members()) != *my_side) {
    reset_to_singleton();
  }

  collecting_ = true;
  covered_ = tree_.members();
  std::sort(covered_.begin(), covered_.end());

  const ProcessId sponsor1 = tree_.rightmost_member(tree_.root());
  // Even the sponsor waits for its own announcement to come back through
  // the agreed stream before treating its side as announced: if the send is
  // stamped after the next membership change it is discarded everywhere,
  // and a sponsor that folded on a send nobody received would diverge.
  own_side_announced_ = false;
  invalidate_sponsor_path(sponsor1);
  if (sponsor1 == self()) {
    refresh_my_leaf();
    compute_up();
    // The announced tree's root becomes an interior node after grafting, so
    // (unlike the root of the final merged tree) its blinded key is needed.
    TreeNode& root = tree_.node(tree_.root());
    if (root.has_key && !root.has_bkey) {
      root.bkey = crypto().exp_g(crypto().to_exponent(root.key));
      root.has_bkey = true;
      root.bkey_published = false;
    }
    broadcast_tree(kAnnounce);
  }
}

void TgdhProtocol::broadcast_tree(MsgType type) {
  Writer w;
  w.u8(type);
  tree_.serialize(w);
  host_.send_multicast(w.take());
  // Published flags are set when the broadcast is delivered back (self
  // messages loop through the agreed stream), not here; the counter keeps
  // iterate() from re-sending while a broadcast is in flight.
  ++unconfirmed_bcasts_;
}

void TgdhProtocol::try_fold() {
  if (!collecting_ || !own_side_announced_) return;
  if (covered_ != view_.members) return;

  // All sides announced: graft the trees together. Fold order is
  // deterministic: host = taller tree, then more leaves, then smaller
  // minimum member id.
  std::vector<KeyTree*> trees;
  trees.push_back(&tree_);
  for (KeyTree& t : announced_) trees.push_back(&t);
  auto rank = [](const KeyTree& t) {
    const std::vector<ProcessId> m = t.members();
    const ProcessId min_id = *std::min_element(m.begin(), m.end());
    return std::tuple<int, std::size_t, ProcessId>(
        -t.height(t.root()), m.size() ? m.size() : 0, min_id);
  };
  std::sort(trees.begin(), trees.end(), [&](KeyTree* a, KeyTree* b) {
    auto [ha, sa, ia] = rank(*a);
    auto [hb, sb, ib] = rank(*b);
    if (ha != hb) return ha < hb;           // taller first
    if (sa != sb) return sa > sb;           // more leaves first
    return ia < ib;                          // smaller min id first
  });

  KeyTree merged = *trees.front();
  int merge_point = merged.root();
  for (std::size_t i = 1; i < trees.size(); ++i)
    merge_point = merged.merge(*trees[i]);
  tree_ = std::move(merged);
  collecting_ = false;
  announced_.clear();

  // Round 2 (Figure 4): the sponsor of the (last) merge point computes the
  // keys and blinded keys up to the root and broadcasts the updated tree —
  // even when the graft landed at the root and members could technically
  // proceed from the announcements alone; the broadcast is the protocol's
  // key-confirmation step.
  if (trees.size() > 1 && tree_.rightmost_member(merge_point) == self()) {
    compute_up();
    broadcast_tree(kUpdate);
  }
  iterate();
}

void TgdhProtocol::compute_up() {
  const int leaf = tree_.find_leaf(self());
  SGK_CHECK(leaf != -1);
  int child = leaf;
  for (int cur = tree_.node(leaf).parent; cur != -1;
       cur = tree_.node(cur).parent) {
    TreeNode& node = tree_.node(cur);
    if (!node.has_key) {
      const TreeNode& child_node = tree_.node(child);
      const int sib = tree_.sibling(child);
      const TreeNode& sib_node = tree_.node(sib);
      if (!child_node.has_key || !sib_node.has_bkey) break;  // blocked
      node.key = crypto().exp(sib_node.bkey, crypto().to_exponent(child_node.key));
      node.has_key = true;
      if (!node.has_bkey && cur != tree_.root()) {
        node.bkey = crypto().exp_g(crypto().to_exponent(node.key));
        node.has_bkey = true;
        node.bkey_published = false;
      } else if (node.has_bkey && host_.key_confirmation()) {
        // Key confirmation (paper section 5): re-derive the published
        // blinded key and check it against the broadcast value. Compared in
        // constant time — the check value is derived from the node secret.
        BigInt check = crypto().exp_g(crypto().to_exponent(node.key));
        SGK_CHECK(ct_equal(check.to_bytes(), node.bkey.to_bytes()));
        mark_point("key_confirmation");
      }
    }
    child = cur;
  }
}

void TgdhProtocol::iterate() {
  compute_up();

  // Broadcast if I am the rightmost member of some subtree whose freshly
  // computed blinded key is not yet published.
  const int leaf = tree_.find_leaf(self());
  bool should_broadcast = false;
  for (int cur = leaf; cur != -1; cur = tree_.node(cur).parent) {
    const TreeNode& n = tree_.node(cur);
    if (n.has_bkey && !n.bkey_published && tree_.rightmost_member(cur) == self()) {
      should_broadcast = true;
      break;
    }
  }
  // At most one broadcast in flight: the pending one returns through the
  // stream and re-runs iterate(), which then covers anything still unsent.
  if (should_broadcast && unconfirmed_bcasts_ == 0) broadcast_tree(kUpdate);

  const TreeNode& root = tree_.node(tree_.root());
  if (root.has_key && !delivered_) {
    host_.deliver_key(root.key);
    delivered_ = true;
  }
}

Decoded<TgdhProtocol::Wire> TgdhProtocol::validate_and_decode(
    const Bytes& body, const BigInt& p) {
  using D = Decoded<Wire>;
  Wire m;
  try {
    Reader r(body);
    m.type = r.u8();
    if (m.type != kAnnounce && m.type != kUpdate)
      return D::rejected(RejectReason::kBadTag);
    m.tree = KeyTree::deserialize(r);
    if (!r.done()) return D::rejected(RejectReason::kTrailingBytes);
  } catch (const TreeShapeError&) {
    return D::rejected(RejectReason::kBadShape);
  } catch (const LengthError&) {
    return D::rejected(RejectReason::kBadLength);
  } catch (const DecodeError&) {
    return D::rejected(RejectReason::kTruncated);
  }
  if (!m.tree.bkeys_in_range(p)) return D::rejected(RejectReason::kBignumRange);
  return D::accepted(std::move(m));
}

void TgdhProtocol::handle_message(ProcessId sender, const Bytes& body) {
  Decoded<Wire> d;
  {
    obs::WallScope wall("decode/TGDH");
    d = validate_and_decode(body, crypto().group().p());
  }
  if (!d.ok()) {
    reject(d.reason);
    return;
  }
  Wire& m = d.value;
  // My own broadcasts loop back through the agreed stream and are processed
  // like anyone else's: that self-delivery — not the send — is what marks
  // blinded keys published and the side announced, so a broadcast stamped
  // after the next view change has no effect anywhere, sender included.
  if (sender == self() && unconfirmed_bcasts_ > 0) --unconfirmed_bcasts_;
  if (m.type == kAnnounce) {
    mark_phase("tree_update");
    KeyTree announced = std::move(m.tree);
    if (!collecting_) {
      // Post-fold (or refresh) announcement: absorb if it matches my tree.
      if (announced.same_structure(tree_)) {
        tree_.absorb_bkeys(announced);
        iterate();
      }
      return;
    }
    // During collection: absorb my own side's announcement, stash others.
    if (announced.same_structure(tree_)) {
      tree_.absorb_bkeys(announced);
      own_side_announced_ = true;
    } else if (sender != self()) {
      for (ProcessId p : announced.members()) {
        auto it = std::lower_bound(covered_.begin(), covered_.end(), p);
        if (it == covered_.end() || *it != p) covered_.insert(it, p);
      }
      announced_.push_back(std::move(announced));
    }
    try_fold();
    return;
  }
  if (m.type == kUpdate) {
    mark_phase("tree_update");
    KeyTree update = std::move(m.tree);
    if (!update.same_structure(tree_)) return;  // stale or foreign
    tree_.absorb_bkeys(update);
    iterate();
    return;
  }
}

}  // namespace sgk
