#include "core/key_agreement.h"

#include <algorithm>

#include "core/bd.h"
#include "core/ckd.h"
#include "core/gdh.h"
#include "core/str.h"
#include "core/tgdh.h"
#include "util/check.h"

namespace sgk {

const char* to_string(ProtocolKind kind) {
  switch (kind) {
    case ProtocolKind::kGdh: return "GDH";
    case ProtocolKind::kCkd: return "CKD";
    case ProtocolKind::kTgdh: return "TGDH";
    case ProtocolKind::kTgdhBalanced: return "TGDH-bal";
    case ProtocolKind::kStr: return "STR";
    case ProtocolKind::kBd: return "BD";
    case ProtocolKind::kNone: return "none";
  }
  return "?";
}

void KeyAgreement::on_view(const View& view, const ViewDelta& delta) {
  restarting_ = in_flight_;
  if (in_flight_) {
    // Secure Spread rule: the membership changed under a running agreement.
    // Abort it (handle_view discards transient state) and restart on the
    // newest view.
    ++restarts_;
    host_.mark_point("agreement_restart");
  }
  in_flight_ = true;
  ++started_;
  handle_view(view, delta);
}

void KeyAgreement::on_message(ProcessId sender, const Bytes& body) {
  handle_message(sender, body);
}

void KeyAgreement::note_key_delivered() {
  if (in_flight_) {
    in_flight_ = false;
    ++completed_;
  }
}

namespace {
/// The null protocol: completes instantly with a fixed key. Measures the
/// bare membership service (the baseline series in the paper's figures).
class NullProtocol final : public KeyAgreement {
 public:
  explicit NullProtocol(ProtocolHost& host) : KeyAgreement(host) {}
  ProtocolKind kind() const override { return ProtocolKind::kNone; }

 protected:
  void handle_view(const View& view, const ViewDelta&) override {
    host_.deliver_key(BigInt(view.view_id + 1));
  }
  void handle_message(ProcessId, const Bytes&) override {}
};
}  // namespace

std::unique_ptr<KeyAgreement> make_protocol(ProtocolKind kind, ProtocolHost& host) {
  switch (kind) {
    case ProtocolKind::kGdh: return std::make_unique<GdhProtocol>(host);
    case ProtocolKind::kCkd: return std::make_unique<CkdProtocol>(host);
    case ProtocolKind::kTgdh: return std::make_unique<TgdhProtocol>(host);
    case ProtocolKind::kTgdhBalanced:
      return std::make_unique<TgdhProtocol>(host, /*eager_balance=*/true);
    case ProtocolKind::kStr: return std::make_unique<StrProtocol>(host);
    case ProtocolKind::kBd: return std::make_unique<BdProtocol>(host);
    case ProtocolKind::kNone: return std::make_unique<NullProtocol>(host);
  }
  SGK_CHECK(false);
  return nullptr;
}

const std::vector<ProcessId>* core_side(const ViewDelta& delta) {
  const std::vector<ProcessId>* best = nullptr;
  for (const auto& side : delta.sides) {
    if (side.empty()) continue;
    if (best == nullptr || side.size() > best->size() ||
        (side.size() == best->size() && side.front() < best->front())) {
      best = &side;
    }
  }
  return best;
}

void put_bigint(Writer& w, const BigInt& v) { w.bytes(v.to_bytes()); }

BigInt get_bigint(Reader& r) { return BigInt::from_bytes(r.bytes()); }

bool in_group_range(const BigInt& v, const BigInt& p) {
  return v >= BigInt(2) && v <= p - BigInt(2);
}

}  // namespace sgk
