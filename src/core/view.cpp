#include "core/view.h"

namespace sgk {

const char* to_string(GroupEvent e) {
  switch (e) {
    case GroupEvent::kInitial: return "initial";
    case GroupEvent::kJoin: return "join";
    case GroupEvent::kLeave: return "leave";
    case GroupEvent::kMerge: return "merge";
    case GroupEvent::kPartition: return "partition";
    case GroupEvent::kMixed: return "mixed";
    case GroupEvent::kRefresh: return "refresh";
  }
  return "?";
}

ViewDelta view_delta(const View& prev, const View& next, bool first_view) {
  ViewDelta d;
  d.first_view = first_view;
  std::set_difference(next.members.begin(), next.members.end(),
                      prev.members.begin(), prev.members.end(),
                      std::back_inserter(d.joined));
  std::set_difference(prev.members.begin(), prev.members.end(),
                      next.members.begin(), next.members.end(),
                      std::back_inserter(d.left));
  return d;
}

}  // namespace sgk
