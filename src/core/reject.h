// Typed rejection taxonomy for untrusted wire input.
//
// Every frame a member refuses to act on is classified with a RejectReason,
// counted under `frames_rejected/<protocol>/<reason>`, and — when the
// rejection indicates corruption of the agreed stream — fed into the
// quarantine/recovery policy in SecureGroupMember. Nothing in the receive
// path may crash, wedge, or silently diverge on a hostile frame; the reason
// codes below are the complete vocabulary for how such a frame dies.
// See docs/adversarial_robustness.md for the threat model.
#pragma once

#include <cstdint>
#include <utility>

namespace sgk {

enum class RejectReason : std::uint8_t {
  kNone = 0,          // sentinel: frame accepted
  kTruncated,         // ran out of bytes mid-field
  kTrailingBytes,     // bytes left over after a complete decode
  kBadTag,            // unknown message-type tag or invalid flag byte
  kBadLength,         // length prefix inconsistent with the payload
  kBignumRange,       // group element outside [2, p-2]
  kBadShape,          // malformed key-tree / member-chain structure
  kSenderMismatch,    // claimed sender differs from the transport sender
  kUnknownSender,     // sender absent from the current view or PKI
  kEpochStale,        // frame from an epoch this member already left
  kEpochFarFuture,    // epoch beyond the plausible buffering window
  kBadSignature,      // frame signature failed verification
  kLoopbackMismatch,  // own multicast came back with different bytes
  kReplay,            // data-plane sequence number already seen
  kBadMac,            // data-plane authentication (MAC) failure
  kStateMismatch,     // well-formed frame inconsistent with protocol state
  kInternalCheck,     // an internal invariant check tripped on this frame
};

inline const char* to_string(RejectReason r) {
  switch (r) {
    case RejectReason::kNone: return "none";
    case RejectReason::kTruncated: return "truncated";
    case RejectReason::kTrailingBytes: return "trailing_bytes";
    case RejectReason::kBadTag: return "bad_tag";
    case RejectReason::kBadLength: return "bad_length";
    case RejectReason::kBignumRange: return "bignum_range";
    case RejectReason::kBadShape: return "bad_shape";
    case RejectReason::kSenderMismatch: return "sender_mismatch";
    case RejectReason::kUnknownSender: return "unknown_sender";
    case RejectReason::kEpochStale: return "epoch_stale";
    case RejectReason::kEpochFarFuture: return "epoch_far_future";
    case RejectReason::kBadSignature: return "bad_signature";
    case RejectReason::kLoopbackMismatch: return "loopback_mismatch";
    case RejectReason::kReplay: return "replay";
    case RejectReason::kBadMac: return "bad_mac";
    case RejectReason::kStateMismatch: return "state_mismatch";
    case RejectReason::kInternalCheck: return "internal_check";
  }
  return "unknown";
}

/// `expected`-style decode result: either a value or a typed reason. The
/// validated-decode entrypoints (`validate_and_decode` in every protocol and
/// in the secure group layer) return this instead of throwing, so no decode
/// failure can propagate past a message handler.
template <typename T>
struct Decoded {
  RejectReason reason = RejectReason::kNone;
  T value{};

  bool ok() const { return reason == RejectReason::kNone; }

  static Decoded rejected(RejectReason why) {
    Decoded d;
    d.reason = why;
    return d;
  }
  static Decoded accepted(T v) {
    Decoded d;
    d.value = std::move(v);
    return d;
  }
};

}  // namespace sgk
