// GDH (Cliques IKA.3) contributory group key agreement.
//
// The shared key is K = g^(r_1 r_2 ... r_n). The group controller (the most
// recently added remaining member) maintains the list of partial keys
// P_i = g^(R / r_i); each member derives K = P_i ^ r_i.
//
// Merge (Figure 1 of the paper): the current controller refreshes its
// exponent and unicasts the accumulated token through the chain of new
// members; the last new member broadcasts the accumulated value; everyone
// factors out its contribution and sends it back (in agreed order) to the
// last new member, who becomes the new controller, exponentiates each
// factor-out token with a fresh exponent and broadcasts the partial key
// list.
//
// Leave/partition (Figure 2): the controller refreshes its own exponent by a
// factor f, drops the departed members' partial keys, raises every remaining
// partial key to f, and broadcasts the new list.
#pragma once

#include <map>
#include <vector>

#include "bignum/secure_bigint.h"
#include "core/key_agreement.h"

namespace sgk {

class GdhProtocol final : public KeyAgreement {
 public:
  explicit GdhProtocol(ProtocolHost& host) : KeyAgreement(host) {}

  void handle_view(const View& view, const ViewDelta& delta) override;
  void handle_message(ProcessId sender, const Bytes& body) override;
  ProtocolKind kind() const override { return ProtocolKind::kGdh; }

  /// Exposed for white-box tests: the current controller and join order.
  ProcessId controller() const { return order_.empty() ? kNoProcess : order_.back(); }
  const std::vector<ProcessId>& join_order() const { return order_; }

  enum MsgType : std::uint8_t { kToken = 1, kAccum = 2, kFactorOut = 3, kPartials = 4 };

  /// Fully decoded + validated wire message (union across the four types).
  struct Wire {
    std::uint8_t type = 0;
    BigInt value;                    // token / accumulated / factored-out
    std::vector<ProcessId> done;     // kToken
    std::vector<ProcessId> chain;    // kToken
    std::vector<ProcessId> order;    // kPartials
    std::vector<std::pair<ProcessId, BigInt>> partials;  // kPartials
  };

  /// The only entrypoint that touches raw GDH wire bytes: structural decode
  /// plus semantic validation (tags, list caps, every bignum in [2, p-2]).
  /// Never throws; a hostile body comes back as a typed rejection.
  static Decoded<Wire> validate_and_decode(const Bytes& body, const BigInt& p);

 private:

  void start_merge();
  void handle_leave(const ViewDelta& delta);
  void broadcast_partials();
  Bytes encode_token(const BigInt& token, const std::vector<ProcessId>& done,
                     const std::vector<ProcessId>& chain) const;
  Bytes encode_partials() const;
  void adopt_partials(Wire msg);

  View view_;
  // Join order, oldest first; controller == order_.back().
  std::vector<ProcessId> order_;
  // Partial keys P_i = g^(R / r_i) are broadcast values, not secrets.
  std::map<ProcessId, BigInt> partials_;
  SecureBigInt r_;  // my current secret contribution (zeroized on replace)

  // Transient merge state.
  std::vector<ProcessId> new_members_;  // token chain order
  ProcessId new_controller_ = kNoProcess;
  bool i_am_new_ = false;
  BigInt accum_;
  std::map<ProcessId, BigInt> factors_;  // at the new controller

  // Generation counter for r_: bumped on every refresh. A controller that
  // broadcast a partial-key list installs its own key only when the list
  // self-delivers through the agreed stream, and only if r_ has not been
  // refreshed since (a token from a concurrent fallback chain supersedes
  // the instance the list belonged to).
  int my_gen_ = 0;
  int pending_gen_ = -1;  // generation of the in-flight list, -1 = none
};

}  // namespace sgk
