// Operation counters for the conceptual-cost experiments (Table 1).
#pragma once

#include <cstdint>

namespace sgk {

/// Counts of cryptographic and communication operations performed by one
/// member during one key agreement instance (or accumulated over a run).
struct OpCounters {
  // Modular exponentiations, split the way the paper's analysis splits them:
  // full-size exponents (the 160-bit session exponents) vs the small-exponent
  // ones that make up BD's "hidden cost".
  std::uint64_t exp_full = 0;
  std::uint64_t exp_small = 0;
  std::uint64_t mod_inverse = 0;
  std::uint64_t mod_mul = 0;

  std::uint64_t sign_ops = 0;
  std::uint64_t verify_ops = 0;

  // Auxiliary crypto charged by the cost model but invisible in the paper's
  // tables: message-digest invocations and DRBG output consumed.
  std::uint64_t hash_ops = 0;
  std::uint64_t drbg_bytes = 0;

  std::uint64_t multicasts = 0;
  std::uint64_t unicasts = 0;
  std::uint64_t ordered_sends = 0;
  std::uint64_t bytes_sent = 0;

  OpCounters& operator+=(const OpCounters& o) {
    exp_full += o.exp_full;
    exp_small += o.exp_small;
    mod_inverse += o.mod_inverse;
    mod_mul += o.mod_mul;
    sign_ops += o.sign_ops;
    verify_ops += o.verify_ops;
    hash_ops += o.hash_ops;
    drbg_bytes += o.drbg_bytes;
    multicasts += o.multicasts;
    unicasts += o.unicasts;
    ordered_sends += o.ordered_sends;
    bytes_sent += o.bytes_sent;
    return *this;
  }

  OpCounters operator-(const OpCounters& o) const {
    OpCounters r = *this;
    r.exp_full -= o.exp_full;
    r.exp_small -= o.exp_small;
    r.mod_inverse -= o.mod_inverse;
    r.mod_mul -= o.mod_mul;
    r.sign_ops -= o.sign_ops;
    r.verify_ops -= o.verify_ops;
    r.hash_ops -= o.hash_ops;
    r.drbg_bytes -= o.drbg_bytes;
    r.multicasts -= o.multicasts;
    r.unicasts -= o.unicasts;
    r.ordered_sends -= o.ordered_sends;
    r.bytes_sent -= o.bytes_sent;
    return r;
  }

  std::uint64_t exp_total() const { return exp_full + exp_small; }
  std::uint64_t messages() const { return multicasts + unicasts + ordered_sends; }
};

}  // namespace sgk
