// Instrumented cryptography for key agreement protocols.
//
// Every protocol performs its cryptography through a CryptoContext, which
// (a) executes the real big-number operation, (b) counts it for the
// conceptual-cost experiments, and (c) charges its modeled cost to the
// member's accumulated compute meter, which the SecureGroupMember turns into
// virtual CPU time on the member's machine.
#pragma once

#include <optional>
#include <variant>

#include "bignum/bigint.h"
#include "bignum/secure_bigint.h"
#include "core/counters.h"
#include "crypto/dh.h"
#include "crypto/drbg.h"
#include "crypto/dsa.h"
#include "crypto/rsa.h"
#include "core/cost_model.h"
#include "util/bytes.h"

namespace sgk {

/// The signature scheme used for protocol message authentication. The paper
/// uses RSA with e=3 and explicitly calls out DSA's expensive verification
/// as the alternative to avoid; both are supported so the trade-off can be
/// measured (bench/ablation).
enum class SigScheme { kRsa, kDsa };

/// A member's public verification key as stored in the PKI. Stored by value:
/// the PKI must outlive the members (a departed member's in-flight messages
/// are still verified after it is destroyed).
using VerifyKey = std::variant<RsaPublicKey, DsaPublicKey>;

class CryptoContext {
 public:
  CryptoContext(const DhGroup& group, const RsaPrivateKey& rsa,
                CostModel cost, Drbg rng, SigScheme scheme = SigScheme::kRsa)
      : group_(group), rsa_(rsa), cost_(cost), rng_(std::move(rng)),
        scheme_(scheme) {
    if (scheme_ == SigScheme::kDsa) dsa_.emplace(group_, rng_);
    // Long-term key generation above is setup, not protocol cost.
    last_drbg_ = rng_.bytes_generated();
  }

  const DhGroup& group() const { return group_; }
  const RsaPublicKey& public_key() const { return rsa_.public_key(); }
  /// This member's verification key (matches the configured scheme).
  VerifyKey verify_key() const {
    if (scheme_ == SigScheme::kDsa) return dsa_->public_key();
    return rsa_.public_key();
  }

  /// Fresh session exponent in [1, q), in zeroizing storage.
  SecureBigInt random_exponent();

  /// (base ^ e) mod p; counted as a full or small exponentiation by the
  /// exponent's bit length.
  BigInt exp(const BigInt& base, const BigInt& e);
  /// g ^ e mod p.
  BigInt exp_g(const BigInt& e);

  /// Inverse of an exponent modulo q (GDH factor-out, CKD unwrap).
  BigInt inverse_q(const BigInt& a);
  /// Inverse of a group element modulo p (BD's z_{i-1}^{-1}).
  BigInt inverse_p(const BigInt& a);
  /// (a * b) mod p.
  BigInt mul_p(const BigInt& a, const BigInt& b);
  /// Reduce an arbitrary value into a usable exponent (tree protocols).
  BigInt to_exponent(const BigInt& v) const { return group_.to_exponent(v); }

  Bytes sign(const Bytes& message);
  bool verify(const VerifyKey& pub, const Bytes& message, const Bytes& sig);

  /// Charges symmetric-crypto time (group data encryption, KDF).
  void charge_symmetric(std::size_t bytes);

  /// Raw randomness (group secrets, IVs).
  Bytes random_bytes(std::size_t n);

  OpCounters& counters() { return counters_; }
  const OpCounters& counters() const { return counters_; }

  /// Compute milliseconds accumulated since the last take_charge().
  double take_charge() {
    double c = meter_ms_;
    meter_ms_ = 0;
    return c;
  }

 private:
  /// Folds bytes drawn from the DRBG since the last sync into the counters.
  void sync_drbg() {
    const std::uint64_t total = rng_.bytes_generated();
    counters_.drbg_bytes += total - last_drbg_;
    last_drbg_ = total;
  }

  const DhGroup& group_;
  const RsaPrivateKey& rsa_;
  CostModel cost_;
  Drbg rng_;
  SigScheme scheme_;
  std::optional<DsaPrivateKey> dsa_;
  OpCounters counters_;
  double meter_ms_ = 0;
  std::uint64_t last_drbg_ = 0;
};

}  // namespace sgk
