#include "core/key_tree.h"

#include <algorithm>
#include <deque>
#include <sstream>

#include "core/key_agreement.h"
#include "util/check.h"

namespace sgk {

KeyTree KeyTree::leaf(ProcessId member) {
  KeyTree t;
  TreeNode n;
  n.member = member;
  t.nodes_.push_back(std::move(n));
  t.root_ = 0;
  return t;
}

int KeyTree::find_leaf(ProcessId member) const {
  for (std::size_t i = 0; i < nodes_.size(); ++i)
    if (nodes_[i].parent != -2 && nodes_[i].is_leaf() && nodes_[i].member == member)
      return static_cast<int>(i);
  return -1;
}

void KeyTree::collect_members(int node, std::vector<ProcessId>& out) const {
  if (node == -1) return;
  const TreeNode& n = nodes_[static_cast<std::size_t>(node)];
  if (n.is_leaf()) {
    out.push_back(n.member);
    return;
  }
  collect_members(n.left, out);
  collect_members(n.right, out);
}

std::vector<ProcessId> KeyTree::members() const {
  std::vector<ProcessId> out;
  collect_members(root_, out);
  return out;
}

ProcessId KeyTree::rightmost_member(int subtree) const {
  SGK_CHECK(subtree != -1);
  int cur = subtree;
  while (!nodes_[static_cast<std::size_t>(cur)].is_leaf())
    cur = nodes_[static_cast<std::size_t>(cur)].right;
  return nodes_[static_cast<std::size_t>(cur)].member;
}

int KeyTree::height(int subtree) const {
  if (subtree == -1) return -1;
  const TreeNode& n = nodes_[static_cast<std::size_t>(subtree)];
  if (n.is_leaf()) return 0;
  return 1 + std::max(height(n.left), height(n.right));
}

int KeyTree::depth(int node) const {
  int d = 0;
  for (int cur = node; nodes_[static_cast<std::size_t>(cur)].parent >= 0;
       cur = nodes_[static_cast<std::size_t>(cur)].parent)
    ++d;
  return d;
}

int KeyTree::sibling(int node) const {
  const int p = nodes_[static_cast<std::size_t>(node)].parent;
  if (p < 0) return -1;
  const TreeNode& parent = nodes_[static_cast<std::size_t>(p)];
  return parent.left == node ? parent.right : parent.left;
}

std::vector<int> KeyTree::path_to_root(int node) const {
  std::vector<int> out;
  for (int cur = nodes_[static_cast<std::size_t>(node)].parent; cur != -1;
       cur = nodes_[static_cast<std::size_t>(cur)].parent)
    out.push_back(cur);
  return out;
}

void KeyTree::invalidate_up(int node) {
  for (int cur = node; cur != -1; cur = nodes_[static_cast<std::size_t>(cur)].parent) {
    TreeNode& n = nodes_[static_cast<std::size_t>(cur)];
    n.has_key = false;
    n.key.wipe();
    n.has_bkey = false;
    n.bkey = BigInt();
    n.bkey_published = false;
  }
}

int KeyTree::clone_from(const KeyTree& other, int other_node) {
  const TreeNode& src = other.nodes_[static_cast<std::size_t>(other_node)];
  TreeNode copy = src;
  copy.parent = -1;
  copy.left = -1;
  copy.right = -1;
  nodes_.push_back(std::move(copy));
  const int idx = static_cast<int>(nodes_.size() - 1);
  if (!src.is_leaf()) {
    const int l = clone_from(other, src.left);
    const int r = clone_from(other, src.right);
    nodes_[static_cast<std::size_t>(idx)].left = l;
    nodes_[static_cast<std::size_t>(idx)].right = r;
    nodes_[static_cast<std::size_t>(l)].parent = idx;
    nodes_[static_cast<std::size_t>(r)].parent = idx;
  }
  return idx;
}

int KeyTree::find_graft_position(int h) const {
  const int total = height(root_);
  // Breadth-first, right child first: the first acceptable node is the
  // shallowest-rightmost one.
  std::deque<std::pair<int, int>> queue;  // (node, depth)
  queue.emplace_back(root_, 0);
  while (!queue.empty()) {
    auto [node, d] = queue.front();
    queue.pop_front();
    if (d + 1 + std::max(height(node), h) <= total) return node;
    const TreeNode& n = nodes_[static_cast<std::size_t>(node)];
    if (!n.is_leaf()) {
      queue.emplace_back(n.right, d + 1);
      queue.emplace_back(n.left, d + 1);
    }
  }
  return -1;
}

int KeyTree::merge(const KeyTree& other) {
  SGK_CHECK(!other.empty());
  if (empty()) {
    root_ = clone_from(other, other.root_);
    return root_;
  }
  int pos = find_graft_position(other.height(other.root_));
  if (pos == -1) pos = root_;

  const int guest = clone_from(other, other.root_);
  TreeNode merge_node;
  merge_node.left = pos;
  merge_node.right = guest;
  merge_node.parent = nodes_[static_cast<std::size_t>(pos)].parent;
  nodes_.push_back(std::move(merge_node));
  const int m = static_cast<int>(nodes_.size() - 1);
  const int gp = nodes_[static_cast<std::size_t>(m)].parent;
  if (gp == -1) {
    root_ = m;
  } else {
    TreeNode& grand = nodes_[static_cast<std::size_t>(gp)];
    (grand.left == pos ? grand.left : grand.right) = m;
  }
  nodes_[static_cast<std::size_t>(pos)].parent = m;
  nodes_[static_cast<std::size_t>(guest)].parent = m;
  invalidate_up(m);
  return m;
}

std::vector<int> KeyTree::remove_members(const std::vector<ProcessId>& departed) {
  std::vector<int> sponsor_roots;
  for (ProcessId member : departed) {
    const int l = find_leaf(member);
    if (l == -1) continue;
    TreeNode& leaf_node = nodes_[static_cast<std::size_t>(l)];
    const int p = leaf_node.parent;
    if (p == -1) {
      // Sole member left: the tree becomes empty.
      leaf_node.parent = -2;
      root_ = -1;
      continue;
    }
    const int s = sibling(l);
    const int gp = nodes_[static_cast<std::size_t>(p)].parent;
    nodes_[static_cast<std::size_t>(s)].parent = gp;
    if (gp == -1) {
      root_ = s;
    } else {
      TreeNode& grand = nodes_[static_cast<std::size_t>(gp)];
      (grand.left == p ? grand.left : grand.right) = s;
    }
    // Mark removed nodes unusable.
    leaf_node.parent = -2;
    nodes_[static_cast<std::size_t>(p)].parent = -2;
    nodes_[static_cast<std::size_t>(p)].left = -1;
    nodes_[static_cast<std::size_t>(p)].right = -1;
    invalidate_up(gp);
    sponsor_roots.push_back(s);
  }
  // Keep only surviving candidate roots (a later removal may have deleted
  // an earlier sibling subtree or changed its extent), deduplicated.
  std::vector<int> out;
  for (int s : sponsor_roots) {
    if (nodes_[static_cast<std::size_t>(s)].parent == -2) continue;
    if (std::find(out.begin(), out.end(), s) == out.end()) out.push_back(s);
  }
  return out;
}

int KeyTree::serialize_node(Writer& w, int node) const {
  const TreeNode& n = nodes_[static_cast<std::size_t>(node)];
  if (n.is_leaf()) {
    w.u8(0);
    w.u32(n.member);
  } else {
    w.u8(1);
    serialize_node(w, n.left);
    serialize_node(w, n.right);
  }
  if (n.has_bkey) {
    w.u8(1);
    put_bigint(w, n.bkey);
  } else {
    w.u8(0);
  }
  return node;
}

void KeyTree::serialize(Writer& w) const {
  SGK_CHECK(root_ != -1);
  serialize_node(w, root_);
}

int KeyTree::deserialize_node(Reader& r, KeyTree& tree, int depth) {
  // Untrusted input: a lying encoding must die here with a typed error, not
  // recurse to a stack overflow or allocate without bound.
  if (depth > kMaxDepth) throw TreeShapeError("tree exceeds depth limit");
  if (tree.nodes_.size() >= kMaxNodes)
    throw TreeShapeError("tree exceeds node limit");
  const std::uint8_t node_type = r.u8();
  if (node_type > 1) throw TreeShapeError("invalid tree node tag");
  TreeNode n;
  int left = -1, right = -1;
  if (node_type == 0) {
    n.member = r.u32();
  } else {
    left = deserialize_node(r, tree, depth + 1);
    right = deserialize_node(r, tree, depth + 1);
  }
  const std::uint8_t bkey_flag = r.u8();
  if (bkey_flag > 1) throw TreeShapeError("invalid bkey presence flag");
  if (bkey_flag == 1) {
    n.bkey = get_bigint(r);
    n.has_bkey = true;
    n.bkey_published = true;
  }
  n.left = left;
  n.right = right;
  tree.nodes_.push_back(std::move(n));
  const int idx = static_cast<int>(tree.nodes_.size() - 1);
  if (left != -1) {
    tree.nodes_[static_cast<std::size_t>(left)].parent = idx;
    tree.nodes_[static_cast<std::size_t>(right)].parent = idx;
  }
  return idx;
}

KeyTree KeyTree::deserialize(Reader& r) {
  KeyTree t;
  t.root_ = deserialize_node(r, t, 0);
  std::vector<ProcessId> members = t.members();
  std::sort(members.begin(), members.end());
  if (std::adjacent_find(members.begin(), members.end()) != members.end())
    throw TreeShapeError("duplicate member in tree");
  return t;
}

bool KeyTree::bkeys_in_range(const BigInt& p) const {
  for (const TreeNode& n : nodes_)
    if (n.has_bkey && !in_group_range(n.bkey, p)) return false;
  return true;
}

bool KeyTree::same_structure(const KeyTree& other) const {
  // Compare canonical structural serialization (shape + member placement).
  auto shape = [](const KeyTree& t) {
    std::string out;
    std::vector<int> stack{t.root_};
    while (!stack.empty()) {
      int node = stack.back();
      stack.pop_back();
      if (node == -1) {
        out += "#";
        continue;
      }
      const TreeNode& n = t.nodes_[static_cast<std::size_t>(node)];
      if (n.is_leaf()) {
        out += "L";
        out += std::to_string(n.member);
      } else {
        out += "(";
        stack.push_back(n.right);
        stack.push_back(n.left);
      }
    }
    return out;
  };
  if (empty() || other.empty()) return empty() == other.empty();
  return shape(*this) == shape(other);
}

namespace {
void absorb_rec(KeyTree& mine, int my_node, const KeyTree& theirs, int their_node) {
  TreeNode& m = mine.node(my_node);
  const TreeNode& t = theirs.node(their_node);
  SGK_CHECK(m.is_leaf() == t.is_leaf());
  if (t.has_bkey) {
    if (!m.has_bkey) {
      m.bkey = t.bkey;
      m.has_bkey = true;
    }
    m.bkey_published = true;
  }
  if (!m.is_leaf()) {
    absorb_rec(mine, m.left, theirs, t.left);
    absorb_rec(mine, m.right, theirs, t.right);
  }
}
}  // namespace

void KeyTree::absorb_bkeys(const KeyTree& other) {
  SGK_CHECK(same_structure(other));
  if (empty()) return;
  absorb_rec(*this, root_, other, other.root());
}

void KeyTree::mark_bkeys_published() {
  for (TreeNode& n : nodes_) {
    if (n.parent == -2) continue;
    if (n.has_bkey) n.bkey_published = true;
  }
}

void KeyTree::mark_bkeys_unpublished() {
  for (TreeNode& n : nodes_) {
    if (n.parent == -2) continue;
    n.bkey_published = false;
  }
}

namespace {
int build_balanced_rec(std::vector<TreeNode>& nodes,
                       const std::vector<TreeNode>& leaves, std::size_t lo,
                       std::size_t hi) {
  if (hi - lo == 1) {
    nodes.push_back(leaves[lo]);
    return static_cast<int>(nodes.size() - 1);
  }
  const std::size_t mid = lo + (hi - lo + 1) / 2;  // left gets the extra leaf
  const int l = build_balanced_rec(nodes, leaves, lo, mid);
  const int r = build_balanced_rec(nodes, leaves, mid, hi);
  TreeNode internal;
  internal.left = l;
  internal.right = r;
  nodes.push_back(std::move(internal));
  const int idx = static_cast<int>(nodes.size() - 1);
  nodes[static_cast<std::size_t>(l)].parent = idx;
  nodes[static_cast<std::size_t>(r)].parent = idx;
  return idx;
}
}  // namespace

void KeyTree::rebuild_balanced() {
  if (empty()) return;
  // Collect leaves in tree order, keeping their key material.
  std::vector<TreeNode> leaves;
  for (ProcessId m : members()) {
    TreeNode leaf = nodes_[static_cast<std::size_t>(find_leaf(m))];
    leaf.parent = -1;
    leaf.left = -1;
    leaf.right = -1;
    leaves.push_back(std::move(leaf));
  }
  std::vector<TreeNode> rebuilt;
  rebuilt.reserve(2 * leaves.size());
  const int new_root = build_balanced_rec(rebuilt, leaves, 0, leaves.size());
  nodes_ = std::move(rebuilt);
  root_ = new_root;
}

std::string KeyTree::to_string() const {
  std::ostringstream os;
  std::vector<std::pair<int, int>> stack;
  if (root_ != -1) stack.emplace_back(root_, 0);
  while (!stack.empty()) {
    auto [node, indent] = stack.back();
    stack.pop_back();
    const TreeNode& n = nodes_[static_cast<std::size_t>(node)];
    os << std::string(static_cast<std::size_t>(indent) * 2, ' ');
    if (n.is_leaf()) {
      os << "leaf M" << n.member;
    } else {
      os << "node";
    }
    os << (n.has_key ? " [k]" : "") << (n.has_bkey ? " [bk]" : "")
       << (n.bkey_published ? "*" : "") << "\n";
    if (!n.is_leaf()) {
      stack.emplace_back(n.right, indent + 1);
      stack.emplace_back(n.left, indent + 1);
    }
  }
  return os.str();
}

}  // namespace sgk
