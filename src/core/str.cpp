#include "core/str.h"

#include <algorithm>

#include "obs/wallclock.h"
#include "util/check.h"

namespace sgk {

namespace {
std::vector<ProcessId> sorted_copy(std::vector<ProcessId> v) {
  std::sort(v.begin(), v.end());
  return v;
}
}  // namespace

void StrProtocol::reset_to_singleton() {
  members_ = {self()};
  br_.clear();
  bk_.clear();
  keys_.clear();
  refresh_random();
}

std::size_t StrProtocol::index_of(ProcessId p) const {
  auto it = std::find(members_.begin(), members_.end(), p);
  SGK_CHECK(it != members_.end());
  return static_cast<std::size_t>(it - members_.begin());
}

void StrProtocol::refresh_random() {
  r_ = crypto().random_exponent();
  br_[self()] = crypto().exp_g(r_);
  keys_.erase(self());
  if (!members_.empty() && members_.front() == self()) {
    bk_[self()] = br_[self()];
    keys_[self()] = r_;
  } else {
    bk_.erase(self());
  }
}

void StrProtocol::compute_chain(bool as_sponsor) {
  if (members_.empty()) return;
  const std::size_t idx = index_of(self());
  for (std::size_t j = idx; j < members_.size(); ++j) {
    const ProcessId m = members_[j];
    bool computed_here = false;
    if (keys_.count(m) == 0) {
      computed_here = true;
      if (j == 0) {
        keys_[m] = r_;  // bottom node: k_1 = r_1
      } else if (j == idx) {
        // My own node: k_j = bk_{j-1} ^ r_j.
        auto below = bk_.find(members_[j - 1]);
        if (below == bk_.end()) return;  // blocked
        keys_[m] = crypto().exp(below->second, r_);
      } else {
        // Chain node above me: k_j = br_j ^ k_{j-1}.
        auto prev = keys_.find(members_[j - 1]);
        auto brj = br_.find(m);
        if (prev == keys_.end() || brj == br_.end()) return;  // blocked
        keys_[m] = crypto().exp(brj->second, crypto().to_exponent(prev->second));
      }
    }
    if (as_sponsor && j + 1 < members_.size() && bk_.count(m) == 0) {
      if (j == 0) {
        auto brm = br_.find(m);
        if (brm == br_.end()) return;  // blocked: bottom blinded random lost
        bk_[m] = brm->second;
      } else {
        bk_[m] = crypto().exp_g(crypto().to_exponent(keys_.at(m)));
      }
    } else if (!as_sponsor && j > 0 && j + 1 < members_.size() &&
               bk_.count(m) != 0 && computed_here && host_.key_confirmation()) {
      // Key confirmation: re-derive the sponsor's blinded key. Compared in
      // constant time — the check value is derived from secret chain keys.
      BigInt check = crypto().exp_g(crypto().to_exponent(keys_.at(m)));
      SGK_CHECK(ct_equal(check.to_bytes(), bk_.at(m).to_bytes()));
      mark_point("key_confirmation");
    }
  }
}

void StrProtocol::deliver_if_complete() {
  if (delivered_ || members_.empty()) return;
  auto it = keys_.find(members_.back());
  if (it == keys_.end()) return;
  host_.deliver_key(it->second);
  delivered_ = true;
}

void StrProtocol::broadcast(MsgType type) {
  Writer w;
  w.u8(type);
  w.u32(static_cast<std::uint32_t>(members_.size()));
  for (ProcessId m : members_) {
    w.u32(m);
    // Both maps may have holes after a cascade (a value erased while the
    // broadcast that would have replaced it died with a view change), so
    // every entry is optional; holes are filled by repair re-broadcasts.
    auto br = br_.find(m);
    if (br != br_.end()) {
      w.u8(1);
      put_bigint(w, br->second);
    } else {
      w.u8(0);
    }
    auto bk = bk_.find(m);
    if (bk != bk_.end()) {
      w.u8(1);
      put_bigint(w, bk->second);
    } else {
      w.u8(0);
    }
  }
  host_.send_multicast(w.take());
  ++unconfirmed_bcasts_;
}

void StrProtocol::handle_view(const View& view, const ViewDelta& delta) {
  view_ = view;
  delivered_ = false;
  collecting_ = false;
  announced_.clear();
  covered_.clear();
  chain_sponsor_ = kNoProcess;
  rebroadcast_pending_ = false;
  // A non-zero counter means my last broadcast was stamped after this view
  // and stale-dropped at every member: values only I hold (my own blinded
  // session random) never reached the group and must be re-sent.
  const bool lost_broadcast = unconfirmed_bcasts_ > 0;
  unconfirmed_bcasts_ = 0;

  if (view.members.size() == 1) {
    reset_to_singleton();
    deliver_if_complete();
    return;
  }

  const bool subtractive =
      delta.sides.size() == 1 && !delta.left.empty() && !delta.first_view;
  if (subtractive) {
    start_subtractive(delta);
  } else {
    start_merge(delta);
  }

  // Repair: unless this view's dispatch already put a fresh broadcast of
  // mine in flight, re-send my current state so the holes only I can fill
  // are closed. Post-erase state is uniform across members, so receivers
  // adopting it cannot be poisoned by stale values.
  if (lost_broadcast && unconfirmed_bcasts_ == 0)
    broadcast(collecting_ ? kAnnounce : kUpdate);
}

void StrProtocol::start_subtractive(const ViewDelta& delta) {
  mark_phase("tree_update");
  std::vector<ProcessId> departed = delta.left;
  std::sort(departed.begin(), departed.end());

  // Position (in the old chain) of the lowest departed member.
  bool found_departed = false;
  std::size_t lowest = 0;
  for (std::size_t j = 0; j < members_.size(); ++j)
    if (std::binary_search(departed.begin(), departed.end(), members_[j])) {
      lowest = j;
      found_departed = true;
      break;
    }

  // Prune.
  std::erase_if(members_, [&](ProcessId p) {
    return std::binary_search(departed.begin(), departed.end(), p);
  });
  for (ProcessId p : departed) {
    br_.erase(p);
    bk_.erase(p);
    keys_.erase(p);
  }

  if (sorted_copy(members_) != view_.members || !found_departed) {
    // Cascade fallback: no consistent chain state; rebuild from singletons.
    reset_to_singleton();
    start_merge(ViewDelta{});
    return;
  }

  // Sponsor: the member immediately below the lowest departed position, or
  // the new bottom member when the bottom itself departed.
  const std::size_t sponsor_pos = lowest == 0 ? 0 : lowest - 1;
  const ProcessId sponsor = members_.at(sponsor_pos);
  chain_sponsor_ = sponsor;

  // Everything from the sponsor's node upward will be refreshed; stale
  // values must not be used by anyone.
  for (std::size_t j = sponsor_pos; j < members_.size(); ++j) {
    keys_.erase(members_[j]);
    bk_.erase(members_[j]);
  }
  br_.erase(sponsor);

  if (sponsor == self()) {
    refresh_random();
    compute_chain(/*as_sponsor=*/true);
    broadcast(kUpdate);
  } else {
    compute_chain(false);
  }
  deliver_if_complete();
}

void StrProtocol::start_merge(const ViewDelta& delta) {
  mark_phase("tree_update");
  // Prune members that disappeared (mixed events).
  if (!members_.empty()) {
    std::vector<ProcessId> departed;
    for (ProcessId p : members_)
      if (!view_.contains(p)) departed.push_back(p);
    std::erase_if(members_, [&](ProcessId p) {
      return std::find(departed.begin(), departed.end(), p) != departed.end();
    });
    for (ProcessId p : departed) {
      br_.erase(p);
      bk_.erase(p);
      keys_.erase(p);
    }
  }

  const std::vector<ProcessId>* my_side = delta.side_of(self());
  if (members_.empty() || my_side == nullptr ||
      sorted_copy(members_) != *my_side) {
    reset_to_singleton();
  }

  collecting_ = true;
  // covered_ stays empty until sponsor announcements are DELIVERED — my own
  // side's included (it self-delivers). Counting my own side as covered at
  // send time would let different sides fold at different points in the
  // agreed stream, and their merged chains would disagree.

  const ProcessId sponsor1 = members_.back();
  if (sponsor1 == self()) {
    refresh_random();
    compute_chain(/*as_sponsor=*/true);
    broadcast(kAnnounce);
  } else {
    // The side sponsor is about to refresh: its values are stale until its
    // announcement arrives.
    br_.erase(sponsor1);
    bk_.erase(sponsor1);
    keys_.erase(sponsor1);
  }
  try_fold();
}

void StrProtocol::try_fold() {
  if (!collecting_ || covered_ != view_.members) return;

  // Deterministic stacking: the largest side (ties: smallest min id) stays
  // at the bottom; the rest stack on top in the same order.
  std::vector<SideInfo> sides;
  // Only entries for my own side's members: the full maps can hold stale
  // values for other sides' members, which would shadow the fresh ones from
  // their announcements differently at different members.
  SideInfo local;
  local.members = members_;
  for (ProcessId m : members_) {
    if (auto it = br_.find(m); it != br_.end()) local.br.emplace(m, it->second);
    if (auto it = bk_.find(m); it != bk_.end()) local.bk.emplace(m, it->second);
  }
  sides.push_back(std::move(local));
  for (SideInfo& s : announced_) sides.push_back(std::move(s));
  std::sort(sides.begin(), sides.end(), [](const SideInfo& a, const SideInfo& b) {
    if (a.members.size() != b.members.size())
      return a.members.size() > b.members.size();
    return *std::min_element(a.members.begin(), a.members.end()) <
           *std::min_element(b.members.begin(), b.members.end());
  });

  const bool in_bottom =
      std::find(sides[0].members.begin(), sides[0].members.end(), self()) !=
      sides[0].members.end();

  std::vector<ProcessId> merged;
  std::map<ProcessId, BigInt> br;
  for (const SideInfo& s : sides) {
    merged.insert(merged.end(), s.members.begin(), s.members.end());
    for (const auto& [m, v] : s.br) br.emplace(m, v);
  }
  // Only the bottom side's internal node keys survive the restack.
  std::map<ProcessId, BigInt> bk = sides[0].bk;

  const ProcessId sponsor2 = sides[0].members.back();
  std::map<ProcessId, SecureBigInt> keys;
  if (in_bottom) {
    // My chain keys below the bottom side's top remain valid.
    for (const auto& [m, v] : keys_)
      if (m != sponsor2 &&
          std::find(sides[0].members.begin(), sides[0].members.end(), m) !=
              sides[0].members.end())
        keys.emplace(m, v);
    if (self() == sponsor2) {
      auto it = keys_.find(self());
      if (it != keys_.end()) keys.emplace(self(), it->second);
    }
  }

  members_ = std::move(merged);
  br_ = std::move(br);
  bk_ = std::move(bk);
  keys_ = std::move(keys);
  if (!members_.empty() && br_.count(members_.front()))
    bk_[members_.front()] = br_.at(members_.front());
  collecting_ = false;
  announced_.clear();

  chain_sponsor_ = sponsor2;
  const bool sponsor = self() == sponsor2;
  compute_chain(sponsor);
  if (sponsor) broadcast(kUpdate);
  deliver_if_complete();
}

Decoded<StrProtocol::Wire> StrProtocol::validate_and_decode(const Bytes& body,
                                                            const BigInt& p) {
  using D = Decoded<Wire>;
  Wire m;
  try {
    Reader r(body);
    m.type = r.u8();
    if (m.type != kAnnounce && m.type != kUpdate)
      return D::rejected(RejectReason::kBadTag);
    const std::uint32_t count = r.count(kMaxWireMembers);
    for (std::uint32_t i = 0; i < count; ++i) {
      const ProcessId id = r.u32();
      if (std::find(m.info.members.begin(), m.info.members.end(), id) !=
          m.info.members.end())
        return D::rejected(RejectReason::kBadShape);
      m.info.members.push_back(id);
      const std::uint8_t has_br = r.u8();
      if (has_br > 1) return D::rejected(RejectReason::kBadTag);
      if (has_br == 1) {
        BigInt br = get_bigint(r);
        if (!in_group_range(br, p)) return D::rejected(RejectReason::kBignumRange);
        m.info.br[id] = std::move(br);
      }
      const std::uint8_t has_bk = r.u8();
      if (has_bk > 1) return D::rejected(RejectReason::kBadTag);
      if (has_bk == 1) {
        BigInt bk = get_bigint(r);
        if (!in_group_range(bk, p)) return D::rejected(RejectReason::kBignumRange);
        m.info.bk[id] = std::move(bk);
      }
    }
    if (!r.done()) return D::rejected(RejectReason::kTrailingBytes);
  } catch (const LengthError&) {
    return D::rejected(RejectReason::kBadLength);
  } catch (const DecodeError&) {
    return D::rejected(RejectReason::kTruncated);
  }
  return D::accepted(std::move(m));
}

void StrProtocol::handle_message(ProcessId sender, const Bytes& body) {
  Decoded<Wire> d;
  {
    obs::WallScope wall("decode/STR");
    d = validate_and_decode(body, crypto().group().p());
  }
  if (!d.ok()) {
    reject(d.reason);
    return;
  }
  const std::uint8_t type = d.value.type;
  SideInfo info = std::move(d.value.info);

  // Coverage counts only sponsor announcements — the sender must be the
  // announced chain's own top member. Every member applies this test to the
  // same delivered stream (self-deliveries included), so all sides reach
  // the fold threshold at the same message and fold identical chains.
  const bool sponsor_announce = type == kAnnounce && !info.members.empty() &&
                                info.members.back() == sender;

  if (sender == self()) {
    // My own broadcast looped back through the agreed stream: the group has
    // it, so it no longer needs repairing. If a hole-filling rebroadcast was
    // deferred while this one was in flight, send it now.
    if (unconfirmed_bcasts_ > 0) --unconfirmed_bcasts_;
    if (unconfirmed_bcasts_ == 0 && rebroadcast_pending_) {
      rebroadcast_pending_ = false;
      broadcast(kUpdate);
    }
    if (collecting_ && sponsor_announce && info.members == members_) {
      cover(info.members);
      try_fold();
    }
    return;
  }

  if (type == kAnnounce) {
    mark_phase("tree_update");
    if (collecting_ && info.members == members_) {
      // An announcement for my own side: adopt its fresh values.
      for (const auto& [m, v] : info.br) br_[m] = v;
      for (const auto& [m, v] : info.bk) bk_[m] = v;
      if (sponsor_announce) cover(info.members);
      try_fold();
      return;
    }
    if (collecting_) {
      if (sponsor_announce) cover(info.members);
      // A repair announcement and the side sponsor's announcement can both
      // arrive for the same side; merge them into one entry — stashing a
      // duplicate would fold that side's members into the chain twice.
      auto same = std::find_if(
          announced_.begin(), announced_.end(),
          [&](const SideInfo& s) { return s.members == info.members; });
      if (same != announced_.end()) {
        for (auto& [m, v] : info.br) same->br[m] = std::move(v);
        for (auto& [m, v] : info.bk) same->bk[m] = std::move(v);
      } else {
        announced_.push_back(std::move(info));
      }
      try_fold();
      return;
    }
    // Post-fold stragglers: a side announcement that is a prefix of the
    // merged chain still carries authoritative blinded values.
    bool is_prefix = info.members.size() <= members_.size() &&
                     std::equal(info.members.begin(), info.members.end(),
                                members_.begin());
    for (const auto& [m, v] : info.br) br_.emplace(m, v);
    if (is_prefix)
      for (const auto& [m, v] : info.bk) bk_.emplace(m, v);
    recompute_and_publish();
    return;
  }

  if (type == kUpdate) {
    mark_phase("tree_update");
    if (sorted_copy(info.members) != view_.members) return;  // stale epoch
    members_ = info.members;
    for (const auto& [m, v] : info.br) br_[m] = v;
    for (const auto& [m, v] : info.bk) bk_[m] = v;
    recompute_and_publish();
    return;
  }
}

void StrProtocol::cover(const std::vector<ProcessId>& members) {
  for (ProcessId p : members) {
    auto it = std::lower_bound(covered_.begin(), covered_.end(), p);
    if (it == covered_.end() || *it != p) covered_.insert(it, p);
  }
}

void StrProtocol::recompute_and_publish() {
  // A repair message may have just filled a blinded-random hole that was
  // blocking the chain. Blinded node keys are deterministic functions of
  // the blinded randoms, so anyone able to mint a missing one mints the
  // same value; the sponsor can only mint from its own position upward,
  // which is not enough when the hole sits below it. The member AT the
  // lowest hole can always mint it (it needs only the bk below and its own
  // random), so it acts as the designated repairer for that stretch. When
  // minting produced values the group has not seen, broadcast them
  // (deferred if a broadcast of mine is still in flight — its
  // self-delivery sends it).
  bool sponsor = self() == chain_sponsor_;
  for (std::size_t j = 0; j + 1 < members_.size(); ++j)
    if (bk_.count(members_[j]) == 0) {
      if (members_[j] == self()) sponsor = true;
      break;
    }
  const std::size_t bk_before = bk_.size();
  compute_chain(sponsor);
  if (sponsor && bk_.size() > bk_before) {
    if (unconfirmed_bcasts_ == 0) {
      broadcast(kUpdate);
    } else {
      rebroadcast_pending_ = true;
    }
  }
  deliver_if_complete();
}

}  // namespace sgk
