#include "core/str.h"

#include <algorithm>

#include "util/check.h"

namespace sgk {

namespace {
std::vector<ProcessId> sorted_copy(std::vector<ProcessId> v) {
  std::sort(v.begin(), v.end());
  return v;
}
}  // namespace

void StrProtocol::reset_to_singleton() {
  members_ = {self()};
  br_.clear();
  bk_.clear();
  keys_.clear();
  refresh_random();
}

std::size_t StrProtocol::index_of(ProcessId p) const {
  auto it = std::find(members_.begin(), members_.end(), p);
  SGK_CHECK(it != members_.end());
  return static_cast<std::size_t>(it - members_.begin());
}

void StrProtocol::refresh_random() {
  r_ = crypto().random_exponent();
  br_[self()] = crypto().exp_g(r_);
  keys_.erase(self());
  if (!members_.empty() && members_.front() == self()) {
    bk_[self()] = br_[self()];
    keys_[self()] = r_;
  } else {
    bk_.erase(self());
  }
}

void StrProtocol::compute_chain(bool as_sponsor) {
  if (members_.empty()) return;
  const std::size_t idx = index_of(self());
  for (std::size_t j = idx; j < members_.size(); ++j) {
    const ProcessId m = members_[j];
    bool computed_here = false;
    if (keys_.count(m) == 0) {
      computed_here = true;
      if (j == 0) {
        keys_[m] = r_;  // bottom node: k_1 = r_1
      } else if (j == idx) {
        // My own node: k_j = bk_{j-1} ^ r_j.
        auto below = bk_.find(members_[j - 1]);
        if (below == bk_.end()) return;  // blocked
        keys_[m] = crypto().exp(below->second, r_);
      } else {
        // Chain node above me: k_j = br_j ^ k_{j-1}.
        auto prev = keys_.find(members_[j - 1]);
        auto brj = br_.find(m);
        if (prev == keys_.end() || brj == br_.end()) return;  // blocked
        keys_[m] = crypto().exp(brj->second, crypto().to_exponent(prev->second));
      }
    }
    if (as_sponsor && j + 1 < members_.size() && bk_.count(m) == 0) {
      bk_[m] = j == 0 ? br_.at(m)
                      : crypto().exp_g(crypto().to_exponent(keys_.at(m)));
    } else if (!as_sponsor && j > 0 && j + 1 < members_.size() &&
               bk_.count(m) != 0 && computed_here && host_.key_confirmation()) {
      // Key confirmation: re-derive the sponsor's blinded key. Compared in
      // constant time — the check value is derived from secret chain keys.
      BigInt check = crypto().exp_g(crypto().to_exponent(keys_.at(m)));
      SGK_CHECK(ct_equal(check.to_bytes(), bk_.at(m).to_bytes()));
      mark_point("key_confirmation");
    }
  }
}

void StrProtocol::deliver_if_complete() {
  if (delivered_ || members_.empty()) return;
  auto it = keys_.find(members_.back());
  if (it == keys_.end()) return;
  host_.deliver_key(it->second);
  delivered_ = true;
}

void StrProtocol::broadcast(MsgType type) {
  Writer w;
  w.u8(type);
  w.u32(static_cast<std::uint32_t>(members_.size()));
  for (ProcessId m : members_) {
    w.u32(m);
    auto br = br_.find(m);
    SGK_CHECK(br != br_.end());
    put_bigint(w, br->second);
    auto bk = bk_.find(m);
    if (bk != bk_.end()) {
      w.u8(1);
      put_bigint(w, bk->second);
    } else {
      w.u8(0);
    }
  }
  host_.send_multicast(w.take());
}

void StrProtocol::on_view(const View& view, const ViewDelta& delta) {
  view_ = view;
  delivered_ = false;
  collecting_ = false;
  announced_.clear();
  covered_.clear();

  if (view.members.size() == 1) {
    reset_to_singleton();
    deliver_if_complete();
    return;
  }

  const bool subtractive =
      delta.sides.size() == 1 && !delta.left.empty() && !delta.first_view;
  if (subtractive) {
    start_subtractive(delta);
  } else {
    start_merge(delta);
  }
}

void StrProtocol::start_subtractive(const ViewDelta& delta) {
  mark_phase("tree_update");
  std::vector<ProcessId> departed = delta.left;
  std::sort(departed.begin(), departed.end());

  // Position (in the old chain) of the lowest departed member.
  bool found_departed = false;
  std::size_t lowest = 0;
  for (std::size_t j = 0; j < members_.size(); ++j)
    if (std::binary_search(departed.begin(), departed.end(), members_[j])) {
      lowest = j;
      found_departed = true;
      break;
    }

  // Prune.
  std::erase_if(members_, [&](ProcessId p) {
    return std::binary_search(departed.begin(), departed.end(), p);
  });
  for (ProcessId p : departed) {
    br_.erase(p);
    bk_.erase(p);
    keys_.erase(p);
  }

  if (sorted_copy(members_) != view_.members || !found_departed) {
    // Cascade fallback: no consistent chain state; rebuild from singletons.
    reset_to_singleton();
    start_merge(ViewDelta{});
    return;
  }

  // Sponsor: the member immediately below the lowest departed position, or
  // the new bottom member when the bottom itself departed.
  const std::size_t sponsor_pos = lowest == 0 ? 0 : lowest - 1;
  const ProcessId sponsor = members_.at(sponsor_pos);

  // Everything from the sponsor's node upward will be refreshed; stale
  // values must not be used by anyone.
  for (std::size_t j = sponsor_pos; j < members_.size(); ++j) {
    keys_.erase(members_[j]);
    bk_.erase(members_[j]);
  }
  br_.erase(sponsor);

  if (sponsor == self()) {
    refresh_random();
    compute_chain(/*as_sponsor=*/true);
    broadcast(kUpdate);
  } else {
    compute_chain(false);
  }
  deliver_if_complete();
}

void StrProtocol::start_merge(const ViewDelta& delta) {
  mark_phase("tree_update");
  // Prune members that disappeared (mixed events).
  if (!members_.empty()) {
    std::vector<ProcessId> departed;
    for (ProcessId p : members_)
      if (!view_.contains(p)) departed.push_back(p);
    std::erase_if(members_, [&](ProcessId p) {
      return std::find(departed.begin(), departed.end(), p) != departed.end();
    });
    for (ProcessId p : departed) {
      br_.erase(p);
      bk_.erase(p);
      keys_.erase(p);
    }
  }

  const std::vector<ProcessId>* my_side = delta.side_of(self());
  if (members_.empty() || my_side == nullptr ||
      sorted_copy(members_) != *my_side) {
    reset_to_singleton();
  }

  collecting_ = true;
  covered_ = sorted_copy(members_);

  const ProcessId sponsor1 = members_.back();
  if (sponsor1 == self()) {
    refresh_random();
    compute_chain(/*as_sponsor=*/true);
    broadcast(kAnnounce);
  } else {
    // The side sponsor is about to refresh: its values are stale until its
    // announcement arrives.
    br_.erase(sponsor1);
    bk_.erase(sponsor1);
    keys_.erase(sponsor1);
  }
  try_fold();
}

void StrProtocol::try_fold() {
  if (!collecting_ || covered_ != view_.members) return;

  // Deterministic stacking: the largest side (ties: smallest min id) stays
  // at the bottom; the rest stack on top in the same order.
  std::vector<SideInfo> sides;
  sides.push_back(SideInfo{members_, br_, bk_});
  for (SideInfo& s : announced_) sides.push_back(std::move(s));
  std::sort(sides.begin(), sides.end(), [](const SideInfo& a, const SideInfo& b) {
    if (a.members.size() != b.members.size())
      return a.members.size() > b.members.size();
    return *std::min_element(a.members.begin(), a.members.end()) <
           *std::min_element(b.members.begin(), b.members.end());
  });

  const bool in_bottom =
      std::find(sides[0].members.begin(), sides[0].members.end(), self()) !=
      sides[0].members.end();

  std::vector<ProcessId> merged;
  std::map<ProcessId, BigInt> br;
  for (const SideInfo& s : sides) {
    merged.insert(merged.end(), s.members.begin(), s.members.end());
    for (const auto& [m, v] : s.br) br.emplace(m, v);
  }
  // Only the bottom side's internal node keys survive the restack.
  std::map<ProcessId, BigInt> bk = sides[0].bk;

  const ProcessId sponsor2 = sides[0].members.back();
  std::map<ProcessId, SecureBigInt> keys;
  if (in_bottom) {
    // My chain keys below the bottom side's top remain valid.
    for (const auto& [m, v] : keys_)
      if (m != sponsor2 &&
          std::find(sides[0].members.begin(), sides[0].members.end(), m) !=
              sides[0].members.end())
        keys.emplace(m, v);
    if (self() == sponsor2) {
      auto it = keys_.find(self());
      if (it != keys_.end()) keys.emplace(self(), it->second);
    }
  }

  members_ = std::move(merged);
  br_ = std::move(br);
  bk_ = std::move(bk);
  keys_ = std::move(keys);
  if (!members_.empty() && br_.count(members_.front()))
    bk_[members_.front()] = br_.at(members_.front());
  collecting_ = false;
  announced_.clear();

  const bool sponsor = self() == sponsor2;
  compute_chain(sponsor);
  if (sponsor) broadcast(kUpdate);
  deliver_if_complete();
}

void StrProtocol::on_message(ProcessId sender, const Bytes& body) {
  Reader r(body);
  const std::uint8_t type = r.u8();
  const std::uint32_t count = r.u32();
  SideInfo info;
  for (std::uint32_t i = 0; i < count; ++i) {
    const ProcessId m = r.u32();
    info.members.push_back(m);
    info.br[m] = get_bigint(r);
    if (r.u8() == 1) info.bk[m] = get_bigint(r);
  }

  if (type == kAnnounce) {
    if (sender == self()) return;
    mark_phase("tree_update");
    if (collecting_ && info.members == members_) {
      // My own side's sponsor announcement: adopt its fresh values.
      for (const auto& [m, v] : info.br) br_[m] = v;
      for (const auto& [m, v] : info.bk) bk_[m] = v;
      try_fold();
      return;
    }
    if (collecting_) {
      for (ProcessId p : info.members) {
        auto it = std::lower_bound(covered_.begin(), covered_.end(), p);
        if (it == covered_.end() || *it != p) covered_.insert(it, p);
      }
      announced_.push_back(std::move(info));
      try_fold();
      return;
    }
    // Post-fold stragglers: a side announcement that is a prefix of the
    // merged chain still carries authoritative blinded values.
    bool is_prefix = info.members.size() <= members_.size() &&
                     std::equal(info.members.begin(), info.members.end(),
                                members_.begin());
    for (const auto& [m, v] : info.br) br_.emplace(m, v);
    if (is_prefix)
      for (const auto& [m, v] : info.bk) bk_.emplace(m, v);
    compute_chain(false);
    deliver_if_complete();
    return;
  }

  if (type == kUpdate) {
    if (sender == self()) return;
    mark_phase("tree_update");
    if (sorted_copy(info.members) != view_.members) return;  // stale epoch
    members_ = info.members;
    for (const auto& [m, v] : info.br) br_[m] = v;
    for (const auto& [m, v] : info.bk) bk_[m] = v;
    compute_chain(false);
    deliver_if_complete();
    return;
  }
}

}  // namespace sgk
