// STR: "skinny tree" group key agreement (Steer et al. / Kim-Perrig-Tsudik).
//
// The key tree is a maximally imbalanced chain. With members M_1..M_n
// (bottom to top), node keys are k_1 = r_1 and k_j = g^(r_j * k_{j-1}),
// computed either as br_j ^ k_{j-1} (knowing the chain key below) or as
// bk_{j-1} ^ r_j (knowing one's own session random). The group key is k_n.
//
// Merge (2 rounds for any number of merging sides): each side's sponsor
// (topmost member) refreshes its session random and broadcasts its side's
// blinded values; the merged chain keeps the largest side at the bottom and
// stacks the others on top; the bottom side's topmost member computes the
// new chain up to the root and broadcasts the blinded values.
//
// Leave/partition (1 round): the member immediately below the lowest
// departed position (or the new bottom member) becomes the sponsor,
// refreshes its random, recomputes the chain up to the root and broadcasts.
// Costs are linear in n with the constant depending on the leaver's
// position — which is why the paper evaluates the average (middle) case.
#pragma once

#include <map>
#include <vector>

#include "bignum/secure_bigint.h"
#include "core/key_agreement.h"

namespace sgk {

class StrProtocol final : public KeyAgreement {
 public:
  explicit StrProtocol(ProtocolHost& host) : KeyAgreement(host) {}

  void handle_view(const View& view, const ViewDelta& delta) override;
  void handle_message(ProcessId sender, const Bytes& body) override;
  ProtocolKind kind() const override { return ProtocolKind::kStr; }

  /// Chain order, bottom first (tests).
  const std::vector<ProcessId>& chain() const { return members_; }

  enum MsgType : std::uint8_t { kAnnounce = 1, kUpdate = 2 };

  struct SideInfo {
    std::vector<ProcessId> members;  // bottom first
    std::map<ProcessId, BigInt> br;
    std::map<ProcessId, BigInt> bk;
  };

  /// Fully decoded + validated wire message.
  struct Wire {
    std::uint8_t type = 0;
    SideInfo info;
  };

  /// The only entrypoint that touches raw STR wire bytes: structural decode
  /// (strict tags and presence flags, list cap, unique member ids) plus
  /// semantic validation (every blinded value in [2, p-2]). Never throws; a
  /// hostile body comes back as a typed rejection.
  static Decoded<Wire> validate_and_decode(const Bytes& body, const BigInt& p);

 private:

  void reset_to_singleton();
  std::size_t index_of(ProcessId p) const;
  void refresh_random();
  /// Computes every chain key from my position to the top that is missing,
  /// plus unpublished blinded keys if `as_sponsor`.
  void compute_chain(bool as_sponsor);
  void broadcast(MsgType type);
  void start_merge(const ViewDelta& delta);
  void start_subtractive(const ViewDelta& delta);
  void try_fold();
  void deliver_if_complete();
  /// Recomputes the chain after new blinded values arrived; the chain
  /// sponsor additionally publishes any blinded node keys it minted.
  void recompute_and_publish();
  /// Marks members as covered by a delivered sponsor announcement.
  void cover(const std::vector<ProcessId>& members);

  View view_;
  std::vector<ProcessId> members_;       // chain order, bottom first
  SecureBigInt r_;                       // my secret session random
  std::map<ProcessId, BigInt> br_;       // blinded session randoms (public)
  std::map<ProcessId, BigInt> bk_;       // blinded node keys (public)
  // Chain node keys I know (my path upward): secrets, zeroized on erase.
  std::map<ProcessId, SecureBigInt> keys_;
  bool delivered_ = false;

  // Merge collection state.
  bool collecting_ = false;
  std::vector<SideInfo> announced_;
  std::vector<ProcessId> covered_;

  // The member responsible for (re)computing and broadcasting blinded node
  // keys in the current epoch: the restack sponsor after a fold, the refresh
  // sponsor after a subtractive event. Chosen deterministically from the
  // delivered stream, so every member agrees on it.
  ProcessId chain_sponsor_ = kNoProcess;

  // Broadcasts sent but not yet delivered back through the agreed stream.
  // A broadcast stamped after the next membership view is discarded at every
  // receiver while the sender has already applied its refresh locally; if
  // the counter is still non-zero when a view installs, the sender knows the
  // group never saw its values and re-broadcasts its (post-erase) state.
  int unconfirmed_bcasts_ = 0;

  // A sponsor rebroadcast became necessary while another broadcast of mine
  // was still in flight; sent when that broadcast self-delivers.
  bool rebroadcast_pending_ = false;
};

}  // namespace sgk
