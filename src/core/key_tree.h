// Binary key tree for TGDH.
//
// Every node carries an optional secret key and an optional blinded key
// bk = g^(key mod q). A leaf's key is its member's session random; an
// internal node's key is the two-party DH value of its children:
// key(v) = g^(key(left) * key(right)) computed as exp(bkey(sibling),
// key(child)). The tree structure itself is deterministic and identical at
// every member; key knowledge differs per member (a member knows exactly the
// keys on the path from its leaf to the root).
//
// Structure maintenance implements the paper's policies: joins insert at the
// rightmost shallowest position that does not increase the tree height
// (footnote 5/7), leaves collapse the departed leaf's parent, merges graft
// the smaller tree at such a position of the larger.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "bignum/bigint.h"
#include "bignum/secure_bigint.h"
#include "core/view.h"
#include "util/serde.h"

namespace sgk {

/// Structural rejection of a hostile tree encoding: invalid node/flag tags,
/// implausible depth or size, or duplicate members. A subclass of
/// DecodeError so callers that only distinguish "malformed" keep working;
/// validated decoders map it to RejectReason::kBadShape.
class TreeShapeError : public DecodeError {
 public:
  explicit TreeShapeError(const std::string& what) : DecodeError(what) {}
};

struct TreeNode {
  int parent = -1;
  int left = -1;
  int right = -1;
  ProcessId member = kNoProcess;  // valid for leaves only

  bool has_key = false;
  SecureBigInt key;  // node secret: zeroized whenever invalidated or dropped
  bool has_bkey = false;
  BigInt bkey;  // blinded key g^(key mod q): broadcast to the group, public
  // True when the blinded key has been broadcast (or arrived in one): it is
  // known to the whole group, not just to this member.
  bool bkey_published = false;

  bool is_leaf() const { return left == -1; }
};

class KeyTree {
 public:
  KeyTree() = default;

  /// Single-leaf tree for `member`.
  static KeyTree leaf(ProcessId member);

  bool empty() const { return root_ == -1; }
  int root() const { return root_; }
  const TreeNode& node(int i) const { return nodes_.at(static_cast<std::size_t>(i)); }
  TreeNode& node(int i) { return nodes_.at(static_cast<std::size_t>(i)); }
  std::size_t node_count() const { return nodes_.size(); }

  /// Leaf index of `member`, or -1.
  int find_leaf(ProcessId member) const;
  /// All member ids, left to right.
  std::vector<ProcessId> members() const;
  /// The member at the rightmost leaf of `subtree`.
  ProcessId rightmost_member(int subtree) const;
  /// Height of `subtree` (leaf == 0).
  int height(int subtree) const;
  int depth(int node) const;
  /// Sibling node index, or -1 at the root.
  int sibling(int node) const;
  /// Indices from `node`'s parent up to the root (the key path above a leaf).
  std::vector<int> path_to_root(int node) const;

  /// Grafts `other` into this tree at the rightmost shallowest position that
  /// keeps the height minimal (at the root otherwise). All keys/bkeys on the
  /// path from the graft point to the root are invalidated. Returns the
  /// index of the new internal node (the merge point).
  int merge(const KeyTree& other);

  /// Removes the leaves of all `departed` members. Each removal promotes the
  /// sibling subtree into the parent's place and invalidates keys/bkeys of
  /// all ancestors. Returns the leaf indices' former sibling subtree roots
  /// (deduplicated, in tree order) — the candidate sponsor subtrees.
  std::vector<int> remove_members(const std::vector<ProcessId>& departed);

  /// Serializes structure plus all *published* blinded keys.
  void serialize(Writer& w) const;
  /// Strict inverse of serialize. Untrusted input: node and bkey-presence
  /// tags must be exactly 0/1, nesting is capped at kMaxDepth, size at
  /// kMaxNodes, and every leaf member must be unique — violations throw
  /// TreeShapeError (truncation still throws plain DecodeError).
  static KeyTree deserialize(Reader& r);

  /// True iff every present blinded key lies in [2, p-2]. Validated
  /// decoders call this on deserialized trees before absorbing them.
  bool bkeys_in_range(const BigInt& p) const;

  /// Decode limits: a balanced tree of kMaxWireMembers leaves is ~12 deep;
  /// a pathological STR-shaped chain reaches one level per member. kMaxNodes
  /// bounds total allocation (leaves + internal nodes).
  static constexpr int kMaxDepth = 4200;
  static constexpr std::size_t kMaxNodes = 8500;

  /// Structural equality including member placement (ignores keys).
  bool same_structure(const KeyTree& other) const;

  /// Copies blinded keys present in `other` (same structure required) into
  /// this tree, marking them published. Never overwrites an existing bkey.
  void absorb_bkeys(const KeyTree& other);

  /// Marks every present blinded key as published (after broadcasting).
  void mark_bkeys_published();

  /// Marks every present blinded key as unpublished. Used when a view
  /// change aborts an agreement: broadcasts of the interrupted instance were
  /// discarded as stale at the receivers, so the restarted instance must be
  /// willing to re-announce everything it holds.
  void mark_bkeys_unpublished();

  /// Rebuilds this tree as a complete (height-minimal) binary tree over the
  /// same members in the same left-to-right order. Leaf state (keys, blinded
  /// keys, published flags) is preserved; every internal node is fresh and
  /// invalid. Used by the eagerly-balancing TGDH variant (the paper's
  /// footnote on AVL-style tree management).
  void rebuild_balanced();

  /// Multi-line diagnostic rendering.
  std::string to_string() const;

 private:
  int clone_from(const KeyTree& other, int other_node);
  void invalidate_up(int node);
  int serialize_node(Writer& w, int node) const;
  static int deserialize_node(Reader& r, KeyTree& tree, int depth);
  void collect_members(int node, std::vector<ProcessId>& out) const;
  /// Finds the graft position for a subtree of height `h`: the rightmost
  /// shallowest node where insertion does not increase the tree height; -1
  /// if none exists.
  int find_graft_position(int h) const;

  std::vector<TreeNode> nodes_;
  int root_ = -1;
};

}  // namespace sgk
