// Burmester-Desmedt group key agreement.
//
// Fully symmetric, no controllers or sponsors, identical for every kind of
// membership change (the paper stresses this simplicity). Two rounds of n
// broadcasts each:
//   round 1: every member i broadcasts z_i = g^(r_i)
//   round 2: every member i broadcasts X_i = (z_{i+1} / z_{i-1})^(r_i)
// and then computes
//   K = z_{i-1}^(n r_i) * X_i^(n-1) * X_{i+1}^(n-2) * ... * X_{i+n-2}
//     = g^(r_1 r_2 + r_2 r_3 + ... + r_n r_1).
// The step-3 product is the paper's "hidden cost": n-2 small-exponent
// exponentiations plus n-2 modular multiplications.
#pragma once

#include <map>
#include <vector>

#include "bignum/secure_bigint.h"
#include "core/key_agreement.h"

namespace sgk {

class BdProtocol final : public KeyAgreement {
 public:
  explicit BdProtocol(ProtocolHost& host) : KeyAgreement(host) {}

  void handle_view(const View& view, const ViewDelta& delta) override;
  void handle_message(ProcessId sender, const Bytes& body) override;
  ProtocolKind kind() const override { return ProtocolKind::kBd; }

  enum MsgType : std::uint8_t { kZ = 1, kX = 2 };

  /// Fully decoded + validated wire message.
  struct Wire {
    std::uint8_t type = 0;
    BigInt value;  // z_i (kZ) or X_i (kX)
  };

  /// The only entrypoint that touches raw BD wire bytes: structural decode
  /// plus semantic validation (tag in {kZ, kX}, value in [2, p-2]). Never
  /// throws; a hostile body comes back as a typed rejection.
  static Decoded<Wire> validate_and_decode(const Bytes& body, const BigInt& p);

 private:

  std::size_t index_of(ProcessId p) const;
  ProcessId at_offset(std::size_t i, std::ptrdiff_t delta) const;
  void maybe_round2();
  void maybe_finish();

  View view_;
  SecureBigInt r_;  // my secret session random (zeroized on replace)
  // z_i and X_i are broadcast round values, not secrets.
  std::map<ProcessId, BigInt> z_;
  std::map<ProcessId, BigInt> x_values_;
  bool sent_x_ = false;
};

}  // namespace sgk
