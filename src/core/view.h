// Group membership views and view-change deltas.
#pragma once

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

namespace sgk {

using ProcessId = std::uint32_t;
constexpr ProcessId kNoProcess = 0xffffffff;

/// An installed membership view: a unique monotonically increasing id and
/// the sorted member list.
struct View {
  std::uint64_t view_id = 0;
  std::vector<ProcessId> members;  // ascending

  bool contains(ProcessId p) const {
    return std::binary_search(members.begin(), members.end(), p);
  }
  std::size_t size() const { return members.size(); }
};

/// The membership events the paper's protocols distinguish.
enum class GroupEvent {
  kInitial,    // first view a member sees
  kJoin,       // exactly one member added
  kLeave,      // exactly one member removed
  kMerge,      // several members added (network merge)
  kPartition,  // several members removed (network partition)
  kMixed,      // additions and removals in one view change (cascade)
  kRefresh     // same membership, new epoch (explicit re-key request)
};

const char* to_string(GroupEvent e);

/// Difference between the previously installed view and the new one, from
/// one member's perspective.
struct ViewDelta {
  std::vector<ProcessId> joined;
  std::vector<ProcessId> left;
  bool first_view = false;

  /// Transitional sides: the partition of the new view's members into sets
  /// that shared a view immediately before this change (fresh joiners are
  /// singleton sides). All members receive the same sides, which gives the
  /// key agreement protocols a consistent notion of "which previous groups
  /// are merging" even after a network merge.
  std::vector<std::vector<ProcessId>> sides;

  /// The side containing `p`, or an empty list.
  const std::vector<ProcessId>* side_of(ProcessId p) const {
    for (const auto& s : sides)
      if (std::find(s.begin(), s.end(), p) != s.end()) return &s;
    return nullptr;
  }

  GroupEvent classify() const {
    if (first_view) return GroupEvent::kInitial;
    if (!joined.empty() && !left.empty()) return GroupEvent::kMixed;
    if (joined.size() == 1) return GroupEvent::kJoin;
    if (joined.size() > 1) return GroupEvent::kMerge;
    if (left.size() == 1) return GroupEvent::kLeave;
    if (left.size() > 1) return GroupEvent::kPartition;
    return GroupEvent::kRefresh;
  }
};

/// Computes the delta from `prev` to `next` (both sorted).
ViewDelta view_delta(const View& prev, const View& next, bool first_view);

}  // namespace sgk
