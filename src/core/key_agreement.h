// Key agreement protocol framework.
//
// A KeyAgreement instance lives inside one SecureGroupMember and reacts to
// two stimuli: view installs (membership changes) and protocol messages.
// All cryptography goes through the host's CryptoContext; all communication
// goes through the host, which signs, frames and (virtually) prices it.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "bignum/bigint.h"
#include "core/crypto_context.h"
#include "core/reject.h"
#include "core/view.h"
#include "util/bytes.h"
#include "util/serde.h"

namespace sgk {

/// The five protocols the paper evaluates, plus a null protocol used to
/// measure the bare membership service (the "Membership service" series in
/// Figures 11, 12 and 14).
enum class ProtocolKind {
  kGdh,
  kCkd,
  kTgdh,
  kStr,
  kBd,
  /// TGDH variant that eagerly rebuilds a height-minimal tree when a
  /// subtractive event unbalances it — the trade-off the paper's footnote 7
  /// attributes to AVL-style tree management: cheaper future operations,
  /// higher leave communication.
  kTgdhBalanced,
  kNone
};

const char* to_string(ProtocolKind kind);

/// Services a protocol uses, implemented by SecureGroupMember.
class ProtocolHost {
 public:
  virtual ~ProtocolHost() = default;

  virtual ProcessId self() const = 0;
  virtual CryptoContext& crypto() = 0;

  /// Agreed multicast of a protocol message to the whole group.
  virtual void send_multicast(Bytes body) = 0;
  /// Agreed-ordered message to one member (GDH factor-out; the paper
  /// explains these must be ordered with respect to group messages).
  virtual void send_ordered(ProcessId dest, Bytes body) = 0;
  /// Direct FIFO unicast (GDH token forwarding, CKD responses).
  virtual void send_unicast(ProcessId dest, Bytes body) = 0;

  /// The protocol completed: every call installs `group_secret` as the new
  /// group key for the current epoch.
  virtual void deliver_key(const BigInt& group_secret) = 0;

  /// When true (the default, matching the implementation the paper
  /// measured), the tree protocols re-compute received blinded keys as a
  /// key-confirmation check, paying the extra exponentiations the paper
  /// describes in section 5. Table 1's counts assume this is off.
  virtual bool key_confirmation() const = 0;

  /// Marks a protocol-phase transition on the observability timeline (see
  /// docs/observability.md for the per-protocol taxonomy). Static phase
  /// names only — never values derived from key material (gka_lint GKA006).
  virtual void mark_phase(const char* phase_name) { (void)phase_name; }
  /// Marks a zero-width point of interest (e.g. a key-confirmation check)
  /// on the observability timeline. Same GKA006 rules as mark_phase.
  virtual void mark_point(const char* point_name) { (void)point_name; }

  /// The protocol refused to act on a frame (validate_and_decode failure or
  /// a semantic check against protocol state). Hosts count the rejection
  /// and, when corruption of the agreed stream is indicated, run their
  /// quarantine/recovery policy. Default no-op keeps bare test hosts small.
  virtual void note_frame_rejected(RejectReason reason) { (void)reason; }
};

class KeyAgreement {
 public:
  explicit KeyAgreement(ProtocolHost& host) : host_(host) {}
  virtual ~KeyAgreement() = default;

  /// A new view was installed; begin re-keying for it. Non-virtual on
  /// purpose: if the previous instance is still in flight this is the
  /// Secure Spread abort-and-restart rule in action (the new membership
  /// supersedes the interrupted agreement), and the wrapper keeps the
  /// restart bookkeeping that robustness tests and chaos reports read.
  /// Implementations override handle_view and must discard all transient
  /// state from the interrupted instance there.
  void on_view(const View& view, const ViewDelta& delta);

  /// A protocol message (already verified, current epoch) arrived.
  void on_message(ProcessId sender, const Bytes& body);

  virtual ProtocolKind kind() const = 0;

  /// Host callback: deliver_key for this instance landed, the agreement is
  /// complete. SecureGroupMember calls this; protocols never do.
  void note_key_delivered();

  /// True between a view install and the matching key delivery.
  bool in_flight() const { return in_flight_; }
  std::uint64_t started() const { return started_; }
  std::uint64_t completed() const { return completed_; }
  /// Agreements aborted by a newer view before completing.
  std::uint64_t restarts() const { return restarts_; }

 protected:
  virtual void handle_view(const View& view, const ViewDelta& delta) = 0;
  virtual void handle_message(ProcessId sender, const Bytes& body) = 0;

  /// True while handling a view that aborted an in-flight agreement.
  /// Protocols use this to re-publish state whose broadcasts died with the
  /// interrupted instance (receivers discarded them as stale-epoch frames).
  bool restarting() const { return restarting_; }

  ProtocolHost& host_;
  CryptoContext& crypto() { return host_.crypto(); }
  ProcessId self() const { return host_.self(); }
  void mark_phase(const char* phase_name) { host_.mark_phase(phase_name); }
  void mark_point(const char* point_name) { host_.mark_point(point_name); }
  /// Routes a refusal through the host's typed-reject path.
  void reject(RejectReason reason) { host_.note_frame_rejected(reason); }

 private:
  bool in_flight_ = false;
  bool restarting_ = false;
  std::uint64_t started_ = 0;
  std::uint64_t completed_ = 0;
  std::uint64_t restarts_ = 0;
};

/// Factory for the protocol implementations.
std::unique_ptr<KeyAgreement> make_protocol(ProtocolKind kind, ProtocolHost& host);

/// Helpers shared by the protocol implementations -------------------------

/// Picks the "core" (existing-group) side out of a view change's sides:
/// the largest side, ties broken by smallest member id. Deterministic and
/// identical at every member.
const std::vector<ProcessId>* core_side(const ViewDelta& delta);

/// Serialization of big integers inside protocol messages.
void put_bigint(Writer& w, const BigInt& v);
BigInt get_bigint(Reader& r);

/// True iff `v` is a plausible group element: v in [2, p-2]. Excludes the
/// degenerate values (0, 1, p-1, anything >= p) an attacker substitutes to
/// collapse or bias a DH exchange; every validated decoder applies this to
/// every wire bignum.
bool in_group_range(const BigInt& v, const BigInt& p);

/// Upper bound on member-list lengths in protocol messages. Far above any
/// realistic group (the paper evaluates up to ~100) yet small enough that a
/// hostile length prefix cannot drive memory or CPU blow-ups.
inline constexpr std::uint32_t kMaxWireMembers = 4096;

}  // namespace sgk
