// TGDH: tree-based group Diffie-Hellman.
//
// Group key = the key of the root of a binary key tree (see key_tree.h).
// Membership events modify the tree structure; "sponsors" (rightmost members
// of affected subtrees) recompute what they can and broadcast the tree's
// blinded keys until every member can derive the root key:
//
//  * join/merge (2 rounds): each merging side's sponsor refreshes its leaf
//    secret and broadcasts its side's tree; everyone grafts the trees
//    together identically; the sponsor of the merge point computes up to the
//    root and broadcasts the updated blinded keys.
//  * leave/partition (up to h rounds): everyone prunes the departed leaves;
//    the shallowest-rightmost sponsor refreshes its secret; sponsors
//    iteratively compute as far up as possible and broadcast new blinded
//    keys until the root key is known everywhere.
#pragma once

#include <vector>

#include "core/key_agreement.h"
#include "core/key_tree.h"

namespace sgk {

class TgdhProtocol final : public KeyAgreement {
 public:
  explicit TgdhProtocol(ProtocolHost& host, bool eager_balance = false)
      : KeyAgreement(host), eager_balance_(eager_balance) {}

  void handle_view(const View& view, const ViewDelta& delta) override;
  void handle_message(ProcessId sender, const Bytes& body) override;
  ProtocolKind kind() const override {
    return eager_balance_ ? ProtocolKind::kTgdhBalanced : ProtocolKind::kTgdh;
  }

  const KeyTree& tree() const { return tree_; }

  enum MsgType : std::uint8_t { kAnnounce = 1, kUpdate = 2 };

  /// Fully decoded + validated wire message.
  struct Wire {
    std::uint8_t type = 0;
    KeyTree tree;
  };

  /// The only entrypoint that touches raw TGDH wire bytes: structural decode
  /// (strict tags, tree shape/depth/node caps, unique members) plus semantic
  /// validation (every blinded key in [2, p-2]). Never throws; a hostile
  /// body comes back as a typed rejection.
  static Decoded<Wire> validate_and_decode(const Bytes& body, const BigInt& p);

 private:

  void reset_to_singleton();
  void refresh_my_leaf();
  void start_merge(const ViewDelta& delta);
  void start_subtractive(const ViewDelta& delta);
  void broadcast_tree(MsgType type);
  void try_fold();
  /// Compute what I can, broadcast if I am a responsible sponsor, deliver
  /// the root key when known.
  void iterate();
  void compute_up();
  /// Invalidates the blinded keys on `sponsor`'s leaf-to-root path (the
  /// sponsor is about to refresh its secret; stale values must not be used).
  void invalidate_sponsor_path(ProcessId sponsor);

  View view_;
  KeyTree tree_;
  bool eager_balance_ = false;
  bool delivered_ = false;

  // Merge collection state.
  bool collecting_ = false;
  bool own_side_announced_ = false;
  std::vector<KeyTree> announced_;
  std::vector<ProcessId> covered_;

  // Broadcasts sent but not yet delivered back through the agreed stream.
  // All tree-state transitions (published flags, fold readiness) happen at
  // self-delivery, never at send time: a broadcast stamped after the next
  // membership view dies at every member — including the sender — so every
  // member's tree evolves through the identical message prefix. Acting at
  // send time is exactly the asymmetry that wedged cascaded merges.
  int unconfirmed_bcasts_ = 0;
};

}  // namespace sgk
