#include "core/crypto_context.h"

#include "bignum/modmath.h"
#include "obs/wallclock.h"
#include "util/serde.h"

// Wall-clock instrumentation note: the bignum and crypto layers sit below
// obs in the GKA101 DAG and must stay free of observability hooks, so the
// per-primitive WallScope sites live here — every modexp / inverse / modmul
// / sign / verify / DRBG call in the tree funnels through this context, so
// timing the boundary times exactly the primitive underneath it. The sites
// keep bignum/crypto prefixes to say what is being measured, not where the
// scope lives.

namespace sgk {

SecureBigInt CryptoContext::random_exponent() {
  obs::WallScope wall("crypto/drbg");
  SecureBigInt e = group_.random_exponent(rng_);
  sync_drbg();
  return e;
}

BigInt CryptoContext::exp(const BigInt& base, const BigInt& e) {
  const std::size_t ebits = e.bit_length();
  // The paper's accounting treats anything with a session-exponent-sized
  // exponent as a "full" exponentiation; BD's step-3 exponents (< group
  // size) are the "small" ones.
  if (ebits >= 64)
    ++counters_.exp_full;
  else
    ++counters_.exp_small;
  meter_ms_ += cost_.mod_exp_ms(group_.p_bits(), ebits);
  obs::WallScope wall(ebits >= 64 ? "bignum/modexp_full"
                                  : "bignum/modexp_small");
  return group_.exp(base, e);
}

BigInt CryptoContext::exp_g(const BigInt& e) { return exp(group_.g(), e); }

BigInt CryptoContext::inverse_q(const BigInt& a) {
  ++counters_.mod_inverse;
  meter_ms_ += cost_.modinv_ms;
  obs::WallScope wall("bignum/modinv");
  return mod_inverse(a, group_.q());
}

BigInt CryptoContext::inverse_p(const BigInt& a) {
  ++counters_.mod_inverse;
  meter_ms_ += cost_.modinv_ms;
  obs::WallScope wall("bignum/modinv");
  return mod_inverse(a, group_.p());
}

BigInt CryptoContext::mul_p(const BigInt& a, const BigInt& b) {
  ++counters_.mod_mul;
  meter_ms_ += cost_.mult_ms(group_.p_bits());
  obs::WallScope wall("bignum/modmul");
  return a * b % group_.p();
}

Bytes CryptoContext::sign(const Bytes& message) {
  obs::WallScope wall("crypto/sign");
  ++counters_.sign_ops;
  ++counters_.hash_ops;
  if (scheme_ == SigScheme::kDsa) {
    // One full exponentiation plus field arithmetic.
    meter_ms_ += cost_.mod_exp_ms(group_.p_bits(), group_.q().bit_length()) +
                 cost_.modinv_ms + cost_.sha256_ms(message.size());
    Bytes sig = dsa_signature_to_bytes(dsa_->sign(message, rng_),
                                       (group_.q().bit_length() + 7) / 8);
    sync_drbg();
    return sig;
  }
  meter_ms_ += cost_.rsa_sign_ms(rsa_.public_key().n().bit_length()) +
               cost_.sha256_ms(message.size());
  return rsa_.sign(message);
}

bool CryptoContext::verify(const VerifyKey& pub, const Bytes& message,
                           const Bytes& sig) {
  obs::WallScope wall("crypto/verify");
  ++counters_.verify_ops;
  ++counters_.hash_ops;
  if (const auto* dsa = std::get_if<DsaPublicKey>(&pub)) {
    // Two full exponentiations — the paper's "expensive verification".
    meter_ms_ += 2 * cost_.mod_exp_ms(group_.p_bits(), group_.q().bit_length()) +
                 cost_.modinv_ms + cost_.sha256_ms(message.size());
    try {
      return dsa->verify(message, dsa_signature_from_bytes(sig));
    } catch (const DecodeError&) {
      return false;
    }
  }
  const RsaPublicKey& rsa = std::get<RsaPublicKey>(pub);
  // Public exponents are small (e=3 by default): ~log2(e) multiplies.
  std::size_t e_bits = 0;
  for (std::uint64_t e = rsa.e(); e != 0; e >>= 1) ++e_bits;
  meter_ms_ += cost_.rsa_verify_ms(rsa.n().bit_length(), e_bits) +
               cost_.sha256_ms(message.size());
  return rsa.verify(message, sig);
}

void CryptoContext::charge_symmetric(std::size_t bytes) {
  ++counters_.hash_ops;
  meter_ms_ += cost_.aes_ms(bytes) + cost_.sha256_ms(bytes);
}

Bytes CryptoContext::random_bytes(std::size_t n) {
  obs::WallScope wall("crypto/drbg");
  Bytes out(n);
  rng_.fill(out.data(), out.size());
  sync_drbg();
  return out;
}

}  // namespace sgk
