// Zeroizing wrapper for secret big integers.
//
// `SecureBigInt` is the mandatory storage type for long-lived secret
// exponents and node secrets: DH session randoms, CKD long-term exponents
// and pairwise keys, and key-tree node keys. It wipes the wrapped BigInt's
// limb storage on destruction, on move-from and on reassignment. The wrapped
// value is read through an implicit `const BigInt&` conversion, so arithmetic
// call sites (`crypto().exp(base, r_)`) stay unchanged; the value can only be
// *replaced*, never mutated in place, which keeps every wipe site in this
// header. gka_lint rule GKA004 enforces its use for secret-named fields.
#pragma once

#include <utility>

#include "bignum/bigint.h"

namespace sgk {

class SecureBigInt {
 public:
  SecureBigInt() noexcept = default;
  /// Implicit adoption: `r_ = crypto().random_exponent();` just works.
  SecureBigInt(BigInt v) noexcept : v_(std::move(v)) {}  // NOLINT(google-explicit-constructor)

  /// Secrets are copied where the design demands it (key-tree clones, map
  /// inserts); each copy wipes independently.
  SecureBigInt(const SecureBigInt&) = default;
  SecureBigInt(SecureBigInt&& o) noexcept : v_(std::move(o.v_)) { o.wipe(); }
  SecureBigInt& operator=(const SecureBigInt& o) {
    if (this != &o) {
      v_.wipe();
      v_ = o.v_;
    }
    return *this;
  }
  SecureBigInt& operator=(SecureBigInt&& o) noexcept {
    if (this != &o) {
      v_.wipe();
      v_ = std::move(o.v_);
      o.wipe();
    }
    return *this;
  }
  SecureBigInt& operator=(BigInt v) {
    v_.wipe();
    v_ = std::move(v);
    return *this;
  }
  ~SecureBigInt() { v_.wipe(); }

  /// Read access for arithmetic; the referee must not outlive the wrapper.
  operator const BigInt&() const noexcept { return v_; }  // NOLINT(google-explicit-constructor)
  const BigInt& get() const noexcept { return v_; }

  bool is_zero() const noexcept { return v_.is_zero(); }
  void wipe() noexcept { v_.wipe(); }

 private:
  BigInt v_;
};

}  // namespace sgk
