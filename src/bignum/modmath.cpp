#include "bignum/modmath.h"

#include <stdexcept>
#include <utility>

namespace sgk {

BigInt gcd(const BigInt& a, const BigInt& b) {
  BigInt x = a;
  BigInt y = b;
  while (!y.is_zero()) {
    BigInt r = x % y;
    x = std::move(y);
    y = std::move(r);
  }
  return x;
}

BigInt mod_inverse(const BigInt& a, const BigInt& m) {
  if (m <= BigInt(1)) throw std::domain_error("mod_inverse: modulus must be > 1");
  // Extended Euclid tracking only the coefficient of a, as a signed value
  // represented by (magnitude, negative) to stay within natural arithmetic.
  BigInt r0 = a % m;
  BigInt r1 = m;
  BigInt t0(1);
  bool t0_neg = false;
  BigInt t1;
  bool t1_neg = false;

  // Invariant: r0 = t0 * a (mod m), r1 = t1 * a (mod m).
  while (!r1.is_zero()) {
    BigInt::DivMod dm = r0.divmod(r1);
    // (t0, t1) <- (t1, t0 - q * t1)
    BigInt qt = dm.quotient * t1;
    BigInt nt;
    bool nt_neg;
    if (t0_neg == t1_neg) {
      // t0 - q*t1 where both share sign s: s*(|t0| - q|t1|)
      if (t0 >= qt) {
        nt = t0 - qt;
        nt_neg = t0_neg;
      } else {
        nt = qt - t0;
        nt_neg = !t0_neg;
      }
    } else {
      // Opposite signs: |t0| + q|t1| with t0's sign.
      nt = t0 + qt;
      nt_neg = t0_neg;
    }
    t0 = std::move(t1);
    t0_neg = t1_neg;
    t1 = std::move(nt);
    t1_neg = nt_neg;
    r0 = std::move(r1);
    r1 = std::move(dm.remainder);
  }
  if (r0 != BigInt(1)) throw std::domain_error("mod_inverse: not invertible");
  BigInt inv = t0 % m;
  if (t0_neg && !inv.is_zero()) inv = m - inv;
  return inv;
}

BigInt mod_mul(const BigInt& a, const BigInt& b, const BigInt& m) {
  return a * b % m;
}

BigInt mod_add(const BigInt& a, const BigInt& b, const BigInt& m) {
  BigInt s = a + b;
  if (s >= m) s = s - m;
  return s;
}

BigInt mod_sub(const BigInt& a, const BigInt& b, const BigInt& m) {
  if (a >= b) return a - b;
  return m - (b - a);
}

BigInt crt_combine(const BigInt& xp, const BigInt& xq, const BigInt& p,
                   const BigInt& q, const BigInt& qinv) {
  // x = xq + q * ((xp - xq) * qinv mod p)
  BigInt diff = mod_sub(xp % p, xq % p, p);
  BigInt h = diff * qinv % p;
  return xq + q * h;
}

}  // namespace sgk
