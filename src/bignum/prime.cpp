#include "bignum/prime.h"

#include <array>

#include "bignum/modmath.h"
#include "bignum/montgomery.h"
#include "util/check.h"

namespace sgk {

namespace {
// Small primes for trial division; enough to reject the vast majority of
// candidates before Miller–Rabin.
constexpr std::array<std::uint32_t, 54> kSmallPrimes = {
    2,   3,   5,   7,   11,  13,  17,  19,  23,  29,  31,  37,  41,  43,
    47,  53,  59,  61,  67,  71,  73,  79,  83,  89,  97,  101, 103, 107,
    109, 113, 127, 131, 137, 139, 149, 151, 157, 163, 167, 173, 179, 181,
    191, 193, 197, 199, 211, 223, 227, 229, 233, 239, 241, 251};

std::uint64_t mod_small(const BigInt& n, std::uint64_t m) {
  std::uint64_t r = 0;
  const auto& limbs = n.limbs();
  for (std::size_t i = limbs.size(); i-- > 0;) {
    unsigned __int128 cur = (static_cast<unsigned __int128>(r) << 64) | limbs[i];
    r = static_cast<std::uint64_t>(cur % m);
  }
  return r;
}
}  // namespace

bool is_probable_prime(const BigInt& n, RandomSource& rng, int rounds) {
  if (n < BigInt(2)) return false;
  for (std::uint32_t p : kSmallPrimes) {
    if (n == BigInt(p)) return true;
    if (mod_small(n, p) == 0) return false;
  }
  // n is odd and > 251 here: write n-1 = d * 2^s.
  const BigInt n_minus_1 = n - BigInt(1);
  BigInt d = n_minus_1;
  std::size_t s = 0;
  while (!d.is_odd()) {
    d = d >> 1;
    ++s;
  }

  MontgomeryCtx ctx(n);
  const BigInt two(2);
  for (int round = 0; round < rounds; ++round) {
    // Base in [2, n-2].
    BigInt a = mod_add(BigInt::random_below(n - BigInt(3), rng), two, n);
    BigInt x = ctx.exp(a, d);
    if (x == BigInt(1) || x == n_minus_1) continue;
    bool witness = true;
    for (std::size_t i = 0; i + 1 < s; ++i) {
      x = ctx.mul(x, x);
      if (x == n_minus_1) {
        witness = false;
        break;
      }
    }
    if (witness) return false;
  }
  return true;
}

BigInt generate_prime(std::size_t bits, RandomSource& rng) {
  SGK_CHECK(bits >= 8);
  for (;;) {
    BigInt candidate = BigInt::random_bits(bits, rng);
    if (!candidate.is_odd()) candidate = candidate + BigInt(1);
    if (is_probable_prime(candidate, rng)) return candidate;
  }
}

SchnorrGroup generate_schnorr_group(std::size_t p_bits, std::size_t q_bits,
                                    RandomSource& rng) {
  SGK_CHECK(q_bits + 16 <= p_bits);
  const BigInt q = generate_prime(q_bits, rng);
  const std::size_t k_bits = p_bits - q_bits;
  BigInt p;
  for (;;) {
    BigInt k = BigInt::random_bits(k_bits, rng);
    if (k.is_odd()) k = k + BigInt(1);  // even k keeps p odd
    p = q * k + BigInt(1);
    if (p.bit_length() != p_bits) continue;
    if (is_probable_prime(p, rng)) break;
  }
  const BigInt k = (p - BigInt(1)) / q;
  BigInt g;
  for (;;) {
    BigInt h = mod_add(BigInt::random_below(p - BigInt(3), rng), BigInt(2), p);
    g = mod_exp(h, k, p);
    if (g != BigInt(1)) break;
  }
  return {p, q, g};
}

}  // namespace sgk
