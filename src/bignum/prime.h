// Primality testing and prime / group-parameter generation.
#pragma once

#include <cstddef>

#include "bignum/bigint.h"
#include "util/random_source.h"

namespace sgk {

/// Miller–Rabin probabilistic primality test with `rounds` random bases
/// (error probability <= 4^-rounds), preceded by trial division by small
/// primes.
bool is_probable_prime(const BigInt& n, RandomSource& rng, int rounds = 32);

/// Generates a random prime of exactly `bits` bits.
BigInt generate_prime(std::size_t bits, RandomSource& rng);

/// Schnorr-group parameters: prime p of `p_bits` bits, prime q of `q_bits`
/// bits with q | p-1, and a generator g of the order-q subgroup. This is the
/// parameter shape the paper uses (512/1024-bit p with 160-bit q).
struct SchnorrGroup {
  BigInt p;
  BigInt q;
  BigInt g;
};

SchnorrGroup generate_schnorr_group(std::size_t p_bits, std::size_t q_bits,
                                    RandomSource& rng);

}  // namespace sgk
