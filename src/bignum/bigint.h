// Arbitrary-precision unsigned integers.
//
// BigInt is an immutable-value big natural number with 64-bit limbs stored
// little-endian. It implements exactly the operations the cryptographic layer
// needs: comparison, ring arithmetic, shifts, Knuth division, and byte/hex
// conversions. Modular exponentiation lives in montgomery.h; number-theoretic
// helpers (gcd, inverse, primality) in modmath.h / prime.h.
//
// Subtraction of a larger value from a smaller one throws; the library works
// exclusively with naturals and tracks signs explicitly where needed
// (extended Euclid).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "util/bytes.h"
#include "util/random_source.h"

namespace sgk {

struct BigIntDivMod;

class BigInt {
 public:
  /// Zero.
  BigInt() = default;
  /// From a machine word.
  BigInt(std::uint64_t v);  // NOLINT(google-explicit-constructor): numeric literal ergonomics

  /// Parses a (lowercase or uppercase) hex string; empty string is zero.
  static BigInt from_hex(std::string_view hex);
  /// Parses big-endian bytes; empty is zero.
  static BigInt from_bytes(const Bytes& be);
  /// Parses a decimal string.
  static BigInt from_dec(std::string_view dec);

  /// Uniform value in [0, bound). Requires bound > 0.
  static BigInt random_below(const BigInt& bound, RandomSource& rng);
  /// Random value of exactly `bits` bits (top bit set). Requires bits >= 1.
  static BigInt random_bits(std::size_t bits, RandomSource& rng);

  bool is_zero() const { return limbs_.empty(); }
  bool is_odd() const { return !limbs_.empty() && (limbs_[0] & 1); }
  /// Number of significant bits; 0 for zero.
  std::size_t bit_length() const;
  /// Value of bit `i` (0 = least significant).
  bool bit(std::size_t i) const;
  /// Low 64 bits.
  std::uint64_t low_u64() const { return limbs_.empty() ? 0 : limbs_[0]; }

  /// Three-way comparison: -1, 0, +1.
  int compare(const BigInt& other) const;
  bool operator==(const BigInt& o) const { return compare(o) == 0; }
  bool operator!=(const BigInt& o) const { return compare(o) != 0; }
  bool operator<(const BigInt& o) const { return compare(o) < 0; }
  bool operator<=(const BigInt& o) const { return compare(o) <= 0; }
  bool operator>(const BigInt& o) const { return compare(o) > 0; }
  bool operator>=(const BigInt& o) const { return compare(o) >= 0; }

  BigInt operator+(const BigInt& o) const;
  /// Requires *this >= o; throws std::domain_error otherwise.
  BigInt operator-(const BigInt& o) const;
  BigInt operator*(const BigInt& o) const;
  /// Quotient; throws std::domain_error on division by zero.
  BigInt operator/(const BigInt& o) const;
  /// Remainder; throws std::domain_error on division by zero.
  BigInt operator%(const BigInt& o) const;
  BigInt operator<<(std::size_t bits) const;
  BigInt operator>>(std::size_t bits) const;

  using DivMod = BigIntDivMod;
  /// Computes quotient and remainder in one pass (Knuth algorithm D).
  DivMod divmod(const BigInt& divisor) const;

  /// Big-endian bytes, no leading zeros (empty for zero).
  Bytes to_bytes() const;
  /// Big-endian bytes left-padded with zeros to exactly `width` bytes.
  /// Throws std::length_error if the value does not fit.
  Bytes to_bytes_padded(std::size_t width) const;
  /// Lowercase hex, no leading zeros ("0" for zero).
  std::string to_hex() const;
  /// Decimal string.
  std::string to_dec() const;

  /// Access to limbs for the Montgomery engine.
  const std::vector<std::uint64_t>& limbs() const { return limbs_; }
  static BigInt from_limbs(std::vector<std::uint64_t> limbs);

  /// Zeroizes the limb storage (optimizer-proof) and resets the value to
  /// zero. Used by SecureBigInt for secret exponents; harmless on non-secret
  /// values.
  void wipe() noexcept;

 private:
  void normalize();

  // Little-endian, normalized: empty == 0, otherwise limbs_.back() != 0.
  std::vector<std::uint64_t> limbs_;
};

struct BigIntDivMod {
  BigInt quotient;
  BigInt remainder;
};

}  // namespace sgk
