// Number-theoretic helpers built on BigInt.
#pragma once

#include "bignum/bigint.h"

namespace sgk {

/// Greatest common divisor (Euclid).
BigInt gcd(const BigInt& a, const BigInt& b);

/// Multiplicative inverse of a modulo m (m > 1). Throws std::domain_error if
/// gcd(a, m) != 1.
BigInt mod_inverse(const BigInt& a, const BigInt& m);

/// (a * b) mod m.
BigInt mod_mul(const BigInt& a, const BigInt& b, const BigInt& m);

/// (a + b) mod m, with a, b already reduced.
BigInt mod_add(const BigInt& a, const BigInt& b, const BigInt& m);

/// (a - b) mod m, with a, b already reduced.
BigInt mod_sub(const BigInt& a, const BigInt& b, const BigInt& m);

/// Chinese-remainder combination: the unique x mod (p*q) with x = xp (mod p)
/// and x = xq (mod q), given qinv = q^{-1} mod p. Used by RSA-CRT.
BigInt crt_combine(const BigInt& xp, const BigInt& xq, const BigInt& p,
                   const BigInt& q, const BigInt& qinv);

}  // namespace sgk
