#include "bignum/bigint.h"

#include <algorithm>
#include <stdexcept>

#include "util/check.h"
#include "util/secure_bytes.h"

namespace sgk {

namespace {
using u64 = std::uint64_t;
using u128 = unsigned __int128;
}  // namespace

BigInt::BigInt(std::uint64_t v) {
  if (v != 0) limbs_.push_back(v);
}

void BigInt::normalize() {
  while (!limbs_.empty() && limbs_.back() == 0) limbs_.pop_back();
}

void BigInt::wipe() noexcept {
  secure_zero(limbs_.data(), limbs_.size() * sizeof(u64));
  limbs_.clear();
  limbs_.shrink_to_fit();
}

BigInt BigInt::from_limbs(std::vector<std::uint64_t> limbs) {
  BigInt out;
  out.limbs_ = std::move(limbs);
  out.normalize();
  return out;
}

BigInt BigInt::from_hex(std::string_view hex) {
  BigInt out;
  std::size_t nlimbs = (hex.size() + 15) / 16;
  out.limbs_.assign(nlimbs, 0);
  for (std::size_t i = 0; i < hex.size(); ++i) {
    char c = hex[hex.size() - 1 - i];
    u64 v;
    if (c >= '0' && c <= '9') v = static_cast<u64>(c - '0');
    else if (c >= 'a' && c <= 'f') v = static_cast<u64>(c - 'a' + 10);
    else if (c >= 'A' && c <= 'F') v = static_cast<u64>(c - 'A' + 10);
    else throw std::invalid_argument("BigInt::from_hex: invalid digit");
    out.limbs_[i / 16] |= v << (4 * (i % 16));
  }
  out.normalize();
  return out;
}

BigInt BigInt::from_bytes(const Bytes& be) {
  BigInt out;
  std::size_t nlimbs = (be.size() + 7) / 8;
  out.limbs_.assign(nlimbs, 0);
  for (std::size_t i = 0; i < be.size(); ++i) {
    // be is big-endian: be[size-1] is the least significant byte.
    u64 v = be[be.size() - 1 - i];
    out.limbs_[i / 8] |= v << (8 * (i % 8));
  }
  out.normalize();
  return out;
}

BigInt BigInt::from_dec(std::string_view dec) {
  BigInt out;
  const BigInt ten(10);
  for (char c : dec) {
    if (c < '0' || c > '9') throw std::invalid_argument("BigInt::from_dec: invalid digit");
    out = out * ten + BigInt(static_cast<u64>(c - '0'));
  }
  return out;
}

std::size_t BigInt::bit_length() const {
  if (limbs_.empty()) return 0;
  u64 top = limbs_.back();
  std::size_t bits = (limbs_.size() - 1) * 64;
  while (top != 0) {
    ++bits;
    top >>= 1;
  }
  return bits;
}

bool BigInt::bit(std::size_t i) const {
  std::size_t limb = i / 64;
  if (limb >= limbs_.size()) return false;
  return (limbs_[limb] >> (i % 64)) & 1;
}

int BigInt::compare(const BigInt& other) const {
  if (limbs_.size() != other.limbs_.size())
    return limbs_.size() < other.limbs_.size() ? -1 : 1;
  for (std::size_t i = limbs_.size(); i-- > 0;) {
    if (limbs_[i] != other.limbs_[i]) return limbs_[i] < other.limbs_[i] ? -1 : 1;
  }
  return 0;
}

BigInt BigInt::operator+(const BigInt& o) const {
  BigInt out;
  const std::size_t n = std::max(limbs_.size(), o.limbs_.size());
  out.limbs_.assign(n + 1, 0);
  u64 carry = 0;
  for (std::size_t i = 0; i < n; ++i) {
    u128 sum = static_cast<u128>(i < limbs_.size() ? limbs_[i] : 0) +
               (i < o.limbs_.size() ? o.limbs_[i] : 0) + carry;
    out.limbs_[i] = static_cast<u64>(sum);
    carry = static_cast<u64>(sum >> 64);
  }
  out.limbs_[n] = carry;
  out.normalize();
  return out;
}

BigInt BigInt::operator-(const BigInt& o) const {
  if (*this < o) throw std::domain_error("BigInt subtraction underflow");
  BigInt out;
  out.limbs_.assign(limbs_.size(), 0);
  u64 borrow = 0;
  for (std::size_t i = 0; i < limbs_.size(); ++i) {
    u64 rhs = i < o.limbs_.size() ? o.limbs_[i] : 0;
    u128 diff = static_cast<u128>(limbs_[i]) - rhs - borrow;
    out.limbs_[i] = static_cast<u64>(diff);
    borrow = static_cast<u64>((diff >> 64) & 1);
  }
  out.normalize();
  return out;
}

namespace {
using Limbs = std::vector<std::uint64_t>;

// Schoolbook product of limb spans into a fresh vector of size an+bn.
Limbs mul_schoolbook(const u64* a, std::size_t an, const u64* b, std::size_t bn) {
  Limbs out(an + bn, 0);
  for (std::size_t i = 0; i < an; ++i) {
    u64 carry = 0;
    for (std::size_t j = 0; j < bn; ++j) {
      u128 cur = static_cast<u128>(a[i]) * b[j] + out[i + j] + carry;
      out[i + j] = static_cast<u64>(cur);
      carry = static_cast<u64>(cur >> 64);
    }
    out[i + bn] += carry;
  }
  return out;
}

// r[off..] += v, propagating carries.
void add_into(Limbs& r, std::size_t off, const Limbs& v) {
  u64 carry = 0;
  std::size_t i = 0;
  for (; i < v.size(); ++i) {
    u128 sum = static_cast<u128>(r[off + i]) + v[i] + carry;
    r[off + i] = static_cast<u64>(sum);
    carry = static_cast<u64>(sum >> 64);
  }
  while (carry != 0) {
    u128 sum = static_cast<u128>(r[off + i]) + carry;
    r[off + i] = static_cast<u64>(sum);
    carry = static_cast<u64>(sum >> 64);
    ++i;
  }
}

// r[off..] -= v (result known non-negative), propagating borrows.
void sub_from(Limbs& r, std::size_t off, const Limbs& v) {
  u64 borrow = 0;
  std::size_t i = 0;
  for (; i < v.size(); ++i) {
    u128 diff = static_cast<u128>(r[off + i]) - v[i] - borrow;
    r[off + i] = static_cast<u64>(diff);
    borrow = static_cast<u64>((diff >> 64) & 1);
  }
  while (borrow != 0) {
    u128 diff = static_cast<u128>(r[off + i]) - borrow;
    r[off + i] = static_cast<u64>(diff);
    borrow = static_cast<u64>((diff >> 64) & 1);
    ++i;
  }
}

Limbs add_spans(const u64* a, std::size_t an, const u64* b, std::size_t bn) {
  const std::size_t n = std::max(an, bn);
  Limbs out(n + 1, 0);
  u64 carry = 0;
  for (std::size_t i = 0; i < n; ++i) {
    u128 sum = static_cast<u128>(i < an ? a[i] : 0) + (i < bn ? b[i] : 0) + carry;
    out[i] = static_cast<u64>(sum);
    carry = static_cast<u64>(sum >> 64);
  }
  out[n] = carry;
  while (!out.empty() && out.back() == 0) out.pop_back();
  return out;
}

// Karatsuba pays off once operands exceed a dozen limbs (RSA-1024 keygen,
// 2048-bit intermediates); below that, the cache-friendly schoolbook wins.
constexpr std::size_t kKaratsubaThreshold = 12;

Limbs mul_rec(const u64* a, std::size_t an, const u64* b, std::size_t bn) {
  if (an == 0 || bn == 0) return {};
  if (std::min(an, bn) < kKaratsubaThreshold)
    return mul_schoolbook(a, an, b, bn);

  // Split at half of the larger operand: a = a1*B + a0, b = b1*B + b0.
  const std::size_t half = std::max(an, bn) / 2;
  const std::size_t a0n = std::min(an, half), a1n = an - a0n;
  const std::size_t b0n = std::min(bn, half), b1n = bn - b0n;

  auto trim = [](Limbs& v) {
    while (!v.empty() && v.back() == 0) v.pop_back();
  };
  Limbs z0 = mul_rec(a, a0n, b, b0n);
  Limbs z2 = mul_rec(a + a0n, a1n, b + b0n, b1n);
  Limbs sa = add_spans(a, a0n, a + a0n, a1n);
  Limbs sb = add_spans(b, b0n, b + b0n, b1n);
  Limbs z1 = mul_rec(sa.data(), sa.size(), sb.data(), sb.size());
  // z1 -= z0 + z2 (the middle coefficient). Trim first: the subtraction
  // helpers index by the subtrahend's length, and z1 >= z0 + z2 numerically
  // guarantees trimmed-length dominance but not padded-length dominance.
  trim(z0);
  trim(z2);
  trim(z1);
  sub_from(z1, 0, z0);
  sub_from(z1, 0, z2);
  trim(z1);

  Limbs out(an + bn + 1, 0);
  add_into(out, 0, z0);
  add_into(out, half, z1);
  add_into(out, 2 * half, z2);
  return out;
}
}  // namespace

BigInt BigInt::operator*(const BigInt& o) const {
  if (is_zero() || o.is_zero()) return BigInt();
  BigInt out;
  out.limbs_ = mul_rec(limbs_.data(), limbs_.size(), o.limbs_.data(), o.limbs_.size());
  out.normalize();
  return out;
}

BigInt BigInt::operator<<(std::size_t bits) const {
  if (is_zero() || bits == 0) {
    BigInt out = *this;
    return out;
  }
  const std::size_t limb_shift = bits / 64;
  const std::size_t bit_shift = bits % 64;
  BigInt out;
  out.limbs_.assign(limbs_.size() + limb_shift + 1, 0);
  for (std::size_t i = 0; i < limbs_.size(); ++i) {
    out.limbs_[i + limb_shift] |= limbs_[i] << bit_shift;
    if (bit_shift != 0)
      out.limbs_[i + limb_shift + 1] |= limbs_[i] >> (64 - bit_shift);
  }
  out.normalize();
  return out;
}

BigInt BigInt::operator>>(std::size_t bits) const {
  const std::size_t limb_shift = bits / 64;
  if (limb_shift >= limbs_.size()) return BigInt();
  const std::size_t bit_shift = bits % 64;
  BigInt out;
  out.limbs_.assign(limbs_.size() - limb_shift, 0);
  for (std::size_t i = 0; i < out.limbs_.size(); ++i) {
    out.limbs_[i] = limbs_[i + limb_shift] >> bit_shift;
    if (bit_shift != 0 && i + limb_shift + 1 < limbs_.size())
      out.limbs_[i] |= limbs_[i + limb_shift + 1] << (64 - bit_shift);
  }
  out.normalize();
  return out;
}

BigInt::DivMod BigInt::divmod(const BigInt& divisor) const {
  if (divisor.is_zero()) throw std::domain_error("BigInt division by zero");
  if (*this < divisor) return {BigInt(), *this};
  if (divisor.limbs_.size() == 1) {
    // Single-limb fast path.
    u64 d = divisor.limbs_[0];
    BigInt q;
    q.limbs_.assign(limbs_.size(), 0);
    u64 rem = 0;
    for (std::size_t i = limbs_.size(); i-- > 0;) {
      u128 cur = (static_cast<u128>(rem) << 64) | limbs_[i];
      q.limbs_[i] = static_cast<u64>(cur / d);
      rem = static_cast<u64>(cur % d);
    }
    q.normalize();
    return {q, BigInt(rem)};
  }

  // Knuth algorithm D. Normalize so the divisor's top bit is set.
  const std::size_t shift = 64 - (divisor.bit_length() % 64 == 0
                                      ? 64
                                      : divisor.bit_length() % 64);
  BigInt u = *this << shift;
  BigInt v = divisor << shift;
  const std::size_t n = v.limbs_.size();
  const std::size_t m = u.limbs_.size() - n;
  // Ensure u has an extra high limb.
  u.limbs_.push_back(0);

  BigInt q;
  q.limbs_.assign(m + 1, 0);
  const u64 vtop = v.limbs_[n - 1];
  const u64 vsecond = v.limbs_[n - 2];

  for (std::size_t j = m + 1; j-- > 0;) {
    u128 numerator = (static_cast<u128>(u.limbs_[j + n]) << 64) | u.limbs_[j + n - 1];
    u128 qhat = numerator / vtop;
    u128 rhat = numerator % vtop;
    while (qhat >= (static_cast<u128>(1) << 64) ||
           qhat * vsecond > ((rhat << 64) | u.limbs_[j + n - 2])) {
      --qhat;
      rhat += vtop;
      if (rhat >= (static_cast<u128>(1) << 64)) break;
    }
    // Multiply-subtract qhat * v from u[j .. j+n].
    u128 borrow = 0;
    u128 carry = 0;
    for (std::size_t i = 0; i < n; ++i) {
      u128 product = qhat * v.limbs_[i] + carry;
      carry = product >> 64;
      u128 diff = static_cast<u128>(u.limbs_[i + j]) - static_cast<u64>(product) - borrow;
      u.limbs_[i + j] = static_cast<u64>(diff);
      borrow = (diff >> 64) & 1;
    }
    u128 diff = static_cast<u128>(u.limbs_[j + n]) - carry - borrow;
    u.limbs_[j + n] = static_cast<u64>(diff);
    bool negative = ((diff >> 64) & 1) != 0;

    if (negative) {
      // qhat was one too large: add v back.
      --qhat;
      u128 carry2 = 0;
      for (std::size_t i = 0; i < n; ++i) {
        u128 sum = static_cast<u128>(u.limbs_[i + j]) + v.limbs_[i] + carry2;
        u.limbs_[i + j] = static_cast<u64>(sum);
        carry2 = sum >> 64;
      }
      u.limbs_[j + n] += static_cast<u64>(carry2);
    }
    q.limbs_[j] = static_cast<u64>(qhat);
  }

  q.normalize();
  u.normalize();
  BigInt r = u >> shift;
  return {q, r};
}

BigInt BigInt::operator/(const BigInt& o) const { return divmod(o).quotient; }
BigInt BigInt::operator%(const BigInt& o) const { return divmod(o).remainder; }

Bytes BigInt::to_bytes() const {
  if (is_zero()) return {};
  const std::size_t nbytes = (bit_length() + 7) / 8;
  return to_bytes_padded(nbytes);
}

Bytes BigInt::to_bytes_padded(std::size_t width) const {
  const std::size_t nbytes = (bit_length() + 7) / 8;
  if (nbytes > width) throw std::length_error("BigInt::to_bytes_padded: too wide");
  Bytes out(width, 0);
  for (std::size_t i = 0; i < nbytes; ++i) {
    // out is big-endian.
    out[width - 1 - i] =
        static_cast<std::uint8_t>(limbs_[i / 8] >> (8 * (i % 8)));
  }
  return out;
}

std::string BigInt::to_hex() const {
  if (is_zero()) return "0";
  static const char* digits = "0123456789abcdef";
  std::string out;
  const std::size_t nibbles = (bit_length() + 3) / 4;
  for (std::size_t i = nibbles; i-- > 0;) {
    unsigned v = static_cast<unsigned>(limbs_[i / 16] >> (4 * (i % 16))) & 0xf;
    out.push_back(digits[v]);
  }
  return out;
}

std::string BigInt::to_dec() const {
  if (is_zero()) return "0";
  std::string out;
  BigInt v = *this;
  const BigInt ten(10);
  while (!v.is_zero()) {
    DivMod dm = v.divmod(ten);
    out.push_back(static_cast<char>('0' + dm.remainder.low_u64()));
    v = dm.quotient;
  }
  std::reverse(out.begin(), out.end());
  return out;
}

BigInt BigInt::random_bits(std::size_t bits, RandomSource& rng) {
  SGK_CHECK(bits >= 1);
  const std::size_t nbytes = (bits + 7) / 8;
  Bytes buf(nbytes);
  rng.fill(buf.data(), buf.size());
  // Clear excess high bits, then force the top bit so the size is exact.
  const std::size_t excess = nbytes * 8 - bits;
  buf[0] &= static_cast<std::uint8_t>(0xff >> excess);
  buf[0] |= static_cast<std::uint8_t>(0x80 >> excess);
  return from_bytes(buf);
}

BigInt BigInt::random_below(const BigInt& bound, RandomSource& rng) {
  SGK_CHECK(!bound.is_zero());
  const std::size_t bits = bound.bit_length();
  const std::size_t nbytes = (bits + 7) / 8;
  const std::size_t excess = nbytes * 8 - bits;
  // Rejection sampling keeps the distribution uniform.
  for (;;) {
    Bytes buf(nbytes);
    rng.fill(buf.data(), buf.size());
    buf[0] &= static_cast<std::uint8_t>(0xff >> excess);
    BigInt candidate = from_bytes(buf);
    if (candidate < bound) return candidate;
  }
}

}  // namespace sgk
