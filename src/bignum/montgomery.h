// Montgomery modular arithmetic and sliding-window exponentiation.
//
// This mirrors the implementation strategy the paper attributes to OpenSSL
// (Montgomery reduction + sliding-window exponentiation), which matters for
// the fidelity of the cost model: the cost of a modular exponentiation is
// essentially (#squarings + #multiplies) * cost(montgomery multiply), i.e.
// roughly linear in the exponent bit-length for a fixed modulus size.
#pragma once

#include <cstddef>
#include <vector>

#include "bignum/bigint.h"

namespace sgk {

/// Precomputed context for arithmetic modulo a fixed odd modulus.
class MontgomeryCtx {
 public:
  /// Requires an odd modulus > 1; throws std::invalid_argument otherwise.
  explicit MontgomeryCtx(const BigInt& modulus);

  const BigInt& modulus() const { return n_; }

  /// (a * b) mod n, for a, b already reduced mod n.
  BigInt mul(const BigInt& a, const BigInt& b) const;

  /// (base ^ exp) mod n using 4-bit sliding windows. base need not be reduced.
  BigInt exp(const BigInt& base, const BigInt& exp) const;

 private:
  // All internal values are in Montgomery form, little-endian limb vectors of
  // exactly k_ limbs.
  using Limbs = std::vector<std::uint64_t>;

  Limbs to_mont(const BigInt& a) const;
  BigInt from_mont(const Limbs& a) const;
  // out = mont_reduce(a * b)
  Limbs mont_mul(const Limbs& a, const Limbs& b) const;

  BigInt n_;
  std::size_t k_ = 0;        // limb count of n_
  std::uint64_t n0_inv_ = 0; // -n^{-1} mod 2^64
  BigInt rr_;                // R^2 mod n, for conversion into Montgomery form
};

/// Convenience one-shot (base ^ exp) mod modulus. For odd moduli uses
/// Montgomery; for even moduli falls back to square-and-multiply with full
/// reductions (only needed by tests).
BigInt mod_exp(const BigInt& base, const BigInt& exp, const BigInt& modulus);

}  // namespace sgk
