#include "bignum/montgomery.h"

#include <stdexcept>

#include "util/check.h"

namespace sgk {

namespace {
using u64 = std::uint64_t;
using u128 = unsigned __int128;

// -n^{-1} mod 2^64 by Newton iteration (n odd).
u64 neg_inv64(u64 n) {
  u64 inv = n;  // correct to 3 bits
  for (int i = 0; i < 5; ++i) inv *= 2 - n * inv;
  return ~inv + 1;  // -(n^{-1})
}
}  // namespace

MontgomeryCtx::MontgomeryCtx(const BigInt& modulus) : n_(modulus) {
  if (!modulus.is_odd() || modulus <= BigInt(1))
    throw std::invalid_argument("MontgomeryCtx: modulus must be odd and > 1");
  k_ = n_.limbs().size();
  n0_inv_ = neg_inv64(n_.limbs()[0]);
  // R^2 mod n where R = 2^(64k).
  rr_ = (BigInt(1) << (128 * k_)) % n_;
}

MontgomeryCtx::Limbs MontgomeryCtx::mont_mul(const Limbs& a, const Limbs& b) const {
  // CIOS (coarsely integrated operand scanning).
  const auto& n = n_.limbs();
  Limbs t(k_ + 2, 0);
  for (std::size_t i = 0; i < k_; ++i) {
    // t += a[i] * b
    u64 carry = 0;
    for (std::size_t j = 0; j < k_; ++j) {
      u128 cur = static_cast<u128>(a[i]) * b[j] + t[j] + carry;
      t[j] = static_cast<u64>(cur);
      carry = static_cast<u64>(cur >> 64);
    }
    u128 cur = static_cast<u128>(t[k_]) + carry;
    t[k_] = static_cast<u64>(cur);
    t[k_ + 1] = static_cast<u64>(cur >> 64);

    // m = t[0] * n0_inv mod 2^64; t += m * n; t >>= 64
    const u64 m = t[0] * n0_inv_;
    u128 acc = static_cast<u128>(m) * n[0] + t[0];
    carry = static_cast<u64>(acc >> 64);
    for (std::size_t j = 1; j < k_; ++j) {
      acc = static_cast<u128>(m) * n[j] + t[j] + carry;
      t[j - 1] = static_cast<u64>(acc);
      carry = static_cast<u64>(acc >> 64);
    }
    cur = static_cast<u128>(t[k_]) + carry;
    t[k_ - 1] = static_cast<u64>(cur);
    t[k_] = t[k_ + 1] + static_cast<u64>(cur >> 64);
    t[k_ + 1] = 0;
  }
  t.resize(k_ + 1);

  // Conditional final subtraction: t may be in [0, 2n).
  bool ge = t[k_] != 0;
  if (!ge) {
    ge = true;
    for (std::size_t i = k_; i-- > 0;) {
      if (t[i] != n[i]) {
        ge = t[i] > n[i];
        break;
      }
    }
  }
  t.resize(k_);
  if (ge) {
    u64 borrow = 0;
    for (std::size_t i = 0; i < k_; ++i) {
      u128 diff = static_cast<u128>(t[i]) - n[i] - borrow;
      t[i] = static_cast<u64>(diff);
      borrow = static_cast<u64>((diff >> 64) & 1);
    }
  }
  return t;
}

MontgomeryCtx::Limbs MontgomeryCtx::to_mont(const BigInt& a) const {
  BigInt reduced = a >= n_ ? a % n_ : a;
  Limbs al(reduced.limbs());
  al.resize(k_, 0);
  Limbs rr(rr_.limbs());
  rr.resize(k_, 0);
  return mont_mul(al, rr);
}

BigInt MontgomeryCtx::from_mont(const Limbs& a) const {
  Limbs one(k_, 0);
  one[0] = 1;
  Limbs plain = mont_mul(a, one);
  return BigInt::from_limbs(std::move(plain));
}

BigInt MontgomeryCtx::mul(const BigInt& a, const BigInt& b) const {
  Limbs am = to_mont(a);
  Limbs bm = to_mont(b);
  return from_mont(mont_mul(am, bm));
}

BigInt MontgomeryCtx::exp(const BigInt& base, const BigInt& exponent) const {
  if (exponent.is_zero()) return BigInt(1) % n_;
  const std::size_t ebits = exponent.bit_length();
  // Window size 4 matches typical sliding-window implementations for the
  // 160..1024-bit exponents used here.
  constexpr std::size_t kWindow = 4;

  Limbs basem = to_mont(base);
  // Precompute odd powers base^1, base^3, ..., base^(2^w - 1).
  Limbs base_sq = mont_mul(basem, basem);
  std::vector<Limbs> odd_pows(1 << (kWindow - 1));
  odd_pows[0] = basem;
  for (std::size_t i = 1; i < odd_pows.size(); ++i)
    odd_pows[i] = mont_mul(odd_pows[i - 1], base_sq);

  Limbs acc = to_mont(BigInt(1));
  std::size_t i = ebits;
  while (i > 0) {
    if (!exponent.bit(i - 1)) {
      acc = mont_mul(acc, acc);
      --i;
      continue;
    }
    // Take the largest window [i-1 .. j] with an odd low bit, width<=kWindow.
    std::size_t width = std::min(kWindow, i);
    while (!exponent.bit(i - width)) --width;  // terminates: bit(i-1)==1
    unsigned value = 0;
    for (std::size_t b = 0; b < width; ++b)
      value = value << 1 | (exponent.bit(i - 1 - b) ? 1u : 0u);
    for (std::size_t b = 0; b < width; ++b) acc = mont_mul(acc, acc);
    acc = mont_mul(acc, odd_pows[value >> 1]);
    i -= width;
  }
  return from_mont(acc);
}

BigInt mod_exp(const BigInt& base, const BigInt& exp, const BigInt& modulus) {
  if (modulus.is_zero()) throw std::domain_error("mod_exp: zero modulus");
  if (modulus == BigInt(1)) return BigInt();
  if (modulus.is_odd()) return MontgomeryCtx(modulus).exp(base, exp);
  // Plain square-and-multiply fallback for even moduli.
  BigInt acc(1);
  BigInt b = base % modulus;
  for (std::size_t i = exp.bit_length(); i-- > 0;) {
    acc = acc * acc % modulus;
    if (exp.bit(i)) acc = acc * b % modulus;
  }
  return acc;
}

}  // namespace sgk
