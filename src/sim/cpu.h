// Per-machine CPU scheduling of virtual-time compute charges.
//
// Each machine has `cores` identical servers. A compute task belongs to a
// process (a group member); tasks of the same process are serialized (a
// member is single-threaded) while tasks of different processes share the
// machine's cores FCFS. This is what reproduces the paper's observation that
// BD's cost doubles every 13 members (one extra process per dual-CPU
// machine) and degrades sharply past 26.
#pragma once

#include <functional>
#include <map>
#include <vector>

#include "sim/simulator.h"
#include "util/thread_annotations.h"

namespace sgk {

class CpuScheduler {
  // Per-machine state of one simulation run; never shared across runs (and
  // a parallel runner gives each run its own Simulator + schedulers).
  SGK_CONFINED_TO_RUN;

 public:
  /// `track` is this machine's tracer track (0 = untracked); compute charges
  /// show up as spans on it when a membership event is being traced.
  CpuScheduler(Simulator& sim, int cores, double speed, std::uint32_t track = 0)
      : sim_(sim),
        core_free_(static_cast<std::size_t>(cores), 0.0),
        speed_(speed),
        track_(track) {}

  /// Schedules `cost_ms` of compute (at reference speed) for `process`,
  /// invoking `on_done` at completion. Returns the completion time.
  SimTime submit(std::uint64_t process, double cost_ms, std::function<void()> on_done);

  /// Time at which `process`'s already-submitted work completes (>= now).
  SimTime process_free_at(std::uint64_t process) const;

  int cores() const { return static_cast<int>(core_free_.size()); }
  double speed() const { return speed_; }

 private:
  Simulator& sim_;
  std::vector<SimTime> core_free_;
  // std::map, not unordered_map: a handful of processes per machine, and
  // deterministic subsystems must not depend on hash-iteration order.
  std::map<std::uint64_t, SimTime> process_free_;
  double speed_;
  std::uint32_t track_;
};

}  // namespace sgk
