#include "sim/topology.h"

#include "util/check.h"

namespace sgk {

SiteId Topology::add_site(std::string name) {
  sites_.push_back(SiteSpec{std::move(name)});
  for (auto& row : site_latency_) row.push_back(0.0);
  site_latency_.emplace_back(sites_.size(), 0.0);
  return static_cast<SiteId>(sites_.size() - 1);
}

MachineId Topology::add_machine(SiteId site, int cores, double speed) {
  SGK_CHECK(site >= 0 && static_cast<std::size_t>(site) < sites_.size());
  SGK_CHECK(cores >= 1);
  SGK_CHECK(speed > 0);
  machines_.push_back(MachineSpec{site, cores, speed});
  return static_cast<MachineId>(machines_.size() - 1);
}

void Topology::set_site_latency(SiteId a, SiteId b, double one_way_ms) {
  SGK_CHECK(one_way_ms >= 0);
  site_latency_.at(static_cast<std::size_t>(a)).at(static_cast<std::size_t>(b)) = one_way_ms;
  site_latency_.at(static_cast<std::size_t>(b)).at(static_cast<std::size_t>(a)) = one_way_ms;
}

double Topology::site_latency(SiteId a, SiteId b) const {
  if (a == b) return intra_site_ms;
  return site_latency_.at(static_cast<std::size_t>(a)).at(static_cast<std::size_t>(b));
}

double Topology::latency(MachineId a, MachineId b) const {
  if (a == b) return local_loopback_ms;
  return site_latency(machine(a).site, machine(b).site);
}

Topology lan_testbed(int machines) {
  Topology topo;
  SiteId lan = topo.add_site("LAN");
  for (int i = 0; i < machines; ++i) topo.add_machine(lan, /*cores=*/2, /*speed=*/1.0);
  return topo;
}

Topology wan_testbed() {
  Topology topo;
  SiteId jhu = topo.add_site("JHU");
  SiteId uci = topo.add_site("UCI");
  SiteId icu = topo.add_site("ICU");
  // Figure 13 / section 6.2.1 ping times, halved to one-way latencies.
  topo.set_site_latency(jhu, uci, 17.5);
  topo.set_site_latency(uci, icu, 150.0);
  topo.set_site_latency(icu, jhu, 135.0);
  for (int i = 0; i < 11; ++i) topo.add_machine(jhu, 2, 1.0);
  topo.add_machine(uci, 1, 800.0 / 999.0);  // 999 MHz Athlon
  topo.add_machine(icu, 1, 800.0 / 733.0);  // 733 MHz PIII
  return topo;
}

}  // namespace sgk
