// Network/hardware topology descriptions for experiments.
//
// A Topology is a static description: sites connected by latency links, and
// machines (each with a core count and a speed factor) placed at sites.
// Factory functions reproduce the paper's two testbeds.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "util/thread_annotations.h"

namespace sgk {

using SiteId = int;
using MachineId = int;

struct SiteSpec {
  // Built while describing a testbed, then read-only for the run.
  SGK_CONFINED_TO_RUN;
  std::string name;
};

struct MachineSpec {
  // Built while describing a testbed, then read-only for the run.
  SGK_CONFINED_TO_RUN;
  SiteId site = 0;
  int cores = 2;
  // CPU time multiplier relative to the reference machine (800 MHz PIII in
  // the paper): a 999 MHz machine gets ~0.8, a 733 MHz one ~1.09.
  double speed = 1.0;
};

class Topology {
  // Owned by one experiment; mutated only during setup, before the run.
  SGK_CONFINED_TO_RUN;

 public:
  SiteId add_site(std::string name);
  MachineId add_machine(SiteId site, int cores = 2, double speed = 1.0);
  /// Symmetric one-way latency between two sites, in milliseconds.
  void set_site_latency(SiteId a, SiteId b, double one_way_ms);

  std::size_t site_count() const { return sites_.size(); }
  std::size_t machine_count() const { return machines_.size(); }
  const MachineSpec& machine(MachineId m) const { return machines_.at(static_cast<std::size_t>(m)); }
  const SiteSpec& site(SiteId s) const { return sites_.at(static_cast<std::size_t>(s)); }

  /// One-way message latency between machines (same machine ~0, same site
  /// = intra_site_ms, different sites = link latency).
  double latency(MachineId a, MachineId b) const;

  /// Latency between a site pair.
  double site_latency(SiteId a, SiteId b) const;

  // Tunables (defaults calibrated so a 13-daemon LAN token cycle is under a
  // millisecond, matching the paper's 0.8-1.3 ms Agreed multicast).
  double intra_site_ms = 0.03;   // one-way LAN hop
  double local_loopback_ms = 0.005;  // daemon to local client and back

 private:
  std::vector<SiteSpec> sites_;
  std::vector<MachineSpec> machines_;
  std::vector<std::vector<double>> site_latency_;  // [a][b]
};

/// The paper's LAN testbed: one site, 13 dual-processor 800 MHz machines.
Topology lan_testbed(int machines = 13);

/// The paper's WAN testbed (Figure 13): 11 machines at JHU (10 dual 800 MHz
/// PIII + 1 999 MHz Athlon at JHU per the paper's mix; we place the Athlon
/// and the 733 MHz PIII at UCI and ICU respectively so each remote site has
/// one machine), with one-way latencies JHU-UCI 17.5 ms, UCI-ICU 150 ms,
/// ICU-JHU 135 ms.
Topology wan_testbed();

}  // namespace sgk
