#include "sim/cpu.h"

#include <algorithm>

#include "obs/trace.h"
#include "util/check.h"

namespace sgk {

SimTime CpuScheduler::submit(std::uint64_t process, double cost_ms,
                             std::function<void()> on_done) {
  SGK_CHECK(cost_ms >= 0);
  // Pick the earliest-free core; a process can only use one core at a time.
  std::size_t best = 0;
  for (std::size_t c = 1; c < core_free_.size(); ++c)
    if (core_free_[c] < core_free_[best]) best = c;

  SimTime start = std::max({sim_.now(), core_free_[best], process_free_at(process)});
  SimTime finish = start + cost_ms * speed_;
  // Cost-model charges become spans on the machine's track, but only while a
  // membership event is being measured — setup traffic would drown the trace.
  SGK_TRACE(if (cost_ms > 0 && track_ != 0 && tr->event_active()) {
    obs::SpanId span = tr->begin_span_at("compute", start, obs::kNoSpan, track_);
    tr->attr(span, "process", obs::Json(process));
    tr->attr(span, "cost_ms", obs::Json(finish - start));
    tr->end_span_at(span, finish);
  });
  core_free_[best] = finish;
  process_free_[process] = finish;
  if (on_done) sim_.at(finish, std::move(on_done));
  return finish;
}

SimTime CpuScheduler::process_free_at(std::uint64_t process) const {
  auto it = process_free_.find(process);
  SimTime t = it == process_free_.end() ? 0.0 : it->second;
  return std::max(t, sim_.now());
}

}  // namespace sgk
