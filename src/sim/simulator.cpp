#include "sim/simulator.h"

#include <limits>

#include "util/check.h"

namespace sgk {

void Simulator::at(SimTime t, std::function<void()> fn) {
  SGK_CHECK(t >= now_);
  queue_.push(Event{t, next_seq_++, std::move(fn)});
}

void Simulator::after(SimTime dt, std::function<void()> fn) {
  SGK_CHECK(dt >= 0);
  at(now_ + dt, std::move(fn));
}

bool Simulator::step() {
  if (queue_.empty()) return false;
  // priority_queue::top is const; moving requires the const_cast idiom or a
  // copy. The function object is cheap to move and never observed again.
  Event ev = std::move(const_cast<Event&>(queue_.top()));
  queue_.pop();
  now_ = ev.time;
  ++executed_;
  ev.fn();
  return true;
}

void Simulator::run() {
  while (step()) {
  }
}

void Simulator::run_until(SimTime t) {
  while (!queue_.empty() && queue_.top().time <= t) step();
  if (now_ < t) now_ = t;
}

SimTime Simulator::next_event_time() const {
  if (queue_.empty()) return std::numeric_limits<SimTime>::infinity();
  return queue_.top().time;
}

}  // namespace sgk
