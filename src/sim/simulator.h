// Discrete-event simulation core.
//
// Virtual time is in milliseconds (double). Events scheduled for the same
// instant execute in FIFO scheduling order, which makes whole runs
// deterministic regardless of host platform.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "util/thread_annotations.h"

namespace sgk {

using SimTime = double;  // milliseconds of virtual time

class Simulator {
  // The event queue and clock of ONE run. Parallel multi-group runs get one
  // Simulator each; nothing here is (or may become) cross-thread shared.
  SGK_CONFINED_TO_RUN;

 public:
  /// Schedules `fn` at absolute time `t` (must be >= now()).
  void at(SimTime t, std::function<void()> fn);

  /// Schedules `fn` `dt` milliseconds from now (dt >= 0).
  void after(SimTime dt, std::function<void()> fn);

  SimTime now() const { return now_; }

  /// Executes one event; returns false when the queue is empty.
  bool step();

  /// Runs until the queue is empty.
  void run();

  /// Runs until the queue is empty or virtual time would exceed `t`.
  /// Events after `t` remain queued.
  void run_until(SimTime t);

  /// Virtual time of the earliest queued event, or +infinity when the queue
  /// is empty. A parallel multi-group executor uses this as a conservative
  /// lookahead bound: a run whose next event lies beyond the epoch window
  /// provably cannot act inside it and can be skipped without advancing.
  SimTime next_event_time() const;

  std::size_t pending() const { return queue_.size(); }
  std::uint64_t executed() const { return executed_; }

 private:
  struct Event {
    SimTime time;
    std::uint64_t seq;  // FIFO tie-break
    std::function<void()> fn;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  std::priority_queue<Event, std::vector<Event>, Later> queue_;
  SimTime now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t executed_ = 0;
};

}  // namespace sgk
