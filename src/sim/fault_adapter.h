// Adapts the discrete-event Simulator to the fault subsystem's Scheduler
// hook, so a FaultInjector can arm a churn schedule on virtual time. This is
// the sim-side fault hook point (the gcs-side one is
// SpreadNetwork::set_fault_hook); it lives here rather than in src/fault
// because fault sits *below* sim in the layering DAG
// (core -> fault -> {sim, gcs}).
#pragma once

#include <functional>
#include <utility>

#include "fault/injector.h"
#include "sim/simulator.h"
#include "util/thread_annotations.h"

namespace sgk {

class SimFaultScheduler final : public fault::Scheduler {
  // Thin adapter over one run's Simulator; confined with it.
  SGK_CONFINED_TO_RUN;

 public:
  explicit SimFaultScheduler(Simulator& sim) : sim_(sim) {}

  double now() const override { return sim_.now(); }
  void after(double dt_ms, std::function<void()> fn) override {
    sim_.after(dt_ms, std::move(fn));
  }

 private:
  Simulator& sim_;
};

}  // namespace sgk
