#include "crypto/dsa.h"

#include "bignum/modmath.h"
#include "crypto/sha256.h"
#include "util/check.h"
#include "util/serde.h"

namespace sgk {

namespace {
/// Hash of the message reduced into the exponent field Z_q.
BigInt hash_to_zq(const Bytes& message, const BigInt& q) {
  return BigInt::from_bytes(Sha256::digest(message)) % q;
}
}  // namespace

DsaPrivateKey::DsaPrivateKey(const DhGroup& group, RandomSource& rng)
    : group_(group),
      x_(group.random_exponent(rng)),
      pub_(group, group.exp_g(x_)) {}

DsaSignature DsaPrivateKey::sign(const Bytes& message, RandomSource& rng) const {
  const BigInt& q = group_.q();
  const BigInt h = hash_to_zq(message, q);
  for (;;) {
    const SecureBigInt k = group_.random_exponent(rng);
    const BigInt r = group_.exp_g(k) % q;
    if (r.is_zero()) continue;
    // s = k^{-1} (h + x r) mod q
    const BigInt s = mod_inverse(k, q) * ((h + x_.get() * r % q) % q) % q;
    if (s.is_zero()) continue;
    return DsaSignature{r, s};
  }
}

bool DsaPublicKey::verify(const Bytes& message, const DsaSignature& sig) const {
  const BigInt& q = group_.q();
  if (sig.r.is_zero() || sig.r >= q || sig.s.is_zero() || sig.s >= q) return false;
  const BigInt h = hash_to_zq(message, q);
  BigInt w;
  try {
    w = mod_inverse(sig.s, q);
  } catch (const std::domain_error&) {
    return false;
  }
  const BigInt u1 = h * w % q;
  const BigInt u2 = sig.r * w % q;
  // v = (g^u1 * y^u2 mod p) mod q — the two expensive exponentiations.
  const BigInt v = group_.exp_g(u1) * group_.exp(y_, u2) % group_.p() % q;
  return v == sig.r;
}

Bytes dsa_signature_to_bytes(const DsaSignature& sig, std::size_t q_bytes) {
  Writer w;
  w.bytes(sig.r.to_bytes_padded(q_bytes));
  w.bytes(sig.s.to_bytes_padded(q_bytes));
  return w.take();
}

DsaSignature dsa_signature_from_bytes(const Bytes& data) {
  Reader r(data);
  DsaSignature sig;
  sig.r = BigInt::from_bytes(r.bytes());
  sig.s = BigInt::from_bytes(r.bytes());
  return sig;
}

}  // namespace sgk
