// AES-128 block cipher (FIPS 197) and CBC mode with PKCS#7 padding.
//
// Used by the Secure Spread layer to encrypt application data under the
// group key (confidentiality) together with HMAC-SHA256 (integrity).
#pragma once

#include <array>
#include <cstdint>

#include "util/bytes.h"

namespace sgk {

class Aes128 {
 public:
  static constexpr std::size_t kBlockSize = 16;
  static constexpr std::size_t kKeySize = 16;

  /// Throws std::invalid_argument on wrong key size.
  explicit Aes128(const Bytes& key);
  /// Wipes the expanded key schedule.
  ~Aes128();

  void encrypt_block(const std::uint8_t in[16], std::uint8_t out[16]) const;
  void decrypt_block(const std::uint8_t in[16], std::uint8_t out[16]) const;

 private:
  // Fixed-size array so block operations stay allocation-free.
  // gka-lint: allow(GKA004) -- zeroized by the destructor above
  std::array<std::array<std::uint8_t, 16>, 11> round_keys_;
};

/// CBC encrypt with PKCS#7 padding. `iv` must be 16 bytes.
Bytes aes128_cbc_encrypt(const Bytes& key, const Bytes& iv, const Bytes& plaintext);

/// CBC decrypt; throws std::runtime_error on bad padding or length.
Bytes aes128_cbc_decrypt(const Bytes& key, const Bytes& iv, const Bytes& ciphertext);

}  // namespace sgk
