#include "crypto/drbg.h"

#include "crypto/sha256.h"
#include "util/bytes.h"

namespace sgk {

namespace {
ChaCha20 make_stream(std::uint64_t seed, std::string_view label) {
  Bytes material;
  for (int i = 0; i < 8; ++i)
    material.push_back(static_cast<std::uint8_t>(seed >> (56 - 8 * i)));
  material.insert(material.end(), label.begin(), label.end());
  Bytes key = Sha256::digest(material);
  Bytes nonce(ChaCha20::kNonceSize, 0);
  return ChaCha20(key, nonce);
}
}  // namespace

Drbg::Drbg(std::uint64_t seed, std::string_view label)
    : stream_(make_stream(seed, label)) {}

void Drbg::fill(std::uint8_t* out, std::size_t len) {
  Bytes ks = stream_.keystream(len);
  std::copy(ks.begin(), ks.end(), out);
  bytes_generated_ += len;
}

std::uint64_t Drbg::next_u64(std::uint64_t bound) {
  if (bound == 0) return 0;
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t limit = ~std::uint64_t{0} - (~std::uint64_t{0} % bound) - 1;
  for (;;) {
    std::uint8_t buf[8];
    fill(buf, 8);
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) v = v << 8 | buf[i];
    if (v <= limit) return v % bound;
  }
}

double Drbg::next_double() {
  std::uint8_t buf[8];
  fill(buf, 8);
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v = v << 8 | buf[i];
  return static_cast<double>(v >> 11) * (1.0 / 9007199254740992.0);
}

Drbg Drbg::fork(std::string_view label) {
  std::uint8_t buf[8];
  fill(buf, 8);
  std::uint64_t child_seed = 0;
  for (int i = 0; i < 8; ++i) child_seed = child_seed << 8 | buf[i];
  return Drbg(child_seed, label);
}

}  // namespace sgk
