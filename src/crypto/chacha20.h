// ChaCha20 block function and keystream (RFC 8439).
//
// Used both as a stream primitive in tests and as the core of the library's
// deterministic random bit generator (drbg.h).
#pragma once

#include <array>
#include <cstdint>

#include "util/bytes.h"

namespace sgk {

class ChaCha20 {
 public:
  static constexpr std::size_t kKeySize = 32;
  static constexpr std::size_t kNonceSize = 12;
  static constexpr std::size_t kBlockSize = 64;

  /// Throws std::invalid_argument on wrong key/nonce sizes.
  ChaCha20(const Bytes& key, const Bytes& nonce, std::uint32_t counter = 0);

  /// Produces the next `len` keystream bytes.
  Bytes keystream(std::size_t len);

  /// XORs `data` with the keystream (encrypt == decrypt).
  Bytes process(const Bytes& data);

 private:
  void refill();

  std::array<std::uint32_t, 16> state_;
  std::array<std::uint8_t, kBlockSize> block_;
  std::size_t block_pos_ = kBlockSize;  // forces refill on first use
};

}  // namespace sgk
